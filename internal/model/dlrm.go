package model

import (
	"fmt"

	"dlrmcomp/internal/embedding"
	"dlrmcomp/internal/interaction"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// Config describes a DLRM instance. It mirrors the knobs of the open-source
// reference implementation (arch-mlp-bot, arch-mlp-top, arch-sparse-feature-size).
type Config struct {
	DenseFeatures int   // number of continuous inputs (13 for Criteo)
	EmbeddingDim  int   // sparse feature size d
	TableSizes    []int // cardinality per categorical feature (26 for Criteo)
	// InitCardinalities optionally decouples the embedding init range from
	// TableSizes: table t is initialized as if it had InitCardinalities[t]
	// rows. Scaled-down datasets use this to preserve full-scale value
	// statistics. Nil means TableSizes.
	InitCardinalities []int
	BottomMLP         []int // hidden sizes of the bottom MLP, excluding in/out
	TopMLP            []int // hidden sizes of the top MLP, excluding in/out
	Seed              uint64
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.DenseFeatures <= 0 {
		return fmt.Errorf("model: DenseFeatures must be positive")
	}
	if c.EmbeddingDim <= 0 {
		return fmt.Errorf("model: EmbeddingDim must be positive")
	}
	if len(c.TableSizes) == 0 {
		return fmt.Errorf("model: at least one embedding table required")
	}
	for i, n := range c.TableSizes {
		if n <= 0 {
			return fmt.Errorf("model: TableSizes[%d] = %d invalid", i, n)
		}
	}
	if c.InitCardinalities != nil && len(c.InitCardinalities) != len(c.TableSizes) {
		return fmt.Errorf("model: InitCardinalities has %d entries for %d tables",
			len(c.InitCardinalities), len(c.TableSizes))
	}
	return nil
}

// DLRM is the assembled model.
type DLRM struct {
	Cfg      Config
	Bottom   *nn.MLP
	Emb      *embedding.Group
	Interact *interaction.DotInteraction
	Top      *nn.MLP

	// caches from the last Forward for Backward
	lastDense   *tensor.Matrix
	lastLookups []*tensor.Matrix
}

// New constructs the model from cfg.
func New(cfg Config) (*DLRM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	bottomSizes := append([]int{cfg.DenseFeatures}, cfg.BottomMLP...)
	bottomSizes = append(bottomSizes, cfg.EmbeddingDim)
	di := interaction.NewDotInteraction(len(cfg.TableSizes), cfg.EmbeddingDim)
	topSizes := append([]int{di.OutDim()}, cfg.TopMLP...)
	topSizes = append(topSizes, 1)
	return &DLRM{
		Cfg:      cfg,
		Bottom:   nn.NewMLP(bottomSizes, rng),
		Emb:      embedding.NewGroupWithInit(cfg.TableSizes, cfg.InitCardinalities, cfg.EmbeddingDim, rng),
		Interact: di,
		Top:      nn.NewMLP(topSizes, rng),
	}, nil
}

// SetComputeWorkers sets the intra-step parallel width on every compute
// layer of the model (bottom/top MLP matmuls and the pairwise interaction;
// 0 = GOMAXPROCS, 1 = single-threaded). Training results are bitwise
// identical at any width — the width only controls how rows are partitioned
// across the tensor worker pool.
func (m *DLRM) SetComputeWorkers(w int) {
	m.Bottom.SetWorkers(w)
	m.Top.SetWorkers(w)
	m.Interact.Workers = w
}

// ForwardFromLookups runs the model given dense inputs and pre-gathered
// embedding lookups (one [n, d] matrix per table). This is the entry point
// the distributed trainer uses: in hybrid-parallel training the lookups
// arrive from the all-to-all exchange (possibly lossily reconstructed).
func (m *DLRM) ForwardFromLookups(dense *tensor.Matrix, lookups []*tensor.Matrix) *tensor.Matrix {
	bot := m.Bottom.Forward(dense)
	m.lastDense = dense
	m.lastLookups = lookups
	z := m.Interact.Forward(bot, lookups)
	return m.Top.Forward(z)
}

// Forward performs lookups locally then runs ForwardFromLookups.
func (m *DLRM) Forward(dense *tensor.Matrix, indices [][]int32) *tensor.Matrix {
	lookups := m.Emb.LookupAll(indices)
	return m.ForwardFromLookups(dense, lookups)
}

// Backward propagates dLogits and returns the gradient of every embedding
// lookup batch (the tensors that flow through the backward all-to-all).
// MLP parameter gradients are accumulated internally.
func (m *DLRM) Backward(dLogits *tensor.Matrix) []*tensor.Matrix {
	dZ := m.Top.Backward(dLogits)
	dBot, dLookups := m.Interact.Backward(dZ)
	m.Bottom.Backward(dBot)
	return dLookups
}

// ZeroGrad clears all MLP gradients.
func (m *DLRM) ZeroGrad() {
	m.Bottom.ZeroGrad()
	m.Top.ZeroGrad()
}

// DenseParams returns the MLP parameters (the data-parallel, all-reduced part).
func (m *DLRM) DenseParams() []nn.Param {
	return append(m.Bottom.Params(), m.Top.Params()...)
}

// TrainStep runs one full local mini-batch update (no communication):
// forward, BCE loss, backward, embedding scatter, optimizer step.
// Returns the loss.
func (m *DLRM) TrainStep(dense *tensor.Matrix, indices [][]int32, labels []float32, opt nn.Optimizer, embLR float32) float32 {
	m.ZeroGrad()
	logits := m.Forward(dense, indices)
	loss, dLogits := nn.BCEWithLogits(logits, labels)
	dLookups := m.Backward(dLogits)
	for ti, tab := range m.Emb.Tables {
		tab.ApplySGD(embedding.SparseGrad{Indices: indices[ti], Grad: dLookups[ti]}, embLR)
	}
	opt.Step(m.DenseParams())
	return loss
}

// Evaluate computes accuracy and log-loss over a dataset batch.
func (m *DLRM) Evaluate(dense *tensor.Matrix, indices [][]int32, labels []float32) (acc, logloss float64) {
	logits := m.Forward(dense, indices)
	return nn.Accuracy(logits, labels), nn.LogLoss(logits, labels)
}
