// Package model assembles the full DLRM architecture: bottom MLP over dense
// features, embedding lookups for categorical features, dot-product feature
// interaction, and top MLP producing the CTR logit. It provides the
// single-process reference trainer that the distributed trainer and all the
// compression experiments build on.
//
// Layer: composition root of the model substrate (internal/nn MLPs,
// internal/embedding tables, internal/interaction). internal/dist shards
// this exact model — its 1-rank uncompressed step is bit-identical to
// TrainStep here, the anchor of every parity test. Pure math; the
// distributed trainer, not this package, charges the sim clock.
//
// Key types: Config (layer sizes, table cardinalities, seed —
// Validate/New), DLRM (Forward, TrainStep, Evaluate for the single-process
// path; ForwardFromLookups/Backward/ZeroGrad/DenseParams are the
// replica-facing hooks the distributed trainer drives with all-to-all-
// delivered lookups).
package model
