package model

import (
	"math"
	"testing"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

func smallConfig() Config {
	return Config{
		DenseFeatures: 13,
		EmbeddingDim:  8,
		TableSizes:    []int{50, 100, 20, 7},
		BottomMLP:     []int{32, 16},
		TopMLP:        []int{32},
		Seed:          42,
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := smallConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.TableSizes = nil
	if bad.Validate() == nil {
		t.Fatal("empty tables should fail validation")
	}
	bad = cfg
	bad.EmbeddingDim = 0
	if bad.Validate() == nil {
		t.Fatal("zero dim should fail validation")
	}
	bad = cfg
	bad.TableSizes = []int{10, -1}
	if bad.Validate() == nil {
		t.Fatal("negative cardinality should fail validation")
	}
}

func TestForwardShape(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	dense := tensor.NewMatrix(n, 13)
	rng := tensor.NewRNG(1)
	rng.FillNormal(dense.Data, 0, 1)
	indices := [][]int32{make([]int32, n), make([]int32, n), make([]int32, n), make([]int32, n)}
	logits := m.Forward(dense, indices)
	if logits.Rows != n || logits.Cols != 1 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := criteo.Spec{
		Name: "tiny", DenseFeatures: 13,
		Cardinalities: []int{50, 100, 20, 7},
		ZipfS:         1.3, DefaultBatch: 64, Seed: 3,
	}
	gen := criteo.NewGenerator(spec)
	opt := &nn.SGD{LR: 0.05}

	var first, last float32
	for step := 0; step < 120; step++ {
		b := gen.NextBatch(64)
		loss := m.TrainStep(b.Dense, b.Indices, b.Labels, opt, 0.05)
		if step == 0 {
			first = loss
		}
		last = loss
		if math.IsNaN(float64(loss)) {
			t.Fatalf("NaN loss at step %d", step)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v last %v", first, last)
	}
}

func TestEvaluateBeatsChanceAfterTraining(t *testing.T) {
	cfg := smallConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := criteo.Spec{
		Name: "tiny", DenseFeatures: 13,
		Cardinalities: []int{50, 100, 20, 7},
		ZipfS:         1.3, DefaultBatch: 64, Seed: 5,
	}
	gen := criteo.NewGenerator(spec)
	opt := &nn.SGD{LR: 0.05}
	for step := 0; step < 200; step++ {
		b := gen.NextBatch(64)
		m.TrainStep(b.Dense, b.Indices, b.Labels, opt, 0.05)
	}
	eval := gen.NextBatch(2000)
	acc, logloss := m.Evaluate(eval.Dense, eval.Indices, eval.Labels)
	// Base rate is well below majority-class-only prediction ceiling; the
	// trained model should at least beat random 50% and produce finite loss.
	if acc < 0.55 {
		t.Fatalf("accuracy %v too low after training", acc)
	}
	if math.IsNaN(logloss) || logloss > 1.0 {
		t.Fatalf("bad logloss %v", logloss)
	}
}

func TestForwardFromLookupsMatchesForward(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	rng := tensor.NewRNG(9)
	dense := tensor.NewMatrix(n, 13)
	rng.FillNormal(dense.Data, 0, 1)
	indices := make([][]int32, 4)
	for ti, card := range []int{50, 100, 20, 7} {
		indices[ti] = make([]int32, n)
		for i := range indices[ti] {
			indices[ti][i] = int32(rng.Intn(card))
		}
	}
	// Clone: Forward returns model-owned scratch that the second forward
	// would otherwise overwrite (and trivially equal).
	l1 := m.Forward(dense, indices).Clone()
	lookups := m.Emb.LookupAll(indices)
	l2 := m.ForwardFromLookups(dense, lookups)
	if !l1.Equal(l2, 1e-6) {
		t.Fatal("ForwardFromLookups disagrees with Forward")
	}
}

func TestBackwardReturnsLookupGrads(t *testing.T) {
	m, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	rng := tensor.NewRNG(10)
	dense := tensor.NewMatrix(n, 13)
	rng.FillNormal(dense.Data, 0, 1)
	indices := make([][]int32, 4)
	for ti, card := range []int{50, 100, 20, 7} {
		indices[ti] = make([]int32, n)
		for i := range indices[ti] {
			indices[ti][i] = int32(rng.Intn(card))
		}
	}
	labels := make([]float32, n)
	labels[0], labels[3] = 1, 1
	m.ZeroGrad()
	logits := m.Forward(dense, indices)
	_, dLogits := nn.BCEWithLogits(logits, labels)
	dLookups := m.Backward(dLogits)
	if len(dLookups) != 4 {
		t.Fatalf("lookup grads %d, want 4", len(dLookups))
	}
	var nonzero bool
	for ti, g := range dLookups {
		if g.Rows != n || g.Cols != 8 {
			t.Fatalf("grad %d shape %dx%d", ti, g.Rows, g.Cols)
		}
		if tensor.MaxAbs(g.Data) > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all lookup gradients are zero")
	}
}
