package tensor

import (
	"runtime"
	"sync"
)

// This file holds the package's persistent worker pool. Row-parallel kernels
// used to spawn fresh goroutines on every call; under a training loop that
// is thousands of goroutine launches per second. The pool starts
// GOMAXPROCS workers once, on first parallel use, and every parallel
// primitive in the package (and the layers above it, via ParallelSpans)
// shares them, so steady-state parallel compute recycles the same
// goroutines instead of churning new ones.
//
// Discipline: tasks submitted to the pool must be leaves — they must not
// call ParallelSpans themselves. Every kernel in this package and every
// caller in nn/interaction/dist obeys this (their span bodies are plain
// loops), which is what makes blocking waits on span completion safe: pool
// workers only ever run code that terminates without needing the pool.

var (
	poolOnce  sync.Once
	poolTasks chan func()
)

// startPool launches the shared workers. Sized to GOMAXPROCS at first use:
// the pool exists to soak idle cores, and a caller-supplied span width
// already bounds how much of it any one call occupies.
func startPool() {
	n := runtime.GOMAXPROCS(0)
	poolTasks = make(chan func(), 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
}

// ParallelSpans partitions [0, n) into up to workers contiguous spans and
// runs fn on each, using the package's persistent worker pool for all but
// the first span (which runs on the caller's goroutine). workers <= 0 means
// GOMAXPROCS; with one worker (or n <= 1) it degenerates to a single inline
// call and performs no allocation. When the pool's queue is full the caller
// runs the span inline instead of blocking, so demand bursts degrade to
// sequential execution rather than unbounded queuing.
//
// Spans are contiguous and disjoint, so fn calls for different spans must
// not share mutable state; every caller in this codebase partitions output
// rows, which are disjoint by construction. Results are bitwise independent
// of the worker count for such callers — the partition changes which
// goroutine computes a row, never the arithmetic within it.
// EffectiveWorkers resolves a worker-count knob: non-positive means
// GOMAXPROCS, anything else is taken as-is. Callers on allocation-free hot
// paths use it to skip closure construction entirely when the resolved width
// is 1.
func EffectiveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

func ParallelSpans(workers, n int, fn func(lo, hi int)) {
	workers = EffectiveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	poolOnce.Do(startPool)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				fn(lo, hi)
			}
		}(lo, hi)
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	fn(0, chunk)
	wg.Wait()
}
