package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("dst[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := NewMatrix(5, 5)
	rng.FillNormal(a.Data, 0, 1)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(5, 5)
	MatMul(dst, a, id)
	if !dst.Equal(a, 0) {
		t.Fatal("A @ I != A")
	}
	MatMul(dst, id, a)
	if !dst.Equal(a, 0) {
		t.Fatal("I @ A != A")
	}
}

// naiveMul is an independent reference implementation.
func naiveMul(a, b *Matrix, ta, tb bool) *Matrix {
	get := func(m *Matrix, trans bool, i, j int) float32 {
		if trans {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	rows, inner := a.Rows, a.Cols
	if ta {
		rows, inner = a.Cols, a.Rows
	}
	cols := b.Cols
	if tb {
		cols = b.Rows
	}
	dst := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var s float32
			for p := 0; p < inner; p++ {
				s += get(a, ta, i, p) * get(b, tb, p, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func randomMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	rng.FillNormal(m.Data, 0, 1)
	return m
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := NewRNG(7)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		dst := NewMatrix(m, n)
		MatMul(dst, a, b)
		if !dst.Equal(naiveMul(a, b, false, false), 1e-4) {
			t.Fatalf("trial %d: MatMul mismatch for %dx%d @ %dx%d", trial, m, k, k, n)
		}
	}
}

func TestMatMulTransBAgainstNaive(t *testing.T) {
	rng := NewRNG(8)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, n, k)
		dst := NewMatrix(m, n)
		MatMulTransB(dst, a, b)
		if !dst.Equal(naiveMul(a, b, false, true), 1e-4) {
			t.Fatalf("trial %d: MatMulTransB mismatch", trial)
		}
	}
}

func TestMatMulTransAAgainstNaive(t *testing.T) {
	rng := NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(16), 1+rng.Intn(16), 1+rng.Intn(16)
		a := randomMatrix(rng, k, m)
		b := randomMatrix(rng, k, n)
		dst := NewMatrix(m, n)
		MatMulTransA(dst, a, b)
		if !dst.Equal(naiveMul(a, b, true, false), 1e-4) {
			t.Fatalf("trial %d: MatMulTransA mismatch", trial)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to cross parallelThreshold.
	rng := NewRNG(10)
	a := randomMatrix(rng, 128, 64)
	b := randomMatrix(rng, 64, 96)
	dst := NewMatrix(128, 96)
	MatMul(dst, a, b)
	if !dst.Equal(naiveMul(a, b, false, false), 1e-3) {
		t.Fatal("parallel MatMul mismatch with naive")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestAddRowVecAndColSums(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddRowVec(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddRowVec[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	sums := make([]float32, 3)
	ColSums(sums, m)
	wantSums := []float32{25, 47, 69}
	for j, w := range wantSums {
		if sums[j] != w {
			t.Fatalf("ColSums[%d] = %v, want %v", j, sums[j], w)
		}
	}
}

func TestAxpyScaleDot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Axpy(2, x, y)
	for i, w := range []float32{6, 9, 12} {
		if y[i] != w {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], w)
		}
	}
	Scale(0.5, y)
	for i, w := range []float32{3, 4.5, 6} {
		if y[i] != w {
			t.Fatalf("Scale[%d] = %v, want %v", i, y[i], w)
		}
	}
	if d := Dot(x, x); d != 14 {
		t.Fatalf("Dot = %v, want 14", d)
	}
}

func TestMaxAbsAndL2(t *testing.T) {
	x := []float32{-3, 1, 2}
	if MaxAbs(x) != 3 {
		t.Fatalf("MaxAbs = %v, want 3", MaxAbs(x))
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) != 0")
	}
	if n := L2Norm([]float32{3, 4}); math.Abs(float64(n)-5) > 1e-6 {
		t.Fatalf("L2Norm = %v, want 5", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	x := make([]float32, 1000)
	r.FillUniform(x, -2, 3)
	for _, v := range x {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(6)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

// Property: (A @ B) @ C == A @ (B @ C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed) + 1)
		m, k, n, p := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		c := randomMatrix(rng, n, p)
		ab := NewMatrix(m, n)
		MatMul(ab, a, b)
		abc1 := NewMatrix(m, p)
		MatMul(abc1, ab, c)
		bc := NewMatrix(k, p)
		MatMul(bc, b, c)
		abc2 := NewMatrix(m, p)
		MatMul(abc2, a, bc)
		return abc1.Equal(abc2, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(x, y) == Dot(y, x) and Dot is linear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(seed uint16, alpha float32) bool {
		if alpha != alpha || alpha > 1e6 || alpha < -1e6 { // skip NaN/huge
			return true
		}
		r := NewRNG(uint64(seed) + 3)
		n := 1 + r.Intn(32)
		x := make([]float32, n)
		y := make([]float32, n)
		r.FillNormal(x, 0, 1)
		r.FillNormal(y, 0, 1)
		if Dot(x, y) != Dot(y, x) {
			return false
		}
		ax := make([]float32, n)
		copy(ax, x)
		Scale(alpha, ax)
		lhs := float64(Dot(ax, y))
		rhs := float64(alpha) * float64(Dot(x, y))
		return math.Abs(lhs-rhs) <= 1e-3*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRNG(1)
	a := randomMatrix(rng, 128, 128)
	c := randomMatrix(rng, 128, 128)
	dst := NewMatrix(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}
