// Package tensor provides the dense float32 linear-algebra kernels that the
// DLRM substrate is built on: row-major matrices, matrix products (including
// transposed forms used by backpropagation), and elementwise vector helpers.
//
// The kernels are deliberately simple and allocation-conscious; the large
// products used by MLP layers are parallelized across goroutines when the
// work is big enough to amortize scheduling.
//
// Layer: the bottom of the model substrate — internal/nn, internal/model,
// and the codecs all build on it. It also hosts the deterministic RNG
// (NewRNG/FillNormal) that keeps every workload, initialization, and
// experiment bitwise reproducible across runs, which the trainer parity
// tests depend on.
//
// Key types: Matrix (row-major with MatMul/MatMulT* products), RNG
// (splitmix-based, seeded everywhere a stream of randomness is needed),
// and the Scale/Axpy-style vector helpers.
package tensor
