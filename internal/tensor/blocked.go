package tensor

// This file holds the register-tiled matmul kernels behind MatMul,
// MatMulTransA, and MatMulTransB. The tiling exists for instruction-level
// parallelism and cache reuse, not for changing the math: every output
// element is still a single float32 accumulator fed its terms in ascending-p
// order (with the same skip-zero semantics the naive loops have), so the
// results are bitwise identical to the naive triple loops at any tile
// boundary. Parity tests pin the blocked kernels against the naive
// references across ragged shapes; the naive loops stay in naive.go as the
// executable specification.
//
// Why tiling helps a scalar Go build: a single dot-product accumulator is a
// serial dependency chain bounded by FP-add latency, while a 2×4 tile keeps
// eight independent chains in flight; and processing several output rows per
// pass over a shared B row halves the memory traffic of the saxpy-form
// kernels. The tile sizes below were picked with BenchmarkMatMul_* (64/256/
// 1024) on the development machine; they are deliberately small enough that
// the kernels never spill the accumulators.

// mrMatMul is the output-row tile of the saxpy-form kernels (MatMul and
// MatMulTransA): rows processed per pass over a B row.
const mrMatMul = 4

// matMulBlocked computes rows [lo, hi) of dst = a @ b.
// Per output element (i, j) the accumulation is dst[i][j] += a[i][p]*b[p][j]
// for ascending p, skipping terms with a[i][p] == 0 — exactly the naive
// order, whichever branch of the tile runs.
func matMulBlocked(dst, a, b *Matrix, lo, hi int) {
	k, n := a.Cols, b.Cols
	i := lo
	for ; i+mrMatMul <= hi; i += mrMatMul {
		d0 := dst.Data[(i+0)*n : (i+1)*n]
		d1 := dst.Data[(i+1)*n : (i+2)*n]
		d2 := dst.Data[(i+2)*n : (i+3)*n]
		d3 := dst.Data[(i+3)*n : (i+4)*n]
		clear(d0)
		clear(d1)
		clear(d2)
		clear(d3)
		a0 := a.Data[(i+0)*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		a2 := a.Data[(i+2)*k : (i+3)*k]
		a3 := a.Data[(i+3)*k : (i+4)*k]
		for p := 0; p < k; p++ {
			av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				// Full tile: one pass over bp feeds four row accumulators.
				for j, bv := range bp {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
					d2[j] += av2 * bv
					d3[j] += av3 * bv
				}
				continue
			}
			// Mixed zeros: per-row passes keep the skip semantics exact.
			if av0 != 0 {
				for j, bv := range bp {
					d0[j] += av0 * bv
				}
			}
			if av1 != 0 {
				for j, bv := range bp {
					d1[j] += av1 * bv
				}
			}
			if av2 != 0 {
				for j, bv := range bp {
					d2[j] += av2 * bv
				}
			}
			if av3 != 0 {
				for j, bv := range bp {
					d3[j] += av3 * bv
				}
			}
		}
	}
	for ; i < hi; i++ {
		di := dst.Data[i*n : (i+1)*n]
		clear(di)
		ai := a.Data[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// matMulTransBBlocked computes rows [lo, hi) of dst = a @ bᵀ with a 2×4
// register tile: eight dot-product accumulators, each a single chain in
// ascending-p order (the naive kernel has no zero skip here, so neither does
// this one).
func matMulTransBBlocked(dst, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Rows
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a.Data[(i+0)*k : (i+1)*k]
		a1 := a.Data[(i+1)*k : (i+2)*k]
		d0 := dst.Data[(i+0)*m : (i+1)*m]
		d1 := dst.Data[(i+1)*m : (i+2)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b.Data[(j+0)*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			for p, av0 := range a0 {
				av1 := a1[p]
				bv0, bv1, bv2, bv3 := b0[p], b1[p], b2[p], b3[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s02 += av0 * bv2
				s03 += av0 * bv3
				s10 += av1 * bv0
				s11 += av1 * bv1
				s12 += av1 * bv2
				s13 += av1 * bv3
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = s00, s01, s02, s03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = s10, s11, s12, s13
		}
		for ; j < m; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s0, s1 float32
			for p, av0 := range a0 {
				bv := bj[p]
				s0 += av0 * bv
				s1 += a1[p] * bv
			}
			d0[j], d1[j] = s0, s1
		}
	}
	for ; i < hi; i++ {
		ai := a.Data[i*k : (i+1)*k]
		di := dst.Data[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b.Data[(j+0)*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
		}
		for ; j < m; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
}

// matMulTransABlocked computes output rows [lo, hi) of dst = aᵀ @ b. It is
// the naive p-outer loop interchanged to i-outer (so each dst row is written
// once, streaming, instead of being revisited for every p) and then tiled
// mrMatMul output rows per pass over b. Loop interchange does not reorder
// the terms of any single output element: dst[i][j] still accumulates
// a[p][i]*b[p][j] for ascending p with the a[p][i] == 0 skip.
func matMulTransABlocked(dst, a, b *Matrix, lo, hi int) {
	kRows, aCols, n := a.Rows, a.Cols, b.Cols
	i := lo
	for ; i+mrMatMul <= hi; i += mrMatMul {
		d0 := dst.Data[(i+0)*n : (i+1)*n]
		d1 := dst.Data[(i+1)*n : (i+2)*n]
		d2 := dst.Data[(i+2)*n : (i+3)*n]
		d3 := dst.Data[(i+3)*n : (i+4)*n]
		clear(d0)
		clear(d1)
		clear(d2)
		clear(d3)
		for p := 0; p < kRows; p++ {
			ap := a.Data[p*aCols:]
			av0, av1, av2, av3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
				for j, bv := range bp {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
					d2[j] += av2 * bv
					d3[j] += av3 * bv
				}
				continue
			}
			if av0 != 0 {
				for j, bv := range bp {
					d0[j] += av0 * bv
				}
			}
			if av1 != 0 {
				for j, bv := range bp {
					d1[j] += av1 * bv
				}
			}
			if av2 != 0 {
				for j, bv := range bp {
					d2[j] += av2 * bv
				}
			}
			if av3 != 0 {
				for j, bv := range bp {
					d3[j] += av3 * bv
				}
			}
		}
	}
	for ; i < hi; i++ {
		di := dst.Data[i*n : (i+1)*n]
		clear(di)
		for p := 0; p < kRows; p++ {
			av := a.Data[p*aCols+i]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}
