package tensor

// Naive triple-loop matmul references. These are the executable
// specification of the accumulation order the blocked kernels in blocked.go
// must reproduce bitwise: per output element, terms are added one at a time
// in ascending-p order, with a skip of zero A-operands in the saxpy-form
// kernels (MatMul, MatMulTransA). The parity tests compare the blocked
// kernels against these across ragged shapes; the MatMul benchmarks report
// both so the tiling win stays visible in the bench trajectory.

// matMulNaive computes dst = a @ b with the reference loop nest.
func matMulNaive(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range di {
			di[j] = 0
		}
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b.Data[p*b.Cols : (p+1)*b.Cols]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// matMulTransBNaive computes dst = a @ bᵀ with the reference loop nest.
func matMulTransBNaive(dst, a, b *Matrix) {
	for i := 0; i < a.Rows; i++ {
		ai := a.Data[i*a.Cols : (i+1)*a.Cols]
		di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			bj := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			di[j] = s
		}
	}
}

// matMulTransANaive computes dst = aᵀ @ b with the reference loop nest
// (p-outer outer-product accumulation).
func matMulTransANaive(dst, a, b *Matrix) {
	dst.Zero()
	for p := 0; p < a.Rows; p++ {
		ap := a.Data[p*a.Cols : (p+1)*a.Cols]
		bp := b.Data[p*b.Cols : (p+1)*b.Cols]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}
