package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len rows*cols) in a Matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice len %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Resize reshapes m to rows×cols, reusing the backing array when it has the
// capacity and reallocating (contents undefined) otherwise. The resized data
// is NOT zeroed — callers own every element they read. Resize is the
// workspace primitive behind the allocation-free train-step hot path: a nil
// receiver is allowed and allocates, so `m = m.Resize(r, c)` works as a
// lazily-grown per-step buffer.
func (m *Matrix) Resize(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n)}
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	return m
}

// Row returns the i-th row as a sub-slice (shared storage).
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports whether m and n have the same shape and elements within tol.
func (m *Matrix) Equal(n *Matrix, tol float32) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if d := v - n.Data[i]; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// parallelThreshold is the number of fused multiply-adds below which matmul
// stays single-threaded.
const parallelThreshold = 1 << 17

// MatMul computes dst = a @ b where a is m×k and b is k×n. dst must be m×n
// and is overwritten. Panics on shape mismatch.
func MatMul(dst, a, b *Matrix) { MatMulWorkers(0, dst, a, b) }

// MatMulWorkers is MatMul with an explicit row-parallel width: 0 means
// GOMAXPROCS (MatMul's behavior), 1 forces single-threaded. Products below
// parallelThreshold stay single-threaded at any width, so small matmuls
// never pay fan-out overhead (or allocate). Results are bitwise identical
// at every width and tile boundary: rows are independent, and the blocked
// kernel preserves the naive per-element accumulation order.
func MatMulWorkers(workers int, dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if workers = EffectiveWorkers(workers); workers <= 1 || a.Rows*a.Cols*b.Cols < parallelThreshold {
		matMulBlocked(dst, a, b, 0, a.Rows)
		return
	}
	ParallelSpans(workers, a.Rows, func(lo, hi int) { matMulBlocked(dst, a, b, lo, hi) })
}

// MatMulTransB computes dst = a @ bᵀ where a is m×k and b is n×k.
// dst must be m×n. This is the shape used by the backward pass for inputs.
func MatMulTransB(dst, a, b *Matrix) { MatMulTransBWorkers(0, dst, a, b) }

// MatMulTransBWorkers is MatMulTransB with an explicit row-parallel width
// (same contract as MatMulWorkers).
func MatMulTransBWorkers(workers int, dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %dx%d @ (%dx%d)T -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if workers = EffectiveWorkers(workers); workers <= 1 || a.Rows*a.Cols*b.Rows < parallelThreshold {
		matMulTransBBlocked(dst, a, b, 0, a.Rows)
		return
	}
	ParallelSpans(workers, a.Rows, func(lo, hi int) { matMulTransBBlocked(dst, a, b, lo, hi) })
}

// MatMulTransA computes dst = aᵀ @ b where a is k×m and b is k×n.
// dst must be m×n. This is the shape used by the backward pass for weights.
func MatMulTransA(dst, a, b *Matrix) { MatMulTransAWorkers(0, dst, a, b) }

// MatMulTransAWorkers is MatMulTransA with an explicit row-parallel width
// over the output rows (same contract as MatMulWorkers). The historical
// MatMulTransA was single-threaded; parallelism over output rows is safe
// because the blocked kernel writes each dst row from exactly one span.
func MatMulTransAWorkers(workers int, dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shapes (%dx%d)T @ %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if workers = EffectiveWorkers(workers); workers <= 1 || a.Rows*a.Cols*b.Cols < parallelThreshold {
		matMulTransABlocked(dst, a, b, 0, a.Cols)
		return
	}
	ParallelSpans(workers, a.Cols, func(lo, hi int) { matMulTransABlocked(dst, a, b, lo, hi) })
}

// AddRowVec adds vector v (len == m.Cols) to every row of m in place.
func AddRowVec(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, bv := range v {
			ri[j] += bv
		}
	}
}

// ColSums accumulates the column sums of m into dst (len == m.Cols).
// dst is overwritten.
func ColSums(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: ColSums length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			dst[j] += v
		}
	}
}

// Axpy computes y += alpha*x elementwise for equal-length slices.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// MaxAbs returns the largest absolute value in x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}
