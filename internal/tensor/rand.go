package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used for
// weight initialization and synthetic data. It is reproducible across runs
// and cheap enough to embed per goroutine without locking.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed (zero is remapped so the
// xorshift state never sticks at the absorbing zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// FillUniform fills x with uniform values in [lo, hi).
func (r *RNG) FillUniform(x []float32, lo, hi float32) {
	span := hi - lo
	for i := range x {
		x[i] = lo + span*r.Float32()
	}
}

// FillNormal fills x with Gaussian samples of the given mean and stddev.
func (r *RNG) FillNormal(x []float32, mean, std float32) {
	for i := range x {
		x[i] = mean + std*float32(r.NormFloat64())
	}
}
