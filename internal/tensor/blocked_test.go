package tensor

import (
	"fmt"
	"math"
	"testing"
)

// raggedShapes covers tile remainders on every axis: dimensions below,
// at, and just past the mrMatMul / 2×4 tile boundaries, plus larger
// shapes that cross parallelThreshold so the span-partitioned paths run.
var raggedShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 2},
	{3, 5, 7},
	{4, 4, 4},
	{5, 9, 6},
	{6, 2, 5},
	{7, 7, 7},
	{8, 16, 8},
	{9, 13, 11},
	{16, 31, 17},
	{33, 63, 29},
	{64, 64, 64},
	{65, 127, 66}, // crosses parallelThreshold for MatMul/TransA
}

// sparseMatrix returns a rows×cols matrix where roughly a third of the
// entries are exactly zero (including a negative zero), exercising the
// skip-zero branches of the saxpy-form kernels in every mixed pattern.
func sparseMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	rng.FillNormal(m.Data, 0, 1)
	for i := range m.Data {
		switch rng.Intn(6) {
		case 0, 1:
			m.Data[i] = 0
		case 2:
			m.Data[i] = float32(math.Copysign(0, -1))
		}
	}
	return m
}

// requireBitwiseEqual fails unless got and want match element-for-element at
// the bit level (so -0 vs +0 and NaN payloads count as mismatches).
func requireBitwiseEqual(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if math.Float32bits(v) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x (%v), want %x (%v)",
				label, i, math.Float32bits(v), v, math.Float32bits(want.Data[i]), want.Data[i])
		}
	}
}

func TestMatMulBlockedBitwiseParity(t *testing.T) {
	rng := NewRNG(101)
	for _, s := range raggedShapes {
		a := sparseMatrix(rng, s.m, s.k)
		b := sparseMatrix(rng, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		matMulNaive(want, a, b)
		for _, workers := range []int{1, 2, 8} {
			got := NewMatrix(s.m, s.n)
			MatMulWorkers(workers, got, a, b)
			requireBitwiseEqual(t, got, want,
				fmt.Sprintf("MatMul %dx%d@%dx%d workers=%d", s.m, s.k, s.k, s.n, workers))
		}
	}
}

func TestMatMulTransBBlockedBitwiseParity(t *testing.T) {
	rng := NewRNG(102)
	for _, s := range raggedShapes {
		a := sparseMatrix(rng, s.m, s.k)
		b := sparseMatrix(rng, s.n, s.k)
		want := NewMatrix(s.m, s.n)
		matMulTransBNaive(want, a, b)
		for _, workers := range []int{1, 2, 8} {
			got := NewMatrix(s.m, s.n)
			MatMulTransBWorkers(workers, got, a, b)
			requireBitwiseEqual(t, got, want,
				fmt.Sprintf("MatMulTransB %dx%d@(%dx%d)T workers=%d", s.m, s.k, s.n, s.k, workers))
		}
	}
}

func TestMatMulTransABlockedBitwiseParity(t *testing.T) {
	rng := NewRNG(103)
	for _, s := range raggedShapes {
		a := sparseMatrix(rng, s.k, s.m)
		b := sparseMatrix(rng, s.k, s.n)
		want := NewMatrix(s.m, s.n)
		matMulTransANaive(want, a, b)
		for _, workers := range []int{1, 2, 8} {
			got := NewMatrix(s.m, s.n)
			MatMulTransAWorkers(workers, got, a, b)
			requireBitwiseEqual(t, got, want,
				fmt.Sprintf("MatMulTransA (%dx%d)T@%dx%d workers=%d", s.k, s.m, s.k, s.n, workers))
		}
	}
}

func TestParallelSpansCoversRange(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			hits := make([]int32, n)
			ParallelSpans(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad span [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func benchMatMulPair(b *testing.B, size int, fn func(dst, a, c *Matrix)) {
	rng := NewRNG(1)
	a := randomMatrix(rng, size, size)
	c := randomMatrix(rng, size, size)
	dst := NewMatrix(size, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, a, c)
	}
}

func BenchmarkMatMul_Naive_64(b *testing.B)  { benchMatMulPair(b, 64, matMulNaive) }
func BenchmarkMatMul_Naive_256(b *testing.B) { benchMatMulPair(b, 256, matMulNaive) }
func BenchmarkMatMul_Naive_1024(b *testing.B) {
	benchMatMulPair(b, 1024, matMulNaive)
}

func BenchmarkMatMul_Blocked_64(b *testing.B) {
	benchMatMulPair(b, 64, func(dst, a, c *Matrix) { matMulBlocked(dst, a, c, 0, a.Rows) })
}
func BenchmarkMatMul_Blocked_256(b *testing.B) {
	benchMatMulPair(b, 256, func(dst, a, c *Matrix) { matMulBlocked(dst, a, c, 0, a.Rows) })
}
func BenchmarkMatMul_Blocked_1024(b *testing.B) {
	benchMatMulPair(b, 1024, func(dst, a, c *Matrix) { matMulBlocked(dst, a, c, 0, a.Rows) })
}
