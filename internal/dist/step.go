package dist

import (
	"fmt"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/embedding"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// shardBounds splits n samples into R contiguous shards; the first n%R
// shards hold one extra sample.
func shardBounds(n, ranks int) (start, count []int) {
	start = make([]int, ranks)
	count = make([]int, ranks)
	base, rem := n/ranks, n%ranks
	s := 0
	for r := 0; r < ranks; r++ {
		c := base
		if r < rem {
			c++
		}
		start[r], count[r] = s, c
		s += c
	}
	return start, count
}

// shardRows copies rows [start, start+cnt) of m into a new matrix.
func shardRows(m *tensor.Matrix, start, cnt int) *tensor.Matrix {
	out := tensor.NewMatrix(cnt, m.Cols)
	copy(out.Data, m.Data[start*m.Cols:(start+cnt)*m.Cols])
	return out
}

// stepFlops models one rank's MLP forward+backward FLOPs for a shard of the
// given size: each MAC costs 2 FLOPs forward and 4 backward (dW and dX),
// plus the pairwise-dot feature interaction at the same 3x ratio.
func (t *Trainer) stepFlops(samples int) float64 {
	cfg := t.opts.Model
	macs := 0
	prev := cfg.DenseFeatures
	for _, h := range append(append([]int{}, cfg.BottomMLP...), cfg.EmbeddingDim) {
		macs += prev * h
		prev = h
	}
	f := len(cfg.TableSizes) + 1
	interIn := cfg.EmbeddingDim + f*(f-1)/2
	prev = interIn
	for _, h := range append(append([]int{}, cfg.TopMLP...), 1) {
		macs += prev * h
		prev = h
	}
	macs += f * (f - 1) / 2 * cfg.EmbeddingDim // interaction dots
	return 6 * float64(macs) * float64(samples)
}

// stepStats decomposes one training step into the modelled durations of
// its components, each tagged (implicitly) with the resource it occupies:
// lookup/compress/decompress/mlp/other run on the device lane, the two
// all-to-alls on the intra-/inter-node links, the allreduce on the inter
// link. Step sums them serially; the pipelined driver replays them onto a
// netmodel.Timeline so transfer components overlap compute.
type stepStats struct {
	lookup     time.Duration
	compress   time.Duration
	decompress time.Duration
	mlp        time.Duration
	other      time.Duration
	fwd        netmodel.LinkCost // forward all-to-all, metadata included
	bwd        netmodel.LinkCost // backward all-to-all
	allreduce  time.Duration
}

// serial is the synchronous step cost: every component back to back.
func (s stepStats) serial() time.Duration {
	return s.lookup + s.compress + s.fwd.Total() + s.decompress +
		s.mlp + s.other + s.bwd.Total() + s.allreduce
}

// Step runs one synchronous training iteration over the global batch:
//
//  1. owners gather each table's lookups and scatter them shard-wise through
//     the (optionally compressed) forward all-to-all;
//  2. every rank runs forward/backward over its batch shard on its MLP
//     replica;
//  3. lookup gradients return to the table owners through the backward
//     all-to-all and are scattered into the sharded tables;
//  4. dense MLP gradients are all-reduced and applied in lockstep.
//
// The returned loss is the global-batch mean BCE. With one rank and no
// codec this reproduces model.DLRM.TrainStep bit-for-bit. If any rank
// fails (e.g. a codec error), the step completes its collectives but
// applies no parameter updates, so an errored Step leaves the model as it
// was.
func (t *Trainer) Step(b *criteo.Batch) (float32, error) {
	loss, _, err := t.runStep(b)
	return loss, err
}

// runStep executes the step's math and bucket accounting and additionally
// returns the step's modelled component costs for schedulers. The math and
// every charged bucket are identical no matter which driver (Step or
// RunPipelined) calls it — only how the components compose into an
// end-to-end time differs between drivers.
func (t *Trainer) runStep(b *criteo.Batch) (float32, stepStats, error) {
	n := b.N()
	ranks := t.opts.Ranks
	numTables := len(t.opts.Model.TableSizes)
	dim := t.opts.Model.EmbeddingDim
	if n == 0 {
		return 0, stepStats{}, fmt.Errorf("dist: empty batch")
	}
	if len(b.Indices) != numTables {
		return 0, stepStats{}, fmt.Errorf("dist: batch has %d index slices for %d tables", len(b.Indices), numTables)
	}
	for tb, idx := range b.Indices {
		if len(idx) != n {
			return 0, stepStats{}, fmt.Errorf("dist: table %d has %d indices for %d samples", tb, len(idx), n)
		}
	}
	iter := t.iter
	t.iter++

	// Iteration-wise adaptive error bounds: tune sequentially before the
	// rank fan-out so codec state is only read concurrently.
	if t.opts.Controller != nil {
		for tb, c := range t.codecs {
			if eb, ok := c.(codec.ErrorBounded); ok {
				eb.SetErrorBound(t.opts.Controller.EBAt(tb, iter))
			}
		}
	}

	start, count := shardBounds(n, ranks)
	losses := make([]float32, ranks)
	errs := make([]error, ranks)
	// st collects the step's modelled component costs. Collective costs are
	// written by rank 0's goroutine only; device components are filled in
	// after the fan-out joins. Run's WaitGroup orders both against the
	// final read.
	var st stepStats
	// failed lets every rank see that some rank errored, so the step can
	// finish its collectives (keeping the barriers aligned) without
	// applying any update — an errored Step leaves the model untouched.
	var failed atomic.Bool
	compDur := make([]time.Duration, ranks)
	decompDur := make([]time.Duration, ranks)
	lookupBytes := make([]int64, ranks)
	fwdRaw := make([]int64, ranks)
	fwdComp := make([]int64, ranks)

	t.cl.Run(func(rank *cluster.Rank) {
		r := rank.ID
		fail := func(err error) {
			if errs[r] == nil {
				errs[r] = err
			}
			failed.Store(true)
		}

		// --- stage 1: owners gather lookups, compress, fuse, exchange ---
		cnt := count[r]
		lookups := make([]*tensor.Matrix, numTables)
		send := make([][]byte, ranks)
		for tb := 0; tb < numTables; tb++ {
			if t.owner(tb) != r {
				continue
			}
			tab := t.tmpl.Emb.Tables[tb]
			lookupBytes[r] += int64(n) * int64(dim) * 4
			for dst := 0; dst < ranks; dst++ {
				if count[dst] == 0 {
					continue
				}
				idx := b.Indices[tb][start[dst] : start[dst]+count[dst]]
				chunk := tab.Lookup(idx)
				if dst == r {
					// The local shard never crosses the wire (and is never
					// compressed): hand the matrix over directly.
					lookups[tb] = chunk
					continue
				}
				c := t.codecFor(tb)
				if c == nil {
					send[dst] = appendFrame(send[dst], tb, encRaw, floatsToBytes(chunk.Data))
					continue
				}
				frame, err := c.Compress(chunk.Data, dim)
				if err != nil {
					// Record the failure but keep the exchange aligned by
					// falling back to the raw payload.
					fail(fmt.Errorf("dist: rank %d table %d compress: %w", r, tb, err))
					send[dst] = appendFrame(send[dst], tb, encRaw, floatsToBytes(chunk.Data))
					continue
				}
				raw := int64(len(chunk.Data)) * 4
				compDur[r] += netmodel.CodecTime(raw, t.rates[tb].Compress)
				fwdRaw[r] += raw
				fwdComp[r] += int64(len(frame))
				send[dst] = appendFrame(send[dst], tb, encCodec, frame)
			}
		}
		fwdOp := rank.IAllToAllV(send, t.anyCodec, "fwd-a2a", t.opts.Algo)
		recv := fwdOp.Await()
		if r == 0 {
			st.fwd = fwdOp.Cost()
		}

		// --- stage 2: reconstruct the local shard's lookups ---
		for from := 0; from < ranks; from++ {
			err := parseFrames(recv[from], func(tb int, enc byte, payload []byte) error {
				if tb < 0 || tb >= numTables {
					return fmt.Errorf("dist: frame for unknown table %d", tb)
				}
				m := tensor.NewMatrix(cnt, dim)
				switch enc {
				case encRaw:
					if err := bytesToFloats(m.Data, payload); err != nil {
						return err
					}
				case encCodec:
					vals, gotDim, err := t.codecFor(tb).Decompress(payload)
					if err != nil {
						return fmt.Errorf("dist: table %d decompress: %w", tb, err)
					}
					if gotDim != dim || len(vals) != cnt*dim {
						return fmt.Errorf("dist: table %d reconstruction is %dx%d, want %dx%d",
							tb, len(vals)/max(gotDim, 1), gotDim, cnt, dim)
					}
					copy(m.Data, vals)
					decompDur[r] += netmodel.CodecTime(int64(len(vals))*4, t.rates[tb].Decompress)
				default:
					return fmt.Errorf("dist: unknown frame encoding %d", enc)
				}
				lookups[tb] = m
				return nil
			})
			if err != nil {
				fail(err)
			}
		}
		if cnt > 0 && errs[r] == nil {
			for tb := range lookups {
				if lookups[tb] == nil {
					fail(fmt.Errorf("dist: rank %d received no lookups for table %d", r, tb))
					break
				}
			}
		}

		// --- stage 3: local forward/backward on the shard ---
		var dLookups []*tensor.Matrix
		rp := t.replicas[r]
		rp.m.ZeroGrad() // ranks without samples contribute zero gradients
		if cnt > 0 && errs[r] == nil {
			if t.fwdHook != nil {
				for tb := 0; tb < numTables; tb++ {
					t.fwdHook(r, tb, lookups[tb], b.Indices[tb][start[r]:start[r]+cnt])
				}
			}
			dense := shardRows(b.Dense, start[r], cnt)
			labels := b.Labels[start[r] : start[r]+cnt]
			logits := rp.m.ForwardFromLookups(dense, lookups)
			loss, dLogits := nn.BCEWithLogits(logits, labels)
			losses[r] = loss
			// BCEWithLogits divides by the shard size; rescale so the
			// summed gradients equal the global-batch mean.
			if cnt != n {
				tensor.Scale(float32(cnt)/float32(n), dLogits.Data)
			}
			dLookups = rp.m.Backward(dLogits)
		}

		// --- stage 4: backward all-to-all routes lookup grads to owners ---
		send2 := make([][]byte, ranks)
		if dLookups != nil {
			for tb := 0; tb < numTables; tb++ {
				dst := t.owner(tb)
				send2[dst] = appendFrame(send2[dst], tb, encRaw, floatsToBytes(dLookups[tb].Data))
			}
		}
		bwdOp := rank.IAllToAllV(send2, false, "bwd-a2a", t.opts.Algo)
		recv2 := bwdOp.Await()
		if r == 0 {
			st.bwd = bwdOp.Cost()
		}

		grads := make(map[int]*tensor.Matrix) // owned table -> [n, dim]
		for from := 0; from < ranks; from++ {
			err := parseFrames(recv2[from], func(tb int, enc byte, payload []byte) error {
				if tb < 0 || tb >= numTables || t.owner(tb) != r || enc != encRaw {
					return fmt.Errorf("dist: bad gradient frame (table %d, enc %d) at rank %d", tb, enc, r)
				}
				g, ok := grads[tb]
				if !ok {
					g = tensor.NewMatrix(n, dim)
					grads[tb] = g
				}
				rows := g.Data[start[from]*dim : (start[from]+count[from])*dim]
				return bytesToFloats(rows, payload)
			})
			if err != nil {
				fail(err)
			}
		}
		// The all-to-all barrier above makes every rank's stage 1-3 failure
		// visible here; skip all updates so the model stays untouched.
		if !failed.Load() {
			// Scatter in table order so duplicate-index accumulation
			// matches the single-process trainer.
			for tb := 0; tb < numTables; tb++ {
				g, ok := grads[tb]
				if !ok {
					continue
				}
				t.tmpl.Emb.Tables[tb].ApplySGD(
					embedding.SparseGrad{Indices: b.Indices[tb], Grad: g}, t.opts.EmbLR)
			}
		}

		// --- stage 5: data-parallel gradient AllReduce + optimizer ---
		params := rp.m.DenseParams()
		buf := make([]float32, t.numParams)
		flattenGrads(params, buf)
		arOp := rank.IAllReduceSum(buf, "allreduce")
		arOp.Await()
		if r == 0 {
			st.allreduce = arOp.Cost()
		}
		// The allreduce barrier also publishes stage-4 failures.
		if !failed.Load() {
			unflattenGrads(buf, params)
			rp.opt.Step(params)
		}
	})

	for _, err := range errs {
		if err != nil {
			return 0, stepStats{}, err
		}
	}

	// Charge modelled compute once per step for the parallel device fleet
	// (the busiest rank bounds the synchronous step).
	maxCnt := 0
	for _, c := range count {
		maxCnt = max(maxCnt, c)
	}
	st.mlp = t.opts.Device.MLPTime(t.stepFlops(maxCnt))
	t.cl.AddSimTime("mlp", st.mlp)
	if t.opts.OtherComputeFactor > 0 {
		st.other = time.Duration(t.opts.OtherComputeFactor * float64(st.mlp))
		t.cl.AddSimTime("other", st.other)
	}
	st.lookup = t.opts.Device.LookupTime(maxInt64(lookupBytes))
	t.cl.AddSimTime("lookup", st.lookup)
	if d := maxDur(compDur); d > 0 {
		st.compress = d
		t.cl.AddSimTime("compress", d)
	}
	if d := maxDur(decompDur); d > 0 {
		st.decompress = d
		t.cl.AddSimTime("decompress", d)
	}
	for r := 0; r < ranks; r++ {
		t.fwdRawBytes += fwdRaw[r]
		t.fwdCompBytes += fwdComp[r]
	}

	if ranks == 1 {
		return losses[0], st, nil
	}
	var loss float64
	for r := 0; r < ranks; r++ {
		loss += float64(losses[r]) * float64(count[r])
	}
	return float32(loss / float64(n)), st, nil
}

func flattenGrads(params []nn.Param, buf []float32) {
	o := 0
	for _, p := range params {
		copy(buf[o:], p.Grad)
		o += len(p.Grad)
	}
}

func unflattenGrads(buf []float32, params []nn.Param) {
	o := 0
	for _, p := range params {
		copy(p.Grad, buf[o:o+len(p.Grad)])
		o += len(p.Grad)
	}
}

func maxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxDur(xs []time.Duration) time.Duration {
	var m time.Duration
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
