package dist

import (
	"errors"
	"fmt"
	"time"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/embedding"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// shardBoundsInto splits n samples into len(start) contiguous shards; the
// first n%R shards hold one extra sample.
func shardBoundsInto(n int, start, count []int) {
	ranks := len(start)
	base, rem := n/ranks, n%ranks
	s := 0
	for r := 0; r < ranks; r++ {
		c := base
		if r < rem {
			c++
		}
		start[r], count[r] = s, c
		s += c
	}
}

// shardBounds is the allocating form of shardBoundsInto.
func shardBounds(n, ranks int) (start, count []int) {
	start = make([]int, ranks)
	count = make([]int, ranks)
	shardBoundsInto(n, start, count)
	return start, count
}

// stepFlops models one rank's MLP forward+backward FLOPs for a shard of the
// given size: samples × the per-sample MAC total computed once in
// NewTrainer (each MAC costs 2 FLOPs forward and 4 backward, including the
// pairwise-dot feature interaction).
func (t *Trainer) stepFlops(samples int) float64 {
	return 6 * t.stepMacs * float64(samples)
}

// stepMacsFor computes the per-sample MAC count of cfg's MLPs and feature
// interaction (dW and dX double-count handled by stepFlops's factor).
func stepMacsFor(cfg model.Config) float64 {
	macs := 0
	prev := cfg.DenseFeatures
	for _, h := range cfg.BottomMLP {
		macs += prev * h
		prev = h
	}
	macs += prev * cfg.EmbeddingDim
	f := len(cfg.TableSizes) + 1
	prev = cfg.EmbeddingDim + f*(f-1)/2 // interaction output feeds the top MLP
	for _, h := range cfg.TopMLP {
		macs += prev * h
		prev = h
	}
	macs += prev * 1
	macs += f * (f - 1) / 2 * cfg.EmbeddingDim // interaction dots
	return float64(macs)
}

// stepStats decomposes one training step into the modelled durations of
// its components, each tagged (implicitly) with the resource it occupies:
// lookup/compress/decompress/mlp/other run on the device lane, the two
// all-to-alls on the intra-/inter-node links, the allreduce on the inter
// link. Step sums them serially; the pipelined driver replays them onto a
// netmodel.Timeline so transfer components overlap compute.
type stepStats struct {
	lookup     time.Duration
	compress   time.Duration
	decompress time.Duration
	mlp        time.Duration
	other      time.Duration
	fwd        netmodel.LinkCost // forward all-to-all, metadata included
	bwd        netmodel.LinkCost // backward all-to-all
	allreduce  time.Duration
}

// serial is the synchronous step cost: every component back to back.
func (s stepStats) serial() time.Duration {
	return s.lookup + s.compress + s.fwd.Total() + s.decompress +
		s.mlp + s.other + s.bwd.Total() + s.allreduce
}

// Step runs one synchronous training iteration over the global batch:
//
//  1. owners gather each table's lookups and scatter them shard-wise through
//     the (optionally compressed) forward all-to-all;
//  2. every rank runs forward/backward over its batch shard on its MLP
//     replica;
//  3. lookup gradients return to the table owners through the backward
//     all-to-all and are scattered into the sharded tables;
//  4. dense MLP gradients are all-reduced and applied in lockstep.
//
// The returned loss is the global-batch mean BCE. With one rank and no
// codec this reproduces model.DLRM.TrainStep bit-for-bit. If any rank
// fails (e.g. a codec error), the step completes its collectives but
// applies no parameter updates, so an errored Step leaves the model as it
// was.
//
// Every buffer the step touches lives in per-rank workspaces allocated in
// NewTrainer, so steady-state stepping performs only a small, bounded
// number of allocations (goroutine fan-out and collective handles); the
// per-table codec work inside a rank fans out across the trainer's codec
// workers when cores are spare.
func (t *Trainer) Step(b *criteo.Batch) (float32, error) {
	loss, _, err := t.runStep(b)
	return loss, err
}

// runStep executes the step's math and bucket accounting and additionally
// returns the step's modelled component costs for schedulers. The math and
// every charged bucket are identical no matter which driver (Step or
// RunPipelined) calls it — only how the components compose into an
// end-to-end time differs between drivers.
func (t *Trainer) runStep(b *criteo.Batch) (float32, stepStats, error) {
	n := b.N()
	ranks := t.opts.Ranks
	numTables := len(t.opts.Model.TableSizes)
	dim := t.opts.Model.EmbeddingDim
	if n == 0 {
		return 0, stepStats{}, fmt.Errorf("dist: empty batch")
	}
	if len(b.Indices) != numTables {
		return 0, stepStats{}, fmt.Errorf("dist: batch has %d index slices for %d tables", len(b.Indices), numTables)
	}
	for tb, idx := range b.Indices {
		if len(idx) != n {
			return 0, stepStats{}, fmt.Errorf("dist: table %d has %d indices for %d samples", tb, len(idx), n)
		}
	}
	iter := t.iter
	t.iter++

	// Iteration-wise adaptive error bounds: tune sequentially before the
	// rank fan-out so codec state is only read concurrently.
	if t.opts.Controller != nil {
		for tb, c := range t.codecs {
			if eb, ok := c.(codec.ErrorBounded); ok {
				eb.SetErrorBound(t.opts.Controller.EBAt(tb, iter))
			}
		}
	}

	sc := &t.scr
	sc.reset()
	shardBoundsInto(n, sc.start, sc.count)
	start, count := sc.start, sc.count
	// st collects the step's modelled component costs. Collective costs are
	// written by rank 0's goroutine only; device components are filled in
	// after the fan-out joins. Run's WaitGroup orders both against the
	// final read.
	var st stepStats

	t.cl.Run(func(rank *cluster.Rank) {
		r := rank.ID
		ws := t.ws[r]
		// fail records a step-level failure (e.g. a codec error) and keeps
		// going: the rank still runs its collectives so the fleet stays
		// aligned, and the OrFlag exchange below makes every rank skip the
		// parameter updates — an errored Step leaves the model untouched.
		// abort is for transport failures: the fabric itself is broken, so
		// the rank records the error and bails out (every peer's collectives
		// are failing the same way; nobody is left blocking).
		fail := func(err error) {
			if sc.errs[r] == nil {
				sc.errs[r] = err
			}
		}
		abort := func(err error) {
			if sc.errs[r] == nil {
				sc.errs[r] = err
			}
			sc.fatal[r] = true
		}

		// --- stage 1: owners gather lookups, compress, fuse, exchange ---
		cnt := count[r]
		for tb := range ws.got {
			ws.got[tb] = false
			ws.gotGrad[tb] = false
		}
		owned := t.owned[r]
		t.parallelDo(len(owned), func(k int) {
			tb := owned[k]
			ws.tblErr[tb] = nil
			ws.tblCompDur[tb] = 0
			ws.tblRawBytes[tb], ws.tblCmpBytes[tb] = 0, 0
			tab := t.tmpl.Emb.Tables[tb]
			c := t.codecFor(tb)
			for dst := 0; dst < ranks; dst++ {
				buf := ws.tblFrame[tb][dst][:0]
				ws.tblFrame[tb][dst] = buf
				if count[dst] == 0 {
					continue
				}
				idx := b.Indices[tb][start[dst] : start[dst]+count[dst]]
				if dst == r {
					// The local shard never crosses the wire (and is never
					// compressed): gather it straight into the lookup slot.
					ws.lookups[tb] = ws.lookups[tb].Resize(count[dst], dim)
					tab.LookupIntoWorkers(ws.lookups[tb], idx, t.computeWorkers)
					ws.got[tb] = true
					continue
				}
				ws.tblChunk[tb] = ws.tblChunk[tb].Resize(count[dst], dim)
				chunk := ws.tblChunk[tb]
				tab.LookupIntoWorkers(chunk, idx, t.computeWorkers)
				if c == nil {
					ws.tblFrame[tb][dst] = appendFrameFloats(buf, tb, chunk.Data)
					continue
				}
				framed, hdrOff := appendFrameHeader(buf, tb, encCodec)
				out, err := codec.CompressAppend(c, framed, chunk.Data, dim)
				if err != nil {
					// Record the failure but keep the exchange aligned by
					// falling back to the raw payload.
					if ws.tblErr[tb] == nil {
						ws.tblErr[tb] = fmt.Errorf("dist: rank %d table %d compress: %w", r, tb, err)
					}
					ws.tblFrame[tb][dst] = appendFrameFloats(ws.tblFrame[tb][dst][:0], tb, chunk.Data)
					continue
				}
				patchFrameLen(out, hdrOff)
				ws.tblFrame[tb][dst] = out
				raw := int64(len(chunk.Data)) * 4
				ws.tblCompDur[tb] += netmodel.CodecTime(raw, t.rates[tb].Compress)
				ws.tblRawBytes[tb] += raw
				ws.tblCmpBytes[tb] += int64(len(out) - hdrOff - frameHeaderBytes)
			}
		})
		// Fuse the per-table frames into one buffer per peer, in table
		// order, so the wire bytes match the sequential path exactly.
		for dst := 0; dst < ranks; dst++ {
			ws.send[dst] = ws.send[dst][:0]
		}
		sc.lookupBytes[r] = int64(len(owned)) * int64(n) * int64(dim) * 4
		for _, tb := range owned {
			if ws.tblErr[tb] != nil {
				fail(ws.tblErr[tb])
			}
			sc.compDur[r] += ws.tblCompDur[tb]
			sc.fwdRaw[r] += ws.tblRawBytes[tb]
			sc.fwdComp[r] += ws.tblCmpBytes[tb]
			for dst := 0; dst < ranks; dst++ {
				if len(ws.tblFrame[tb][dst]) > 0 {
					ws.send[dst] = append(ws.send[dst], ws.tblFrame[tb][dst]...)
				}
			}
		}
		fwdOp := rank.IAllToAllV(ws.send, t.anyCodec, "fwd-a2a", t.opts.Algo)
		recv, err := fwdOp.Await()
		if err != nil {
			abort(err)
			return
		}
		if r == 0 {
			st.fwd = fwdOp.Cost()
		}

		// --- stage 2: reconstruct the local shard's lookups ---
		ws.decJobs = ws.decJobs[:0]
		for from := 0; from < ranks; from++ {
			err := parseFrames(recv[from], func(tb int, enc byte, payload []byte) error {
				if tb < 0 || tb >= numTables {
					return fmt.Errorf("dist: frame for unknown table %d", tb)
				}
				if ws.got[tb] {
					return fmt.Errorf("dist: duplicate lookup frame for table %d at rank %d", tb, r)
				}
				ws.got[tb] = true
				ws.decJobs = append(ws.decJobs, decJob{tb: tb, enc: enc, payload: payload})
				return nil
			})
			if err != nil {
				fail(err)
			}
		}
		t.parallelDo(len(ws.decJobs), func(k int) {
			j := ws.decJobs[k]
			tb := j.tb
			ws.tblErr[tb] = nil
			ws.tblDecDur[tb] = 0
			m := ws.lookups[tb].Resize(cnt, dim)
			ws.lookups[tb] = m
			switch j.enc {
			case encRaw:
				if err := bytesToFloats(m.Data, j.payload); err != nil {
					ws.tblErr[tb] = err
				}
			case encCodec:
				gotDim, err := codec.DecompressInto(t.codecFor(tb), m.Data, j.payload)
				switch {
				case err != nil:
					ws.tblErr[tb] = fmt.Errorf("dist: table %d decompress: %w", tb, err)
				case gotDim != dim:
					ws.tblErr[tb] = fmt.Errorf("dist: table %d reconstruction has dim %d, want %d", tb, gotDim, dim)
				default:
					ws.tblDecDur[tb] = netmodel.CodecTime(int64(cnt*dim)*4, t.rates[tb].Decompress)
				}
			default:
				ws.tblErr[tb] = fmt.Errorf("dist: unknown frame encoding %d", j.enc)
			}
		})
		for _, j := range ws.decJobs {
			if ws.tblErr[j.tb] != nil {
				fail(ws.tblErr[j.tb])
			}
			sc.decompDur[r] += ws.tblDecDur[j.tb]
		}
		if cnt > 0 && sc.errs[r] == nil {
			for tb := range ws.lookups {
				if !ws.got[tb] {
					fail(fmt.Errorf("dist: rank %d received no lookups for table %d", r, tb))
					break
				}
			}
		}

		// --- stage 3: local forward/backward on the shard ---
		var dLookups []*tensor.Matrix
		rp := t.replicas[r]
		rp.m.ZeroGrad() // ranks without samples contribute zero gradients
		if cnt > 0 && sc.errs[r] == nil {
			if t.fwdHook != nil {
				for tb := 0; tb < numTables; tb++ {
					t.fwdHook(r, tb, ws.lookups[tb], b.Indices[tb][start[r]:start[r]+cnt])
				}
			}
			// The dense shard aliases the batch's contiguous row range: the
			// model only reads its inputs, so no defensive copy is needed.
			dense := ws.denseView
			dense.Rows, dense.Cols = cnt, b.Dense.Cols
			dense.Data = b.Dense.Data[start[r]*b.Dense.Cols : (start[r]+cnt)*b.Dense.Cols]
			labels := b.Labels[start[r] : start[r]+cnt]
			logits := rp.m.ForwardFromLookups(dense, ws.lookups)
			ws.dLogits = ws.dLogits.Resize(cnt, 1)
			loss := nn.BCEWithLogitsInto(ws.dLogits, logits, labels)
			sc.losses[r] = loss
			// BCEWithLogits divides by the shard size; rescale so the
			// summed gradients equal the global-batch mean.
			if cnt != n {
				tensor.Scale(float32(cnt)/float32(n), ws.dLogits.Data)
			}
			dLookups = rp.m.Backward(ws.dLogits)
		}

		// --- stage 4: backward all-to-all routes lookup grads to owners ---
		for dst := 0; dst < ranks; dst++ {
			ws.send2[dst] = ws.send2[dst][:0]
		}
		if dLookups != nil {
			for tb := 0; tb < numTables; tb++ {
				dst := t.owner(tb)
				ws.send2[dst] = appendFrameFloats(ws.send2[dst], tb, dLookups[tb].Data)
			}
		}
		bwdOp := rank.IAllToAllV(ws.send2, false, "bwd-a2a", t.opts.Algo)
		recv2, err := bwdOp.Await()
		if err != nil {
			abort(err)
			return
		}
		if r == 0 {
			st.bwd = bwdOp.Cost()
		}

		for from := 0; from < ranks; from++ {
			err := parseFrames(recv2[from], func(tb int, enc byte, payload []byte) error {
				if tb < 0 || tb >= numTables || t.owner(tb) != r || enc != encRaw {
					return fmt.Errorf("dist: bad gradient frame (table %d, enc %d) at rank %d", tb, enc, r)
				}
				g := ws.gradOf[tb]
				if !ws.gotGrad[tb] {
					g = g.Resize(n, dim)
					ws.gradOf[tb] = g
					ws.gotGrad[tb] = true
				}
				rows := g.Data[start[from]*dim : (start[from]+count[from])*dim]
				return bytesToFloats(rows, payload)
			})
			if err != nil {
				fail(err)
			}
		}
		// Agree fleet-wide on whether any rank failed in stages 1-4 (there
		// are no failure sources between here and the optimizer): if one
		// did, every rank skips all updates so the model stays untouched.
		stepBad, err := rank.OrFlag(sc.errs[r] != nil)
		if err != nil {
			abort(err)
			return
		}
		if !stepBad {
			// Scatter in table order so duplicate-index accumulation
			// matches the single-process trainer.
			for tb := 0; tb < numTables; tb++ {
				if t.owner(tb) != r || !ws.gotGrad[tb] {
					continue
				}
				t.tmpl.Emb.Tables[tb].ApplySGD(
					embedding.SparseGrad{Indices: b.Indices[tb], Grad: ws.gradOf[tb]}, t.opts.EmbLR)
			}
		}

		// --- stage 5: data-parallel gradient AllReduce + optimizer ---
		flattenGrads(ws.params, ws.gradBuf)
		arOp := rank.IAllReduceSum(ws.gradBuf, "allreduce")
		if err := arOp.Await(); err != nil {
			abort(err)
			return
		}
		if r == 0 {
			st.allreduce = arOp.Cost()
		}
		if !stepBad {
			unflattenGrads(ws.gradBuf, ws.params)
			rp.opt.Step(ws.params)
		}

		// Publish this rank's statistics so every process aggregates the
		// step's global accounting from identical inputs.
		var errStr string
		if sc.errs[r] != nil {
			errStr = sc.errs[r].Error()
		}
		ws.statsBlob = appendRankStats(ws.statsBlob[:0], rankStats{
			loss:        sc.losses[r],
			lookupBytes: sc.lookupBytes[r],
			compress:    sc.compDur[r],
			decompress:  sc.decompDur[r],
			fwdRaw:      sc.fwdRaw[r],
			fwdComp:     sc.fwdComp[r],
			errStr:      errStr,
		})
		if err := rank.GatherAll(ws.statsBlob, ws.gathered); err != nil {
			abort(err)
		}
	})

	// A transport failure leaves no coherent global statistics; surface it
	// directly (hosted ranks only — peers observe their own copy).
	local := t.cl.Local()
	for _, r := range local {
		if sc.fatal[r] {
			return 0, stepStats{}, sc.errs[r]
		}
	}
	// Fill the rank-indexed accounting from the gathered records — globally
	// identical, so distributed processes aggregate the same values the
	// all-in-process run computes directly.
	for r, rec := range t.ws[local[0]].gathered {
		s, err := decodeRankStats(rec)
		if err != nil {
			return 0, stepStats{}, fmt.Errorf("dist: rank %d step stats: %w", r, err)
		}
		sc.losses[r] = s.loss
		sc.lookupBytes[r] = s.lookupBytes
		sc.compDur[r] = s.compress
		sc.decompDur[r] = s.decompress
		sc.fwdRaw[r] = s.fwdRaw
		sc.fwdComp[r] = s.fwdComp
		if sc.errs[r] == nil && s.errStr != "" {
			sc.errs[r] = errors.New(s.errStr)
		}
	}

	for _, err := range sc.errs {
		if err != nil {
			return 0, stepStats{}, err
		}
	}

	// Charge modelled compute once per step for the parallel device fleet
	// (the busiest rank bounds the synchronous step).
	maxCnt := 0
	for _, c := range count {
		maxCnt = max(maxCnt, c)
	}
	st.mlp = t.opts.Device.MLPTime(t.stepFlops(maxCnt))
	t.cl.AddSimTime("mlp", st.mlp)
	if t.opts.OtherComputeFactor > 0 {
		st.other = time.Duration(t.opts.OtherComputeFactor * float64(st.mlp))
		t.cl.AddSimTime("other", st.other)
	}
	st.lookup = t.opts.Device.LookupTime(maxInt64(sc.lookupBytes))
	t.cl.AddSimTime("lookup", st.lookup)
	if d := maxDur(sc.compDur); d > 0 {
		st.compress = d
		t.cl.AddSimTime("compress", d)
	}
	if d := maxDur(sc.decompDur); d > 0 {
		st.decompress = d
		t.cl.AddSimTime("decompress", d)
	}
	for r := 0; r < ranks; r++ {
		t.fwdRawBytes += sc.fwdRaw[r]
		t.fwdCompBytes += sc.fwdComp[r]
	}

	if ranks == 1 {
		return sc.losses[0], st, nil
	}
	var loss float64
	for r := 0; r < ranks; r++ {
		loss += float64(sc.losses[r]) * float64(count[r])
	}
	return float32(loss / float64(n)), st, nil
}

func flattenGrads(params []nn.Param, buf []float32) {
	o := 0
	for _, p := range params {
		copy(buf[o:], p.Grad)
		o += len(p.Grad)
	}
}

func unflattenGrads(buf []float32, params []nn.Param) {
	o := 0
	for _, p := range params {
		copy(p.Grad, buf[o:o+len(p.Grad)])
		o += len(p.Grad)
	}
}

func maxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func maxDur(xs []time.Duration) time.Duration {
	var m time.Duration
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
