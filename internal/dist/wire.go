package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Every all-to-all payload in the trainer is a sequence of frames, one per
// embedding table, fused into a single buffer per rank pair (the paper's
// buffer-fusion optimization, §III-E: one collective per step instead of one
// per table). A frame is
//
//	table  uint32  | enc byte | payloadLen uint32 | payload
//
// where enc selects raw little-endian float32 rows or a self-contained codec
// frame produced by the table's codec.
const (
	encRaw   byte = 0 // little-endian float32 rows
	encCodec byte = 1 // codec.Codec frame

	frameHeaderBytes = 9
)

// appendFrame appends one table frame to dst and returns the grown buffer.
func appendFrame(dst []byte, table int, enc byte, payload []byte) []byte {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(table))
	hdr[4] = enc
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendFrameHeader reserves a frame header at the end of dst, returning the
// grown buffer and the header's offset. The payload length is unknown until
// the payload is appended; patchFrameLen fills it in. This is how the
// workspace path frames codec output without a detour through a temporary
// payload slice.
func appendFrameHeader(dst []byte, table int, enc byte) ([]byte, int) {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(table))
	hdr[4] = enc
	return append(dst, hdr[:]...), len(dst)
}

// patchFrameLen records the length of the payload appended after the header
// at off.
func patchFrameLen(dst []byte, off int) {
	binary.LittleEndian.PutUint32(dst[off+5:off+9], uint32(len(dst)-off-frameHeaderBytes))
}

// appendFrameFloats appends a raw-encoded frame holding vals, serializing
// the floats straight into dst (the zero-allocation twin of
// appendFrame(dst, table, encRaw, floatsToBytes(vals))): one grow, then
// fixed-offset stores.
func appendFrameFloats(dst []byte, table int, vals []float32) []byte {
	o := len(dst)
	dst = append(dst, make([]byte, frameHeaderBytes+4*len(vals))...)
	binary.LittleEndian.PutUint32(dst[o:o+4], uint32(table))
	dst[o+4] = encRaw
	binary.LittleEndian.PutUint32(dst[o+5:o+9], uint32(4*len(vals)))
	o += frameHeaderBytes
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[o+4*i:], math.Float32bits(v))
	}
	return dst
}

// parseFrames walks the fused buffer, invoking fn once per frame.
func parseFrames(buf []byte, fn func(table int, enc byte, payload []byte) error) error {
	for len(buf) > 0 {
		if len(buf) < frameHeaderBytes {
			return fmt.Errorf("dist: truncated frame header (%d trailing bytes)", len(buf))
		}
		table := int(binary.LittleEndian.Uint32(buf[0:4]))
		enc := buf[4]
		n := int(binary.LittleEndian.Uint32(buf[5:9]))
		buf = buf[frameHeaderBytes:]
		if len(buf) < n {
			return fmt.Errorf("dist: frame for table %d wants %d payload bytes, have %d", table, n, len(buf))
		}
		if err := fn(table, enc, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// floatsToBytes serializes vals as little-endian float32.
func floatsToBytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// bytesToFloats deserializes b into dst, which must match exactly.
func bytesToFloats(dst []float32, b []byte) error {
	if len(b) != 4*len(dst) {
		return fmt.Errorf("dist: raw payload is %d bytes, want %d", len(b), 4*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return nil
}
