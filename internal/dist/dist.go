package dist

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/interaction"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// Default learning rates, matching the single-process recipe the
// experiment drivers use (SGD on the dense MLPs, scaled SGD on the sparse
// embedding rows).
const (
	DefaultDenseLR float32 = 0.05
	DefaultEmbLR   float32 = 0.3
)

// Options configures the distributed trainer.
type Options struct {
	// Ranks is the simulated GPU count.
	Ranks int
	// Transport, when non-nil, runs the trainer's collectives over the
	// given fabric endpoint instead of the in-process channel fabric. The
	// endpoint's World must equal Ranks; the trainer then hosts only the
	// endpoint's rank, and the caller runs one identically-configured
	// trainer per rank (one per process for cluster/tcptransport), feeding
	// every process the same deterministic batch stream. Each process steps
	// only its own rank — model state owned by other ranks goes stale
	// locally — but losses and rank 0's sim-time buckets are bit-identical
	// to the in-process run.
	Transport cluster.Transport
	// Model describes the DLRM instance replicated (MLPs) and sharded
	// (embedding tables) across ranks.
	Model model.Config
	// Net is the interconnect topology; nil (or a zero-value Network, the
	// pre-interface way of requesting the default) means the flat
	// netmodel.Slingshot10(). Pass a netmodel.Hierarchical to model the
	// paper's two-level testbed — the embedding all-to-alls then charge
	// separate "fwd-a2a-intra"/"fwd-a2a-inter" (and bwd) buckets.
	Net netmodel.Topology
	// Algo selects the all-to-all algorithm for the embedding exchanges.
	// The default cluster.A2AAuto uses the hierarchical two-phase
	// algorithm whenever Net spans more than one node and the direct
	// exchange otherwise; payloads are bit-identical either way.
	Algo cluster.A2AAlgo
	// Device models per-GPU compute; the zero value means A100().
	Device netmodel.Device
	// OtherComputeFactor charges an "other" bucket of this fraction of the
	// MLP time per step, standing in for non-MLP compute (optimizer, data
	// loading, feature interaction) so breakdown shares match Fig. 1.
	OtherComputeFactor float64
	// CodecFor, when non-nil, supplies the communication codec for each
	// table's forward all-to-all traffic (nil return = that table is sent
	// uncompressed). Return a distinct instance per table: instances are
	// shared across rank goroutines, which is safe because Compress and
	// Decompress are pure, but per-table error bounds mutate codec state.
	CodecFor func(table int) codec.Codec
	// CodecWorkers bounds the intra-rank worker pool that fans per-table
	// compress/decompress work across idle cores (multi-table owners are
	// the common case: Criteo has 26 tables). 0 picks
	// clamp(GOMAXPROCS/Ranks, 1, 8) — one worker (a plain loop, no extra
	// goroutines) unless the machine has spare cores per rank; negative
	// forces the sequential path.
	CodecWorkers int
	// ComputeWorkers bounds the intra-rank parallel width for each rank's
	// compute between the collective barriers: the MLP matmuls, the pairwise
	// interaction, the local-shard embedding gathers, and the dense
	// optimizer update all partition their rows across the shared tensor
	// worker pool at this width. Results are bit-identical at any setting —
	// the width only changes which goroutine computes a row. 0 picks
	// clamp(GOMAXPROCS/Ranks, 1, 8) like CodecWorkers; negative forces the
	// single-threaded path (no pool traffic at all).
	ComputeWorkers int
	// Controller, when non-nil, drives per-table per-iteration error bounds
	// (the dual-level adaptive strategy): before each step, every
	// error-bounded codec gets SetErrorBound(Controller.EBAt(table, iter)).
	Controller *adapt.Controller
	// Faults, when non-nil, arms the cluster with a fault-injection plan:
	// per-collective latency jitter and per-rank slow multipliers inflate
	// the simulated cost of every collective (the straggler's factor
	// dominates, since a collective completes when its slowest participant
	// does). Faults scale the modelled clock only — losses are
	// bit-identical to the healthy run. Drop/rejoin events in the plan are
	// ignored here; the scenario layer's elastic runner consumes them.
	// Under a wire transport every process must pass the same plan so
	// rank 0 (where cost is computed) always has it.
	Faults *cluster.FaultPlan
	// DenseLR is the SGD learning rate for the data-parallel MLPs
	// (0 = DefaultDenseLR).
	DenseLR float32
	// EmbLR is the sparse-SGD learning rate for embedding rows
	// (0 = DefaultEmbLR).
	EmbLR float32
}

// replica is one rank's data-parallel model state: a DLRM whose MLPs are
// private bit-identical copies (so replicas stay in lockstep under
// all-reduced gradients) and whose embedding group is the shared,
// model-parallel one — replicas only ever touch it through the lookups the
// all-to-all delivers, via ForwardFromLookups/Backward.
type replica struct {
	m   *model.DLRM
	opt nn.Optimizer
}

// Trainer runs hybrid-parallel DLRM training on a simulated cluster.
type Trainer struct {
	opts Options
	cl   *cluster.Cluster

	// tmpl holds the shared embedding tables (each stored once, owned by
	// rank table%Ranks) and doubles as rank 0's MLP replica, so Evaluate
	// can run a plain single-process forward over the trained weights.
	tmpl     *model.DLRM
	replicas []*replica

	// per-table codecs and their calibrated kernel rates (nil if
	// Options.CodecFor is nil). anyCodec reports whether at least one
	// table compresses, making the all-to-all variable-size.
	codecs   []codec.Codec
	rates    []netmodel.CodecRates
	anyCodec bool

	numParams int // flattened dense-gradient length for the AllReduce
	iter      int

	// Steady-state workspaces: per-rank step buffers, rank-indexed step
	// accounting, the owned-table list per rank, the intra-rank codec
	// worker budget, and the cached per-sample MAC count for stepFlops —
	// all built once in NewTrainer so Step allocates only a bounded
	// handful of objects (goroutine fan-out, collective handles).
	ws             []*stepWorkspace
	scr            stepScratch
	owned          [][]int
	codecWorkers   int
	computeWorkers int
	stepMacs       float64

	// forward all-to-all volume accounting across all steps.
	fwdRawBytes  int64
	fwdCompBytes int64

	// fwdHook, when set (tests only), observes each rank's reconstructed
	// lookup shard right after the forward all-to-all: recon is the
	// [shard, dim] matrix for table and indices the shard's global rows.
	fwdHook func(rank, table int, recon *tensor.Matrix, indices []int32)

	// Overlap-schedule state (RunPipelined only). tl is the per-link
	// occupancy timeline the pipelined steps are replayed onto; pipeSerial
	// accumulates what the same steps would cost scheduled serially.
	// pending/pendingFwdDone carry the one-step lookahead: the stats of the
	// step whose compute is not yet scheduled and the modelled completion
	// of its (prefetched) forward transfer.
	tl             *netmodel.Timeline
	pipeSerial     time.Duration
	pending        *stepStats
	pendingFwdDone time.Duration

	// Close-once state: the first Close's result, replayed by later calls.
	closed   bool
	closeErr error
}

// NewTrainer validates opts, builds the template model, the per-rank MLP
// replicas, and the per-table codecs, and returns the trainer.
func NewTrainer(opts Options) (*Trainer, error) {
	if opts.Ranks <= 0 {
		return nil, fmt.Errorf("dist: Ranks must be positive, got %d", opts.Ranks)
	}
	if err := opts.Model.Validate(); err != nil {
		return nil, err
	}
	if opts.Net == nil {
		opts.Net = netmodel.Slingshot10()
	} else if n, ok := opts.Net.(netmodel.Network); ok && n == (netmodel.Network{}) {
		// The pre-Topology API documented the zero value as "use the
		// default"; honor that so such callers don't run on a
		// zero-bandwidth network.
		opts.Net = netmodel.Slingshot10()
	}
	if (opts.Device == netmodel.Device{}) {
		opts.Device = netmodel.A100()
	}
	if opts.DenseLR == 0 {
		opts.DenseLR = DefaultDenseLR
	}
	if opts.EmbLR == 0 {
		opts.EmbLR = DefaultEmbLR
	}
	numTables := len(opts.Model.TableSizes)
	if opts.Controller != nil {
		if opts.CodecFor == nil {
			return nil, fmt.Errorf("dist: Controller requires CodecFor (nothing to drive error bounds on)")
		}
		if opts.Controller.NumTables() != numTables {
			return nil, fmt.Errorf("dist: controller covers %d tables, model has %d",
				opts.Controller.NumTables(), numTables)
		}
	}

	tmpl, err := model.New(opts.Model)
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	if opts.Transport != nil {
		if w := opts.Transport.World(); w != opts.Ranks {
			return nil, fmt.Errorf("dist: transport world size %d does not match Ranks %d", w, opts.Ranks)
		}
		if cl, err = cluster.NewOverTransport(opts.Transport, opts.Net); err != nil {
			return nil, err
		}
	} else {
		cl = cluster.New(opts.Ranks, opts.Net)
	}
	t := &Trainer{opts: opts, cl: cl, tmpl: tmpl}
	if opts.Faults != nil {
		if err := cl.SetFaultPlan(opts.Faults); err != nil {
			cl.Close()
			return nil, err
		}
	}

	if opts.CodecFor != nil {
		paper := netmodel.PaperCodecRates()
		// Conservative default for codecs the calibration table doesn't
		// know about.
		def := netmodel.CodecRates{Compress: 50e9, Decompress: 100e9}
		t.codecs = make([]codec.Codec, numTables)
		t.rates = make([]netmodel.CodecRates, numTables)
		for tb := 0; tb < numTables; tb++ {
			c := opts.CodecFor(tb)
			t.codecs[tb] = c
			if c == nil {
				continue
			}
			t.anyCodec = true
			if r, ok := paper[c.Name()]; ok {
				t.rates[tb] = r
			} else {
				t.rates[tb] = def
			}
		}
		if opts.Controller != nil {
			// The controller tunes bounds per table; a shared ErrorBounded
			// instance would silently leave every table at the last
			// table's bound.
			seen := make(map[uintptr]int)
			for tb, c := range t.codecs {
				if _, ok := c.(codec.ErrorBounded); !ok {
					continue
				}
				v := reflect.ValueOf(c)
				if v.Kind() != reflect.Pointer {
					continue
				}
				if prev, dup := seen[v.Pointer()]; dup {
					return nil, fmt.Errorf("dist: CodecFor returned the same error-bounded codec for tables %d and %d; the Controller needs a distinct instance per table", prev, tb)
				}
				seen[v.Pointer()] = tb
			}
		}
	}

	// Resolve the intra-rank compute width before building replicas so every
	// model layer gets it at construction. Same clamp as the codec pool: one
	// worker per rank unless the machine has spare cores, capped at 8.
	t.computeWorkers = opts.ComputeWorkers
	if t.computeWorkers == 0 {
		t.computeWorkers = min(max(runtime.GOMAXPROCS(0)/opts.Ranks, 1), 8)
	}
	if t.computeWorkers < 0 {
		t.computeWorkers = 1
	}

	for r := 0; r < opts.Ranks; r++ {
		rp := &replica{opt: &nn.SGD{LR: opts.DenseLR, Workers: t.computeWorkers}}
		if r == 0 {
			rp.m = tmpl
		} else {
			rp.m = &model.DLRM{
				Cfg:      opts.Model,
				Bottom:   tmpl.Bottom.Clone(),
				Emb:      tmpl.Emb, // shared: tables are model-parallel
				Interact: interaction.NewDotInteraction(numTables, opts.Model.EmbeddingDim),
				Top:      tmpl.Top.Clone(),
			}
		}
		rp.m.SetComputeWorkers(t.computeWorkers)
		t.replicas = append(t.replicas, rp)
	}
	for _, p := range t.replicas[0].m.DenseParams() {
		t.numParams += len(p.Value)
	}

	// Build the steady-state step machinery: owned-table lists, the codec
	// worker budget, the rank-indexed accounting scratch, and one workspace
	// per rank (each caching its replica's parameter list — the Param
	// headers are rebuilt identically by every DenseParams call, but the
	// underlying value/grad slices are stable for the trainer's lifetime).
	t.owned = make([][]int, opts.Ranks)
	for tb := 0; tb < numTables; tb++ {
		r := t.owner(tb)
		t.owned[r] = append(t.owned[r], tb)
	}
	t.codecWorkers = opts.CodecWorkers
	if t.codecWorkers == 0 {
		t.codecWorkers = min(max(runtime.GOMAXPROCS(0)/opts.Ranks, 1), 8)
	}
	t.scr = newStepScratch(opts.Ranks)
	t.ws = make([]*stepWorkspace, opts.Ranks)
	t.stepMacs = stepMacsFor(opts.Model)
	for r := 0; r < opts.Ranks; r++ {
		t.ws[r] = newStepWorkspace(opts.Ranks, numTables, t.numParams, t.replicas[r].m.DenseParams())
	}
	return t, nil
}

// owner returns the rank holding table tb's shard.
func (t *Trainer) owner(tb int) int { return tb % t.opts.Ranks }

// codecFor returns table tb's codec, or nil when running uncompressed.
func (t *Trainer) codecFor(tb int) codec.Codec {
	if t.codecs == nil {
		return nil
	}
	return t.codecs[tb]
}

// Cluster exposes the simulated process group (for SimTimes breakdowns).
func (t *Trainer) Cluster() *cluster.Cluster { return t.cl }

// Close releases the trainer's communication endpoints. Over a wire
// transport it runs the graceful shutdown handshake with the peers; on the
// in-process fabric it tears the group down. The trainer cannot step after
// Close. Close is idempotent — later calls return the first call's result
// without touching the endpoints again — and safe after a transport
// failure (a poisoned endpoint's teardown is a no-op beyond surfacing its
// error state).
func (t *Trainer) Close() error {
	if t.closed {
		return t.closeErr
	}
	t.closed = true
	t.closeErr = t.cl.Close()
	return t.closeErr
}

// CompressionRatio returns uncompressed/compressed bytes of all forward
// all-to-all traffic that went through a codec so far (1 when nothing has).
func (t *Trainer) CompressionRatio() float64 {
	if t.fwdCompBytes == 0 {
		return 1
	}
	return float64(t.fwdRawBytes) / float64(t.fwdCompBytes)
}

// Evaluate computes accuracy and log-loss over a batch with a plain
// (uncompressed, single-process) forward pass over the trained weights.
// The data-parallel replicas are kept bit-identical by construction, so the
// template's rank-0 MLPs together with the shared embedding tables are the
// global model.
//
// Evaluate requires every rank in-process: over a distributed transport
// the local process only updates the tables its own rank owns, so the
// template is stale elsewhere (scenario validation rejects tcp+eval for
// this reason).
func (t *Trainer) Evaluate(b *criteo.Batch) (acc, logloss float64) {
	logits := t.tmpl.Forward(b.Dense, b.Indices)
	return nn.Accuracy(logits, b.Labels), nn.LogLoss(logits, b.Labels)
}
