package dist

import (
	"math"
	"testing"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
)

// testSpec is a tiny scaled Kaggle-like dataset for fast trainer tests.
func testSpec() criteo.Spec { return criteo.ScaledSpec(criteo.KaggleSpec(), 100000) }

func testConfig(spec criteo.Spec, dim int) model.Config {
	return model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{16},
		TopMLP:            []int{16},
		Seed:              spec.Seed,
	}
}

// TestSingleRankParity checks that a 1-rank uncompressed distributed step is
// numerically identical to single-process model.DLRM training on the same
// generator stream: same losses every step, same evaluation afterwards.
func TestSingleRankParity(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)

	tr, err := NewTrainer(Options{Ranks: 1, Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGD{LR: DefaultDenseLR}

	genD := criteo.NewGenerator(spec)
	genS := criteo.NewGenerator(spec)
	for i := 0; i < 15; i++ {
		b := genD.NextBatch(32)
		lossD, err := tr.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		bs := genS.NextBatch(32)
		lossS := ref.TrainStep(bs.Dense, bs.Indices, bs.Labels, opt, DefaultEmbLR)
		if d := math.Abs(float64(lossD - lossS)); d > 1e-7 {
			t.Fatalf("step %d: distributed loss %v != single-process loss %v (diff %g)", i, lossD, lossS, d)
		}
	}

	eb := genD.NextBatch(256)
	accD, llD := tr.Evaluate(eb)
	accS, llS := ref.Evaluate(eb.Dense, eb.Indices, eb.Labels)
	if accD != accS || math.Abs(llD-llS) > 1e-9 {
		t.Fatalf("eval mismatch: distributed (%v, %v) vs single (%v, %v)", accD, llD, accS, llS)
	}
	if tr.CompressionRatio() != 1 {
		t.Fatalf("uncompressed trainer reports ratio %v", tr.CompressionRatio())
	}
}

// TestMultiRankTrainingConverges checks that the sharded trainer actually
// learns: the loss over the last steps must be below the first steps.
func TestMultiRankTrainingConverges(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{Ranks: 4, Model: testConfig(spec, 8)})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	var first, last float64
	const steps = 40
	for i := 0; i < steps; i++ {
		loss, err := tr.Step(gen.NextBatch(64))
		if err != nil {
			t.Fatal(err)
		}
		if i < 5 {
			first += float64(loss) / 5
		}
		if i >= steps-5 {
			last += float64(loss) / 5
		}
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first-5 mean %v, last-5 mean %v", first, last)
	}
	acc, logloss := tr.Evaluate(gen.NextBatch(512))
	if acc <= 0 || acc > 1 || math.IsNaN(logloss) {
		t.Fatalf("bad eval: acc %v logloss %v", acc, logloss)
	}
}

// TestUnevenAndTinyBatches covers shards of unequal size and ranks that
// receive no samples at all.
func TestUnevenAndTinyBatches(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{Ranks: 4, Model: testConfig(spec, 4)})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	for _, n := range []int{10, 7, 2, 1} {
		loss, err := tr.Step(gen.NextBatch(n))
		if err != nil {
			t.Fatalf("batch %d: %v", n, err)
		}
		if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
			t.Fatalf("batch %d: loss %v", n, loss)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 4)

	if _, err := NewTrainer(Options{Ranks: 0, Model: cfg}); err == nil {
		t.Fatal("zero ranks must fail")
	}
	if _, err := NewTrainer(Options{Ranks: 2}); err == nil {
		t.Fatal("invalid model config must fail")
	}

	ctrl, err := adapt.NewController([]adapt.Class{adapt.ClassMedium}, adapt.PaperEBConfig(), adapt.ScheduleNone, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(Options{Ranks: 2, Model: cfg, Controller: ctrl}); err == nil {
		t.Fatal("controller without codecs must fail")
	}
	mkCodec := func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) }
	if _, err := NewTrainer(Options{Ranks: 2, Model: cfg, Controller: ctrl, CodecFor: mkCodec}); err == nil {
		t.Fatal("controller/table count mismatch must fail")
	}

	tr, err := NewTrainer(Options{Ranks: 2, Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	bad := criteo.NewGenerator(spec).NextBatch(8)
	bad.Indices = bad.Indices[:3]
	if _, err := tr.Step(bad); err == nil {
		t.Fatal("malformed batch must fail")
	}
}

func TestShardBounds(t *testing.T) {
	start, count := shardBounds(10, 4)
	wantStart, wantCount := []int{0, 3, 6, 8}, []int{3, 3, 2, 2}
	for r := range start {
		if start[r] != wantStart[r] || count[r] != wantCount[r] {
			t.Fatalf("shard %d: got (%d,%d) want (%d,%d)", r, start[r], count[r], wantStart[r], wantCount[r])
		}
	}
}
