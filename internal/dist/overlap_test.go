package dist

import (
	"math"
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/nn"
)

// paperishOptions builds trainer options at a scale where both comm and
// compute are nontrivial, so the overlap schedule has something to hide.
func paperishOptions(ranks int, hier, compressed bool) Options {
	spec := testSpec()
	o := Options{
		Ranks:              ranks,
		Model:              testConfig(spec, 16),
		Device:             netmodel.Device{FLOPS: 3e12, MemBandwidth: 1.3e12},
		OtherComputeFactor: 0.8,
	}
	if hier {
		o.Net = netmodel.PaperHierarchical(4)
	} else {
		o.Net = netmodel.Slingshot10()
	}
	if compressed {
		o.CodecFor = func(int) codec.Codec { return hybrid.New(0.02, hybrid.Auto) }
	}
	return o
}

// TestPipelinedSingleRankBitParity checks the 1-rank pipelined run is the
// degenerate no-op case: bit-identical to single-process training AND zero
// overlap benefit (no links, so the timeline is one serial device lane).
func TestPipelinedSingleRankBitParity(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	tr, err := NewTrainer(Options{Ranks: 1, Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGD{LR: DefaultDenseLR}

	genD := criteo.NewGenerator(spec)
	genS := criteo.NewGenerator(spec)
	losses, err := tr.RunPipelined(12, func(int) *criteo.Batch { return genD.NextBatch(32) })
	if err != nil {
		t.Fatal(err)
	}
	for i, lossD := range losses {
		bs := genS.NextBatch(32)
		lossS := ref.TrainStep(bs.Dense, bs.Indices, bs.Labels, opt, DefaultEmbLR)
		if lossD != lossS {
			t.Fatalf("step %d: pipelined loss %v != single-process loss %v", i, lossD, lossS)
		}
	}
	eb := genD.NextBatch(256)
	accD, llD := tr.Evaluate(eb)
	accS, llS := ref.Evaluate(eb.Dense, eb.Indices, eb.Labels)
	if accD != accS || math.Abs(llD-llS) > 1e-12 {
		t.Fatalf("eval mismatch: pipelined (%v, %v) vs single (%v, %v)", accD, llD, accS, llS)
	}
	// One rank has no peers: nothing to overlap, so the overlapped and
	// serial schedules must coincide exactly.
	if tr.OverlappedSimTime() != tr.SerialSimTime() {
		t.Fatalf("1-rank overlap benefit: overlapped %v != serial %v",
			tr.OverlappedSimTime(), tr.SerialSimTime())
	}
	if tr.OverlappedSimTime() <= 0 {
		t.Fatal("1-rank pipelined run modelled zero time")
	}
}

// TestPipelinedLossParityWithStep checks an N-rank pipelined run produces
// bit-identical losses and buckets to a Step loop over the same batches —
// the math is shared; only the end-to-end clock composition differs.
func TestPipelinedLossParityWithStep(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		trP, err := NewTrainer(paperishOptions(8, true, compressed))
		if err != nil {
			t.Fatal(err)
		}
		trS, err := NewTrainer(paperishOptions(8, true, compressed))
		if err != nil {
			t.Fatal(err)
		}
		genP := criteo.NewGenerator(testSpec())
		genS := criteo.NewGenerator(testSpec())

		pipeLosses, err := trP.RunPipelined(8, func(int) *criteo.Batch { return genP.NextBatch(64) })
		if err != nil {
			t.Fatal(err)
		}
		for i, pl := range pipeLosses {
			sl, err := trS.Step(genS.NextBatch(64))
			if err != nil {
				t.Fatal(err)
			}
			if pl != sl {
				t.Fatalf("compressed=%v step %d: pipelined loss %v != Step loss %v", compressed, i, pl, sl)
			}
		}
		// The breakdown buckets are charged by the shared step internals and
		// must not depend on the driver.
		p, s := trP.Cluster().SimTimes(), trS.Cluster().SimTimes()
		if len(p) != len(s) {
			t.Fatalf("compressed=%v: bucket sets differ: %v vs %v", compressed, p, s)
		}
		for k, v := range s {
			if p[k] != v {
				t.Fatalf("compressed=%v bucket %q: pipelined %v != sync %v", compressed, k, p[k], v)
			}
		}
	}
}

// TestPipelinedOverlapStrictlyFaster is the headline property: at 8+ ranks
// on the hierarchical topology, the overlapped schedule must finish
// strictly earlier than the serial one — with and without the codec — and
// must never beat the device-lane lower bound.
func TestPipelinedOverlapStrictlyFaster(t *testing.T) {
	for _, ranks := range []int{8, 16} {
		for _, compressed := range []bool{false, true} {
			tr, err := NewTrainer(paperishOptions(ranks, true, compressed))
			if err != nil {
				t.Fatal(err)
			}
			gen := criteo.NewGenerator(testSpec())
			if _, err := tr.RunPipelined(4, func(int) *criteo.Batch { return gen.NextBatch(128) }); err != nil {
				t.Fatal(err)
			}
			over, serial := tr.OverlappedSimTime(), tr.SerialSimTime()
			if over <= 0 || serial <= 0 {
				t.Fatalf("ranks=%d compressed=%v: degenerate times over=%v serial=%v", ranks, compressed, over, serial)
			}
			if over >= serial {
				t.Fatalf("ranks=%d compressed=%v: overlapped %v not strictly below serial %v",
					ranks, compressed, over, serial)
			}
		}
	}
}

// TestPipelinedSerialMatchesBreakdown ties SerialSimTime to the public
// accounting: for a trainer driven only through RunPipelined, the serial
// schedule cost is exactly the sum of all breakdown buckets.
func TestPipelinedSerialMatchesBreakdown(t *testing.T) {
	tr, err := NewTrainer(paperishOptions(8, true, true))
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(testSpec())
	if _, err := tr.RunPipelined(3, func(int) *criteo.Batch { return gen.NextBatch(64) }); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, d := range tr.Cluster().SimTimes() {
		total += int64(d)
	}
	if got := int64(tr.SerialSimTime()); got != total {
		t.Fatalf("SerialSimTime %v != bucket sum %v", tr.SerialSimTime(), total)
	}
}

// TestPipelinedRunsCompose checks two consecutive RunPipelined calls extend
// one timeline monotonically (the second cold-starts after the first's
// makespan, never before).
func TestPipelinedRunsCompose(t *testing.T) {
	tr, err := NewTrainer(paperishOptions(4, false, false))
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(testSpec())
	next := func(int) *criteo.Batch { return gen.NextBatch(32) }
	if _, err := tr.RunPipelined(2, next); err != nil {
		t.Fatal(err)
	}
	first := tr.OverlappedSimTime()
	if _, err := tr.RunPipelined(2, next); err != nil {
		t.Fatal(err)
	}
	if second := tr.OverlappedSimTime(); second <= first {
		t.Fatalf("second run did not extend the timeline: %v -> %v", first, second)
	}
	if tr.OverlappedSimTime() >= tr.SerialSimTime() {
		t.Fatalf("composed runs lost the overlap win: overlapped %v, serial %v",
			tr.OverlappedSimTime(), tr.SerialSimTime())
	}
}

// TestPipelinedStepCountValidation covers the trivial input contract.
func TestPipelinedStepCountValidation(t *testing.T) {
	tr, err := NewTrainer(paperishOptions(2, false, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunPipelined(0, func(int) *criteo.Batch { return nil }); err == nil {
		t.Fatal("RunPipelined(0) succeeded, want error")
	}
}
