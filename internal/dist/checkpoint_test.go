package dist

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/cluster/tcptransport"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
)

// stepN drives n steps from gen and returns the per-step losses.
func stepN(t *testing.T, tr *Trainer, gen *criteo.Generator, n int) []float32 {
	t.Helper()
	losses := make([]float32, 0, n)
	for i := 0; i < n; i++ {
		loss, err := tr.Step(gen.NextBatch(32))
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		losses = append(losses, loss)
	}
	return losses
}

// sameBits asserts two loss sequences are bitwise identical.
func sameBits(t *testing.T, label string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d losses vs %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Errorf("%s: step %d loss %v != %v — not bit-identical", label, i, got[i], want[i])
		}
	}
}

// uniformController returns a controller with obviously-wrong placeholder
// state, so a resume test passes only if restore overwrites it.
func uniformController(tables int) *adapt.Controller {
	base := make([]float32, tables)
	for i := range base {
		base[i] = 0.03
	}
	return &adapt.Controller{BaseEB: base, Schedule: adapt.ScheduleNone, PhaseLen: 0, StartFactor: 1}
}

// TestCheckpointResumeBitParity is the headline guarantee: save at step k,
// restore into a fresh trainer at the same world size, train to step n —
// the losses from k on are bitwise identical to the uninterrupted run.
// Exercised across codecs none/hybrid, 1 and 4 ranks, every checkpoint
// codec, and (separately) with adaptive-controller state restored
// mid-decay-phase.
func TestCheckpointResumeBitParity(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	const saveAt, total = 3, 6

	cases := []struct {
		name       string
		ranks      int
		compressed bool
		adaptive   bool
		ckptCodec  string
	}{
		{"1rank_none_lzss", 1, false, false, "lzss"},
		{"1rank_hybrid_lzss", 1, true, false, "lzss"},
		{"4ranks_none_lzss", 4, false, false, "lzss"},
		{"4ranks_hybrid_lzss", 4, true, false, "lzss"},
		{"4ranks_hybrid_raw", 4, true, false, "raw"},
		{"4ranks_hybrid_deflate", 4, true, false, "deflate"},
		{"4ranks_adaptive_middecay", 4, true, true, "lzss"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkOpts := func(ctrl *adapt.Controller) Options {
				o := Options{Ranks: tc.ranks, Model: cfg}
				if tc.compressed {
					o.CodecFor = func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) }
				}
				if tc.adaptive {
					o.Controller = ctrl
				}
				return o
			}
			var baseCtrl *adapt.Controller
			if tc.adaptive {
				// Mid-decay restore: the phase is longer than the save
				// point, so EBAt depends on the restored iter.
				baseCtrl = uniformController(len(cfg.TableSizes))
				baseCtrl.Schedule = adapt.ScheduleStepwise
				baseCtrl.PhaseLen = total - 1
				baseCtrl.StartFactor = 2
				baseCtrl.BaseEB[0] = 0.05 // non-uniform, so restore is observable
			}

			// Uninterrupted run.
			ctrlA := baseCtrl
			if baseCtrl != nil {
				cp := *baseCtrl
				cp.BaseEB = append([]float32(nil), baseCtrl.BaseEB...)
				ctrlA = &cp
			}
			trA, err := NewTrainer(mkOpts(ctrlA))
			if err != nil {
				t.Fatalf("trainer A: %v", err)
			}
			defer trA.Close()
			genA := criteo.NewGenerator(spec)
			full := stepN(t, trA, genA, total)

			// Interrupted run: train to k, checkpoint, throw the trainer
			// away.
			ctrlB := baseCtrl
			if baseCtrl != nil {
				cp := *baseCtrl
				cp.BaseEB = append([]float32(nil), baseCtrl.BaseEB...)
				ctrlB = &cp
			}
			trB, err := NewTrainer(mkOpts(ctrlB))
			if err != nil {
				t.Fatalf("trainer B: %v", err)
			}
			genB := criteo.NewGenerator(spec)
			head := stepN(t, trB, genB, saveAt)
			sameBits(t, "pre-checkpoint", full[:saveAt], head)
			var ckpt bytes.Buffer
			stats, err := trB.SaveCheckpoint(&ckpt, CheckpointOptions{Codec: tc.ckptCodec})
			if err != nil {
				t.Fatalf("save: %v", err)
			}
			if stats.RawBytes <= 0 || stats.WireBytes <= 0 {
				t.Fatalf("checkpoint stats not populated: %+v", stats)
			}
			trB.Close()

			// Fresh trainer (different init seed + placeholder controller,
			// so only a real restore can reproduce the stream), restored,
			// trained to n.
			cfgC := cfg
			cfgC.Seed = cfg.Seed + 999
			optsC := mkOpts(nil)
			optsC.Model = cfgC
			if tc.adaptive {
				optsC.Controller = uniformController(len(cfg.TableSizes))
			}
			trC, err := NewTrainer(optsC)
			if err != nil {
				t.Fatalf("trainer C: %v", err)
			}
			defer trC.Close()
			if err := trC.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}
			if trC.Iter() != saveAt {
				t.Fatalf("restored iter = %d, want %d", trC.Iter(), saveAt)
			}
			genC := criteo.NewGenerator(spec)
			for i := 0; i < saveAt; i++ {
				genC.NextBatch(32) // fast-forward the stream to the save point
			}
			tail := stepN(t, trC, genC, total-saveAt)
			sameBits(t, "resumed", full[saveAt:], tail)

			// The trained models agree too, not just the loss stream.
			evalBatch := criteo.NewGenerator(spec).NextBatch(64)
			accA, llA := trA.Evaluate(evalBatch)
			accC, llC := trC.Evaluate(evalBatch)
			if accA != accC || llA != llC {
				t.Errorf("post-resume eval differs: acc %v/%v logloss %v/%v", accA, accC, llA, llC)
			}
		})
	}
}

// TestCheckpointReshardParity: restoring a checkpoint into a trainer built
// at a different world size redistributes the tables round-robin and
// preserves every weight bit. 4→2 and 2→4.
func TestCheckpointReshardParity(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	for _, tc := range []struct{ from, to int }{{4, 2}, {2, 4}} {
		t.Run(fmt.Sprintf("%dto%d", tc.from, tc.to), func(t *testing.T) {
			trA, err := NewTrainer(Options{Ranks: tc.from, Model: cfg})
			if err != nil {
				t.Fatalf("trainer: %v", err)
			}
			defer trA.Close()
			gen := criteo.NewGenerator(spec)
			stepN(t, trA, gen, 3)
			var ckpt bytes.Buffer
			if _, err := trA.SaveCheckpoint(&ckpt, CheckpointOptions{}); err != nil {
				t.Fatalf("save: %v", err)
			}

			cfgB := cfg
			cfgB.Seed = cfg.Seed + 1 // different init: parity must come from the restore
			trB, err := NewTrainer(Options{Ranks: tc.to, Model: cfgB})
			if err != nil {
				t.Fatalf("resharded trainer: %v", err)
			}
			defer trB.Close()
			if err := trB.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}

			// Table contents preserved exactly.
			for i, tab := range trA.tmpl.Emb.Tables {
				got := trB.tmpl.Emb.Tables[i].Weights.Data
				for j, v := range tab.Weights.Data {
					if math.Float32bits(got[j]) != math.Float32bits(v) {
						t.Fatalf("table %d element %d: %v != %v after reshard", i, j, got[j], v)
					}
				}
			}
			// Dense replicas preserved and consistent across the new world.
			wantDense := trA.replicas[0].m.DenseParams()
			for r, rp := range trB.replicas {
				for pi, p := range rp.m.DenseParams() {
					for j, v := range wantDense[pi].Value {
						if math.Float32bits(p.Value[j]) != math.Float32bits(v) {
							t.Fatalf("rank %d dense tensor %d element %d differs after reshard", r, pi, j)
						}
					}
				}
			}

			// The reshard plan covers exactly the tables whose round-robin
			// owner changed, and its modelled cost lands in the "reshard"
			// bucket.
			rows := make([]int, len(cfg.TableSizes))
			copy(rows, cfg.TableSizes)
			plan, err := PlanReshard(rows, cfg.EmbeddingDim, tc.from, tc.to)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			wantMoves := 0
			for tb := range rows {
				if tb%tc.from != tb%tc.to {
					wantMoves++
				}
			}
			if len(plan.Moves) != wantMoves || wantMoves == 0 {
				t.Fatalf("plan has %d moves, want %d", len(plan.Moves), wantMoves)
			}
			trB.ChargeReshard(plan)
			if d := trB.Cluster().SimTime("reshard"); d <= 0 {
				t.Errorf("reshard bucket empty after ChargeReshard (plan moved %d bytes)", plan.MovedBytes)
			}

			// The resharded trainer keeps training.
			post := stepN(t, trB, gen, 2)
			for i, l := range post {
				if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
					t.Fatalf("post-reshard step %d loss %v", i, l)
				}
			}
		})
	}
}

// TestCheckpointRejectsMismatch: wrong shapes, wrong magic, and
// controller-presence disagreements are errors, not silent corruption.
func TestCheckpointRejectsMismatch(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	tr, err := NewTrainer(Options{Ranks: 2, Model: cfg})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	defer tr.Close()
	var ckpt bytes.Buffer
	if _, err := tr.SaveCheckpoint(&ckpt, CheckpointOptions{}); err != nil {
		t.Fatalf("save: %v", err)
	}

	if _, err := tr.SaveCheckpoint(&bytes.Buffer{}, CheckpointOptions{Codec: "hybrid"}); err == nil {
		t.Error("a lossy codec name was accepted for a checkpoint")
	}

	wide := cfg
	wide.EmbeddingDim = 16
	trWide, err := NewTrainer(Options{Ranks: 2, Model: wide})
	if err != nil {
		t.Fatalf("wide trainer: %v", err)
	}
	defer trWide.Close()
	if err := trWide.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Errorf("dim mismatch error = %v", err)
	}

	trCtrl, err := NewTrainer(Options{
		Ranks: 2, Model: cfg,
		CodecFor:   func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
		Controller: uniformController(len(cfg.TableSizes)),
	})
	if err != nil {
		t.Fatalf("controller trainer: %v", err)
	}
	defer trCtrl.Close()
	if err := trCtrl.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil || !strings.Contains(err.Error(), "controller") {
		t.Errorf("controller mismatch error = %v", err)
	}

	if err := tr.RestoreCheckpoint(bytes.NewReader([]byte("not a checkpoint at all......."))); err == nil {
		t.Error("garbage restored without error")
	}
}

// TestFaultPlanKeepsTrainingMathIdentical: a trainer under jitter and a
// 10x straggler produces bit-identical losses to the healthy run — the
// injector only inflates the simulated clock.
func TestFaultPlanKeepsTrainingMathIdentical(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	run := func(plan *cluster.FaultPlan) ([]float32, map[string]time.Duration) {
		tr, err := NewTrainer(Options{Ranks: 4, Model: cfg, Faults: plan})
		if err != nil {
			t.Fatalf("trainer: %v", err)
		}
		defer tr.Close()
		gen := criteo.NewGenerator(spec)
		return stepN(t, tr, gen, 3), tr.Cluster().SimTimes()
	}
	healthy, healthySim := run(nil)
	faulted, faultedSim := run(&cluster.FaultPlan{
		Seed: 11, Jitter: 0.3,
		Slow: []cluster.SlowRank{{Rank: 2, Factor: 10}},
	})
	sameBits(t, "faulted", healthy, faulted)
	if faultedSim["fwd-a2a"] <= healthySim["fwd-a2a"] {
		t.Errorf("straggler did not inflate fwd-a2a: %v vs %v", faultedSim["fwd-a2a"], healthySim["fwd-a2a"])
	}
}

// TestTrainerCloseIdempotent: Close twice returns the same result, and
// stepping after Close errors instead of panicking.
func TestTrainerCloseIdempotent(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	tr, err := NewTrainer(Options{Ranks: 2, Model: cfg})
	if err != nil {
		t.Fatalf("trainer: %v", err)
	}
	gen := criteo.NewGenerator(spec)
	stepN(t, tr, gen, 1)
	if err := tr.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := tr.Step(gen.NextBatch(32)); err == nil {
		t.Fatal("Step succeeded on a closed trainer")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close after failed step: %v", err)
	}
}

// TestTrainerCloseAfterTransportFailure: when a peer dies mid-run, the
// surviving trainer's Step errors and its Close stays safe — twice.
func TestTrainerCloseAfterTransportFailure(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	addr := reserveLoopbackAddr(t)
	const world = 2
	eps := make([]cluster.Transport, world)
	var dialWG sync.WaitGroup
	dialErrs := make([]error, world)
	for r := 0; r < world; r++ {
		dialWG.Add(1)
		go func(r int) {
			defer dialWG.Done()
			eps[r], dialErrs[r] = tcptransport.Dial(tcptransport.Options{
				Rank: r, World: world, Addr: addr,
				DialTimeout: 10 * time.Second, HandshakeTimeout: 10 * time.Second,
			})
		}(r)
	}
	dialWG.Wait()
	for r, err := range dialErrs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}

	trainers := make([]*Trainer, world)
	for r := 0; r < world; r++ {
		o := Options{Ranks: world, Model: cfg, Transport: eps[r]}
		var err error
		if trainers[r], err = NewTrainer(o); err != nil {
			t.Fatalf("rank %d trainer: %v", r, err)
		}
	}

	// One healthy lockstep step, then rank 1's endpoint dies abruptly.
	gens := []*criteo.Generator{criteo.NewGenerator(spec), criteo.NewGenerator(spec)}
	stepErrs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, stepErrs[r] = trainers[r].Step(gens[r].NextBatch(32))
		}(r)
	}
	wg.Wait()
	for r, err := range stepErrs {
		if err != nil {
			t.Fatalf("healthy step on rank %d: %v", r, err)
		}
	}
	eps[1].(interface{ Kill() }).Kill()

	if _, err := trainers[0].Step(gens[0].NextBatch(32)); err == nil {
		t.Fatal("rank 0 stepped to completion without its peer")
	}
	for r, tr := range trainers {
		first := tr.Close()
		if second := tr.Close(); second != first {
			t.Errorf("rank %d: second close %v != first %v", r, second, first)
		}
	}
}
