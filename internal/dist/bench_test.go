package dist

import (
	"fmt"
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/netmodel"
)

// The Step benchmarks measure the real (wall-clock) train-step hot path —
// the thing Eq. (2) calls Tc/Td and the workspace refactor targets — as
// opposed to the modelled sim-time the experiments report. Run with
// -benchmem: B/op and allocs/op are the tracked regression metrics
// (BENCH_before.json / BENCH_after.json hold the PR's before/after).

const benchBatch = 256

func benchTrainer(b *testing.B, ranks int, withCodec bool) (*Trainer, *criteo.Generator) {
	b.Helper()
	spec := testSpec()
	opts := Options{Ranks: ranks, Model: testConfig(spec, 16)}
	if withCodec {
		opts.CodecFor = func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) }
	}
	if ranks > 1 {
		opts.Net = netmodel.PaperHierarchical(4)
	}
	tr, err := NewTrainer(opts)
	if err != nil {
		b.Fatal(err)
	}
	return tr, criteo.NewGenerator(spec)
}

func benchStep(b *testing.B, ranks int, withCodec bool) {
	b.Helper()
	tr, gen := benchTrainer(b, ranks, withCodec)
	batch := gen.NextBatch(benchBatch)
	if _, err := tr.Step(batch); err != nil { // warm up lazily-grown state
		b.Fatal(err)
	}
	b.SetBytes(int64(benchBatch) * int64(len(tr.opts.Model.TableSizes)) * int64(tr.opts.Model.EmbeddingDim) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep_1Rank(b *testing.B)       { benchStep(b, 1, false) }
func BenchmarkStep_1RankHybrid(b *testing.B) { benchStep(b, 1, true) }
func BenchmarkStep_8Ranks(b *testing.B)      { benchStep(b, 8, false) }
func BenchmarkStep_8RanksHybrid(b *testing.B) {
	benchStep(b, 8, true)
}

// benchStepComputeWorkers pins the intra-rank compute width so the
// ComputeWorkers scaling curve is visible in the bench trajectory on
// multi-core runners (on a single-core machine all three collapse to the
// serial path, modulo span bookkeeping).
func benchStepComputeWorkers(b *testing.B, workers int) {
	b.Helper()
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks:          8,
		Model:          testConfig(spec, 16),
		Net:            netmodel.PaperHierarchical(4),
		ComputeWorkers: workers,
		CodecFor:       func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	batch := gen.NextBatch(benchBatch)
	if _, err := tr.Step(batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep_8Ranks_ComputeWorkers1(b *testing.B) { benchStepComputeWorkers(b, 1) }
func BenchmarkStep_8Ranks_ComputeWorkers4(b *testing.B) { benchStepComputeWorkers(b, 4) }
func BenchmarkStep_8Ranks_ComputeWorkers8(b *testing.B) { benchStepComputeWorkers(b, 8) }

// BenchmarkStep_Pipelined drives the overlap engine: same math as Step, but
// the per-step costs are additionally replayed onto the occupancy timeline.
func BenchmarkStep_Pipelined(b *testing.B) {
	for _, ranks := range []int{1, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			tr, gen := benchTrainer(b, ranks, true)
			batch := gen.NextBatch(benchBatch)
			if _, err := tr.RunPipelined(1, func(int) *criteo.Batch { return batch }); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.RunPipelined(1, func(int) *criteo.Batch { return batch }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
