package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// This file holds the per-rank step workspaces behind the allocation-free
// hot path. Every buffer a step needs — fused send frames, per-table frame
// scratch, lookup matrices, gradient scatter matrices, the flattened
// allreduce buffer — is allocated once in NewTrainer (or lazily grown to
// the first batch's size) and reused for the life of the trainer. Buffers
// are strictly per rank, so the rank goroutines never share mutable state
// through them; the per-table scratch inside a rank is indexed by table, so
// the rank's codec workers never share slots either.

// stepWorkspace is one rank's reusable per-step state.
type stepWorkspace struct {
	// Fused all-to-all payloads, one buffer per peer (length Ranks).
	send  [][]byte // forward: owner-side compressed/raw lookup frames
	send2 [][]byte // backward: raw lookup-gradient frames

	// Per-table state (length numTables). Owner-side slots are indexed by
	// the owned table, receiver-side slots by the table a frame arrived
	// for; a table index is touched by exactly one codec worker at a time.
	tblFrame    [][][]byte       // [table][dst] wire frame scratch (header + payload)
	tblChunk    []*tensor.Matrix // [table] owner-side gather scratch
	tblErr      []error          // [table] codec failure, merged after the fan-out
	tblCompDur  []time.Duration  // [table] modelled compress cost
	tblDecDur   []time.Duration  // [table] modelled decompress cost
	tblRawBytes []int64          // [table] uncompressed wire bytes
	tblCmpBytes []int64          // [table] compressed wire bytes

	lookups []*tensor.Matrix // [table] this rank's reconstructed shard
	got     []bool           // [table] lookup received this step
	gotGrad []bool           // [table] gradient received this step (owned tables)
	decJobs []decJob         // receive-side decode work list

	gradOf    []*tensor.Matrix // [table] backward scatter scratch for owned tables
	denseView *tensor.Matrix   // aliased view of the rank's b.Dense rows
	dLogits   *tensor.Matrix   // BCE gradient scratch
	gradBuf   []float32        // flattened dense gradients for the allreduce
	params    []nn.Param       // cached DenseParams of this rank's replica

	// Step-statistics allgather scratch: this rank's encoded contribution
	// and the per-rank slot table GatherAll fills (slots alias
	// transport-owned memory valid until the next gather).
	statsBlob []byte
	gathered  [][]byte
}

// decJob is one received frame awaiting decode.
type decJob struct {
	tb      int
	enc     byte
	payload []byte
}

// stepScratch is trainer-level (rank-indexed) per-step accounting, reused
// across steps. Hosted ranks write their own slots during the fan-out; the
// driver then overwrites every slot from the gathered (globally identical)
// statistics, so the aggregation below works the same whether the other
// ranks ran in this process or in peers.
type stepScratch struct {
	start, count []int
	losses       []float32
	errs         []error
	fatal        []bool // transport failure: no coherent global stats exist
	compDur      []time.Duration
	decompDur    []time.Duration
	lookupBytes  []int64
	fwdRaw       []int64
	fwdComp      []int64
}

func newStepScratch(ranks int) stepScratch {
	return stepScratch{
		start:       make([]int, ranks),
		count:       make([]int, ranks),
		losses:      make([]float32, ranks),
		errs:        make([]error, ranks),
		fatal:       make([]bool, ranks),
		compDur:     make([]time.Duration, ranks),
		decompDur:   make([]time.Duration, ranks),
		lookupBytes: make([]int64, ranks),
		fwdRaw:      make([]int64, ranks),
		fwdComp:     make([]int64, ranks),
	}
}

// reset clears the accounting for a new step.
func (s *stepScratch) reset() {
	for r := range s.losses {
		s.losses[r] = 0
		s.errs[r] = nil
		s.fatal[r] = false
		s.compDur[r] = 0
		s.decompDur[r] = 0
		s.lookupBytes[r] = 0
		s.fwdRaw[r] = 0
		s.fwdComp[r] = 0
	}
}

// newStepWorkspace builds rank r's workspace. Matrices are lazily sized on
// first use (batch sizes are not known here); the allreduce buffer is fixed
// by the model.
func newStepWorkspace(ranks, numTables, numParams int, params []nn.Param) *stepWorkspace {
	ws := &stepWorkspace{
		send:        make([][]byte, ranks),
		send2:       make([][]byte, ranks),
		tblFrame:    make([][][]byte, numTables),
		tblChunk:    make([]*tensor.Matrix, numTables),
		tblErr:      make([]error, numTables),
		tblCompDur:  make([]time.Duration, numTables),
		tblDecDur:   make([]time.Duration, numTables),
		tblRawBytes: make([]int64, numTables),
		tblCmpBytes: make([]int64, numTables),
		lookups:     make([]*tensor.Matrix, numTables),
		got:         make([]bool, numTables),
		gotGrad:     make([]bool, numTables),
		gradOf:      make([]*tensor.Matrix, numTables),
		denseView:   &tensor.Matrix{},
		gradBuf:     make([]float32, numParams),
		params:      params,
		gathered:    make([][]byte, ranks),
	}
	for tb := range ws.tblFrame {
		ws.tblFrame[tb] = make([][]byte, ranks)
	}
	return ws
}

// parallelDo runs fn(0..n-1), fanning the work across up to t.codecWorkers
// goroutines. With one worker (the default when GOMAXPROCS gives each rank
// no spare cores) it degenerates to the plain loop and performs no
// allocation; with more, multi-table owners use idle cores for the
// per-table codec work. fn calls for distinct k must not share mutable
// state (the step code indexes everything by table).
func (t *Trainer) parallelDo(n int, fn func(k int)) {
	w := t.codecWorkers
	if w > n {
		w = n
	}
	if w <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}
