// Package dist implements the hybrid-parallel distributed DLRM trainer of
// the paper (§II-B, §III) on the simulated multi-GPU runtime in
// internal/cluster:
//
//   - embedding tables are model-parallel, sharded round-robin across ranks
//     (table t lives on rank t mod R);
//   - the bottom/top MLPs are data-parallel replicas whose gradients are
//     averaged with an AllReduce every step;
//   - each step performs the forward all-to-all that redistributes embedding
//     lookups from table owners to the ranks holding the corresponding batch
//     shard — the exchange the paper compresses — and the backward
//     all-to-all that routes lookup gradients back to the owners.
//
// Layer: the top of the simulation stack. It consumes internal/model (the
// network being trained), internal/codec implementations (per-table
// compression via Options.CodecFor), internal/adapt (the dual-level
// adaptive error-bound Controller), and internal/cluster (collectives +
// sim clock); internal/experiments and cmd/dlrmtrain drive it.
//
// Key types:
//
//   - Options — cluster size, model config, interconnect topology
//     (Options.Net, a netmodel.Topology), all-to-all algorithm
//     (Options.Algo), device rates, codec and controller hooks.
//   - Trainer — NewTrainer validates the options and builds the sharded
//     state plus the per-rank step workspaces (workspace.go: fused frame
//     buffers, per-table codec scratch, lookup/gradient matrices, the
//     flattened allreduce buffer), so steady-state stepping performs only
//     a small bounded number of allocations (pinned by the allocs-gate
//     tests). Step runs one synchronous iteration, fanning per-table
//     codec work across Options.CodecWorkers intra-rank workers;
//     Evaluate scores the trained weights single-process.
//
// Two drivers share the same step internals and therefore the same math
// and the same buckets:
//
//   - Step — the synchronous schedule: every component back to back.
//   - RunPipelined — the comm/compute overlap schedule (overlap.go): the
//     forward all-to-all of batch k+1 is pipelined behind the MLP compute
//     of batch k on a netmodel.Timeline with per-link occupancy, double-
//     buffered lookups, and the codec work hidden under the head of the
//     NIC transfer. Losses and parameters are bit-identical to a Step
//     loop (and, at one rank, to single-process model.DLRM training);
//     only the end-to-end clock differs. OverlappedSimTime reports the
//     pipelined makespan, SerialSimTime the synchronous cost of the same
//     steps.
//
// Sim-time buckets charged per step (read them back through
// profileutil.Breakdown on Cluster().SimTimes()): "fwd-a2a", "bwd-a2a"
// (split into "-intra"/"-inter" under a multi-node topology),
// "allreduce", "mlp", "lookup", "compress", "decompress", and "other"
// (Options.OtherComputeFactor × MLP time, standing in for optimizer/data
// loading/feature interaction so breakdown shares match Fig. 1).
package dist
