package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Per-rank step statistics travel the control plane once per step (a
// cluster.Rank.GatherAll at the end of the rank body), so every process —
// whether it hosts all ranks or one — aggregates the global loss and the
// fleet-maxima device buckets from identical inputs. The record is fixed
// layout, little endian:
//
//	lossBits uint32 | lookupBytes int64 | compressNs int64 |
//	decompressNs int64 | fwdRawBytes int64 | fwdCompBytes int64 |
//	errLen uint32 | errStr bytes

// rankStats is one rank's contribution to a step's global accounting.
type rankStats struct {
	loss        float32
	lookupBytes int64
	compress    time.Duration
	decompress  time.Duration
	fwdRaw      int64
	fwdComp     int64
	errStr      string
}

const rankStatsFixedBytes = 4 + 5*8 + 4

// appendRankStats appends the encoded record to dst.
func appendRankStats(dst []byte, s rankStats) []byte {
	var fixed [rankStatsFixedBytes]byte
	binary.LittleEndian.PutUint32(fixed[0:], math.Float32bits(s.loss))
	binary.LittleEndian.PutUint64(fixed[4:], uint64(s.lookupBytes))
	binary.LittleEndian.PutUint64(fixed[12:], uint64(s.compress))
	binary.LittleEndian.PutUint64(fixed[20:], uint64(s.decompress))
	binary.LittleEndian.PutUint64(fixed[28:], uint64(s.fwdRaw))
	binary.LittleEndian.PutUint64(fixed[36:], uint64(s.fwdComp))
	binary.LittleEndian.PutUint32(fixed[44:], uint32(len(s.errStr)))
	dst = append(dst, fixed[:]...)
	return append(dst, s.errStr...)
}

// decodeRankStats parses one record.
func decodeRankStats(b []byte) (rankStats, error) {
	if len(b) < rankStatsFixedBytes {
		return rankStats{}, fmt.Errorf("dist: rank stats record is %d bytes, want >= %d", len(b), rankStatsFixedBytes)
	}
	s := rankStats{
		loss:        math.Float32frombits(binary.LittleEndian.Uint32(b[0:])),
		lookupBytes: int64(binary.LittleEndian.Uint64(b[4:])),
		compress:    time.Duration(binary.LittleEndian.Uint64(b[12:])),
		decompress:  time.Duration(binary.LittleEndian.Uint64(b[20:])),
		fwdRaw:      int64(binary.LittleEndian.Uint64(b[28:])),
		fwdComp:     int64(binary.LittleEndian.Uint64(b[36:])),
	}
	n := int(binary.LittleEndian.Uint32(b[44:]))
	if len(b) != rankStatsFixedBytes+n {
		return rankStats{}, fmt.Errorf("dist: rank stats record is %d bytes, want %d", len(b), rankStatsFixedBytes+n)
	}
	s.errStr = string(b[rankStatsFixedBytes:])
	return s, nil
}
