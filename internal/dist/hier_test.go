package dist

import (
	"math"
	"testing"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/nn"
)

// TestSingleRankHierarchicalParity: a 1-rank trainer on the hierarchical
// topology with the two-phase algorithm forced is still bit-identical to
// single-process model.DLRM training — the degenerate collectives are
// no-ops, so the topology cannot leak into the math.
func TestSingleRankHierarchicalParity(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)

	tr, err := NewTrainer(Options{
		Ranks: 1,
		Model: cfg,
		Net:   netmodel.PaperHierarchical(4),
		Algo:  cluster.A2ATwoPhase,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGD{LR: DefaultDenseLR}

	genD := criteo.NewGenerator(spec)
	genS := criteo.NewGenerator(spec)
	for i := 0; i < 10; i++ {
		b := genD.NextBatch(32)
		lossD, err := tr.Step(b)
		if err != nil {
			t.Fatal(err)
		}
		bs := genS.NextBatch(32)
		lossS := ref.TrainStep(bs.Dense, bs.Indices, bs.Labels, opt, DefaultEmbLR)
		if lossD != lossS {
			t.Fatalf("step %d: hierarchical 1-rank loss %v != single-process loss %v", i, lossD, lossS)
		}
	}
	eb := genD.NextBatch(256)
	accD, llD := tr.Evaluate(eb)
	accS, llS := ref.Evaluate(eb.Dense, eb.Indices, eb.Labels)
	if accD != accS || llD != llS {
		t.Fatalf("eval mismatch: hierarchical (%v, %v) vs single (%v, %v)", accD, llD, accS, llS)
	}
}

// TestHierarchicalLossParityWithFlat: the topology and all-to-all algorithm
// only change the simulated clock, never the numerics — a multi-node
// two-phase run must produce bit-identical losses to the flat direct run,
// with and without compression.
func TestHierarchicalLossParityWithFlat(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	for _, compressed := range []bool{false, true} {
		run := func(net netmodel.Topology, algo cluster.A2AAlgo) []float32 {
			o := Options{Ranks: 4, Model: cfg, Net: net, Algo: algo}
			if compressed {
				o.CodecFor = func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) }
			}
			tr, err := NewTrainer(o)
			if err != nil {
				t.Fatal(err)
			}
			gen := criteo.NewGenerator(spec)
			var losses []float32
			for i := 0; i < 6; i++ {
				loss, err := tr.Step(gen.NextBatch(32))
				if err != nil {
					t.Fatal(err)
				}
				losses = append(losses, loss)
			}
			return losses
		}
		flat := run(netmodel.Slingshot10(), cluster.A2ADirect)
		hier := run(netmodel.PaperHierarchical(2), cluster.A2ATwoPhase)
		for i := range flat {
			if flat[i] != hier[i] {
				t.Fatalf("compressed=%v step %d: flat loss %v != hierarchical loss %v",
					compressed, i, flat[i], hier[i])
			}
		}
	}
}

// TestHierarchicalSimTimeBuckets: under a multi-node topology the embedding
// all-to-alls charge the per-link buckets and leave the flat labels empty,
// while every other bucket stays intact.
func TestHierarchicalSimTimeBuckets(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks:              4,
		Model:              testConfig(spec, 8),
		Net:                netmodel.PaperHierarchical(2),
		OtherComputeFactor: 0.8,
		CodecFor:           func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	if _, err := tr.Step(gen.NextBatch(32)); err != nil {
		t.Fatal(err)
	}
	times := tr.Cluster().SimTimes()
	for _, label := range []string{
		"fwd-a2a-intra", "fwd-a2a-inter", "bwd-a2a-intra", "bwd-a2a-inter",
		"allreduce", "mlp", "lookup", "other", "compress", "decompress",
	} {
		if times[label] <= 0 {
			t.Fatalf("bucket %q not charged: %v", label, times)
		}
	}
	for _, label := range []string{"fwd-a2a", "bwd-a2a"} {
		if times[label] != 0 {
			t.Fatalf("flat bucket %q charged under hierarchy: %v", label, times)
		}
	}
	if tr.Cluster().Nodes() != 2 {
		t.Fatalf("cluster spans %d nodes, want 2", tr.Cluster().Nodes())
	}
}

// TestZeroNetworkMeansDefault: the pre-Topology API documented
// Net: netmodel.Network{} as "use Slingshot10()"; that contract survives
// the interface change — a zero-value Network must not run at zero
// bandwidth (which would overflow the sim clock), it selects the default.
func TestZeroNetworkMeansDefault(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{Ranks: 2, Model: testConfig(spec, 4), Net: netmodel.Network{}})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	if _, err := tr.Step(gen.NextBatch(16)); err != nil {
		t.Fatal(err)
	}
	if d := tr.Cluster().SimTime("fwd-a2a"); d <= 0 {
		t.Fatalf("zero-value Network ran at zero bandwidth: fwd-a2a = %v", d)
	}
}

// TestHierarchicalConvergence: training under the staged algorithm still
// learns.
func TestHierarchicalConvergence(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks: 4,
		Model: testConfig(spec, 8),
		Net:   netmodel.PaperHierarchical(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	var first, last float64
	const steps = 40
	for i := 0; i < steps; i++ {
		loss, err := tr.Step(gen.NextBatch(64))
		if err != nil {
			t.Fatal(err)
		}
		if i < 5 {
			first += float64(loss) / 5
		}
		if i >= steps-5 {
			last += float64(loss) / 5
		}
	}
	if !(last < first) {
		t.Fatalf("loss did not decrease: first-5 mean %v, last-5 mean %v", first, last)
	}
	acc, logloss := tr.Evaluate(gen.NextBatch(512))
	if acc <= 0 || acc > 1 || math.IsNaN(logloss) {
		t.Fatalf("bad eval: acc %v logloss %v", acc, logloss)
	}
}
