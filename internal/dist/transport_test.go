package dist

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/cluster/tcptransport"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/netmodel"
)

// Trainer-level transport conformance: the same Spec-configured training
// run — same model, same deterministic batch stream — must produce
// bit-identical per-step losses and rank-0 sim-time buckets whether the
// ranks are goroutines over the in-process fabric or endpoints over the
// TCP transport, at every world size and with either all-to-all
// algorithm. CI pins this as the transport-conformance invariant.

const transportParitySteps = 5

type trainRun struct {
	losses []float32
	sims   map[string]time.Duration
}

func reserveLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// trainSteps drives transportParitySteps lockstep steps from a fresh
// generator of spec. Every process of a distributed run calls this with
// an identically-configured trainer and its own (identical) generator.
func trainSteps(tr *Trainer, spec criteo.Spec) ([]float32, error) {
	gen := criteo.NewGenerator(spec)
	losses := make([]float32, 0, transportParitySteps)
	for i := 0; i < transportParitySteps; i++ {
		loss, err := tr.Step(gen.NextBatch(32))
		if err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
		losses = append(losses, loss)
	}
	return losses, nil
}

func runTrainInproc(t *testing.T, opts Options, spec criteo.Spec) trainRun {
	t.Helper()
	tr, err := NewTrainer(opts)
	if err != nil {
		t.Fatalf("in-proc trainer: %v", err)
	}
	defer tr.Close()
	losses, err := trainSteps(tr, spec)
	if err != nil {
		t.Fatalf("in-proc run: %v", err)
	}
	return trainRun{losses: losses, sims: tr.Cluster().SimTimes()}
}

// runTrainTCP runs opts.Ranks full trainers, each over its own TCP
// endpoint — the same shape as one trainer per OS process, compressed
// into one test binary. Every rank's loss sequence must already agree
// (each process aggregates the global loss from the gathered stats); the
// returned run carries rank 0's view.
func runTrainTCP(t *testing.T, opts Options, spec criteo.Spec) trainRun {
	t.Helper()
	addr := reserveLoopbackAddr(t)
	world := opts.Ranks
	runs := make([]trainRun, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep, err := tcptransport.Dial(tcptransport.Options{
				Rank:             rank,
				World:            world,
				Addr:             addr,
				DialTimeout:      10 * time.Second,
				HandshakeTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("dial: %w", err)
				return
			}
			o := opts
			o.Transport = ep
			tr, err := NewTrainer(o)
			if err != nil {
				errs[rank] = err
				ep.Close()
				return
			}
			defer tr.Close()
			losses, err := trainSteps(tr, spec)
			if err != nil {
				errs[rank] = err
				return
			}
			runs[rank] = trainRun{losses: losses, sims: tr.Cluster().SimTimes()}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	for rank := 1; rank < world; rank++ {
		for i, loss := range runs[rank].losses {
			if math.Float32bits(loss) != math.Float32bits(runs[0].losses[i]) {
				t.Fatalf("tcp rank %d step %d loss %v differs from rank 0's %v — processes disagree on the global loss",
					rank, i, loss, runs[0].losses[i])
			}
		}
	}
	return runs[0]
}

func compareRuns(t *testing.T, want, got trainRun, label string) {
	t.Helper()
	if len(want.losses) != len(got.losses) {
		t.Fatalf("%s: step count %d != %d", label, len(got.losses), len(want.losses))
	}
	for i := range want.losses {
		if math.Float32bits(want.losses[i]) != math.Float32bits(got.losses[i]) {
			t.Errorf("%s: step %d loss %v (tcp) != %v (in-proc) — not bit-identical",
				label, i, got.losses[i], want.losses[i])
		}
	}
	if len(want.sims) != len(got.sims) {
		t.Errorf("%s: sim bucket sets differ:\n in-proc: %v\n     tcp: %v", label, want.sims, got.sims)
		return
	}
	for k, v := range want.sims {
		if got.sims[k] != v {
			t.Errorf("%s: sim bucket %q = %v (tcp) != %v (in-proc)", label, k, got.sims[k], v)
		}
	}
}

// TestTrainerTransportConformance is the headline matrix: 1/2/4/8 ranks,
// direct over the flat topology and two-phase over the hierarchical one,
// uncompressed and compressed.
func TestTrainerTransportConformance(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	cases := []struct {
		name       string
		ranks      int
		topo       netmodel.Topology
		algo       cluster.A2AAlgo
		compressed bool
	}{
		{"1rank_direct", 1, nil, cluster.A2ADirect, false},
		{"2ranks_direct", 2, nil, cluster.A2ADirect, false},
		{"4ranks_direct", 4, nil, cluster.A2ADirect, false},
		{"4ranks_twophase_hier", 4, netmodel.PaperHierarchical(2), cluster.A2ATwoPhase, false},
		{"4ranks_twophase_hier_compressed", 4, netmodel.PaperHierarchical(2), cluster.A2ATwoPhase, true},
		{"8ranks_twophase_hier", 8, netmodel.PaperHierarchical(2), cluster.A2ATwoPhase, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Ranks: tc.ranks, Model: cfg, Net: tc.topo, Algo: tc.algo}
			if tc.compressed {
				opts.CodecFor = func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) }
			}
			want := runTrainInproc(t, opts, spec)
			got := runTrainTCP(t, opts, spec)
			compareRuns(t, want, got, tc.name)
		})
	}
}

// TestTrainerTransportFaultConformance extends the matrix with an armed
// fault plan: jitter plus a 10x straggler must leave the losses AND
// rank 0's sim-time buckets bit-identical across transports, because the
// cost scaling and the jitter sequence both live on rank 0's cost path.
// Every worker process of a wire-transport run passes the same plan.
func TestTrainerTransportFaultConformance(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	faults := &cluster.FaultPlan{
		Seed:   42,
		Jitter: 0.3,
		Slow:   []cluster.SlowRank{{Rank: 1, Factor: 10}},
	}
	for _, tc := range []struct {
		name  string
		ranks int
		topo  netmodel.Topology
		algo  cluster.A2AAlgo
	}{
		{"2ranks_direct_faults", 2, nil, cluster.A2ADirect},
		{"4ranks_twophase_hier_faults", 4, netmodel.PaperHierarchical(2), cluster.A2ATwoPhase},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Ranks: tc.ranks, Model: cfg, Net: tc.topo, Algo: tc.algo, Faults: faults}
			want := runTrainInproc(t, opts, spec)
			got := runTrainTCP(t, opts, spec)
			compareRuns(t, want, got, tc.name)

			// The plan must actually have bitten: the same run without it
			// charges strictly less simulated time and the same losses.
			healthy := runTrainInproc(t, Options{Ranks: tc.ranks, Model: cfg, Net: tc.topo, Algo: tc.algo}, spec)
			for i := range healthy.losses {
				if math.Float32bits(healthy.losses[i]) != math.Float32bits(want.losses[i]) {
					t.Fatalf("step %d: faults changed the loss (%v healthy, %v faulted)", i, healthy.losses[i], want.losses[i])
				}
			}
			var healthyTotal, faultedTotal time.Duration
			for _, v := range healthy.sims {
				healthyTotal += v
			}
			for _, v := range want.sims {
				faultedTotal += v
			}
			if faultedTotal <= healthyTotal {
				t.Fatalf("fault plan charged no extra sim-time: healthy %v, faulted %v", healthyTotal, faultedTotal)
			}
		})
	}
}

// TestTrainerTransportWorldMismatch: a transport whose world disagrees
// with Ranks is a construction error, not a hang.
func TestTrainerTransportWorldMismatch(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	ep, err := tcptransport.Dial(tcptransport.Options{Rank: 0, World: 1, Addr: "127.0.0.1:1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer ep.Close()
	if _, err := NewTrainer(Options{Ranks: 2, Model: cfg, Transport: ep}); err == nil {
		t.Fatal("NewTrainer accepted a transport with world 1 for 2 ranks")
	}
}

// TestTrainerDistributedRejectsPipelined: the overlap driver needs every
// rank's costs in one process; over a distributed transport it must
// refuse rather than deadlock.
func TestTrainerDistributedRejectsPipelined(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 8)
	addr := reserveLoopbackAddr(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep, err := tcptransport.Dial(tcptransport.Options{
				Rank: rank, World: 2, Addr: addr,
				DialTimeout: 10 * time.Second, HandshakeTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			tr, err := NewTrainer(Options{Ranks: 2, Model: cfg, Transport: ep})
			if err != nil {
				errs[rank] = err
				ep.Close()
				return
			}
			defer tr.Close()
			gen := criteo.NewGenerator(spec)
			if _, err := tr.RunPipelined(2, func(int) *criteo.Batch { return gen.NextBatch(32) }); err == nil {
				errs[rank] = fmt.Errorf("RunPipelined ran over a distributed transport")
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}
