package dist

import (
	"fmt"

	"dlrmcomp/internal/netmodel"
)

// Elastic resharding: when the rank set changes (a rank drops out or
// rejoins), table ownership — positional, owner = table % Ranks — changes
// with it, so restoring a checkpoint into a trainer built at the new
// world size redistributes the shards round-robin as a side effect. What
// that restore does *not* model is the wire traffic of the
// redistribution: each table whose owner changed crosses the network once
// from its old owner to its new one. PlanReshard enumerates those moves
// and Trainer.ChargeReshard lands their modelled cost in the "reshard"
// sim-time bucket (split per link under a multi-node topology), so an
// elastic run's profile shows what the rank change cost.

// TableMove is one table changing owners.
type TableMove struct {
	// Table is the table id.
	Table int
	// From and To are the old and new owning ranks, both in the *new*
	// world's numbering for To and the old world's for From.
	From, To int
	// Bytes is the table shard's uncompressed footprint on the wire.
	Bytes int64
}

// ReshardPlan describes the redistribution a world-size change causes.
type ReshardPlan struct {
	// OldRanks and NewRanks are the world sizes on each side.
	OldRanks, NewRanks int
	// Moves lists the tables whose owner changes, in table order.
	Moves []TableMove
	// MovedBytes sums the moved shards' footprints.
	MovedBytes int64
}

// PlanReshard computes the moves of a rank-set change over round-robin
// placement: tableRows[i] rows of width dim per table, owners i%oldRanks
// before and i%newRanks after.
func PlanReshard(tableRows []int, dim, oldRanks, newRanks int) (ReshardPlan, error) {
	p := ReshardPlan{OldRanks: oldRanks, NewRanks: newRanks}
	if oldRanks <= 0 || newRanks <= 0 {
		return p, fmt.Errorf("dist: reshard between worlds of %d and %d ranks", oldRanks, newRanks)
	}
	if dim <= 0 {
		return p, fmt.Errorf("dist: reshard with dim %d", dim)
	}
	for tb, rows := range tableRows {
		from, to := tb%oldRanks, tb%newRanks
		if from == to {
			continue
		}
		bytes := int64(rows) * int64(dim) * 4
		p.Moves = append(p.Moves, TableMove{Table: tb, From: from, To: to, Bytes: bytes})
		p.MovedBytes += bytes
	}
	return p, nil
}

// Cost models the redistribution as one sparse all-to-all over the given
// topology: every moved shard is a payload from its old owner to its new
// one, exchanged concurrently. Rank ids beyond either world are valid
// matrix rows — the matrix spans max(OldRanks, NewRanks) so drops and
// rejoins both fit.
func (p ReshardPlan) Cost(net netmodel.Topology) netmodel.LinkCost {
	if len(p.Moves) == 0 || net == nil {
		return netmodel.LinkCost{}
	}
	n := p.OldRanks
	if p.NewRanks > n {
		n = p.NewRanks
	}
	bytes := make([][]int64, n)
	for i := range bytes {
		bytes[i] = make([]int64, n)
	}
	for _, m := range p.Moves {
		bytes[m.From][m.To] += m.Bytes
	}
	return net.AllToAllCost(bytes)
}

// ChargeReshard charges the plan's modelled transfer cost to the
// trainer's "reshard" sim-time bucket. Call it on the trainer that takes
// over after the restore, so the cost appears in the profile of the run
// that paid it.
func (t *Trainer) ChargeReshard(p ReshardPlan) {
	t.cl.ChargeLinkCost("reshard", p.Cost(t.opts.Net))
}
