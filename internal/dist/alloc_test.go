package dist

import (
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/testutil"
)

// maxStepAllocs is the documented steady-state allocation bound for one
// Trainer.Step at 1 rank. Exact zero is not achievable — the cluster
// fan-out spawns one goroutine per rank and each collective returns a
// handle plus a receive table — but every batch-sized buffer (frames,
// lookup matrices, gradient scratch, the flattened allreduce buffer, all
// codec workspaces) is reused, so what remains is a small constant
// independent of batch size, table count, and model width. Measured 22 on a
// single-core run; the bound leaves headroom for scheduler-dependent
// goroutine recycling on other machines, not for per-buffer regressions
// (reintroducing even one per-table allocation on Criteo's 26 tables blows
// straight past it).
const maxStepAllocs = 48

// TestStepAllocsSteadyState is the allocs/op regression gate for the
// trainer hot path (it runs in the quick suite; CI fails if the workspace
// reuse regresses).
func TestStepAllocsSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks: 1,
		Model: testConfig(spec, 8),
		// One codec worker and one compute worker keep every fan-out a plain
		// loop, so the count is machine-independent; worker parity is covered
		// separately.
		CodecWorkers:   1,
		ComputeWorkers: 1,
		CodecFor:       func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	// A batch small enough that every matmul stays under the tensor
	// package's parallel threshold on any machine — row-parallel matmul
	// spawns goroutines, which would make the count GOMAXPROCS-dependent.
	batch := gen.NextBatch(16)
	for i := 0; i < 3; i++ { // warm the lazily-grown workspaces
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxStepAllocs {
		t.Fatalf("steady-state Step allocates %.1f times per op, documented bound is %d", allocs, maxStepAllocs)
	}
	t.Logf("steady-state Step: %.1f allocs/op (bound %d)", allocs, maxStepAllocs)
}

// TestStepAllocsIndependentOfBatch checks the bound is about reuse, not
// batch luck: quadrupling the batch after warmup must not change the
// steady-state allocation count (the workspaces grow once, then stabilize).
func TestStepAllocsIndependentOfBatch(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	spec := testSpec()
	tr, err := NewTrainer(Options{Ranks: 1, Model: testConfig(spec, 4), CodecWorkers: 1, ComputeWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	small, big := gen.NextBatch(8), gen.NextBatch(32)
	for i := 0; i < 2; i++ {
		if _, err := tr.Step(big); err != nil { // warm to the larger size
			t.Fatal(err)
		}
	}
	measure := func(b *criteo.Batch) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := tr.Step(b); err != nil {
				t.Fatal(err)
			}
		})
	}
	if s, b := measure(small), measure(big); b > s+1 {
		t.Fatalf("allocs grow with batch size after warmup: %v (small) vs %v (big)", s, b)
	}
}

// TestCodecWorkersParity pins that the intra-rank codec worker pool is a
// pure scheduling change: a trainer with parallel per-table codec work
// produces bit-identical losses, compression ratio, and sim-time buckets
// to the sequential one on the same stream.
func TestCodecWorkersParity(t *testing.T) {
	spec := testSpec()
	mk := func(workers int) *Trainer {
		tr, err := NewTrainer(Options{
			Ranks:        4,
			Model:        testConfig(spec, 8),
			CodecWorkers: workers,
			CodecFor:     func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seq, par := mk(-1), mk(4)
	genS, genP := criteo.NewGenerator(spec), criteo.NewGenerator(spec)
	for i := 0; i < 6; i++ {
		lossS, err := seq.Step(genS.NextBatch(33)) // uneven shards on purpose
		if err != nil {
			t.Fatal(err)
		}
		lossP, err := par.Step(genP.NextBatch(33))
		if err != nil {
			t.Fatal(err)
		}
		if lossS != lossP {
			t.Fatalf("step %d: parallel-codec loss %v != sequential loss %v", i, lossP, lossS)
		}
	}
	if rs, rp := seq.CompressionRatio(), par.CompressionRatio(); rs != rp {
		t.Fatalf("compression ratio differs: sequential %v, parallel %v", rs, rp)
	}
	st1, st2 := seq.Cluster().SimTimes(), par.Cluster().SimTimes()
	if len(st1) != len(st2) {
		t.Fatalf("bucket sets differ: %v vs %v", st1, st2)
	}
	for k, v := range st1 {
		if st2[k] != v {
			t.Fatalf("bucket %q differs: sequential %v, parallel %v", k, v, st2[k])
		}
	}
	accS, llS := seq.Evaluate(genS.NextBatch(128))
	accP, llP := par.Evaluate(genP.NextBatch(128))
	if accS != accP || llS != llP {
		t.Fatalf("eval differs: sequential (%v, %v), parallel (%v, %v)", accS, llS, accP, llP)
	}
}

// TestComputeWorkersParity pins the tentpole determinism invariant: the
// intra-rank compute width (parallel matmul rows, interaction samples,
// embedding gathers, optimizer spans) is a pure scheduling knob. Training at
// widths 1, 2, and 8 must produce bit-identical losses, compression ratio,
// sim-time buckets, and final evaluation. Runs under -race in CI, which also
// makes it the data-race canary for the shared tensor worker pool.
func TestComputeWorkersParity(t *testing.T) {
	spec := testSpec()
	mk := func(workers int) *Trainer {
		tr, err := NewTrainer(Options{
			Ranks:          4,
			Model:          testConfig(spec, 8),
			ComputeWorkers: workers,
			CodecFor:       func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	widths := []int{1, 2, 8}
	trainers := make([]*Trainer, len(widths))
	gens := make([]*criteo.Generator, len(widths))
	for i, w := range widths {
		trainers[i] = mk(w)
		gens[i] = criteo.NewGenerator(spec)
	}
	for step := 0; step < 6; step++ {
		base, err := trainers[0].Step(gens[0].NextBatch(33)) // uneven shards on purpose
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(widths); i++ {
			loss, err := trainers[i].Step(gens[i].NextBatch(33))
			if err != nil {
				t.Fatal(err)
			}
			if loss != base {
				t.Fatalf("step %d: workers=%d loss %v != workers=1 loss %v", step, widths[i], loss, base)
			}
		}
	}
	baseRatio := trainers[0].CompressionRatio()
	baseTimes := trainers[0].Cluster().SimTimes()
	accB, llB := trainers[0].Evaluate(gens[0].NextBatch(128))
	for i := 1; i < len(widths); i++ {
		if r := trainers[i].CompressionRatio(); r != baseRatio {
			t.Fatalf("workers=%d compression ratio %v != %v", widths[i], r, baseRatio)
		}
		st := trainers[i].Cluster().SimTimes()
		if len(st) != len(baseTimes) {
			t.Fatalf("workers=%d bucket sets differ: %v vs %v", widths[i], st, baseTimes)
		}
		for k, v := range baseTimes {
			if st[k] != v {
				t.Fatalf("workers=%d bucket %q differs: %v vs %v", widths[i], k, st[k], v)
			}
		}
		acc, ll := trainers[i].Evaluate(gens[i].NextBatch(128))
		if acc != accB || ll != llB {
			t.Fatalf("workers=%d eval (%v, %v) != workers=1 (%v, %v)", widths[i], acc, ll, accB, llB)
		}
	}
}
