package dist

import (
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/testutil"
)

// maxStepAllocs is the documented steady-state allocation bound for one
// Trainer.Step at 1 rank. Exact zero is not achievable — the cluster
// fan-out spawns one goroutine per rank and each collective returns a
// handle plus a receive table — but every batch-sized buffer (frames,
// lookup matrices, gradient scratch, the flattened allreduce buffer, all
// codec workspaces) is reused, so what remains is a small constant
// independent of batch size, table count, and model width. Measured 22 on a
// single-core run; the bound leaves headroom for scheduler-dependent
// goroutine recycling on other machines, not for per-buffer regressions
// (reintroducing even one per-table allocation on Criteo's 26 tables blows
// straight past it).
const maxStepAllocs = 48

// TestStepAllocsSteadyState is the allocs/op regression gate for the
// trainer hot path (it runs in the quick suite; CI fails if the workspace
// reuse regresses).
func TestStepAllocsSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks: 1,
		Model: testConfig(spec, 8),
		// One codec worker keeps the fan-out a plain loop, so the count is
		// machine-independent; worker parity is covered separately.
		CodecWorkers: 1,
		CodecFor:     func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	// A batch small enough that every matmul stays under the tensor
	// package's parallel threshold on any machine — row-parallel matmul
	// spawns goroutines, which would make the count GOMAXPROCS-dependent.
	batch := gen.NextBatch(16)
	for i := 0; i < 3; i++ { // warm the lazily-grown workspaces
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := tr.Step(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxStepAllocs {
		t.Fatalf("steady-state Step allocates %.1f times per op, documented bound is %d", allocs, maxStepAllocs)
	}
	t.Logf("steady-state Step: %.1f allocs/op (bound %d)", allocs, maxStepAllocs)
}

// TestStepAllocsIndependentOfBatch checks the bound is about reuse, not
// batch luck: quadrupling the batch after warmup must not change the
// steady-state allocation count (the workspaces grow once, then stabilize).
func TestStepAllocsIndependentOfBatch(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	spec := testSpec()
	tr, err := NewTrainer(Options{Ranks: 1, Model: testConfig(spec, 4), CodecWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	small, big := gen.NextBatch(8), gen.NextBatch(32)
	for i := 0; i < 2; i++ {
		if _, err := tr.Step(big); err != nil { // warm to the larger size
			t.Fatal(err)
		}
	}
	measure := func(b *criteo.Batch) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := tr.Step(b); err != nil {
				t.Fatal(err)
			}
		})
	}
	if s, b := measure(small), measure(big); b > s+1 {
		t.Fatalf("allocs grow with batch size after warmup: %v (small) vs %v (big)", s, b)
	}
}

// TestCodecWorkersParity pins that the intra-rank codec worker pool is a
// pure scheduling change: a trainer with parallel per-table codec work
// produces bit-identical losses, compression ratio, and sim-time buckets
// to the sequential one on the same stream.
func TestCodecWorkersParity(t *testing.T) {
	spec := testSpec()
	mk := func(workers int) *Trainer {
		tr, err := NewTrainer(Options{
			Ranks:        4,
			Model:        testConfig(spec, 8),
			CodecWorkers: workers,
			CodecFor:     func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seq, par := mk(-1), mk(4)
	genS, genP := criteo.NewGenerator(spec), criteo.NewGenerator(spec)
	for i := 0; i < 6; i++ {
		lossS, err := seq.Step(genS.NextBatch(33)) // uneven shards on purpose
		if err != nil {
			t.Fatal(err)
		}
		lossP, err := par.Step(genP.NextBatch(33))
		if err != nil {
			t.Fatal(err)
		}
		if lossS != lossP {
			t.Fatalf("step %d: parallel-codec loss %v != sequential loss %v", i, lossP, lossS)
		}
	}
	if rs, rp := seq.CompressionRatio(), par.CompressionRatio(); rs != rp {
		t.Fatalf("compression ratio differs: sequential %v, parallel %v", rs, rp)
	}
	st1, st2 := seq.Cluster().SimTimes(), par.Cluster().SimTimes()
	if len(st1) != len(st2) {
		t.Fatalf("bucket sets differ: %v vs %v", st1, st2)
	}
	for k, v := range st1 {
		if st2[k] != v {
			t.Fatalf("bucket %q differs: sequential %v, parallel %v", k, v, st2[k])
		}
	}
	accS, llS := seq.Evaluate(genS.NextBatch(128))
	accP, llP := par.Evaluate(genP.NextBatch(128))
	if accS != accP || llS != llP {
		t.Fatalf("eval differs: sequential (%v, %v), parallel (%v, %v)", accS, llS, accP, llP)
	}
}
