package dist

import (
	"errors"
	"math"
	"sync"
	"testing"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/tensor"
)

// TestCodecRoundTripInsideTrainer drives the compressed forward all-to-all
// and checks, via the reconstruction hook, that every lookup value a rank
// receives differs from the exact table row by at most the error bound —
// the paper's per-element guarantee — and that compression actually bought
// something (CompressionRatio > 1).
func TestCodecRoundTripInsideTrainer(t *testing.T) {
	const eb = 0.01
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks:    4,
		Model:    testConfig(spec, 8),
		CodecFor: func(int) codec.Codec { return hybrid.New(eb, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var maxDiff float64
	checked := 0
	tr.fwdHook = func(rank, table int, recon *tensor.Matrix, indices []int32) {
		exact := tr.tmpl.Emb.Tables[table].Lookup(indices)
		var localMax float64
		for i := range recon.Data {
			d := math.Abs(float64(recon.Data[i] - exact.Data[i]))
			if d > localMax {
				localMax = d
			}
		}
		mu.Lock()
		if localMax > maxDiff {
			maxDiff = localMax
		}
		checked += len(recon.Data)
		mu.Unlock()
	}

	gen := criteo.NewGenerator(spec)
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(gen.NextBatch(64)); err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Fatal("hook never ran")
	}
	if maxDiff > eb*1.01 {
		t.Fatalf("reconstruction error %v exceeds bound %v", maxDiff, eb)
	}
	if cr := tr.CompressionRatio(); cr <= 1 {
		t.Fatalf("compression ratio %v, want > 1", cr)
	}
}

// TestSimTimeBuckets checks that one compressed step charges every bucket
// the breakdown figures read.
func TestSimTimeBuckets(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks:              4,
		Model:              testConfig(spec, 8),
		OtherComputeFactor: 0.8,
		CodecFor:           func(int) codec.Codec { return hybrid.New(0.01, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := criteo.NewGenerator(spec)
	if _, err := tr.Step(gen.NextBatch(32)); err != nil {
		t.Fatal(err)
	}
	times := tr.Cluster().SimTimes()
	for _, label := range []string{"fwd-a2a", "bwd-a2a", "allreduce", "mlp", "lookup", "other", "compress", "decompress"} {
		if times[label] <= 0 {
			t.Fatalf("bucket %q not charged: %v", label, times)
		}
	}
}

// TestControllerDrivesErrorBounds verifies the iteration-wise decay: bounds
// start at startFactor times the class base and settle at the base once the
// initial phase ends.
func TestControllerDrivesErrorBounds(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 4)
	classes := make([]adapt.Class, len(cfg.TableSizes))
	for i := range classes {
		classes[i] = adapt.ClassMedium
	}
	const phase = 8
	ctrl, err := adapt.NewController(classes, adapt.PaperEBConfig(), adapt.ScheduleStepwise, phase, 2)
	if err != nil {
		t.Fatal(err)
	}
	codecs := make([]codec.Codec, len(classes))
	for i := range codecs {
		codecs[i] = hybrid.New(0.03, hybrid.Auto)
	}
	tr, err := NewTrainer(Options{
		Ranks:      2,
		Model:      cfg,
		CodecFor:   func(tb int) codec.Codec { return codecs[tb] },
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}

	gen := criteo.NewGenerator(spec)
	base := adapt.PaperEBConfig().Medium
	if _, err := tr.Step(gen.NextBatch(8)); err != nil {
		t.Fatal(err)
	}
	if got := codecs[0].(codec.ErrorBounded).ErrorBound(); got != base*2 {
		t.Fatalf("iteration 0 bound %v, want %v", got, base*2)
	}
	for i := 1; i <= phase; i++ {
		if _, err := tr.Step(gen.NextBatch(8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := codecs[0].(codec.ErrorBounded).ErrorBound(); got != base {
		t.Fatalf("post-phase bound %v, want %v", got, base)
	}
}

// failingCodec errors on every Compress call.
type failingCodec struct{}

func (failingCodec) Name() string { return "failing" }
func (failingCodec) Lossy() bool  { return false }
func (failingCodec) Compress([]float32, int) ([]byte, error) {
	return nil, errors.New("boom")
}
func (failingCodec) Decompress([]byte) ([]float32, int, error) {
	return nil, 0, errors.New("boom")
}

// TestFailedStepAppliesNoUpdates checks that a codec failure on one table
// surfaces as an error without mutating any parameter: no partial
// embedding scatter, no MLP update.
func TestFailedStepAppliesNoUpdates(t *testing.T) {
	spec := testSpec()
	tr, err := NewTrainer(Options{
		Ranks: 4,
		Model: testConfig(spec, 4),
		CodecFor: func(tb int) codec.Codec {
			if tb == 3 {
				return failingCodec{}
			}
			return hybrid.New(0.01, hybrid.Auto)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var before []float32
	for _, tab := range tr.tmpl.Emb.Tables {
		before = append(before, tab.Weights.Data...)
	}
	for _, p := range tr.tmpl.DenseParams() {
		before = append(before, p.Value...)
	}

	gen := criteo.NewGenerator(spec)
	if _, err := tr.Step(gen.NextBatch(16)); err == nil {
		t.Fatal("failing codec must surface an error")
	}

	var after []float32
	for _, tab := range tr.tmpl.Emb.Tables {
		after = append(after, tab.Weights.Data...)
	}
	for _, p := range tr.tmpl.DenseParams() {
		after = append(after, p.Value...)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("parameter %d changed after failed step: %v -> %v", i, before[i], after[i])
		}
	}
}

// TestSharedCodecWithControllerRejected: a controller cannot drive
// per-table bounds through one shared instance.
func TestSharedCodecWithControllerRejected(t *testing.T) {
	spec := testSpec()
	cfg := testConfig(spec, 4)
	classes := make([]adapt.Class, len(cfg.TableSizes))
	ctrl, err := adapt.NewController(classes, adapt.PaperEBConfig(), adapt.ScheduleNone, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared := hybrid.New(0.03, hybrid.Auto)
	_, err = NewTrainer(Options{
		Ranks:      2,
		Model:      cfg,
		CodecFor:   func(int) codec.Codec { return shared },
		Controller: ctrl,
	})
	if err == nil {
		t.Fatal("shared error-bounded codec with controller must be rejected")
	}
}

// TestWireRoundTrip exercises the fused frame format directly.
func TestWireRoundTrip(t *testing.T) {
	vals := []float32{1.5, -2.25, 0, 3e-7}
	var buf []byte
	buf = appendFrame(buf, 7, encRaw, floatsToBytes(vals))
	buf = appendFrame(buf, 21, encCodec, []byte{9, 8, 7})

	var seen int
	err := parseFrames(buf, func(table int, enc byte, payload []byte) error {
		seen++
		switch table {
		case 7:
			got := make([]float32, len(vals))
			if err := bytesToFloats(got, payload); err != nil {
				return err
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
				}
			}
		case 21:
			if enc != encCodec || len(payload) != 3 {
				t.Fatalf("frame 21: enc %d len %d", enc, len(payload))
			}
		default:
			t.Fatalf("unexpected table %d", table)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("saw %d frames", seen)
	}
	if err := parseFrames(buf[:5], func(int, byte, []byte) error { return nil }); err == nil {
		t.Fatal("truncated buffer must fail")
	}
}
