package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/lz4like"
)

// This file implements checkpoint/restore of the full trainer state: the
// model-parallel embedding shards, one copy of the data-parallel MLP
// parameters (the replicas are bit-identical by construction, so one copy
// restores them all), the adaptive controller's configuration, and the
// step counter + compression accounting. Weight payloads are written
// through the codec stack's buffered helpers with a *lossless* codec
// (LZSS by default), so checkpoints are compressed without breaking the
// resume-parity guarantee:
//
//	save at step k → restore into a fresh trainer at the same world
//	size → train on — the losses are bitwise identical to the
//	uninterrupted run.
//
// Restoring at a *different* world size is the elastic-resharding path:
// ownership is positional (owner = table % Ranks), so rebuilding the
// trainer at the new world and restoring the same checkpoint
// redistributes the tables round-robin automatically. PlanReshard (see
// reshard.go) reports which tables move and what the transfer costs.
//
// Checkpoints capture between-steps state only: SaveCheckpoint on a
// trainer with an in-flight pipelined step (RunPipelined) is the caller's
// bug, and restore resets no overlap-schedule state. The dense optimizer
// is plain SGD (stateless), so no optimizer moments are serialized; the
// format has a flags byte to version that in if an optimizer with state
// ever lands on the dense path.

// Checkpoint wire format (all integers little-endian):
//
//	magic "DLCK" | version u8 | codec u8 | flags u8 | reserved u8
//	iter u64 | fwdRawBytes u64 | fwdCompBytes u64
//	dim u32 | numTables u32 | rows u32 × numTables
//	numDense u32 | len u32 × numDense
//	[flags&ckptHasController] schedule u8 | phaseLen u32 |
//	    startFactor f64 | nEB u32 | baseEB f32 × nEB
//	frame (u32 length | bytes) × numDense, then × numTables
//
// The shape block doubles as a restore-target check: a checkpoint only
// restores into a model of identical dim, table sizes, and dense layer
// shapes (the rank count is deliberately absent — that is what elastic
// restore varies).
const (
	ckptVersion       = 1
	ckptHasController = 1 << 0
)

var ckptMagic = [4]byte{'D', 'L', 'C', 'K'}

// Checkpoint codec ids (the codec byte of the header).
const (
	ckptCodecRaw = iota
	ckptCodecLZSS
	ckptCodecDeflate
)

// DefaultCheckpointCodec is the codec SaveCheckpoint uses when
// CheckpointOptions.Codec is empty.
const DefaultCheckpointCodec = "lzss"

// CheckpointCodecs lists the accepted CheckpointOptions.Codec names. All
// are lossless — a lossy checkpoint would silently break the resume
// bit-parity guarantee — so the communication codecs (hybrid, fp16, …)
// are not on the menu.
func CheckpointCodecs() []string { return []string{"raw", "lzss", "deflate"} }

// ckptCodecByName maps a codec name to its header id and instance (nil
// for raw).
func ckptCodecByName(name string) (byte, codec.Codec, error) {
	switch name {
	case "", DefaultCheckpointCodec:
		return ckptCodecLZSS, lz4like.LZSSCodec{}, nil
	case "raw":
		return ckptCodecRaw, nil, nil
	case "deflate":
		return ckptCodecDeflate, lz4like.DeflateCodec{}, nil
	}
	return 0, nil, fmt.Errorf("dist: unknown checkpoint codec %q (want one of %v)", name, CheckpointCodecs())
}

func ckptCodecByID(id byte) (codec.Codec, error) {
	switch id {
	case ckptCodecRaw:
		return nil, nil
	case ckptCodecLZSS:
		return lz4like.LZSSCodec{}, nil
	case ckptCodecDeflate:
		return lz4like.DeflateCodec{}, nil
	}
	return nil, fmt.Errorf("dist: checkpoint carries unknown codec id %d", id)
}

// CheckpointOptions configures SaveCheckpoint.
type CheckpointOptions struct {
	// Codec names the lossless frame codec ("raw", "lzss", or "deflate");
	// empty means DefaultCheckpointCodec.
	Codec string
}

// CheckpointStats reports what a save moved.
type CheckpointStats struct {
	// RawBytes is the uncompressed footprint of the serialized weights.
	RawBytes int64
	// WireBytes is what the weight frames occupied after the codec
	// (headers and shape metadata excluded; they are a few dozen bytes).
	WireBytes int64
}

// Ratio returns RawBytes/WireBytes (1 when nothing was written).
func (s CheckpointStats) Ratio() float64 {
	if s.WireBytes == 0 {
		return 1
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// SaveCheckpoint serializes the full trainer state to w. It requires
// every rank in-process (like Evaluate): over a distributed transport the
// local process holds fresh state only for its own rank's tables, and a
// checkpoint of half-stale weights is exactly the corruption this check
// exists to prevent.
func (t *Trainer) SaveCheckpoint(w io.Writer, opts CheckpointOptions) (CheckpointStats, error) {
	var stats CheckpointStats
	if t.cl.Distributed() {
		return stats, fmt.Errorf("dist: SaveCheckpoint needs every rank in-process; this trainer hosts %d of %d ranks", len(t.cl.Local()), t.opts.Ranks)
	}
	codecID, cdc, err := ckptCodecByName(opts.Codec)
	if err != nil {
		return stats, err
	}

	var flags byte
	if t.opts.Controller != nil {
		flags |= ckptHasController
	}
	hdr := make([]byte, 0, 256)
	hdr = append(hdr, ckptMagic[:]...)
	hdr = append(hdr, ckptVersion, codecID, flags, 0)
	hdr = appendU64(hdr, uint64(t.iter))
	hdr = appendU64(hdr, uint64(t.fwdRawBytes))
	hdr = appendU64(hdr, uint64(t.fwdCompBytes))

	tables := t.tmpl.Emb.Tables
	hdr = appendU32(hdr, uint32(t.opts.Model.EmbeddingDim))
	hdr = appendU32(hdr, uint32(len(tables)))
	for _, tab := range tables {
		hdr = appendU32(hdr, uint32(tab.NumRows))
	}
	params := t.replicas[0].m.DenseParams()
	hdr = appendU32(hdr, uint32(len(params)))
	for _, p := range params {
		hdr = appendU32(hdr, uint32(len(p.Value)))
	}
	if t.opts.Controller != nil {
		c := t.opts.Controller
		hdr = append(hdr, byte(c.Schedule))
		hdr = appendU32(hdr, uint32(c.PhaseLen))
		hdr = appendU64(hdr, math.Float64bits(c.StartFactor))
		hdr = appendU32(hdr, uint32(len(c.BaseEB)))
		for _, eb := range c.BaseEB {
			hdr = appendU32(hdr, math.Float32bits(eb))
		}
	}
	if _, err := w.Write(hdr); err != nil {
		return stats, err
	}

	frame := make([]byte, 0, 1<<16)
	writeBlob := func(vals []float32, dim int) error {
		frame = frame[:0]
		if cdc == nil {
			frame = append(frame, floatsToBytes(vals)...)
		} else {
			if frame, err = codec.CompressAppend(cdc, frame, vals, dim); err != nil {
				return err
			}
		}
		var lenHdr [4]byte
		binary.LittleEndian.PutUint32(lenHdr[:], uint32(len(frame)))
		if _, err := w.Write(lenHdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return err
		}
		stats.RawBytes += int64(4 * len(vals))
		stats.WireBytes += int64(len(frame))
		return nil
	}
	for _, p := range params {
		if err := writeBlob(p.Value, len(p.Value)); err != nil {
			return stats, err
		}
	}
	for _, tab := range tables {
		if err := writeBlob(tab.Weights.Data, tab.Dim); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// ckptHeader is a decoded checkpoint header: everything before the weight
// frames, shared by RestoreCheckpoint (which checks it against a live
// trainer) and ReadCheckpoint (which hands the shapes to the caller).
type ckptHeader struct {
	cdc                   codec.Codec // nil = raw frames
	iter, fwdRaw, fwdComp uint64
	dim                   int
	rows                  []int // per-table row counts
	denseLens             []int // per-dense-tensor value counts
	ctrl                  *adapt.Controller
}

// readCkptHeader decodes the magic, version, codec, accounting, shape
// block, and optional controller block from d.
func readCkptHeader(d *ckptReader) (*ckptHeader, error) {
	var magic [4]byte
	d.bytes(magic[:])
	version, codecID, flags, _ := d.u8(), d.u8(), d.u8(), d.u8()
	if d.err != nil {
		return nil, fmt.Errorf("dist: checkpoint header: %w", d.err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("dist: not a checkpoint (magic %q)", magic[:])
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("dist: checkpoint version %d, this build reads %d", version, ckptVersion)
	}
	cdc, err := ckptCodecByID(codecID)
	if err != nil {
		return nil, err
	}
	h := &ckptHeader{cdc: cdc}
	h.iter = d.u64()
	h.fwdRaw = d.u64()
	h.fwdComp = d.u64()
	h.dim = int(d.u32())
	h.rows = make([]int, int(d.u32()))
	for i := range h.rows {
		h.rows[i] = int(d.u32())
	}
	h.denseLens = make([]int, int(d.u32()))
	for i := range h.denseLens {
		h.denseLens[i] = int(d.u32())
	}
	if flags&ckptHasController != 0 {
		h.ctrl = &adapt.Controller{
			Schedule:    adapt.Schedule(d.u8()),
			PhaseLen:    int(d.u32()),
			StartFactor: math.Float64frombits(d.u64()),
		}
		h.ctrl.BaseEB = make([]float32, d.u32())
		for i := range h.ctrl.BaseEB {
			h.ctrl.BaseEB[i] = math.Float32frombits(d.u32())
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("dist: checkpoint header: %w", d.err)
	}
	return h, nil
}

// readCkptFrame reads one length-prefixed weight frame and decodes it into
// dst through the header's codec.
func (h *ckptHeader) readFrame(d *ckptReader, dst []float32) error {
	n := int(d.u32())
	if d.err != nil {
		return d.err
	}
	frame := make([]byte, n)
	d.bytes(frame)
	if d.err != nil {
		return d.err
	}
	if h.cdc == nil {
		return bytesToFloats(dst, frame)
	}
	if _, err := codec.DecompressInto(h.cdc, dst, frame); err != nil {
		return err
	}
	return nil
}

// RestoreCheckpoint loads a checkpoint into the trainer, overwriting the
// embedding shards, every MLP replica's parameters (gradients are
// zeroed), the controller configuration, and the step counter. The
// checkpoint's model shape must match the trainer's exactly; its *rank
// count* need not — restoring into a trainer built at a different world
// size is the elastic resharding path, and the round-robin placement
// redistributes the tables as a consequence of positional ownership.
// Requires every rank in-process, like SaveCheckpoint.
func (t *Trainer) RestoreCheckpoint(r io.Reader) error {
	if t.cl.Distributed() {
		return fmt.Errorf("dist: RestoreCheckpoint needs every rank in-process; this trainer hosts %d of %d ranks", len(t.cl.Local()), t.opts.Ranks)
	}
	d := &ckptReader{r: r}
	h, err := readCkptHeader(d)
	if err != nil {
		return err
	}

	tables := t.tmpl.Emb.Tables
	if h.dim != t.opts.Model.EmbeddingDim || len(h.rows) != len(tables) {
		return fmt.Errorf("dist: checkpoint shape dim=%d tables=%d does not match the model's dim=%d tables=%d",
			h.dim, len(h.rows), t.opts.Model.EmbeddingDim, len(tables))
	}
	for i, rows := range h.rows {
		if rows != tables[i].NumRows {
			return fmt.Errorf("dist: checkpoint table %d has %d rows, the model has %d", i, rows, tables[i].NumRows)
		}
	}
	params := t.replicas[0].m.DenseParams()
	if len(h.denseLens) != len(params) {
		return fmt.Errorf("dist: checkpoint carries %d dense tensors, the model has %d", len(h.denseLens), len(params))
	}
	for i, n := range h.denseLens {
		if n != len(params[i].Value) {
			return fmt.Errorf("dist: checkpoint dense tensor %d has %d values, the model has %d", i, n, len(params[i].Value))
		}
	}

	ctrl := h.ctrl
	switch {
	case ctrl != nil && t.opts.Controller == nil:
		return fmt.Errorf("dist: checkpoint carries adaptive controller state but the trainer has no controller")
	case ctrl == nil && t.opts.Controller != nil:
		return fmt.Errorf("dist: the trainer has an adaptive controller but the checkpoint carries no controller state")
	case ctrl != nil && len(ctrl.BaseEB) != len(tables):
		return fmt.Errorf("dist: checkpoint controller covers %d tables, the model has %d", len(ctrl.BaseEB), len(tables))
	}

	// Shape verified; now the payload frames. Reads land directly in the
	// live buffers only after each frame decodes cleanly, so a truncated
	// stream cannot leave the trainer half-restored... except for frames
	// already applied — restore is not transactional across frames, and
	// callers treat a restore error as fatal to the trainer.
	for i, p := range params {
		if err := h.readFrame(d, p.Value); err != nil {
			return fmt.Errorf("dist: checkpoint dense tensor %d: %w", i, err)
		}
	}
	for i, tab := range tables {
		if err := h.readFrame(d, tab.Weights.Data); err != nil {
			return fmt.Errorf("dist: checkpoint table %d: %w", i, err)
		}
	}

	// Propagate the dense parameters to every replica and zero all
	// gradients — the replicas must leave restore bit-identical, exactly
	// as they leave construction.
	for _, rp := range t.replicas[1:] {
		for i, p := range rp.m.DenseParams() {
			copy(p.Value, params[i].Value)
		}
	}
	for _, rp := range t.replicas {
		rp.m.ZeroGrad()
	}
	if ctrl != nil {
		c := t.opts.Controller
		c.Schedule, c.PhaseLen, c.StartFactor = ctrl.Schedule, ctrl.PhaseLen, ctrl.StartFactor
		copy(c.BaseEB, ctrl.BaseEB)
	}
	t.iter = int(h.iter)
	t.fwdRawBytes = int64(h.fwdRaw)
	t.fwdCompBytes = int64(h.fwdComp)
	return nil
}

// CheckpointData is a checkpoint decoded into plain buffers, shapes and
// all — the train→serve handoff: the serving layer loads embedding shards
// and MLP parameters from a DLCK stream without constructing a trainer
// (and without a transport, controller, or gradient state). Tables[t] is
// the row-major [TableRows[t] × Dim] weight matrix of table t; Dense holds
// the MLP parameter tensors in model.DLRM.DenseParams order.
type CheckpointData struct {
	// Iter is the step count the checkpoint was saved at.
	Iter int
	// Dim is the embedding dimension.
	Dim int
	// TableRows is the per-table row count.
	TableRows []int
	// Dense holds the dense (MLP) parameter tensors, in DenseParams order.
	Dense [][]float32
	// Tables holds the per-table embedding weights, row-major.
	Tables [][]float32
}

// ReadCheckpoint decodes a full checkpoint stream into fresh buffers. It
// accepts exactly what SaveCheckpoint writes — same magic, version, codec
// menu, and frame layout as RestoreCheckpoint — but binds to no trainer:
// the caller checks the shapes against whatever model it is assembling.
// Checkpoints with an adaptive-controller block load fine; the controller
// configuration is training state and is not surfaced here.
func ReadCheckpoint(r io.Reader) (*CheckpointData, error) {
	d := &ckptReader{r: r}
	h, err := readCkptHeader(d)
	if err != nil {
		return nil, err
	}
	ck := &CheckpointData{
		Iter:      int(h.iter),
		Dim:       h.dim,
		TableRows: h.rows,
		Dense:     make([][]float32, len(h.denseLens)),
		Tables:    make([][]float32, len(h.rows)),
	}
	for i, n := range h.denseLens {
		ck.Dense[i] = make([]float32, n)
		if err := h.readFrame(d, ck.Dense[i]); err != nil {
			return nil, fmt.Errorf("dist: checkpoint dense tensor %d: %w", i, err)
		}
	}
	for i, rows := range h.rows {
		ck.Tables[i] = make([]float32, rows*h.dim)
		if err := h.readFrame(d, ck.Tables[i]); err != nil {
			return nil, fmt.Errorf("dist: checkpoint table %d: %w", i, err)
		}
	}
	return ck, nil
}

// Iter returns how many steps the trainer has taken (restored by
// RestoreCheckpoint, so adaptive decay schedules resume where they left
// off).
func (t *Trainer) Iter() int { return t.iter }

// ckptReader wraps an io.Reader with sticky-error little-endian decoding.
type ckptReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *ckptReader) bytes(p []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, p)
}

func (d *ckptReader) u8() byte {
	d.bytes(d.buf[:1])
	return d.buf[0]
}

func (d *ckptReader) u32() uint32 {
	d.bytes(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *ckptReader) u64() uint64 {
	d.bytes(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}
