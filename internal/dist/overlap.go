package dist

import (
	"fmt"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/netmodel"
)

// This file implements the comm/compute overlap engine: a double-buffered
// training driver that pipelines the forward all-to-all of batch k+1
// behind the MLP compute of batch k.
//
// The math is executed in exactly the synchronous order — RunPipelined
// calls the same runStep as Step, so losses, parameters, and every
// accounting bucket are bit-identical to a Step loop. What changes is how
// the modelled component costs compose into an end-to-end time: instead of
// summing serially, each component is reserved on a netmodel.Timeline
// resource (device lane, intra link, inter link), so a transfer in flight
// on the NIC genuinely overlaps device compute, while two transfers
// contending for the same link serialize.
//
// The steady-state schedule per step k (device lane left, links right):
//
//	dev:  decompress(k-1) · lookup(k) · compress(k) · mlp+other(k-1)
//	link:                       └─ fwd a2a(k) ──────────────────────┐
//	link:  mlp done ─ bwd a2a(k-1) ─ allreduce(k-1)                 │
//	dev:  decompress(k) ◄───────────────────────────────────────────┘
//
// so the wire time of batch k's forward exchange hides under batch k-1's
// MLP (and its backward collectives), and the codec work of batch k hides
// under the head of its own transfer (the wire starts once the first
// per-destination chunk is compressed). The modelled prefetch assumes the
// owner-side gather of batch k may proceed while batch k-1's dense
// backward is still on the device — the standard DLRM prefetch discipline;
// the executed math keeps the synchronous order, so enabling overlap never
// changes results, only the clock.

// RunPipelined runs steps training iterations with the comm/compute
// overlap schedule, fetching batch k from next(k). It returns the
// per-step global-batch losses, which are bit-identical to calling Step
// on the same batches (and therefore to single-process training at one
// rank). After it returns, OverlappedSimTime reports the modelled
// end-to-end time of the pipelined run and SerialSimTime what the same
// steps cost scheduled serially; the per-bucket breakdown in
// Cluster().SimTimes() is unchanged by overlap.
//
// On a step error the driver stops, flushes the schedule, and returns the
// losses of the completed steps alongside the error (the failed step
// applied no updates, as with Step).
func (t *Trainer) RunPipelined(steps int, next func(step int) *criteo.Batch) ([]float32, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("dist: RunPipelined needs a positive step count, got %d", steps)
	}
	if t.cl.Distributed() {
		// The overlap timeline needs every rank's collective costs in one
		// process; distributed runs use synchronous Steps.
		return nil, fmt.Errorf("dist: RunPipelined requires all ranks in-process; the distributed transport runs synchronous steps only")
	}
	if t.tl == nil {
		t.tl = netmodel.NewTimeline()
	}
	losses := make([]float32, 0, steps)
	for k := 0; k < steps; k++ {
		loss, st, err := t.runStep(next(k))
		if err != nil {
			t.flush()
			return losses, err
		}
		losses = append(losses, loss)
		t.pipeSerial += st.serial()
		if t.pending == nil {
			// Cold start: nothing to overlap the first transfer with.
			t.pendingFwdDone = t.schedulePrefetch(&st)
		} else {
			t.pendingFwdDone = t.scheduleCompute(t.pending, t.pendingFwdDone, &st)
		}
		stCopy := st
		t.pending = &stCopy
	}
	t.flush()
	return losses, nil
}

// flush schedules the trailing step's compute (which has no successor to
// prefetch) and clears the lookahead state so a subsequent RunPipelined
// cold-starts cleanly after the current makespan.
func (t *Trainer) flush() {
	if t.pending != nil {
		t.scheduleCompute(t.pending, t.pendingFwdDone, nil)
		t.pending = nil
		t.pendingFwdDone = 0
	}
}

// schedulePrefetch books a step's owner-side gather (lookup + compress) on
// the device lane and its forward all-to-all on the links, returning the
// modelled completion of the transfer. The wire starts once the first
// per-destination chunk is compressed, so all but 1/(ranks-1) of the codec
// time hides under the transfer itself.
func (t *Trainer) schedulePrefetch(st *stepStats) time.Duration {
	lookupDone := t.tl.Reserve(netmodel.ResDevice, 0, st.lookup)
	compressDone := t.tl.Reserve(netmodel.ResDevice, lookupDone, st.compress)
	wireReady := compressDone
	if st.compress > 0 {
		chunks := t.opts.Ranks - 1
		if chunks < 1 {
			chunks = 1
		}
		wireReady = compressDone - st.compress + st.compress/time.Duration(chunks)
	}
	return t.tl.ReserveLinkCost(wireReady, st.fwd)
}

// scheduleCompute books the receive-and-compute half of the step whose
// forward transfer completed at fwdDone: decompress, then — before the MLP,
// so its wire time hides under it — the prefetch of nextSt (when non-nil),
// then the MLP (+ other compute), the backward all-to-all, and the dense
// allreduce. Returns the modelled completion of nextSt's forward transfer
// (zero when nextSt is nil).
func (t *Trainer) scheduleCompute(st *stepStats, fwdDone time.Duration, nextSt *stepStats) time.Duration {
	t.tl.Reserve(netmodel.ResDevice, fwdDone, st.decompress)
	var nextFwdDone time.Duration
	if nextSt != nil {
		// The prefetch gather needs only the device, not this step's
		// inbound data, so it may run while the transfer is still in
		// flight (it slots in here, before the MLP).
		nextFwdDone = t.schedulePrefetch(nextSt)
	}
	// The MLP consumes this step's lookups: it must wait for the transfer
	// even when there is no decompress reservation to carry that edge
	// (codec none ⇒ st.decompress == 0 ⇒ the reservation above was a
	// no-op that did not advance the device clock past fwdDone).
	mlpDone := t.tl.Reserve(netmodel.ResDevice, fwdDone, st.mlp+st.other)
	bwdDone := t.tl.ReserveLinkCost(mlpDone, st.bwd)
	t.tl.Reserve(netmodel.ResInter, bwdDone, st.allreduce)
	return nextFwdDone
}

// OverlappedSimTime returns the modelled end-to-end duration of all steps
// driven through RunPipelined so far — the makespan of the per-link
// occupancy timeline. Zero if RunPipelined has not run.
func (t *Trainer) OverlappedSimTime() time.Duration {
	if t.tl == nil {
		return 0
	}
	return t.tl.End()
}

// SerialSimTime returns what the RunPipelined steps would have cost under
// the synchronous schedule (every component back to back) — the baseline
// the overlap win is measured against. Zero if RunPipelined has not run.
func (t *Trainer) SerialSimTime() time.Duration { return t.pipeSerial }
