package profileutil

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Breakdown is a set of labelled durations.
type Breakdown map[string]time.Duration

// Total sums all buckets.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Share returns bucket/total in [0, 1] (0 if empty).
func (b Breakdown) Share(label string) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b[label]) / float64(total)
}

// Row is one line of a formatted breakdown.
type Row struct {
	Label   string
	Time    time.Duration
	Percent float64
}

// Rows returns the buckets sorted by descending share.
func (b Breakdown) Rows() []Row {
	total := b.Total()
	rows := make([]Row, 0, len(b))
	for label, d := range b {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		rows = append(rows, Row{Label: label, Time: d, Percent: pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Time != rows[j].Time {
			return rows[i].Time > rows[j].Time
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// String renders an aligned text table.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %14s %8s\n", "category", "time", "share")
	for _, r := range b.Rows() {
		fmt.Fprintf(&sb, "%-16s %14v %7.1f%%\n", r.Label, r.Time.Round(time.Microsecond), r.Percent)
	}
	fmt.Fprintf(&sb, "%-16s %14v %7.1f%%\n", "total", b.Total().Round(time.Microsecond), 100.0)
	return sb.String()
}

// Merge adds other's buckets into a copy of b.
func (b Breakdown) Merge(other Breakdown) Breakdown {
	out := make(Breakdown, len(b)+len(other))
	for k, v := range b {
		out[k] += v
	}
	for k, v := range other {
		out[k] += v
	}
	return out
}
