// Package profileutil formats the simulated-time buckets collected during
// training into the breakdown tables behind Fig. 1 and Fig. 12.
//
// Layer: presentation over the sim clock — experiment drivers and
// cmd/dlrmtrain wrap Cluster().SimTimes() in a Breakdown to render and
// query it. The bucket labels it sees are the ones internal/dist charges:
// "fwd-a2a"/"bwd-a2a" (or their "-intra"/"-inter" splits under a
// multi-node topology), "allreduce", "mlp", "lookup", "compress",
// "decompress", "other". The package only reads buckets; it never charges
// them, and a Breakdown's Total is the serial schedule cost (the
// overlapped end-to-end time lives on the trainer, not in the buckets).
//
// Key types: Breakdown (map of label → duration with Total/Share/Merge),
// Row and Rows (share-sorted table rows), String (the aligned text table
// the CLI prints).
package profileutil
