package profileutil

import (
	"strings"
	"testing"
	"time"
)

func TestTotalAndShare(t *testing.T) {
	b := Breakdown{"a2a": 6 * time.Second, "mlp": 3 * time.Second, "emb": time.Second}
	if b.Total() != 10*time.Second {
		t.Fatalf("total %v", b.Total())
	}
	if b.Share("a2a") != 0.6 {
		t.Fatalf("share %v", b.Share("a2a"))
	}
	if (Breakdown{}).Share("x") != 0 {
		t.Fatal("empty share should be 0")
	}
}

func TestRowsSorted(t *testing.T) {
	b := Breakdown{"small": time.Second, "big": 5 * time.Second, "mid": 2 * time.Second}
	rows := b.Rows()
	if rows[0].Label != "big" || rows[2].Label != "small" {
		t.Fatalf("rows order: %+v", rows)
	}
	if rows[0].Percent < 62 || rows[0].Percent > 63 {
		t.Fatalf("percent %v", rows[0].Percent)
	}
}

func TestString(t *testing.T) {
	b := Breakdown{"fwd-a2a": 3 * time.Second, "mlp": time.Second}
	s := b.String()
	if !strings.Contains(s, "fwd-a2a") || !strings.Contains(s, "total") {
		t.Fatalf("table missing rows:\n%s", s)
	}
}

func TestMerge(t *testing.T) {
	a := Breakdown{"x": time.Second}
	b := Breakdown{"x": time.Second, "y": 2 * time.Second}
	m := a.Merge(b)
	if m["x"] != 2*time.Second || m["y"] != 2*time.Second {
		t.Fatalf("merge = %v", m)
	}
	if a["x"] != time.Second {
		t.Fatal("merge must not mutate inputs")
	}
}
