// Package quant implements the error-bounded uniform quantization encoder
// that is the first stage of the paper's hybrid lossy compressor (§III-D):
// floating-point values are mapped to integer bin codes such that the
// reconstruction error of every element is at most the error bound.
//
//	code_i  = round(v_i / (2·eb))
//	recon_i = code_i · (2·eb)      ⇒ |v_i − recon_i| ≤ eb
//
// Codes are symmetric around zero; ZigZag mapping converts them to unsigned
// symbols for the entropy stage.
//
// Layer: first stage inside internal/hybrid (and the quantizer the
// homogenization analysis in internal/adapt uses to compute Eq. 1's
// collapse statistics). Pure compute, priced only through the wrapping
// codec's calibrated rates.
//
// Key types: Quantizer (New(eb), Quantize/Dequantize over []int32 codes)
// and the ZigZag helpers shared with the entropy coders — including the
// allocation-free ZigZagInto/UnZigZagInto variants the buffered codec
// path feeds from reusable workspace buffers.
package quant
