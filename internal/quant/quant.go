package quant

import (
	"fmt"
	"math"
)

// Quantizer performs error-bounded linear quantization.
type Quantizer struct {
	// ErrorBound is the maximum tolerated absolute reconstruction error.
	ErrorBound float32
}

// New returns a Quantizer with the given absolute error bound.
func New(eb float32) Quantizer {
	if eb <= 0 {
		panic(fmt.Sprintf("quant: error bound must be positive, got %v", eb))
	}
	return Quantizer{ErrorBound: eb}
}

// Quantize writes the bin code of every src element into dst
// (len(dst) == len(src)).
func (q Quantizer) Quantize(dst []int32, src []float32) {
	if len(dst) != len(src) {
		panic("quant: Quantize length mismatch")
	}
	step := 2 * float64(q.ErrorBound)
	for i, v := range src {
		dst[i] = int32(math.Round(float64(v) / step))
	}
}

// QuantizeZigZag fuses Quantize and ZigZagInto into one pass over src:
// codes[i] gets the bin code, syms[i] its zigzag symbol, and the returned
// value is the maximum symbol (0 for empty input). The outputs are exactly
// what the two separate passes produce; fusing only saves the second
// traversal and hands the caller the alphabet bound for free.
func (q Quantizer) QuantizeZigZag(codes []int32, syms []uint32, src []float32) (maxSym uint32) {
	if len(codes) != len(src) || len(syms) != len(src) {
		panic("quant: QuantizeZigZag length mismatch")
	}
	step := 2 * float64(q.ErrorBound)
	for i, v := range src {
		c := int32(math.Round(float64(v) / step))
		codes[i] = c
		s := uint32((c << 1) ^ (c >> 31))
		syms[i] = s
		if s > maxSym {
			maxSym = s
		}
	}
	return maxSym
}

// Dequantize reconstructs values from bin codes.
func (q Quantizer) Dequantize(dst []float32, codes []int32) {
	if len(dst) != len(codes) {
		panic("quant: Dequantize length mismatch")
	}
	step := 2 * float64(q.ErrorBound)
	for i, c := range codes {
		dst[i] = float32(float64(c) * step)
	}
}

// MaxError returns the largest absolute difference between orig and recon.
func MaxError(orig, recon []float32) float32 {
	if len(orig) != len(recon) {
		panic("quant: MaxError length mismatch")
	}
	var m float32
	for i, v := range orig {
		d := v - recon[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// ZigZag maps a signed code to an unsigned symbol: 0,-1,1,-2,2 → 0,1,2,3,4.
// Small-magnitude codes (the common case for embedding data) get small
// symbols, which keeps entropy tables compact.
func ZigZag(v int32) uint32 {
	return uint32((v << 1) ^ (v >> 31))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint32) int32 {
	return int32(u>>1) ^ -int32(u&1)
}

// ZigZagSlice maps codes to symbols in place semantics via a new slice.
func ZigZagSlice(codes []int32) []uint32 {
	out := make([]uint32, len(codes))
	ZigZagInto(out, codes)
	return out
}

// ZigZagInto writes ZigZag(codes[i]) into dst[i] without allocating; dst and
// codes must have equal length. This is the in-place-style variant the
// buffered codec hot path uses (dst is a reusable workspace buffer).
func ZigZagInto(dst []uint32, codes []int32) {
	if len(dst) != len(codes) {
		panic("quant: ZigZagInto length mismatch")
	}
	for i, c := range codes {
		dst[i] = ZigZag(c)
	}
}

// UnZigZagSlice inverts ZigZagSlice.
func UnZigZagSlice(syms []uint32) []int32 {
	out := make([]int32, len(syms))
	UnZigZagInto(out, syms)
	return out
}

// UnZigZagInto inverts ZigZagInto; dst and syms must have equal length.
func UnZigZagInto(dst []int32, syms []uint32) {
	if len(dst) != len(syms) {
		panic("quant: UnZigZagInto length mismatch")
	}
	for i, s := range syms {
		dst[i] = UnZigZag(s)
	}
}
