package quant

import (
	"testing"
	"testing/quick"

	"dlrmcomp/internal/tensor"
)

func TestRoundTripRespectsErrorBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := make([]float32, 4096)
	rng.FillNormal(src, 0, 1)
	for _, eb := range []float32{0.001, 0.01, 0.05, 0.5} {
		q := New(eb)
		codes := make([]int32, len(src))
		q.Quantize(codes, src)
		recon := make([]float32, len(src))
		q.Dequantize(recon, codes)
		if e := MaxError(src, recon); e > eb*(1+1e-5) {
			t.Fatalf("eb %v violated: max error %v", eb, e)
		}
	}
}

func TestQuantizeKnownValues(t *testing.T) {
	q := New(0.5) // step = 1.0
	src := []float32{0, 0.4, 0.6, -0.6, 1.5, -1.5}
	codes := make([]int32, len(src))
	q.Quantize(codes, src)
	want := []int32{0, 0, 1, -1, 2, -2}
	for i, w := range want {
		if codes[i] != w {
			t.Fatalf("codes[%d] = %d, want %d", i, codes[i], w)
		}
	}
}

func TestVectorHomogenization(t *testing.T) {
	// Two vectors whose elements differ by less than the bin width must
	// quantize to identical codes — the paper's Vector Homogenization.
	q := New(0.05)
	a := []float32{0.50, 0.30, -0.20}
	b := []float32{0.52, 0.28, -0.21} // within 0.05 of a, same bins
	ca := make([]int32, 3)
	cb := make([]int32, 3)
	q.Quantize(ca, a)
	q.Quantize(cb, b)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("vectors should homogenize: codes %v vs %v", ca, cb)
		}
	}
}

func TestLargerEBMergesMoreBins(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := make([]float32, 2048)
	rng.FillNormal(src, 0, 1)
	unique := func(eb float32) int {
		q := New(eb)
		codes := make([]int32, len(src))
		q.Quantize(codes, src)
		set := make(map[int32]bool)
		for _, c := range codes {
			set[c] = true
		}
		return len(set)
	}
	if unique(0.1) >= unique(0.001) {
		t.Fatal("larger error bound must not increase unique code count")
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int32]uint32{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, 1 << 20: 1 << 21}
	for v, w := range cases {
		if got := ZigZag(v); got != w {
			t.Fatalf("ZigZag(%d) = %d, want %d", v, got, w)
		}
		if back := UnZigZag(w); back != v {
			t.Fatalf("UnZigZag(%d) = %d, want %d", w, back, v)
		}
	}
}

func TestZigZagRoundTripProperty(t *testing.T) {
	f := func(v int32) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, ebSel uint8) bool {
		eb := []float32{0.001, 0.01, 0.02, 0.1}[int(ebSel)%4]
		src := make([]float32, len(raw))
		for i, r := range raw {
			// Map to a bounded range to avoid float32 code overflow.
			src[i] = (float32(r%20000) - 10000) / 1000.0
		}
		q := New(eb)
		codes := make([]int32, len(src))
		q.Quantize(codes, src)
		recon := make([]float32, len(src))
		q.Dequantize(recon, codes)
		// Allow one float32 ulp at the max magnitude (10) beyond the bound.
		return MaxError(src, recon) <= eb+2e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	codes := []int32{0, -1, 5, -100}
	if got := UnZigZagSlice(ZigZagSlice(codes)); len(got) != len(codes) {
		t.Fatal("length mismatch")
	} else {
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("round trip [%d] = %d", i, got[i])
			}
		}
	}
}

func TestNewPanicsOnBadEB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eb <= 0")
		}
	}()
	New(0)
}
