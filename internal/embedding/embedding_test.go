package embedding

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

func TestLookupGathersRows(t *testing.T) {
	rng := tensor.NewRNG(1)
	tab := NewTable(0, 10, 4, rng)
	idx := []int32{3, 3, 7, 0}
	out := tab.Lookup(idx)
	if out.Rows != 4 || out.Cols != 4 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	for i, id := range idx {
		for j := 0; j < 4; j++ {
			if out.At(i, j) != tab.Weights.At(int(id), j) {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
	// Duplicate indices must produce identical rows.
	for j := 0; j < 4; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Fatal("duplicate index rows differ")
		}
	}
}

func TestLookupOutOfRangePanics(t *testing.T) {
	rng := tensor.NewRNG(2)
	tab := NewTable(0, 5, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tab.Lookup([]int32{5})
}

func TestApplySGD(t *testing.T) {
	rng := tensor.NewRNG(3)
	tab := NewTable(0, 4, 2, rng)
	before := tab.Weights.Clone()
	grad := tensor.FromSlice(2, 2, []float32{1, 2, 3, 4})
	tab.ApplySGD(SparseGrad{Indices: []int32{1, 3}, Grad: grad}, 0.1)
	wantRow1 := []float32{before.At(1, 0) - 0.1, before.At(1, 1) - 0.2}
	wantRow3 := []float32{before.At(3, 0) - 0.3, before.At(3, 1) - 0.4}
	for j := 0; j < 2; j++ {
		if math.Abs(float64(tab.Weights.At(1, j)-wantRow1[j])) > 1e-6 {
			t.Fatalf("row 1 col %d: %v want %v", j, tab.Weights.At(1, j), wantRow1[j])
		}
		if math.Abs(float64(tab.Weights.At(3, j)-wantRow3[j])) > 1e-6 {
			t.Fatalf("row 3 col %d", j)
		}
	}
	// Untouched rows unchanged.
	for j := 0; j < 2; j++ {
		if tab.Weights.At(0, j) != before.At(0, j) || tab.Weights.At(2, j) != before.At(2, j) {
			t.Fatal("untouched row modified")
		}
	}
}

func TestApplySGDDuplicateIndicesAccumulate(t *testing.T) {
	rng := tensor.NewRNG(4)
	tab := NewTable(0, 2, 1, rng)
	w0 := tab.Weights.At(0, 0)
	grad := tensor.FromSlice(2, 1, []float32{1, 1})
	tab.ApplySGD(SparseGrad{Indices: []int32{0, 0}, Grad: grad}, 0.5)
	want := w0 - 0.5 - 0.5
	if math.Abs(float64(tab.Weights.At(0, 0)-want)) > 1e-6 {
		t.Fatalf("duplicate update = %v, want %v", tab.Weights.At(0, 0), want)
	}
}

func TestApplyAdagradShrinksSteps(t *testing.T) {
	rng := tensor.NewRNG(5)
	tab := NewTable(0, 1, 1, rng)
	g := tensor.FromSlice(1, 1, []float32{1})
	w0 := tab.Weights.At(0, 0)
	tab.ApplyAdagrad(SparseGrad{Indices: []int32{0}, Grad: g}, 0.1)
	step1 := w0 - tab.Weights.At(0, 0)
	w1 := tab.Weights.At(0, 0)
	tab.ApplyAdagrad(SparseGrad{Indices: []int32{0}, Grad: g}, 0.1)
	step2 := w1 - tab.Weights.At(0, 0)
	if step2 >= step1 {
		t.Fatalf("Adagrad step should shrink: %v then %v", step1, step2)
	}
}

func TestGroupLookupAll(t *testing.T) {
	rng := tensor.NewRNG(6)
	g := NewGroup([]int{10, 20, 30}, 8, rng)
	if len(g.Tables) != 3 {
		t.Fatalf("group size %d", len(g.Tables))
	}
	idx := [][]int32{{1, 2}, {3, 4}, {5, 6}}
	outs := g.LookupAll(idx)
	if len(outs) != 3 {
		t.Fatalf("outputs %d", len(outs))
	}
	for ti, out := range outs {
		if out.Rows != 2 || out.Cols != 8 {
			t.Fatalf("table %d shape %dx%d", ti, out.Rows, out.Cols)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	rng := tensor.NewRNG(7)
	tab := NewTable(0, 100, 32, rng)
	if tab.SizeBytes() != 100*32*4 {
		t.Fatalf("SizeBytes = %d", tab.SizeBytes())
	}
	g := NewGroup([]int{10, 20}, 4, rng)
	if g.TotalBytes() != (10+20)*4*4 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
}

func TestInitScalesWithCardinality(t *testing.T) {
	rng := tensor.NewRNG(8)
	small := NewTable(0, 4, 16, rng)
	large := NewTable(1, 1<<20, 16, rng)
	if tensor.MaxAbs(small.Weights.Data) <= tensor.MaxAbs(large.Weights.Data) {
		t.Fatal("larger tables should have smaller init range")
	}
	if tensor.MaxAbs(small.Weights.Data) > 0.5 {
		t.Fatal("init out of expected range")
	}
}
