package embedding

import (
	"fmt"
	"math"

	"dlrmcomp/internal/tensor"
)

// Table is one embedding table: NumRows vectors of dimension Dim.
type Table struct {
	ID      int
	NumRows int
	Dim     int
	Weights *tensor.Matrix // [NumRows, Dim]

	// adagrad per-row accumulated squared gradient norms (DLRM-style
	// row-wise Adagrad); lazily allocated on first sparse update.
	adagradAcc []float32
}

// NewTable allocates a table with uniform(-1/sqrt(n), 1/sqrt(n))
// initialization, the scheme the open-source DLRM reference uses (scaled by
// table cardinality so hot small tables don't dominate the interaction
// logits).
func NewTable(id, numRows, dim int, rng *tensor.RNG) *Table {
	return NewTableWithInitScale(id, numRows, dim, numRows, rng)
}

// NewTableWithInitScale allocates a table holding numRows rows but
// initialized with the value range of a table of initRows rows
// (uniform ±1/sqrt(initRows)). Scaled-down experiment datasets use this to
// preserve the full-scale value statistics — in particular the vector
// homogenization behaviour, which depends on the init range relative to the
// quantization error bound — while storing far fewer rows.
func NewTableWithInitScale(id, numRows, dim, initRows int, rng *tensor.RNG) *Table {
	if numRows <= 0 || dim <= 0 || initRows <= 0 {
		panic(fmt.Sprintf("embedding: invalid table shape %dx%d (init %d)", numRows, dim, initRows))
	}
	t := &Table{ID: id, NumRows: numRows, Dim: dim, Weights: tensor.NewMatrix(numRows, dim)}
	limit := float32(1.0 / math.Sqrt(float64(initRows)))
	rng.FillUniform(t.Weights.Data, -limit, limit)
	return t
}

// Lookup gathers the rows for indices into a new [len(indices), Dim] matrix.
func (t *Table) Lookup(indices []int32) *tensor.Matrix {
	out := tensor.NewMatrix(len(indices), t.Dim)
	t.LookupInto(out, indices)
	return out
}

// LookupInto gathers rows into dst, which must be [len(indices), Dim].
func (t *Table) LookupInto(dst *tensor.Matrix, indices []int32) {
	t.LookupIntoWorkers(dst, indices, 1)
}

// lookupParallelMin is the gathered-element count below which LookupInto
// stays serial: the copy is pure memory traffic and small gathers lose more
// to fan-out than they gain.
const lookupParallelMin = 1 << 14

// LookupIntoWorkers is LookupInto with an explicit row-parallel width
// (0 = GOMAXPROCS, 1 = serial). Rows of dst are written independently, so the
// result is identical at any width; gathers below lookupParallelMin elements
// run serially regardless.
func (t *Table) LookupIntoWorkers(dst *tensor.Matrix, indices []int32, workers int) {
	if dst.Rows != len(indices) || dst.Cols != t.Dim {
		panic("embedding: LookupInto shape mismatch")
	}
	if workers == 1 || len(indices)*t.Dim < lookupParallelMin {
		t.lookupSpan(dst, indices, 0, len(indices))
		return
	}
	tensor.ParallelSpans(workers, len(indices), func(lo, hi int) {
		t.lookupSpan(dst, indices, lo, hi)
	})
}

// lookupSpan gathers rows [lo, hi). Kept as a plain method so the serial
// LookupIntoWorkers path stays allocation-free (no escaping closure).
func (t *Table) lookupSpan(dst *tensor.Matrix, indices []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		idx := indices[i]
		if idx < 0 || int(idx) >= t.NumRows {
			panic(fmt.Sprintf("embedding: index %d out of range [0,%d) in table %d", idx, t.NumRows, t.ID))
		}
		copy(dst.Row(i), t.Weights.Row(int(idx)))
	}
}

// SparseGrad holds the gradient rows for one lookup batch: grad.Row(i) is
// dL/d(lookup row i), destined for Weights.Row(indices[i]).
type SparseGrad struct {
	Indices []int32
	Grad    *tensor.Matrix // [len(Indices), Dim]
}

// ApplySGD scatters the sparse gradient with a plain SGD update; duplicate
// indices accumulate naturally because updates are applied sequentially.
func (t *Table) ApplySGD(sg SparseGrad, lr float32) {
	if sg.Grad.Rows != len(sg.Indices) || sg.Grad.Cols != t.Dim {
		panic("embedding: ApplySGD shape mismatch")
	}
	for i, idx := range sg.Indices {
		row := t.Weights.Row(int(idx))
		g := sg.Grad.Row(i)
		for j, gv := range g {
			row[j] -= lr * gv
		}
	}
}

// ApplyAdagrad scatters the sparse gradient with DLRM-style row-wise
// Adagrad: each row keeps one accumulator fed by the mean squared gradient
// of that row's update.
func (t *Table) ApplyAdagrad(sg SparseGrad, lr float32) {
	if sg.Grad.Rows != len(sg.Indices) || sg.Grad.Cols != t.Dim {
		panic("embedding: ApplyAdagrad shape mismatch")
	}
	if t.adagradAcc == nil {
		t.adagradAcc = make([]float32, t.NumRows)
	}
	for i, idx := range sg.Indices {
		g := sg.Grad.Row(i)
		var sq float64
		for _, gv := range g {
			sq += float64(gv) * float64(gv)
		}
		t.adagradAcc[idx] += float32(sq / float64(t.Dim))
		scale := lr / (float32(math.Sqrt(float64(t.adagradAcc[idx]))) + 1e-8)
		row := t.Weights.Row(int(idx))
		for j, gv := range g {
			row[j] -= scale * gv
		}
	}
}

// SizeBytes returns the table's weight storage footprint.
func (t *Table) SizeBytes() int64 { return int64(t.NumRows) * int64(t.Dim) * 4 }

// Group is an ordered set of embedding tables (one per categorical feature).
type Group struct {
	Tables []*Table
}

// NewGroup builds one table per cardinality with a shared embedding dim.
func NewGroup(cardinalities []int, dim int, rng *tensor.RNG) *Group {
	return NewGroupWithInit(cardinalities, nil, dim, rng)
}

// NewGroupWithInit builds tables whose init range follows initCardinalities
// (nil means the actual cardinalities).
func NewGroupWithInit(cardinalities, initCardinalities []int, dim int, rng *tensor.RNG) *Group {
	g := &Group{}
	for id, n := range cardinalities {
		initRows := n
		if initCardinalities != nil {
			initRows = initCardinalities[id]
		}
		g.Tables = append(g.Tables, NewTableWithInitScale(id, n, dim, initRows, rng))
	}
	return g
}

// LookupAll gathers one batch per table. indices[t][i] is the categorical
// index of sample i for feature t. Returns one [batch, Dim] matrix per table.
func (g *Group) LookupAll(indices [][]int32) []*tensor.Matrix {
	if len(indices) != len(g.Tables) {
		panic("embedding: LookupAll wants one index slice per table")
	}
	out := make([]*tensor.Matrix, len(g.Tables))
	for ti, t := range g.Tables {
		out[ti] = t.Lookup(indices[ti])
	}
	return out
}

// TotalBytes returns the summed weight footprint of all tables.
func (g *Group) TotalBytes() int64 {
	var n int64
	for _, t := range g.Tables {
		n += t.SizeBytes()
	}
	return n
}
