// Package embedding implements DLRM embedding tables: dense row storage,
// batched lookup, and the sparse gradient scatter/update used during
// backpropagation. A lookup batch produces one row per sample per table; the
// rows are exactly the "embedding lookups" whose all-to-all exchange the
// paper compresses.
//
// Layer: model substrate under internal/model. In the distributed trainer
// the tables are the model-parallel half of hybrid parallelism: each table
// is stored once, owned by one rank, and read/updated only through the
// all-to-all-delivered lookups and gradients. The byte volume its lookups
// move through HBM is what internal/dist charges to the "lookup" sim-time
// bucket (via netmodel.Device.LookupTime).
//
// Key types: Table (NewTable/Lookup/ApplySGD; rows are float32, updates
// are scaled sparse SGD with duplicate-index accumulation in batch order),
// SparseGrad (indices + gradient rows for one table's scatter), and Group
// (the per-model collection with one Table per categorical feature).
package embedding
