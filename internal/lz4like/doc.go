// Package lz4like provides the lossless baseline compressors the paper
// compares against: a from-scratch byte-level LZSS with the classic small
// (4 KB) window and variable-length matches — the algorithmic family of
// nvCOMP-LZ4 — and a Deflate codec built on the standard library, standing
// in for nvCOMP-Deflate. Both operate on the raw float32 bytes of the batch,
// which is exactly why they achieve low ratios on embedding data: the
// mantissa bytes are high-entropy and repeats rarely align at byte level
// unless whole vectors recur close together.
//
// Layer: baseline codecs implementing internal/codec.Codec; priced by
// netmodel.PaperCodecRates under "lz4-like" and "deflate". The vector-
// granular ablation (bench_test.go) measures the same batches against
// internal/vlz to quantify the paper's fixed-pattern-length advantage.
//
// Key types: LZSSCodec and DeflateCodec (both stateless values — safe to
// share across rank goroutines).
package lz4like
