package lz4like

import (
	"bytes"
	"testing"
	"testing/quick"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/tensor"
)

func byteRoundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := CompressBytes(src)
	dec, err := DecompressBytes(enc)
	if err != nil {
		t.Fatalf("DecompressBytes: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: got %d bytes want %d", len(dec), len(src))
	}
	return enc
}

func TestBytesEmpty(t *testing.T) { byteRoundTrip(t, nil) }

func TestBytesShort(t *testing.T) { byteRoundTrip(t, []byte{1, 2, 3}) }

func TestBytesRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 500)
	enc := byteRoundTrip(t, src)
	if len(enc) > len(src)/10 {
		t.Fatalf("repetitive data should compress 10x+: %d -> %d", len(src), len(enc))
	}
}

func TestBytesOverlappingMatch(t *testing.T) {
	// RLE-style runs exercise overlapping copies (dist < len).
	src := bytes.Repeat([]byte{0xAA}, 1000)
	byteRoundTrip(t, src)
}

func TestBytesRandomIncompressible(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(rng.Uint64())
	}
	enc := byteRoundTrip(t, src)
	// Should not inflate by more than the token framing overhead.
	if len(enc) > len(src)+len(src)/8+16 {
		t.Fatalf("random data inflated too much: %d -> %d", len(src), len(enc))
	}
}

func TestBytesWindowLimit(t *testing.T) {
	// A repeat farther back than Window bytes must not be matched;
	// correctness must still hold.
	pattern := make([]byte, 64)
	for i := range pattern {
		pattern[i] = byte(i * 7)
	}
	rng := tensor.NewRNG(2)
	filler := make([]byte, Window+100)
	for i := range filler {
		filler[i] = byte(rng.Uint64())
	}
	src := append(append(append([]byte{}, pattern...), filler...), pattern...)
	byteRoundTrip(t, src)
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		enc := CompressBytes(src)
		dec, err := DecompressBytes(enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := DecompressBytes([]byte{9}); err == nil {
		t.Fatal("unknown token should error")
	}
	if _, err := DecompressBytes([]byte{1, 10, 5}); err == nil {
		t.Fatal("match before start should error")
	}
	if _, err := DecompressBytes([]byte{0, 200, 1}); err == nil {
		t.Fatal("truncated literal run should error")
	}
}

func TestLZSSCodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	// Batch with repeated rows (compressible) — byte-level LZ should find
	// the aligned whole-row repeats when they are adjacent.
	dim := 16
	row := make([]float32, dim)
	rng.FillNormal(row, 0, 1)
	var src []float32
	for r := 0; r < 128; r++ {
		src = append(src, row...)
	}
	recon, ratio, err := codec.RoundTrip(LZSSCodec{}, src, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if recon[i] != src[i] {
			t.Fatal("lossless codec changed data")
		}
	}
	if ratio < 5 {
		t.Fatalf("identical rows should compress well, got %.2f", ratio)
	}
}

func TestLZSSLowRatioOnRandomFloats(t *testing.T) {
	// The paper's point: raw float mantissas defeat byte-level LZ.
	rng := tensor.NewRNG(4)
	src := make([]float32, 4096)
	rng.FillNormal(src, 0, 1)
	frame, err := (LZSSCodec{}).Compress(src, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r := codec.Ratio(len(src), frame); r > 1.5 {
		t.Fatalf("random floats should barely compress, got %.2f", r)
	}
}

func TestDeflateCodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := make([]float32, 1024)
	rng.FillNormal(src, 0, 1)
	recon, _, err := codec.RoundTrip(DeflateCodec{}, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if recon[i] != src[i] {
			t.Fatal("deflate is lossless; data changed")
		}
	}
}

func TestCodecNames(t *testing.T) {
	if (LZSSCodec{}).Name() != "lz4-like" || (LZSSCodec{}).Lossy() {
		t.Fatal("LZSS metadata wrong")
	}
	if (DeflateCodec{}).Name() != "deflate" || (DeflateCodec{}).Lossy() {
		t.Fatal("Deflate metadata wrong")
	}
}

func BenchmarkCompressBytes64K(b *testing.B) {
	rng := tensor.NewRNG(6)
	src := make([]byte, 1<<16)
	for i := range src {
		src[i] = byte(rng.Intn(16)) // mildly compressible
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressBytes(src)
	}
}
