package lz4like

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

var errCorrupt = errors.New("lz4like: corrupt frame")

// Window is the classic byte-level LZ sliding window (contrast with the
// vector-based encoder's row-granular window).
const Window = 4096

const (
	minMatch   = 4
	hashBits   = 14
	maxChainLn = 16 // hash-chain probes per position
)

// LZSSCodec is the nvCOMP-LZ4-family baseline (lossless).
type LZSSCodec struct{}

// Name implements codec.Codec.
func (LZSSCodec) Name() string { return "lz4-like" }

// Lossy implements codec.Codec.
func (LZSSCodec) Lossy() bool { return false }

func toBytes(src []float32) []byte {
	out := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func fromBytes(raw []byte) ([]float32, error) {
	if len(raw)%4 != 0 {
		return nil, errCorrupt
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}

// CompressBytes runs LZSS over an arbitrary byte slice. The format is a
// token stream: control byte 0 = literal run (uvarint length + bytes),
// 1 = match (uvarint distance, uvarint length).
func CompressBytes(src []byte) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte

	head := make([]int32, 1<<hashBits)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(src))

	emitLiterals := func(lo, hi int) {
		if hi <= lo {
			return
		}
		out = append(out, 0)
		n := binary.PutUvarint(tmp[:], uint64(hi-lo))
		out = append(out, tmp[:n]...)
		out = append(out, src[lo:hi]...)
	}

	litStart := 0
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(src[i:])
		bestLen, bestDist := 0, 0
		cand := head[h]
		for probes := 0; probes < maxChainLn && cand >= 0 && int(cand) >= i-Window; probes++ {
			c := int(cand)
			l := 0
			maxL := len(src) - i
			for l < maxL && src[c+l] == src[i+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestDist = l, i-c
			}
			cand = prev[c]
		}
		if bestLen >= minMatch {
			emitLiterals(litStart, i)
			out = append(out, 1)
			n := binary.PutUvarint(tmp[:], uint64(bestDist))
			out = append(out, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(bestLen))
			out = append(out, tmp[:n]...)
			// Insert hash entries across the match (sparse to stay fast).
			end := i + bestLen
			for ; i < end && i+minMatch <= len(src); i++ {
				hh := hash4(src[i:])
				prev[i] = head[hh]
				head[hh] = int32(i)
			}
			i = end
			litStart = i
			continue
		}
		prev[i] = head[h]
		head[h] = int32(i)
		i++
	}
	emitLiterals(litStart, len(src))
	return out
}

// DecompressBytes inverts CompressBytes.
func DecompressBytes(data []byte) ([]byte, error) {
	var out []byte
	for len(data) > 0 {
		tok := data[0]
		data = data[1:]
		switch tok {
		case 0:
			l, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return nil, errCorrupt
			}
			out = append(out, data[n:n+int(l)]...)
			data = data[n+int(l):]
		case 1:
			dist, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, errCorrupt
			}
			data = data[n:]
			l, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, errCorrupt
			}
			data = data[n:]
			d := int(dist)
			if d <= 0 || d > len(out) {
				return nil, errCorrupt
			}
			// Byte-at-a-time copy supports overlapping matches.
			start := len(out) - d
			for k := 0; k < int(l); k++ {
				out = append(out, out[start+k])
			}
		default:
			return nil, errCorrupt
		}
	}
	return out, nil
}

// Compress implements codec.Codec over the float batch bytes.
func (LZSSCodec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lz4like: bad dim %d", dim)
	}
	payload := CompressBytes(toBytes(src))
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(dim))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(src)))
	return append(out, payload...), nil
}

// Decompress implements codec.Codec.
func (LZSSCodec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 8 {
		return nil, 0, errCorrupt
	}
	dim := int(binary.LittleEndian.Uint32(frame[0:]))
	n := int(binary.LittleEndian.Uint32(frame[4:]))
	raw, err := DecompressBytes(frame[8:])
	if err != nil {
		return nil, 0, err
	}
	vals, err := fromBytes(raw)
	if err != nil {
		return nil, 0, err
	}
	if len(vals) != n || dim <= 0 {
		return nil, 0, errCorrupt
	}
	return vals, dim, nil
}

// DeflateCodec wraps compress/flate as the nvCOMP-Deflate stand-in.
type DeflateCodec struct{}

// Name implements codec.Codec.
func (DeflateCodec) Name() string { return "deflate" }

// Lossy implements codec.Codec.
func (DeflateCodec) Lossy() bool { return false }

// Compress implements codec.Codec.
func (DeflateCodec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lz4like: bad dim %d", dim)
	}
	var buf bytes.Buffer
	head := make([]byte, 8)
	binary.LittleEndian.PutUint32(head[0:], uint32(dim))
	binary.LittleEndian.PutUint32(head[4:], uint32(len(src)))
	buf.Write(head)
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(toBytes(src)); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements codec.Codec.
func (DeflateCodec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 8 {
		return nil, 0, errCorrupt
	}
	dim := int(binary.LittleEndian.Uint32(frame[0:]))
	n := int(binary.LittleEndian.Uint32(frame[4:]))
	r := flate.NewReader(bytes.NewReader(frame[8:]))
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	vals, err := fromBytes(raw)
	if err != nil {
		return nil, 0, err
	}
	if len(vals) != n || dim <= 0 {
		return nil, 0, errCorrupt
	}
	return vals, dim, nil
}
