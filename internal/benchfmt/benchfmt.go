package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Package is the import path of the enclosing "pkg:" header.
	Package string `json:"package,omitempty"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line,
	// including ns/op, B/op, allocs/op, MB/s, and custom b.ReportMetric
	// units (e.g. the compression-ratio and speedup metrics bench_test.go
	// reports).
	Metrics map[string]float64 `json:"metrics"`
}

// Metric returns the value recorded for a unit (e.g. "ns/op", "B/op",
// "allocs/op", or a custom b.ReportMetric unit) and whether it was present.
func (r *Result) Metric(unit string) (float64, bool) {
	v, ok := r.Metrics[unit]
	return v, ok
}

// NsPerOp returns the ns/op column (0, false when absent).
func (r *Result) NsPerOp() (float64, bool) { return r.Metric("ns/op") }

// BytesPerOp returns the -benchmem B/op column (0, false when the run was
// made without -benchmem and the benchmark does not call ReportAllocs).
func (r *Result) BytesPerOp() (float64, bool) { return r.Metric("B/op") }

// AllocsPerOp returns the -benchmem allocs/op column — the regression
// metric the allocation gate tracks across BENCH_*.json snapshots.
func (r *Result) AllocsPerOp() (float64, bool) { return r.Metric("allocs/op") }

// Report is a full parsed run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output. Unrecognised lines (test chatter,
// PASS/ok trailers) are skipped; a benchmark line that fails to parse is an
// error, so silent metric loss cannot masquerade as a clean run.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			res.Package = pkg
			rep.Results = append(rep.Results, *res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	// A benchmark line is name, iterations, then value/unit pairs.
	if len(fields) < 2 {
		return nil, fmt.Errorf("benchfmt: truncated benchmark line %q", line)
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
	}
	if (len(fields)-2)%2 != 0 {
		return nil, fmt.Errorf("benchfmt: odd value/unit tail in %q", line)
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad metric value %q in %q: %w", fields[i], line, err)
		}
		metrics[fields[i+1]] = v
	}
	return &Result{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, nil
}

// WriteJSON renders a report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteSummary renders a compact fixed-width table of the core columns
// (ns/op plus the -benchmem allocation columns when present), for humans
// skimming a CI log; absent metrics print as "-".
func (rep *Report) WriteSummary(w io.Writer) error {
	cell := func(r *Result, unit string) string {
		if v, ok := r.Metric(unit); ok {
			return strconv.FormatFloat(v, 'f', -1, 64)
		}
		return "-"
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		_, err := fmt.Fprintf(w, "%-50s %16s ns/op %14s B/op %10s allocs/op\n",
			r.Name, cell(r, "ns/op"), cell(r, "B/op"), cell(r, "allocs/op"))
		if err != nil {
			return err
		}
	}
	return nil
}
