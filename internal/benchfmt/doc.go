// Package benchfmt parses the text output of `go test -bench` into a
// machine-readable report, so CI can archive every run as a JSON artifact
// (BENCH_ci.json) and the perf trajectory of the reproduction is tracked
// per PR. Only the standard benchmark line grammar is recognised:
//
//	BenchmarkName-8   	  1000	 1234 ns/op	 56 B/op	 2 allocs/op	 3.14 custom-metric
//
// plus the goos/goarch/pkg/cpu header lines the test binary prints.
//
// Layer: tooling sidecar — nothing in the simulation imports it; only
// cmd/benchjson (the CI bench job's converter) does.
//
// Key types: Report (header fields + all parsed lines) and Result (one
// line: name, iterations, ns/op, allocations, and every custom metric the
// harness emitted, e.g. the overlap speedup or ablation ratios).
package benchfmt
