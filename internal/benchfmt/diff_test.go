package benchfmt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func reportFrom(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestDiffFlagsSyntheticRegression is the gate's own gate: a hand-built pair
// of reports with a known time regression, a known allocation regression
// (including zero → nonzero), and an improvement must produce exactly the
// expected verdicts. If this test passes, the CI perf-trend step demonstrably
// fails a regressing PR.
func TestDiffFlagsSyntheticRegression(t *testing.T) {
	old := reportFrom(t, `pkg: dlrmcomp/internal/dist
BenchmarkStep_8RanksHybrid 	 5	 7000000 ns/op	 2000000 B/op	 344 allocs/op
BenchmarkStep_1Rank 	 5	 1000000 ns/op	 100000 B/op	 0 allocs/op
BenchmarkRetired 	 5	 500 ns/op
`)
	cur := reportFrom(t, `pkg: dlrmcomp/internal/dist
BenchmarkStep_8RanksHybrid 	 5	 42000000 ns/op	 2100000 B/op	 400 allocs/op
BenchmarkStep_1Rank 	 5	 900000 ns/op	 100000 B/op	 3 allocs/op
BenchmarkAdded 	 5	 500 ns/op
`)
	deltas := Diff(old, cur, DefaultThresholds)
	// Two matched benchmarks × three metrics, plus one Missing delta for
	// the retired benchmark; the added benchmark must not contribute.
	if len(deltas) != 7 {
		t.Fatalf("got %d deltas, want 7: %+v", len(deltas), deltas)
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Name+"|"+d.Unit] = d
	}
	step := "dlrmcomp/internal/dist.BenchmarkStep_8RanksHybrid"
	if d := byKey[step+"|ns/op"]; !d.Regressed || d.Pct < 499 || d.Pct > 501 {
		t.Fatalf("6x time regression not flagged: %+v", d)
	}
	if d := byKey[step+"|allocs/op"]; !d.Regressed {
		t.Fatalf("344 -> 400 allocs must regress the 0%% tolerance: %+v", d)
	}
	if d := byKey[step+"|B/op"]; d.Regressed {
		t.Fatalf("+5%% B/op is inside the 50%% tolerance: %+v", d)
	}
	oneRank := "dlrmcomp/internal/dist.BenchmarkStep_1Rank"
	if d := byKey[oneRank+"|ns/op"]; d.Regressed || d.Pct >= 0 {
		t.Fatalf("improvement flagged as regression: %+v", d)
	}
	if d := byKey[oneRank+"|allocs/op"]; !d.Regressed || !math.IsInf(d.Pct, 1) {
		t.Fatalf("zero -> nonzero allocs must be an infinite-percent regression: %+v", d)
	}
	retired := byKey["dlrmcomp/internal/dist.BenchmarkRetired|"]
	if !retired.Missing || retired.Regressed || retired.Old != 500 {
		t.Fatalf("retired benchmark must surface as a non-regressing Missing delta: %+v", retired)
	}
	regs := Regressions(deltas)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3 (Missing is not a regression): %+v", len(regs), regs)
	}
	missing := MissingDeltas(deltas)
	if len(missing) != 1 || missing[0].Name != "dlrmcomp/internal/dist.BenchmarkRetired" {
		t.Fatalf("got missing %+v, want exactly the retired benchmark", missing)
	}
}

// TestDiffReportsMissingBenchmarks pins the failure mode that motivated
// Missing deltas: a baseline entry absent from the new run used to vanish
// from the diff entirely, so a benchmark falling out of the CI run pattern
// passed the gate by omission. Now it must appear in the table (flagged
// MISSING), stay non-fatal by default, and be countable by callers that
// want to enforce full coverage.
func TestDiffReportsMissingBenchmarks(t *testing.T) {
	old := reportFrom(t, "BenchmarkKept 1 100 ns/op\nBenchmarkDropped 1 250 ns/op\n")
	cur := reportFrom(t, "BenchmarkKept 1 100 ns/op\n")
	deltas := Diff(old, cur, DefaultThresholds)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 1 matched ns/op + 1 missing: %+v", len(deltas), deltas)
	}
	if len(Regressions(deltas)) != 0 {
		t.Fatalf("a missing benchmark must not regress the default gate: %+v", deltas)
	}
	missing := MissingDeltas(deltas)
	if len(missing) != 1 || missing[0].Name != "BenchmarkDropped" || missing[0].Old != 250 {
		t.Fatalf("missing delta wrong: %+v", missing)
	}
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MISSING") || !strings.Contains(out, "BenchmarkDropped") {
		t.Fatalf("missing benchmark not flagged in the table:\n%s", out)
	}
	// Identical reports: nothing missing.
	if m := MissingDeltas(Diff(old, old, DefaultThresholds)); len(m) != 0 {
		t.Fatalf("self-diff reported missing benchmarks: %+v", m)
	}
}

func TestDiffThresholdSemantics(t *testing.T) {
	old := reportFrom(t, "BenchmarkX 1 100 ns/op 10 allocs/op\n")
	cur := reportFrom(t, "BenchmarkX 1 200 ns/op 10 allocs/op\n")

	// Negative tolerance disables the metric entirely.
	deltas := Diff(old, cur, Thresholds{NsPct: -1, AllocsPct: 0, BytesPct: -1})
	if len(deltas) != 1 || deltas[0].Unit != "allocs/op" {
		t.Fatalf("disabled metrics leaked into the diff: %+v", deltas)
	}

	// Growth exactly at the tolerance passes; above it fails.
	at := Diff(old, cur, Thresholds{NsPct: 100, AllocsPct: -1, BytesPct: -1})
	if len(at) != 1 || at[0].Regressed {
		t.Fatalf("growth equal to the tolerance must pass: %+v", at)
	}
	over := Diff(old, cur, Thresholds{NsPct: 99.9, AllocsPct: -1, BytesPct: -1})
	if len(over) != 1 || !over[0].Regressed {
		t.Fatalf("growth above the tolerance must fail: %+v", over)
	}

	// Unchanged allocations pass a 0% tolerance.
	same := Diff(old, cur, Thresholds{NsPct: -1, AllocsPct: 0, BytesPct: -1})
	if len(same) != 1 || same[0].Regressed {
		t.Fatalf("equal allocs must pass a zero tolerance: %+v", same)
	}
}

func TestReadJSONRoundTripsWriteJSON(t *testing.T) {
	rep := reportFrom(t, sample)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) ||
		back.Results[1].Metrics["allocs/op"] != 12 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestWriteDeltasMarksRegressions(t *testing.T) {
	old := reportFrom(t, "BenchmarkX 1 100 ns/op\nBenchmarkY 1 100 ns/op\n")
	cur := reportFrom(t, "BenchmarkX 1 5000 ns/op\nBenchmarkY 1 100 ns/op\n")
	var buf bytes.Buffer
	if err := WriteDeltas(&buf, Diff(old, cur, DefaultThresholds)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got:\n%s", buf.String())
	}
	if !strings.Contains(lines[0], "REGRESSED") || strings.Contains(lines[1], "REGRESSED") {
		t.Fatalf("regression flag misplaced:\n%s", buf.String())
	}
}
