package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dlrmcomp
cpu: AMD EPYC 7B13
BenchmarkFig01_Breakdown-8   	       1	 52341876 ns/op
BenchmarkCodec_HybridCompress-8  	     100	  10500123 ns/op	 498.91 MB/s	     2048 B/op	      12 allocs/op
BenchmarkAblation_VectorVsByteLZ-8 	       1	   1000000 ns/op	         2.650 advantage	        12.40 byteLZ-CR	        32.90 vectorLZ-CR
PASS
ok  	dlrmcomp	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkFig01_Breakdown" || r.Procs != 8 || r.Package != "dlrmcomp" {
		t.Fatalf("result 0: %+v", r)
	}
	if r.Iterations != 1 || r.Metrics["ns/op"] != 52341876 {
		t.Fatalf("result 0 metrics: %+v", r)
	}
	c := rep.Results[1]
	if c.Metrics["MB/s"] != 498.91 || c.Metrics["B/op"] != 2048 || c.Metrics["allocs/op"] != 12 {
		t.Fatalf("result 1 metrics: %+v", c.Metrics)
	}
	a := rep.Results[2]
	if a.Metrics["advantage"] != 2.65 || a.Metrics["vectorLZ-CR"] != 32.9 {
		t.Fatalf("custom metrics lost: %+v", a.Metrics)
	}
}

func TestParseRejectsMalformedBenchLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 notanumber 5 ns/op\n")); err == nil {
		t.Fatal("bad iteration count must error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 10 5 ns/op trailing\n")); err == nil {
		t.Fatal("odd value/unit tail must error")
	}
}

func TestParseSkipsChatter(t *testing.T) {
	rep, err := Parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nok \tpkg\t1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("chatter produced results: %+v", rep.Results)
	}
}

func TestNameWithoutProcsSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBare 5 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Name != "BenchmarkBare" || rep.Results[0].Procs != 0 {
		t.Fatalf("bare name mishandled: %+v", rep.Results[0])
	}
}

// TestAllocationAccessors pins the typed access to the -benchmem columns
// that the CI allocation trajectory (BENCH_ci.json) relies on.
func TestAllocationAccessors(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	withMem, withoutMem := &rep.Results[1], &rep.Results[0]
	if v, ok := withMem.AllocsPerOp(); !ok || v != 12 {
		t.Fatalf("AllocsPerOp = (%v, %v), want (12, true)", v, ok)
	}
	if v, ok := withMem.BytesPerOp(); !ok || v != 2048 {
		t.Fatalf("BytesPerOp = (%v, %v), want (2048, true)", v, ok)
	}
	if v, ok := withMem.NsPerOp(); !ok || v != 10500123 {
		t.Fatalf("NsPerOp = (%v, %v), want (10500123, true)", v, ok)
	}
	if _, ok := withoutMem.AllocsPerOp(); ok {
		t.Fatal("AllocsPerOp must report absence when the run lacked -benchmem")
	}
}

func TestWriteSummary(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkCodec_HybridCompress") ||
		!strings.Contains(out, "12 allocs/op") {
		t.Fatalf("summary missing allocation column:\n%s", out)
	}
	// The first benchmark ran without -benchmem: its columns print as "-".
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(first, "- B/op") || !strings.Contains(first, "- allocs/op") {
		t.Fatalf("absent metrics must print as '-':\n%s", first)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON emitted: %v", err)
	}
	if len(back.Results) != len(rep.Results) || back.Results[1].Metrics["MB/s"] != 498.91 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
