package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// This file implements the perf-trend gate: two archived BENCH_*.json
// reports are joined by benchmark identity and every tracked metric is
// checked against a per-metric tolerance. CI runs it as
//
//	benchjson -diff BENCH_baseline.json BENCH_ci.json \
//	    -threshold-ns 400 -threshold-allocs 0
//
// so a PR that regresses the step hot path beyond tolerance fails before it
// merges. Time tolerances are generous (CI runners are noisy and differ
// from the machine that wrote the baseline); allocation tolerances are
// strict, because allocs/op of the workers-pinned benchmarks is
// machine-independent.

// ReadJSON parses a report previously rendered by WriteJSON (the BENCH_*.json
// artifact format).
func ReadJSON(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchfmt: bad JSON report: %w", err)
	}
	return &rep, nil
}

// Thresholds holds the per-metric regression tolerances, each in percent
// growth over the old value (10 means "new may be up to 10% larger"). A
// negative tolerance disables that metric's check entirely; zero means any
// growth at all is a regression (the right setting for allocs/op, which is
// deterministic for the workers-pinned benchmarks).
type Thresholds struct {
	NsPct     float64 // ns/op tolerance
	AllocsPct float64 // allocs/op tolerance
	BytesPct  float64 // B/op tolerance
}

// DefaultThresholds is the CI perf-trend gate configuration: wall-clock may
// wander a lot across runner generations, allocation counts may not move at
// all, and B/op gets headroom for pool-growth jitter.
var DefaultThresholds = Thresholds{NsPct: 400, AllocsPct: 0, BytesPct: 50}

// Delta is one (benchmark, metric) comparison between two reports.
type Delta struct {
	// Name identifies the benchmark (Package + Name of the matched results).
	Name string
	// Unit is the compared metric ("ns/op", "allocs/op", or "B/op").
	Unit string
	// Old and New are the metric values in the two reports.
	Old, New float64
	// Pct is the growth in percent: 100*(New-Old)/Old. When Old is zero and
	// New is positive — e.g. a zero-alloc path that started allocating —
	// Pct is +Inf, which regresses any finite threshold.
	Pct float64
	// Regressed reports whether Pct exceeds the metric's tolerance.
	Regressed bool
	// Missing reports a benchmark the baseline has but the new report does
	// not: the gate's run pattern drifted, a benchmark was renamed without
	// refreshing the baseline, or a package was dropped from the CI bench
	// invocation. A missing benchmark produces one Delta with Missing set
	// (Unit empty, Old carrying the baseline ns/op when recorded); it does
	// not regress the diff by default, but callers that want a sealed gate
	// can fail on it (benchjson -require-all).
	Missing bool
}

// diffKey joins results across reports. Procs is deliberately excluded: the
// baseline is refreshed on whatever machine the maintainer has, and a
// GOMAXPROCS mismatch would otherwise silently empty the comparison.
type diffKey struct {
	pkg, name string
}

// Diff compares every benchmark present in both reports over the three
// tracked metrics, returning one Delta per (benchmark, metric) pair where
// both sides recorded the metric, sorted by benchmark then unit. Benchmarks
// only in the new report are skipped — adding a benchmark must not fail the
// gate — as is any metric absent on either side. Benchmarks only in the
// baseline are NOT silently dropped: each produces a Missing delta, so a
// benchmark that quietly fell out of the CI run pattern shows up in the
// table instead of passing the gate by absence.
func Diff(old, new *Report, th Thresholds) []Delta {
	units := []struct {
		unit string
		tol  float64
	}{
		{"ns/op", th.NsPct},
		{"allocs/op", th.AllocsPct},
		{"B/op", th.BytesPct},
	}
	baseline := make(map[diffKey]*Result, len(old.Results))
	for i := range old.Results {
		r := &old.Results[i]
		baseline[diffKey{r.Package, r.Name}] = r
	}
	var deltas []Delta
	seen := make(map[diffKey]bool, len(new.Results))
	for i := range new.Results {
		nr := &new.Results[i]
		seen[diffKey{nr.Package, nr.Name}] = true
		or, ok := baseline[diffKey{nr.Package, nr.Name}]
		if !ok {
			continue
		}
		label := nr.Name
		if nr.Package != "" {
			label = nr.Package + "." + nr.Name
		}
		for _, u := range units {
			if u.tol < 0 {
				continue
			}
			ov, okOld := or.Metric(u.unit)
			nv, okNew := nr.Metric(u.unit)
			if !okOld || !okNew {
				continue
			}
			d := Delta{Name: label, Unit: u.unit, Old: ov, New: nv}
			switch {
			case ov == 0 && nv > 0:
				d.Pct = math.Inf(1)
			case ov == 0:
				d.Pct = 0
			default:
				d.Pct = 100 * (nv - ov) / ov
			}
			d.Regressed = d.Pct > u.tol
			deltas = append(deltas, d)
		}
	}
	for i := range old.Results {
		or := &old.Results[i]
		if seen[diffKey{or.Package, or.Name}] {
			continue
		}
		label := or.Name
		if or.Package != "" {
			label = or.Package + "." + or.Name
		}
		d := Delta{Name: label, Missing: true}
		d.Old, _ = or.Metric("ns/op")
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Name != deltas[j].Name {
			return deltas[i].Name < deltas[j].Name
		}
		return deltas[i].Unit < deltas[j].Unit
	})
	return deltas
}

// MissingDeltas filters a Diff result down to the baseline benchmarks the
// new report never ran.
func MissingDeltas(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Missing {
			out = append(out, d)
		}
	}
	return out
}

// Regressions filters a Diff result down to the failing deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteDeltas renders a comparison table for the CI log; regressed rows are
// flagged with "REGRESSED" and baseline benchmarks the new run never
// produced with "MISSING", so both stand out in a scrollback search.
func WriteDeltas(w io.Writer, deltas []Delta) error {
	for _, d := range deltas {
		if d.Missing {
			if _, err := fmt.Fprintf(w, "%-70s %-10s absent from the new report  MISSING\n", d.Name, "-"); err != nil {
				return err
			}
			continue
		}
		flag := ""
		if d.Regressed {
			flag = "  REGRESSED"
		}
		_, err := fmt.Fprintf(w, "%-70s %-10s %14.6g -> %-14.6g %+8.1f%%%s\n",
			d.Name, d.Unit, d.Old, d.New, d.Pct, flag)
		if err != nil {
			return err
		}
	}
	return nil
}
