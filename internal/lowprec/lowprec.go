package lowprec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

var errCorrupt = errors.New("lowprec: corrupt frame")

// --- FP16 (IEEE binary16) -------------------------------------------------

// F32ToF16 converts a float32 to its nearest binary16 representation
// (round-to-nearest-even), with overflow mapping to ±Inf.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16((b >> 16) & 0x8000)
	exp := int32((b>>23)&0xFF) - 127 + 15
	mant := b & 0x7FFFFF

	switch {
	case (b>>23)&0xFF == 0xFF: // Inf/NaN
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp >= 0x1F: // overflow -> Inf
		return sign | 0x7C00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign // underflow to zero
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		v := uint16((mant + half) >> shift)
		return sign | v
	default:
		// Round-to-nearest-even on the 13 dropped bits.
		round := uint32(0xFFF)
		if (mant>>13)&1 == 1 {
			round = 0x1000
		}
		mant += round
		if mant&0x800000 != 0 { // mantissa overflow bumps exponent
			mant = 0
			exp++
			if exp >= 0x1F {
				return sign | 0x7C00
			}
		}
		return sign | uint16(exp<<10) | uint16(mant>>13)
	}
}

// F16ToF32 converts a binary16 value back to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// --- FP8 ---------------------------------------------------------------

// FP8Format selects one of the two FP8 encodings.
type FP8Format int

const (
	// E4M3: 4 exponent bits (bias 7), 3 mantissa bits; max finite 448.
	E4M3 FP8Format = iota
	// E5M2: 5 exponent bits (bias 15), 2 mantissa bits; max finite 57344.
	E5M2
)

func (f FP8Format) String() string {
	if f == E4M3 {
		return "e4m3"
	}
	return "e5m2"
}

// F32ToF8 converts f to the chosen FP8 format with round-to-nearest and
// saturation at the maximum finite value.
func F32ToF8(f float32, format FP8Format) uint8 {
	var expBits, manBits uint
	if format == E4M3 {
		expBits, manBits = 4, 3
	} else {
		expBits, manBits = 5, 2
	}
	bias := (1 << (expBits - 1)) - 1
	maxExpField := (1 << expBits) - 1

	b := math.Float32bits(f)
	sign := uint8(b >> 31 << 7)
	if f != f { // NaN
		return sign | uint8(maxExpField)<<manBits | 1
	}
	af := math.Abs(float64(f))
	if af == 0 {
		return sign
	}
	// Max finite: E4M3 uses exp field 15 with mantissa up to 6 (448);
	// E5M2 reserves exp 31 for Inf/NaN, max finite 57344.
	var maxFinite float64
	if format == E4M3 {
		maxFinite = 448
	} else {
		maxFinite = 57344
	}
	if af > maxFinite {
		af = maxFinite // saturate
	}
	exp := int(math.Floor(math.Log2(af)))
	minExp := 1 - bias
	if exp < minExp {
		// Subnormal: value = m · 2^(minExp − manBits).
		m := int(math.Round(af / math.Ldexp(1, minExp-int(manBits))))
		if m >= 1<<manBits { // rounds up into the smallest normal
			return sign | uint8(1)<<manBits
		}
		return sign | uint8(m)
	}
	mant := af/math.Ldexp(1, exp) - 1 // in [0,1)
	m := int(math.Round(mant * float64(int(1)<<manBits)))
	if m == 1<<manBits {
		m = 0
		exp++
	}
	expField := exp + bias
	if format == E4M3 {
		// E4M3 has no Inf; exp field 15 + mantissa 7 is NaN, so max is
		// field 15 mantissa 6.
		if expField > maxExpField || (expField == maxExpField && m > 6) {
			expField, m = maxExpField, 6
		}
	} else {
		if expField >= maxExpField { // saturate below Inf
			expField, m = maxExpField-1, (1<<manBits)-1
		}
	}
	return sign | uint8(expField)<<manBits | uint8(m)
}

// F8ToF32 decodes an FP8 value.
func F8ToF32(v uint8, format FP8Format) float32 {
	var expBits, manBits uint
	if format == E4M3 {
		expBits, manBits = 4, 3
	} else {
		expBits, manBits = 5, 2
	}
	bias := (1 << (expBits - 1)) - 1
	sign := float64(1)
	if v&0x80 != 0 {
		sign = -1
	}
	expField := int(v>>manBits) & ((1 << expBits) - 1)
	m := int(v) & ((1 << manBits) - 1)
	if format == E5M2 && expField == (1<<expBits)-1 {
		if m == 0 {
			return float32(sign * math.Inf(1))
		}
		return float32(math.NaN())
	}
	if format == E4M3 && expField == (1<<expBits)-1 && m == 7 {
		return float32(math.NaN())
	}
	if expField == 0 {
		return float32(sign * float64(m) * math.Ldexp(1, 1-bias-int(manBits)))
	}
	return float32(sign * (1 + float64(m)/float64(int(1)<<manBits)) * math.Ldexp(1, expField-bias))
}

// --- Codec wrappers -------------------------------------------------------

// FP16Codec is the FP16 communication baseline.
type FP16Codec struct{}

// Name implements codec.Codec.
func (FP16Codec) Name() string { return "fp16" }

// Lossy implements codec.Codec.
func (FP16Codec) Lossy() bool { return true }

// Compress casts every value to binary16.
func (FP16Codec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%max(dim, 1) != 0 {
		return nil, fmt.Errorf("lowprec: bad shape len=%d dim=%d", len(src), dim)
	}
	out := make([]byte, 8+len(src)*2)
	binary.LittleEndian.PutUint32(out[0:], uint32(dim))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(src)))
	for i, v := range src {
		binary.LittleEndian.PutUint16(out[8+2*i:], F32ToF16(v))
	}
	return out, nil
}

// Decompress casts back to float32.
func (FP16Codec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 8 {
		return nil, 0, errCorrupt
	}
	dim := int(binary.LittleEndian.Uint32(frame[0:]))
	n := int(binary.LittleEndian.Uint32(frame[4:]))
	if len(frame) != 8+2*n || dim <= 0 {
		return nil, 0, errCorrupt
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = F16ToF32(binary.LittleEndian.Uint16(frame[8+2*i:]))
	}
	return out, dim, nil
}

// FP8Codec is the FP8 communication baseline (paper's SOTA low-precision
// comparator).
type FP8Codec struct{ Format FP8Format }

// Name implements codec.Codec.
func (c FP8Codec) Name() string { return "fp8-" + c.Format.String() }

// Lossy implements codec.Codec.
func (FP8Codec) Lossy() bool { return true }

// Compress casts every value to FP8.
func (c FP8Codec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%max(dim, 1) != 0 {
		return nil, fmt.Errorf("lowprec: bad shape len=%d dim=%d", len(src), dim)
	}
	out := make([]byte, 9+len(src))
	binary.LittleEndian.PutUint32(out[0:], uint32(dim))
	binary.LittleEndian.PutUint32(out[4:], uint32(len(src)))
	out[8] = byte(c.Format)
	for i, v := range src {
		out[9+i] = F32ToF8(v, c.Format)
	}
	return out, nil
}

// Decompress casts back to float32.
func (FP8Codec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 9 {
		return nil, 0, errCorrupt
	}
	dim := int(binary.LittleEndian.Uint32(frame[0:]))
	n := int(binary.LittleEndian.Uint32(frame[4:]))
	format := FP8Format(frame[8])
	if len(frame) != 9+n || dim <= 0 {
		return nil, 0, errCorrupt
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = F8ToF32(frame[9+i], format)
	}
	return out, dim, nil
}
