// Package lowprec implements the low-precision communication baselines the
// paper compares against (§IV-A baseline ❷): casting embedding lookups to
// IEEE-754 binary16 (FP16) or to the FP8 formats of Micikevicius et al.
// (E4M3 and E5M2) before the all-to-all, then casting back. Both give a
// fixed 2× / 4× reduction with relative (not error-bounded) precision loss.
//
// Layer: baseline codecs implementing internal/codec.Codec; priced by
// netmodel.PaperCodecRates under "fp16", "fp8-e4m3", "fp8-e5m2" (cast
// kernels, so the rates are the highest in the table while the ratios are
// the lowest — the fixed-ratio corner of Fig. 11's trade-off space).
//
// Key types: FP16Codec, FP8Codec (with Format E4M3 or E5M2), and the
// conversion helpers (round-to-nearest-even casts with saturation
// semantics matching the published formats).
package lowprec
