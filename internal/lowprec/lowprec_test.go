package lowprec

import (
	"math"
	"testing"
	"testing/quick"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/tensor"
)

func TestF16KnownValues(t *testing.T) {
	cases := map[float32]uint16{
		0:      0x0000,
		1:      0x3C00,
		-1:     0xBC00,
		2:      0x4000,
		0.5:    0x3800,
		65504:  0x7BFF, // max finite half
		1e9:    0x7C00, // overflow -> +Inf
		0.0001: 0x068E, // subnormal-range value, within rounding
	}
	for f, want := range cases {
		got := F32ToF16(f)
		if f == 0.0001 {
			// Round-trip accuracy matters more than exact bits here.
			back := F16ToF32(got)
			if math.Abs(float64(back-f))/float64(f) > 0.01 {
				t.Fatalf("F16 round trip of %v = %v", f, back)
			}
			continue
		}
		if got != want {
			t.Fatalf("F32ToF16(%v) = %#x, want %#x", f, got, want)
		}
	}
}

func TestF16RoundTripPrecision(t *testing.T) {
	rng := tensor.NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := float32(rng.NormFloat64())
		back := F16ToF32(F32ToF16(f))
		// binary16 has 11 significand bits -> rel err <= 2^-11.
		if f != 0 && math.Abs(float64(back-f))/math.Abs(float64(f)) > 1.0/2048+1e-7 {
			t.Fatalf("rel err too big: %v -> %v", f, back)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	if !math.IsInf(float64(F16ToF32(0x7C00)), 1) {
		t.Fatal("0x7C00 should decode to +Inf")
	}
	if !math.IsInf(float64(F16ToF32(0xFC00)), -1) {
		t.Fatal("0xFC00 should decode to -Inf")
	}
	if v := F16ToF32(F32ToF16(float32(math.NaN()))); v == v {
		t.Fatal("NaN should round-trip to NaN")
	}
	if F16ToF32(0x8000) != 0 || math.Signbit(float64(F16ToF32(0x8000))) != true {
		t.Fatal("negative zero should survive")
	}
}

func TestF8E4M3KnownValues(t *testing.T) {
	// 1.0 = sign 0, exp field 7 (bias 7), mant 0 -> 0x38
	if got := F32ToF8(1, E4M3); got != 0x38 {
		t.Fatalf("F32ToF8(1) = %#x, want 0x38", got)
	}
	if got := F8ToF32(0x38, E4M3); got != 1 {
		t.Fatalf("F8ToF32(0x38) = %v", got)
	}
	// Max finite E4M3 = 448.
	if got := F8ToF32(F32ToF8(10000, E4M3), E4M3); got != 448 {
		t.Fatalf("E4M3 saturation = %v, want 448", got)
	}
	if got := F8ToF32(F32ToF8(-10000, E4M3), E4M3); got != -448 {
		t.Fatalf("E4M3 negative saturation = %v", got)
	}
}

func TestF8E5M2Saturation(t *testing.T) {
	if got := F8ToF32(F32ToF8(1e9, E5M2), E5M2); got != 57344 {
		t.Fatalf("E5M2 saturation = %v, want 57344", got)
	}
}

func TestF8RoundTripRelError(t *testing.T) {
	rng := tensor.NewRNG(2)
	for _, format := range []FP8Format{E4M3, E5M2} {
		maxRel := 1.0 / 16 // e4m3: 3 mantissa bits -> 2^-4 = 1/16 half-ulp bound
		if format == E5M2 {
			maxRel = 1.0 / 8
		}
		// E4M3 normals start at 2^-6, E5M2 normals at 2^-14; below that the
		// format is subnormal with absolute (not relative) precision.
		minNormal := math.Ldexp(1, -6)
		if format == E5M2 {
			minNormal = math.Ldexp(1, -14)
		}
		for i := 0; i < 5000; i++ {
			f := float32(rng.NormFloat64() * 0.5)
			if math.Abs(float64(f)) < minNormal {
				continue
			}
			back := F8ToF32(F32ToF8(f, format), format)
			rel := math.Abs(float64(back-f)) / math.Abs(float64(f))
			if rel > maxRel+1e-6 {
				t.Fatalf("%v: rel err %v for %v -> %v", format, rel, f, back)
			}
		}
	}
}

func TestF8ZeroAndSign(t *testing.T) {
	for _, format := range []FP8Format{E4M3, E5M2} {
		if F8ToF32(F32ToF8(0, format), format) != 0 {
			t.Fatal("zero must round trip")
		}
		if F8ToF32(F32ToF8(-2, format), format) != -2 {
			t.Fatalf("%v: -2 must round trip exactly", format)
		}
	}
}

func TestF16MonotoneProperty(t *testing.T) {
	f := func(a, b float32) bool {
		if a != a || b != b || math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		fa, fb := F16ToF32(F32ToF16(a)), F16ToF32(F32ToF16(b))
		return fa <= fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFP16CodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	src := make([]float32, 256)
	rng.FillNormal(src, 0, 0.1)
	c := FP16Codec{}
	recon, ratio, err := codec.RoundTrip(c, src, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.9 || ratio > 2.0 {
		t.Fatalf("FP16 ratio = %v, want ~2", ratio)
	}
	for i := range src {
		if math.Abs(float64(recon[i]-src[i])) > 0.001 {
			t.Fatalf("recon[%d] too far: %v vs %v", i, recon[i], src[i])
		}
	}
}

func TestFP8CodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(4)
	src := make([]float32, 512)
	rng.FillNormal(src, 0, 0.1)
	c := FP8Codec{Format: E4M3}
	if c.Name() != "fp8-e4m3" {
		t.Fatalf("name %q", c.Name())
	}
	recon, ratio, err := codec.RoundTrip(c, src, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3.8 || ratio > 4.0 {
		t.Fatalf("FP8 ratio = %v, want ~4", ratio)
	}
	for i := range src {
		if src[i] != 0 && math.Abs(float64(recon[i]-src[i]))/math.Abs(float64(src[i])) > 0.15 {
			if math.Abs(float64(src[i])) > 1e-2 {
				t.Fatalf("recon[%d] rel err too big: %v vs %v", i, recon[i], src[i])
			}
		}
	}
}

func TestCodecCorruptFrames(t *testing.T) {
	if _, _, err := (FP16Codec{}).Decompress([]byte{1, 2}); err == nil {
		t.Fatal("short fp16 frame should error")
	}
	if _, _, err := (FP8Codec{}).Decompress([]byte{1}); err == nil {
		t.Fatal("short fp8 frame should error")
	}
	if _, err := (FP16Codec{}).Compress([]float32{1, 2, 3}, 2); err == nil {
		t.Fatal("bad shape should error")
	}
}
