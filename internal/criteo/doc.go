// Package criteo generates synthetic click-log workloads that stand in for
// the Criteo Ad Kaggle and Criteo Terabyte datasets used by the paper
// (neither is redistributable or downloadable offline).
//
// The generator reproduces the properties the paper's compression results
// depend on:
//
//   - 13 continuous features and 26 categorical features per sample;
//   - the published per-table cardinalities of both datasets (spanning
//     single digits to tens of millions, Fig. 6);
//   - heavily unbalanced query frequencies via Zipf-distributed categorical
//     sampling (the "unbalanced queries" phenomenon of §III-D that makes
//     vector-based LZ effective);
//   - CTR labels planted by a ground-truth logistic model so that training
//     has signal and accuracy curves are meaningful.
//
// Layer: workload source for everything above the model — the trainers,
// the experiment drivers, and the CLI all draw deterministic batches here.
// The lookup traffic it induces is what the "lookup" and all-to-all
// sim-time buckets ultimately price.
//
// Key types: Spec (dataset shape; KaggleSpec/TerabyteSpec are the
// published calibrations, ScaledSpec shrinks cardinalities for fast runs),
// Generator (seeded deterministic batch stream), Batch (dense features,
// per-table indices, labels).
package criteo
