package criteo

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

func TestZipfRangeAndSkew(t *testing.T) {
	rng := tensor.NewRNG(1)
	z := NewZipf(rng, 1.2, 1000)
	counts := make(map[uint64]int)
	n := 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Zipf: key 0 must be by far the hottest.
	if counts[0] < counts[1] {
		t.Fatalf("key 0 (%d) should outnumber key 1 (%d)", counts[0], counts[1])
	}
	if float64(counts[0])/float64(n) < 0.05 {
		t.Fatalf("head key too cold for skew 1.2: %d/%d", counts[0], n)
	}
	// The tail must still be exercised.
	if len(counts) < 50 {
		t.Fatalf("only %d distinct keys sampled", len(counts))
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Larger s concentrates more mass on key 0.
	headShare := func(s float64) float64 {
		rng := tensor.NewRNG(7)
		z := NewZipf(rng, s, 10000)
		hits := 0
		n := 20000
		for i := 0; i < n; i++ {
			if z.Next() == 0 {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	if headShare(2.0) <= headShare(1.1) {
		t.Fatal("higher skew should concentrate on the head key")
	}
}

func TestZipfSingletonTable(t *testing.T) {
	rng := tensor.NewRNG(2)
	z := NewZipf(rng, 1.5, 1)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("cardinality-1 table must always return 0")
		}
	}
}

func TestZipfMatchesPowerLaw(t *testing.T) {
	// Empirical frequency ratio f(0)/f(4) should be near (5/1)^s for
	// an effectively unbounded table.
	rng := tensor.NewRNG(3)
	s := 1.5
	z := NewZipf(rng, s, 1<<30)
	counts := make([]int, 8)
	n := 400000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 8 {
			counts[v]++
		}
	}
	got := float64(counts[0]) / float64(counts[4])
	want := math.Pow(5.0/1.0, s)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("f(0)/f(4) = %.2f, want ≈ %.2f", got, want)
	}
}

func TestGeneratorShapes(t *testing.T) {
	g := NewGenerator(ScaledSpec(KaggleSpec(), 1000))
	b := g.NextBatch(64)
	if b.N() != 64 {
		t.Fatalf("N = %d", b.N())
	}
	if b.Dense.Rows != 64 || b.Dense.Cols != 13 {
		t.Fatalf("dense shape %dx%d", b.Dense.Rows, b.Dense.Cols)
	}
	if len(b.Indices) != 26 {
		t.Fatalf("tables %d", len(b.Indices))
	}
	for ti, idx := range b.Indices {
		if len(idx) != 64 {
			t.Fatalf("table %d has %d indices", ti, len(idx))
		}
		card := int32(g.Spec.Cardinalities[ti])
		for _, v := range idx {
			if v < 0 || v >= card {
				t.Fatalf("table %d index %d out of range %d", ti, v, card)
			}
		}
	}
	if len(b.Labels) != 64 {
		t.Fatalf("labels %d", len(b.Labels))
	}
	for _, y := range b.Labels {
		if y != 0 && y != 1 {
			t.Fatalf("non-binary label %v", y)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec := ScaledSpec(KaggleSpec(), 1000)
	g1 := NewGenerator(spec)
	g2 := NewGenerator(spec)
	b1 := g1.NextBatch(32)
	b2 := g2.NextBatch(32)
	for i := range b1.Dense.Data {
		if b1.Dense.Data[i] != b2.Dense.Data[i] {
			t.Fatal("dense features differ across identical generators")
		}
	}
	for ti := range b1.Indices {
		for i := range b1.Indices[ti] {
			if b1.Indices[ti][i] != b2.Indices[ti][i] {
				t.Fatal("indices differ across identical generators")
			}
		}
	}
}

func TestGeneratorCTRReasonable(t *testing.T) {
	g := NewGenerator(ScaledSpec(TerabyteSpec(), 10000))
	ctr := g.BaseCTR(5000)
	if ctr < 0.1 || ctr > 0.6 {
		t.Fatalf("base CTR %v outside plausible click-log range", ctr)
	}
}

func TestGeneratorLabelsHaveSignal(t *testing.T) {
	// Labels must correlate with the planted dense weights: the
	// dot-product of dense features with denseW should be larger on
	// positive samples on average.
	g := NewGenerator(ScaledSpec(KaggleSpec(), 1000))
	b := g.NextBatch(4000)
	var posSum, negSum float64
	var pos, neg int
	for i := 0; i < b.N(); i++ {
		score := float64(tensor.Dot(g.denseW, b.Dense.Row(i)))
		if b.Labels[i] == 1 {
			posSum += score
			pos++
		} else {
			negSum += score
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("degenerate label distribution")
	}
	if posSum/float64(pos) <= negSum/float64(neg) {
		t.Fatal("labels carry no signal from dense features")
	}
}

func TestScaledSpec(t *testing.T) {
	s := ScaledSpec(KaggleSpec(), 1000)
	if s.Cardinalities[2] != KaggleCardinalities[2]/1000 {
		t.Fatal("scaling broken")
	}
	for _, c := range s.Cardinalities {
		if c < 1 {
			t.Fatal("scaled cardinality below 1")
		}
	}
	if ScaledSpec(KaggleSpec(), 1).Cardinalities[0] != KaggleCardinalities[0] {
		t.Fatal("factor 1 must be identity")
	}
}

func TestSpecsMatchPaper(t *testing.T) {
	k, tb := KaggleSpec(), TerabyteSpec()
	if len(k.Cardinalities) != 26 || len(tb.Cardinalities) != 26 {
		t.Fatal("both datasets have 26 categorical features")
	}
	if k.DenseFeatures != 13 || tb.DenseFeatures != 13 {
		t.Fatal("both datasets have 13 dense features")
	}
	if k.DefaultBatch != 128 || tb.DefaultBatch != 2048 {
		t.Fatal("paper batch sizes: kaggle 128, terabyte 2048")
	}
}

func TestUnbalancedQueries(t *testing.T) {
	// Verify the "unbalanced queries" phenomenon: within a batch, far
	// fewer unique keys than samples for high-cardinality tables.
	g := NewGenerator(KaggleSpec())
	b := g.NextBatch(2048)
	uniq := make(map[int32]bool)
	for _, v := range b.Indices[2] { // cardinality 10M table
		uniq[v] = true
	}
	if len(uniq) >= 2048 {
		t.Fatal("expected repeated keys under Zipf skew")
	}
}
