package criteo

import (
	"bytes"
	"testing"
)

func TestBatchSerializationRoundTrip(t *testing.T) {
	g := NewGenerator(ScaledSpec(KaggleSpec(), 10000))
	b := g.NextBatch(64)
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != b.N() || got.Dense.Cols != b.Dense.Cols || len(got.Indices) != len(b.Indices) {
		t.Fatal("shape mismatch")
	}
	for i := range b.Dense.Data {
		if got.Dense.Data[i] != b.Dense.Data[i] {
			t.Fatal("dense mismatch")
		}
	}
	for i := range b.Labels {
		if got.Labels[i] != b.Labels[i] {
			t.Fatal("label mismatch")
		}
	}
	for ti := range b.Indices {
		for i := range b.Indices[ti] {
			if got.Indices[ti][i] != b.Indices[ti][i] {
				t.Fatal("index mismatch")
			}
		}
	}
}

func TestBatchStreamRoundTrip(t *testing.T) {
	g := NewGenerator(ScaledSpec(TerabyteSpec(), 100000))
	batches := []*Batch{g.NextBatch(8), g.NextBatch(16), g.NextBatch(4)}
	var buf bytes.Buffer
	if err := WriteBatches(&buf, batches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBatches(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d batches", len(got))
	}
	for i, b := range batches {
		if got[i].N() != b.N() {
			t.Fatalf("batch %d size", i)
		}
	}
}

func TestReadBatchRejectsGarbage(t *testing.T) {
	if _, err := ReadBatch(bytes.NewReader([]byte("NOTDLRM"))); err == nil {
		t.Fatal("bad magic should error")
	}
	// Valid magic, implausible header.
	data := append([]byte("DLRMB1"), make([]byte, 12)...)
	if _, err := ReadBatch(bytes.NewReader(data)); err == nil {
		t.Fatal("zero-table header should error")
	}
	// Truncated payload.
	g := NewGenerator(ScaledSpec(KaggleSpec(), 100000))
	var buf bytes.Buffer
	if err := WriteBatch(&buf, g.NextBatch(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBatch(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated batch should error")
	}
}
