package criteo

import (
	"math"

	"dlrmcomp/internal/tensor"
)

// Zipf samples from a bounded Zipf distribution over {0, 1, ..., imax} with
// P(k) ∝ 1/(1+k)^s, using Hörmann's rejection-inversion method (the same
// algorithm as math/rand.Zipf) but driven by the deterministic tensor.RNG so
// dataset generation is reproducible without math/rand's global state.
type Zipf struct {
	rng          *tensor.RNG
	imax         float64
	v            float64
	q            float64
	oneminusQ    float64
	oneminusQinv float64
	hxm          float64
	hx0minusHxm  float64
	s            float64
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *Zipf) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// NewZipf builds a sampler with skew s > 1 producing values in [0, card).
// A table with a single row yields the constant 0.
func NewZipf(rng *tensor.RNG, s float64, card uint64) *Zipf {
	if s <= 1 {
		panic("criteo: Zipf skew must be > 1")
	}
	if card < 1 {
		panic("criteo: Zipf cardinality must be >= 1")
	}
	z := &Zipf{rng: rng, imax: float64(card - 1), v: 1, q: s}
	z.oneminusQ = 1 - z.q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(z.v)*(-z.q)) - z.hxm
	z.s = 1 - z.hinv(z.h(1.5)-math.Exp(-z.q*math.Log(z.v+1.0)))
	return z
}

// Next returns the next sample in [0, card).
func (z *Zipf) Next() uint64 {
	if z.imax == 0 {
		return 0
	}
	for {
		r := z.rng.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
