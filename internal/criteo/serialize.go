package criteo

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dlrmcomp/internal/tensor"
)

// Binary dataset serialization: batches can be written to and re-read from
// any io.Writer/Reader, so a generated workload can be frozen to disk and
// replayed across runs or shared between the trainer and external tools
// (the role Criteo's day files play for the paper's system).
//
// Format (little-endian):
//
//	magic "DLRMB1"  | u32 n | u32 denseF | u32 numTables
//	dense  n*denseF float32
//	labels n        float32
//	per table: n int32 indices

var batchMagic = [6]byte{'D', 'L', 'R', 'M', 'B', '1'}

// WriteBatch serializes b to w.
func WriteBatch(w io.Writer, b *Batch) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(batchMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(b.N()))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(b.Dense.Cols))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(b.Indices)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var tmp [4]byte
	for _, v := range b.Dense.Data {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		if _, err := bw.Write(tmp[:]); err != nil {
			return err
		}
	}
	for _, v := range b.Labels {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		if _, err := bw.Write(tmp[:]); err != nil {
			return err
		}
	}
	for _, idx := range b.Indices {
		if len(idx) != b.N() {
			return fmt.Errorf("criteo: table index length %d != batch %d", len(idx), b.N())
		}
		for _, v := range idx {
			binary.LittleEndian.PutUint32(tmp[:], uint32(v))
			if _, err := bw.Write(tmp[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBatch deserializes one batch from r.
func ReadBatch(r io.Reader) (*Batch, error) {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != batchMagic {
		return nil, fmt.Errorf("criteo: bad magic %q", magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	denseF := int(binary.LittleEndian.Uint32(hdr[4:]))
	numTables := int(binary.LittleEndian.Uint32(hdr[8:]))
	const maxReasonable = 1 << 28
	if n < 0 || denseF <= 0 || numTables <= 0 || n*denseF > maxReasonable || n*numTables > maxReasonable {
		return nil, fmt.Errorf("criteo: implausible header n=%d dense=%d tables=%d", n, denseF, numTables)
	}

	readF32 := func(dst []float32) error {
		var tmp [4]byte
		for i := range dst {
			if _, err := io.ReadFull(br, tmp[:]); err != nil {
				return err
			}
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(tmp[:]))
		}
		return nil
	}
	b := &Batch{
		Dense:   tensor.NewMatrix(n, denseF),
		Indices: make([][]int32, numTables),
		Labels:  make([]float32, n),
	}
	if err := readF32(b.Dense.Data); err != nil {
		return nil, err
	}
	if err := readF32(b.Labels); err != nil {
		return nil, err
	}
	var tmp [4]byte
	for t := range b.Indices {
		b.Indices[t] = make([]int32, n)
		for i := range b.Indices[t] {
			if _, err := io.ReadFull(br, tmp[:]); err != nil {
				return nil, err
			}
			b.Indices[t][i] = int32(binary.LittleEndian.Uint32(tmp[:]))
		}
	}
	return b, nil
}

// WriteBatches writes a stream of batches.
func WriteBatches(w io.Writer, batches []*Batch) error {
	for i, b := range batches {
		if err := WriteBatch(w, b); err != nil {
			return fmt.Errorf("criteo: batch %d: %w", i, err)
		}
	}
	return nil
}

// ReadBatches reads batches until EOF.
func ReadBatches(r io.Reader) ([]*Batch, error) {
	br := bufio.NewReader(r)
	var out []*Batch
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return out, nil
		}
		b, err := ReadBatch(br)
		if err != nil {
			return nil, fmt.Errorf("criteo: batch %d: %w", len(out), err)
		}
		out = append(out, b)
	}
}
