package criteo

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

// zipfHist draws n samples and returns the per-value counts.
func zipfHist(t *testing.T, seed uint64, s float64, card uint64, n int) []int {
	t.Helper()
	z := NewZipf(tensor.NewRNG(seed), s, card)
	counts := make([]int, card)
	for i := 0; i < n; i++ {
		k := z.Next()
		if k >= card {
			t.Fatalf("sample %d out of range [0, %d)", k, card)
		}
		counts[k]++
	}
	return counts
}

// TestZipfHeadMass compares the empirical mass of the head (the first few
// values) against the exact bounded-Zipf probabilities P(k) ∝ 1/(1+k)^s.
// This is the property the serving layer's hot cache banks on: under the
// dataset's default skew a tiny head carries most of the traffic.
func TestZipfHeadMass(t *testing.T) {
	const (
		card = 10000
		n    = 200000
		s    = 1.2 // KaggleSpec's default skew
	)
	counts := zipfHist(t, 7, s, card, n)

	// Exact normalizer over the bounded support.
	var z float64
	for k := 0; k < card; k++ {
		z += math.Pow(float64(1+k), -s)
	}
	for _, head := range []int{1, 10, 100} {
		var want float64
		for k := 0; k < head; k++ {
			want += math.Pow(float64(1+k), -s) / z
		}
		got := 0
		for k := 0; k < head; k++ {
			got += counts[k]
		}
		emp := float64(got) / n
		if d := math.Abs(emp - want); d > 0.01 {
			t.Errorf("head %d: empirical mass %.4f vs exact %.4f (|Δ| = %.4f > 0.01)", head, emp, want, d)
		}
	}
}

// TestZipfSkewMonotonic checks that raising s concentrates more mass on the
// single hottest value — the knob the load benchmarks turn.
func TestZipfSkewMonotonic(t *testing.T) {
	const (
		card = 1000
		n    = 100000
	)
	prev := -1
	for _, s := range []float64{1.1, 1.5, 2.0} {
		counts := zipfHist(t, 11, s, card, n)
		if counts[0] <= prev {
			t.Fatalf("skew %.1f: value 0 drew %d samples, not above the %d at the lower skew", s, counts[0], prev)
		}
		prev = counts[0]
	}
}

// TestZipfDeterminism pins the reproducibility contract: the same seed
// yields the same stream (bit-identical training and serving workloads),
// a different seed a different one.
func TestZipfDeterminism(t *testing.T) {
	draw := func(seed uint64) []uint64 {
		z := NewZipf(tensor.NewRNG(seed), 1.2, 1<<20)
		out := make([]uint64, 512)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs under the same seed: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical stream")
	}
}

// TestZipfDegenerateAndInvalid covers the support edges: a single-row
// table is the constant 0, and the constructor rejects non-Zipf skews and
// empty supports loudly rather than sampling garbage.
func TestZipfDegenerateAndInvalid(t *testing.T) {
	z := NewZipf(tensor.NewRNG(1), 1.5, 1)
	for i := 0; i < 100; i++ {
		if k := z.Next(); k != 0 {
			t.Fatalf("card 1 sampled %d, want constant 0", k)
		}
	}
	for _, tc := range []struct {
		name string
		s    float64
		card uint64
	}{
		{"skew_one", 1, 10},
		{"skew_below_one", 0.5, 10},
		{"zero_card", 1.2, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(s=%v, card=%d) did not panic", tc.s, tc.card)
				}
			}()
			NewZipf(tensor.NewRNG(1), tc.s, tc.card)
		})
	}
}
