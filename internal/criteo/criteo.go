package criteo

import (
	"fmt"
	"math"

	"dlrmcomp/internal/tensor"
)

// KaggleCardinalities are the categorical-feature cardinalities of the
// Criteo Ad Kaggle dataset (counts published with the open-source DLRM
// reference implementation).
var KaggleCardinalities = []int{
	1460, 583, 10131227, 2202608, 305, 24, 12517, 633, 3, 93145,
	5683, 8351593, 3194, 27, 14992, 5461306, 10, 5652, 2173, 4,
	7046547, 18, 15, 286181, 105, 142572,
}

// TerabyteCardinalities are the categorical-feature cardinalities of the
// Criteo Terabyte dataset (MLPerf DLRM preprocessing).
var TerabyteCardinalities = []int{
	39884406, 39043, 17289, 7420, 20263, 3, 7120, 1543, 63, 38532951,
	2953546, 403346, 10, 2208, 11938, 155, 4, 976, 14, 39979771,
	25641295, 39664984, 585935, 12972, 108, 36,
}

// Spec describes a synthetic dataset.
type Spec struct {
	Name          string
	DenseFeatures int
	Cardinalities []int
	// ZipfS is the skew exponent of the per-table Zipf query distribution
	// (> 1). Larger values concentrate lookups on fewer hot keys.
	ZipfS float64
	// DefaultBatch is the mini-batch size the paper uses for this dataset.
	DefaultBatch int
	Seed         uint64
	// FullCardinalities holds the unscaled cardinalities when the spec was
	// produced by ScaledSpec (nil otherwise). Models built from a scaled
	// spec should initialize their embedding tables with these so value
	// statistics match the full-size dataset.
	FullCardinalities []int
}

// KaggleSpec returns the Criteo-Kaggle-like dataset spec (batch 128, as in
// the paper's Tables III/V).
func KaggleSpec() Spec {
	return Spec{
		Name:          "kaggle",
		DenseFeatures: 13,
		Cardinalities: KaggleCardinalities,
		ZipfS:         1.2,
		DefaultBatch:  128,
		Seed:          1,
	}
}

// TerabyteSpec returns the Criteo-Terabyte-like dataset spec (batch 2048).
func TerabyteSpec() Spec {
	return Spec{
		Name:          "terabyte",
		DenseFeatures: 13,
		Cardinalities: TerabyteCardinalities,
		ZipfS:         1.25,
		DefaultBatch:  2048,
		Seed:          2,
	}
}

// ScaledSpec shrinks a spec's cardinalities by factor (minimum 1 row per
// table) so that unit tests and examples can run quickly while preserving
// the relative size distribution across tables.
func ScaledSpec(s Spec, factor int) Spec {
	if factor <= 1 {
		return s
	}
	if s.FullCardinalities == nil {
		s.FullCardinalities = s.Cardinalities
	}
	scaled := make([]int, len(s.Cardinalities))
	for i, c := range s.Cardinalities {
		scaled[i] = c / factor
		if scaled[i] < 1 {
			scaled[i] = 1
		}
	}
	s.Cardinalities = scaled
	s.Name = fmt.Sprintf("%s/%d", s.Name, factor)
	return s
}

// Batch is one mini-batch of samples.
type Batch struct {
	Dense   *tensor.Matrix // [n, DenseFeatures]
	Indices [][]int32      // [numTables][n]
	Labels  []float32      // [n] in {0,1}
}

// N returns the number of samples in the batch.
func (b *Batch) N() int { return b.Dense.Rows }

// Generator produces deterministic batches for a Spec.
type Generator struct {
	Spec Spec

	rng   *tensor.RNG
	zipfs []*Zipf

	// planted ground-truth model for labels
	denseW   []float32
	tableFx  [][]float32 // per-table bucketed effects
	biasTerm float32
}

const labelBuckets = 64

// NewGenerator builds a generator. The same (spec, seed) always yields the
// same sample stream.
func NewGenerator(spec Spec) *Generator {
	rng := tensor.NewRNG(spec.Seed)
	g := &Generator{Spec: spec, rng: rng}
	for ti, card := range spec.Cardinalities {
		g.zipfs = append(g.zipfs, NewZipf(rng, spec.ZipfS, uint64(card)))
		fx := make([]float32, labelBuckets)
		rng.FillNormal(fx, 0, 0.3)
		g.tableFx = append(g.tableFx, fx)
		_ = ti
	}
	g.denseW = make([]float32, spec.DenseFeatures)
	rng.FillNormal(g.denseW, 0, 0.4)
	g.biasTerm = -0.8 // CTR base rate below 50%, like real click logs
	return g
}

// NextBatch generates n samples.
func (g *Generator) NextBatch(n int) *Batch {
	spec := g.Spec
	b := &Batch{
		Dense:   tensor.NewMatrix(n, spec.DenseFeatures),
		Indices: make([][]int32, len(spec.Cardinalities)),
		Labels:  make([]float32, n),
	}
	for ti := range b.Indices {
		b.Indices[ti] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		// Dense features: log-normal-ish positive values then standardized,
		// mimicking Criteo's count features after log transform.
		drow := b.Dense.Row(i)
		for j := range drow {
			drow[j] = float32(g.rng.NormFloat64())
		}
		logit := float64(g.biasTerm) + float64(tensor.Dot(g.denseW, drow))
		for ti := range spec.Cardinalities {
			idx := int32(g.zipfs[ti].Next())
			b.Indices[ti][i] = idx
			logit += float64(g.tableFx[ti][int(idx)%labelBuckets]) / float64(len(spec.Cardinalities))
		}
		p := 1.0 / (1.0 + math.Exp(-logit))
		if g.rng.Float64() < p {
			b.Labels[i] = 1
		}
	}
	return b
}

// BaseCTR estimates the positive rate of the generator's label distribution
// from m samples (diagnostic helper).
func (g *Generator) BaseCTR(m int) float64 {
	b := g.NextBatch(m)
	var s float64
	for _, y := range b.Labels {
		s += float64(y)
	}
	return s / float64(m)
}
