// Package testutil holds cross-package test helpers. Layer: leaf (imported
// only from _test files). Its one export, RaceEnabled, lets allocation-
// regression tests (testing.AllocsPerRun pins) skip themselves under the
// race detector, whose instrumentation allocates and defeats sync.Pool
// reuse; the race CI job covers concurrency, the quick job covers allocs.
package testutil
