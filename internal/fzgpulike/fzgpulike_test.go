package fzgpulike

import (
	"testing"
	"testing/quick"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/tensor"
)

func TestBitshuffleRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, n := range []int{1, 31, 32, 33, 100, 1024} {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(rng.Uint64())
		}
		back := Unbitshuffle(Bitshuffle(vals), n)
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestBitshuffleSmallSymbolsZeroHighPlanes(t *testing.T) {
	vals := make([]uint32, 64)
	for i := range vals {
		vals[i] = uint32(i % 4) // only 2 bits used
	}
	planes := Bitshuffle(vals)
	// Planes 2..31 of both blocks must be zero.
	for blk := 0; blk < 2; blk++ {
		for b := 2; b < 32; b++ {
			if planes[blk*32+b] != 0 {
				t.Fatalf("plane %d of block %d not zero", b, blk)
			}
		}
	}
}

func TestBitshuffleProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		back := Unbitshuffle(Bitshuffle(vals), len(vals))
		if len(back) != len(vals) {
			return false
		}
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRLERoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		dec, err := unZeroRLE(zeroRLE(src))
		if err != nil {
			return false
		}
		if len(dec) != len(src) {
			return false
		}
		for i := range src {
			if dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := make([]float32, 4096)
	rng.FillNormal(src, 0, 0.3)
	for _, eb := range []float32{0.001, 0.01, 0.1} {
		c := New(eb)
		recon, _, err := codec.RoundTrip(c, src, 64)
		if err != nil {
			t.Fatal(err)
		}
		if e := quant.MaxError(src, recon); e > eb+1e-5 {
			t.Fatalf("eb %v violated: %v", eb, e)
		}
	}
}

func TestCompressesSmallCodes(t *testing.T) {
	// Concentrated values -> small bins -> zero planes -> good ratio.
	rng := tensor.NewRNG(3)
	src := make([]float32, 8192)
	rng.FillNormal(src, 0, 0.02)
	c := New(0.01)
	_, ratio, err := codec.RoundTrip(c, src, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5 {
		t.Fatalf("small-bin data should compress > 5x, got %.2f", ratio)
	}
}

func TestLowerRatioThanEntropyOnGaussian(t *testing.T) {
	// FZ-GPU trades ratio for speed: bit-plane RLE cannot beat ~fixed-width
	// coding of Gaussian bins. We only check it stays positive and modest.
	rng := tensor.NewRNG(4)
	src := make([]float32, 8192)
	rng.FillNormal(src, 0, 1)
	c := New(0.01)
	_, ratio, err := codec.RoundTrip(c, src, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.5 || ratio > 10 {
		t.Fatalf("unexpected ratio %.2f for wide Gaussian", ratio)
	}
}

func TestErrorBoundedInterface(t *testing.T) {
	c := New(0.01)
	c.SetErrorBound(0.2)
	if c.ErrorBound() != 0.2 {
		t.Fatal("SetErrorBound did not stick")
	}
	if c.Name() != "fz-gpu-like" || !c.Lossy() {
		t.Fatal("metadata wrong")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	c := New(0.01)
	if _, _, err := c.Decompress([]byte{1, 2}); err == nil {
		t.Fatal("short frame should error")
	}
	if _, _, err := c.Decompress(make([]byte, 12)); err == nil {
		t.Fatal("zero eb frame should error")
	}
}

func BenchmarkCompress8K(b *testing.B) {
	rng := tensor.NewRNG(5)
	src := make([]float32, 8192)
	rng.FillNormal(src, 0, 0.1)
	c := New(0.01)
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src, 64); err != nil {
			b.Fatal(err)
		}
	}
}
