package fzgpulike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dlrmcomp/internal/quant"
)

var errCorrupt = errors.New("fzgpulike: corrupt frame")

// Codec is the FZ-GPU-like compressor.
type Codec struct {
	EB float32
}

// New returns the codec with the given error bound.
func New(eb float32) *Codec { return &Codec{EB: eb} }

// Name implements codec.Codec.
func (c *Codec) Name() string { return "fz-gpu-like" }

// Lossy implements codec.Codec.
func (c *Codec) Lossy() bool { return true }

// SetErrorBound implements codec.ErrorBounded.
func (c *Codec) SetErrorBound(eb float32) { c.EB = eb }

// ErrorBound implements codec.ErrorBounded.
func (c *Codec) ErrorBound() float32 { return c.EB }

// Bitshuffle transposes blocks of 32 uint32 values into 32 bit-plane words:
// output word b holds bit b of each of the 32 input values. Small symbols
// leave the high bit-planes all-zero, which the run-length stage removes.
// The tail block (< 32 values) is zero-padded.
func Bitshuffle(vals []uint32) []uint32 {
	nBlocks := (len(vals) + 31) / 32
	out := make([]uint32, nBlocks*32)
	for blk := 0; blk < nBlocks; blk++ {
		var in [32]uint32
		copy(in[:], vals[blk*32:min(len(vals), blk*32+32)])
		base := blk * 32
		for b := 0; b < 32; b++ {
			var w uint32
			for k := 0; k < 32; k++ {
				w |= ((in[k] >> b) & 1) << k
			}
			out[base+b] = w
		}
	}
	return out
}

// Unbitshuffle inverts Bitshuffle; n is the original value count.
func Unbitshuffle(planes []uint32, n int) []uint32 {
	out := make([]uint32, n)
	nBlocks := (n + 31) / 32
	for blk := 0; blk < nBlocks; blk++ {
		base := blk * 32
		for b := 0; b < 32; b++ {
			w := planes[base+b]
			for k := 0; k < 32; k++ {
				idx := blk*32 + k
				if idx < n {
					out[idx] |= ((w >> k) & 1) << b
				}
			}
		}
	}
	return out
}

// zeroRLE encodes a byte stream as alternating tokens:
// 0x00 run -> (0, uvarint runLen); literal run -> (1, uvarint len, bytes).
func zeroRLE(src []byte) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(src) {
		if src[i] == 0 {
			j := i
			for j < len(src) && src[j] == 0 {
				j++
			}
			out = append(out, 0)
			n := binary.PutUvarint(tmp[:], uint64(j-i))
			out = append(out, tmp[:n]...)
			i = j
			continue
		}
		j := i
		// Break literal runs at a zero run of length >= 2 (a single zero
		// is cheaper inline than a token pair).
		for j < len(src) {
			if src[j] == 0 && (j+1 >= len(src) || src[j+1] == 0) {
				break
			}
			j++
		}
		out = append(out, 1)
		n := binary.PutUvarint(tmp[:], uint64(j-i))
		out = append(out, tmp[:n]...)
		out = append(out, src[i:j]...)
		i = j
	}
	return out
}

func unZeroRLE(data []byte) ([]byte, error) {
	var out []byte
	for len(data) > 0 {
		tok := data[0]
		data = data[1:]
		switch tok {
		case 0:
			l, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, errCorrupt
			}
			data = data[n:]
			out = append(out, make([]byte, l)...)
		case 1:
			l, n := binary.Uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return nil, errCorrupt
			}
			out = append(out, data[n:n+int(l)]...)
			data = data[n+int(l):]
		default:
			return nil, errCorrupt
		}
	}
	return out, nil
}

// Compress implements codec.Codec.
func (c *Codec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%dim != 0 {
		return nil, fmt.Errorf("fzgpulike: bad shape len=%d dim=%d", len(src), dim)
	}
	q := quant.New(c.EB)
	codes := make([]int32, len(src))
	q.Quantize(codes, src)
	planes := Bitshuffle(quant.ZigZagSlice(codes))
	raw := make([]byte, len(planes)*4)
	for i, w := range planes {
		binary.LittleEndian.PutUint32(raw[4*i:], w)
	}
	payload := zeroRLE(raw)

	out := make([]byte, 12, 12+len(payload))
	binary.LittleEndian.PutUint32(out[0:], math.Float32bits(c.EB))
	binary.LittleEndian.PutUint32(out[4:], uint32(dim))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(src)))
	return append(out, payload...), nil
}

// Decompress implements codec.Codec.
func (c *Codec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 12 {
		return nil, 0, errCorrupt
	}
	eb := math.Float32frombits(binary.LittleEndian.Uint32(frame[0:]))
	dim := int(binary.LittleEndian.Uint32(frame[4:]))
	n := int(binary.LittleEndian.Uint32(frame[8:]))
	if eb <= 0 || dim <= 0 || n%dim != 0 {
		return nil, 0, errCorrupt
	}
	raw, err := unZeroRLE(frame[12:])
	if err != nil {
		return nil, 0, err
	}
	if len(raw)%4 != 0 || len(raw) < ((n+31)/32)*32*4 {
		return nil, 0, errCorrupt
	}
	planes := make([]uint32, len(raw)/4)
	for i := range planes {
		planes[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	codes := quant.UnZigZagSlice(Unbitshuffle(planes, n))
	out := make([]float32, n)
	quant.New(eb).Dequantize(out, codes)
	return out, dim, nil
}
