// Package fzgpulike implements an FZ-GPU-family error-bounded lossy
// compressor: error-bounded quantization followed by a bitshuffle transform
// and zero-run sparse encoding. The design goal of the original is extreme
// throughput from branch-free encoding; the cost is a lower compression
// ratio than entropy- or dictionary-based coding — exactly the trade-off the
// paper's Fig. 11 shows.
//
// Layer: baseline codec implementing internal/codec.ErrorBounded; priced
// in end-to-end projections by netmodel.PaperCodecRates under the name
// "fz-gpu-like".
//
// Key types: Codec (New(eb)); the frame layout is quantization codes →
// 32-way bitshuffle → zero-block bitmap + packed nonzero words, mirroring
// the original's two-kernel structure.
package fzgpulike
