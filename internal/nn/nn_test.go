package nn

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(4, 3, rng)
	x := tensor.NewMatrix(5, 4)
	rng.FillNormal(x.Data, 0, 1)
	y := l.Forward(x)
	if y.Rows != 5 || y.Cols != 3 {
		t.Fatalf("Forward shape = %dx%d, want 5x3", y.Rows, y.Cols)
	}
}

func TestLinearForwardValues(t *testing.T) {
	l := &Linear{
		In: 2, Out: 1,
		W:     tensor.FromSlice(1, 2, []float32{2, 3}),
		B:     []float32{1},
		GradW: tensor.NewMatrix(1, 2),
		GradB: make([]float32, 1),
	}
	x := tensor.FromSlice(1, 2, []float32{4, 5})
	y := l.Forward(x)
	if y.Data[0] != 2*4+3*5+1 {
		t.Fatalf("Forward = %v, want 24", y.Data[0])
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := r.Forward(x)
	for i, w := range []float32{0, 0, 2, 0} {
		if y.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
	dY := tensor.FromSlice(1, 4, []float32{1, 1, 1, 1})
	dX := r.Backward(dY)
	for i, w := range []float32{0, 0, 1, 0} {
		if dX.Data[i] != w {
			t.Fatalf("ReLU grad[%d] = %v, want %v", i, dX.Data[i], w)
		}
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(float64(s)-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Fatalf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", s)
	}
}

// mlpLoss runs a forward pass plus BCE loss, used for numerical gradients.
func mlpLoss(m *MLP, x *tensor.Matrix, labels []float32) float64 {
	logits := m.Forward(x)
	return LogLoss(logits, labels)
}

// TestMLPGradientCheck compares analytic gradients against central
// differences on every parameter of a small MLP.
func TestMLPGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewMLP([]int{3, 4, 1}, rng)
	x := tensor.NewMatrix(6, 3)
	rng.FillNormal(x.Data, 0, 1)
	labels := []float32{0, 1, 1, 0, 1, 0}

	m.ZeroGrad()
	logits := m.Forward(x)
	_, dz := BCEWithLogits(logits, labels)
	m.Backward(dz)

	const h = 1e-3
	for li, layer := range m.Layers {
		for pi, p := range layer.Params() {
			for i := range p.Value {
				orig := p.Value[i]
				p.Value[i] = orig + h
				lp := mlpLoss(m, x, labels)
				p.Value[i] = orig - h
				lm := mlpLoss(m, x, labels)
				p.Value[i] = orig
				numeric := (lp - lm) / (2 * h)
				analytic := float64(p.Grad[i])
				if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d param %d idx %d: analytic %v vs numeric %v",
						li, pi, i, analytic, numeric)
				}
			}
		}
	}
}

func TestBCEWithLogitsValues(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{0, 0})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	want := float32(math.Log(2))
	if math.Abs(float64(loss-want)) > 1e-6 {
		t.Fatalf("loss = %v, want ln2 = %v", loss, want)
	}
	// d/dz at z=0: (0.5 - y)/n
	if math.Abs(float64(grad.Data[0]+0.25)) > 1e-6 || math.Abs(float64(grad.Data[1]-0.25)) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestBCENumericalStability(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{1000, -1000})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	if loss > 1e-3 {
		t.Fatalf("loss should be ~0 for confident correct predictions, got %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(4, 1, []float32{2, -2, 1, -1})
	acc := Accuracy(logits, []float32{1, 0, 0, 1})
	if acc != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", acc)
	}
}

func TestSGDStep(t *testing.T) {
	p := Param{Value: []float32{1, 2}, Grad: []float32{0.5, -0.5}}
	(&SGD{LR: 0.1}).Step([]Param{p})
	if p.Value[0] != 0.95 || p.Value[1] != 2.05 {
		t.Fatalf("SGD update = %v", p.Value)
	}
}

func TestAdagradStep(t *testing.T) {
	p := Param{Value: []float32{1}, Grad: []float32{2}}
	opt := NewAdagrad(0.1)
	opt.Step([]Param{p})
	// acc = 4, update = 0.1*2/2 = 0.1
	if math.Abs(float64(p.Value[0]-0.9)) > 1e-5 {
		t.Fatalf("first Adagrad step = %v, want 0.9", p.Value[0])
	}
	p.Grad[0] = 2
	opt.Step([]Param{p})
	// acc = 8, update = 0.2/sqrt(8)
	want := 0.9 - 0.2/math.Sqrt(8)
	if math.Abs(float64(p.Value[0])-want) > 1e-5 {
		t.Fatalf("second Adagrad step = %v, want %v", p.Value[0], want)
	}
}

// TestMLPLearnsXOR trains a tiny MLP on XOR to confirm the full
// forward/backward/step loop actually optimizes.
func TestMLPLearnsXOR(t *testing.T) {
	rng := tensor.NewRNG(12)
	m := NewMLP([]int{2, 8, 1}, rng)
	x := tensor.FromSlice(4, 2, []float32{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []float32{0, 1, 1, 0}
	opt := &SGD{LR: 0.5}
	var loss float32
	for epoch := 0; epoch < 2000; epoch++ {
		m.ZeroGrad()
		logits := m.Forward(x)
		var dz *tensor.Matrix
		loss, dz = BCEWithLogits(logits, labels)
		m.Backward(dz)
		opt.Step(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("XOR did not converge, final loss %v", loss)
	}
	if acc := Accuracy(m.Forward(x), labels); acc != 1.0 {
		t.Fatalf("XOR accuracy %v, want 1.0", acc)
	}
}

func TestMLPNumParams(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewMLP([]int{3, 4, 2}, rng)
	// (3*4 + 4) + (4*2 + 2) = 16 + 10 = 26
	if n := m.NumParams(); n != 26 {
		t.Fatalf("NumParams = %d, want 26", n)
	}
}

func TestMLPBackwardAccumulates(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewMLP([]int{2, 3, 1}, rng)
	x := tensor.NewMatrix(2, 2)
	rng.FillNormal(x.Data, 0, 1)
	labels := []float32{0, 1}

	m.ZeroGrad()
	logits := m.Forward(x)
	_, dz := BCEWithLogits(logits, labels)
	m.Backward(dz)
	g1 := make([]float32, len(m.Layers[0].GradW.Data))
	copy(g1, m.Layers[0].GradW.Data)

	// Second backward without ZeroGrad doubles the gradient.
	logits = m.Forward(x)
	_, dz = BCEWithLogits(logits, labels)
	m.Backward(dz)
	for i, g := range m.Layers[0].GradW.Data {
		if math.Abs(float64(g-2*g1[i])) > 1e-5 {
			t.Fatalf("gradient accumulation broken at %d: %v vs %v", i, g, 2*g1[i])
		}
	}
}
