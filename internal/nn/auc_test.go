package nn

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

func TestAUCPerfectSeparation(t *testing.T) {
	logits := tensor.FromSlice(4, 1, []float32{-2, -1, 1, 2})
	if auc := AUC(logits, []float32{0, 0, 1, 1}); auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
	if auc := AUC(logits, []float32{1, 1, 0, 0}); auc != 0 {
		t.Fatalf("inverted AUC = %v, want 0", auc)
	}
}

func TestAUCChance(t *testing.T) {
	// Identical scores -> ties -> 0.5.
	logits := tensor.FromSlice(4, 1, []float32{1, 1, 1, 1})
	if auc := AUC(logits, []float32{0, 1, 0, 1}); auc != 0.5 {
		t.Fatalf("AUC = %v, want 0.5", auc)
	}
}

func TestAUCDegenerate(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{1, 2})
	if AUC(logits, []float32{1, 1}) != 0.5 {
		t.Fatal("single-class labels should give 0.5")
	}
	if AUC(tensor.NewMatrix(0, 1), nil) != 0.5 {
		t.Fatal("empty input should give 0.5")
	}
}

func TestAUCKnownValue(t *testing.T) {
	// scores: pos {3, 1}, neg {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) -> 3/4.
	logits := tensor.FromSlice(4, 1, []float32{3, 2, 1, 0})
	labels := []float32{1, 0, 1, 0}
	if auc := AUC(logits, labels); math.Abs(auc-0.75) > 1e-9 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	rng := tensor.NewRNG(7)
	n := 200
	logits := tensor.NewMatrix(n, 1)
	rng.FillNormal(logits.Data, 0, 1)
	labels := make([]float32, n)
	for i := range labels {
		if rng.Float64() < 0.3 {
			labels[i] = 1
		}
	}
	// Brute force Mann-Whitney.
	var wins, ties, pairs float64
	for i := 0; i < n; i++ {
		if labels[i] != 1 {
			continue
		}
		for j := 0; j < n; j++ {
			if labels[j] != 0 {
				continue
			}
			pairs++
			switch {
			case logits.Data[i] > logits.Data[j]:
				wins++
			case logits.Data[i] == logits.Data[j]:
				ties++
			}
		}
	}
	want := (wins + ties/2) / pairs
	if got := AUC(logits, labels); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AUC = %v, brute force %v", got, want)
	}
}
