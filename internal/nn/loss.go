package nn

import (
	"math"

	"dlrmcomp/internal/tensor"
)

func expImpl(x float64) float64 { return math.Exp(x) }

// BCEWithLogits computes the mean binary cross-entropy between logits z
// (shape [n, 1]) and labels in {0, 1}, and returns the loss plus
// dL/dz (shape [n, 1]). The sigmoid is fused for numerical stability:
//
//	loss_i = max(z,0) - z*y + log(1 + exp(-|z|))
//	dL/dz_i = (sigmoid(z) - y) / n
func BCEWithLogits(logits *tensor.Matrix, labels []float32) (float32, *tensor.Matrix) {
	grad := tensor.NewMatrix(logits.Rows, 1)
	return BCEWithLogitsInto(grad, logits, labels), grad
}

// BCEWithLogitsInto is BCEWithLogits writing dL/dz into a caller-owned grad
// matrix (shape [n, 1]) — the allocation-free variant the train-step
// workspace uses. Returns the mean loss.
func BCEWithLogitsInto(grad, logits *tensor.Matrix, labels []float32) float32 {
	if logits.Cols != 1 || logits.Rows != len(labels) {
		panic("nn: BCEWithLogits expects [n,1] logits matching labels")
	}
	if grad.Cols != 1 || grad.Rows != logits.Rows {
		panic("nn: BCEWithLogitsInto grad shape mismatch")
	}
	n := float64(len(labels))
	var total float64
	for i, y := range labels {
		z := float64(logits.Data[i])
		// Stable BCE-with-logits.
		loss := math.Max(z, 0) - z*float64(y) + math.Log1p(math.Exp(-math.Abs(z)))
		total += loss
		p := 1.0 / (1.0 + math.Exp(-z))
		grad.Data[i] = float32((p - float64(y)) / n)
	}
	return float32(total / n)
}

// Accuracy returns the fraction of rows where sigmoid(logit) >= 0.5 matches
// the binary label — the metric the paper's accuracy curves report.
func Accuracy(logits *tensor.Matrix, labels []float32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i, y := range labels {
		pred := float32(0)
		if logits.Data[i] >= 0 { // sigmoid(z) >= 0.5 iff z >= 0
			pred = 1
		}
		if pred == y {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// LogLoss returns the mean BCE without computing gradients, for eval passes.
func LogLoss(logits *tensor.Matrix, labels []float32) float64 {
	var total float64
	for i, y := range labels {
		z := float64(logits.Data[i])
		total += math.Max(z, 0) - z*float64(y) + math.Log1p(math.Exp(-math.Abs(z)))
	}
	if logits.Rows == 0 {
		return 0
	}
	return total / float64(logits.Rows)
}
