package nn

import (
	"sort"

	"dlrmcomp/internal/tensor"
)

// AUC computes the area under the ROC curve for binary labels against raw
// logits (higher logit = more positive). Ties are handled by assigning the
// average rank, the standard Mann–Whitney formulation. Returns 0.5 for
// degenerate inputs (single-class labels).
func AUC(logits *tensor.Matrix, labels []float32) float64 {
	n := logits.Rows
	if n == 0 || n != len(labels) {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return logits.Data[idx[a]] < logits.Data[idx[b]] })

	// Average ranks over tie groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && logits.Data[idx[j]] == logits.Data[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	var posRankSum float64
	var pos int
	for i, y := range labels {
		if y == 1 {
			posRankSum += ranks[i]
			pos++
		}
	}
	neg := n - pos
	if pos == 0 || neg == 0 {
		return 0.5
	}
	return (posRankSum - float64(pos)*float64(pos+1)/2) / (float64(pos) * float64(neg))
}
