package nn

import (
	"dlrmcomp/internal/tensor"
)

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask []bool

	// Reused output buffers; see Linear for the scratch-ownership contract.
	y, dX *tensor.Matrix
}

// Forward applies max(0, x) elementwise. The returned matrix is layer-owned
// scratch, valid until the next Forward.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.y = r.y.Resize(x.Rows, x.Cols)
	y := r.y
	copy(y.Data, x.Data)
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward zeroes gradient where the activation was clamped. The returned
// matrix is layer-owned scratch, valid until the next Backward.
func (r *ReLU) Backward(dY *tensor.Matrix) *tensor.Matrix {
	r.dX = r.dX.Resize(dY.Rows, dY.Cols)
	dX := r.dX
	copy(dX.Data, dY.Data)
	for i := range dX.Data {
		if !r.mask[i] {
			dX.Data[i] = 0
		}
	}
	return dX
}

// Sigmoid computes the logistic function elementwise.
func Sigmoid(x float32) float32 {
	return float32(1.0 / (1.0 + mathExp(-float64(x))))
}

func mathExp(x float64) float64 {
	// Clamp to avoid overflow in exp; sigmoid saturates well before ±40.
	if x > 40 {
		x = 40
	} else if x < -40 {
		x = -40
	}
	return expImpl(x)
}

// MLP is a stack of Linear layers with ReLU between them. If SigmoidTop is
// true the final layer output is passed through a sigmoid (used by the DLRM
// top MLP to produce a CTR probability).
type MLP struct {
	Layers []*Linear
	relus  []*ReLU

	// SigmoidTop applies a sigmoid after the last layer. Backward then
	// expects dL/d(prob) already folded: for BCE loss use BCEWithLogits and
	// keep SigmoidTop false; SigmoidTop exists for inference-style use.
	SigmoidTop bool

	lastOut *tensor.Matrix
}

// NewMLP builds an MLP with the given layer sizes, e.g. {13, 512, 256, 64}
// creates three Linear layers.
func NewMLP(sizes []int, rng *tensor.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
		m.relus = append(m.relus, &ReLU{})
	}
	return m
}

// Forward runs the batch through every layer. ReLU is applied after every
// layer except the last (matching the DLRM reference bottom/top MLPs, whose
// hidden layers are ReLU and whose last bottom-layer output is also ReLU).
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	h := x
	for i, l := range m.Layers {
		h = l.Forward(h)
		if i < len(m.Layers)-1 {
			h = m.relus[i].Forward(h)
		}
	}
	if m.SigmoidTop {
		h = h.Clone()
		for i, v := range h.Data {
			h.Data[i] = Sigmoid(v)
		}
	}
	m.lastOut = h
	return h
}

// SetWorkers sets the row-parallel width on every layer (see Linear.Workers).
// Results are bitwise identical at any width.
func (m *MLP) SetWorkers(w int) {
	for _, l := range m.Layers {
		l.Workers = w
	}
}

// Backward propagates dY through the stack and returns dX.
func (m *MLP) Backward(dY *tensor.Matrix) *tensor.Matrix {
	d := dY
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i < len(m.Layers)-1 {
			d = m.relus[i].Backward(d)
		}
		d = m.Layers[i].Backward(d)
	}
	return d
}

// ZeroGrad clears gradients in all layers.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all layer parameters in order.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Clone returns an MLP with copied weights and fresh gradients, activation
// masks, and caches (see Linear.Clone).
func (m *MLP) Clone() *MLP {
	c := &MLP{SigmoidTop: m.SigmoidTop}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, l.Clone())
		c.relus = append(c.relus, &ReLU{})
	}
	return c
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value)
	}
	return n
}
