package nn

import (
	"math"

	"dlrmcomp/internal/tensor"
)

// Param couples a parameter slice with its gradient accumulator. Optimizers
// update Value in place from Grad.
type Param struct {
	Value []float32
	Grad  []float32
}

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step applies one update using the current gradients.
	Step(params []Param)
}

// SGD is plain stochastic gradient descent: w -= lr * g.
type SGD struct {
	LR float32

	// Workers is the parallel width for large parameter slices
	// (0 = GOMAXPROCS, 1 = single-threaded). The update is elementwise, so
	// any partition yields bitwise-identical parameters; slices below
	// sgdParallelMin elements always update serially.
	Workers int
}

// sgdParallelMin is the slice length below which the SGD update stays
// serial: fan-out overhead beats the work saved on anything smaller.
const sgdParallelMin = 1 << 15

// Step applies the SGD update.
func (o *SGD) Step(params []Param) {
	for _, p := range params {
		grad, value := p.Grad, p.Value
		if o.Workers == 1 || len(grad) < sgdParallelMin {
			for i, g := range grad {
				value[i] -= o.LR * g
			}
			continue
		}
		tensor.ParallelSpans(o.Workers, len(grad), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				value[i] -= o.LR * grad[i]
			}
		})
	}
}

// Adagrad implements the per-coordinate adaptive update used for DLRM
// embedding tables: w -= lr * g / (sqrt(sum g²) + eps).
type Adagrad struct {
	LR  float32
	Eps float32

	state map[*float32][]float32 // keyed by &Value[0]
}

// NewAdagrad returns an Adagrad optimizer with the given learning rate.
func NewAdagrad(lr float32) *Adagrad {
	return &Adagrad{LR: lr, Eps: 1e-8, state: make(map[*float32][]float32)}
}

// Step applies the Adagrad update, lazily allocating accumulator state per
// parameter slice.
func (o *Adagrad) Step(params []Param) {
	for _, p := range params {
		if len(p.Value) == 0 {
			continue
		}
		key := &p.Value[0]
		acc, ok := o.state[key]
		if !ok || len(acc) != len(p.Value) {
			acc = make([]float32, len(p.Value))
			o.state[key] = acc
		}
		for i, g := range p.Grad {
			acc[i] += g * g
			p.Value[i] -= o.LR * g / (float32(math.Sqrt(float64(acc[i]))) + o.Eps)
		}
	}
}
