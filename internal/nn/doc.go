// Package nn implements the neural-network substrate for DLRM: fully
// connected layers, activations, multi-layer perceptrons, the binary
// cross-entropy training criterion, and the SGD/Adagrad optimizers used by
// the open-source DLRM reference implementation.
//
// All layers follow the same contract: Forward consumes a batch (rows =
// samples) and caches whatever it needs; Backward consumes dL/d(output) and
// returns dL/d(input) while accumulating parameter gradients, which the
// optimizer then applies in Step.
//
// Layer: bottom of the model substrate, over internal/tensor kernels.
// Clone support on Linear/MLP is what lets internal/dist build
// bit-identical data-parallel replicas; the FLOPs these layers perform are
// priced into the "mlp" sim-time bucket by the trainer, not here.
//
// Key types: Linear, MLP (with Clone), Param (value+gradient pair exposed
// to optimizers and the distributed gradient flattener), Optimizer
// (SGD/Adagrad), BCEWithLogits (loss + logit gradient), and the
// Accuracy/LogLoss/AUC evaluation helpers.
package nn
