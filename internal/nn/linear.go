package nn

import (
	"fmt"
	"math"

	"dlrmcomp/internal/tensor"
)

// Linear is a fully connected layer computing y = x @ Wᵀ + b with
// W of shape [out, in].
type Linear struct {
	In, Out int
	W       *tensor.Matrix // [Out, In]
	B       []float32      // [Out]

	// Workers is the row-parallel width handed to the tensor matmuls
	// (0 = GOMAXPROCS, 1 = single-threaded). Results are bitwise identical
	// at any width; small batches stay single-threaded regardless via the
	// tensor parallel threshold.
	Workers int

	GradW *tensor.Matrix
	GradB []float32

	x *tensor.Matrix // cached input for backward

	// Reused output/scratch buffers (resized per batch). Forward and
	// Backward return layer-owned matrices that stay valid only until the
	// layer's next Forward/Backward call — the train-step hot path frames or
	// consumes them within the step, so steady-state training allocates
	// nothing here.
	y, gw, dX *tensor.Matrix
	gb        []float32
}

// NewLinear constructs a layer with He-uniform initialized weights, the
// scheme used by the DLRM reference code for ReLU MLPs.
func NewLinear(in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:    in,
		Out:   out,
		W:     tensor.NewMatrix(out, in),
		B:     make([]float32, out),
		GradW: tensor.NewMatrix(out, in),
		GradB: make([]float32, out),
	}
	limit := float32(math.Sqrt(6.0 / float64(in+out)))
	rng.FillUniform(l.W.Data, -limit, limit)
	rng.FillUniform(l.B, -limit, limit)
	return l
}

// Forward computes the affine transform for a batch x of shape [n, In].
// The returned matrix is layer-owned scratch, valid until the next Forward.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs, got %d", l.In, x.Cols))
	}
	l.x = x
	l.y = l.y.Resize(x.Rows, l.Out)
	tensor.MatMulTransBWorkers(l.Workers, l.y, x, l.W)
	tensor.AddRowVec(l.y, l.B)
	return l.y
}

// Backward accumulates parameter gradients from dY (shape [n, Out]) and
// returns dX (shape [n, In], layer-owned scratch valid until the next
// Backward).
func (l *Linear) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// GradW += dYᵀ @ x ; GradB += colsums(dY) ; dX = dY @ W
	l.gw = l.gw.Resize(l.Out, l.In)
	tensor.MatMulTransAWorkers(l.Workers, l.gw, dY, l.x)
	tensor.Axpy(1, l.gw.Data, l.GradW.Data)
	if cap(l.gb) < l.Out {
		l.gb = make([]float32, l.Out)
	}
	l.gb = l.gb[:l.Out]
	tensor.ColSums(l.gb, dY)
	tensor.Axpy(1, l.gb, l.GradB)
	l.dX = l.dX.Resize(dY.Rows, l.In)
	tensor.MatMulWorkers(l.Workers, l.dX, dY, l.W)
	return l.dX
}

// ZeroGrad clears accumulated gradients.
func (l *Linear) ZeroGrad() {
	l.GradW.Zero()
	for i := range l.GradB {
		l.GradB[i] = 0
	}
}

// Params returns the parameter and gradient slices for the optimizer.
func (l *Linear) Params() []Param {
	return []Param{
		{Value: l.W.Data, Grad: l.GradW.Data},
		{Value: l.B, Grad: l.GradB},
	}
}

// Clone returns a layer with copied weights and fresh (zero) gradients and
// caches. Data-parallel replicas are built this way so every rank starts
// from bit-identical parameters.
func (l *Linear) Clone() *Linear {
	return &Linear{
		In:      l.In,
		Out:     l.Out,
		W:       l.W.Clone(),
		B:       append([]float32(nil), l.B...),
		Workers: l.Workers,
		GradW:   tensor.NewMatrix(l.Out, l.In),
		GradB:   make([]float32, l.Out),
	}
}
