// Package cuszlike implements an SZ/cuSZ-family error-bounded lossy
// compressor: error-bounded quantization, a Lorenzo predictor (1-D over the
// flattened stream or 2-D over the batch-row grid), and a Huffman stage over
// the prediction residuals.
//
// It exists as the paper's scientific-compressor baseline and as the
// demonstration vehicle for observation ❶ (false prediction, Fig. 4):
// embedding batches have little spatial correlation, and identical vectors
// surrounded by different neighbors produce different residual rows, raising
// entropy instead of lowering it. The package exposes residual statistics so
// the experiments can show exactly that effect.
//
// Layer: baseline codec implementing internal/codec.ErrorBounded; priced
// in end-to-end projections by netmodel.PaperCodecRates under the name
// "cusz-like".
//
// Key types: Codec (New(eb, predictor)), Predictor (Lorenzo1D/Lorenzo2D),
// and ResidualEntropy, the instrumentation behind Fig. 4's raw-vs-residual
// bits-per-symbol comparison.
package cuszlike
