package cuszlike

import (
	"math"
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/tensor"
)

func TestRoundTripErrorBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := make([]float32, 2048)
	rng.FillNormal(src, 0, 1)
	for _, pred := range []Predictor{Lorenzo1D, Lorenzo2D} {
		for _, eb := range []float32{0.001, 0.01, 0.1} {
			c := New(eb, pred)
			recon, _, err := codec.RoundTrip(c, src, 32)
			if err != nil {
				t.Fatal(err)
			}
			if e := quant.MaxError(src, recon); e > eb+1e-5 {
				t.Fatalf("pred %d eb %v: max error %v", pred, eb, e)
			}
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	// Scientific-like smooth field: Lorenzo prediction should shine.
	n := 8192
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(math.Sin(float64(i) * 0.01))
	}
	c := New(0.001, Lorenzo1D)
	_, ratio, err := codec.RoundTrip(c, src, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 8 {
		t.Fatalf("smooth data should compress > 8x, got %.2f", ratio)
	}
}

func TestFalsePredictionRaisesEntropy(t *testing.T) {
	// Observation ❶: a batch of repeated-but-shuffled embedding rows has
	// LOWER raw-code entropy than residual entropy under Lorenzo.
	rng := tensor.NewRNG(2)
	dim := 16
	vocab := make([][]float32, 8)
	for v := range vocab {
		vocab[v] = make([]float32, dim)
		rng.FillNormal(vocab[v], 0, 0.5)
	}
	var src []float32
	for r := 0; r < 256; r++ {
		src = append(src, vocab[rng.Intn(8)]...)
	}
	c := New(0.01, Lorenzo2D)
	rawBits, residBits, err := c.ResidualEntropy(src, dim)
	if err != nil {
		t.Fatal(err)
	}
	if residBits <= rawBits {
		t.Fatalf("expected false prediction: raw %.2f bits vs resid %.2f bits",
			rawBits, residBits)
	}
}

func TestIdenticalRowsBecomeDistinctResiduals(t *testing.T) {
	// Fig. 4: identical vectors with different upstream neighbors yield
	// different residual rows under the 2-D stencil.
	dim := 4
	rowA := []float32{0.5, -0.5, 0.25, 0.75}
	rowB := []float32{0.1, 0.9, -0.3, 0.4}
	// Batch: A, A (same neighbor) then B, A (different neighbor).
	src := append(append(append(append([]float32{}, rowA...), rowA...), rowB...), rowA...)
	c := New(0.01, Lorenzo2D)
	q := quant.New(c.EB)
	codes := make([]int32, len(src))
	q.Quantize(codes, src)
	res := predictResiduals(codes, dim, Lorenzo2D)
	// Residual of row 1 (A preceded by A) vs row 3 (A preceded by B).
	same := true
	for j := 0; j < dim; j++ {
		if res[1*dim+j] != res[3*dim+j] {
			same = false
		}
	}
	if same {
		t.Fatal("identical rows should produce distinct residuals given different neighbors")
	}
}

func TestPredictInverses(t *testing.T) {
	rng := tensor.NewRNG(3)
	codes := make([]int32, 256)
	for i := range codes {
		codes[i] = int32(rng.Intn(100) - 50)
	}
	for _, pred := range []Predictor{Lorenzo1D, Lorenzo2D} {
		res := predictResiduals(codes, 16, pred)
		back := unpredict(res, 16, pred)
		for i := range codes {
			if back[i] != codes[i] {
				t.Fatalf("pred %d: unpredict mismatch at %d", pred, i)
			}
		}
	}
}

func TestErrorBoundedInterface(t *testing.T) {
	c := New(0.01, Lorenzo1D)
	c.SetErrorBound(0.05)
	if c.ErrorBound() != 0.05 {
		t.Fatal("SetErrorBound did not stick")
	}
	if c.Name() != "cusz-like" || New(0.01, Lorenzo2D).Name() != "cusz-like-2d" {
		t.Fatal("names wrong")
	}
	if !c.Lossy() {
		t.Fatal("must be lossy")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, _, err := New(0.01, Lorenzo1D).Decompress([]byte{1}); err == nil {
		t.Fatal("short frame should error")
	}
}

func TestCompressShapeErrors(t *testing.T) {
	if _, err := New(0.01, Lorenzo1D).Compress([]float32{1, 2, 3}, 2); err == nil {
		t.Fatal("bad shape should error")
	}
}
