package cuszlike

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dlrmcomp/internal/huffman"
	"dlrmcomp/internal/quant"
)

var errCorrupt = errors.New("cuszlike: corrupt frame")

// Predictor selects the prediction stencil.
type Predictor int

const (
	// Lorenzo1D predicts each code from its predecessor in the flattened
	// stream.
	Lorenzo1D Predictor = iota
	// Lorenzo2D predicts code (i,j) from (i,j-1), (i-1,j), (i-1,j-1) — the
	// 2×2 stencil of Fig. 4.
	Lorenzo2D
)

// Codec is the cuSZ-like compressor.
type Codec struct {
	EB   float32
	Pred Predictor
}

// New returns a cuSZ-like codec with the given error bound and predictor.
func New(eb float32, pred Predictor) *Codec {
	return &Codec{EB: eb, Pred: pred}
}

// Name implements codec.Codec.
func (c *Codec) Name() string {
	if c.Pred == Lorenzo2D {
		return "cusz-like-2d"
	}
	return "cusz-like"
}

// Lossy implements codec.Codec.
func (c *Codec) Lossy() bool { return true }

// SetErrorBound implements codec.ErrorBounded.
func (c *Codec) SetErrorBound(eb float32) { c.EB = eb }

// ErrorBound implements codec.ErrorBounded.
func (c *Codec) ErrorBound() float32 { return c.EB }

// predict converts codes to residuals in place semantics (returns new slice).
func predictResiduals(codes []int32, dim int, pred Predictor) []int32 {
	res := make([]int32, len(codes))
	if pred == Lorenzo1D {
		prev := int32(0)
		for i, c := range codes {
			res[i] = c - prev
			prev = c
		}
		return res
	}
	rows := len(codes) / dim
	at := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return codes[i*dim+j]
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < dim; j++ {
			p := at(i, j-1) + at(i-1, j) - at(i-1, j-1)
			res[i*dim+j] = codes[i*dim+j] - p
		}
	}
	return res
}

// unpredict inverts predictResiduals.
func unpredict(res []int32, dim int, pred Predictor) []int32 {
	codes := make([]int32, len(res))
	if pred == Lorenzo1D {
		prev := int32(0)
		for i, r := range res {
			prev += r
			codes[i] = prev
		}
		return codes
	}
	rows := len(res) / dim
	at := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return codes[i*dim+j]
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < dim; j++ {
			p := at(i, j-1) + at(i-1, j) - at(i-1, j-1)
			codes[i*dim+j] = res[i*dim+j] + p
		}
	}
	return codes
}

// Compress implements codec.Codec.
func (c *Codec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%dim != 0 {
		return nil, fmt.Errorf("cuszlike: bad shape len=%d dim=%d", len(src), dim)
	}
	q := quant.New(c.EB)
	codes := make([]int32, len(src))
	q.Quantize(codes, src)
	res := predictResiduals(codes, dim, c.Pred)
	payload := huffman.Encode(quant.ZigZagSlice(res))

	out := make([]byte, 13, 13+len(payload))
	binary.LittleEndian.PutUint32(out[0:], math.Float32bits(c.EB))
	binary.LittleEndian.PutUint32(out[4:], uint32(dim))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(src)))
	out[12] = byte(c.Pred)
	return append(out, payload...), nil
}

// Decompress implements codec.Codec.
func (c *Codec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 13 {
		return nil, 0, errCorrupt
	}
	eb := math.Float32frombits(binary.LittleEndian.Uint32(frame[0:]))
	dim := int(binary.LittleEndian.Uint32(frame[4:]))
	n := int(binary.LittleEndian.Uint32(frame[8:]))
	pred := Predictor(frame[12])
	if eb <= 0 || dim <= 0 || n%dim != 0 {
		return nil, 0, errCorrupt
	}
	syms, err := huffman.Decode(frame[13:])
	if err != nil {
		return nil, 0, err
	}
	if len(syms) != n {
		return nil, 0, errCorrupt
	}
	codes := unpredict(quant.UnZigZagSlice(syms), dim, pred)
	out := make([]float32, n)
	quant.New(eb).Dequantize(out, codes)
	return out, dim, nil
}

// ResidualEntropy returns the empirical zeroth-order entropy (bits/symbol)
// of the predictor residuals and of the raw codes for a batch — the
// quantitative form of the false-prediction observation.
func (c *Codec) ResidualEntropy(src []float32, dim int) (rawBits, residBits float64, err error) {
	if dim <= 0 || len(src)%dim != 0 {
		return 0, 0, fmt.Errorf("cuszlike: bad shape")
	}
	q := quant.New(c.EB)
	codes := make([]int32, len(src))
	q.Quantize(codes, src)
	res := predictResiduals(codes, dim, c.Pred)
	return entropy(codes), entropy(res), nil
}

func entropy(codes []int32) float64 {
	if len(codes) == 0 {
		return 0
	}
	freq := make(map[int32]int)
	for _, c := range codes {
		freq[c]++
	}
	var h float64
	n := float64(len(codes))
	for _, f := range freq {
		p := float64(f) / n
		h -= p * math.Log2(p)
	}
	return h
}
