// Package interaction implements DLRM's dot-product feature-interaction
// layer: given the bottom-MLP output and the embedding lookups (all of the
// same dimension d), it computes every pairwise dot product among the
// feature vectors and concatenates those with the dense vector, producing
// the input of the top MLP.
//
// Layer: model substrate between the MLPs and the embedding lookups inside
// internal/model (and each data-parallel replica in internal/dist). Its
// FLOPs are folded into the "mlp" sim-time bucket by the trainer's
// stepFlops model rather than charged separately.
//
// Key types: DotInteraction (NewDotInteraction(features, dim);
// Forward/Backward follow the nn layer contract — Backward returns the
// gradient w.r.t. the dense vector and every lookup, which is what the
// backward all-to-all routes to the table owners).
package interaction
