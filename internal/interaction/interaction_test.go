package interaction

import (
	"math"
	"testing"

	"dlrmcomp/internal/tensor"
)

func TestOutDim(t *testing.T) {
	di := NewDotInteraction(26, 16)
	// F = 27 features -> 27*26/2 = 351 pairs + 16 dense
	if di.OutDim() != 16+351 {
		t.Fatalf("OutDim = %d", di.OutDim())
	}
}

func TestForwardValues(t *testing.T) {
	di := NewDotInteraction(2, 2)
	dense := tensor.FromSlice(1, 2, []float32{1, 2})
	s1 := tensor.FromSlice(1, 2, []float32{3, 4})
	s2 := tensor.FromSlice(1, 2, []float32{5, 6})
	out := di.Forward(dense, []*tensor.Matrix{s1, s2})
	// layout: [dense(2) | <s1,dense> | <s2,dense> | <s2,s1>]
	want := []float32{1, 2, 1*3 + 2*4, 1*5 + 2*6, 3*5 + 4*6}
	if out.Cols != len(want) {
		t.Fatalf("cols = %d, want %d", out.Cols, len(want))
	}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

// numeric gradient check of Backward via central differences.
func TestBackwardGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	const n, dim, numSparse = 3, 4, 3
	di := NewDotInteraction(numSparse, dim)
	dense := tensor.NewMatrix(n, dim)
	rng.FillNormal(dense.Data, 0, 1)
	sparse := make([]*tensor.Matrix, numSparse)
	for t2 := range sparse {
		sparse[t2] = tensor.NewMatrix(n, dim)
		rng.FillNormal(sparse[t2].Data, 0, 1)
	}
	// Random upstream gradient; scalar loss = sum(dOut * out).
	dOut := tensor.NewMatrix(n, di.OutDim())
	rng.FillNormal(dOut.Data, 0, 1)

	loss := func() float64 {
		out := di.Forward(dense, sparse)
		var s float64
		for i, v := range out.Data {
			s += float64(v) * float64(dOut.Data[i])
		}
		return s
	}

	di.Forward(dense, sparse)
	dDense, dSparse := di.Backward(dOut)

	const h = 1e-3
	check := func(x *tensor.Matrix, g *tensor.Matrix, name string) {
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + h
			lp := loss()
			x.Data[i] = orig - h
			lm := loss()
			x.Data[i] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-float64(g.Data[i])) > 1e-2*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", name, i, g.Data[i], numeric)
			}
		}
	}
	check(dense, dDense, "dense")
	for t2 := range sparse {
		check(sparse[t2], dSparse[t2], "sparse")
	}
}

func TestForwardShapePanics(t *testing.T) {
	di := NewDotInteraction(2, 4)
	dense := tensor.NewMatrix(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with wrong sparse count")
		}
	}()
	di.Forward(dense, []*tensor.Matrix{tensor.NewMatrix(2, 4)})
}

func TestInteractionSymmetry(t *testing.T) {
	// Identical embedding vectors must yield identical interaction rows.
	di := NewDotInteraction(2, 3)
	dense := tensor.FromSlice(2, 3, []float32{1, 2, 3, 1, 2, 3})
	s1 := tensor.FromSlice(2, 3, []float32{4, 5, 6, 4, 5, 6})
	s2 := tensor.FromSlice(2, 3, []float32{7, 8, 9, 7, 8, 9})
	out := di.Forward(dense, []*tensor.Matrix{s1, s2})
	for j := 0; j < out.Cols; j++ {
		if out.At(0, j) != out.At(1, j) {
			t.Fatal("identical inputs produced different interactions")
		}
	}
}
