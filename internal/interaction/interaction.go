package interaction

import (
	"fmt"

	"dlrmcomp/internal/tensor"
)

// DotInteraction performs the pairwise-dot feature interaction.
// With F = 1 + numSparse feature vectors of dim d per sample, the output per
// sample is [dense (d) | upper-triangle dots (F*(F-1)/2)].
type DotInteraction struct {
	NumSparse int
	Dim       int

	// cached inputs for backward
	dense  *tensor.Matrix
	sparse []*tensor.Matrix

	// Reused output buffers (layer-owned scratch, valid until the next
	// Forward/Backward — the same contract as nn.Linear).
	out     *tensor.Matrix
	dDense  *tensor.Matrix
	dSparse []*tensor.Matrix
}

// NewDotInteraction builds the layer for numSparse embedding features of
// dimension dim.
func NewDotInteraction(numSparse, dim int) *DotInteraction {
	return &DotInteraction{NumSparse: numSparse, Dim: dim}
}

// OutDim returns the per-sample output width.
func (di *DotInteraction) OutDim() int {
	f := di.NumSparse + 1
	return di.Dim + f*(f-1)/2
}

// feature returns feature vector k of sample i (k = 0 is dense).
func (di *DotInteraction) feature(k, i int) []float32 {
	if k == 0 {
		return di.dense.Row(i)
	}
	return di.sparse[k-1].Row(i)
}

// Forward computes the interaction for a batch. dense is [n, Dim]; each
// sparse[t] is [n, Dim].
func (di *DotInteraction) Forward(dense *tensor.Matrix, sparse []*tensor.Matrix) *tensor.Matrix {
	if len(sparse) != di.NumSparse {
		panic(fmt.Sprintf("interaction: want %d sparse features, got %d", di.NumSparse, len(sparse)))
	}
	if dense.Cols != di.Dim {
		panic("interaction: dense dim mismatch")
	}
	n := dense.Rows
	for t, s := range sparse {
		if s.Rows != n || s.Cols != di.Dim {
			panic(fmt.Sprintf("interaction: sparse[%d] shape %dx%d", t, s.Rows, s.Cols))
		}
	}
	di.dense = dense
	di.sparse = sparse

	di.out = di.out.Resize(n, di.OutDim())
	out := di.out
	f := di.NumSparse + 1
	for i := 0; i < n; i++ {
		row := out.Row(i)
		copy(row[:di.Dim], dense.Row(i))
		pos := di.Dim
		for a := 1; a < f; a++ {
			for b := 0; b < a; b++ {
				row[pos] = tensor.Dot(di.feature(a, i), di.feature(b, i))
				pos++
			}
		}
	}
	return out
}

// Backward maps dOut back to gradients for the dense input and each sparse
// input. Each dot term z_ab = <v_a, v_b> contributes dz*v_b to grad(v_a) and
// dz*v_a to grad(v_b); the copied dense part passes its gradient through.
func (di *DotInteraction) Backward(dOut *tensor.Matrix) (dDense *tensor.Matrix, dSparse []*tensor.Matrix) {
	if di.dense == nil {
		panic("interaction: Backward before Forward")
	}
	n := di.dense.Rows
	if dOut.Rows != n || dOut.Cols != di.OutDim() {
		panic("interaction: Backward shape mismatch")
	}
	// dDense needs no zeroing: the pass-through copy below fully overwrites
	// each row before any dot gradient accumulates into it.
	di.dDense = di.dDense.Resize(n, di.Dim)
	dDense = di.dDense
	if di.dSparse == nil {
		di.dSparse = make([]*tensor.Matrix, di.NumSparse)
	}
	for t := range di.dSparse {
		di.dSparse[t] = di.dSparse[t].Resize(n, di.Dim)
		di.dSparse[t].Zero()
	}
	dSparse = di.dSparse
	gradOf := func(k, i int) []float32 {
		if k == 0 {
			return dDense.Row(i)
		}
		return dSparse[k-1].Row(i)
	}
	f := di.NumSparse + 1
	for i := 0; i < n; i++ {
		row := dOut.Row(i)
		// Pass-through for the copied dense features.
		copy(dDense.Row(i), row[:di.Dim])
		pos := di.Dim
		for a := 1; a < f; a++ {
			for b := 0; b < a; b++ {
				dz := row[pos]
				pos++
				if dz == 0 {
					continue
				}
				va, vb := di.feature(a, i), di.feature(b, i)
				tensor.Axpy(dz, vb, gradOf(a, i))
				tensor.Axpy(dz, va, gradOf(b, i))
			}
		}
	}
	return dDense, dSparse
}
