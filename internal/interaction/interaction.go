package interaction

import (
	"fmt"

	"dlrmcomp/internal/tensor"
)

// DotInteraction performs the pairwise-dot feature interaction.
// With F = 1 + numSparse feature vectors of dim d per sample, the output per
// sample is [dense (d) | upper-triangle dots (F*(F-1)/2)].
type DotInteraction struct {
	NumSparse int
	Dim       int

	// Workers is the sample-parallel width for Forward/Backward
	// (0 = GOMAXPROCS, 1 = single-threaded). Samples are independent, so
	// results are bitwise identical at any width; the single-threaded path
	// performs no allocation.
	Workers int

	// cached inputs for backward
	dense  *tensor.Matrix
	sparse []*tensor.Matrix
	dOut   *tensor.Matrix

	// featData[k] is the backing slice of feature matrix k (0 = dense), and
	// gradData[k] the matching gradient slice — read-only span tables built
	// once per call so the per-sample hot loops index flat arrays instead of
	// chasing method calls. Layer-owned, reused across calls.
	featData [][]float32
	gradData [][]float32

	// Reused output buffers (layer-owned scratch, valid until the next
	// Forward/Backward — the same contract as nn.Linear).
	out     *tensor.Matrix
	dDense  *tensor.Matrix
	dSparse []*tensor.Matrix
}

// NewDotInteraction builds the layer for numSparse embedding features of
// dimension dim.
func NewDotInteraction(numSparse, dim int) *DotInteraction {
	return &DotInteraction{NumSparse: numSparse, Dim: dim}
}

// OutDim returns the per-sample output width.
func (di *DotInteraction) OutDim() int {
	f := di.NumSparse + 1
	return di.Dim + f*(f-1)/2
}

// Forward computes the interaction for a batch. dense is [n, Dim]; each
// sparse[t] is [n, Dim].
func (di *DotInteraction) Forward(dense *tensor.Matrix, sparse []*tensor.Matrix) *tensor.Matrix {
	if len(sparse) != di.NumSparse {
		panic(fmt.Sprintf("interaction: want %d sparse features, got %d", di.NumSparse, len(sparse)))
	}
	if dense.Cols != di.Dim {
		panic("interaction: dense dim mismatch")
	}
	n := dense.Rows
	for t, s := range sparse {
		if s.Rows != n || s.Cols != di.Dim {
			panic(fmt.Sprintf("interaction: sparse[%d] shape %dx%d", t, s.Rows, s.Cols))
		}
	}
	di.dense = dense
	di.sparse = sparse

	f := di.NumSparse + 1
	if cap(di.featData) < f {
		di.featData = make([][]float32, f)
	}
	feats := di.featData[:f]
	feats[0] = dense.Data
	for t, s := range sparse {
		feats[t+1] = s.Data
	}

	di.out = di.out.Resize(n, di.OutDim())
	if w := tensor.EffectiveWorkers(di.Workers); w <= 1 {
		di.forwardSpan(0, n)
	} else {
		tensor.ParallelSpans(w, n, func(lo, hi int) { di.forwardSpan(lo, hi) })
	}
	return di.out
}

// forwardSpan computes output rows [lo, hi). Each sample reads only its own
// slice of every feature matrix and writes only its own output row, so spans
// are safe to run concurrently and the result is independent of the split.
func (di *DotInteraction) forwardSpan(lo, hi int) {
	d, outDim, f := di.Dim, di.OutDim(), di.NumSparse+1
	feats, out := di.featData[:f], di.out
	for i := lo; i < hi; i++ {
		row := out.Data[i*outDim : (i+1)*outDim]
		off := i * d
		copy(row[:d], feats[0][off:off+d])
		pos := d
		for a := 1; a < f; a++ {
			va := feats[a][off : off+d]
			for b := 0; b < a; b++ {
				vb := feats[b][off : off+d]
				// Inlined dot: single accumulator, ascending p — the exact
				// tensor.Dot accumulation order.
				var s float32
				for p, v := range va {
					s += v * vb[p]
				}
				row[pos] = s
				pos++
			}
		}
	}
}

// Backward maps dOut back to gradients for the dense input and each sparse
// input. Each dot term z_ab = <v_a, v_b> contributes dz*v_b to grad(v_a) and
// dz*v_a to grad(v_b); the copied dense part passes its gradient through.
func (di *DotInteraction) Backward(dOut *tensor.Matrix) (dDense *tensor.Matrix, dSparse []*tensor.Matrix) {
	if di.dense == nil {
		panic("interaction: Backward before Forward")
	}
	n := di.dense.Rows
	if dOut.Rows != n || dOut.Cols != di.OutDim() {
		panic("interaction: Backward shape mismatch")
	}
	// dDense needs no upfront zeroing: the pass-through copy in backwardSpan
	// fully overwrites each row before any dot gradient accumulates into it,
	// and each dSparse row is cleared by the one span that owns its sample.
	di.dDense = di.dDense.Resize(n, di.Dim)
	dDense = di.dDense
	if di.dSparse == nil {
		di.dSparse = make([]*tensor.Matrix, di.NumSparse)
	}
	for t := range di.dSparse {
		di.dSparse[t] = di.dSparse[t].Resize(n, di.Dim)
	}
	dSparse = di.dSparse

	f := di.NumSparse + 1
	if cap(di.gradData) < f {
		di.gradData = make([][]float32, f)
	}
	grads := di.gradData[:f]
	grads[0] = dDense.Data
	for t, g := range dSparse {
		grads[t+1] = g.Data
	}

	di.dOut = dOut
	if w := tensor.EffectiveWorkers(di.Workers); w <= 1 {
		di.backwardSpan(0, n)
	} else {
		tensor.ParallelSpans(w, n, func(lo, hi int) { di.backwardSpan(lo, hi) })
	}
	return dDense, dSparse
}

// backwardSpan computes gradient rows for samples [lo, hi) (same isolation
// argument as forwardSpan: every slice touched is offset by the sample index).
func (di *DotInteraction) backwardSpan(lo, hi int) {
	d, outDim, f := di.Dim, di.OutDim(), di.NumSparse+1
	feats, grads, dOut := di.featData[:f], di.gradData[:f], di.dOut
	for i := lo; i < hi; i++ {
		row := dOut.Data[i*outDim : (i+1)*outDim]
		off := i * d
		// Pass-through for the copied dense features; clear the sparse
		// gradient rows this sample owns.
		copy(grads[0][off:off+d], row[:d])
		for t := 1; t < f; t++ {
			clear(grads[t][off : off+d])
		}
		pos := d
		for a := 1; a < f; a++ {
			va := feats[a][off : off+d]
			ga := grads[a][off : off+d]
			for b := 0; b < a; b++ {
				dz := row[pos]
				pos++
				if dz == 0 {
					continue
				}
				vb := feats[b][off : off+d]
				gb := grads[b][off : off+d]
				// Fused pair of axpys. ga and gb are disjoint rows (a != b),
				// so interleaving the two updates preserves each element's
				// accumulation order exactly.
				for p, v := range va {
					ga[p] += dz * vb[p]
					gb[p] += dz * v
				}
			}
		}
	}
}
