// Package codec defines the interface every communication compressor in the
// repository implements — the paper's hybrid compressor, the low-precision
// baselines, and the SZ/ZFP/LZ4-family comparators. A codec compresses a
// row-major batch of float32 embedding vectors into a self-contained frame.
//
// Layer: the contract between the compressor implementations (internal/
// hybrid, lowprec, cuszlike, fzgpulike, lz4like) and their consumers (the
// distributed trainer's forward all-to-all, the buffer/pipeline
// optimizations, and the experiment drivers). The package holds no
// algorithms and charges no sim time — implementations are priced by
// netmodel.CodecRates under their Name().
//
// Key types: Codec (Compress/Decompress/Name — Compress takes the batch
// and its row dimension, Decompress returns values and dimension, both
// pure so instances may be shared across rank goroutines), ErrorBounded
// (a Codec with a tunable absolute error bound, the hook the adaptive
// Controller drives per table per iteration), and BufferedCodec — the
// optional allocation-free steady-state path (CompressAppend into a
// caller-owned buffer, DecompressInto a caller-sized destination,
// frame/value-identical to the allocating methods). The package-level
// CompressAppend/DecompressInto helpers route through it when available
// and fall back to Compress/Decompress otherwise.
package codec
