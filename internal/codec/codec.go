package codec

import "fmt"

// Codec compresses batches of embedding vectors (row-major float32 with a
// fixed row length dim).
type Codec interface {
	// Name identifies the codec in experiment output (e.g. "ours-hybrid").
	Name() string
	// Lossy reports whether reconstruction may differ from the input.
	Lossy() bool
	// Compress encodes the batch into a self-contained frame.
	Compress(src []float32, dim int) ([]byte, error)
	// Decompress reconstructs the batch and its row length.
	Decompress(frame []byte) (vals []float32, dim int, err error)
}

// ErrorBounded is implemented by codecs with a tunable absolute error bound
// (the knob the adaptive strategy drives).
type ErrorBounded interface {
	Codec
	// SetErrorBound updates the bound used by subsequent Compress calls.
	SetErrorBound(eb float32)
	// ErrorBound returns the current bound.
	ErrorBound() float32
}

// Ratio returns the compression ratio achieved by frame for a batch of n
// float32 values (original bytes / compressed bytes).
func Ratio(n int, frame []byte) float64 {
	if len(frame) == 0 {
		return 0
	}
	return float64(n*4) / float64(len(frame))
}

// RoundTrip compresses and immediately decompresses src, returning the
// reconstruction and the achieved ratio. Used by offline analysis.
func RoundTrip(c Codec, src []float32, dim int) (recon []float32, ratio float64, err error) {
	frame, err := c.Compress(src, dim)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: compress: %w", c.Name(), err)
	}
	recon, gotDim, err := c.Decompress(frame)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: decompress: %w", c.Name(), err)
	}
	if gotDim != dim {
		return nil, 0, fmt.Errorf("%s: round trip dim %d != %d", c.Name(), gotDim, dim)
	}
	if len(recon) != len(src) {
		return nil, 0, fmt.Errorf("%s: round trip length %d != %d", c.Name(), len(recon), len(src))
	}
	return recon, Ratio(len(src), frame), nil
}
