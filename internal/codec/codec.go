package codec

import "fmt"

// Codec compresses batches of embedding vectors (row-major float32 with a
// fixed row length dim).
type Codec interface {
	// Name identifies the codec in experiment output (e.g. "ours-hybrid").
	Name() string
	// Lossy reports whether reconstruction may differ from the input.
	Lossy() bool
	// Compress encodes the batch into a self-contained frame.
	Compress(src []float32, dim int) ([]byte, error)
	// Decompress reconstructs the batch and its row length.
	Decompress(frame []byte) (vals []float32, dim int, err error)
}

// ErrorBounded is implemented by codecs with a tunable absolute error bound
// (the knob the adaptive strategy drives).
type ErrorBounded interface {
	Codec
	// SetErrorBound updates the bound used by subsequent Compress calls.
	SetErrorBound(eb float32)
	// ErrorBound returns the current bound.
	ErrorBound() float32
}

// BufferedCodec is optionally implemented by codecs with an allocation-free
// steady-state path: compression appends to a caller-owned buffer and
// decompression writes into a caller-sized destination. Implementations must
// be frame-compatible with their own Compress/Decompress — CompressAppend
// appends exactly the bytes Compress would return, and DecompressInto
// reconstructs exactly the values Decompress would. Both must be safe for
// concurrent use on one instance (as Compress/Decompress are): the trainer
// shares one codec per table across rank goroutines and its intra-rank
// codec workers.
type BufferedCodec interface {
	Codec
	// CompressAppend encodes the batch and appends the frame to dst,
	// returning the grown buffer.
	CompressAppend(dst []byte, src []float32, dim int) ([]byte, error)
	// DecompressInto reconstructs the batch into dst, whose length must
	// equal the frame's value count, and returns the row length dim.
	DecompressInto(dst []float32, frame []byte) (int, error)
}

// CompressAppend encodes src through c's buffered path when it has one, and
// otherwise falls back to Compress plus an append. The appended bytes are
// identical either way; only the allocation behavior differs.
func CompressAppend(c Codec, dst []byte, src []float32, dim int) ([]byte, error) {
	if bc, ok := c.(BufferedCodec); ok {
		return bc.CompressAppend(dst, src, dim)
	}
	frame, err := c.Compress(src, dim)
	if err != nil {
		return nil, err
	}
	return append(dst, frame...), nil
}

// DecompressInto reconstructs frame through c's buffered path when it has
// one, falling back to Decompress plus a copy. dst must hold exactly the
// frame's value count; the returned int is the row length dim.
func DecompressInto(c Codec, dst []float32, frame []byte) (int, error) {
	if bc, ok := c.(BufferedCodec); ok {
		return bc.DecompressInto(dst, frame)
	}
	vals, dim, err := c.Decompress(frame)
	if err != nil {
		return 0, err
	}
	if len(vals) != len(dst) {
		return 0, fmt.Errorf("%s: decompressed %d values into a %d-value destination", c.Name(), len(vals), len(dst))
	}
	copy(dst, vals)
	return dim, nil
}

// Ratio returns the compression ratio achieved by frame for a batch of n
// float32 values (original bytes / compressed bytes).
func Ratio(n int, frame []byte) float64 {
	if len(frame) == 0 {
		return 0
	}
	return float64(n*4) / float64(len(frame))
}

// RoundTrip compresses and immediately decompresses src, returning the
// reconstruction and the achieved ratio. Used by offline analysis.
func RoundTrip(c Codec, src []float32, dim int) (recon []float32, ratio float64, err error) {
	frame, err := c.Compress(src, dim)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: compress: %w", c.Name(), err)
	}
	recon, gotDim, err := c.Decompress(frame)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: decompress: %w", c.Name(), err)
	}
	if gotDim != dim {
		return nil, 0, fmt.Errorf("%s: round trip dim %d != %d", c.Name(), gotDim, dim)
	}
	if len(recon) != len(src) {
		return nil, 0, fmt.Errorf("%s: round trip length %d != %d", c.Name(), len(recon), len(src))
	}
	return recon, Ratio(len(src), frame), nil
}
