package buffopt

import (
	"testing"

	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/tensor"
)

func makeChunks(rng *tensor.RNG, n, rows, dim int) []Chunk {
	chunks := make([]Chunk, n)
	for i := range chunks {
		vals := make([]float32, rows*dim)
		rng.FillNormal(vals, 0, 0.2)
		chunks[i] = Chunk{Vals: vals, Dim: dim}
	}
	return chunks
}

func TestCompressBatchRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(rng, 8, 64, 16)
	res, err := CompressBatch(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Offsets) != 8 {
		t.Fatalf("offsets %d", len(res.Offsets))
	}
	back, err := DecompressBatch(c, res)
	if err != nil {
		t.Fatal(err)
	}
	for i, ch := range back {
		if ch.Dim != 16 || len(ch.Vals) != len(chunks[i].Vals) {
			t.Fatalf("chunk %d shape wrong", i)
		}
		for j := range ch.Vals {
			d := ch.Vals[j] - chunks[i].Vals[j]
			if d > 0.011 || d < -0.011 {
				t.Fatalf("chunk %d val %d error %v", i, j, d)
			}
		}
	}
}

func TestBatchBufferIsContiguousAndComplete(t *testing.T) {
	rng := tensor.NewRNG(2)
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(rng, 16, 32, 8)
	res, err := CompressBatch(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Spans must tile the buffer exactly (no gaps, no overlaps).
	covered := make([]bool, len(res.Buf))
	for i := range res.Offsets {
		for p := res.Offsets[i]; p < res.Offsets[i]+res.Lengths[i]; p++ {
			if covered[p] {
				t.Fatal("overlapping spans")
			}
			covered[p] = true
		}
	}
	for p, c := range covered {
		if !c {
			t.Fatalf("gap at byte %d", p)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(rng, 4, 16, 4)
	res, err := CompressBatch(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	wire := res.Serialize()
	back, err := Deserialize(wire)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecompressBatch(c, back)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 4 {
		t.Fatalf("decoded %d chunks", len(decoded))
	}
}

func TestDeserializeCorrupt(t *testing.T) {
	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil should error")
	}
	if _, err := Deserialize([]byte{1, 200, 200}); err == nil {
		t.Fatal("truncated directory should error")
	}
	if _, err := Deserialize([]byte{1, 0, 50, 1, 2}); err == nil {
		t.Fatal("span beyond buffer should error")
	}
}

func TestEmptyBatch(t *testing.T) {
	c := hybrid.New(0.01, hybrid.Auto)
	res, err := CompressBatch(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecompressBatch(c, res)
	if err != nil || len(back) != 0 {
		t.Fatal("empty batch should round trip")
	}
}

func TestLaunchModelSpeedupGrowsWithChunks(t *testing.T) {
	m := DefaultLaunchModel()
	total := int64(16 << 20)
	prev := 0.0
	for _, k := range []int{2, 4, 8, 16} {
		s := m.Speedup(total, k)
		if s <= prev {
			t.Fatalf("speedup should grow with chunk count: %v at k=%d", s, k)
		}
		prev = s
	}
	if prev < 1.2 || prev > 4 {
		t.Fatalf("16-chunk speedup %v outside the paper's plausible band (max 2.04x)", prev)
	}
}

func TestLaunchModelSmallBlocksBenefitMore(t *testing.T) {
	// §IV-D: 8MB blocks benefit ~1.86x more than 64MB blocks.
	m := DefaultLaunchModel()
	small := m.Speedup(8<<20, 8)
	large := m.Speedup(64<<20, 8)
	if small <= large {
		t.Fatalf("small blocks should benefit more: 8MB %.2fx vs 64MB %.2fx", small, large)
	}
}

func TestLaunchModelSingleChunkNearNeutral(t *testing.T) {
	m := DefaultLaunchModel()
	s := m.Speedup(64<<20, 1)
	if s < 1.0 || s > 1.5 {
		t.Fatalf("single huge chunk should be near-neutral, got %.2fx", s)
	}
}

func TestChunkedTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultLaunchModel().ChunkedTime(100, 0)
}
