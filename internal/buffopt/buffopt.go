package buffopt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/netmodel"
)

var errCorrupt = errors.New("buffopt: corrupt batch frame")

// Chunk is one tensor to compress (row-major, fixed row length Dim).
type Chunk struct {
	Vals []float32
	Dim  int
}

// BatchResult is the contiguous send buffer plus the chunk directory.
type BatchResult struct {
	Buf     []byte
	Offsets []uint32 // chunk i occupies Buf[Offsets[i]:Offsets[i]+Lengths[i]]
	Lengths []uint32
}

// CompressBatch compresses all chunks concurrently into one contiguous
// buffer. Each worker reserves its span with an atomic add, mirroring the
// paper's single-kernel design: no per-chunk output allocations survive, and
// the result is ready to hand to the transport as-is.
func CompressBatch(c codec.Codec, chunks []Chunk) (*BatchResult, error) {
	frames := make([][]byte, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch Chunk) {
			defer wg.Done()
			frames[i], errs[i] = c.Compress(ch.Vals, ch.Dim)
		}(i, ch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var total uint32
	for _, f := range frames {
		total += uint32(len(f))
	}
	res := &BatchResult{
		Buf:     make([]byte, total),
		Offsets: make([]uint32, len(chunks)),
		Lengths: make([]uint32, len(chunks)),
	}
	var cursor atomic.Uint32
	var wg2 sync.WaitGroup
	for i, f := range frames {
		wg2.Add(1)
		go func(i int, f []byte) {
			defer wg2.Done()
			off := cursor.Add(uint32(len(f))) - uint32(len(f))
			copy(res.Buf[off:], f)
			res.Offsets[i] = off
			res.Lengths[i] = uint32(len(f))
		}(i, f)
	}
	wg2.Wait()
	return res, nil
}

// Serialize flattens the result (directory + buffer) for the wire.
func (r *BatchResult) Serialize() []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(r.Offsets)))
	out = append(out, tmp[:n]...)
	for i := range r.Offsets {
		n = binary.PutUvarint(tmp[:], uint64(r.Offsets[i]))
		out = append(out, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(r.Lengths[i]))
		out = append(out, tmp[:n]...)
	}
	return append(out, r.Buf...)
}

// Deserialize reverses Serialize.
func Deserialize(data []byte) (*BatchResult, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errCorrupt
	}
	data = data[n:]
	res := &BatchResult{Offsets: make([]uint32, count), Lengths: make([]uint32, count)}
	for i := uint64(0); i < count; i++ {
		off, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorrupt
		}
		data = data[n:]
		l, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, errCorrupt
		}
		data = data[n:]
		res.Offsets[i] = uint32(off)
		res.Lengths[i] = uint32(l)
	}
	res.Buf = data
	for i := range res.Offsets {
		if int(res.Offsets[i])+int(res.Lengths[i]) > len(res.Buf) {
			return nil, errCorrupt
		}
	}
	return res, nil
}

// DecompressBatch decodes every chunk concurrently (the parallel
// decompression of Fig. 7 bottom).
func DecompressBatch(c codec.Codec, r *BatchResult) ([]Chunk, error) {
	out := make([]Chunk, len(r.Offsets))
	errs := make([]error, len(r.Offsets))
	var wg sync.WaitGroup
	for i := range r.Offsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frame := r.Buf[r.Offsets[i] : r.Offsets[i]+r.Lengths[i]]
			vals, dim, err := c.Decompress(frame)
			out[i] = Chunk{Vals: vals, Dim: dim}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- Analytic launch model (Fig. 15) ---------------------------------------

// LaunchModel captures the GPU execution costs the optimization targets.
type LaunchModel struct {
	// LaunchOverhead is the fixed cost of one kernel launch.
	LaunchOverhead time.Duration
	// Rate is the codec's saturated throughput (bytes/s).
	Rate float64
	// RampBytes controls the utilization ramp: a chunk of b bytes runs at
	// b/(b+RampBytes) of the saturated rate, so small chunks underutilize
	// the GPU and huge chunks approach full speed.
	RampBytes int64
	// MemBandwidth models the extra device-to-device memcpy the unoptimized
	// path pays to pack per-chunk outputs into the send buffer.
	MemBandwidth float64
}

// DefaultLaunchModel calibrates to an A100-class device.
func DefaultLaunchModel() LaunchModel {
	return LaunchModel{
		LaunchOverhead: netmodel.KernelLaunchOverhead,
		Rate:           50e9,
		RampBytes:      512 << 10,
		MemBandwidth:   1.3e12,
	}
}

// chunkTime is the kernel time for one chunk of the given size.
func (m LaunchModel) chunkTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	util := float64(bytes) / float64(bytes+m.RampBytes)
	return time.Duration(float64(bytes) / (m.Rate * util) * float64(time.Second))
}

// ChunkedTime models the unoptimized path: one launch per chunk, chunks run
// sequentially (separate kernels on one stream), plus the packing memcpy.
func (m LaunchModel) ChunkedTime(totalBytes int64, numChunks int) time.Duration {
	if numChunks <= 0 {
		panic(fmt.Sprintf("buffopt: numChunks %d", numChunks))
	}
	per := totalBytes / int64(numChunks)
	var t time.Duration
	for i := 0; i < numChunks; i++ {
		t += m.LaunchOverhead + m.chunkTime(per)
	}
	// Pack compressed outputs into the send buffer (assume ~25% of input
	// volume survives compression; only that is copied).
	t += time.Duration(float64(totalBytes)*0.25/m.MemBandwidth*float64(time.Second)) * 2 // D2D read+write
	return t
}

// SingleLaunchTime models the optimized path: one launch compressing
// everything at (near-)full utilization, writing directly to the send
// buffer — no packing copy.
func (m LaunchModel) SingleLaunchTime(totalBytes int64) time.Duration {
	return m.LaunchOverhead + m.chunkTime(totalBytes)
}

// Speedup returns ChunkedTime / SingleLaunchTime — the y-axis of Fig. 15.
func (m LaunchModel) Speedup(totalBytes int64, numChunks int) float64 {
	return float64(m.ChunkedTime(totalBytes, numChunks)) / float64(m.SingleLaunchTime(totalBytes))
}
