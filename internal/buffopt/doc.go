// Package buffopt implements the paper's buffer optimization (§III-E,
// Fig. 7): instead of launching one compression kernel per destination chunk
// and memcpy-ing each output into the send buffer, all chunks are compressed
// by a single batched launch that reserves its output span with an atomic
// offset counter and writes directly into the send buffer; decompression
// runs the per-chunk kernels concurrently.
//
// Two artifacts live here:
//
//   - CompressBatch/DecompressBatch — a real implementation over any codec:
//     goroutines stand in for kernel blocks, an atomic offset for the GPU
//     atomicAdd.
//   - LaunchModel — the analytic GPU cost model behind Fig. 15: per-kernel
//     launch overhead plus a utilization ramp for small chunks, which is
//     what makes the single-launch design up to ~2× faster on many small
//     chunks and nearly neutral on few huge ones.
//
// Layer: an optimization study on top of internal/codec, driven by the
// fig15 experiment and exported through the facade (dlrmcomp.CompressBatch).
// It charges no sim-time buckets; its timings are real wall-clock
// measurements of the Go implementation plus the analytic LaunchModel.
//
// Key types: Chunk (one tensor in a batched call), BatchResult (contiguous
// compressed buffer + chunk directory), LaunchModel (launch-overhead
// roofline; DefaultLaunchModel returns the calibrated instance).
package buffopt
