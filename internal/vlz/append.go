package vlz

import (
	"encoding/binary"
	"fmt"

	"dlrmcomp/internal/quant"
)

// This file is the buffered twin of vlz.go: AppendEncode/DecodeInto produce
// and consume frames byte-identical to Encode/Decode while reusing every
// scratch structure across calls. The encoder also replaces Encode's
// shift-the-whole-index eviction (O(window) per literal once the window is
// full) with a sequence-numbered hash chain (O(1) amortized): literal rows
// carry a monotonically increasing sequence number, the ring is addressed
// modulo the window, and expired chain entries are skipped by comparing
// against the window floor instead of being rewritten. Match selection order
// (newest matching literal first) and therefore the emitted token stream are
// unchanged — parity with Encode is pinned by tests.

// AppendEncode compresses codes (numRows × dim, row-major) and appends the
// frame to dst, returning the grown buffer. The frame bytes are identical to
// Encode(codes, dim). The encoder's internal workspace is reused across
// calls, so AppendEncode is not safe for concurrent use on one Encoder.
func (e *Encoder) AppendEncode(dst []byte, codes []int32, dim int) ([]byte, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vlz: dim must be positive, got %d", dim)
	}
	if len(codes)%dim != 0 {
		return nil, fmt.Errorf("vlz: %d codes not divisible by dim %d", len(codes), dim)
	}
	numRows := len(codes) / dim
	window := e.Window
	if window <= 0 {
		window = DefaultWindow
	}

	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(dim))
	dst = append(dst, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(numRows))
	dst = append(dst, tmp[:n]...)

	// ring[s%window] is the codes-offset of literal sequence s; prev[s%window]
	// chains to the previous literal with the same hash. A chain entry is
	// live iff its sequence is ≥ total-window; anything older is skipped
	// (its ring slot may already hold a newer row).
	if cap(e.ring) < window {
		e.ring = make([]int, window)
		e.prev = make([]int32, window)
	}
	e.ring = e.ring[:window]
	e.prev = e.prev[:window]
	if e.head == nil {
		e.head = make(map[uint64]int32)
	}
	clear(e.head)
	total := int32(0) // literals appended so far = next sequence number

	pendingOffset := -1
	pendingCount := 0
	flushRun := func() {
		if pendingCount == 0 {
			return
		}
		if pendingCount == 1 {
			dst = append(dst, 1)
			n = binary.PutUvarint(tmp[:], uint64(pendingOffset))
			dst = append(dst, tmp[:n]...)
		} else {
			dst = append(dst, 2)
			n = binary.PutUvarint(tmp[:], uint64(pendingOffset))
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(pendingCount))
			dst = append(dst, tmp[:n]...)
		}
		pendingOffset, pendingCount = -1, 0
	}

	for r := 0; r < numRows; r++ {
		row := codes[r*dim : (r+1)*dim]
		h := hashRow(row)
		matchSeq := int32(-1)
		minSeq := total - int32(window)
		if s, ok := e.head[h]; ok {
			for s >= 0 && s >= minSeq {
				start := e.ring[int(s)%window]
				if rowsEqual(row, codes[start:start+dim]) {
					matchSeq = s
					break
				}
				s = e.prev[int(s)%window]
			}
		}
		if matchSeq >= 0 {
			// Back-offset in literals from newest (1 = newest), exactly
			// Encode's len(ring)-matchPos.
			offset := int(total - matchSeq)
			if offset == pendingOffset {
				pendingCount++
			} else {
				flushRun()
				pendingOffset, pendingCount = offset, 1
			}
			continue
		}
		flushRun()
		dst = append(dst, 0)
		for _, c := range row {
			n = binary.PutUvarint(tmp[:], uint64(quant.ZigZag(c)))
			dst = append(dst, tmp[:n]...)
		}
		slot := int(total) % window
		e.ring[slot] = r * dim
		if p, ok := e.head[h]; ok {
			e.prev[slot] = p
		} else {
			e.prev[slot] = -1
		}
		e.head[h] = total
		total++
	}
	flushRun()
	return dst, nil
}

// Decoder reconstructs frames with a reusable workspace. Unlike Decode it
// writes straight into the caller's code buffer and keeps its literal-row
// ring as offsets into that buffer, so steady-state decoding performs no
// heap allocation. Not safe for concurrent use.
type Decoder struct {
	ring []int32 // output offsets of literal rows, oldest first
}

// NewDecoder returns a decoder with an empty (lazily grown) workspace.
func NewDecoder() *Decoder { return &Decoder{} }

// DecodeInto reconstructs the code rows of a frame produced by
// Encode/AppendEncode into dst, whose length must equal rows×dim of the
// frame (callers learn the count from their own framing, as the hybrid codec
// header does). Returns the frame's row length dim.
func (d *Decoder) DecodeInto(dst []int32, data []byte) (int, error) {
	d64, n := binary.Uvarint(data)
	if n <= 0 || d64 == 0 {
		return 0, errCorrupt
	}
	data = data[n:]
	rows64, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, errCorrupt
	}
	data = data[n:]
	dim := int(d64)
	numRows := int(rows64)
	if numRows*dim != len(dst) {
		return 0, fmt.Errorf("vlz: frame holds %dx%d codes, destination holds %d", numRows, dim, len(dst))
	}
	d.ring = d.ring[:0]

	o := 0 // write position in dst
	for r := 0; r < numRows; {
		if len(data) == 0 {
			return 0, errCorrupt
		}
		tok := data[0]
		data = data[1:]
		switch tok {
		case 1:
			off64, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, errCorrupt
			}
			data = data[n:]
			off := int(off64)
			if off <= 0 || off > len(d.ring) {
				return 0, errCorrupt
			}
			src := int(d.ring[len(d.ring)-off])
			copy(dst[o:o+dim], dst[src:src+dim])
			o += dim
			r++
		case 2:
			off64, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, errCorrupt
			}
			data = data[n:]
			cnt64, n2 := binary.Uvarint(data)
			if n2 <= 0 || cnt64 == 0 {
				return 0, errCorrupt
			}
			data = data[n2:]
			off := int(off64)
			if off <= 0 || off > len(d.ring) || uint64(numRows-r) < cnt64 {
				return 0, errCorrupt
			}
			src := int(d.ring[len(d.ring)-off])
			for k := uint64(0); k < cnt64; k++ {
				copy(dst[o:o+dim], dst[src:src+dim])
				o += dim
			}
			r += int(cnt64)
		case 0:
			for j := 0; j < dim; j++ {
				u, n := binary.Uvarint(data)
				if n <= 0 {
					return 0, errCorrupt
				}
				data = data[n:]
				dst[o+j] = quant.UnZigZag(uint32(u))
			}
			d.ring = append(d.ring, int32(o))
			o += dim
			r++
		default:
			return 0, errCorrupt
		}
	}
	return dim, nil
}

// RowCount reads a frame's (rows, dim) header without decoding it, so
// callers can size the DecodeInto destination.
func RowCount(data []byte) (rows, dim int, err error) {
	d64, n := binary.Uvarint(data)
	if n <= 0 || d64 == 0 {
		return 0, 0, errCorrupt
	}
	rows64, n2 := binary.Uvarint(data[n:])
	if n2 <= 0 {
		return 0, 0, errCorrupt
	}
	return int(rows64), int(d64), nil
}
