package vlz

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlrmcomp/internal/quant"
)

// DefaultWindow is the row-granular window the paper found best (Table VI).
const DefaultWindow = 255

var errCorrupt = errors.New("vlz: corrupt frame")

// Encoder compresses batches of fixed-length integer vectors.
type Encoder struct {
	// Window is the number of most recent distinct rows searched for a
	// match. The paper sweeps 32/64/128/255 (Table VI).
	Window int

	// AppendEncode workspace (see append.go): the literal-row ring, its
	// hash chain, and the hash heads, reused across calls.
	ring []int
	prev []int32
	head map[uint64]int32
}

// New returns an Encoder with the given window (rows). window <= 0 selects
// DefaultWindow.
func New(window int) *Encoder {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Encoder{Window: window}
}

// Stats reports what the encoder did to one batch (drives Fig. 13 and the
// homogenization analysis).
type Stats struct {
	Rows        int
	Matched     int // rows emitted as match tokens
	Literals    int // rows emitted literally
	UniqueRows  int // distinct rows seen (literal count == unique within window reach)
	PayloadSize int // encoded bytes
}

func hashRow(row []int32) uint64 {
	// FNV-1a variant folding one whole code per round instead of its four
	// bytes — a quarter of the multiplies of the byte-wise version. The
	// encoded output does not depend on the hash function: chain candidates
	// are verified with rowsEqual, equal rows collide under any deterministic
	// hash, and unequal colliders are skipped, so swapping the hash is
	// invisible in the frame bytes (only Stats.UniqueRows, which is
	// hash-bucket-approximate by construction, could notice).
	h := uint64(1469598103934665603)
	for _, c := range row {
		h ^= uint64(uint32(c))
		h *= 1099511628211
	}
	return h
}

func rowsEqual(a, b []int32) bool {
	// Fixed-pattern-length fast path: reject on the first element.
	if a[0] != b[0] {
		return false
	}
	for i := 1; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Encode compresses codes (numRows × dim, row-major) into a self-contained
// frame.
func (e *Encoder) Encode(codes []int32, dim int) ([]byte, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("vlz: dim must be positive, got %d", dim)
	}
	if len(codes)%dim != 0 {
		return nil, fmt.Errorf("vlz: %d codes not divisible by dim %d", len(codes), dim)
	}
	numRows := len(codes) / dim

	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(dim))
	out = append(out, tmp[:n]...)
	n = binary.PutUvarint(tmp[:], uint64(numRows))
	out = append(out, tmp[:n]...)

	// ring holds the last Window *literal* rows (start offsets into codes);
	// index maps row hash -> positions in ring.
	ring := make([]int, 0, e.Window)
	index := make(map[uint64][]int)
	evict := func() {
		if len(ring) < e.Window {
			return
		}
		// Drop the oldest literal row from ring and index.
		oldStart := ring[0]
		oldHash := hashRow(codes[oldStart : oldStart+dim])
		lst := index[oldHash]
		for i, p := range lst {
			if p == 0 {
				lst = append(lst[:i], lst[i+1:]...)
				break
			}
		}
		// All remaining ring positions shift down by one.
		for h, l := range index {
			for i := range l {
				l[i]--
			}
			index[h] = l
		}
		if len(lst) == 0 {
			delete(index, oldHash)
		} else {
			index[oldHash] = lst
		}
		ring = ring[1:]
	}

	// Pending run of match tokens at the same offset.
	pendingOffset := -1
	pendingCount := 0
	flushRun := func() {
		if pendingCount == 0 {
			return
		}
		if pendingCount == 1 {
			out = append(out, 1)
			n = binary.PutUvarint(tmp[:], uint64(pendingOffset))
			out = append(out, tmp[:n]...)
		} else {
			// Run token: 2, offset, count.
			out = append(out, 2)
			n = binary.PutUvarint(tmp[:], uint64(pendingOffset))
			out = append(out, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], uint64(pendingCount))
			out = append(out, tmp[:n]...)
		}
		pendingOffset, pendingCount = -1, 0
	}

	for r := 0; r < numRows; r++ {
		row := codes[r*dim : (r+1)*dim]
		h := hashRow(row)
		matchPos := -1
		for i := len(index[h]) - 1; i >= 0; i-- {
			p := index[h][i]
			cand := codes[ring[p] : ring[p]+dim]
			if rowsEqual(row, cand) {
				matchPos = p
				break
			}
		}
		if matchPos >= 0 {
			// Back-offset in ring slots from newest (1 = newest literal).
			// The window does not advance on matches, so consecutive
			// matches of the same row share the offset and run-length code.
			offset := len(ring) - matchPos
			if offset == pendingOffset {
				pendingCount++
			} else {
				flushRun()
				pendingOffset, pendingCount = offset, 1
			}
			continue
		}
		flushRun()
		// Literal token: 0, then zigzag varints of each code.
		out = append(out, 0)
		for _, c := range row {
			n = binary.PutUvarint(tmp[:], uint64(quant.ZigZag(c)))
			out = append(out, tmp[:n]...)
		}
		evict()
		ring = append(ring, r*dim)
		index[h] = append(index[h], len(ring)-1)
	}
	flushRun()
	return out, nil
}

// EncodeStats runs Encode and also returns batch statistics.
func (e *Encoder) EncodeStats(codes []int32, dim int) ([]byte, Stats, error) {
	out, err := e.Encode(codes, dim)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{Rows: len(codes) / dim, PayloadSize: len(out)}
	// Re-derive match/literal counts by a cheap scan of the token stream.
	_, st.Matched, st.Literals, err = scanTokens(out)
	if err != nil {
		return nil, Stats{}, err
	}
	uniq := make(map[uint64]bool)
	for r := 0; r < st.Rows; r++ {
		uniq[hashRow(codes[r*dim:(r+1)*dim])] = true
	}
	st.UniqueRows = len(uniq)
	return out, st, nil
}

func scanTokens(data []byte) (dim int, matched, literals int, err error) {
	d, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, 0, errCorrupt
	}
	data = data[n:]
	rows, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, 0, 0, errCorrupt
	}
	data = data[n:]
	for covered := uint64(0); covered < rows; {
		if len(data) == 0 {
			return 0, 0, 0, errCorrupt
		}
		tok := data[0]
		data = data[1:]
		switch tok {
		case 1:
			_, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, 0, 0, errCorrupt
			}
			data = data[n:]
			matched++
			covered++
		case 2:
			_, n := binary.Uvarint(data)
			if n <= 0 {
				return 0, 0, 0, errCorrupt
			}
			data = data[n:]
			cnt, n2 := binary.Uvarint(data)
			if n2 <= 0 || cnt == 0 {
				return 0, 0, 0, errCorrupt
			}
			data = data[n2:]
			matched += int(cnt)
			covered += cnt
		case 0:
			for j := uint64(0); j < d; j++ {
				_, n := binary.Uvarint(data)
				if n <= 0 {
					return 0, 0, 0, errCorrupt
				}
				data = data[n:]
			}
			literals++
			covered++
		default:
			return 0, 0, 0, errCorrupt
		}
	}
	return int(d), matched, literals, nil
}

// Decode reconstructs the code rows from a frame produced by Encode.
func Decode(data []byte) (codes []int32, dim int, err error) {
	d64, n := binary.Uvarint(data)
	if n <= 0 || d64 == 0 {
		return nil, 0, errCorrupt
	}
	data = data[n:]
	rows64, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, errCorrupt
	}
	data = data[n:]
	dim = int(d64)
	numRows := int(rows64)
	codes = make([]int32, 0, numRows*dim)

	var ring [][]int32 // decoded literal rows, oldest first
	for r := 0; r < numRows; {
		if len(data) == 0 {
			return nil, 0, errCorrupt
		}
		tok := data[0]
		data = data[1:]
		switch tok {
		case 1:
			off64, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, 0, errCorrupt
			}
			data = data[n:]
			off := int(off64)
			if off <= 0 || off > len(ring) {
				return nil, 0, errCorrupt
			}
			codes = append(codes, ring[len(ring)-off]...)
			r++
		case 2:
			off64, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, 0, errCorrupt
			}
			data = data[n:]
			cnt64, n2 := binary.Uvarint(data)
			if n2 <= 0 || cnt64 == 0 {
				return nil, 0, errCorrupt
			}
			data = data[n2:]
			off := int(off64)
			if off <= 0 || off > len(ring) || uint64(numRows-r) < cnt64 {
				return nil, 0, errCorrupt
			}
			rowData := ring[len(ring)-off]
			for k := uint64(0); k < cnt64; k++ {
				codes = append(codes, rowData...)
			}
			r += int(cnt64)
		case 0:
			row := make([]int32, dim)
			for j := 0; j < dim; j++ {
				u, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, 0, errCorrupt
				}
				data = data[n:]
				row[j] = quant.UnZigZag(uint32(u))
			}
			ring = append(ring, row)
			codes = append(codes, row...)
			r++
		default:
			return nil, 0, errCorrupt
		}
	}
	return codes, dim, nil
}
