package vlz

import (
	"bytes"
	"testing"

	"dlrmcomp/internal/testutil"

	"dlrmcomp/internal/tensor"
)

// appendTestBatches covers the regimes the encoder sees: heavy row reuse
// (windowed matches and runs), all-unique rows (pure literals, exercises
// eviction), and tiny inputs.
func appendTestBatches() []struct {
	name string
	dim  int
	rows []int32
} {
	rng := tensor.NewRNG(99)
	mk := func(rows, dim, vocab int) []int32 {
		pool := make([][]int32, vocab)
		for v := range pool {
			pool[v] = make([]int32, dim)
			for j := range pool[v] {
				pool[v][j] = int32(rng.Intn(40) - 20)
			}
		}
		out := make([]int32, 0, rows*dim)
		for r := 0; r < rows; r++ {
			out = append(out, pool[rng.Intn(vocab)]...)
		}
		return out
	}
	unique := make([]int32, 600*4)
	for i := range unique {
		unique[i] = int32(i)
	}
	return []struct {
		name string
		dim  int
		rows []int32
	}{
		{"reuse", 8, mk(500, 8, 30)},
		{"runs", 4, mk(400, 4, 2)},
		{"unique-evicting", 4, unique},
		{"single-row", 16, mk(1, 16, 1)},
		{"empty", 8, nil},
	}
}

// TestAppendEncodeParity pins the tentpole's bit-parity contract: the
// hash-chain AppendEncode emits byte-identical frames to the reference
// Encode for every batch shape and window, including windows small enough
// to force eviction.
func TestAppendEncodeParity(t *testing.T) {
	for _, tc := range appendTestBatches() {
		for _, w := range []int{4, 32, DefaultWindow} {
			ref, err := New(w).Encode(tc.rows, tc.dim)
			if err != nil {
				t.Fatalf("%s w%d: %v", tc.name, w, err)
			}
			enc := New(w)
			for rep := 0; rep < 2; rep++ { // second rep runs on a dirty workspace
				got, err := enc.AppendEncode(nil, tc.rows, tc.dim)
				if err != nil {
					t.Fatalf("%s w%d: %v", tc.name, w, err)
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("%s w%d rep %d: AppendEncode differs from Encode (%d vs %d bytes)",
						tc.name, w, rep, len(got), len(ref))
				}
			}
			// Appending after existing bytes leaves the prefix alone.
			withPrefix, err := enc.AppendEncode([]byte{0xAB, 0xCD}, tc.rows, tc.dim)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(withPrefix[:2], []byte{0xAB, 0xCD}) || !bytes.Equal(withPrefix[2:], ref) {
				t.Fatalf("%s w%d: prefix append corrupted the frame", tc.name, w)
			}
		}
	}
}

// TestDecodeIntoParity checks DecodeInto reconstructs exactly what Decode
// does, into a caller buffer, across the same batch set.
func TestDecodeIntoParity(t *testing.T) {
	dec := NewDecoder()
	for _, tc := range appendTestBatches() {
		frame, err := New(16).Encode(tc.rows, tc.dim)
		if err != nil {
			t.Fatal(err)
		}
		ref, refDim, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]int32, len(tc.rows))
		dim, err := dec.DecodeInto(dst, frame)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if dim != refDim {
			t.Fatalf("%s: dim %d != %d", tc.name, dim, refDim)
		}
		if len(ref) != len(dst) {
			t.Fatalf("%s: length %d != %d", tc.name, len(dst), len(ref))
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("%s: code %d is %d, want %d", tc.name, i, dst[i], ref[i])
			}
		}
	}
}

func TestDecodeIntoWrongSize(t *testing.T) {
	frame, err := New(0).Encode([]int32{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder().DecodeInto(make([]int32, 3), frame); err == nil {
		t.Fatal("expected error for undersized destination")
	}
	rows, dim, err := RowCount(frame)
	if err != nil || rows != 2 || dim != 2 {
		t.Fatalf("RowCount = (%d, %d, %v), want (2, 2, nil)", rows, dim, err)
	}
}

// TestAppendRoundTripAllocs pins the zero-allocation steady state of the
// buffered pair: after warmup, encode+decode of a batch must not touch the
// heap.
func TestAppendRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	tc := appendTestBatches()[0]
	enc := New(32)
	dec := NewDecoder()
	var frame []byte
	dst := make([]int32, len(tc.rows))
	roundTrip := func() {
		var err error
		frame, err = enc.AppendEncode(frame[:0], tc.rows, tc.dim)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeInto(dst, frame); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the workspaces and the frame buffer
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs > 0 {
		t.Fatalf("steady-state round trip allocates %.1f times per op, want 0", allocs)
	}
}
