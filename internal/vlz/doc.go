// Package vlz implements the paper's vector-based LZ encoder (§III-D,
// §III-E): an LZ-family compressor specialized for batches of embedding
// vectors. Instead of scanning for repeating byte patterns of arbitrary
// length, it exploits two DLRM-specific facts:
//
//   - the repeating unit is always exactly one embedding vector (the "fixed
//     pattern length" optimization), so matching is whole-row-at-a-time and
//     a failed first-element comparison skips the entire row;
//   - unbalanced (Zipf-distributed) queries make identical rows recur within
//     a batch, so a row-granular sliding window of the most recent rows
//     (the "extended window size" optimization — 32 to 255 rows, i.e. far
//     wider in bytes than a classic 4 KB LZ window) captures most repeats.
//
// The encoder consumes quantization-bin rows ([]int32 codes, row length =
// embedding dim) and emits a token stream: match tokens carry a back-offset
// in rows (with consecutive matches at the same offset run-length coded, so
// a batch of identical vectors costs a handful of bytes); literal tokens
// carry zigzag-varint coded bins.
//
// Layer: the dictionary half of internal/hybrid, downstream of
// internal/quant. Pure compute; its cost enters end-to-end projections
// through the wrapping codec's calibrated rates ("ours-vector").
//
// Key API: Encoder (New(window)) with its Encode method, the package-level
// Decode, and DefaultWindow — the paper's 255-row setting swept in table6.
// The buffered twins AppendEncode and Decoder.DecodeInto (append.go) emit
// and consume byte-identical frames with reusable workspaces — zero
// steady-state allocation, and O(1) amortized window eviction via a
// sequence-numbered hash chain instead of Encode's O(window) index shift.
package vlz
