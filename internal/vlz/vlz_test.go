package vlz

import (
	"testing"
	"testing/quick"

	"dlrmcomp/internal/tensor"
)

func roundTrip(t *testing.T, enc *Encoder, codes []int32, dim int) []byte {
	t.Helper()
	frame, err := enc.Encode(codes, dim)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, gotDim, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if gotDim != dim {
		t.Fatalf("dim %d, want %d", gotDim, dim)
	}
	if len(dec) != len(codes) {
		t.Fatalf("decoded %d codes, want %d", len(dec), len(codes))
	}
	for i := range codes {
		if dec[i] != codes[i] {
			t.Fatalf("code %d: got %d want %d", i, dec[i], codes[i])
		}
	}
	return frame
}

func TestEmptyBatch(t *testing.T) {
	roundTrip(t, New(0), nil, 4)
}

func TestSingleRow(t *testing.T) {
	roundTrip(t, New(64), []int32{1, -2, 3, 0}, 4)
}

func TestAllIdenticalRows(t *testing.T) {
	dim := 8
	rows := 256
	codes := make([]int32, rows*dim)
	for r := 0; r < rows; r++ {
		for j := 0; j < dim; j++ {
			codes[r*dim+j] = int32(j - 3)
		}
	}
	frame := roundTrip(t, New(64), codes, dim)
	// One literal + 255 match tokens: should be tiny.
	if len(frame) > 3+dim*2+rows*3 {
		t.Fatalf("identical rows frame too large: %d bytes", len(frame))
	}
	_, st, err := New(64).EncodeStats(codes, dim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched != rows-1 || st.Literals != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.UniqueRows != 1 {
		t.Fatalf("unique rows = %d", st.UniqueRows)
	}
}

func TestAllDistinctRows(t *testing.T) {
	dim := 4
	rows := 100
	codes := make([]int32, rows*dim)
	for i := range codes {
		codes[i] = int32(i)
	}
	_, st, err := New(32).EncodeStats(codes, dim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched != 0 || st.Literals != rows {
		t.Fatalf("stats = %+v", st)
	}
	roundTrip(t, New(32), codes, dim)
}

func TestZipfRepeatedRows(t *testing.T) {
	// Simulate hot embedding rows: 16 distinct rows, Zipf-ish frequencies.
	rng := tensor.NewRNG(1)
	dim := 16
	vocab := make([][]int32, 16)
	for v := range vocab {
		vocab[v] = make([]int32, dim)
		for j := range vocab[v] {
			vocab[v][j] = int32(rng.Intn(100) - 50)
		}
	}
	rows := 512
	codes := make([]int32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		v := rng.Intn(4) // heavy reuse of first 4 rows
		if rng.Float64() < 0.2 {
			v = rng.Intn(16)
		}
		codes = append(codes, vocab[v]...)
	}
	frame := roundTrip(t, New(255), codes, dim)
	cr := float64(len(codes)*4) / float64(len(frame))
	if cr < 10 {
		t.Fatalf("expected CR > 10 on hot-key batch, got %.2f", cr)
	}
}

func TestWindowLimitsMatches(t *testing.T) {
	// Rows recur with period > window: small window finds no matches,
	// large window finds all repeats.
	dim := 4
	period := 64
	rows := 4 * period
	codes := make([]int32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		base := int32(r % period)
		codes = append(codes, base, base+1, base+2, base+3)
	}
	_, small, err := New(16).EncodeStats(codes, dim)
	if err != nil {
		t.Fatal(err)
	}
	_, large, err := New(128).EncodeStats(codes, dim)
	if err != nil {
		t.Fatal(err)
	}
	if small.Matched != 0 {
		t.Fatalf("window 16 should miss period-64 repeats, matched %d", small.Matched)
	}
	if large.Matched != rows-period {
		t.Fatalf("window 128 should match all repeats: %d vs %d", large.Matched, rows-period)
	}
	roundTrip(t, New(16), codes, dim)
	roundTrip(t, New(128), codes, dim)
}

func TestWindowSweepMonotoneCR(t *testing.T) {
	// Table VI: larger windows never hurt CR on repeat-heavy data.
	rng := tensor.NewRNG(2)
	dim := 8
	vocab := make([][]int32, 200)
	for v := range vocab {
		vocab[v] = make([]int32, dim)
		for j := range vocab[v] {
			vocab[v][j] = int32(rng.Intn(1000))
		}
	}
	rows := 1024
	codes := make([]int32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		codes = append(codes, vocab[rng.Intn(200)]...)
	}
	prevSize := 1 << 30
	for _, w := range []int{32, 64, 128, 255} {
		frame, err := New(w).Encode(codes, dim)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) > prevSize {
			t.Fatalf("window %d inflated frame: %d > %d", w, len(frame), prevSize)
		}
		prevSize = len(frame)
		roundTrip(t, New(w), codes, dim)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := New(8).Encode([]int32{1, 2, 3}, 2); err == nil {
		t.Fatal("non-divisible length should error")
	}
	if _, err := New(8).Encode([]int32{1}, 0); err == nil {
		t.Fatal("zero dim should error")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil frame should error")
	}
	if _, _, err := Decode([]byte{4, 10, 1, 200}); err == nil {
		t.Fatal("offset beyond ring should error")
	}
	if _, _, err := Decode([]byte{4, 1, 9}); err == nil {
		t.Fatal("unknown token should error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []int16, dimSel, winSel uint8) bool {
		dim := 1 + int(dimSel)%8
		win := []int{1, 4, 32, 255}[int(winSel)%4]
		n := (len(raw) / dim) * dim
		codes := make([]int32, n)
		for i := 0; i < n; i++ {
			codes[i] = int32(raw[i]) % 64 // induce repeats
		}
		frame, err := New(win).Encode(codes, dim)
		if err != nil {
			return false
		}
		dec, gotDim, err := Decode(frame)
		if err != nil || gotDim != dim || len(dec) != len(codes) {
			return false
		}
		for i := range codes {
			if dec[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowOneStillCatchesAdjacentDuplicates(t *testing.T) {
	codes := []int32{5, 5, 5, 5, 9, 9} // rows: [5 5] [5 5] [9 9]
	_, st, err := New(1).EncodeStats(codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched != 1 {
		t.Fatalf("adjacent duplicate should match with window 1, stats %+v", st)
	}
	roundTrip(t, New(1), codes, 2)
}

func BenchmarkEncodeBatch2048x64(b *testing.B) {
	rng := tensor.NewRNG(3)
	dim := 64
	vocab := make([][]int32, 500)
	for v := range vocab {
		vocab[v] = make([]int32, dim)
		for j := range vocab[v] {
			vocab[v][j] = int32(rng.Intn(200) - 100)
		}
	}
	rows := 2048
	codes := make([]int32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		codes = append(codes, vocab[rng.Intn(500)]...)
	}
	enc := New(255)
	b.SetBytes(int64(len(codes) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(codes, dim); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunTokenCompresssIdenticalBatch(t *testing.T) {
	// A whole batch of one repeated vector must collapse to a few bytes
	// (the paper's 915x-CR tables are this case).
	dim := 64
	rows := 2048
	codes := make([]int32, rows*dim)
	for r := 0; r < rows; r++ {
		for j := 0; j < dim; j++ {
			codes[r*dim+j] = int32(j)
		}
	}
	frame := roundTrip(t, New(255), codes, dim)
	cr := float64(len(codes)*4) / float64(len(frame))
	if cr < 1000 {
		t.Fatalf("identical batch should exceed 1000x, got %.0fx (frame %dB)", cr, len(frame))
	}
}

func TestRunTokenAlternatingOffsets(t *testing.T) {
	// Alternating rows break runs; correctness must survive.
	a := []int32{1, 2}
	b := []int32{3, 4}
	var codes []int32
	for i := 0; i < 64; i++ {
		codes = append(codes, a...)
		codes = append(codes, b...)
	}
	roundTrip(t, New(8), codes, 2)
	_, st, err := New(8).EncodeStats(codes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Literals != 2 || st.Matched != 126 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDecodeRunTokenCorrupt(t *testing.T) {
	// Run count exceeding the declared row count must error.
	if _, _, err := Decode([]byte{2, 3, 0, 1, 2, 1, 200}); err == nil {
		t.Fatal("oversized run should error")
	}
}
