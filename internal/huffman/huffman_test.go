package huffman

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"dlrmcomp/internal/tensor"
)

func roundTrip(t *testing.T, syms []uint32) []byte {
	t.Helper()
	enc := Encode(syms)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("decoded %d symbols, want %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], syms[i])
		}
	}
	return enc
}

func TestBitIORoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0b1, 1)
	w.WriteBits(0xDEAD, 16)
	w.WriteBits(0x1FFFFFFFFFFFFF, 53)
	data := w.Bytes()
	r := NewBitReader(data)
	if v := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b", v)
	}
	if v := r.ReadBits(1); v != 1 {
		t.Fatalf("got %b", v)
	}
	if v := r.ReadBits(16); v != 0xDEAD {
		t.Fatalf("got %x", v)
	}
	if v := r.ReadBits(53); v != 0x1FFFFFFFFFFFFF {
		t.Fatalf("got %x", v)
	}
}

func TestBitWriterWideWrites(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)
	r := NewBitReader(w.Bytes())
	if hi := r.ReadBits(32); hi != 0xFFFFFFFF {
		t.Fatalf("hi = %x", hi)
	}
	if lo := r.ReadBits(32); lo != 0xFFFFFFFF {
		t.Fatalf("lo = %x", lo)
	}
}

func TestBitReaderPeekSkip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b1100_1010, 8)
	r := NewBitReader(w.Bytes())
	if v := r.Peek(4); v != 0b1100 {
		t.Fatalf("peek = %b", v)
	}
	r.Skip(4)
	if v := r.ReadBits(4); v != 0b1010 {
		t.Fatalf("after skip = %b", v)
	}
}

func TestEmpty(t *testing.T) { roundTrip(t, []uint32{}) }

func TestSingleSymbolRun(t *testing.T) {
	syms := make([]uint32, 1000)
	for i := range syms {
		syms[i] = 7
	}
	enc := roundTrip(t, syms)
	if len(enc) > 16 {
		t.Fatalf("constant run should compress to a few bytes, got %d", len(enc))
	}
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []uint32{0, 1, 0, 0, 1, 0})
}

func TestSkewedDistributionCompresses(t *testing.T) {
	// 90% zeros should approach ~0.47 bits/symbol entropy.
	rng := tensor.NewRNG(1)
	syms := make([]uint32, 10000)
	for i := range syms {
		if rng.Float64() < 0.9 {
			syms[i] = 0
		} else {
			syms[i] = uint32(rng.Intn(15)) + 1
		}
	}
	enc := roundTrip(t, syms)
	rawBytes := len(syms) * 4
	if ratio := float64(rawBytes) / float64(len(enc)); ratio < 10 {
		t.Fatalf("expected CR > 10 on skewed data, got %.1f", ratio)
	}
}

func TestUniformDataNearFixedWidth(t *testing.T) {
	rng := tensor.NewRNG(2)
	syms := make([]uint32, 8192)
	for i := range syms {
		syms[i] = uint32(rng.Intn(256))
	}
	enc := roundTrip(t, syms)
	// 8 bits/symbol ideal = 8192 bytes; allow table + slack.
	if len(enc) > 9500 {
		t.Fatalf("uniform 8-bit data encoded to %d bytes", len(enc))
	}
}

func TestGaussianQuantBins(t *testing.T) {
	// The paper's observation ❸: Gaussian-distributed bins compress well.
	rng := tensor.NewRNG(3)
	syms := make([]uint32, 20000)
	for i := range syms {
		v := int32(rng.NormFloat64() * 3)
		syms[i] = uint32((v << 1) ^ (v >> 31)) // zigzag
	}
	enc := roundTrip(t, syms)
	if float64(len(syms)*4)/float64(len(enc)) < 5 {
		t.Fatalf("Gaussian bins should compress > 5x, got %.1f",
			float64(len(syms)*4)/float64(len(enc)))
	}
}

func TestLargeAlphabet(t *testing.T) {
	rng := tensor.NewRNG(4)
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(rng.Uint64() % 100000)
	}
	roundTrip(t, syms)
}

func TestDeterministicEncoding(t *testing.T) {
	rng := tensor.NewRNG(5)
	syms := make([]uint32, 1000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(32))
	}
	if !bytes.Equal(Encode(syms), Encode(syms)) {
		t.Fatal("encoding must be deterministic")
	}
}

func TestDecodeCorruptFrames(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil frame should error")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("unknown mode should error")
	}
	if _, err := Decode([]byte{modeHuffman}); err == nil {
		t.Fatal("truncated huffman header should error")
	}
	if _, err := Decode([]byte{modeRaw, 0, 1}); err == nil {
		t.Fatal("zero width raw should error")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		syms := make([]uint32, len(raw))
		for i, v := range raw {
			syms[i] = uint32(v)
		}
		enc := Encode(syms)
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec, syms) || (len(dec) == 0 && len(syms) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSizeMatchesEncode(t *testing.T) {
	syms := []uint32{1, 2, 3, 1, 1, 2}
	if CompressedSize(syms) != len(Encode(syms)) {
		t.Fatal("CompressedSize disagrees with Encode")
	}
}

func BenchmarkEncode64K(b *testing.B) {
	rng := tensor.NewRNG(6)
	syms := make([]uint32, 1<<16)
	for i := range syms {
		v := int32(rng.NormFloat64() * 5)
		syms[i] = uint32((v << 1) ^ (v >> 31))
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(syms)
	}
}

func BenchmarkDecode64K(b *testing.B) {
	rng := tensor.NewRNG(7)
	syms := make([]uint32, 1<<16)
	for i := range syms {
		v := int32(rng.NormFloat64() * 5)
		syms[i] = uint32((v << 1) ^ (v >> 31))
	}
	enc := Encode(syms)
	b.SetBytes(int64(len(syms) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
