package huffman

import (
	"encoding/binary"
	"math/bits"
	"slices"
)

// This file is the buffered twin of huffman.go: an Encoder/Decoder pair that
// produces byte-identical frames to Encode/Decode while reusing every scratch
// structure (frequency table, tree nodes, canonical tables, bit buffers)
// across calls, so steady-state operation performs no heap allocation. The
// allocating functions remain the reference implementation; parity between
// the two paths is pinned by tests.

// symCode is one symbol's canonical code assignment.
type symCode struct {
	code uint64
	len  uint8
}

// Encoder compresses symbol slices with reusable internal state. Not safe
// for concurrent use; give each goroutine its own (the hybrid codec pools
// them).
type Encoder struct {
	freq   map[uint32]uint64
	codes  map[uint32]symCode
	freqD  []uint64  // dense frequency table (small-alphabet fast path)
	codesD []symCode // dense code table, indexed by symbol
	syms   []uint32  // distinct symbols, ascending
	pairs  []uint64  // (len<<32 | sym) keys in canonical order
	nodes  []node
	order  []int32 // node-index heap, ordered by (freq, sym)
	stack  []treeItem
	w      BitWriter
	frame  []byte // Huffman-mode candidate frame
	rawBuf []byte // raw-mode candidate frame
}

// maxDenseSym bounds the alphabet for the dense-table encoding path: symbols
// below it use flat slices for frequency counting and code lookup instead of
// maps (zigzagged quantization codes cluster near zero, so in practice the
// hybrid codec always qualifies). Larger alphabets take the map path; both
// produce identical frames.
const maxDenseSym = 1 << 16

type treeItem struct {
	idx   int32
	depth uint8
}

// NewEncoder returns an encoder with empty (lazily grown) workspaces.
func NewEncoder() *Encoder {
	return &Encoder{
		freq:  make(map[uint32]uint64),
		codes: make(map[uint32]symCode),
	}
}

// heapLess orders node indices by (freq, sym) — the same strict total order
// codeLengths feeds container/heap, so the hand-rolled heap below pops nodes
// in the identical sequence (a total order makes every correct heap agree).
func (e *Encoder) heapLess(a, b int32) bool {
	na, nb := e.nodes[a], e.nodes[b]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return na.sym < nb.sym
}

func (e *Encoder) heapPush(x int32) {
	e.order = append(e.order, x)
	i := len(e.order) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(e.order[i], e.order[p]) {
			break
		}
		e.order[i], e.order[p] = e.order[p], e.order[i]
		i = p
	}
}

func (e *Encoder) heapPop() int32 {
	v := e.order[0]
	last := len(e.order) - 1
	e.order[0] = e.order[last]
	e.order = e.order[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(e.order) && e.heapLess(e.order[l], e.order[small]) {
			small = l
		}
		if r < len(e.order) && e.heapLess(e.order[r], e.order[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.order[i], e.order[small] = e.order[small], e.order[i]
		i = small
	}
	return v
}

// AppendEncode compresses syms and appends the frame to dst, returning the
// grown buffer. The frame bytes are identical to Encode(syms).
func (e *Encoder) AppendEncode(dst []byte, syms []uint32) []byte {
	var maxSym uint32
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	return e.AppendEncodeMax(dst, syms, maxSym)
}

// AppendEncodeMax is AppendEncode for callers that already know the exact
// maximum symbol value (the hybrid codec learns it for free while
// zigzag-transforming quantization codes). maxSym must equal max(syms) — an
// upper bound is not enough, because it selects the raw-fallback bit width
// and therefore the frame bytes. Small alphabets take a dense-table path;
// the frame is byte-identical to AppendEncode either way.
func (e *Encoder) AppendEncodeMax(dst []byte, syms []uint32, maxSym uint32) []byte {
	if len(syms) == 0 {
		return append(dst, modeConst, 0)
	}
	if maxSym < maxDenseSym {
		return e.appendEncodeDense(dst, syms, maxSym)
	}
	return e.appendEncodeMap(dst, syms)
}

// mergeAndAssignLengths runs the (freq, sym)-heap merge over the already
// pushed leaf nodes and DFS-assigns code lengths, leaving (len<<32|sym) keys
// in e.pairs. Returns the longest code length.
func (e *Encoder) mergeAndAssignLengths() (maxLen uint8) {
	for len(e.order) > 1 {
		a := e.heapPop()
		b := e.heapPop()
		e.nodes = append(e.nodes, node{
			freq: e.nodes[a].freq + e.nodes[b].freq,
			sym:  e.nodes[a].sym,
			left: a, right: b,
		})
		e.heapPush(int32(len(e.nodes) - 1))
	}
	e.pairs = e.pairs[:0]
	e.stack = append(e.stack[:0], treeItem{e.order[0], 0})
	for len(e.stack) > 0 {
		it := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		nd := e.nodes[it.idx]
		if nd.left < 0 {
			d := it.depth
			if d == 0 {
				d = 1 // single-symbol tree still needs 1 bit
			}
			if d > maxLen {
				maxLen = d
			}
			e.pairs = append(e.pairs, uint64(d)<<32|uint64(nd.sym))
			continue
		}
		e.stack = append(e.stack, treeItem{nd.left, it.depth + 1}, treeItem{nd.right, it.depth + 1})
	}
	return maxLen
}

// uvarintLen is the byte length binary.PutUvarint would write for x.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// appendEncodeDense is the small-alphabet encoding path: flat slices replace
// the frequency and code maps, distinct symbols fall out of the table scan
// already sorted, and both candidate frame sizes (Huffman vs raw) are
// computed arithmetically so only the winning frame is ever materialized.
// The emitted bytes are identical to the map path's.
func (e *Encoder) appendEncodeDense(dst []byte, syms []uint32, maxSym uint32) []byte {
	m := int(maxSym) + 1
	if cap(e.freqD) < m {
		e.freqD = make([]uint64, m)
	}
	freq := e.freqD[:m]
	clear(freq)
	for _, s := range syms {
		freq[s]++
	}

	numDistinct := 0
	for _, f := range freq {
		if f > 0 {
			numDistinct++
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	if numDistinct == 1 {
		dst = append(dst, modeConst)
		n := binary.PutUvarint(tmp[:], uint64(len(syms)))
		dst = append(dst, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(syms[0]))
		return append(dst, tmp[:n]...)
	}

	// Leaves in ascending symbol order — the table scan yields them sorted.
	e.nodes = e.nodes[:0]
	e.order = e.order[:0]
	for s, f := range freq {
		if f == 0 {
			continue
		}
		e.nodes = append(e.nodes, node{freq: f, sym: uint32(s), left: -1, right: -1})
		e.heapPush(int32(len(e.nodes) - 1))
	}
	maxLen := e.mergeAndAssignLengths()
	if maxLen > maxCodeLen {
		return e.appendRaw(dst, syms)
	}

	// Canonical assignment over (len, sym)-sorted pairs, into the dense code
	// table. Stale entries from previous calls are never read: the emit loop
	// only indexes symbols present in syms, all of which are assigned here.
	slices.Sort(e.pairs)
	if cap(e.codesD) < m {
		e.codesD = make([]symCode, m)
	}
	codes := e.codesD[:m]
	var code uint64
	var prevLen uint8
	for _, p := range e.pairs {
		l := uint8(p >> 32)
		code <<= (l - prevLen)
		codes[uint32(p)] = symCode{code: code, len: l}
		code++
		prevLen = l
	}

	// Arithmetic frame sizes. Huffman: header (mode, numDistinct,
	// (symbol, len)*, numSymbols) plus padded code bits. Raw: mode, width,
	// numSymbols, padded fixed-width bits. Both match the materialized
	// frames exactly (BitWriter.Bytes pads to a whole byte), so the
	// comparison picks the same winner Encode does — without paying for the
	// loser's bit emission.
	hufLen := 1 + uvarintLen(uint64(len(e.pairs))) + uvarintLen(uint64(len(syms)))
	var hufBits uint64
	for _, p := range e.pairs {
		hufLen += uvarintLen(uint64(uint32(p))) + 1
		hufBits += freq[uint32(p)] * uint64(p>>32)
	}
	hufLen += int((hufBits + 7) / 8)
	width := uint(bits.Len32(maxSym))
	if width == 0 {
		width = 1
	}
	rawLen := 2 + uvarintLen(uint64(len(syms))) + (len(syms)*int(width)+7)/8
	if rawLen < hufLen {
		return e.appendRaw(dst, syms)
	}

	// Emit the Huffman frame straight into dst.
	dst = append(dst, modeHuffman)
	n := binary.PutUvarint(tmp[:], uint64(len(e.pairs)))
	dst = append(dst, tmp[:n]...)
	for _, p := range e.pairs {
		n = binary.PutUvarint(tmp[:], uint64(uint32(p)))
		dst = append(dst, tmp[:n]...)
		dst = append(dst, uint8(p>>32))
	}
	n = binary.PutUvarint(tmp[:], uint64(len(syms)))
	dst = append(dst, tmp[:n]...)
	e.w.Reset()
	for _, s := range syms {
		sc := codes[s]
		e.w.WriteBits(sc.code, uint(sc.len))
	}
	return append(dst, e.w.Bytes()...)
}

// appendEncodeMap is the original map-based encoding path, kept for
// alphabets too wide for the dense tables.
func (e *Encoder) appendEncodeMap(dst []byte, syms []uint32) []byte {
	clear(e.freq)
	for _, s := range syms {
		e.freq[s]++
	}
	var tmp [binary.MaxVarintLen64]byte
	if len(e.freq) == 1 {
		dst = append(dst, modeConst)
		n := binary.PutUvarint(tmp[:], uint64(len(syms)))
		dst = append(dst, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(syms[0]))
		return append(dst, tmp[:n]...)
	}

	// Code lengths: leaves in ascending symbol order, then (freq, sym)-heap
	// merging — the construction codeLengths performs, minus its maps.
	e.syms = e.syms[:0]
	for s := range e.freq {
		e.syms = append(e.syms, s)
	}
	slices.Sort(e.syms)
	e.nodes = e.nodes[:0]
	e.order = e.order[:0]
	for _, s := range e.syms {
		e.nodes = append(e.nodes, node{freq: e.freq[s], sym: s, left: -1, right: -1})
		e.heapPush(int32(len(e.nodes) - 1))
	}
	maxLen := e.mergeAndAssignLengths()
	if maxLen > maxCodeLen {
		return e.appendRaw(dst, syms)
	}

	// Canonical assignment over (len, sym)-sorted pairs.
	slices.Sort(e.pairs)
	clear(e.codes)
	var code uint64
	var prevLen uint8
	for _, p := range e.pairs {
		l := uint8(p >> 32)
		code <<= (l - prevLen)
		e.codes[uint32(p)] = symCode{code: code, len: l}
		code++
		prevLen = l
	}

	// Header: mode, numDistinct, (symbol, len)*, numSymbols.
	e.frame = append(e.frame[:0], modeHuffman)
	n := binary.PutUvarint(tmp[:], uint64(len(e.pairs)))
	e.frame = append(e.frame, tmp[:n]...)
	for _, p := range e.pairs {
		n = binary.PutUvarint(tmp[:], uint64(uint32(p)))
		e.frame = append(e.frame, tmp[:n]...)
		e.frame = append(e.frame, uint8(p>>32))
	}
	n = binary.PutUvarint(tmp[:], uint64(len(syms)))
	e.frame = append(e.frame, tmp[:n]...)

	e.w.Reset()
	for _, s := range syms {
		sc := e.codes[s]
		e.w.WriteBits(sc.code, uint(sc.len))
	}
	e.frame = append(e.frame, e.w.Bytes()...)

	// If Huffman inflates (tiny inputs with wide alphabets), fall back —
	// the same size comparison Encode performs.
	e.rawBuf = e.encodeRawInto(e.rawBuf[:0], syms)
	if len(e.rawBuf) < len(e.frame) {
		return append(dst, e.rawBuf...)
	}
	return append(dst, e.frame...)
}

// appendRaw emits the raw frame straight to dst (over-long-code path).
func (e *Encoder) appendRaw(dst []byte, syms []uint32) []byte {
	e.rawBuf = e.encodeRawInto(e.rawBuf[:0], syms)
	return append(dst, e.rawBuf...)
}

// encodeRawInto is encodeRaw writing into a reusable buffer.
func (e *Encoder) encodeRawInto(buf []byte, syms []uint32) []byte {
	var maxSym uint32
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	width := uint(bits.Len32(maxSym))
	if width == 0 {
		width = 1
	}
	buf = append(buf, modeRaw, byte(width))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(syms)))
	buf = append(buf, tmp[:n]...)
	e.w.Reset()
	for _, s := range syms {
		e.w.WriteBits(uint64(s), width)
	}
	return append(buf, e.w.Bytes()...)
}

// Decoder decompresses frames with reusable internal state. Not safe for
// concurrent use.
type Decoder struct {
	pairs  []uint64 // (len<<32 | sym), canonical order
	sorted []uint32 // symbols in canonical order
	r      BitReader
}

// NewDecoder returns a decoder with empty (lazily grown) workspaces.
func NewDecoder() *Decoder { return &Decoder{} }

// DecodeInto reconstructs a frame produced by Encode/AppendEncode into dst,
// whose length must equal the frame's symbol count (callers learn the count
// from their own framing, as the hybrid codec header does). Returns the
// number of symbols written.
func (d *Decoder) DecodeInto(dst []uint32, data []byte) (int, error) {
	if len(data) == 0 {
		return 0, errCorrupt
	}
	mode := data[0]
	rest := data[1:]
	switch mode {
	case modeConst:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, errCorrupt
		}
		if int(count) != len(dst) {
			return 0, errCorrupt
		}
		if count == 0 {
			return 0, nil
		}
		sym, n2 := binary.Uvarint(rest[n:])
		if n2 <= 0 {
			return 0, errCorrupt
		}
		for i := range dst {
			dst[i] = uint32(sym)
		}
		return len(dst), nil

	case modeRaw:
		if len(rest) < 1 {
			return 0, errCorrupt
		}
		width := uint(rest[0])
		if width == 0 || width > 32 {
			return 0, errCorrupt
		}
		count, n := binary.Uvarint(rest[1:])
		if n <= 0 || int(count) != len(dst) {
			return 0, errCorrupt
		}
		d.r.Reset(rest[1+n:])
		for i := range dst {
			dst[i] = uint32(d.r.ReadBits(width))
		}
		return len(dst), nil

	case modeHuffman:
		numDistinct, n := binary.Uvarint(rest)
		if n <= 0 || numDistinct == 0 || numDistinct > uint64(len(rest)) {
			return 0, errCorrupt
		}
		rest = rest[n:]
		d.pairs = d.pairs[:0]
		for i := uint64(0); i < numDistinct; i++ {
			sym, n2 := binary.Uvarint(rest)
			if n2 <= 0 || len(rest) < n2+1 || sym > 0xFFFFFFFF {
				return 0, errCorrupt
			}
			l := rest[n2]
			if l == 0 || l > maxCodeLen {
				return 0, errCorrupt
			}
			d.pairs = append(d.pairs, uint64(l)<<32|sym)
			rest = rest[n2+1:]
		}
		count, n := binary.Uvarint(rest)
		if n <= 0 || int(count) != len(dst) {
			return 0, errCorrupt
		}
		rest = rest[n:]

		// Canonical order (len, sym); a duplicated symbol cannot come from
		// the encoder, so reject it rather than mimic map-overwrite quirks.
		slices.Sort(d.pairs)
		for i := 1; i < len(d.pairs); i++ {
			if uint32(d.pairs[i]) == uint32(d.pairs[i-1]) {
				return 0, errCorrupt
			}
		}
		var maxLen uint8
		d.sorted = d.sorted[:0]
		var numAt [maxCodeLen + 2]int
		for _, p := range d.pairs {
			l := uint8(p >> 32)
			if l > maxLen {
				maxLen = l
			}
			numAt[l]++
			d.sorted = append(d.sorted, uint32(p))
		}
		var firstCode [maxCodeLen + 2]uint64
		var firstIdx [maxCodeLen + 2]int
		var code uint64
		idx := 0
		for l := uint8(1); l <= maxLen; l++ {
			firstCode[l] = code
			firstIdx[l] = idx
			code = (code + uint64(numAt[l])) << 1
			idx += numAt[l]
		}

		d.r.Reset(rest)
		for i := range dst {
			var c uint64
			var l uint8
			for {
				c = (c << 1) | d.r.ReadBits(1)
				l++
				if l > maxLen {
					return 0, errCorrupt
				}
				if numAt[l] > 0 && c-firstCode[l] < uint64(numAt[l]) {
					dst[i] = d.sorted[firstIdx[l]+int(c-firstCode[l])]
					break
				}
			}
		}
		return len(dst), nil
	}
	return 0, errCorrupt
}

// SymbolCount reads the number of symbols a frame decodes to, without
// decoding it (so callers can size the DecodeInto destination).
func SymbolCount(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, errCorrupt
	}
	rest := data[1:]
	switch data[0] {
	case modeConst:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, errCorrupt
		}
		return int(count), nil
	case modeRaw:
		if len(rest) < 1 {
			return 0, errCorrupt
		}
		count, n := binary.Uvarint(rest[1:])
		if n <= 0 {
			return 0, errCorrupt
		}
		return int(count), nil
	case modeHuffman:
		numDistinct, n := binary.Uvarint(rest)
		if n <= 0 || numDistinct == 0 {
			return 0, errCorrupt
		}
		rest = rest[n:]
		for i := uint64(0); i < numDistinct; i++ {
			_, n2 := binary.Uvarint(rest)
			if n2 <= 0 || len(rest) < n2+1 {
				return 0, errCorrupt
			}
			rest = rest[n2+1:]
		}
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, errCorrupt
		}
		return int(count), nil
	}
	return 0, errCorrupt
}
