package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// Frame modes.
const (
	modeHuffman = 0 // canonical table + bitstream
	modeRaw     = 1 // fixed-width symbols (fallback when Huffman inflates)
	modeConst   = 2 // single distinct symbol, run-length only
)

// maxCodeLen bounds canonical code lengths; inputs that would exceed it use
// the raw fallback (practically unreachable for batch-sized inputs).
const maxCodeLen = 57

var errCorrupt = errors.New("huffman: corrupt frame")

type node struct {
	freq        uint64
	sym         uint32
	left, right int32 // indices into node slice, -1 for leaf
}

type nodeHeap struct {
	nodes []node
	order []int32
}

func (h *nodeHeap) Len() int { return len(h.order) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.order[i]], h.nodes[h.order[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.sym < b.sym // deterministic tie-break
}
func (h *nodeHeap) Swap(i, j int)      { h.order[i], h.order[j] = h.order[j], h.order[i] }
func (h *nodeHeap) Push(x interface{}) { h.order = append(h.order, x.(int32)) }
func (h *nodeHeap) Pop() interface{} {
	n := len(h.order)
	v := h.order[n-1]
	h.order = h.order[:n-1]
	return v
}

// codeLengths computes Huffman code lengths for each distinct symbol.
func codeLengths(freq map[uint32]uint64) map[uint32]uint8 {
	h := &nodeHeap{}
	syms := make([]uint32, 0, len(freq))
	for s := range freq {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		h.nodes = append(h.nodes, node{freq: freq[s], sym: s, left: -1, right: -1})
		h.order = append(h.order, int32(len(h.nodes)-1))
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int32)
		b := heap.Pop(h).(int32)
		h.nodes = append(h.nodes, node{
			freq: h.nodes[a].freq + h.nodes[b].freq,
			sym:  h.nodes[a].sym, // carry min symbol for deterministic ties
			left: a, right: b,
		})
		heap.Push(h, int32(len(h.nodes)-1))
	}
	lens := make(map[uint32]uint8, len(freq))
	if len(h.order) == 0 {
		return lens
	}
	// Iterative depth-first traversal assigning depths.
	type item struct {
		idx   int32
		depth uint8
	}
	stack := []item{{h.order[0], 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := h.nodes[it.idx]
		if n.left < 0 {
			d := it.depth
			if d == 0 {
				d = 1 // single-symbol tree still needs 1 bit
			}
			lens[n.sym] = d
			continue
		}
		stack = append(stack, item{n.left, it.depth + 1}, item{n.right, it.depth + 1})
	}
	return lens
}

// canonicalCodes assigns canonical codes given lengths. Symbols are sorted
// by (length, symbol).
func canonicalCodes(lens map[uint32]uint8) (codes map[uint32]uint64, sorted []uint32) {
	sorted = make([]uint32, 0, len(lens))
	for s := range lens {
		sorted = append(sorted, s)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if lens[sorted[i]] != lens[sorted[j]] {
			return lens[sorted[i]] < lens[sorted[j]]
		}
		return sorted[i] < sorted[j]
	})
	codes = make(map[uint32]uint64, len(lens))
	var code uint64
	var prevLen uint8
	for _, s := range sorted {
		l := lens[s]
		code <<= (l - prevLen)
		codes[s] = code
		code++
		prevLen = l
	}
	return codes, sorted
}

// Encode compresses the symbol slice into a self-contained frame.
func Encode(syms []uint32) []byte {
	if len(syms) == 0 {
		return []byte{modeConst, 0}
	}
	freq := make(map[uint32]uint64)
	for _, s := range syms {
		freq[s]++
	}
	if len(freq) == 1 {
		out := []byte{modeConst}
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(syms)))
		out = append(out, tmp[:n]...)
		n = binary.PutUvarint(tmp[:], uint64(syms[0]))
		out = append(out, tmp[:n]...)
		return out
	}

	lens := codeLengths(freq)
	var maxLen uint8
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	if maxLen > maxCodeLen {
		return encodeRaw(syms)
	}
	codes, sorted := canonicalCodes(lens)

	// Header: mode, numDistinct, (symbol, len)*, numSymbols.
	var out []byte
	out = append(out, modeHuffman)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(sorted)))
	out = append(out, tmp[:n]...)
	for _, s := range sorted {
		n = binary.PutUvarint(tmp[:], uint64(s))
		out = append(out, tmp[:n]...)
		out = append(out, lens[s])
	}
	n = binary.PutUvarint(tmp[:], uint64(len(syms)))
	out = append(out, tmp[:n]...)

	w := NewBitWriter()
	for _, s := range syms {
		w.WriteBits(codes[s], uint(lens[s]))
	}
	payload := w.Bytes()
	out = append(out, payload...)

	// If Huffman inflates (tiny inputs with wide alphabets), fall back.
	if raw := encodeRaw(syms); len(raw) < len(out) {
		return raw
	}
	return out
}

// encodeRaw stores symbols with a fixed bit width.
func encodeRaw(syms []uint32) []byte {
	var maxSym uint32
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	width := uint(bits.Len32(maxSym))
	if width == 0 {
		width = 1
	}
	out := []byte{modeRaw, byte(width)}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(syms)))
	out = append(out, tmp[:n]...)
	w := NewBitWriter()
	for _, s := range syms {
		w.WriteBits(uint64(s), width)
	}
	return append(out, w.Bytes()...)
}

// Decode reconstructs the symbol slice from a frame produced by Encode.
func Decode(data []byte) ([]uint32, error) {
	if len(data) == 0 {
		return nil, errCorrupt
	}
	mode := data[0]
	rest := data[1:]
	switch mode {
	case modeConst:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, errCorrupt
		}
		if count == 0 {
			return []uint32{}, nil
		}
		sym, n2 := binary.Uvarint(rest[n:])
		if n2 <= 0 {
			return nil, errCorrupt
		}
		out := make([]uint32, count)
		for i := range out {
			out[i] = uint32(sym)
		}
		return out, nil

	case modeRaw:
		if len(rest) < 1 {
			return nil, errCorrupt
		}
		width := uint(rest[0])
		if width == 0 || width > 32 {
			return nil, errCorrupt
		}
		count, n := binary.Uvarint(rest[1:])
		if n <= 0 {
			return nil, errCorrupt
		}
		r := NewBitReader(rest[1+n:])
		out := make([]uint32, count)
		for i := range out {
			out[i] = uint32(r.ReadBits(width))
		}
		return out, nil

	case modeHuffman:
		numDistinct, n := binary.Uvarint(rest)
		if n <= 0 || numDistinct == 0 {
			return nil, errCorrupt
		}
		rest = rest[n:]
		lens := make(map[uint32]uint8, numDistinct)
		for i := uint64(0); i < numDistinct; i++ {
			sym, n2 := binary.Uvarint(rest)
			if n2 <= 0 || len(rest) < n2+1 {
				return nil, errCorrupt
			}
			l := rest[n2]
			if l == 0 || l > maxCodeLen {
				return nil, errCorrupt
			}
			lens[uint32(sym)] = l
			rest = rest[n2+1:]
		}
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, errCorrupt
		}
		rest = rest[n:]

		_, sorted := canonicalCodes(lens)
		// Canonical decode tables per length.
		var maxLen uint8
		for _, l := range lens {
			if l > maxLen {
				maxLen = l
			}
		}
		firstCode := make([]uint64, maxLen+2)
		firstIdx := make([]int, maxLen+2)
		numAt := make([]int, maxLen+2)
		for _, s := range sorted {
			numAt[lens[s]]++
		}
		var code uint64
		idx := 0
		for l := uint8(1); l <= maxLen; l++ {
			firstCode[l] = code
			firstIdx[l] = idx
			code = (code + uint64(numAt[l])) << 1
			idx += numAt[l]
		}

		r := NewBitReader(rest)
		out := make([]uint32, count)
		for i := uint64(0); i < count; i++ {
			var c uint64
			var l uint8
			for {
				c = (c << 1) | r.ReadBits(1)
				l++
				if l > maxLen {
					return nil, errCorrupt
				}
				if numAt[l] > 0 && c-firstCode[l] < uint64(numAt[l]) {
					out[i] = sorted[firstIdx[l]+int(c-firstCode[l])]
					break
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("huffman: unknown mode %d", mode)
}

// CompressedSize returns the frame size Encode would produce, without
// retaining the frame (used by the offline compressor-selection pass).
func CompressedSize(syms []uint32) int { return len(Encode(syms)) }
