// Package huffman implements the optimized entropy encoder of the paper's
// hybrid compressor (§III-D): a canonical Huffman coder over quantization-bin
// symbols. Unlike prediction-based scientific compressors, no predictor is
// applied first — the paper's observation ❶ (false prediction) shows Lorenzo
// prediction *raises* the entropy of embedding batches, so the coder consumes
// raw bin symbols.
//
// The encoded frame is self-contained: it carries the canonical code-length
// table followed by the bitstream. Degenerate inputs (empty, single distinct
// symbol) and incompressible inputs (raw fallback) are handled explicitly.
//
// Layer: the entropy half of internal/hybrid (the other half is the
// vector-based LZ in internal/vlz); also the residual coder inside
// internal/cuszlike. Pure compute — its cost enters the sim clock only
// through the calibrated codec rates of the codec that wraps it.
//
// Key API: Encode/Decode over []uint32 symbols (zigzagged quantization
// bins), CompressedSize for the selection models, plus the bitio
// reader/writer primitives shared with the other entropy stages. The
// buffered twins Encoder.AppendEncode and Decoder.DecodeInto (append.go)
// emit and consume byte-identical frames with reusable workspaces (zero
// steady-state allocation); SymbolCount sizes a DecodeInto destination
// without decoding.
package huffman
