package huffman

import (
	"bytes"
	"testing"

	"dlrmcomp/internal/testutil"

	"dlrmcomp/internal/tensor"
)

// appendTestInputs spans the three frame modes plus the raw fallback for
// wide alphabets on tiny inputs.
func appendTestInputs() map[string][]uint32 {
	rng := tensor.NewRNG(123)
	skewed := make([]uint32, 4096)
	for i := range skewed {
		skewed[i] = uint32(rng.Intn(8))
		if rng.Float64() < 0.1 {
			skewed[i] = uint32(rng.Intn(200))
		}
	}
	wide := make([]uint32, 48)
	for i := range wide {
		wide[i] = uint32(i * 7919)
	}
	return map[string][]uint32{
		"skewed":   skewed,
		"constant": {5, 5, 5, 5, 5},
		"wide-raw": wide,
		"two-syms": {0, 1, 0, 0, 1, 0},
		"empty":    {},
	}
}

// TestAppendEncodeParity pins byte parity between the workspace encoder and
// the reference Encode across all frame modes, including reuse of a dirty
// encoder.
func TestAppendEncodeParity(t *testing.T) {
	enc := NewEncoder()
	for name, syms := range appendTestInputs() {
		ref := Encode(syms)
		for rep := 0; rep < 2; rep++ {
			got := enc.AppendEncode(nil, syms)
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s rep %d: AppendEncode differs from Encode (%d vs %d bytes)",
					name, rep, len(got), len(ref))
			}
		}
		withPrefix := enc.AppendEncode([]byte{0xEE}, syms)
		if withPrefix[0] != 0xEE || !bytes.Equal(withPrefix[1:], ref) {
			t.Fatalf("%s: prefix append corrupted the frame", name)
		}
	}
}

// TestDecodeIntoParity checks the workspace decoder reconstructs exactly
// what Decode does, and that SymbolCount sizes the destination correctly.
func TestDecodeIntoParity(t *testing.T) {
	dec := NewDecoder()
	for name, syms := range appendTestInputs() {
		frame := Encode(syms)
		ref, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		n, err := SymbolCount(frame)
		if err != nil {
			t.Fatalf("%s: SymbolCount: %v", name, err)
		}
		if n != len(ref) {
			t.Fatalf("%s: SymbolCount = %d, want %d", name, n, len(ref))
		}
		dst := make([]uint32, n)
		if _, err := dec.DecodeInto(dst, frame); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range dst {
			if dst[i] != ref[i] {
				t.Fatalf("%s: symbol %d is %d, want %d", name, i, dst[i], ref[i])
			}
		}
		if _, err := dec.DecodeInto(make([]uint32, n+1), frame); err == nil && n > 0 {
			t.Fatalf("%s: expected error for wrong-size destination", name)
		}
	}
}

// TestDensePathParity pins the dense-table encoding path against both the
// map path and the reference Encode: for any alphabet that qualifies for the
// dense tables, all three must emit identical bytes — including inputs
// engineered to sit near the Huffman-vs-raw decision boundary, where the
// dense path's arithmetic size comparison must pick the same winner the
// materialize-both comparison does.
func TestDensePathParity(t *testing.T) {
	rng := tensor.NewRNG(77)
	inputs := map[string][]uint32{
		"skewed":      appendTestInputs()["skewed"],
		"two-syms":    {0, 1, 0, 0, 1, 0},
		"near-dense":  {maxDenseSym - 1, 0, 1, maxDenseSym - 1, 2},
		"raw-wins":    {0, 1, 2, 3, 4, 5, 6, 7}, // uniform tiny input: raw beats Huffman
		"single-rare": {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 3},
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		fuzz := make([]uint32, n)
		span := 1 + rng.Intn(64)
		for i := range fuzz {
			fuzz[i] = uint32(rng.Intn(span))
			if rng.Float64() < 0.05 {
				fuzz[i] = uint32(rng.Intn(maxDenseSym))
			}
		}
		inputs[string(rune('a'+trial%26))+"-fuzz"] = fuzz
	}
	enc := NewEncoder()
	for name, syms := range inputs {
		var maxSym uint32
		for _, s := range syms {
			if s > maxSym {
				maxSym = s
			}
		}
		if maxSym >= maxDenseSym {
			t.Fatalf("%s: test input does not qualify for the dense path", name)
		}
		ref := Encode(syms)
		dense := enc.appendEncodeDense(nil, syms, maxSym)
		if !bytes.Equal(ref, dense) {
			t.Fatalf("%s: dense path differs from Encode (%d vs %d bytes)", name, len(dense), len(ref))
		}
		mapped := enc.appendEncodeMap(nil, syms)
		if !bytes.Equal(ref, mapped) {
			t.Fatalf("%s: map path differs from Encode (%d vs %d bytes)", name, len(mapped), len(ref))
		}
		viaMax := enc.AppendEncodeMax(nil, syms, maxSym)
		if !bytes.Equal(ref, viaMax) {
			t.Fatalf("%s: AppendEncodeMax differs from Encode", name)
		}
	}
}

// TestAppendRoundTripAllocs pins the zero-allocation steady state.
func TestAppendRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	syms := appendTestInputs()["skewed"]
	enc := NewEncoder()
	dec := NewDecoder()
	var frame []byte
	dst := make([]uint32, len(syms))
	roundTrip := func() {
		frame = enc.AppendEncode(frame[:0], syms)
		if _, err := dec.DecodeInto(dst, frame); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs > 0 {
		t.Fatalf("steady-state round trip allocates %.1f times per op, want 0", allocs)
	}
}
