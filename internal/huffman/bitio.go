package huffman

// BitWriter accumulates bits MSB-first into a byte buffer.
type BitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint // bits currently held in cur
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// Reset empties the writer, keeping the accumulated buffer's capacity so a
// reused writer reaches a zero-allocation steady state.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// WriteBits appends the low n bits of v (MSB of those n bits first).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n > 57 {
		w.WriteBits(v>>32, n-32)
		w.WriteBits(v&0xFFFFFFFF, 32)
		return
	}
	w.cur = (w.cur << n) | (v & ((1 << n) - 1))
	w.nCur += n
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
}

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		pad := 8 - w.nCur
		w.buf = append(w.buf, byte(w.cur<<pad))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	data []byte
	pos  int // byte position
	cur  uint64
	nCur uint
}

// NewBitReader wraps data.
func NewBitReader(data []byte) *BitReader { return &BitReader{data: data} }

// Reset points the reader at data, clearing any buffered bits. A stack- or
// workspace-held BitReader can be Reset per frame instead of reallocated.
func (r *BitReader) Reset(data []byte) {
	r.data, r.pos, r.cur, r.nCur = data, 0, 0, 0
}

// ReadBits reads n bits (n <= 57), returning them right-aligned. Reading
// past the end yields zero bits, which callers bound by symbol counts.
func (r *BitReader) ReadBits(n uint) uint64 {
	for r.nCur < n {
		var b byte
		if r.pos < len(r.data) {
			b = r.data[r.pos]
			r.pos++
		}
		r.cur = (r.cur << 8) | uint64(b)
		r.nCur += 8
	}
	r.nCur -= n
	v := (r.cur >> r.nCur) & ((1 << n) - 1)
	return v
}

// Peek returns the next n bits without consuming them.
func (r *BitReader) Peek(n uint) uint64 {
	for r.nCur < n {
		var b byte
		if r.pos < len(r.data) {
			b = r.data[r.pos]
			r.pos++
		}
		r.cur = (r.cur << 8) | uint64(b)
		r.nCur += 8
	}
	return (r.cur >> (r.nCur - n)) & ((1 << n) - 1)
}

// Skip consumes n bits previously Peeked.
func (r *BitReader) Skip(n uint) {
	if r.nCur < n {
		r.Peek(n)
	}
	r.nCur -= n
}
