package netmodel

import (
	"testing"
	"time"
)

func TestTimelineSameLinkContentionSerializes(t *testing.T) {
	tl := NewTimeline()
	// Two transfers both ready at 0 on the same link must serialize.
	d1 := tl.Reserve(ResInter, 0, 10*time.Millisecond)
	d2 := tl.Reserve(ResInter, 0, 5*time.Millisecond)
	if d1 != 10*time.Millisecond {
		t.Fatalf("first transfer done at %v, want 10ms", d1)
	}
	if d2 != 15*time.Millisecond {
		t.Fatalf("contending transfer done at %v, want 15ms (serialized after the first)", d2)
	}
	if got := tl.End(); got != 15*time.Millisecond {
		t.Fatalf("makespan %v, want 15ms", got)
	}
}

func TestTimelineDifferentLinksOverlap(t *testing.T) {
	tl := NewTimeline()
	d1 := tl.Reserve(ResInter, 0, 10*time.Millisecond)
	d2 := tl.Reserve(ResIntra, 0, 8*time.Millisecond)
	d3 := tl.Reserve(ResDevice, 0, 6*time.Millisecond)
	if d1 != 10*time.Millisecond || d2 != 8*time.Millisecond || d3 != 6*time.Millisecond {
		t.Fatalf("independent resources serialized: %v %v %v", d1, d2, d3)
	}
	if got := tl.End(); got != 10*time.Millisecond {
		t.Fatalf("makespan %v, want 10ms (slowest lane)", got)
	}
}

func TestTimelineDependencyEdge(t *testing.T) {
	tl := NewTimeline()
	// Work ready only at 20ms starts then even on a free link.
	done := tl.Reserve(ResInter, 20*time.Millisecond, 5*time.Millisecond)
	if done != 25*time.Millisecond {
		t.Fatalf("done at %v, want 25ms", done)
	}
	// A later reservation ready earlier still queues behind it.
	done2 := tl.Reserve(ResInter, 0, time.Millisecond)
	if done2 != 26*time.Millisecond {
		t.Fatalf("done at %v, want 26ms", done2)
	}
}

func TestTimelineZeroCostThreadsDependency(t *testing.T) {
	tl := NewTimeline()
	tl.Reserve(ResIntra, 0, 4*time.Millisecond)
	// Zero cost: returns the effective start without occupying the link.
	start := tl.Reserve(ResIntra, 2*time.Millisecond, 0)
	if start != 4*time.Millisecond {
		t.Fatalf("zero-cost start %v, want 4ms (after busy-until)", start)
	}
	if got := tl.BusyUntil(ResIntra); got != 4*time.Millisecond {
		t.Fatalf("zero-cost reservation moved busy-until to %v", got)
	}
	if got := tl.End(); got != 4*time.Millisecond {
		t.Fatalf("zero-cost reservation moved makespan to %v", got)
	}
}

func TestTimelineReserveLinkCost(t *testing.T) {
	tl := NewTimeline()
	done := tl.ReserveLinkCost(time.Millisecond, LinkCost{
		Intra: 3 * time.Millisecond,
		Inter: 7 * time.Millisecond,
	})
	// Both links start at 1ms and run in parallel; done when both drain.
	if done != 8*time.Millisecond {
		t.Fatalf("link-cost completion %v, want 8ms", done)
	}
	if tl.BusyUntil(ResIntra) != 4*time.Millisecond || tl.BusyUntil(ResInter) != 8*time.Millisecond {
		t.Fatalf("per-link busy-until %v/%v, want 4ms/8ms",
			tl.BusyUntil(ResIntra), tl.BusyUntil(ResInter))
	}
	// A second collective contends per link.
	done2 := tl.ReserveLinkCost(0, LinkCost{Intra: time.Millisecond, Inter: time.Millisecond})
	if done2 != 9*time.Millisecond {
		t.Fatalf("second collective done %v, want 9ms (inter lane serializes)", done2)
	}
}
