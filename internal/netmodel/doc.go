// Package netmodel provides the analytic performance model that substitutes
// for the paper's physical testbed (8 nodes × 4 A100s on a Slingshot-10
// interconnect). Communication time uses an α-β (latency–bandwidth) model;
// compute time uses device roofline rates; codec time uses throughput
// numbers either measured from the Go implementations or calibrated to the
// GPU figures the paper reports. Every experiment that reports seconds or
// speedups derives them through this model, so the who-wins/crossover shape
// of the paper's figures is reproduced even though the absolute Go-on-CPU
// speeds differ from CUDA kernels.
//
// Layer: the bottom of the simulation stack. internal/cluster charges its
// collectives through this package, internal/dist charges device compute,
// and the experiment drivers read the resulting buckets back through
// internal/profileutil. netmodel itself charges nothing — it only prices
// work.
//
// Key types:
//
//   - Topology — the pluggable interconnect interface collectives cost
//     their traffic against. Two implementations: Network, the flat α-β
//     single-link model (Slingshot10 returns the paper's calibration), and
//     Hierarchical, the two-level testbed shape (per-rank NVLink-class
//     intra-node link, per-node NIC-class inter-node link;
//     PaperHierarchical returns the calibrated instance). Costs come back
//     as a LinkCost attributing time to the two link classes.
//   - Device — per-GPU roofline rates for MLP math and embedding-bag
//     gathers (A100 returns the calibrated instance).
//   - CodecRates / CodecTime — calibrated GPU (de)compression throughputs
//     keyed by codec name (PaperCodecRates).
//   - Timeline — per-link occupancy clocks for the comm/compute overlap
//     engine: work is reserved on a named resource (ResDevice, ResIntra,
//     ResInter) no earlier than its dependencies and no earlier than the
//     resource frees up, so in-flight transfers on different links overlap
//     while contenders for one link serialize. The pipelined trainer in
//     internal/dist replays each step's component costs onto a Timeline and
//     reads the makespan as the overlapped end-to-end time.
package netmodel
