package netmodel

import (
	"fmt"
	"time"
)

// Network is an α-β interconnect model.
type Network struct {
	// AllToAllBandwidth is the effective per-rank all-to-all bandwidth in
	// bytes/s (the paper quotes 4 GB/s for its cluster).
	AllToAllBandwidth float64
	// AllReduceBandwidth is the effective ring-allreduce bandwidth in
	// bytes/s.
	AllReduceBandwidth float64
	// Latency is the per-message software+wire latency.
	Latency time.Duration
}

// Slingshot10 returns the calibrated model of the paper's cluster: 4 GB/s
// effective all-to-all throughput (§IV-C) and microsecond-scale latency.
func Slingshot10() Network {
	return Network{
		AllToAllBandwidth:  4e9,
		AllReduceBandwidth: 60e9, // hierarchical NVLink+ring for dense grads
		Latency:            2 * time.Microsecond,
	}
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// AllToAllTime models one all-to-all step: every rank sends sendBytes[r]
// in total (across all peers). The step completes when the busiest rank
// finishes. Peers are posted in parallel (as NCCL does), so the latency
// floor grows logarithmically with the rank count rather than linearly:
// (1 + ceil(log2 ranks)) × Latency on top of the wire time.
//
// ranks <= 1 returns 0 by design, not omission: a single rank has no peers,
// so the collective is a no-op — the degenerate case the 1-rank parity
// baselines rely on. sendBytes is not inspected (it may be nil).
func (n Network) AllToAllTime(ranks int, sendBytes []int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	if len(sendBytes) != ranks {
		panic(fmt.Sprintf("netmodel: sendBytes has %d entries for %d ranks", len(sendBytes), ranks))
	}
	var maxBytes int64
	for _, b := range sendBytes {
		if b > maxBytes {
			maxBytes = b
		}
	}
	wire := time.Duration(float64(maxBytes) / n.AllToAllBandwidth * float64(time.Second))
	return wire + time.Duration(1+log2ceil(ranks))*n.Latency
}

// MetadataTime models the size-exchange preceding a variable-size
// all-to-all: bytesPerPair bytes per peer, posted in parallel and
// overlapped with the tail of compression, so it costs one latency plus
// its wire time. ranks <= 1 returns 0: with no peers there are no sizes to
// exchange.
func (n Network) MetadataTime(ranks int, bytesPerPair int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	wire := time.Duration(float64(bytesPerPair*int64(ranks-1)) / n.AllToAllBandwidth * float64(time.Second))
	return wire + n.Latency
}

// UniformAllToAllTime is AllToAllTime with every rank sending the same
// number of bytes. ranks <= 1 returns 0 (no peers, no exchange).
func (n Network) UniformAllToAllTime(ranks int, bytesPerRank int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	sends := make([]int64, ranks)
	for i := range sends {
		sends[i] = bytesPerRank
	}
	return n.AllToAllTime(ranks, sends)
}

// AllReduceTime models a hierarchical (tree/ring hybrid) allreduce of bytes
// payload per rank: 2(ranks-1)/ranks × bytes of wire traffic plus a
// 2·ceil(log2 ranks) latency floor. ranks <= 1 returns 0: a lone rank
// already holds the global sum.
func (n Network) AllReduceTime(ranks int, bytes int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	factor := 2 * float64(ranks-1) / float64(ranks)
	wire := time.Duration(factor * float64(bytes) / n.AllReduceBandwidth * float64(time.Second))
	return wire + time.Duration(2*log2ceil(ranks))*n.Latency
}

// Device models per-GPU compute rates.
type Device struct {
	// FLOPS is sustained dense math throughput (FLOP/s).
	FLOPS float64
	// MemBandwidth is HBM bandwidth (bytes/s), which bounds embedding
	// lookups.
	MemBandwidth float64
}

// A100 returns sustained (not peak) rates for the paper's A100-40GB GPUs.
func A100() Device {
	return Device{
		FLOPS:        100e12, // sustained TF32 tensor-core rate
		MemBandwidth: 1.3e12,
	}
}

// PaperDevice returns the sustained MLP rate representative of DLRM-sized
// layers on the paper's A100s: small per-GPU batches never reach peak
// tensor throughput, so the timing experiments calibrate against this
// rather than A100()'s dense-math ceiling.
func PaperDevice() Device {
	return Device{FLOPS: 3e12, MemBandwidth: 1.3e12}
}

// MLPTime models a dense forward or backward pass of the given FLOP count.
// Positive work is never rounded below 1ns so accounting stays monotone at
// toy scales.
func (d Device) MLPTime(flops float64) time.Duration {
	return atLeast1ns(flops, time.Duration(flops/d.FLOPS*float64(time.Second)))
}

// LookupTime models embedding-bag gathers of the given byte volume.
func (d Device) LookupTime(bytes int64) time.Duration {
	return atLeast1ns(float64(bytes), time.Duration(float64(bytes)/d.MemBandwidth*float64(time.Second)))
}

func atLeast1ns(work float64, d time.Duration) time.Duration {
	if work > 0 && d <= 0 {
		return time.Nanosecond
	}
	return d
}

// CodecRates are (de)compression throughputs in bytes/s of uncompressed
// payload processed.
type CodecRates struct {
	Compress   float64
	Decompress float64
}

// PaperCodecRates returns the GPU throughputs the paper reports (§IV-C),
// used for calibrated end-to-end projections. Keys match codec names.
func PaperCodecRates() map[string]CodecRates {
	return map[string]CodecRates{
		"ours-vector":  {Compress: 40.5e9, Decompress: 205.4e9},
		"ours-huffman": {Compress: 78.4e9, Decompress: 38.9e9},
		// The hybrid pays the cheaper of the two paths per table; using the
		// vector rates is conservative for compression and optimistic for
		// decompression, matching the paper's aggregate numbers.
		"ours-hybrid": {Compress: 52e9, Decompress: 96e9},
		"lz4-like":    {Compress: 35e9, Decompress: 120e9}, // nvCOMP-LZ4 class
		"deflate":     {Compress: 30.1e9, Decompress: 109.7e9},
		"fz-gpu-like": {Compress: 136e9, Decompress: 136e9},
		"cusz-like":   {Compress: 90e9, Decompress: 60e9},
		"fp16":        {Compress: 600e9, Decompress: 600e9}, // a cast kernel
		"fp8-e4m3":    {Compress: 600e9, Decompress: 600e9},
		"fp8-e5m2":    {Compress: 600e9, Decompress: 600e9},
	}
}

// CodecTime models compressing or decompressing bytes at rate.
func CodecTime(bytes int64, rate float64) time.Duration {
	if rate <= 0 {
		return 0
	}
	return atLeast1ns(float64(bytes), time.Duration(float64(bytes)/rate*float64(time.Second)))
}

// KernelLaunchOverhead is the per-kernel launch cost used by the buffer
// optimization study (§III-E): small chunks are dominated by launches.
const KernelLaunchOverhead = 10 * time.Microsecond
