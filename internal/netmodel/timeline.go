package netmodel

import "time"

// Resource names the overlap engine reserves occupancy on. The device is a
// resource like the links: one fleet-wide compute lane (the busiest rank
// bounds a synchronous collective step, so per-step device charges already
// aggregate the fleet).
const (
	// ResDevice is the per-rank compute lane (MLP, lookup, codec kernels).
	ResDevice = "dev"
	// ResIntra is the NVLink-class intra-node link.
	ResIntra = "intra"
	// ResInter is the NIC-class inter-node link (the single wire of a flat
	// topology also charges here).
	ResInter = "inter"
)

// Timeline tracks per-link occupancy so in-flight work on different links
// genuinely overlaps while contending work on the same link serializes. It
// is the substrate of the comm/compute overlap schedule: the pipelined
// trainer reserves every step component (device compute, intra-link
// payloads, inter-link payloads) on its resource and reads the makespan
// back out, instead of summing components serially.
//
// A Timeline is a scalar clock per resource, not an event queue: Reserve
// books work on a resource no earlier than both the caller's ready time
// (its dependencies) and the resource's busy-until time (its contention),
// in call order. Callers must therefore reserve work roughly in start-time
// order per resource — which the pipelined step schedule does by
// construction. The zero value is not usable; call NewTimeline.
type Timeline struct {
	busy map[string]time.Duration
	end  time.Duration
}

// NewTimeline returns an empty timeline with every resource free at 0.
func NewTimeline() *Timeline {
	return &Timeline{busy: make(map[string]time.Duration)}
}

// Reserve books cost on the named resource, starting no earlier than ready
// (the dependency edge) and no earlier than the resource's busy-until time
// (the contention edge), and returns the completion time. A zero (or
// negative) cost is a no-op that returns the effective start time without
// occupying the resource, so dependency chains can thread through resources
// a particular configuration never charges (e.g. the intra link of a flat
// topology).
func (t *Timeline) Reserve(res string, ready, cost time.Duration) time.Duration {
	start := ready
	if b := t.busy[res]; b > start {
		start = b
	}
	if cost <= 0 {
		return start
	}
	done := start + cost
	t.busy[res] = done
	if done > t.end {
		t.end = done
	}
	return done
}

// ReserveLinkCost books a collective's per-link components concurrently:
// the intra share on ResIntra and the inter share on ResInter, both ready
// at the same dependency time. It returns the later completion — the
// collective is done when both links drain. This models the two link
// classes of a hierarchical machine running in parallel, which the serial
// LinkCost.Total accounting deliberately does not.
func (t *Timeline) ReserveLinkCost(ready time.Duration, c LinkCost) time.Duration {
	intra := t.Reserve(ResIntra, ready, c.Intra)
	inter := t.Reserve(ResInter, ready, c.Inter)
	if intra > inter {
		return intra
	}
	return inter
}

// BusyUntil returns when the named resource frees up (0 if never reserved).
func (t *Timeline) BusyUntil(res string) time.Duration { return t.busy[res] }

// End returns the makespan: the completion time of the latest reservation.
func (t *Timeline) End() time.Duration { return t.end }
