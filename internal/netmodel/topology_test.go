package netmodel

import (
	"testing"
	"time"
)

func testHier() Hierarchical { return PaperHierarchical(4) }

// uniformMatrix builds a pairwise matrix where every rank sends b bytes to
// every peer.
func uniformMatrix(ranks int, b int64) [][]int64 {
	m := make([][]int64, ranks)
	for from := range m {
		m[from] = make([]int64, ranks)
		for to := range m[from] {
			if to != from {
				m[from][to] = b
			}
		}
	}
	return m
}

func TestHierarchicalNodeLayout(t *testing.T) {
	h := testHier()
	for _, c := range []struct{ rank, node int }{{0, 0}, {3, 0}, {4, 1}, {7, 1}, {31, 7}} {
		if got := h.NodeOf(c.rank); got != c.node {
			t.Errorf("NodeOf(%d) = %d, want %d", c.rank, got, c.node)
		}
	}
	for _, c := range []struct{ ranks, nodes int }{{1, 1}, {4, 1}, {5, 2}, {32, 8}, {33, 9}, {128, 32}} {
		if got := h.Nodes(c.ranks); got != c.nodes {
			t.Errorf("Nodes(%d) = %d, want %d", c.ranks, got, c.nodes)
		}
	}
}

func TestFlatTopologyMatchesNetwork(t *testing.T) {
	n := Slingshot10()
	m := uniformMatrix(8, 1<<20)
	cost := n.AllToAllCost(m)
	if cost.Intra != 0 {
		t.Fatal("flat topology must attribute nothing to intra")
	}
	if want := n.UniformAllToAllTime(8, 7<<20); cost.Inter != want {
		t.Fatalf("AllToAllCost = %v, want %v", cost.Inter, want)
	}
	if n.TwoPhaseAllToAllCost(m) != cost {
		t.Fatal("flat two-phase must degenerate to direct")
	}
	if md := n.MetadataCost(8, 8); md.Inter != n.MetadataTime(8, 8) || md.Intra != 0 {
		t.Fatalf("MetadataCost = %+v", md)
	}
}

func TestHierarchicalDegenerate(t *testing.T) {
	h := testHier()
	if c := h.AllToAllCost(nil); c != (LinkCost{}) {
		t.Fatalf("empty matrix costs %+v", c)
	}
	if c := h.AllToAllCost(uniformMatrix(1, 1<<30)); c != (LinkCost{}) {
		t.Fatalf("1-rank matrix costs %+v", c)
	}
	if c := h.TwoPhaseAllToAllCost(uniformMatrix(1, 1<<30)); c != (LinkCost{}) {
		t.Fatalf("1-rank two-phase costs %+v", c)
	}
	if c := h.MetadataCost(1, 8); c != (LinkCost{}) {
		t.Fatalf("1-rank metadata costs %+v", c)
	}
	if h.AllReduceTime(1, 1<<30) != 0 {
		t.Fatal("1-rank allreduce must be free")
	}
}

// TestHierarchicalSingleNodeIsIntraOnly: 4 ranks on one node never touch
// the NIC.
func TestHierarchicalSingleNodeIsIntraOnly(t *testing.T) {
	h := testHier()
	cost := h.AllToAllCost(uniformMatrix(4, 1<<20))
	if cost.Inter != 0 {
		t.Fatalf("single-node cluster charged inter %v", cost.Inter)
	}
	if cost.Intra <= 0 {
		t.Fatal("single-node cluster must charge intra time")
	}
	if tp := h.TwoPhaseAllToAllCost(uniformMatrix(4, 1<<20)); tp != cost {
		t.Fatalf("single-node two-phase %+v, want direct fallback %+v", tp, cost)
	}
}

// TestHierarchicalSplitsLinks: with multiple nodes, both link classes are
// charged, and the intra link is far cheaper per byte.
func TestHierarchicalSplitsLinks(t *testing.T) {
	h := testHier()
	cost := h.AllToAllCost(uniformMatrix(32, 1<<20))
	if cost.Intra <= 0 || cost.Inter <= 0 {
		t.Fatalf("expected both links charged, got %+v", cost)
	}
	if cost.Intra >= cost.Inter {
		t.Fatalf("intra (%v) should be much cheaper than inter (%v)", cost.Intra, cost.Inter)
	}
	md := h.MetadataCost(32, 8)
	if md.Intra <= 0 || md.Inter <= 0 {
		t.Fatalf("metadata should touch both links, got %+v", md)
	}
}

// TestTwoPhaseLatencyAdvantage: with tiny (compressed-scale) payloads, the
// two-phase algorithm beats the direct exchange because the slow-link
// latency floor shrinks from log2(ranks) to log2(nodes).
func TestTwoPhaseLatencyAdvantage(t *testing.T) {
	h := testHier()
	m := uniformMatrix(128, 64) // 64 B per pair: latency-bound
	direct := h.AllToAllCost(m).Total()
	twoPhase := h.TwoPhaseAllToAllCost(m).Total()
	if twoPhase >= direct {
		t.Fatalf("two-phase (%v) should beat direct (%v) on tiny payloads", twoPhase, direct)
	}
}

// TestTwoPhaseStagingCost: with huge payloads the staging traffic of
// phases 1/3 makes two-phase pay more intra time than direct, while the
// NIC (inter) wire term stays identical — the bandwidth through the slow
// link does not depend on the algorithm.
func TestTwoPhaseStagingCost(t *testing.T) {
	h := testHier()
	m := uniformMatrix(32, 1<<24)
	direct := h.AllToAllCost(m)
	twoPhase := h.TwoPhaseAllToAllCost(m)
	if twoPhase.Intra <= direct.Intra {
		t.Fatalf("staging must cost extra intra time: two-phase %v vs direct %v", twoPhase.Intra, direct.Intra)
	}
	dWire := direct.Inter - time.Duration(1+log2ceil(32))*h.Inter.Latency
	tWire := twoPhase.Inter - time.Duration(1+log2ceil(8))*h.Inter.Latency
	if dWire != tWire {
		t.Fatalf("inter wire time must not depend on the algorithm: %v vs %v", dWire, tWire)
	}
}

// TestHierarchicalCalibration: per-rank effective inter bandwidth of the
// paper model matches the flat Slingshot10 calibration, so flat-vs-
// hierarchical sweeps compare like for like.
func TestHierarchicalCalibration(t *testing.T) {
	h := PaperHierarchical(4)
	if h.Inter.Bandwidth != 16e9 {
		t.Fatalf("NIC bandwidth %v, want 4 ranks x 4 GB/s", h.Inter.Bandwidth)
	}
	if PaperHierarchical(0).RanksPerNode != 4 {
		t.Fatal("default ranks-per-node should be the testbed's 4")
	}
	// 8 nodes x 4 ranks, uniform load: node aggregate = 4x per-rank send;
	// wire time through the NIC equals the flat per-rank model's.
	ranks, perPair := 32, int64(1<<20)
	perRank := perPair * int64(ranks-1)
	flatWire := time.Duration(float64(perRank) / 4e9 * float64(time.Second))
	cost := h.AllToAllCost(uniformMatrix(ranks, perPair))
	// Remove the latency floor; cross-node fraction is 28/31 of the send.
	interWire := cost.Inter - time.Duration(1+log2ceil(ranks))*h.Inter.Latency
	wantWire := time.Duration(float64(flatWire) * 28.0 / 31.0)
	if diff := interWire - wantWire; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("inter wire %v, want ≈ %v", interWire, wantWire)
	}
}

func TestHierarchicalAllReduce(t *testing.T) {
	h := Hierarchical{RanksPerNode: 4, Inter: Link{Latency: 0}, AllReduceBandwidth: 1e9}
	if got := h.AllReduceTime(2, 1e9); got != time.Second {
		t.Fatalf("allreduce = %v, want 1s", got)
	}
	if h.AllReduceTime(32, 1e9) <= h.AllReduceTime(2, 1e9) {
		t.Fatal("allreduce cost must grow with rank count")
	}
}

func TestHierarchicalPanicsOnRaggedMatrix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testHier().AllToAllCost([][]int64{{0, 1}, {1}})
}
