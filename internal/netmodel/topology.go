package netmodel

import (
	"fmt"
	"time"
)

// Topology abstracts the interconnect the simulated cluster charges its
// collectives against. The flat Network is one implementation (a single
// α-β link, no node structure); Hierarchical models the paper's testbed
// shape — nodes of NVLink-connected GPUs joined by a per-node NIC — and
// attributes time separately to the intra-node and inter-node links.
//
// All cost methods are pure functions of payload sizes: the cluster
// exchanges real bytes through shared memory and only the clock is modelled,
// so swapping topologies never changes training math.
type Topology interface {
	// Name identifies the topology in logs and experiment tables.
	Name() string
	// NodeOf returns the node index housing a rank (always 0 when flat).
	NodeOf(rank int) int
	// Nodes returns how many nodes a cluster of the given rank count spans
	// (always 1 when flat).
	Nodes(ranks int) int
	// AllToAllCost models one direct (single-phase) all-to-all over the
	// pairwise payload matrix bytes[from][to]; the diagonal is ignored.
	// A 0- or 1-rank matrix costs zero: with no peers the collective is a
	// no-op.
	AllToAllCost(bytes [][]int64) LinkCost
	// TwoPhaseAllToAllCost models the hierarchical two-phase algorithm
	// over the same matrix: same-node pairs exchange over the fast link
	// while cross-node payloads are gathered at each node leader, traded
	// leader-to-leader over the slow link, and scattered locally. Flat
	// topologies (and single-node clusters) fall back to AllToAllCost.
	TwoPhaseAllToAllCost(bytes [][]int64) LinkCost
	// MetadataCost models the size exchange preceding a variable-size
	// all-to-all (stage ② of the paper's protocol). Zero for ranks <= 1.
	MetadataCost(ranks int, bytesPerPair int64) LinkCost
	// AllReduceTime models a dense-gradient allreduce of bytes payload per
	// rank. Zero for ranks <= 1.
	AllReduceTime(ranks int, bytes int64) time.Duration
}

// LinkCost attributes a collective's simulated time to the two link classes
// of a hierarchical machine. Flat topologies report everything under Inter
// (the single wire); single-node hierarchical clusters report everything
// under Intra.
type LinkCost struct {
	Intra time.Duration
	Inter time.Duration
}

// Total is the end-to-end duration of the collective. Phases are charged
// serially (no intra/inter overlap is modelled), which is conservative for
// the hierarchical algorithm.
func (c LinkCost) Total() time.Duration { return c.Intra + c.Inter }

// Add sums two costs per link.
func (c LinkCost) Add(o LinkCost) LinkCost {
	return LinkCost{Intra: c.Intra + o.Intra, Inter: c.Inter + o.Inter}
}

// Scale multiplies both components by f. The fault injector uses it to
// model stragglers and jitter: a collective completes when its slowest
// participant does, so inflating the whole cost by the worst multiplier
// is the right first-order model.
func (c LinkCost) Scale(f float64) LinkCost {
	return LinkCost{
		Intra: time.Duration(float64(c.Intra) * f),
		Inter: time.Duration(float64(c.Inter) * f),
	}
}

// --- flat Network as a Topology ---------------------------------------------

// Name implements Topology.
func (n Network) Name() string { return "flat" }

// NodeOf implements Topology: a flat network is one node.
func (n Network) NodeOf(int) int { return 0 }

// Nodes implements Topology: a flat network is one node.
func (n Network) Nodes(int) int { return 1 }

// AllToAllCost implements Topology over the single flat link; the whole
// cost is attributed to Inter (the wire).
func (n Network) AllToAllCost(bytes [][]int64) LinkCost {
	ranks := len(bytes)
	if ranks <= 1 {
		return LinkCost{}
	}
	sends := make([]int64, ranks)
	for from, row := range bytes {
		var total int64
		for to, b := range row {
			if to != from {
				total += b
			}
		}
		sends[from] = total
	}
	return LinkCost{Inter: n.AllToAllTime(ranks, sends)}
}

// TwoPhaseAllToAllCost implements Topology: with no node structure the
// two-phase algorithm degenerates to the direct exchange.
func (n Network) TwoPhaseAllToAllCost(bytes [][]int64) LinkCost {
	return n.AllToAllCost(bytes)
}

// MetadataCost implements Topology.
func (n Network) MetadataCost(ranks int, bytesPerPair int64) LinkCost {
	return LinkCost{Inter: n.MetadataTime(ranks, bytesPerPair)}
}

// --- hierarchical two-level topology ----------------------------------------

// Link is one α-β link class of a hierarchical machine.
type Link struct {
	// Bandwidth in bytes/s. For the intra-node link this is per rank (each
	// GPU has its own NVLink ports); for the inter-node link it is per node
	// (all of a node's ranks share the NIC).
	Bandwidth float64
	// Latency is the per-message software+wire latency.
	Latency time.Duration
}

// Hierarchical is a two-level topology: Nodes of RanksPerNode ranks each,
// an NVLink-class Intra link inside a node and a NIC-class Inter link
// between nodes. Ranks are assigned to nodes contiguously (rank r lives on
// node r/RanksPerNode), matching how MPI ranks map onto the paper's 8-node
// × 4-A100 testbed.
type Hierarchical struct {
	// RanksPerNode is the node width; values < 1 are treated as 1.
	RanksPerNode int
	// Intra is the per-rank link between GPUs of one node.
	Intra Link
	// Inter is the per-node link between nodes.
	Inter Link
	// AllReduceBandwidth is the effective hierarchical (NVLink+ring)
	// allreduce bandwidth in bytes/s for dense gradients.
	AllReduceBandwidth float64
}

// PaperHierarchical returns the two-level model of the paper's cluster
// (§IV-A): NVLink inside a node, Slingshot-10 between nodes. The inter-node
// NIC bandwidth is ranksPerNode × 4 GB/s so the per-rank effective all-to-all
// bandwidth matches the flat Slingshot10() calibration, making flat-vs-
// hierarchical sweeps an apples-to-apples comparison. ranksPerNode <= 0
// selects the testbed's 4 GPUs per node.
func PaperHierarchical(ranksPerNode int) Hierarchical {
	if ranksPerNode <= 0 {
		ranksPerNode = 4
	}
	return Hierarchical{
		RanksPerNode:       ranksPerNode,
		Intra:              Link{Bandwidth: 150e9, Latency: 300 * time.Nanosecond},
		Inter:              Link{Bandwidth: 4e9 * float64(ranksPerNode), Latency: 2 * time.Microsecond},
		AllReduceBandwidth: 60e9,
	}
}

func (h Hierarchical) rpn() int {
	if h.RanksPerNode < 1 {
		return 1
	}
	return h.RanksPerNode
}

// Name implements Topology.
func (h Hierarchical) Name() string { return "hierarchical" }

// NodeOf implements Topology: contiguous rank-to-node assignment.
func (h Hierarchical) NodeOf(rank int) int { return rank / h.rpn() }

// Nodes implements Topology.
func (h Hierarchical) Nodes(ranks int) int {
	if ranks <= 0 {
		return 1
	}
	return (ranks + h.rpn() - 1) / h.rpn()
}

// AllToAllCost implements Topology for the direct (single-phase) algorithm:
// every rank posts to every peer, same-node pairs over the fast per-rank
// link and cross-node pairs through the shared per-node NIC. Intra cost is
// bounded by the busiest rank's local traffic, inter cost by the busiest
// node's aggregate cross-node traffic. The inter latency floor grows with
// log2(ranks) because every rank posts to every remote peer.
func (h Hierarchical) AllToAllCost(bytes [][]int64) LinkCost {
	ranks := len(bytes)
	if ranks <= 1 {
		return LinkCost{}
	}
	h.checkSquare(bytes)
	nodes := h.Nodes(ranks)
	var maxIntra int64
	nodeOut := make([]int64, nodes)
	for from, row := range bytes {
		var intra int64
		for to, b := range row {
			if to == from {
				continue
			}
			if h.NodeOf(to) == h.NodeOf(from) {
				intra += b
			} else {
				nodeOut[h.NodeOf(from)] += b
			}
		}
		if intra > maxIntra {
			maxIntra = intra
		}
	}
	var cost LinkCost
	if width := min(h.rpn(), ranks); width > 1 {
		cost.Intra = wireTime(maxIntra, h.Intra.Bandwidth) +
			time.Duration(1+log2ceil(width))*h.Intra.Latency
	}
	if nodes > 1 {
		cost.Inter = wireTime(maxInt64s(nodeOut), h.Inter.Bandwidth) +
			time.Duration(1+log2ceil(ranks))*h.Inter.Latency
	}
	return cost
}

// TwoPhaseAllToAllCost implements Topology for the hierarchical algorithm:
//
//	phase 1 (intra): same-node pairs exchange directly while each node
//	  leader drains its node's outbound cross-node bytes over the fast link;
//	phase 2 (inter): leaders exchange node-to-node bundles over the NIC,
//	  posting to only nodes-1 peers, so the slow-link latency floor grows
//	  with log2(nodes) instead of log2(ranks);
//	phase 3 (intra): leaders scatter inbound bundles to their local ranks.
//
// The bandwidth through the NIC is identical to the direct algorithm (the
// same aggregate crosses it); the win is fewer and larger slow-link
// messages, paid for with the staging traffic of phases 1 and 3.
func (h Hierarchical) TwoPhaseAllToAllCost(bytes [][]int64) LinkCost {
	ranks := len(bytes)
	if ranks <= 1 {
		return LinkCost{}
	}
	nodes := h.Nodes(ranks)
	if nodes <= 1 {
		return h.AllToAllCost(bytes) // pure intra: nothing to stage
	}
	h.checkSquare(bytes)
	var maxLocal int64
	nodeOut := make([]int64, nodes)
	nodeIn := make([]int64, nodes)
	for from, row := range bytes {
		var local int64
		for to, b := range row {
			if to == from {
				continue
			}
			if h.NodeOf(to) == h.NodeOf(from) {
				local += b
				continue
			}
			nodeOut[h.NodeOf(from)] += b
			nodeIn[h.NodeOf(to)] += b
		}
		if local > maxLocal {
			maxLocal = local
		}
	}
	maxOut := maxInt64s(nodeOut)
	var cost LinkCost
	if width := min(h.rpn(), ranks); width > 1 {
		intraBytes := maxLocal + maxOut + maxInt64s(nodeIn)
		cost.Intra = wireTime(intraBytes, h.Intra.Bandwidth) +
			time.Duration(2*(1+log2ceil(width)))*h.Intra.Latency
	}
	cost.Inter = wireTime(maxOut, h.Inter.Bandwidth) +
		time.Duration(1+log2ceil(nodes))*h.Inter.Latency
	return cost
}

// MetadataCost implements Topology: the size exchange runs once per link
// class — local peers swap their per-pair sizes over the fast link and node
// leaders swap bundle sizes over the NIC — each costing one latency plus
// wire time, as in the flat model.
func (h Hierarchical) MetadataCost(ranks int, bytesPerPair int64) LinkCost {
	if ranks <= 1 {
		return LinkCost{}
	}
	nodes := h.Nodes(ranks)
	var cost LinkCost
	if width := min(h.rpn(), ranks); width > 1 {
		cost.Intra = wireTime(bytesPerPair*int64(width-1), h.Intra.Bandwidth) + h.Intra.Latency
	}
	if nodes > 1 {
		cost.Inter = wireTime(bytesPerPair*int64(nodes-1), h.Inter.Bandwidth) + h.Inter.Latency
	}
	return cost
}

// AllReduceTime implements Topology with the same 2(N-1)/N ring factor as
// the flat model, at the calibrated hierarchical allreduce bandwidth.
// Zero for ranks <= 1: a lone rank already holds the global sum.
func (h Hierarchical) AllReduceTime(ranks int, bytes int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	factor := 2 * float64(ranks-1) / float64(ranks)
	wire := time.Duration(factor * float64(bytes) / h.AllReduceBandwidth * float64(time.Second))
	return wire + time.Duration(2*log2ceil(ranks))*h.Inter.Latency
}

func (h Hierarchical) checkSquare(bytes [][]int64) {
	for from, row := range bytes {
		if len(row) != len(bytes) {
			panic(fmt.Sprintf("netmodel: pairwise matrix row %d has %d entries for %d ranks",
				from, len(row), len(bytes)))
		}
	}
}

func wireTime(bytes int64, bandwidth float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bandwidth * float64(time.Second))
}

func maxInt64s(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ByName maps a configuration string onto a paper-calibrated topology:
// "flat" (or "") is the single-link Slingshot10 model, "hier" (or
// "hierarchical") the two-level PaperHierarchical model with the given
// ranks-per-node width (<= 0 selects the testbed's 4). It is the single
// name-to-topology mapping the drivers and the scenario layer share.
func ByName(name string, ranksPerNode int) (Topology, error) {
	switch name {
	case "", "flat":
		return Slingshot10(), nil
	case "hier", "hierarchical":
		return PaperHierarchical(ranksPerNode), nil
	}
	return nil, fmt.Errorf("netmodel: unknown topology %q (want flat or hier)", name)
}

// Interface conformance: both models are pluggable topologies.
var (
	_ Topology = Network{}
	_ Topology = Hierarchical{}
)
