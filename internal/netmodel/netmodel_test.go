package netmodel

import (
	"testing"
	"time"
)

func TestAllToAllTimeScalesWithBytes(t *testing.T) {
	n := Slingshot10()
	t1 := n.UniformAllToAllTime(32, 1<<20)
	t2 := n.UniformAllToAllTime(32, 1<<24)
	if t2 <= t1 {
		t.Fatal("more bytes must take longer")
	}
	// 16 MB at 4 GB/s ≈ 4 ms wire time.
	want := 4 * time.Millisecond
	if t2 < want || t2 > want+time.Millisecond {
		t.Fatalf("16MB all-to-all = %v, want ≈ %v", t2, want)
	}
}

func TestAllToAllBottleneckRank(t *testing.T) {
	n := Network{AllToAllBandwidth: 1e9, Latency: 0}
	uneven := n.AllToAllTime(4, []int64{100, 100, 100, 1e9})
	even := n.AllToAllTime(4, []int64{1e9, 1e9, 1e9, 1e9})
	if uneven != even {
		t.Fatal("all-to-all completes with the busiest rank")
	}
}

func TestAllToAllDegenerate(t *testing.T) {
	n := Slingshot10()
	if n.UniformAllToAllTime(1, 1<<30) != 0 {
		t.Fatal("single rank needs no communication")
	}
}

func TestAllToAllPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Slingshot10().AllToAllTime(4, []int64{1, 2})
}

func TestAllReduceTime(t *testing.T) {
	n := Network{AllReduceBandwidth: 1e9, Latency: 0}
	// 2*(N-1)/N * bytes / BW; N=2 -> 1x bytes (plus 2 log2-latency, 0 here).
	got := n.AllReduceTime(2, 1e9)
	if got != time.Second+2*n.Latency {
		t.Fatalf("allreduce = %v, want 1s", got)
	}
	if n.AllReduceTime(1, 1e9) != 0 {
		t.Fatal("single rank allreduce is free")
	}
	// Larger clusters approach 2x bytes.
	if n.AllReduceTime(32, 1e9) <= got {
		t.Fatal("allreduce cost grows with rank count")
	}
}

func TestLatencyDominatesSmallMessages(t *testing.T) {
	n := Slingshot10()
	tiny := n.UniformAllToAllTime(32, 8)
	// Parallel posting: floor = (1 + ceil(log2 32)) latencies.
	if tiny < 6*n.Latency {
		t.Fatalf("latency floor missing: %v", tiny)
	}
	if tiny > 10*n.Latency {
		t.Fatalf("latency floor should be logarithmic, got %v", tiny)
	}
}

func TestMetadataTime(t *testing.T) {
	n := Slingshot10()
	if n.MetadataTime(1, 8) != 0 {
		t.Fatal("single rank needs no metadata")
	}
	if n.MetadataTime(32, 8) < n.Latency {
		t.Fatal("metadata costs at least one latency")
	}
}

func TestDeviceTimes(t *testing.T) {
	d := A100()
	if d.MLPTime(100e12) != time.Second {
		t.Fatalf("MLPTime = %v", d.MLPTime(100e12))
	}
	if d.LookupTime(1.3e12) != time.Second {
		t.Fatalf("LookupTime = %v", d.LookupTime(1.3e12))
	}
}

func TestCodecTime(t *testing.T) {
	if CodecTime(40e9, 40e9) != time.Second {
		t.Fatal("CodecTime wrong")
	}
	if CodecTime(100, 0) != 0 {
		t.Fatal("zero rate must be free (treated as no codec)")
	}
}

func TestPaperCodecRatesComplete(t *testing.T) {
	rates := PaperCodecRates()
	for _, name := range []string{"ours-vector", "ours-huffman", "ours-hybrid",
		"lz4-like", "deflate", "fz-gpu-like", "cusz-like", "fp16", "fp8-e4m3"} {
		r, ok := rates[name]
		if !ok {
			t.Fatalf("missing rates for %s", name)
		}
		if r.Compress <= 0 || r.Decompress <= 0 {
			t.Fatalf("non-positive rates for %s", name)
		}
	}
	// The paper's headline numbers survive verbatim.
	if rates["ours-vector"].Compress != 40.5e9 || rates["ours-vector"].Decompress != 205.4e9 {
		t.Fatal("ours-vector rates drifted from the paper")
	}
}
