package netmodel

import (
	"testing"
	"time"
)

func TestAllToAllTimeScalesWithBytes(t *testing.T) {
	n := Slingshot10()
	t1 := n.UniformAllToAllTime(32, 1<<20)
	t2 := n.UniformAllToAllTime(32, 1<<24)
	if t2 <= t1 {
		t.Fatal("more bytes must take longer")
	}
	// 16 MB at 4 GB/s ≈ 4 ms wire time.
	want := 4 * time.Millisecond
	if t2 < want || t2 > want+time.Millisecond {
		t.Fatalf("16MB all-to-all = %v, want ≈ %v", t2, want)
	}
}

func TestAllToAllBottleneckRank(t *testing.T) {
	n := Network{AllToAllBandwidth: 1e9, Latency: 0}
	uneven := n.AllToAllTime(4, []int64{100, 100, 100, 1e9})
	even := n.AllToAllTime(4, []int64{1e9, 1e9, 1e9, 1e9})
	if uneven != even {
		t.Fatal("all-to-all completes with the busiest rank")
	}
}

// TestDegenerateRankCounts pins the documented contract that every
// collective is a free no-op for ranks <= 1, across all primitives, with
// sendBytes deliberately nil where the signature allows it.
func TestDegenerateRankCounts(t *testing.T) {
	n := Slingshot10()
	for _, ranks := range []int{0, 1} {
		if got := n.AllToAllTime(ranks, nil); got != 0 {
			t.Fatalf("AllToAllTime(%d) = %v, want 0", ranks, got)
		}
		if got := n.UniformAllToAllTime(ranks, 1<<30); got != 0 {
			t.Fatalf("UniformAllToAllTime(%d) = %v, want 0", ranks, got)
		}
		if got := n.MetadataTime(ranks, 8); got != 0 {
			t.Fatalf("MetadataTime(%d) = %v, want 0", ranks, got)
		}
		if got := n.AllReduceTime(ranks, 1<<30); got != 0 {
			t.Fatalf("AllReduceTime(%d) = %v, want 0", ranks, got)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {7, 3}, {8, 3},
		{9, 4}, {16, 4}, {17, 5}, {32, 5}, {33, 6}, {128, 7}, {129, 8},
	}
	for _, c := range cases {
		if got := log2ceil(c.n); got != c.want {
			t.Errorf("log2ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestLatencyFloorTable pins the all-to-all latency floor: with zero-byte
// payloads the cost is exactly (1 + ceil(log2 ranks)) latencies, the
// parallel-posting model NCCL-style collectives follow.
func TestLatencyFloorTable(t *testing.T) {
	n := Network{AllToAllBandwidth: 1e9, AllReduceBandwidth: 1e9, Latency: time.Microsecond}
	for _, c := range []struct {
		ranks int
		want  time.Duration
	}{
		{2, 2 * time.Microsecond},
		{3, 3 * time.Microsecond},
		{4, 3 * time.Microsecond},
		{8, 4 * time.Microsecond},
		{9, 5 * time.Microsecond},
		{32, 6 * time.Microsecond},
		{128, 8 * time.Microsecond},
	} {
		if got := n.UniformAllToAllTime(c.ranks, 0); got != c.want {
			t.Errorf("latency floor at %d ranks = %v, want %v", c.ranks, got, c.want)
		}
	}
}

// TestBusiestRankTable pins the busiest-rank completion semantics: the step
// costs the maximum per-rank send volume, regardless of how the remaining
// volume is distributed.
func TestBusiestRankTable(t *testing.T) {
	n := Network{AllToAllBandwidth: 1e9, Latency: 0}
	for _, c := range []struct {
		name  string
		sends []int64
		want  time.Duration
	}{
		{"uniform", []int64{1e9, 1e9, 1e9, 1e9}, time.Second},
		{"one-hot", []int64{0, 0, 0, 1e9}, time.Second},
		{"skewed", []int64{1, 2e9, 3, 4}, 2 * time.Second},
		{"zero", []int64{0, 0, 0, 0}, 0},
	} {
		if got := n.AllToAllTime(len(c.sends), c.sends); got != c.want {
			t.Errorf("%s: AllToAllTime = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAllToAllPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Slingshot10().AllToAllTime(4, []int64{1, 2})
}

func TestAllReduceTime(t *testing.T) {
	n := Network{AllReduceBandwidth: 1e9, Latency: 0}
	// 2*(N-1)/N * bytes / BW; N=2 -> 1x bytes (plus 2 log2-latency, 0 here).
	got := n.AllReduceTime(2, 1e9)
	if got != time.Second+2*n.Latency {
		t.Fatalf("allreduce = %v, want 1s", got)
	}
	if n.AllReduceTime(1, 1e9) != 0 {
		t.Fatal("single rank allreduce is free")
	}
	// Larger clusters approach 2x bytes.
	if n.AllReduceTime(32, 1e9) <= got {
		t.Fatal("allreduce cost grows with rank count")
	}
}

func TestLatencyDominatesSmallMessages(t *testing.T) {
	n := Slingshot10()
	tiny := n.UniformAllToAllTime(32, 8)
	// Parallel posting: floor = (1 + ceil(log2 32)) latencies.
	if tiny < 6*n.Latency {
		t.Fatalf("latency floor missing: %v", tiny)
	}
	if tiny > 10*n.Latency {
		t.Fatalf("latency floor should be logarithmic, got %v", tiny)
	}
}

func TestMetadataTime(t *testing.T) {
	n := Slingshot10()
	if n.MetadataTime(1, 8) != 0 {
		t.Fatal("single rank needs no metadata")
	}
	if n.MetadataTime(32, 8) < n.Latency {
		t.Fatal("metadata costs at least one latency")
	}
}

func TestDeviceTimes(t *testing.T) {
	d := A100()
	if d.MLPTime(100e12) != time.Second {
		t.Fatalf("MLPTime = %v", d.MLPTime(100e12))
	}
	if d.LookupTime(1.3e12) != time.Second {
		t.Fatalf("LookupTime = %v", d.LookupTime(1.3e12))
	}
}

func TestCodecTime(t *testing.T) {
	if CodecTime(40e9, 40e9) != time.Second {
		t.Fatal("CodecTime wrong")
	}
	if CodecTime(100, 0) != 0 {
		t.Fatal("zero rate must be free (treated as no codec)")
	}
}

func TestPaperCodecRatesComplete(t *testing.T) {
	rates := PaperCodecRates()
	for _, name := range []string{"ours-vector", "ours-huffman", "ours-hybrid",
		"lz4-like", "deflate", "fz-gpu-like", "cusz-like", "fp16", "fp8-e4m3"} {
		r, ok := rates[name]
		if !ok {
			t.Fatalf("missing rates for %s", name)
		}
		if r.Compress <= 0 || r.Decompress <= 0 {
			t.Fatalf("non-positive rates for %s", name)
		}
	}
	// The paper's headline numbers survive verbatim.
	if rates["ours-vector"].Compress != 40.5e9 || rates["ours-vector"].Decompress != 205.4e9 {
		t.Fatal("ours-vector rates drifted from the paper")
	}
}
