package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"dlrmcomp/internal/netmodel"
)

// payload builds a distinct deterministic buffer for a (collective, from,
// to) triple.
func payload(tag string, from, to int) []byte {
	return []byte(fmt.Sprintf("%s:%d->%d", tag, from, to))
}

// TestAsyncAllToAllDeliveryMatchesSync issues two nonblocking all-to-alls
// back to back, awaits them out of issue order, and checks both delivered
// exactly what the synchronous collective delivers — the "await-before-
// issue ordering" contract: a second collective may be issued before the
// first is awaited, and awaits may complete in any order.
func TestAsyncAllToAllDeliveryMatchesSync(t *testing.T) {
	for _, algo := range []A2AAlgo{A2ADirect, A2ATwoPhase} {
		c := New(8, netmodel.PaperHierarchical(4))
		c.Run(func(r *Rank) {
			mk := func(tag string) [][]byte {
				send := make([][]byte, r.N())
				for to := range send {
					send[to] = payload(tag, r.ID, to)
				}
				return send
			}
			opA := r.IAllToAllV(mk("a"), false, "a2a-a", algo)
			opB := r.IAllToAllV(mk("b"), true, "a2a-b", algo)
			// Await out of issue order.
			recvB, errB := opB.Await()
			recvA, errA := opA.Await()
			if errA != nil || errB != nil {
				t.Errorf("algo %v rank %d: await errors %v / %v", algo, r.ID, errA, errB)
				return
			}
			for from := 0; from < r.N(); from++ {
				if want := payload("a", from, r.ID); !bytes.Equal(recvA[from], want) {
					t.Errorf("algo %v rank %d: op A recv[%d] = %q, want %q", algo, r.ID, from, recvA[from], want)
				}
				if want := payload("b", from, r.ID); !bytes.Equal(recvB[from], want) {
					t.Errorf("algo %v rank %d: op B recv[%d] = %q, want %q", algo, r.ID, from, recvB[from], want)
				}
			}
		})
	}
}

// TestAsyncChargeDeferredToAwait pins the handle semantics: data is
// delivered at issue, but the bucket stays empty until Await.
func TestAsyncChargeDeferredToAwait(t *testing.T) {
	c := New(4, testNet())
	c.Run(func(r *Rank) {
		send := make([][]byte, r.N())
		for to := range send {
			send[to] = payload("x", r.ID, to)
		}
		op := r.IAllToAllV(send, false, "deferred", A2ADirect)
		r.Barrier() // all ranks issued; none awaited yet
		if r.ID == 0 {
			if got := c.SimTime("deferred"); got != 0 {
				t.Errorf("bucket charged %v before Await", got)
			}
		}
		r.Barrier()
		op.Await()
		r.Barrier()
		if r.ID == 0 {
			if got := c.SimTime("deferred"); got <= 0 {
				t.Errorf("bucket still %v after Await", got)
			}
		}
	})
}

// TestAsyncAwaitIdempotent checks a double Await returns the same buffers
// and charges the bucket exactly once.
func TestAsyncAwaitIdempotent(t *testing.T) {
	c := New(4, testNet())
	c.Run(func(r *Rank) {
		send := make([][]byte, r.N())
		for to := range send {
			send[to] = payload("x", r.ID, to)
		}
		op := r.IAllToAllV(send, false, "idem", A2ADirect)
		first, err := op.Await()
		if err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
			return
		}
		if !op.Awaited() {
			t.Errorf("rank %d: handle not marked awaited", r.ID)
		}
		again, _ := op.Await()
		for from := range first {
			if !bytes.Equal(first[from], again[from]) {
				t.Errorf("rank %d: second Await returned different payload from %d", r.ID, from)
			}
		}
	})
	once := c.SimTime("idem")
	c.Run(func(r *Rank) {
		send := make([][]byte, r.N())
		for to := range send {
			send[to] = payload("x", r.ID, to)
		}
		r.AllToAllV(send, false, "sync", A2ADirect)
	})
	if sync := c.SimTime("sync"); once != sync {
		t.Fatalf("double Await charged %v, one sync collective charges %v", once, sync)
	}
}

// TestAsyncCostMatchesSyncCharge checks rank 0's handle cost equals what
// the synchronous path charges for the same payload matrix, including the
// variable-size metadata, and that non-zero costs appear only on rank 0.
func TestAsyncCostMatchesSyncCharge(t *testing.T) {
	topo := netmodel.PaperHierarchical(2)
	c := New(4, topo)
	c.Run(func(r *Rank) {
		send := make([][]byte, r.N())
		for to := range send {
			send[to] = make([]byte, 1024*(r.ID+1))
		}
		op := r.IAllToAllV(send, true, "cost", A2ATwoPhase)
		cost := op.Cost()
		if r.ID != 0 && cost != (netmodel.LinkCost{}) {
			t.Errorf("rank %d carries cost %+v, want zero (rank 0 owns it)", r.ID, cost)
		}
		if r.ID == 0 && cost.Total() <= 0 {
			t.Errorf("rank 0 cost %+v, want positive", cost)
		}
		op.Await()
	})
	charged := c.SimTime("cost-intra") + c.SimTime("cost-inter")
	c2 := New(4, topo)
	c2.Run(func(r *Rank) {
		send := make([][]byte, r.N())
		for to := range send {
			send[to] = make([]byte, 1024*(r.ID+1))
		}
		r.AllToAllV(send, true, "cost", A2ATwoPhase)
	})
	want := c2.SimTime("cost-intra") + c2.SimTime("cost-inter")
	if charged != want {
		t.Fatalf("async charged %v, sync charges %v", charged, want)
	}
}

// TestAsyncAllReduce checks the nonblocking allreduce delivers the global
// sum at issue and charges only at Await.
func TestAsyncAllReduce(t *testing.T) {
	c := New(8, testNet())
	c.Run(func(r *Rank) {
		x := []float32{float32(r.ID), 1}
		op := r.IAllReduceSum(x, "iar")
		// 0+1+...+7 = 28; the sum is already in x before Await.
		if x[0] != 28 || x[1] != 8 {
			t.Errorf("rank %d: pre-Await sum = %v, want [28 8]", r.ID, x)
		}
		r.Barrier()
		if r.ID == 0 {
			if got := c.SimTime("iar"); got != 0 {
				t.Errorf("allreduce charged %v before Await", got)
			}
		}
		r.Barrier()
		op.Await()
		op.Await() // idempotent
		if r.ID == 0 && op.Cost() <= 0 {
			t.Errorf("rank 0 allreduce cost %v, want positive", op.Cost())
		}
	})
	if got, want := c.SimTime("iar"), testNet().AllReduceTime(8, 8); got != want {
		t.Fatalf("allreduce charged %v, want %v", got, want)
	}
}

// TestAsyncManyInFlightUnderRace issues several overlapping collectives per
// step across repeated steps; with -race this doubles as the async-handle
// race pass (handles are goroutine-local, mailbox reuse is barrier-
// ordered).
func TestAsyncManyInFlightUnderRace(t *testing.T) {
	c := New(8, netmodel.PaperHierarchical(4))
	c.Run(func(r *Rank) {
		for step := 0; step < 5; step++ {
			mk := func(tag string) [][]byte {
				send := make([][]byte, r.N())
				for to := range send {
					send[to] = payload(fmt.Sprintf("%s%d", tag, step), r.ID, to)
				}
				return send
			}
			a := r.IAllToAllV(mk("p"), true, "p", A2ATwoPhase)
			buf := []float32{float32(r.ID)}
			ar := r.IAllReduceSum(buf, "r")
			b := r.IAllToAllV(mk("q"), false, "q", A2ADirect)
			recvQ, err := b.Await()
			if err != nil {
				t.Errorf("step %d rank %d: q await: %v", step, r.ID, err)
				return
			}
			for from, got := range recvQ {
				if want := payload(fmt.Sprintf("q%d", step), from, r.ID); !bytes.Equal(got, want) {
					t.Errorf("step %d rank %d: q recv[%d] = %q, want %q", step, r.ID, from, got, want)
				}
			}
			recvP, err := a.Await()
			if err != nil {
				t.Errorf("step %d rank %d: p await: %v", step, r.ID, err)
				return
			}
			for from, got := range recvP {
				if want := payload(fmt.Sprintf("p%d", step), from, r.ID); !bytes.Equal(got, want) {
					t.Errorf("step %d rank %d: p recv[%d] = %q, want %q", step, r.ID, from, got, want)
				}
			}
			if err := ar.Await(); err != nil {
				t.Errorf("step %d rank %d: allreduce: %v", step, r.ID, err)
				return
			}
			if buf[0] != 28 {
				t.Errorf("step %d rank %d: allreduce sum %v, want 28", step, r.ID, buf[0])
			}
		}
	})
}
