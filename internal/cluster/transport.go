package cluster

import (
	"encoding/binary"
	"fmt"
)

// Transport is one rank's endpoint onto the fabric that moves wire frames
// between ranks. Every collective in this package — the direct and
// two-phase all-to-alls, the rank-order allreduce, the flag/stats
// exchanges — is written against this interface alone, so any fabric that
// implements it (the in-process channel fabric, the TCP backend in
// cluster/tcptransport) runs the same collective code and delivers
// bit-identical results.
//
// Contract:
//
//   - Send delivers buf to rank to's matching Recv. Delivery is ordered per
//     directed pair (FIFO): two Sends from the same source to the same
//     destination are Recv'd in Send order. Self-sends (to == Rank()) are
//     legal and loop back locally.
//   - Recv blocks until the next buffer from the named source arrives. The
//     in-process fabric delivers zero-copy — the receiver aliases the
//     sender's buffer — so a sender must not mutate a sent buffer until the
//     enclosing collective's synchronization point; wire transports copy.
//   - Barrier blocks until every rank of the group reaches it.
//   - Close tears the endpoint down. Pending and future operations on a
//     closed (or peer-failed) endpoint return errors instead of blocking:
//     a transport failure surfaces as an error from the collective that
//     observed it, never as a deadlock.
//
// Methods are called from the owning rank's goroutine only; an endpoint
// need not support concurrent Sends or Recvs from multiple goroutines.
type Transport interface {
	// Rank is this endpoint's rank id in [0, World).
	Rank() int
	// World is the fixed group size.
	World() int
	// Send delivers buf to rank to. Empty (nil or zero-length) buffers are
	// delivered as zero-length messages.
	Send(to int, buf []byte) error
	// Recv blocks for the next buffer from rank from.
	Recv(from int) ([]byte, error)
	// Barrier blocks until all World ranks have entered it.
	Barrier() error
	// Close releases the endpoint. For group-scoped fabrics (the in-process
	// one) closing any endpoint tears down the whole group.
	Close() error
}

// sizeRowBytes is the wire size of one rank's payload-size row: one int64
// per destination rank.
func sizeRowBytes(world int) int { return 8 * world }

// encodeSizeRow writes the byte lengths of send into row (which must be
// sizeRowBytes long): the per-destination payload sizes rank 0 aggregates
// into the global matrix its cost model reads.
func encodeSizeRow(row []byte, send [][]byte) {
	for to, buf := range send {
		binary.LittleEndian.PutUint64(row[8*to:], uint64(len(buf)))
	}
}

// decodeSizeRow parses one rank's size row into dst (length world).
func decodeSizeRow(dst []int64, row []byte) error {
	if len(row) != 8*len(dst) {
		return fmt.Errorf("cluster: size row is %d bytes, want %d", len(row), 8*len(dst))
	}
	for to := range dst {
		dst[to] = int64(binary.LittleEndian.Uint64(row[8*to:]))
	}
	return nil
}
