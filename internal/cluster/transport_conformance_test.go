package cluster_test

// Transport conformance: the collectives must behave identically over the
// in-process channel fabric and the TCP backend — same delivered bytes,
// same bitwise allreduce results, same sim-time buckets — at every world
// size, for the direct and two-phase all-to-alls, for ragged and
// zero-length payloads, and with nonblocking collectives in flight
// concurrently. CI runs this file under -race over both transports; see
// CONTRIBUTING.md for the invariant.

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/cluster/tcptransport"
	"dlrmcomp/internal/netmodel"
)

const progRounds = 3

// progResult is everything a conformance program observes, per rank.
// Slots are written only by their own rank, so no locking is needed.
type progResult struct {
	direct   [][]byte    // flattened direct-a2a deliveries
	twoPhase [][]byte    // flattened two-phase deliveries
	async    [][]byte    // flattened deliveries of the interleaved nonblocking a2as
	reduced  [][]float32 // allreduce outputs
	flags    []bool      // OrFlag verdicts
	gathered [][]byte    // flattened GatherAll bundles
	sims     map[string]time.Duration
}

func newProgResult(world int) *progResult {
	return &progResult{
		direct:   make([][]byte, world),
		twoPhase: make([][]byte, world),
		async:    make([][]byte, world),
		reduced:  make([][]float32, world),
		flags:    make([]bool, world),
		gathered: make([][]byte, world),
	}
}

// raggedPayload is deterministic in (from, to, round) with sizes that
// sweep zero-length, tiny, and page-crossing frames.
func raggedPayload(from, to, round int) []byte {
	sizes := []int{0, 1, 17, 1500, 0, 311}
	size := sizes[(from+3*to+5*round)%len(sizes)]
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(from*37 + to*11 + round*3 + i)
	}
	return b
}

func appendFlat(dst []byte, recv [][]byte) []byte {
	for _, buf := range recv {
		dst = append(dst, buf...)
	}
	return dst
}

// program is the collective workload every conformance run executes: per
// round a direct and a two-phase variable all-to-all, an interleaved
// nonblocking pair (two a2as and an allreduce awaited out of issue
// order), an OrFlag, and a GatherAll.
func program(r *cluster.Rank, res *progResult) error {
	n := r.N()
	for round := 0; round < progRounds; round++ {
		send := make([][]byte, n)
		for to := 0; to < n; to++ {
			send[to] = raggedPayload(r.ID, to, round)
		}
		recv, err := r.AllToAllV(send, true, "fwd-a2a", cluster.A2ADirect)
		if err != nil {
			return fmt.Errorf("rank %d round %d direct: %w", r.ID, round, err)
		}
		res.direct[r.ID] = appendFlat(res.direct[r.ID], recv)

		recv, err = r.AllToAllV(send, true, "fwd-a2a", cluster.A2ATwoPhase)
		if err != nil {
			return fmt.Errorf("rank %d round %d two-phase: %w", r.ID, round, err)
		}
		res.twoPhase[r.ID] = appendFlat(res.twoPhase[r.ID], recv)

		x := make([]float32, 33)
		for i := range x {
			x[i] = float32(r.ID+1) * float32(i-7) * 0.125
		}
		opA := r.IAllToAllV(send, true, "bwd-a2a", cluster.A2ADirect)
		ar := r.IAllReduceSum(x, "allreduce")
		opB := r.IAllToAllV(send, false, "bwd-a2a", cluster.A2ATwoPhase)
		recvB, err := opB.Await()
		if err != nil {
			return fmt.Errorf("rank %d round %d async two-phase: %w", r.ID, round, err)
		}
		res.async[r.ID] = appendFlat(res.async[r.ID], recvB)
		if err := ar.Await(); err != nil {
			return fmt.Errorf("rank %d round %d allreduce: %w", r.ID, round, err)
		}
		res.reduced[r.ID] = append(res.reduced[r.ID], x...)
		recvA, err := opA.Await()
		if err != nil {
			return fmt.Errorf("rank %d round %d async direct: %w", r.ID, round, err)
		}
		res.async[r.ID] = appendFlat(res.async[r.ID], recvA)

		flag, err := r.OrFlag(r.ID == round%n)
		if err != nil {
			return fmt.Errorf("rank %d round %d orflag: %w", r.ID, round, err)
		}
		res.flags[r.ID] = flag

		into := make([][]byte, n)
		if err := r.GatherAll(send[(r.ID+1)%n], into); err != nil {
			return fmt.Errorf("rank %d round %d gather: %w", r.ID, round, err)
		}
		res.gathered[r.ID] = appendFlat(res.gathered[r.ID], into)
	}
	return nil
}

func runInproc(t *testing.T, world int, topo netmodel.Topology) *progResult {
	t.Helper()
	cl := cluster.New(world, topo)
	defer cl.Close()
	res := newProgResult(world)
	var mu sync.Mutex
	var firstErr error
	cl.Run(func(r *cluster.Rank) {
		if err := program(r, res); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	if firstErr != nil {
		t.Fatalf("in-proc program: %v", firstErr)
	}
	res.sims = cl.SimTimes()
	return res
}

func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func runTCP(t *testing.T, world int, topo netmodel.Topology) *progResult {
	t.Helper()
	addr := reserveAddr(t)
	res := newProgResult(world)
	errs := make([]error, world)
	sims := make([]map[string]time.Duration, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep, err := tcptransport.Dial(tcptransport.Options{
				Rank:             rank,
				World:            world,
				Addr:             addr,
				DialTimeout:      10 * time.Second,
				HandshakeTimeout: 10 * time.Second,
			})
			if err != nil {
				errs[rank] = fmt.Errorf("dial: %w", err)
				return
			}
			cl, err := cluster.NewOverTransport(ep, topo)
			if err != nil {
				errs[rank] = err
				ep.Close()
				return
			}
			defer cl.Close()
			cl.Run(func(r *cluster.Rank) {
				errs[rank] = program(r, res)
			})
			sims[rank] = cl.SimTimes()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", rank, err)
		}
	}
	res.sims = sims[0] // collectives charge sim time at rank 0
	return res
}

func sameSims(a, b map[string]time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func compareResults(t *testing.T, want, got *progResult, label string) {
	t.Helper()
	for r := range want.direct {
		if !bytes.Equal(want.direct[r], got.direct[r]) {
			t.Errorf("%s: rank %d direct a2a deliveries differ", label, r)
		}
		if !bytes.Equal(want.twoPhase[r], got.twoPhase[r]) {
			t.Errorf("%s: rank %d two-phase deliveries differ", label, r)
		}
		if !bytes.Equal(want.async[r], got.async[r]) {
			t.Errorf("%s: rank %d nonblocking deliveries differ", label, r)
		}
		if len(want.reduced[r]) != len(got.reduced[r]) {
			t.Errorf("%s: rank %d allreduce length differs", label, r)
			continue
		}
		for i := range want.reduced[r] {
			if math.Float32bits(want.reduced[r][i]) != math.Float32bits(got.reduced[r][i]) {
				t.Errorf("%s: rank %d allreduce[%d] = %x, want %x (not bit-identical)",
					label, r, i, math.Float32bits(got.reduced[r][i]), math.Float32bits(want.reduced[r][i]))
				break
			}
		}
		if want.flags[r] != got.flags[r] {
			t.Errorf("%s: rank %d OrFlag differs", label, r)
		}
		if !bytes.Equal(want.gathered[r], got.gathered[r]) {
			t.Errorf("%s: rank %d GatherAll bundles differ", label, r)
		}
	}
	if !sameSims(want.sims, got.sims) {
		t.Errorf("%s: sim-time buckets differ:\n in-proc: %v\n     tcp: %v", label, want.sims, got.sims)
	}
}

// TestTransportConformance holds the two fabrics to identical observable
// behavior across world sizes and topologies.
func TestTransportConformance(t *testing.T) {
	flat := netmodel.Network{AllToAllBandwidth: 4e9, AllReduceBandwidth: 8e9, Latency: time.Microsecond}
	cases := []struct {
		name  string
		world int
		topo  netmodel.Topology
	}{
		{"2ranks_flat", 2, flat},
		{"2ranks_hier", 2, netmodel.PaperHierarchical(2)},
		{"4ranks_hier", 4, netmodel.PaperHierarchical(2)},
		{"8ranks_hier", 8, netmodel.PaperHierarchical(2)},
		{"8ranks_hier4", 8, netmodel.PaperHierarchical(4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runInproc(t, tc.world, tc.topo)
			got := runTCP(t, tc.world, tc.topo)
			compareResults(t, want, got, tc.name)
		})
	}
}

// TestTCPMidCollectiveCloseErrors: over the real transport, a rank
// closing its endpoint mid-collective must error the survivors' calls
// promptly — never deadlock them.
func TestTCPMidCollectiveCloseErrors(t *testing.T) {
	const world = 3
	addr := reserveAddr(t)
	topo := netmodel.PaperHierarchical(2)
	eps := make([]cluster.Transport, world)
	var dialWG sync.WaitGroup
	dialErrs := make([]error, world)
	for rank := 0; rank < world; rank++ {
		dialWG.Add(1)
		go func(rank int) {
			defer dialWG.Done()
			eps[rank], dialErrs[rank] = tcptransport.Dial(tcptransport.Options{
				Rank: rank, World: world, Addr: addr,
				DialTimeout: 10 * time.Second, HandshakeTimeout: 10 * time.Second,
			})
		}(rank)
	}
	dialWG.Wait()
	for rank, err := range dialErrs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", rank, err)
		}
	}
	survivors := make(chan error, world-1)
	for rank := 1; rank < world; rank++ {
		go func(rank int) {
			cl, err := cluster.NewOverTransport(eps[rank], topo)
			if err != nil {
				survivors <- err
				return
			}
			defer cl.Close()
			cl.Run(func(r *cluster.Rank) {
				send := make([][]byte, world)
				for to := range send {
					send[to] = raggedPayload(r.ID, to, 0)
				}
				_, err := r.AllToAllV(send, true, "fwd-a2a", cluster.A2ADirect)
				survivors <- err
			})
		}(rank)
	}
	time.Sleep(100 * time.Millisecond) // let the survivors block on rank 0
	if err := eps[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < world-1; i++ {
		select {
		case err := <-survivors:
			if err == nil {
				t.Fatal("survivor's collective returned nil after peer close")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("survivor still blocked after peer close")
		}
	}
}
