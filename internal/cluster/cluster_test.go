package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dlrmcomp/internal/netmodel"
)

func testNet() netmodel.Network {
	return netmodel.Network{AllToAllBandwidth: 4e9, AllReduceBandwidth: 8e9, Latency: time.Microsecond}
}

func TestRunAllRanks(t *testing.T) {
	c := New(8, testNet())
	var count int64
	c.Run(func(r *Rank) {
		atomic.AddInt64(&count, 1)
		if r.N() != 8 {
			t.Errorf("N = %d", r.N())
		}
	})
	if count != 8 {
		t.Fatalf("ran %d ranks", count)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := New(16, testNet())
	var before, after int64
	c.Run(func(r *Rank) {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if atomic.LoadInt64(&before) != 16 {
			t.Errorf("rank %d passed barrier before all arrived", r.ID)
		}
		atomic.AddInt64(&after, 1)
	})
	if after != 16 {
		t.Fatal("not all ranks finished")
	}
}

func TestBarrierReusable(t *testing.T) {
	c := New(4, testNet())
	var phase int64
	c.Run(func(r *Rank) {
		for i := 0; i < 50; i++ {
			r.Barrier()
			v := atomic.LoadInt64(&phase)
			if v != int64(i) {
				t.Errorf("rank %d phase %d saw %d", r.ID, i, v)
				return
			}
			r.Barrier()
			if r.ID == 0 {
				atomic.AddInt64(&phase, 1)
			}
			r.Barrier()
		}
	})
}

func TestAllToAllDelivery(t *testing.T) {
	n := 6
	c := New(n, testNet())
	c.Run(func(r *Rank) {
		send := make([][]byte, n)
		for to := 0; to < n; to++ {
			send[to] = []byte(fmt.Sprintf("from%d-to%d", r.ID, to))
		}
		recv, err := r.AllToAll(send, false, "a2a")
		if err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
			return
		}
		for from := 0; from < n; from++ {
			want := fmt.Sprintf("from%d-to%d", from, r.ID)
			if string(recv[from]) != want {
				t.Errorf("rank %d got %q from %d, want %q", r.ID, recv[from], from, want)
			}
		}
	})
}

func TestAllToAllRepeated(t *testing.T) {
	n := 4
	c := New(n, testNet())
	c.Run(func(r *Rank) {
		for round := 0; round < 20; round++ {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = []byte{byte(r.ID), byte(to), byte(round)}
			}
			recv, err := r.AllToAll(send, false, "a2a")
			if err != nil {
				t.Errorf("round %d rank %d: %v", round, r.ID, err)
				return
			}
			for from := 0; from < n; from++ {
				if recv[from][0] != byte(from) || recv[from][1] != byte(r.ID) || recv[from][2] != byte(round) {
					t.Errorf("round %d rank %d bad payload from %d", round, r.ID, from)
					return
				}
			}
		}
	})
}

func TestAllToAllSimTimeAccounting(t *testing.T) {
	n := 4
	c := New(n, testNet())
	payload := make([]byte, 1<<20)
	c.Run(func(r *Rank) {
		send := make([][]byte, n)
		for to := 0; to < n; to++ {
			send[to] = payload
		}
		r.AllToAll(send, false, "fwd")
	})
	got := c.SimTime("fwd")
	// Each rank sends 3 MB at 4 GB/s ≈ 750 µs + latency.
	want := time.Duration(float64(3<<20) / 4e9 * float64(time.Second))
	if got < want || got > want+time.Millisecond {
		t.Fatalf("sim time = %v, want ≈ %v", got, want)
	}
}

func TestVariableAllToAllChargesMetadata(t *testing.T) {
	n := 4
	run := func(variable bool) time.Duration {
		c := New(n, testNet())
		c.Run(func(r *Rank) {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = make([]byte, 1024)
			}
			r.AllToAll(send, variable, "x")
		})
		return c.SimTime("x")
	}
	if run(true) <= run(false) {
		t.Fatal("variable-size all-to-all must cost extra metadata time")
	}
}

func TestAllReduceSum(t *testing.T) {
	n := 8
	c := New(n, testNet())
	results := make([][]float32, n)
	c.Run(func(r *Rank) {
		x := []float32{float32(r.ID), 1, float32(r.ID) * 2}
		r.AllReduceSum(x, "ar")
		results[r.ID] = x
	})
	// sum of IDs 0..7 = 28
	for id, x := range results {
		if x[0] != 28 || x[1] != 8 || x[2] != 56 {
			t.Fatalf("rank %d reduced to %v", id, x)
		}
	}
	if c.SimTime("ar") == 0 {
		t.Fatal("allreduce charged no sim time")
	}
}

func TestAllReduceRepeated(t *testing.T) {
	n := 4
	c := New(n, testNet())
	c.Run(func(r *Rank) {
		for round := 1; round <= 10; round++ {
			x := []float32{float32(r.ID + round)}
			r.AllReduceSum(x, "ar")
			want := float32(0+1+2+3) + 4*float32(round)
			if x[0] != want {
				t.Errorf("round %d rank %d: %v want %v", round, r.ID, x[0], want)
				return
			}
		}
	})
}

func TestSimTimeBuckets(t *testing.T) {
	c := New(2, testNet())
	c.AddSimTime("compute", time.Second)
	c.AddSimTime("compute", time.Second)
	if c.SimTime("compute") != 2*time.Second {
		t.Fatal("bucket accumulation broken")
	}
	all := c.SimTimes()
	if all["compute"] != 2*time.Second {
		t.Fatal("SimTimes copy broken")
	}
	c.ResetSimTime()
	if c.SimTime("compute") != 0 {
		t.Fatal("reset broken")
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, testNet())
}
