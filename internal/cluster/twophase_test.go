package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dlrmcomp/internal/netmodel"
)

func testHier(rpn int) netmodel.Hierarchical { return netmodel.PaperHierarchical(rpn) }

// testPayload builds a distinct payload per (from, to, round); size varies
// with the pair, including empty payloads, to exercise variable-size
// bundles.
func testPayload(from, to, round, n int) []byte {
	if (from+to+round)%5 == 0 {
		return nil
	}
	size := 1 + (from*31+to*7+round*13)%64
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(from ^ (to << 2) ^ (round << 4) ^ i)
	}
	return buf
}

// runExchange performs rounds of all-to-alls on a fresh cluster and returns
// every rank's received buffers: out[round][receiver][sender].
func runExchange(n int, net netmodel.Topology, algo A2AAlgo, rounds int) [][][][]byte {
	c := New(n, net)
	out := make([][][][]byte, rounds)
	for r := range out {
		out[r] = make([][][]byte, n)
	}
	c.Run(func(r *Rank) {
		for round := 0; round < rounds; round++ {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = testPayload(r.ID, to, round, n)
			}
			recv, err := r.AllToAllV(send, true, "x", algo)
			if err != nil {
				panic(err)
			}
			out[round][r.ID] = recv
		}
	})
	return out
}

// TestTwoPhaseBitParityWithDirect: across uneven cluster shapes (including
// a ragged last node), repeated rounds of the staged two-phase exchange
// must deliver payloads bit-identical to the direct path.
func TestTwoPhaseBitParityWithDirect(t *testing.T) {
	for _, tc := range []struct{ n, rpn int }{{8, 4}, {6, 4}, {9, 3}, {5, 2}, {4, 1}} {
		t.Run(fmt.Sprintf("n%d-rpn%d", tc.n, tc.rpn), func(t *testing.T) {
			const rounds = 4
			direct := runExchange(tc.n, testHier(tc.rpn), A2ADirect, rounds)
			staged := runExchange(tc.n, testHier(tc.rpn), A2ATwoPhase, rounds)
			for round := 0; round < rounds; round++ {
				for me := 0; me < tc.n; me++ {
					for from := 0; from < tc.n; from++ {
						if !bytes.Equal(direct[round][me][from], staged[round][me][from]) {
							t.Fatalf("round %d: rank %d got %x from %d via two-phase, want %x",
								round, me, staged[round][me][from], from, direct[round][me][from])
						}
					}
				}
			}
		})
	}
}

// TestAlgoInterleavingReusesBoxes: alternating direct and two-phase
// collectives on one cluster must not leak stale buffers between
// algorithms.
func TestAlgoInterleavingReusesBoxes(t *testing.T) {
	n := 8
	c := New(n, testHier(4))
	c.Run(func(r *Rank) {
		for round := 0; round < 6; round++ {
			algo := A2ADirect
			if round%2 == 1 {
				algo = A2ATwoPhase
			}
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = testPayload(r.ID, to, round, n)
			}
			recv, err := r.AllToAllV(send, false, "x", algo)
			if err != nil {
				t.Errorf("round %d rank %d: %v", round, r.ID, err)
				return
			}
			for from := 0; from < n; from++ {
				if want := testPayload(from, r.ID, round, n); !bytes.Equal(recv[from], want) {
					t.Errorf("round %d (algo %d): rank %d got %x from %d, want %x",
						round, algo, r.ID, recv[from], from, want)
					return
				}
			}
		}
	})
}

// TestHierarchicalBucketSplit: a multi-node topology charges the split
// "-intra"/"-inter" buckets and leaves the plain label empty; a flat
// topology keeps the plain label.
func TestHierarchicalBucketSplit(t *testing.T) {
	n := 8
	run := func(net netmodel.Topology, algo A2AAlgo) map[string]time.Duration {
		c := New(n, net)
		c.Run(func(r *Rank) {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = make([]byte, 1024)
			}
			r.AllToAllV(send, false, "fwd", algo)
		})
		return c.SimTimes()
	}

	hier := run(testHier(4), A2ATwoPhase)
	if hier["fwd-intra"] <= 0 || hier["fwd-inter"] <= 0 {
		t.Fatalf("hierarchical buckets not split: %v", hier)
	}
	if hier["fwd"] != 0 {
		t.Fatalf("hierarchical run charged the flat bucket: %v", hier)
	}
	// The direct algorithm on the same topology also splits attribution.
	direct := run(testHier(4), A2ADirect)
	if direct["fwd-intra"] <= 0 || direct["fwd-inter"] <= 0 {
		t.Fatalf("direct-on-hierarchical buckets not split: %v", direct)
	}
	flat := run(netmodel.Slingshot10(), A2AAuto)
	if flat["fwd"] <= 0 || flat["fwd-intra"] != 0 || flat["fwd-inter"] != 0 {
		t.Fatalf("flat run must charge only the plain bucket: %v", flat)
	}
}

// TestAutoAlgoSelection: A2AAuto stages through leaders exactly when the
// topology spans several nodes — observable through the latency floor,
// which is lower two-phase than direct for tiny payloads.
func TestAutoAlgoSelection(t *testing.T) {
	n := 16
	a2aTotal := func(algo A2AAlgo) time.Duration {
		c := New(n, testHier(4))
		c.Run(func(r *Rank) {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = []byte{1}
			}
			r.AllToAllV(send, false, "x", algo)
		})
		return c.SimTime("x-intra") + c.SimTime("x-inter")
	}
	auto, direct, twoPhase := a2aTotal(A2AAuto), a2aTotal(A2ADirect), a2aTotal(A2ATwoPhase)
	if auto != twoPhase {
		t.Fatalf("auto (%v) should pick two-phase (%v) on a multi-node topology", auto, twoPhase)
	}
	if auto >= direct {
		t.Fatalf("two-phase (%v) should beat direct (%v) on tiny payloads", auto, direct)
	}
}

// TestTwoPhaseVariableChargesMetadata mirrors the direct-path metadata test
// for the staged algorithm.
func TestTwoPhaseVariableChargesMetadata(t *testing.T) {
	n := 8
	run := func(variable bool) time.Duration {
		c := New(n, testHier(4))
		c.Run(func(r *Rank) {
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = make([]byte, 256)
			}
			r.AllToAllV(send, variable, "x", A2ATwoPhase)
		})
		return c.SimTime("x-intra") + c.SimTime("x-inter")
	}
	if run(true) <= run(false) {
		t.Fatal("variable-size two-phase must cost extra metadata time")
	}
}

// TestSingleRankCollectivesAreFree: a 1-rank cluster performs no exchange
// and charges nothing, under any topology and algorithm.
func TestSingleRankCollectivesAreFree(t *testing.T) {
	for _, net := range []netmodel.Topology{netmodel.Slingshot10(), testHier(4)} {
		c := New(1, net)
		c.Run(func(r *Rank) {
			payload := []byte{1, 2, 3}
			recv, err := r.AllToAllV([][]byte{payload}, true, "x", A2AAuto)
			if err != nil {
				t.Errorf("%s: %v", net.Name(), err)
				return
			}
			if !bytes.Equal(recv[0], payload) {
				t.Errorf("%s: self-delivery broken", net.Name())
			}
		})
		for label, d := range c.SimTimes() {
			if d != 0 {
				t.Fatalf("%s: 1-rank cluster charged %q = %v", net.Name(), label, d)
			}
		}
	}
}

// TestEnvelopeRoundTrip exercises the staged-hop wire format directly.
func TestEnvelopeRoundTrip(t *testing.T) {
	var bundle []byte
	bundle = appendEnvelope(bundle, 3, 11, []byte("hello"))
	bundle = appendEnvelope(bundle, 0, 2, nil)
	bundle = appendEnvelope(bundle, 7, 1, []byte{0xff})
	var seen int
	err := parseEnvelopes(bundle, func(from, to int, payload []byte) error {
		switch seen {
		case 0:
			if from != 3 || to != 11 || string(payload) != "hello" {
				t.Fatalf("envelope 0: %d->%d %q", from, to, payload)
			}
		case 1:
			if from != 0 || to != 2 || len(payload) != 0 {
				t.Fatalf("envelope 1: %d->%d %q", from, to, payload)
			}
		case 2:
			if from != 7 || to != 1 || payload[0] != 0xff {
				t.Fatalf("envelope 2: %d->%d %q", from, to, payload)
			}
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("saw %d envelopes", seen)
	}
	if err := parseEnvelopes(bundle[:5], func(int, int, []byte) error { return nil }); err == nil {
		t.Fatal("truncated bundle must fail")
	}
}
