package cluster

import (
	"fmt"
	"sync"
)

// The in-process channel fabric: the reference Transport implementation.
// Every directed rank pair owns a buffered channel; Send passes the buffer
// pointer through it (zero-copy — receiver and sender alias the same
// memory, exactly like the shared-memory mailboxes this fabric replaced),
// and Barrier is a reusable cyclic barrier. Closing any endpoint tears the
// whole fabric down: pending Sends, Recvs, and Barriers unblock with
// errors, which is what lets an in-process trainer abort cleanly instead
// of deadlocking when a rank bails out mid-collective.

// inprocChanCap bounds in-flight messages per directed pair. A collective
// posts at most three messages per pair before the matching receives (size
// row + staged bundles), and the trailing synchronization of each
// collective keeps back-to-back collectives from stacking more than one
// collective's worth, so a small constant suffices; sends never block in
// practice.
const inprocChanCap = 16

// inprocFabric is the shared state behind one group of in-process endpoints.
type inprocFabric struct {
	n     int
	chans [][]chan []byte // [from][to]
	bar   *barrier

	closeOnce sync.Once
	done      chan struct{}
}

// inprocEndpoint is one rank's handle onto the fabric.
type inprocEndpoint struct {
	f    *inprocFabric
	rank int
}

// NewInprocFabric builds the in-process fabric and returns its n endpoints,
// index i serving rank i.
func NewInprocFabric(n int) []Transport {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", n))
	}
	f := &inprocFabric{n: n, done: make(chan struct{})}
	f.bar = newBarrier(n, f.done)
	f.chans = make([][]chan []byte, n)
	for from := range f.chans {
		f.chans[from] = make([]chan []byte, n)
		for to := range f.chans[from] {
			f.chans[from][to] = make(chan []byte, inprocChanCap)
		}
	}
	eps := make([]Transport, n)
	for r := 0; r < n; r++ {
		eps[r] = &inprocEndpoint{f: f, rank: r}
	}
	return eps
}

func (e *inprocEndpoint) Rank() int  { return e.rank }
func (e *inprocEndpoint) World() int { return e.f.n }

func (e *inprocEndpoint) Send(to int, buf []byte) error {
	if to < 0 || to >= e.f.n {
		return fmt.Errorf("cluster: rank %d sends to invalid rank %d of %d", e.rank, to, e.f.n)
	}
	select {
	case e.f.chans[e.rank][to] <- buf:
		return nil
	case <-e.f.done:
		return fmt.Errorf("cluster: rank %d send to %d: fabric closed", e.rank, to)
	}
}

func (e *inprocEndpoint) Recv(from int) ([]byte, error) {
	if from < 0 || from >= e.f.n {
		return nil, fmt.Errorf("cluster: rank %d receives from invalid rank %d of %d", e.rank, from, e.f.n)
	}
	ch := e.f.chans[from][e.rank]
	// Prefer draining already-delivered messages over reporting the close,
	// so a graceful teardown does not drop in-flight payloads.
	select {
	case buf := <-ch:
		return buf, nil
	default:
	}
	select {
	case buf := <-ch:
		return buf, nil
	case <-e.f.done:
		return nil, fmt.Errorf("cluster: rank %d recv from %d: fabric closed", e.rank, from)
	}
}

func (e *inprocEndpoint) Barrier() error {
	if !e.f.bar.await() {
		return fmt.Errorf("cluster: rank %d barrier: fabric closed", e.rank)
	}
	return nil
}

// Close tears down the whole fabric (the group shares one process; a
// single rank abandoning the collectives must unblock everyone).
func (e *inprocEndpoint) Close() error {
	e.f.closeOnce.Do(func() {
		close(e.f.done)
		e.f.bar.close()
	})
	return nil
}

// barrier is a reusable cyclic barrier that aborts when its fabric closes.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	closed bool
	done   chan struct{}
}

func newBarrier(n int, done chan struct{}) *barrier {
	b := &barrier{n: n, done: done}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n ranks arrive; it returns false if the fabric
// closed before the barrier tripped.
func (b *barrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.closed {
		b.cond.Wait()
	}
	return gen != b.gen
}

// close aborts current and future waiters.
func (b *barrier) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
