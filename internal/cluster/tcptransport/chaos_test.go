package tcptransport

import (
	"fmt"
	"testing"
	"time"

	"dlrmcomp/internal/cluster"
)

// Chaos conformance: a rank killed mid-collective (abrupt connection
// severing, no close notify — a crash, not a shutdown) must turn every
// blocked collective on every surviving rank into a prompt error. No
// deadlocks, no hung barriers, and the survivors' endpoints must keep
// failing fast afterwards. Asserted at 2, 4, and 8 ranks; the race
// detector runs this in CI.
func TestChaosMidCollectiveKill(t *testing.T) {
	for _, world := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("world%d", world), func(t *testing.T) {
			eps := dialGroup(t, world, nil)
			victim := world / 2 // never rank 0, so the star barrier keeps its hub

			// One warm-up collective with everyone present proves the group
			// was healthy before the kill.
			clusters := make([]*cluster.Cluster, world)
			for r, ep := range eps {
				var err error
				if clusters[r], err = cluster.NewOverTransport(ep, nil); err != nil {
					t.Fatalf("rank %d cluster: %v", r, err)
				}
			}
			warm := make(chan error, world)
			for r := range eps {
				go func(r int) {
					clusters[r].Run(func(rk *cluster.Rank) {
						send := make([][]byte, world)
						for i := range send {
							send[i] = []byte{byte(r), byte(i)}
						}
						_, err := rk.AllToAll(send, false, "warm")
						warm <- err
					})
				}(r)
			}
			for range eps {
				if err := waitErr(t, warm, 10*time.Second, "warm-up collective"); err != nil {
					t.Fatalf("warm-up collective failed: %v", err)
				}
			}

			// Survivors issue the next collective; the victim never joins,
			// so every survivor is blocked on it when the kill lands.
			done := make(chan error, world)
			for r := range eps {
				if r == victim {
					continue
				}
				go func(r int) {
					clusters[r].Run(func(rk *cluster.Rank) {
						send := make([][]byte, world)
						for i := range send {
							send[i] = []byte{byte(r), byte(i), 2}
						}
						_, err := rk.AllToAll(send, false, "chaos")
						done <- err
					})
				}(r)
			}
			time.Sleep(100 * time.Millisecond) // let the survivors block
			killer, ok := eps[victim].(interface{ Kill() })
			if !ok {
				t.Fatalf("endpoint %T does not expose Kill", eps[victim])
			}
			killer.Kill()

			for i := 0; i < world-1; i++ {
				err := waitErr(t, done, 10*time.Second, "blocked collective after kill")
				if err == nil {
					t.Error("a surviving rank's collective succeeded without the victim")
				}
			}

			// Poisoned endpoints must stay failed — later calls error
			// immediately rather than waiting on a dead peer.
			for r, ep := range eps {
				if r == victim {
					continue
				}
				start := time.Now()
				if err := ep.Barrier(); err == nil {
					t.Errorf("rank %d barrier succeeded on a poisoned endpoint", r)
				}
				if err := ep.Send((r+1)%world, []byte{1}); err == nil {
					t.Errorf("rank %d send succeeded on a poisoned endpoint", r)
				}
				if _, err := ep.Recv(victim); err == nil {
					t.Errorf("rank %d recv from the victim succeeded after the kill", r)
				}
				if el := time.Since(start); el > 2*time.Second {
					t.Errorf("rank %d post-kill calls took %v; poisoned endpoints must fail promptly", r, el)
				}
				// Close after the failure must be safe (and stay safe when
				// repeated) — the trainer teardown path runs it unconditionally.
				ep.Close()
				ep.Close()
			}
			killer.Kill() // idempotent
		})
	}
}

// waitErr pops one result from ch or fails the test after d — a deadlock
// shows up as this timeout, not as a hung test binary.
func waitErr(t *testing.T, ch chan error, d time.Duration, what string) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(d):
		t.Fatalf("timed out after %v waiting for %s (deadlock)", d, what)
		return nil
	}
}
