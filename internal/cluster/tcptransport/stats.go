package tcptransport

import (
	"sync/atomic"
	"time"
)

// PeerStats is one peer pair's accumulated wire traffic as observed from
// this endpoint: bytes and frames in each direction (headers included)
// plus the wall-clock microseconds spent on the socket. SendMicros covers
// the kernel write calls; RecvMicros covers payload reads only — the time
// a reader spends blocked waiting for a header is idle time, not transfer
// time, and counting it would drown the transfer cost in barrier waits.
type PeerStats struct {
	Peer                   int
	SentBytes, RecvBytes   int64
	SentFrames, RecvFrames int64
	SendMicros, RecvMicros int64
}

// Instrumented is the accounting surface a transport may offer.
// cluster.Transport deliberately stays minimal, so callers that want the
// per-peer table (cmd/dlrmworker) type-assert against this.
type Instrumented interface {
	// TransportStats returns one entry per connected peer, ordered by
	// rank. Safe to call concurrently with traffic and after Close.
	TransportStats() []PeerStats
}

// peerCounters is the hot-path half of PeerStats: independent atomics so
// the single-writer send path and the per-peer reader goroutine never
// share a cache line lock.
type peerCounters struct {
	sentBytes, recvBytes   atomic.Int64
	sentFrames, recvFrames atomic.Int64
	sendMicros, recvMicros atomic.Int64
}

func (pc *peerCounters) countSend(bytes int, elapsed time.Duration) {
	pc.sentBytes.Add(int64(bytes))
	pc.sentFrames.Add(1)
	pc.sendMicros.Add(elapsed.Microseconds())
}

func (pc *peerCounters) countRecv(bytes int, elapsed time.Duration) {
	pc.recvBytes.Add(int64(bytes))
	pc.recvFrames.Add(1)
	pc.recvMicros.Add(elapsed.Microseconds())
}

// TransportStats implements Instrumented.
func (e *endpoint) TransportStats() []PeerStats {
	out := make([]PeerStats, 0, e.world-1)
	for r := range e.counters {
		if e.conns[r] == nil {
			continue
		}
		pc := &e.counters[r]
		out = append(out, PeerStats{
			Peer:       r,
			SentBytes:  pc.sentBytes.Load(),
			RecvBytes:  pc.recvBytes.Load(),
			SentFrames: pc.sentFrames.Load(),
			RecvFrames: pc.recvFrames.Load(),
			SendMicros: pc.sendMicros.Load(),
			RecvMicros: pc.recvMicros.Load(),
		})
	}
	return out
}
