package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Post-handshake frame kinds. Every frame is
// kind byte | payload length uint32 LE | payload.
const (
	kData           = 1 // a Send payload, delivered to the per-source inbox
	kBarrierArrive  = 2 // worker -> rank 0: entered the barrier
	kBarrierRelease = 3 // rank 0 -> worker: all ranks arrived, proceed
	kCloseNotify    = 4 // sender is leaving the group gracefully

	frameHeaderBytes = 5
)

// endpoint is one rank's live connection set, implementing
// cluster.Transport. One reader goroutine per peer connection demuxes
// frames into per-source inboxes and barrier channels; Send, Recv,
// Barrier, and Close run on the owning rank's goroutine, so each
// connection has a single writer and no write lock.
//
// Failure model: the first connection-level error (EOF, short read,
// oversized or unknown frame, a peer's close notify) poisons the
// endpoint — the error is published, every connection is closed (which
// surfaces at each peer as EOF and cascades the teardown group-wide),
// inboxes are marked dead, and every blocked or future call returns the
// error. Messages that arrived before the poison stay drainable.
type endpoint struct {
	opts  Options
	rank  int
	world int
	conns []net.Conn // by peer rank; conns[rank] is nil

	counters []peerCounters // by peer rank; counters[rank] is unused (self-sends skip the wire)

	inboxes []*inbox // by source rank; inboxes[rank] is the self-send loop

	arrive  chan int      // rank 0: one token per peer arrival (cap world: ≤1 outstanding per peer)
	release chan struct{} // workers: rank 0's release for the barrier in flight

	mu       sync.Mutex
	perr     error
	poisoned chan struct{} // closed on first poison

	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newEndpoint(o Options, conns []net.Conn) *endpoint {
	e := &endpoint{
		opts:     o,
		rank:     o.Rank,
		world:    o.World,
		conns:    conns,
		counters: make([]peerCounters, o.World),
		inboxes:  make([]*inbox, o.World),
		arrive:   make(chan int, o.World),
		release:  make(chan struct{}, 1),
		poisoned: make(chan struct{}),
	}
	for r := range e.inboxes {
		e.inboxes[r] = newInbox()
	}
	for r, c := range conns {
		if c == nil {
			continue
		}
		c.SetDeadline(time.Time{}) // handshake deadlines end here
		e.wg.Add(1)
		go e.readLoop(r, c)
	}
	return e
}

func (e *endpoint) Rank() int  { return e.rank }
func (e *endpoint) World() int { return e.world }

func (e *endpoint) Send(to int, buf []byte) error {
	if to < 0 || to >= e.world {
		return fmt.Errorf("tcptransport: send to rank %d outside world of %d", to, e.world)
	}
	if int64(len(buf)) > e.opts.MaxFrameBytes {
		return fmt.Errorf("tcptransport: rank %d: %d-byte frame to rank %d exceeds the %d-byte limit", e.rank, len(buf), to, e.opts.MaxFrameBytes)
	}
	if err := e.errIfPoisoned(); err != nil {
		return err
	}
	if to == e.rank {
		// Wire sends copy (the kernel has the bytes before Send returns),
		// so the loopback copies too: a self-sent buffer is immediately
		// reusable either way.
		cp := make([]byte, len(buf))
		copy(cp, buf)
		e.inboxes[to].push(cp)
		return nil
	}
	if err := e.writeFrame(to, kData, buf); err != nil {
		e.poison(fmt.Errorf("tcptransport: rank %d send to rank %d: %w", e.rank, to, err))
		return e.err()
	}
	return nil
}

func (e *endpoint) Recv(from int) ([]byte, error) {
	if from < 0 || from >= e.world {
		return nil, fmt.Errorf("tcptransport: recv from rank %d outside world of %d", from, e.world)
	}
	return e.inboxes[from].pop(e)
}

// Barrier is a star through rank 0: workers post an arrive frame and
// block on the release; rank 0 collects world-1 arrivals, then releases
// everyone. Per-pair FIFO means a worker's release cannot overtake data
// rank 0 sent before it, and cap-1 release buffering suffices because a
// worker cannot enter the next barrier before consuming this release.
func (e *endpoint) Barrier() error {
	if err := e.errIfPoisoned(); err != nil {
		return err
	}
	if e.world == 1 {
		return nil
	}
	if e.rank == 0 {
		for i := 0; i < e.world-1; i++ {
			select {
			case <-e.arrive:
			case <-e.poisoned:
				return e.err()
			}
		}
		for r := 1; r < e.world; r++ {
			if err := e.writeFrame(r, kBarrierRelease, nil); err != nil {
				e.poison(fmt.Errorf("tcptransport: rank 0 barrier release to rank %d: %w", r, err))
				return e.err()
			}
		}
		return nil
	}
	if err := e.writeFrame(0, kBarrierArrive, nil); err != nil {
		e.poison(fmt.Errorf("tcptransport: rank %d barrier arrive: %w", e.rank, err))
		return e.err()
	}
	select {
	case <-e.release:
		return nil
	case <-e.poisoned:
		return e.err()
	}
}

// Close leaves the group gracefully: notify every peer under a bounded
// write deadline, then poison locally (closing the connections) and join
// the readers. Peers observe the notify — or the EOF right behind it —
// and poison themselves; data they already received stays drainable.
func (e *endpoint) Close() error {
	e.closeOnce.Do(func() {
		deadline := time.Now().Add(e.opts.CloseTimeout)
		for r, c := range e.conns {
			if c == nil {
				continue
			}
			c.SetWriteDeadline(deadline)
			_ = e.writeFrame(r, kCloseNotify, nil)
		}
		e.poison(fmt.Errorf("tcptransport: rank %d endpoint closed", e.rank))
		e.wg.Wait()
	})
	return nil
}

// Kill severs the endpoint abruptly: no close notify is sent, the
// connections just die — which is exactly what a crashed rank looks like
// from the other end of the wire. Peers observe a mid-stream EOF and
// poison themselves, turning every blocked or future collective into a
// prompt error. The chaos tests use it to police the errors-not-deadlocks
// contract; cooperative teardown should use Close. Safe to call more than
// once and concurrently with any other method.
func (e *endpoint) Kill() {
	e.closeOnce.Do(func() {}) // a later Close must not send close notifies
	e.poison(fmt.Errorf("tcptransport: rank %d killed (fault injection)", e.rank))
	e.wg.Wait()
}

// writeFrame writes one frame to peer to. Callers run on the owning
// rank's goroutine, so writes to a connection never interleave.
func (e *endpoint) writeFrame(to int, kind byte, payload []byte) error {
	var hdr [frameHeaderBytes]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	c := e.conns[to]
	t0 := time.Now()
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.Write(payload); err != nil {
			return err
		}
	}
	e.counters[to].countSend(frameHeaderBytes+len(payload), time.Since(t0))
	return nil
}

// readLoop demuxes frames from one peer until the connection dies or the
// endpoint is poisoned. Inbox pushes never block, so a slow local Recv
// cannot stall the wire; the barrier channels are sized so a post only
// blocks when the owning goroutine is gone, in which case the poisoned
// select arm frees the reader.
func (e *endpoint) readLoop(from int, c net.Conn) {
	defer e.wg.Done()
	var hdr [frameHeaderBytes]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			e.poison(fmt.Errorf("tcptransport: rank %d lost the connection to rank %d: %w", e.rank, from, err))
			return
		}
		kind := hdr[0]
		n := int64(binary.LittleEndian.Uint32(hdr[1:]))
		if n > e.opts.MaxFrameBytes {
			e.poison(fmt.Errorf("tcptransport: rank %d: %d-byte frame from rank %d exceeds the %d-byte limit", e.rank, n, from, e.opts.MaxFrameBytes))
			return
		}
		payload := []byte{}
		var transfer time.Duration
		if n > 0 {
			// Only the payload read is timed: the header ReadFull above
			// blocks for as long as the peer has nothing to say, and that
			// idle wait is not transfer cost.
			payload = make([]byte, n)
			t0 := time.Now()
			if _, err := io.ReadFull(c, payload); err != nil {
				e.poison(fmt.Errorf("tcptransport: rank %d truncated frame from rank %d: %w", e.rank, from, err))
				return
			}
			transfer = time.Since(t0)
		}
		e.counters[from].countRecv(frameHeaderBytes+int(n), transfer)
		switch kind {
		case kData:
			e.inboxes[from].push(payload)
		case kBarrierArrive:
			select {
			case e.arrive <- from:
			case <-e.poisoned:
				return
			}
		case kBarrierRelease:
			select {
			case e.release <- struct{}{}:
			case <-e.poisoned:
				return
			}
		case kCloseNotify:
			e.poison(fmt.Errorf("tcptransport: rank %d closed the group", from))
			return
		default:
			e.poison(fmt.Errorf("tcptransport: rank %d: unknown frame kind %d from rank %d", e.rank, kind, from))
			return
		}
	}
}

// poison publishes the endpoint's terminal error exactly once, closes
// every connection (cascading the failure to peers as EOF), and wakes
// every blocked Recv and Barrier. Safe from any goroutine.
func (e *endpoint) poison(err error) {
	e.mu.Lock()
	if e.perr != nil {
		e.mu.Unlock()
		return
	}
	e.perr = err
	close(e.poisoned)
	e.mu.Unlock()
	for _, ib := range e.inboxes {
		ib.kill()
	}
	for _, c := range e.conns {
		if c != nil {
			c.Close()
		}
	}
}

func (e *endpoint) err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.perr == nil {
		return errors.New("tcptransport: endpoint failed")
	}
	return e.perr
}

func (e *endpoint) errIfPoisoned() error {
	select {
	case <-e.poisoned:
		return e.err()
	default:
		return nil
	}
}

// inbox is one source rank's delivered-message queue. Pushes (from the
// reader goroutine) never block; pop blocks until a message arrives or
// the endpoint is poisoned, draining queued messages before reporting
// the poison — the same drain-then-fail semantics as the in-process
// fabric.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    [][]byte
	head int
	dead bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(buf []byte) {
	ib.mu.Lock()
	ib.q = append(ib.q, buf)
	ib.mu.Unlock()
	ib.cond.Signal()
}

func (ib *inbox) kill() {
	ib.mu.Lock()
	ib.dead = true
	ib.mu.Unlock()
	ib.cond.Broadcast()
}

func (ib *inbox) pop(e *endpoint) ([]byte, error) {
	ib.mu.Lock()
	for ib.head >= len(ib.q) && !ib.dead {
		ib.cond.Wait()
	}
	if ib.head < len(ib.q) {
		buf := ib.q[ib.head]
		ib.q[ib.head] = nil
		ib.head++
		if ib.head == len(ib.q) {
			ib.q = ib.q[:0]
			ib.head = 0
		}
		ib.mu.Unlock()
		return buf, nil
	}
	ib.mu.Unlock()
	return nil, e.err()
}
