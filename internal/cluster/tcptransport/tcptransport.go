// Package tcptransport is the real multi-process backend for
// cluster.Transport: one OS process per rank, stdlib net sockets, no
// dependencies. It exists so the same dist.Trainer that runs N ranks as
// goroutines can run N ranks as N processes — the conformance suite in
// internal/cluster and internal/dist holds both backends to bit-identical
// losses and sim-time buckets.
//
// Rendezvous: rank 0 listens at Options.Addr; every other rank opens an
// ephemeral listener for peer connections, dials rank 0 (retrying until
// DialTimeout, so start order is free), and sends a hello carrying its
// rank and listener address. Once all World-1 hellos are in, rank 0 mints
// a random session token and answers each peer with a welcome carrying
// the token and the full address book. Peer pairs then connect directly:
// rank i dials rank j for every 0 < j < i and identifies itself with the
// session token, so a stale worker from a previous run — or any dialer
// without the token — is rejected without disturbing the group. The
// (i, 0) pairs reuse the rendezvous connections.
//
//	rank 1 ──hello──▶             ◀──hello── rank 2
//	            │      rank 0        │
//	            ◀─welcome─┴─welcome──▶        (session token + address book)
//	rank 1 ◀──────── pair hello ──────── rank 2
//
// After the handshake every frame on a connection is
//
//	kind byte | payload length uint32 LE | payload
//
// mirroring the length-prefixed fused frames of internal/dist's wire
// format. Data frames are queued per source rank (unbounded, so a reader
// never stalls the wire); barrier frames implement a star barrier through
// rank 0.
//
// Failure and shutdown: the first error on any connection — EOF, a
// malformed or oversized frame, a peer's close notification — poisons the
// endpoint: the stored error is published, every connection is closed
// (which cascades the failure to all peers as EOF), and every blocked
// Recv, Send, or Barrier returns the error instead of deadlocking.
// Close is the graceful flavor: it sends a close-notify frame to each
// peer under a CloseTimeout write deadline, then poisons locally and
// joins the reader goroutines. Messages already delivered before a close
// or failure remain drainable from Recv, matching the in-process fabric.
//
// Sim time is unchanged by this package: collectives charge the same
// modelled netmodel costs whether frames cross a channel or a socket —
// wall-clock transport speed never leaks into the accounting.
package tcptransport

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"dlrmcomp/internal/cluster"
)

// Wire constants. The magic spells "DLRM"; bump version on any change to
// the handshake or frame layout.
const (
	magic   = 0x444C524D
	version = 1

	// Handshake message kinds.
	hkHello   = 1 // worker -> rank 0: rank + pair-listener address
	hkWelcome = 2 // rank 0 -> worker: session token + address book
	hkPair    = 3 // worker -> worker: session token + dialer rank

	helloFixedBytes   = 4 + 1 + 1 + 4 + 4 + 2 // magic | ver | kind | world | rank | addrLen
	welcomeFixedBytes = 4 + 1 + 1 + 8 + 4     // magic | ver | kind | session | world
	pairHelloBytes    = 4 + 1 + 1 + 8 + 4     // magic | ver | kind | session | from

	maxAddrBytes = 256

	defaultDialTimeout      = 10 * time.Second
	defaultHandshakeTimeout = 10 * time.Second
	defaultCloseTimeout     = 2 * time.Second
	defaultMaxFrameBytes    = 1 << 30
)

// Options configures one rank's endpoint. Every rank of a group must use
// the same World and Addr; the rest may differ per process.
type Options struct {
	// Rank is this process's rank id in [0, World).
	Rank int
	// World is the group size.
	World int
	// Addr is rank 0's rendezvous address ("host:port"). Rank 0 listens
	// on it; other ranks dial it, and open their own pair listeners on
	// the same host with an ephemeral port.
	Addr string
	// DialTimeout bounds how long a worker keeps retrying the rendezvous
	// dial while rank 0 is still coming up. Default 10s.
	DialTimeout time.Duration
	// HandshakeTimeout bounds the whole hello/welcome/pair exchange once
	// connected. Default 10s.
	HandshakeTimeout time.Duration
	// CloseTimeout bounds the close-notify writes during a graceful
	// Close. Default 2s.
	CloseTimeout time.Duration
	// MaxFrameBytes caps a single frame's payload; an incoming frame
	// above it poisons the endpoint, an outgoing one fails the Send.
	// Default 1 GiB.
	MaxFrameBytes int64
}

// withDefaults resolves zero fields to their defaults.
func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = defaultHandshakeTimeout
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = defaultCloseTimeout
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = defaultMaxFrameBytes
	}
	return o
}

// Dial joins the group and blocks until every pairwise connection is
// established, returning this rank's endpoint. All World processes must
// call it (in any order); a worker retries the rendezvous dial until
// rank 0 is up or DialTimeout expires.
func Dial(o Options) (cluster.Transport, error) {
	if o.World <= 0 {
		return nil, fmt.Errorf("tcptransport: world must be positive, got %d", o.World)
	}
	if o.Rank < 0 || o.Rank >= o.World {
		return nil, fmt.Errorf("tcptransport: rank %d outside world of %d", o.Rank, o.World)
	}
	if o.Addr == "" {
		return nil, fmt.Errorf("tcptransport: rendezvous address is empty")
	}
	o = o.withDefaults()
	if o.World == 1 {
		// A single-rank group moves no bytes; skip the sockets entirely.
		return newEndpoint(o, make([]net.Conn, 1)), nil
	}
	if o.Rank == 0 {
		return rendezvousLead(o)
	}
	return rendezvousWorker(o)
}

// rendezvousLead is rank 0's side: accept a hello from every worker,
// mint the session token, answer each with the welcome. Dialers with a
// garbled or duplicate hello (a stale worker from a previous run, a port
// scanner) are dropped without failing the group.
func rendezvousLead(o Options) (cluster.Transport, error) {
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: rank 0 listen on %s: %w", o.Addr, err)
	}
	defer ln.Close()
	deadline := time.Now().Add(o.HandshakeTimeout)
	conns := make([]net.Conn, o.World)
	addrs := make([]string, o.World)
	fail := func(err error) (cluster.Transport, error) {
		closeAll(conns)
		return nil, err
	}
	var lastReject error
	for need := o.World - 1; need > 0; {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			missing := missingRanks(conns)
			if lastReject != nil {
				return fail(fmt.Errorf("tcptransport: rendezvous gave up waiting for ranks %v (last rejected dialer: %v): %w", missing, lastReject, err))
			}
			return fail(fmt.Errorf("tcptransport: rendezvous gave up waiting for ranks %v: %w", missing, err))
		}
		rank, addr, err := readHello(c, o, deadline)
		if err == nil && conns[rank] != nil {
			err = fmt.Errorf("duplicate hello for rank %d", rank)
		}
		if err != nil {
			c.Close()
			lastReject = err
			continue
		}
		conns[rank] = c
		addrs[rank] = addr
		need--
	}
	var session [8]byte
	if _, err := rand.Read(session[:]); err != nil {
		return fail(fmt.Errorf("tcptransport: session token: %w", err))
	}
	for r := 1; r < o.World; r++ {
		if err := writeWelcome(conns[r], o, session, addrs, deadline); err != nil {
			return fail(fmt.Errorf("tcptransport: welcome to rank %d: %w", r, err))
		}
	}
	return newEndpoint(o, conns), nil
}

// rendezvousWorker is a non-zero rank's side: open the pair listener,
// dial rank 0 (retrying while it comes up), exchange hello/welcome, then
// dial every lower rank and accept every higher one.
func rendezvousWorker(o Options) (cluster.Transport, error) {
	host, _, err := net.SplitHostPort(o.Addr)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: rendezvous address %q: %w", o.Addr, err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("tcptransport: rank %d pair listener: %w", o.Rank, err)
	}
	defer ln.Close()
	conns := make([]net.Conn, o.World)
	fail := func(err error) (cluster.Transport, error) {
		closeAll(conns)
		return nil, err
	}

	dialDeadline := time.Now().Add(o.DialTimeout)
	for {
		c, err := net.DialTimeout("tcp", o.Addr, time.Until(dialDeadline))
		if err == nil {
			conns[0] = c
			break
		}
		if !time.Now().Before(dialDeadline) {
			return fail(fmt.Errorf("tcptransport: rank %d could not reach rank 0 at %s within %v: %w", o.Rank, o.Addr, o.DialTimeout, err))
		}
		time.Sleep(50 * time.Millisecond)
	}

	deadline := time.Now().Add(o.HandshakeTimeout)
	if err := writeHello(conns[0], o, ln.Addr().String(), deadline); err != nil {
		return fail(fmt.Errorf("tcptransport: rank %d hello: %w", o.Rank, err))
	}
	session, addrs, err := readWelcome(conns[0], o, deadline)
	if err != nil {
		return fail(fmt.Errorf("tcptransport: rank %d welcome: %w", o.Rank, err))
	}
	for r := 1; r < o.Rank; r++ {
		c, err := net.DialTimeout("tcp", addrs[r], time.Until(deadline))
		if err != nil {
			return fail(fmt.Errorf("tcptransport: rank %d dial rank %d at %s: %w", o.Rank, r, addrs[r], err))
		}
		conns[r] = c
		if err := writePairHello(c, o, session, deadline); err != nil {
			return fail(fmt.Errorf("tcptransport: rank %d pair hello to rank %d: %w", o.Rank, r, err))
		}
	}
	var lastReject error
	for need := o.World - 1 - o.Rank; need > 0; {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			if lastReject != nil {
				return fail(fmt.Errorf("tcptransport: rank %d gave up waiting for %d pair connection(s) (last rejected dialer: %v): %w", o.Rank, need, lastReject, err))
			}
			return fail(fmt.Errorf("tcptransport: rank %d gave up waiting for %d pair connection(s): %w", o.Rank, need, err))
		}
		from, err := readPairHello(c, o, session, deadline)
		if err == nil && (from <= o.Rank || conns[from] != nil) {
			err = fmt.Errorf("unexpected pair hello from rank %d", from)
		}
		if err != nil {
			c.Close()
			lastReject = err
			continue
		}
		conns[from] = c
		need--
	}
	return newEndpoint(o, conns), nil
}

// readHello validates a worker's hello, returning its rank and announced
// pair-listener address.
func readHello(c net.Conn, o Options, deadline time.Time) (int, string, error) {
	c.SetDeadline(deadline)
	var fixed [helloFixedBytes]byte
	if _, err := io.ReadFull(c, fixed[:]); err != nil {
		return 0, "", fmt.Errorf("read hello: %w", err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != magic {
		return 0, "", fmt.Errorf("hello magic %#x, want %#x", got, uint32(magic))
	}
	if fixed[4] != version {
		return 0, "", fmt.Errorf("hello version %d, want %d", fixed[4], version)
	}
	if fixed[5] != hkHello {
		return 0, "", fmt.Errorf("handshake kind %d, want hello (%d)", fixed[5], hkHello)
	}
	if got := int(binary.LittleEndian.Uint32(fixed[6:])); got != o.World {
		return 0, "", fmt.Errorf("hello world %d, want %d", got, o.World)
	}
	rank := int(binary.LittleEndian.Uint32(fixed[10:]))
	if rank < 1 || rank >= o.World {
		return 0, "", fmt.Errorf("hello rank %d outside (0, %d)", rank, o.World)
	}
	n := int(binary.LittleEndian.Uint16(fixed[14:]))
	if n == 0 || n > maxAddrBytes {
		return 0, "", fmt.Errorf("hello address length %d", n)
	}
	ab := make([]byte, n)
	if _, err := io.ReadFull(c, ab); err != nil {
		return 0, "", fmt.Errorf("read hello address: %w", err)
	}
	return rank, string(ab), nil
}

func writeHello(c net.Conn, o Options, listenAddr string, deadline time.Time) error {
	if len(listenAddr) == 0 || len(listenAddr) > maxAddrBytes {
		return fmt.Errorf("pair listener address %q out of range", listenAddr)
	}
	buf := make([]byte, 0, helloFixedBytes+len(listenAddr))
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = append(buf, version, hkHello)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.World))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Rank))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(listenAddr)))
	buf = append(buf, listenAddr...)
	c.SetDeadline(deadline)
	_, err := c.Write(buf)
	return err
}

func writeWelcome(c net.Conn, o Options, session [8]byte, addrs []string, deadline time.Time) error {
	buf := make([]byte, 0, welcomeFixedBytes+16*o.World)
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = append(buf, version, hkWelcome)
	buf = append(buf, session[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.World))
	for r := 1; r < o.World; r++ {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(addrs[r])))
		buf = append(buf, addrs[r]...)
	}
	c.SetDeadline(deadline)
	_, err := c.Write(buf)
	return err
}

func readWelcome(c net.Conn, o Options, deadline time.Time) ([8]byte, []string, error) {
	var session [8]byte
	c.SetDeadline(deadline)
	var fixed [welcomeFixedBytes]byte
	if _, err := io.ReadFull(c, fixed[:]); err != nil {
		return session, nil, fmt.Errorf("read welcome: %w", err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != magic {
		return session, nil, fmt.Errorf("welcome magic %#x, want %#x", got, uint32(magic))
	}
	if fixed[4] != version {
		return session, nil, fmt.Errorf("welcome version %d, want %d", fixed[4], version)
	}
	if fixed[5] != hkWelcome {
		return session, nil, fmt.Errorf("handshake kind %d, want welcome (%d)", fixed[5], hkWelcome)
	}
	copy(session[:], fixed[6:14])
	if got := int(binary.LittleEndian.Uint32(fixed[14:])); got != o.World {
		return session, nil, fmt.Errorf("welcome world %d, want %d", got, o.World)
	}
	addrs := make([]string, o.World)
	for r := 1; r < o.World; r++ {
		var lb [2]byte
		if _, err := io.ReadFull(c, lb[:]); err != nil {
			return session, nil, fmt.Errorf("read address book: %w", err)
		}
		n := int(binary.LittleEndian.Uint16(lb[:]))
		if n == 0 || n > maxAddrBytes {
			return session, nil, fmt.Errorf("address book entry length %d", n)
		}
		ab := make([]byte, n)
		if _, err := io.ReadFull(c, ab); err != nil {
			return session, nil, fmt.Errorf("read address book: %w", err)
		}
		addrs[r] = string(ab)
	}
	return session, addrs, nil
}

func writePairHello(c net.Conn, o Options, session [8]byte, deadline time.Time) error {
	buf := make([]byte, 0, pairHelloBytes)
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = append(buf, version, hkPair)
	buf = append(buf, session[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Rank))
	c.SetDeadline(deadline)
	_, err := c.Write(buf)
	return err
}

// readPairHello validates a peer-to-peer dialer: magic, version, and —
// the stale-run defense — the session token minted by this run's rank 0.
func readPairHello(c net.Conn, o Options, session [8]byte, deadline time.Time) (int, error) {
	c.SetDeadline(deadline)
	var fixed [pairHelloBytes]byte
	if _, err := io.ReadFull(c, fixed[:]); err != nil {
		return 0, fmt.Errorf("read pair hello: %w", err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != magic {
		return 0, fmt.Errorf("pair hello magic %#x, want %#x", got, uint32(magic))
	}
	if fixed[4] != version {
		return 0, fmt.Errorf("pair hello version %d, want %d", fixed[4], version)
	}
	if fixed[5] != hkPair {
		return 0, fmt.Errorf("handshake kind %d, want pair hello (%d)", fixed[5], hkPair)
	}
	var got [8]byte
	copy(got[:], fixed[6:14])
	if got != session {
		return 0, fmt.Errorf("pair hello session token mismatch (stale peer?)")
	}
	from := int(binary.LittleEndian.Uint32(fixed[14:]))
	if from < 1 || from >= o.World {
		return 0, fmt.Errorf("pair hello rank %d outside (0, %d)", from, o.World)
	}
	return from, nil
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

func missingRanks(conns []net.Conn) []int {
	var missing []int
	for r := 1; r < len(conns); r++ {
		if conns[r] == nil {
			missing = append(missing, r)
		}
	}
	return missing
}
