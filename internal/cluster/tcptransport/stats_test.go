package tcptransport

import (
	"sync"
	"testing"
)

// TestTransportStatsCounters drives a known frame schedule across a
// 2-rank group and checks the per-peer accounting on both ends: every
// wire frame (data, barrier arrive, barrier release) is counted with its
// header, self-sends never touch the wire, and the two endpoints' views
// of one direction agree exactly.
func TestTransportStatsCounters(t *testing.T) {
	sizes := []int{0, 1, 100, 4096}
	eps := dialGroup(t, 2, nil)

	for seq, size := range sizes {
		if err := eps[0].Send(1, payload(0, 1, seq, size)); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	// A self-send stays in process: it must not appear in any counter.
	if err := eps[0].Send(0, payload(0, 0, 0, 64)); err != nil {
		t.Fatalf("self send: %v", err)
	}
	if _, err := eps[0].Recv(0); err != nil {
		t.Fatalf("self recv: %v", err)
	}
	for seq := range sizes {
		if _, err := eps[1].Recv(0); err != nil {
			t.Fatalf("recv %d: %v", seq, err)
		}
	}
	// One barrier: rank 1 sends an arrive frame, rank 0 a release frame,
	// both empty-payload (header bytes only). Counters are bumped before
	// the frame is delivered to the barrier machinery, so once both
	// Barrier calls return the counts are settled.
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := eps[r].Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	dataBytes := int64(0)
	for _, size := range sizes {
		dataBytes += int64(frameHeaderBytes + size)
	}
	wantSent := dataBytes + frameHeaderBytes // data frames + barrier release
	wantFrames := int64(len(sizes)) + 1

	stats := func(r int) []PeerStats {
		ins, ok := eps[r].(Instrumented)
		if !ok {
			t.Fatalf("rank %d endpoint does not implement Instrumented", r)
		}
		return ins.TransportStats()
	}
	s0, s1 := stats(0), stats(1)
	if len(s0) != 1 || len(s1) != 1 {
		t.Fatalf("want one peer entry per endpoint in a 2-rank group, got %d and %d", len(s0), len(s1))
	}
	if s0[0].Peer != 1 || s1[0].Peer != 0 {
		t.Fatalf("peer ids: rank 0 sees %d, rank 1 sees %d", s0[0].Peer, s1[0].Peer)
	}
	if s0[0].SentBytes != wantSent || s0[0].SentFrames != wantFrames {
		t.Errorf("rank 0 sent %d bytes in %d frames, want %d in %d", s0[0].SentBytes, s0[0].SentFrames, wantSent, wantFrames)
	}
	if s0[0].RecvBytes != frameHeaderBytes || s0[0].RecvFrames != 1 {
		t.Errorf("rank 0 recv %d bytes in %d frames, want %d in 1 (barrier arrive)", s0[0].RecvBytes, s0[0].RecvFrames, frameHeaderBytes)
	}
	// The two ends of one direction must agree byte for byte.
	if s1[0].RecvBytes != s0[0].SentBytes || s1[0].RecvFrames != s0[0].SentFrames {
		t.Errorf("rank 1 recv (%d B, %d frames) disagrees with rank 0 sent (%d B, %d frames)",
			s1[0].RecvBytes, s1[0].RecvFrames, s0[0].SentBytes, s0[0].SentFrames)
	}
	if s1[0].SentBytes != frameHeaderBytes || s1[0].SentFrames != 1 {
		t.Errorf("rank 1 sent %d bytes in %d frames, want %d in 1 (barrier arrive)", s1[0].SentBytes, s1[0].SentFrames, frameHeaderBytes)
	}
	for _, s := range [][]PeerStats{s0, s1} {
		if s[0].SendMicros < 0 || s[0].RecvMicros < 0 {
			t.Errorf("negative socket time: %+v", s[0])
		}
	}
}
