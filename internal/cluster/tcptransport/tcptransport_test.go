package tcptransport

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlrmcomp/internal/cluster"
)

// freeAddr reserves a loopback port by binding and releasing it. The
// tiny reuse window is acceptable for tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialGroup brings up a world-rank group on loopback, all endpoints in
// this process. mod, when non-nil, tweaks each rank's Options.
func dialGroup(t *testing.T, world int, mod func(rank int, o *Options)) []cluster.Transport {
	t.Helper()
	addr := freeAddr(t)
	eps := make([]cluster.Transport, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := Options{
				Rank:             r,
				World:            world,
				Addr:             addr,
				DialTimeout:      5 * time.Second,
				HandshakeTimeout: 5 * time.Second,
				CloseTimeout:     time.Second,
			}
			if mod != nil {
				mod(r, &o)
			}
			eps[r], errs[r] = Dial(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, e := range eps {
			if e != nil {
				e.Close()
			}
		}
	})
	return eps
}

// payload builds a deterministic ragged test payload.
func payload(from, to, seq, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(from*31 + to*17 + seq*7 + i)
	}
	return b
}

// TestPairwiseFIFOAndRagged drives every directed pair — self-sends
// included — with a ragged size schedule (zero-length frames among them)
// and checks content and per-pair FIFO order on the far side.
func TestPairwiseFIFOAndRagged(t *testing.T) {
	const world = 3
	sizes := []int{0, 1, 7, 4096, 0, 65, 1000}
	eps := dialGroup(t, world, nil)
	var wg sync.WaitGroup
	errc := make(chan error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := eps[r]
			for seq, size := range sizes {
				for to := 0; to < world; to++ {
					if err := e.Send(to, payload(r, to, seq, size)); err != nil {
						errc <- fmt.Errorf("rank %d send seq %d to %d: %w", r, seq, to, err)
						return
					}
				}
			}
			for seq, size := range sizes {
				for from := 0; from < world; from++ {
					got, err := e.Recv(from)
					if err != nil {
						errc <- fmt.Errorf("rank %d recv seq %d from %d: %w", r, seq, from, err)
						return
					}
					if want := payload(from, r, seq, size); !bytes.Equal(got, want) {
						errc <- fmt.Errorf("rank %d seq %d from %d: got %d bytes, want %d (FIFO or content violated)", r, seq, from, len(got), len(want))
						return
					}
				}
			}
			if err := e.Barrier(); err != nil {
				errc <- fmt.Errorf("rank %d barrier: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// The receive order above is send order per pair but the outer loops
// interleave destinations, so the inboxes also prove sends to different
// destinations don't block each other: every rank posts all its frames
// before reading any.

func TestBarrierSynchronizes(t *testing.T) {
	const world, rounds = 4, 20
	eps := dialGroup(t, world, nil)
	var counter atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				counter.Add(1)
				if err := eps[r].Barrier(); err != nil {
					errc <- err
					return
				}
				if got := counter.Load(); got < int64(world*round) {
					errc <- fmt.Errorf("rank %d escaped barrier round %d with counter %d", r, round, got)
					return
				}
				if err := eps[r].Barrier(); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestOversizedSendRejected: the sender-side cap fails the Send without
// killing the endpoint, so a capped rank keeps working under the limit.
func TestOversizedSendRejected(t *testing.T) {
	eps := dialGroup(t, 2, func(rank int, o *Options) {
		if rank == 0 {
			o.MaxFrameBytes = 64
		}
	})
	if err := eps[0].Send(1, make([]byte, 100)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized send: got %v, want frame-limit error", err)
	}
	done := make(chan error, 1)
	go func() {
		got, err := eps[1].Recv(0)
		if err == nil && len(got) != 10 {
			err = fmt.Errorf("got %d bytes, want 10", len(got))
		}
		done <- err
	}()
	if err := eps[0].Send(1, make([]byte, 10)); err != nil {
		t.Fatalf("in-limit send after rejected send: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recv after rejected send: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv did not complete")
	}
}

// TestOversizedRecvPoisons: a frame above the receiver's cap poisons the
// receiver, and the teardown cascades to the sender instead of leaving
// it blocked.
func TestOversizedRecvPoisons(t *testing.T) {
	eps := dialGroup(t, 2, func(rank int, o *Options) {
		if rank == 0 {
			o.MaxFrameBytes = 64
		}
	})
	if err := eps[1].Send(0, make([]byte, 1000)); err != nil {
		t.Fatalf("send: %v", err) // within rank 1's own cap; the receiver enforces its limit
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(1)
		recvErr <- err
	}()
	select {
	case err := <-recvErr:
		if err == nil || !strings.Contains(err.Error(), "limit") {
			t.Fatalf("receiver: got %v, want frame-limit error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver did not error")
	}
	peerErr := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv(0)
		peerErr <- err
	}()
	select {
	case err := <-peerErr:
		if err == nil {
			t.Fatal("sender side kept working after peer poisoned")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failure did not cascade to the sender")
	}
}

// TestMidCollectiveCloseErrors: a rank closing while its peers sit in
// blocking Recv and Barrier must error both out promptly — never
// deadlock them.
func TestMidCollectiveCloseErrors(t *testing.T) {
	eps := dialGroup(t, 3, nil)
	blocked := make(chan error, 2)
	go func() {
		_, err := eps[1].Recv(0)
		blocked <- err
	}()
	go func() {
		blocked <- eps[2].Barrier()
	}()
	time.Sleep(50 * time.Millisecond) // let both calls block
	if err := eps[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-blocked:
			if err == nil {
				t.Fatal("blocked collective returned nil after peer close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("blocked collective did not return after peer close")
		}
	}
}

// TestGracefulCloseDrains: frames delivered before the peer's close stay
// readable; the error surfaces only once the queue is dry.
func TestGracefulCloseDrains(t *testing.T) {
	eps := dialGroup(t, 2, nil)
	for seq := 0; seq < 3; seq++ {
		if err := eps[0].Send(1, payload(0, 1, seq, 32)); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	if err := eps[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	deadline := time.After(5 * time.Second)
	results := make(chan error, 1)
	go func() {
		for seq := 0; seq < 3; seq++ {
			got, err := eps[1].Recv(0)
			if err != nil {
				results <- fmt.Errorf("recv %d after close: %w", seq, err)
				return
			}
			if !bytes.Equal(got, payload(0, 1, seq, 32)) {
				results <- fmt.Errorf("recv %d: wrong payload", seq)
				return
			}
		}
		if _, err := eps[1].Recv(0); err == nil {
			results <- fmt.Errorf("recv past the drained queue returned nil error")
			return
		}
		results <- nil
	}()
	select {
	case err := <-results:
		if err != nil {
			t.Fatal(err)
		}
	case <-deadline:
		t.Fatal("drain did not complete")
	}
}

// pipeEndpoint builds a bare endpoint over one side of a net.Pipe so
// read-path edge cases can be driven byte by byte.
func pipeEndpoint(t *testing.T) (*endpoint, net.Conn) {
	t.Helper()
	local, remote := net.Pipe()
	conns := make([]net.Conn, 2)
	conns[1] = local
	o := Options{Rank: 0, World: 2}.withDefaults()
	e := newEndpoint(o, conns)
	t.Cleanup(func() { e.Close(); remote.Close() })
	return e, remote
}

// TestShortReadHeaderPoisons: a connection dying mid-header surfaces as
// an error from Recv, via the io.ReadFull path.
func TestShortReadHeaderPoisons(t *testing.T) {
	e, remote := pipeEndpoint(t)
	go func() {
		remote.Write([]byte{kData, 9}) // 2 of 5 header bytes
		remote.Close()
	}()
	if _, err := e.Recv(1); err == nil || !strings.Contains(err.Error(), "lost the connection") {
		t.Fatalf("got %v, want connection-loss error", err)
	}
}

// TestShortReadPayloadPoisons: a frame whose payload is cut short is a
// truncation error, not a hang and not a short delivery.
func TestShortReadPayloadPoisons(t *testing.T) {
	e, remote := pipeEndpoint(t)
	go func() {
		remote.Write([]byte{kData, 10, 0, 0, 0}) // header: 10-byte payload
		remote.Write([]byte{1, 2, 3})            // only 3 arrive
		remote.Close()
	}()
	if _, err := e.Recv(1); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("got %v, want truncation error", err)
	}
}

// TestUnknownFrameKindPoisons: protocol garbage after the handshake kills
// the endpoint with a descriptive error.
func TestUnknownFrameKindPoisons(t *testing.T) {
	e, remote := pipeEndpoint(t)
	go func() {
		remote.Write([]byte{0xFF, 0, 0, 0, 0})
	}()
	if _, err := e.Recv(1); err == nil || !strings.Contains(err.Error(), "unknown frame kind") {
		t.Fatalf("got %v, want unknown-kind error", err)
	}
}

// TestStaleRendezvousDialerRejected: a dialer speaking an old or foreign
// protocol (wrong magic — e.g. a worker from a previous run restarted
// against a reused port) is dropped without disturbing the rendezvous.
func TestStaleRendezvousDialerRejected(t *testing.T) {
	addr := freeAddr(t)
	opts := func(rank int) Options {
		return Options{Rank: rank, World: 2, Addr: addr, DialTimeout: 5 * time.Second, HandshakeTimeout: 5 * time.Second}
	}
	lead := make(chan struct{})
	var ep0 cluster.Transport
	var err0 error
	go func() {
		ep0, err0 = Dial(opts(0))
		close(lead)
	}()
	// A stale/garbage dialer gets in first (retry until rank 0 listens).
	var stale net.Conn
	var err error
	for i := 0; i < 100; i++ {
		stale, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("stale dial: %v", err)
	}
	stale.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	defer stale.Close()
	// The real worker still completes the handshake.
	ep1, err := Dial(opts(1))
	if err != nil {
		t.Fatalf("rank 1 dial after stale peer: %v", err)
	}
	<-lead
	if err0 != nil {
		t.Fatalf("rank 0 dial: %v", err0)
	}
	defer ep0.Close()
	defer ep1.Close()
	if err := ep0.Send(1, []byte("ok")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if got, err := ep1.Recv(0); err != nil || string(got) != "ok" {
		t.Fatalf("recv: %q, %v", got, err)
	}
}

// TestPairHelloSessionMismatchRejected: the session token minted per run
// is what locks out stale pair dialers; a mismatch is an explicit error.
func TestPairHelloSessionMismatchRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	o := Options{Rank: 2, World: 3}
	current := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	stale := [8]byte{8, 7, 6, 5, 4, 3, 2, 1}
	deadline := time.Now().Add(2 * time.Second)
	go writePairHello(a, Options{Rank: 1, World: 3}, stale, deadline)
	if _, err := readPairHello(b, o, current, deadline); err == nil || !strings.Contains(err.Error(), "session") {
		t.Fatalf("got %v, want session mismatch error", err)
	}
}

// TestHelloWorldMismatchRejected: a worker configured for a different
// world size cannot join.
func TestHelloWorldMismatchRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	deadline := time.Now().Add(2 * time.Second)
	go writeHello(a, Options{Rank: 1, World: 4}, "127.0.0.1:1", deadline)
	if _, _, err := readHello(b, Options{Rank: 0, World: 2}, deadline); err == nil || !strings.Contains(err.Error(), "world") {
		t.Fatalf("got %v, want world mismatch error", err)
	}
}

// TestWorldOfOne: a single-rank group needs no sockets; self-sends and
// barriers still work.
func TestWorldOfOne(t *testing.T) {
	ep, err := Dial(Options{Rank: 0, World: 1, Addr: "127.0.0.1:1"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer ep.Close()
	if err := ep.Send(0, []byte("self")); err != nil {
		t.Fatalf("self send: %v", err)
	}
	if got, err := ep.Recv(0); err != nil || string(got) != "self" {
		t.Fatalf("self recv: %q, %v", got, err)
	}
	if err := ep.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
}
