package cluster

import (
	"time"

	"dlrmcomp/internal/netmodel"
)

// This file implements the nonblocking collectives behind the comm/compute
// overlap engine. In the simulation the data movement of a collective is
// eager — IAllToAllV and IAllReduceSum run the same transport protocol as
// their synchronous counterparts before returning, so the payloads are
// already delivered when the handle comes back. What the handle defers is
// simulated time: the collective's cost is captured at issue and charged to
// its accounting bucket only at Await. That split is exactly what an
// overlap scheduler needs — it can place the wire time of an in-flight
// transfer on a link-occupancy timeline while modelled compute proceeds,
// then Await at the simulated completion point.
//
// Because delivery is eager, Await calls are order-independent: two
// collectives may be issued back to back and awaited in either order (each
// all-to-all's trailing barrier protects its reads before the next one
// reuses send buffers). Every rank of a collective must issue it — the
// protocol inside is fleet-wide — and each rank must eventually Await its
// own handle exactly as it would call the synchronous collective, or the
// collective's time silently never lands in a bucket.
//
// A transport failure at issue time is captured in the handle and returned
// from Await, mirroring how a real nonblocking collective surfaces
// connection errors at completion.

// PendingAllToAll is an in-flight nonblocking all-to-all issued by one
// rank. The payloads are already delivered (delivery is eager; only the
// clock is deferred); Await returns them and charges the collective's
// simulated cost on first call.
type PendingAllToAll struct {
	c       *Cluster
	rank    int
	label   string
	recv    [][]byte
	cost    netmodel.LinkCost // nonzero on rank 0 only
	err     error
	awaited bool
}

// IAllToAllV issues a nonblocking all-to-all: identical data movement and
// algorithm selection to AllToAllV, but the simulated cost is captured in
// the returned handle instead of charged immediately. Every rank of the
// collective must call it (and later Await), like any collective.
func (r *Rank) IAllToAllV(send [][]byte, variable bool, label string, algo A2AAlgo) *PendingAllToAll {
	recv, cost, err := r.exchange(send, variable, algo)
	if err == nil && r.ID == 0 {
		// Fault injection scales the cost at the one point it is known
		// (rank 0), before it reaches the handle: Await's charge and any
		// overlap scheduler reading Cost() both see the inflated figure.
		cost = scaleLinkCost(cost, r.c.faultScale())
	}
	return &PendingAllToAll{c: r.c, rank: r.ID, label: label, recv: recv, cost: cost, err: err}
}

// Await completes the collective from this rank's point of view: it returns
// the received buffers and, on the first call from rank 0, charges the
// collective's simulated cost to its bucket (split per link under a
// multi-node topology). A failed collective returns its transport error and
// charges nothing. Await is idempotent; later calls return the same result
// without charging again.
func (p *PendingAllToAll) Await() ([][]byte, error) {
	if !p.awaited {
		p.awaited = true
		if p.err == nil && p.rank == 0 {
			p.c.chargeA2A(p.label, p.cost)
		}
	}
	return p.recv, p.err
}

// Cost reports the collective's simulated cost (metadata included when the
// exchange was variable-size). Only rank 0's handle carries it — the cost
// is computed once per collective from the global payload matrix — so
// schedulers read it from rank 0 and see a zero LinkCost elsewhere.
func (p *PendingAllToAll) Cost() netmodel.LinkCost { return p.cost }

// Awaited reports whether Await has been called on this handle.
func (p *PendingAllToAll) Awaited() bool { return p.awaited }

// PendingAllReduce is an in-flight nonblocking allreduce issued by one
// rank. The reduction is already applied to the caller's slice (delivery is
// eager); Await charges the collective's simulated cost on first call.
type PendingAllReduce struct {
	c       *Cluster
	rank    int
	label   string
	cost    time.Duration // nonzero on rank 0 only
	err     error
	awaited bool
}

// IAllReduceSum issues a nonblocking elementwise-sum allreduce: x holds the
// global sum when the call returns (the data movement is eager), and the
// simulated cost is captured in the handle for Await to charge. Every rank
// must call it with the same-length slice, like the synchronous
// AllReduceSum.
func (r *Rank) IAllReduceSum(x []float32, label string) *PendingAllReduce {
	cost, err := r.reduce(x)
	if err == nil && r.ID == 0 {
		cost = scaleDuration(cost, r.c.faultScale())
	}
	return &PendingAllReduce{c: r.c, rank: r.ID, label: label, cost: cost, err: err}
}

// Await charges the allreduce's simulated cost on the first call from
// rank 0 and reports the collective's error, if any. Idempotent.
func (p *PendingAllReduce) Await() error {
	if !p.awaited {
		p.awaited = true
		if p.err == nil && p.rank == 0 {
			p.c.AddSimTime(p.label, p.cost)
		}
	}
	return p.err
}

// Cost reports the allreduce's simulated duration (rank 0's handle only;
// zero elsewhere).
func (p *PendingAllReduce) Cost() time.Duration { return p.cost }

// Awaited reports whether Await has been called on this handle.
func (p *PendingAllReduce) Awaited() bool { return p.awaited }
