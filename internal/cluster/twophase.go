package cluster

import (
	"encoding/binary"
	"fmt"

	"dlrmcomp/internal/netmodel"
)

// This file implements the hierarchical two-phase all-to-all. Payloads
// really take the staged route (they are copied into envelope bundles and
// re-routed through node leaders), so the algorithm is exercised end to end
// — delivery is bit-identical to the direct path by construction of the
// routing, not by sharing its code.
//
// Envelope wire format, used for every staged hop:
//
//	origFrom uint32 | origTo uint32 | payloadLen uint32 | payload
//
// A bundle is a concatenation of envelopes. Empty payloads are never
// enveloped: the direct path delivers them as nil, and skipping them keeps
// the two paths' results identical.

const envelopeHeaderBytes = 12

// appendEnvelope appends one routed payload to a bundle.
func appendEnvelope(dst []byte, origFrom, origTo int, payload []byte) []byte {
	var hdr [envelopeHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(origFrom))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(origTo))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseEnvelopes walks a bundle, invoking fn once per envelope. Payload
// slices alias the bundle.
func parseEnvelopes(bundle []byte, fn func(origFrom, origTo int, payload []byte)) {
	for len(bundle) > 0 {
		if len(bundle) < envelopeHeaderBytes {
			panic(fmt.Sprintf("cluster: truncated envelope header (%d trailing bytes)", len(bundle)))
		}
		from := int(binary.LittleEndian.Uint32(bundle[0:4]))
		to := int(binary.LittleEndian.Uint32(bundle[4:8]))
		n := int(binary.LittleEndian.Uint32(bundle[8:12]))
		bundle = bundle[envelopeHeaderBytes:]
		if len(bundle) < n {
			panic(fmt.Sprintf("cluster: envelope %d->%d wants %d payload bytes, have %d", from, to, n, len(bundle)))
		}
		fn(from, to, bundle[:n])
		bundle = bundle[n:]
	}
}

// twoPhase runs the hierarchical all-to-all (§III-A adapted to a two-level
// machine):
//
//	phase 1 (intra, fast link): each rank sends every same-node peer its
//	  direct payload and ships all its cross-node payloads to the node
//	  leader;
//	phase 2 (inter, slow link): leaders exchange one bundle per remote
//	  node, carrying everything their node sends there;
//	phase 3 (intra, fast link): leaders scatter inbound envelopes to their
//	  final local rank.
//
// Rank 0 computes the collective's cost once through
// Net.TwoPhaseAllToAllCost (plus MetadataCost when variable) and returns it
// to the caller, which charges it into "<label>-intra" / "<label>-inter"
// buckets — immediately for the synchronous path, at Await for the
// nonblocking one. The staged data movement is real shared-memory routing
// with four barriers; only the clock is modelled.
func (r *Rank) twoPhase(send [][]byte, variable bool) ([][]byte, netmodel.LinkCost) {
	c := r.c
	me := r.ID
	myNode := c.nodeOf[me]
	myLeader := c.leaders[myNode]
	recv := make([][]byte, c.N)
	recv[me] = send[me]

	// --- phase 1 post: direct payloads to local peers, cross-node
	// payloads bundled to the leader. Writing the full box row also clears
	// any stale cells from a previous collective.
	bundles := make([][]byte, c.N)
	for to := 0; to < c.N; to++ {
		if to == me || len(send[to]) == 0 {
			continue
		}
		switch {
		case c.nodeOf[to] == myNode:
			bundles[to] = appendEnvelope(bundles[to], me, to, send[to])
		case me != myLeader:
			bundles[myLeader] = appendEnvelope(bundles[myLeader], me, to, send[to])
		}
	}
	// Leaders queue their own cross-node payloads straight for phase 2.
	crossByNode := make([][]byte, c.nodes)
	if me == myLeader {
		for to := 0; to < c.N; to++ {
			if nd := c.nodeOf[to]; nd != myNode && len(send[to]) > 0 {
				crossByNode[nd] = appendEnvelope(crossByNode[nd], me, to, send[to])
			}
		}
	}
	c.mu.Lock()
	for to := range bundles {
		c.boxes[me][to] = bundles[to]
	}
	c.mu.Unlock()
	r.Barrier()

	var cost netmodel.LinkCost
	if me == 0 {
		cost = c.Net.TwoPhaseAllToAllCost(c.sizes)
		if variable {
			cost = cost.Add(c.Net.MetadataCost(c.N, MetadataBytesPerPair))
		}
	}

	// --- phase 1 read: unpack same-node bundles; leaders collect
	// forwarded cross-node envelopes per destination node.
	for from := 0; from < c.N; from++ {
		if from == me || c.nodeOf[from] != myNode {
			continue
		}
		c.mu.Lock()
		bundle := c.boxes[from][me]
		c.mu.Unlock()
		parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) {
			if origTo == me {
				recv[origFrom] = payload
				return
			}
			if me != myLeader {
				panic(fmt.Sprintf("cluster: rank %d received envelope for %d but is not a leader", me, origTo))
			}
			crossByNode[c.nodeOf[origTo]] = appendEnvelope(crossByNode[c.nodeOf[origTo]], origFrom, origTo, payload)
		})
	}
	// --- phase 2 post: leaders trade node-to-node bundles. The target
	// cells belong to leader pairs, which phase 1 never populates (leaders
	// live on distinct nodes), so posting right after the phase-1 reads is
	// safe; the next barrier publishes them.
	if me == myLeader {
		c.mu.Lock()
		for nd, l := range c.leaders {
			if l != me {
				c.boxes[me][l] = crossByNode[nd]
			}
		}
		c.mu.Unlock()
	}
	r.Barrier()

	// --- phase 2 read + phase 3 post: leaders unpack inbound bundles,
	// deliver their own payloads, and rebundle the rest per local rank.
	if me == myLeader {
		scatter := make([][]byte, c.N)
		for _, l := range c.leaders {
			if l == me {
				continue
			}
			c.mu.Lock()
			bundle := c.boxes[l][me]
			c.mu.Unlock()
			parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) {
				if origTo == me {
					recv[origFrom] = payload
				} else {
					scatter[origTo] = appendEnvelope(scatter[origTo], origFrom, origTo, payload)
				}
			})
		}
		c.mu.Lock()
		for to := 0; to < c.N; to++ {
			if to != me && c.nodeOf[to] == myNode {
				c.boxes[me][to] = scatter[to]
			}
		}
		c.mu.Unlock()
	}
	r.Barrier()

	// --- phase 3 read: non-leaders take final deliveries from their
	// leader.
	if me != myLeader {
		c.mu.Lock()
		bundle := c.boxes[myLeader][me]
		c.mu.Unlock()
		parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) {
			if origTo != me {
				panic(fmt.Sprintf("cluster: rank %d received scatter envelope for %d", me, origTo))
			}
			recv[origFrom] = payload
		})
	}
	// Final barrier so nobody starts the next collective (overwriting
	// boxes) before all reads finish.
	r.Barrier()
	return recv, cost
}
