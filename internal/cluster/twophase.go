package cluster

import (
	"encoding/binary"
	"fmt"

	"dlrmcomp/internal/netmodel"
)

// This file implements the hierarchical two-phase all-to-all. Payloads
// really take the staged route (they are copied into envelope bundles and
// re-routed through node leaders), so the algorithm is exercised end to end
// — delivery is bit-identical to the direct path by construction of the
// routing, not by sharing its code.
//
// Envelope wire format, used for every staged hop:
//
//	origFrom uint32 | origTo uint32 | payloadLen uint32 | payload
//
// A bundle is a concatenation of envelopes. Empty payloads are never
// enveloped: the direct path delivers them as empty, and skipping them
// keeps the two paths' results identical.

const envelopeHeaderBytes = 12

// appendEnvelope appends one routed payload to a bundle.
func appendEnvelope(dst []byte, origFrom, origTo int, payload []byte) []byte {
	var hdr [envelopeHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(origFrom))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(origTo))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseEnvelopes walks a bundle, invoking fn once per envelope. Payload
// slices alias the bundle.
func parseEnvelopes(bundle []byte, fn func(origFrom, origTo int, payload []byte) error) error {
	for len(bundle) > 0 {
		if len(bundle) < envelopeHeaderBytes {
			return fmt.Errorf("cluster: truncated envelope header (%d trailing bytes)", len(bundle))
		}
		from := int(binary.LittleEndian.Uint32(bundle[0:4]))
		to := int(binary.LittleEndian.Uint32(bundle[4:8]))
		n := int(binary.LittleEndian.Uint32(bundle[8:12]))
		bundle = bundle[envelopeHeaderBytes:]
		if len(bundle) < n {
			return fmt.Errorf("cluster: envelope %d->%d wants %d payload bytes, have %d", from, to, n, len(bundle))
		}
		if err := fn(from, to, bundle[:n]); err != nil {
			return err
		}
		bundle = bundle[n:]
	}
	return nil
}

// twoPhase runs the hierarchical all-to-all (§III-A adapted to a two-level
// machine):
//
//	phase 1 (intra, fast link): each rank sends every same-node peer its
//	  direct payload and ships all its cross-node payloads to the node
//	  leader;
//	phase 2 (inter, slow link): leaders exchange one bundle per remote
//	  node, carrying everything their node sends there;
//	phase 3 (intra, fast link): leaders scatter inbound envelopes to their
//	  final local rank.
//
// Rank 0 computes the collective's cost once through
// Net.TwoPhaseAllToAllCost (plus MetadataCost when variable) and returns it
// to the caller, which charges it into "<label>-intra" / "<label>-inter"
// buckets — immediately for the synchronous path, at Await for the
// nonblocking one. The staged data movement is real message routing over
// the transport; only the clock is modelled. Per-pair FIFO delivery orders
// the hops (a rank reads all phase-1 bundles before its leader's phase-3
// scatter), so a single trailing barrier closes the collective.
func (r *Rank) twoPhase(send [][]byte, variable bool) ([][]byte, netmodel.LinkCost, error) {
	c := r.c
	me := r.ID
	myNode := c.nodeOf[me]
	myLeader := c.leaders[myNode]
	recv := make([][]byte, c.N)
	recv[me] = send[me]
	var cost netmodel.LinkCost

	if err := r.postSizeRow(send); err != nil {
		return nil, cost, err
	}

	// --- phase 1 post: direct payloads to local peers, cross-node
	// payloads bundled to the leader. Every same-node peer gets a message
	// (possibly empty) — the receiver unconditionally reads one bundle per
	// local peer.
	bundles := make([][]byte, c.N)
	for to := 0; to < c.N; to++ {
		if to == me || len(send[to]) == 0 {
			continue
		}
		switch {
		case c.nodeOf[to] == myNode:
			bundles[to] = appendEnvelope(bundles[to], me, to, send[to])
		case me != myLeader:
			bundles[myLeader] = appendEnvelope(bundles[myLeader], me, to, send[to])
		}
	}
	// Leaders queue their own cross-node payloads straight for phase 2.
	crossByNode := make([][]byte, c.nodes)
	if me == myLeader {
		for to := 0; to < c.N; to++ {
			if nd := c.nodeOf[to]; nd != myNode && len(send[to]) > 0 {
				crossByNode[nd] = appendEnvelope(crossByNode[nd], me, to, send[to])
			}
		}
	}
	for to := 0; to < c.N; to++ {
		if to != me && c.nodeOf[to] == myNode {
			if err := r.tr.Send(to, bundles[to]); err != nil {
				return nil, cost, err
			}
		}
	}

	if me == 0 {
		if err := r.gatherSizeRows(); err != nil {
			return nil, cost, err
		}
		cost = c.Net.TwoPhaseAllToAllCost(r.scr.sizes)
		if variable {
			cost = cost.Add(c.Net.MetadataCost(c.N, MetadataBytesPerPair))
		}
	}

	// --- phase 1 read: unpack same-node bundles; leaders collect
	// forwarded cross-node envelopes per destination node.
	for from := 0; from < c.N; from++ {
		if from == me || c.nodeOf[from] != myNode {
			continue
		}
		bundle, err := r.tr.Recv(from)
		if err != nil {
			return nil, cost, err
		}
		err = parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) error {
			if origTo == me {
				recv[origFrom] = payload
				return nil
			}
			if me != myLeader {
				return fmt.Errorf("cluster: rank %d received envelope for %d but is not a leader", me, origTo)
			}
			crossByNode[c.nodeOf[origTo]] = appendEnvelope(crossByNode[c.nodeOf[origTo]], origFrom, origTo, payload)
			return nil
		})
		if err != nil {
			return nil, cost, err
		}
	}

	// --- phase 2: leaders trade node-to-node bundles, then unpack inbound
	// ones — delivering their own payloads and rebundling the rest per
	// local rank.
	if me == myLeader {
		for nd, l := range c.leaders {
			if l != me {
				if err := r.tr.Send(l, crossByNode[nd]); err != nil {
					return nil, cost, err
				}
			}
		}
		scatter := make([][]byte, c.N)
		for _, l := range c.leaders {
			if l == me {
				continue
			}
			bundle, err := r.tr.Recv(l)
			if err != nil {
				return nil, cost, err
			}
			err = parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) error {
				if origTo == me {
					recv[origFrom] = payload
				} else {
					scatter[origTo] = appendEnvelope(scatter[origTo], origFrom, origTo, payload)
				}
				return nil
			})
			if err != nil {
				return nil, cost, err
			}
		}
		// --- phase 3 post: scatter final deliveries to local ranks.
		for to := 0; to < c.N; to++ {
			if to != me && c.nodeOf[to] == myNode {
				if err := r.tr.Send(to, scatter[to]); err != nil {
					return nil, cost, err
				}
			}
		}
	} else {
		// --- phase 3 read: non-leaders take final deliveries from their
		// leader (FIFO after the leader's phase-1 bundle, already read).
		bundle, err := r.tr.Recv(myLeader)
		if err != nil {
			return nil, cost, err
		}
		err = parseEnvelopes(bundle, func(origFrom, origTo int, payload []byte) error {
			if origTo != me {
				return fmt.Errorf("cluster: rank %d received scatter envelope for %d", me, origTo)
			}
			recv[origFrom] = payload
			return nil
		})
		if err != nil {
			return nil, cost, err
		}
	}
	// Trailing barrier so nobody starts the next collective (reusing send
	// buffers the in-process fabric delivered by reference) before all
	// reads finish.
	if err := r.tr.Barrier(); err != nil {
		return nil, cost, err
	}
	return recv, cost, nil
}
