package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"dlrmcomp/internal/netmodel"
)

// MetadataBytesPerPair is the size-exchange header each rank sends every
// peer before a variable-size all-to-all (stage ② of the paper's pipeline).
const MetadataBytesPerPair = 8

// A2AAlgo selects the all-to-all algorithm for one collective.
type A2AAlgo int

const (
	// A2AAuto picks the two-phase hierarchical algorithm whenever the
	// topology spans more than one node, and the direct exchange otherwise.
	A2AAuto A2AAlgo = iota
	// A2ADirect posts every payload straight to its destination rank.
	A2ADirect
	// A2ATwoPhase stages cross-node payloads through node leaders. On a
	// single-node (or flat) topology it degenerates to A2ADirect.
	A2ATwoPhase
)

// String returns the parseable name of the algorithm.
func (a A2AAlgo) String() string {
	switch a {
	case A2ADirect:
		return "direct"
	case A2ATwoPhase:
		return "twophase"
	default:
		return "auto"
	}
}

// ParseA2AAlgo maps a configuration string onto an A2AAlgo. The empty
// string selects A2AAuto, mirroring the zero value.
func ParseA2AAlgo(s string) (A2AAlgo, error) {
	switch s {
	case "", "auto":
		return A2AAuto, nil
	case "direct":
		return A2ADirect, nil
	case "twophase", "two-phase":
		return A2ATwoPhase, nil
	}
	return A2AAuto, fmt.Errorf("cluster: unknown all-to-all algorithm %q (want auto, direct, or twophase)", s)
}

// Cluster is a process group. All collectives move data through the
// Transport endpoints handed to the constructor, so the same collective
// code runs over the in-process channel fabric (New) and over a real wire
// (NewOverTransport with a tcptransport endpoint). Under a distributed
// fabric the Cluster hosts only the ranks whose endpoints live in this
// process; Run spawns exactly those.
type Cluster struct {
	N   int
	Net netmodel.Topology

	// Topology layout, precomputed at construction: rank -> node, node ->
	// leader rank (the lowest rank in the node).
	nodes   int
	nodeOf  []int
	leaders []int

	// eps and scratch are indexed by rank id; nil for ranks hosted in other
	// processes. local lists the hosted ranks in ascending order.
	eps     []Transport
	scratch []*rankScratch
	local   []int

	mu      sync.Mutex
	simTime map[string]time.Duration
	faults  *faultInjector
}

// rankScratch is one hosted rank's persistent collective workspace: every
// buffer a collective sends from (or, on rank 0, aggregates into) lives
// here so the steady-state hot path allocates nothing.
type rankScratch struct {
	sizeRow []byte // payload-size row, sent to rank 0 each all-to-all
	flagBuf []byte // 1-byte OrFlag contribution
	sendBuf []byte // allreduce contribution, grown on demand

	// Rank 0 only: the global payload-size matrix the cost model reads,
	// and the response buffers for the star collectives.
	sizes    [][]int64
	respBuf  []byte // allreduce result broadcast (status byte + floats)
	flagResp []byte // 1-byte OrFlag verdict
	gather   []byte // length-prefixed concatenation of all GatherAll blobs
}

// layout computes the node layout for n ranks over net.
func layout(n int, net netmodel.Topology) (nodes int, nodeOf, leaders []int, err error) {
	nodes = net.Nodes(n)
	if nodes < 1 {
		return 0, nil, nil, fmt.Errorf("cluster: topology reports %d nodes for %d ranks", nodes, n)
	}
	nodeOf = make([]int, n)
	leaders = make([]int, nodes)
	for i := range leaders {
		leaders[i] = -1
	}
	for r := 0; r < n; r++ {
		nd := net.NodeOf(r)
		if nd < 0 || nd >= nodes {
			return 0, nil, nil, fmt.Errorf("cluster: topology maps rank %d to node %d outside [0,%d)", r, nd, nodes)
		}
		nodeOf[r] = nd
		if leaders[nd] == -1 {
			leaders[nd] = r
		}
	}
	for nd, l := range leaders {
		if l == -1 {
			return 0, nil, nil, fmt.Errorf("cluster: topology leaves node %d empty for %d ranks", nd, n)
		}
	}
	return nodes, nodeOf, leaders, nil
}

// newCluster assembles a cluster over per-rank endpoints (nil entries are
// ranks hosted elsewhere).
func newCluster(eps []Transport, net netmodel.Topology) (*Cluster, error) {
	n := len(eps)
	if net == nil {
		net = netmodel.Slingshot10()
	}
	nodes, nodeOf, leaders, err := layout(n, net)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		N:       n,
		Net:     net,
		nodes:   nodes,
		nodeOf:  nodeOf,
		leaders: leaders,
		eps:     eps,
		scratch: make([]*rankScratch, n),
		simTime: make(map[string]time.Duration),
	}
	for id, ep := range eps {
		if ep == nil {
			continue
		}
		c.local = append(c.local, id)
		scr := &rankScratch{
			sizeRow: make([]byte, sizeRowBytes(n)),
			flagBuf: make([]byte, 1),
		}
		if id == 0 {
			scr.sizes = make([][]int64, n)
			for i := range scr.sizes {
				scr.sizes[i] = make([]int64, n)
			}
			scr.flagResp = make([]byte, 1)
		}
		c.scratch[id] = scr
	}
	if len(c.local) == 0 {
		return nil, errors.New("cluster: no local endpoints")
	}
	return c, nil
}

// New creates an in-process cluster of n ranks over the given topology;
// nil means the flat netmodel.Slingshot10(). All n ranks are hosted
// locally, communicating over the in-process channel fabric.
func New(n int, net netmodel.Topology) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", n))
	}
	c, err := newCluster(NewInprocFabric(n), net)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewOverTransport creates a cluster hosting the single rank behind the
// given endpoint; the other World()-1 ranks live in other processes (their
// endpoints dialed the same fabric). nil net means netmodel.Slingshot10().
func NewOverTransport(tr Transport, net netmodel.Topology) (*Cluster, error) {
	if tr == nil {
		return nil, errors.New("cluster: nil transport")
	}
	n, rank := tr.World(), tr.Rank()
	if n <= 0 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("cluster: transport reports rank %d of world %d", rank, n)
	}
	eps := make([]Transport, n)
	eps[rank] = tr
	return newCluster(eps, net)
}

// Nodes returns how many nodes the topology spans for this cluster size.
func (c *Cluster) Nodes() int { return c.nodes }

// Local returns the ranks hosted in this process, in ascending order.
func (c *Cluster) Local() []int { return c.local }

// Distributed reports whether some ranks live in other processes.
func (c *Cluster) Distributed() bool { return len(c.local) != c.N }

// Close releases every hosted endpoint. On the in-process fabric this
// tears down the whole group; on a wire transport it runs the graceful
// shutdown handshake with the peers.
func (c *Cluster) Close() error {
	var errs []error
	for _, id := range c.local {
		if err := c.eps[id].Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run executes fn on every hosted rank concurrently and blocks until all
// return. Under a distributed fabric that is exactly one rank; the caller
// is responsible for running the same fn in the peer processes.
func (c *Cluster) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	for _, id := range c.local {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, c: c, tr: c.eps[id], scr: c.scratch[id]})
		}(id)
	}
	wg.Wait()
}

// SimTime returns the accumulated simulated duration of the labelled bucket.
func (c *Cluster) SimTime(label string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime[label]
}

// SimTimes returns a copy of all buckets.
func (c *Cluster) SimTimes() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.simTime))
	for k, v := range c.simTime {
		out[k] = v
	}
	return out
}

// AddSimTime charges a duration to a bucket (used by ranks to account
// modelled compute such as MLP or codec kernels; charged once per step by
// rank 0 to represent the parallel device fleet).
func (c *Cluster) AddSimTime(label string, d time.Duration) {
	c.mu.Lock()
	c.simTime[label] += d
	c.mu.Unlock()
}

// chargeA2A attributes an all-to-all's cost. Multi-node topologies split
// into per-link "<label>-intra" / "<label>-inter" buckets (zero components
// are skipped); flat and single-node clusters keep the plain label.
func (c *Cluster) chargeA2A(label string, cost netmodel.LinkCost) {
	if c.nodes > 1 {
		if cost.Intra > 0 {
			c.AddSimTime(label+"-intra", cost.Intra)
		}
		if cost.Inter > 0 {
			c.AddSimTime(label+"-inter", cost.Inter)
		}
		return
	}
	c.AddSimTime(label, cost.Total())
}

// ChargeLinkCost charges a modelled link cost to the labelled bucket with
// the same per-link attribution the collectives use (multi-node topologies
// split into "<label>-intra"/"<label>-inter"). It is how out-of-band
// modelled traffic — e.g. the elastic reshard transfer — lands in the
// sim-time profile.
func (c *Cluster) ChargeLinkCost(label string, cost netmodel.LinkCost) {
	c.chargeA2A(label, cost)
}

// ResetSimTime clears all buckets.
func (c *Cluster) ResetSimTime() {
	c.mu.Lock()
	c.simTime = make(map[string]time.Duration)
	c.mu.Unlock()
}

// Rank is one device's handle onto the cluster.
type Rank struct {
	ID  int
	c   *Cluster
	tr  Transport
	scr *rankScratch
}

// N returns the cluster size.
func (r *Rank) N() int { return r.c.N }

// Node returns the node housing this rank under the cluster's topology.
func (r *Rank) Node() int { return r.c.nodeOf[r.ID] }

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() error { return r.tr.Barrier() }

// AllToAll exchanges one buffer per peer with the direct algorithm: send[j]
// goes to rank j, and the result's entry i holds the buffer rank i sent
// here. send[r.ID] is delivered locally. If variable is true the simulated
// cost includes the metadata exchange of the paper's stage ② (required
// because compressed sizes differ per pair); fixed-size exchanges (the
// uncompressed baseline) skip it.
func (r *Rank) AllToAll(send [][]byte, variable bool, label string) ([][]byte, error) {
	return r.AllToAllV(send, variable, label, A2ADirect)
}

// AllToAllV is AllToAll with an explicit algorithm choice. Every rank of a
// collective must pass the same algo (as with any collective's arguments).
// The two algorithms deliver bit-identical payloads; they differ in the
// route cross-node payloads take and therefore in the simulated cost and
// its intra/inter attribution.
func (r *Rank) AllToAllV(send [][]byte, variable bool, label string, algo A2AAlgo) ([][]byte, error) {
	return r.IAllToAllV(send, variable, label, algo).Await()
}

// postSizeRow publishes this rank's payload-size row for rank 0's cost
// accounting: rank 0 fills its own matrix row in place, everyone else
// sends the encoded row ahead of the payloads (per-pair FIFO delivers it
// first).
func (r *Rank) postSizeRow(send [][]byte) error {
	if r.ID == 0 {
		for to, buf := range send {
			r.scr.sizes[0][to] = int64(len(buf))
		}
		return nil
	}
	encodeSizeRow(r.scr.sizeRow, send)
	return r.tr.Send(0, r.scr.sizeRow)
}

// gatherSizeRows (rank 0 only) receives every peer's size row into the
// global matrix.
func (r *Rank) gatherSizeRows() error {
	for from := 1; from < r.c.N; from++ {
		row, err := r.tr.Recv(from)
		if err != nil {
			return err
		}
		if err := decodeSizeRow(r.scr.sizes[from], row); err != nil {
			return err
		}
	}
	return nil
}

// exchange runs the payload movement of one all-to-all and returns the
// received buffers plus, on rank 0 only, the collective's simulated cost
// (including the metadata exchange when variable). No sim time is charged
// here — the caller decides when the cost lands (immediately for the
// synchronous collectives, at Await for the nonblocking ones).
func (r *Rank) exchange(send [][]byte, variable bool, algo A2AAlgo) ([][]byte, netmodel.LinkCost, error) {
	c := r.c
	if len(send) != c.N {
		panic(fmt.Sprintf("cluster: rank %d sent %d buffers for %d ranks", r.ID, len(send), c.N))
	}
	if algo != A2ADirect && c.nodes > 1 {
		return r.twoPhase(send, variable)
	}
	return r.direct(send, variable)
}

// direct implements the single-phase exchange: every payload goes straight
// to its destination rank. The trailing barrier makes the collective a
// fleet-wide synchronization point, which is what allows callers to reuse
// their send buffers one collective later even though the in-process
// fabric delivers by reference.
func (r *Rank) direct(send [][]byte, variable bool) ([][]byte, netmodel.LinkCost, error) {
	c := r.c
	var cost netmodel.LinkCost
	if err := r.postSizeRow(send); err != nil {
		return nil, cost, err
	}
	for to := 0; to < c.N; to++ {
		if to == r.ID {
			continue
		}
		if err := r.tr.Send(to, send[to]); err != nil {
			return nil, cost, err
		}
	}

	// Rank 0 computes the simulated cost once, from global knowledge of
	// the pairwise payload matrix.
	if r.ID == 0 {
		if err := r.gatherSizeRows(); err != nil {
			return nil, cost, err
		}
		cost = c.Net.AllToAllCost(r.scr.sizes)
		if variable {
			cost = cost.Add(c.Net.MetadataCost(c.N, MetadataBytesPerPair))
		}
	}

	recv := make([][]byte, c.N)
	recv[r.ID] = send[r.ID]
	for from := 0; from < c.N; from++ {
		if from == r.ID {
			continue
		}
		buf, err := r.tr.Recv(from)
		if err != nil {
			return nil, cost, err
		}
		recv[from] = buf
	}
	if err := r.tr.Barrier(); err != nil {
		return nil, cost, err
	}
	return recv, cost, nil
}

// AllReduceSum sums x elementwise across ranks; every rank's x holds the
// global sum on return.
func (r *Rank) AllReduceSum(x []float32, label string) error {
	return r.IAllReduceSum(x, label).Await()
}

// reduce runs the data movement of one allreduce (x holds the global sum on
// return) and returns, on rank 0 only, the collective's simulated cost.
//
// The reduction is bitwise deterministic: rank 0 folds the contributions in
// rank order — seed zero, then rank 0's own part, then rank 1's, … —
// and broadcasts the result. Floating-point addition is not associative, so
// an accumulate-on-arrival scheme would make training results depend on
// scheduling; the fixed fold order keeps every run — and the
// synchronous-vs-pipelined driver pair — bit-identical.
//
// A length mismatch between ranks is reported as an error on every rank
// (rank 0 detects it and broadcasts an error verdict instead of a result),
// never as a deadlock.
func (r *Rank) reduce(x []float32) (time.Duration, error) {
	c := r.c
	if r.ID != 0 {
		// Contribute, then adopt rank 0's verdict.
		r.scr.sendBuf = growBytes(r.scr.sendBuf, 4*len(x))
		part := r.scr.sendBuf
		for i, v := range x {
			binary.LittleEndian.PutUint32(part[4*i:], math.Float32bits(v))
		}
		if err := r.tr.Send(0, part); err != nil {
			return 0, err
		}
		resp, err := r.tr.Recv(0)
		if err != nil {
			return 0, err
		}
		if len(resp) < 1 {
			return 0, errors.New("cluster: empty allreduce response")
		}
		if resp[0] != 0 {
			return 0, errors.New(string(resp[1:]))
		}
		if len(resp) != 1+4*len(x) {
			return 0, fmt.Errorf("cluster: allreduce result carries %d bytes, rank %d wants %d", len(resp)-1, r.ID, 4*len(x))
		}
		for i := range x {
			x[i] = math.Float32frombits(binary.LittleEndian.Uint32(resp[1+4*i:]))
		}
		return 0, nil
	}

	// Rank 0 reduces in rank order into its own buffer: deterministic and
	// O(N·len) total (a fleet-wide reduction would be O(N²·len)). The
	// explicit zero seed reproduces the historical fold exactly, including
	// its treatment of signed zeros.
	var reduceErr error
	for i := range x {
		x[i] = 0 + x[i]
	}
	for from := 1; from < c.N; from++ {
		part, err := r.tr.Recv(from)
		if err != nil {
			return 0, err
		}
		if len(part) != 4*len(x) {
			if reduceErr == nil {
				reduceErr = fmt.Errorf("cluster: allreduce length mismatch: rank %d sent %d elements, rank 0 sent %d",
					from, len(part)/4, len(x))
			}
			continue // keep draining so every peer gets a verdict
		}
		if reduceErr == nil {
			for i := range x {
				x[i] += math.Float32frombits(binary.LittleEndian.Uint32(part[4*i:]))
			}
		}
	}

	// Broadcast the result — or the error, so no peer is left blocking.
	var resp []byte
	if reduceErr != nil {
		msg := reduceErr.Error()
		r.scr.respBuf = growBytes(r.scr.respBuf, 1+len(msg))
		resp = r.scr.respBuf
		resp[0] = 1
		copy(resp[1:], msg)
	} else {
		r.scr.respBuf = growBytes(r.scr.respBuf, 1+4*len(x))
		resp = r.scr.respBuf
		resp[0] = 0
		for i, v := range x {
			binary.LittleEndian.PutUint32(resp[1+4*i:], math.Float32bits(v))
		}
	}
	for to := 1; to < c.N; to++ {
		if err := r.tr.Send(to, resp); err != nil {
			return 0, err
		}
	}
	if reduceErr != nil {
		return 0, reduceErr
	}
	return c.Net.AllReduceTime(c.N, int64(len(x)*4)), nil
}

// OrFlag is a logical-OR allreduce over one boolean: it returns true on
// every rank iff any rank passed true. It models the control-plane flag
// exchange a real trainer uses to agree on aborting a step, so it charges
// no simulated time.
func (r *Rank) OrFlag(v bool) (bool, error) {
	c := r.c
	if r.ID != 0 {
		r.scr.flagBuf[0] = 0
		if v {
			r.scr.flagBuf[0] = 1
		}
		if err := r.tr.Send(0, r.scr.flagBuf); err != nil {
			return false, err
		}
		resp, err := r.tr.Recv(0)
		if err != nil {
			return false, err
		}
		if len(resp) != 1 {
			return false, fmt.Errorf("cluster: OrFlag verdict is %d bytes", len(resp))
		}
		return resp[0] != 0, nil
	}
	out := v
	for from := 1; from < c.N; from++ {
		flag, err := r.tr.Recv(from)
		if err != nil {
			return false, err
		}
		if len(flag) != 1 {
			return false, fmt.Errorf("cluster: OrFlag contribution from rank %d is %d bytes", from, len(flag))
		}
		out = out || flag[0] != 0
	}
	r.scr.flagResp[0] = 0
	if out {
		r.scr.flagResp[0] = 1
	}
	for to := 1; to < c.N; to++ {
		if err := r.tr.Send(to, r.scr.flagResp); err != nil {
			return false, err
		}
	}
	return out, nil
}

// GatherAll delivers every rank's blob to every rank: into (length N, the
// caller's persistent slot table) holds rank i's blob at index i on
// return. The slots alias transport-owned memory valid until the next
// GatherAll. It is the control-plane allgather the distributed trainer
// uses to agree on per-step statistics; like OrFlag it charges no
// simulated time.
func (r *Rank) GatherAll(blob []byte, into [][]byte) error {
	c := r.c
	if len(into) != c.N {
		return fmt.Errorf("cluster: GatherAll got %d slots for %d ranks", len(into), c.N)
	}
	var all []byte
	if r.ID == 0 {
		// Collect every contribution before touching the bundle buffer: a
		// peer's send proves it consumed the previous broadcast, so only
		// after all N-1 receives is rewriting the (alias-shared) bundle safe.
		into[0] = blob
		for from := 1; from < c.N; from++ {
			var err error
			if into[from], err = r.tr.Recv(from); err != nil {
				return err
			}
		}
		buf := r.scr.gather[:0]
		for _, b := range into {
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
			buf = append(buf, hdr[:]...)
			buf = append(buf, b...)
		}
		r.scr.gather = buf
		for to := 1; to < c.N; to++ {
			if err := r.tr.Send(to, buf); err != nil {
				return err
			}
		}
		all = buf
	} else {
		if err := r.tr.Send(0, blob); err != nil {
			return err
		}
		var err error
		if all, err = r.tr.Recv(0); err != nil {
			return err
		}
	}
	for i := 0; i < c.N; i++ {
		if len(all) < 4 {
			return fmt.Errorf("cluster: truncated GatherAll bundle at slot %d", i)
		}
		n := int(binary.LittleEndian.Uint32(all))
		all = all[4:]
		if len(all) < n {
			return fmt.Errorf("cluster: GatherAll slot %d wants %d bytes, have %d", i, n, len(all))
		}
		into[i] = all[:n]
		all = all[n:]
	}
	if len(all) != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after GatherAll bundle", len(all))
	}
	return nil
}

// growBytes returns buf resized to n bytes, reallocating only on growth.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}
