package cluster

import (
	"fmt"
	"sync"
	"time"

	"dlrmcomp/internal/netmodel"
)

// MetadataBytesPerPair is the size-exchange header each rank sends every
// peer before a variable-size all-to-all (stage ② of the paper's pipeline).
const MetadataBytesPerPair = 8

// A2AAlgo selects the all-to-all algorithm for one collective.
type A2AAlgo int

const (
	// A2AAuto picks the two-phase hierarchical algorithm whenever the
	// topology spans more than one node, and the direct exchange otherwise.
	A2AAuto A2AAlgo = iota
	// A2ADirect posts every payload straight to its destination rank.
	A2ADirect
	// A2ATwoPhase stages cross-node payloads through node leaders. On a
	// single-node (or flat) topology it degenerates to A2ADirect.
	A2ATwoPhase
)

// String returns the parseable name of the algorithm.
func (a A2AAlgo) String() string {
	switch a {
	case A2ADirect:
		return "direct"
	case A2ATwoPhase:
		return "twophase"
	default:
		return "auto"
	}
}

// ParseA2AAlgo maps a configuration string onto an A2AAlgo. The empty
// string selects A2AAuto, mirroring the zero value.
func ParseA2AAlgo(s string) (A2AAlgo, error) {
	switch s {
	case "", "auto":
		return A2AAuto, nil
	case "direct":
		return A2ADirect, nil
	case "twophase", "two-phase":
		return A2ATwoPhase, nil
	}
	return A2AAuto, fmt.Errorf("cluster: unknown all-to-all algorithm %q (want auto, direct, or twophase)", s)
}

// Cluster is a simulated process group.
type Cluster struct {
	N   int
	Net netmodel.Topology

	// Topology layout, precomputed at New: rank -> node, node -> leader
	// rank (the lowest rank in the node).
	nodes   int
	nodeOf  []int
	leaders []int

	bar *barrier

	mu sync.Mutex
	// boxes[from][to] are the all-to-all mailboxes; reduceParts[rank] holds
	// each rank's allreduce contribution so every rank can reduce in rank
	// order — bitwise-deterministic regardless of goroutine scheduling.
	boxes       [][][]byte
	reduceParts [][]float32
	simTime     map[string]time.Duration

	// sizes[from][to] stashes the payload matrix of the collective in
	// flight so rank 0 can charge simulated time from global knowledge.
	// Each rank writes only its own row, before the collective's first
	// barrier; rank 0 reads after it.
	sizes [][]int64
}

// New creates a cluster of n ranks over the given topology; nil means the
// flat netmodel.Slingshot10().
func New(n int, net netmodel.Topology) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", n))
	}
	if net == nil {
		net = netmodel.Slingshot10()
	}
	nodes := net.Nodes(n)
	if nodes < 1 {
		panic(fmt.Sprintf("cluster: topology reports %d nodes for %d ranks", nodes, n))
	}
	nodeOf := make([]int, n)
	leaders := make([]int, nodes)
	for i := range leaders {
		leaders[i] = -1
	}
	for r := 0; r < n; r++ {
		nd := net.NodeOf(r)
		if nd < 0 || nd >= nodes {
			panic(fmt.Sprintf("cluster: topology maps rank %d to node %d outside [0,%d)", r, nd, nodes))
		}
		nodeOf[r] = nd
		if leaders[nd] == -1 {
			leaders[nd] = r
		}
	}
	for nd, l := range leaders {
		if l == -1 {
			panic(fmt.Sprintf("cluster: topology leaves node %d empty for %d ranks", nd, n))
		}
	}
	boxes := make([][][]byte, n)
	sizes := make([][]int64, n)
	for i := range boxes {
		boxes[i] = make([][]byte, n)
		sizes[i] = make([]int64, n)
	}
	return &Cluster{
		N:       n,
		Net:     net,
		nodes:   nodes,
		nodeOf:  nodeOf,
		leaders: leaders,
		bar:     newBarrier(n),
		boxes:   boxes,
		sizes:   sizes,
		simTime: make(map[string]time.Duration),
	}
}

// Nodes returns how many nodes the topology spans for this cluster size.
func (c *Cluster) Nodes() int { return c.nodes }

// Run executes fn on every rank concurrently and blocks until all return.
func (c *Cluster) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	for id := 0; id < c.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, c: c})
		}(id)
	}
	wg.Wait()
}

// SimTime returns the accumulated simulated duration of the labelled bucket.
func (c *Cluster) SimTime(label string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime[label]
}

// SimTimes returns a copy of all buckets.
func (c *Cluster) SimTimes() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.simTime))
	for k, v := range c.simTime {
		out[k] = v
	}
	return out
}

// AddSimTime charges a duration to a bucket (used by ranks to account
// modelled compute such as MLP or codec kernels; charged once per step by
// rank 0 to represent the parallel device fleet).
func (c *Cluster) AddSimTime(label string, d time.Duration) {
	c.mu.Lock()
	c.simTime[label] += d
	c.mu.Unlock()
}

// chargeA2A attributes an all-to-all's cost. Multi-node topologies split
// into per-link "<label>-intra" / "<label>-inter" buckets (zero components
// are skipped); flat and single-node clusters keep the plain label.
func (c *Cluster) chargeA2A(label string, cost netmodel.LinkCost) {
	if c.nodes > 1 {
		if cost.Intra > 0 {
			c.AddSimTime(label+"-intra", cost.Intra)
		}
		if cost.Inter > 0 {
			c.AddSimTime(label+"-inter", cost.Inter)
		}
		return
	}
	c.AddSimTime(label, cost.Total())
}

// ResetSimTime clears all buckets.
func (c *Cluster) ResetSimTime() {
	c.mu.Lock()
	c.simTime = make(map[string]time.Duration)
	c.mu.Unlock()
}

// Rank is one simulated device's handle onto the cluster.
type Rank struct {
	ID int
	c  *Cluster
}

// N returns the cluster size.
func (r *Rank) N() int { return r.c.N }

// Node returns the node housing this rank under the cluster's topology.
func (r *Rank) Node() int { return r.c.nodeOf[r.ID] }

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() { r.c.bar.await() }

// AllToAll exchanges one buffer per peer with the direct algorithm: send[j]
// goes to rank j, and the result's entry i holds the buffer rank i sent
// here. send[r.ID] is delivered locally. If variable is true the simulated
// cost includes the metadata exchange of the paper's stage ② (required
// because compressed sizes differ per pair); fixed-size exchanges (the
// uncompressed baseline) skip it.
func (r *Rank) AllToAll(send [][]byte, variable bool, label string) [][]byte {
	return r.AllToAllV(send, variable, label, A2ADirect)
}

// AllToAllV is AllToAll with an explicit algorithm choice. Every rank of a
// collective must pass the same algo (as with any collective's arguments).
// The two algorithms deliver bit-identical payloads; they differ in the
// route cross-node payloads take and therefore in the simulated cost and
// its intra/inter attribution.
func (r *Rank) AllToAllV(send [][]byte, variable bool, label string, algo A2AAlgo) [][]byte {
	return r.IAllToAllV(send, variable, label, algo).Await()
}

// exchange runs the payload movement of one all-to-all and returns the
// received buffers plus, on rank 0 only, the collective's simulated cost
// (including the metadata exchange when variable). No sim time is charged
// here — the caller decides when the cost lands (immediately for the
// synchronous collectives, at Await for the nonblocking ones).
func (r *Rank) exchange(send [][]byte, variable bool, algo A2AAlgo) ([][]byte, netmodel.LinkCost) {
	c := r.c
	if len(send) != c.N {
		panic(fmt.Sprintf("cluster: rank %d sent %d buffers for %d ranks", r.ID, len(send), c.N))
	}
	// Publish this rank's payload sizes for rank 0's cost accounting.
	// Rows are disjoint per writer and the collective's barriers order the
	// writes before rank 0's read.
	for to, buf := range send {
		c.sizes[r.ID][to] = int64(len(buf))
	}
	if algo != A2ADirect && c.nodes > 1 {
		return r.twoPhase(send, variable)
	}
	return r.direct(send, variable)
}

// direct implements the single-phase exchange: every payload goes straight
// into its destination's box.
func (r *Rank) direct(send [][]byte, variable bool) ([][]byte, netmodel.LinkCost) {
	c := r.c
	c.mu.Lock()
	for to, buf := range send {
		c.boxes[r.ID][to] = buf
	}
	c.mu.Unlock()
	r.Barrier()

	// Rank 0 computes the simulated cost once, from global knowledge of
	// the pairwise payload matrix.
	var cost netmodel.LinkCost
	if r.ID == 0 {
		cost = c.Net.AllToAllCost(c.sizes)
		if variable {
			cost = cost.Add(c.Net.MetadataCost(c.N, MetadataBytesPerPair))
		}
	}

	recv := make([][]byte, c.N)
	c.mu.Lock()
	for from := 0; from < c.N; from++ {
		recv[from] = c.boxes[from][r.ID]
	}
	c.mu.Unlock()
	// Second barrier so nobody overwrites boxes before all reads finish.
	r.Barrier()
	return recv, cost
}

// AllReduceSum sums x elementwise across ranks; every rank's x holds the
// global sum on return.
func (r *Rank) AllReduceSum(x []float32, label string) {
	r.IAllReduceSum(x, label).Await()
}

// reduce runs the data movement of one allreduce (x holds the global sum on
// return) and returns, on rank 0 only, the collective's simulated cost.
//
// The reduction is bitwise deterministic: each rank publishes a snapshot of
// its contribution, and after the barrier every rank sums the parts in rank
// order. Floating-point addition is not associative, so an
// accumulate-on-arrival scheme would make training results depend on
// goroutine scheduling; rank-order reduction keeps every run — and the
// synchronous-vs-pipelined driver pair — bit-identical.
func (r *Rank) reduce(x []float32) time.Duration {
	c := r.c
	c.mu.Lock()
	if c.reduceParts == nil { // first arriver allocates the slot table
		c.reduceParts = make([][]float32, c.N)
	}
	c.reduceParts[r.ID] = x // each rank must pass its own buffer
	c.mu.Unlock()
	r.Barrier()

	var cost time.Duration
	if r.ID == 0 {
		cost = c.Net.AllReduceTime(c.N, int64(len(x)*4))
		for rank, part := range c.reduceParts {
			if len(part) != len(x) {
				panic(fmt.Sprintf("cluster: allreduce length mismatch: rank %d sent %d elements, rank 0 sent %d",
					rank, len(part), len(x)))
			}
		}
		// Rank 0 reduces in rank order into its own buffer: deterministic
		// and O(N·len) total (a fleet-wide reduction would be O(N²·len)).
		// In-place is safe: element i reads every part — including
		// parts[0][i], which aliases x[i] — before writing x[i].
		for i := range x {
			var sum float32
			for rank := 0; rank < c.N; rank++ {
				sum += c.reduceParts[rank][i]
			}
			x[i] = sum
		}
	}
	// This barrier publishes rank 0's reduced buffer; the other ranks'
	// buffers are untouched between their publish and this copy.
	r.Barrier()
	if r.ID != 0 {
		copy(x, c.reduceParts[0])
	}
	r.Barrier()
	if r.ID == 0 {
		c.mu.Lock()
		c.reduceParts = nil
		c.mu.Unlock()
	}
	r.Barrier()
	return cost
}

// barrier is a reusable cyclic barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
