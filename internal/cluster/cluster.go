// Package cluster provides the simulated multi-GPU runtime that stands in
// for the paper's NCCL process group: N ranks run as goroutines, exchange
// real data through shared-memory collectives (AllToAll, variable-size
// AllToAllV with the paper's two-phase metadata+payload protocol from
// §III-A, and AllReduce), and every collective charges simulated wall time
// to a labelled accounting bucket via the netmodel α-β interconnect model.
//
// Training math executed on top of this runtime is real — only the clock is
// modelled — so accuracy experiments and timing experiments share one code
// path.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"dlrmcomp/internal/netmodel"
)

// MetadataBytesPerPair is the size-exchange header each rank sends every
// peer before a variable-size all-to-all (stage ② of the paper's pipeline).
const MetadataBytesPerPair = 8

// Cluster is a simulated process group.
type Cluster struct {
	N   int
	Net netmodel.Network

	bar *barrier

	mu        sync.Mutex
	boxes     [][][]byte // boxes[from][to]
	reduceBuf []float32
	simTime   map[string]time.Duration
}

// New creates a cluster of n ranks over the given network model.
func New(n int, net netmodel.Network) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: invalid rank count %d", n))
	}
	boxes := make([][][]byte, n)
	for i := range boxes {
		boxes[i] = make([][]byte, n)
	}
	return &Cluster{
		N:       n,
		Net:     net,
		bar:     newBarrier(n),
		boxes:   boxes,
		simTime: make(map[string]time.Duration),
	}
}

// Run executes fn on every rank concurrently and blocks until all return.
func (c *Cluster) Run(fn func(r *Rank)) {
	var wg sync.WaitGroup
	for id := 0; id < c.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(&Rank{ID: id, c: c})
		}(id)
	}
	wg.Wait()
}

// SimTime returns the accumulated simulated duration of the labelled bucket.
func (c *Cluster) SimTime(label string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simTime[label]
}

// SimTimes returns a copy of all buckets.
func (c *Cluster) SimTimes() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.simTime))
	for k, v := range c.simTime {
		out[k] = v
	}
	return out
}

// AddSimTime charges a duration to a bucket (used by ranks to account
// modelled compute such as MLP or codec kernels; charged once per step by
// rank 0 to represent the parallel device fleet).
func (c *Cluster) AddSimTime(label string, d time.Duration) {
	c.mu.Lock()
	c.simTime[label] += d
	c.mu.Unlock()
}

// ResetSimTime clears all buckets.
func (c *Cluster) ResetSimTime() {
	c.mu.Lock()
	c.simTime = make(map[string]time.Duration)
	c.mu.Unlock()
}

// Rank is one simulated device's handle onto the cluster.
type Rank struct {
	ID int
	c  *Cluster
}

// N returns the cluster size.
func (r *Rank) N() int { return r.c.N }

// Barrier blocks until every rank reaches it.
func (r *Rank) Barrier() { r.c.bar.await() }

// AllToAll exchanges one buffer per peer: send[j] goes to rank j, and the
// result's entry i holds the buffer rank i sent here. send[r.ID] is
// delivered locally. If variable is true the simulated cost includes the
// metadata exchange of the paper's stage ② (required because compressed
// sizes differ per pair); fixed-size exchanges (the uncompressed baseline)
// skip it.
func (r *Rank) AllToAll(send [][]byte, variable bool, label string) [][]byte {
	c := r.c
	if len(send) != c.N {
		panic(fmt.Sprintf("cluster: rank %d sent %d buffers for %d ranks", r.ID, len(send), c.N))
	}
	c.mu.Lock()
	for to, buf := range send {
		c.boxes[r.ID][to] = buf
	}
	c.mu.Unlock()
	r.Barrier()

	// Rank 0 charges the simulated time once, from global knowledge of
	// send volumes.
	if r.ID == 0 {
		sends := make([]int64, c.N)
		c.mu.Lock()
		for from := 0; from < c.N; from++ {
			var total int64
			for to := 0; to < c.N; to++ {
				if from != to {
					total += int64(len(c.boxes[from][to]))
				}
			}
			sends[from] = total
		}
		c.mu.Unlock()
		d := c.Net.AllToAllTime(c.N, sends)
		if variable {
			d += c.Net.MetadataTime(c.N, MetadataBytesPerPair)
		}
		c.AddSimTime(label, d)
	}

	recv := make([][]byte, c.N)
	c.mu.Lock()
	for from := 0; from < c.N; from++ {
		recv[from] = c.boxes[from][r.ID]
	}
	c.mu.Unlock()
	// Second barrier so nobody overwrites boxes before all reads finish.
	r.Barrier()
	return recv
}

// AllReduceSum sums x elementwise across ranks; every rank's x holds the
// global sum on return.
func (r *Rank) AllReduceSum(x []float32, label string) {
	c := r.c
	c.mu.Lock()
	if c.reduceBuf == nil { // first arriver allocates the zeroed accumulator
		c.reduceBuf = make([]float32, len(x))
	}
	if len(c.reduceBuf) != len(x) {
		c.mu.Unlock()
		panic(fmt.Sprintf("cluster: allreduce length mismatch: %d vs %d", len(c.reduceBuf), len(x)))
	}
	for i, v := range x {
		c.reduceBuf[i] += v
	}
	c.mu.Unlock()
	r.Barrier()

	if r.ID == 0 {
		c.AddSimTime(label, c.Net.AllReduceTime(c.N, int64(len(x)*4)))
	}
	c.mu.Lock()
	copy(x, c.reduceBuf)
	c.mu.Unlock()
	r.Barrier()
	if r.ID == 0 {
		c.mu.Lock()
		c.reduceBuf = nil
		c.mu.Unlock()
	}
	r.Barrier()
}

// barrier is a reusable cyclic barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
