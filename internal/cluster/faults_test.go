package cluster

import (
	"strings"
	"testing"
	"time"

	"dlrmcomp/internal/netmodel"
)

// runA2ASteps drives n identical fixed-size all-to-alls plus one allreduce
// through an in-process cluster and returns the sim-time buckets.
func runA2ASteps(t *testing.T, ranks, steps int, plan *FaultPlan) map[string]time.Duration {
	t.Helper()
	c := New(ranks, nil)
	defer c.Close()
	if err := c.SetFaultPlan(plan); err != nil {
		t.Fatalf("SetFaultPlan: %v", err)
	}
	for s := 0; s < steps; s++ {
		c.Run(func(r *Rank) {
			send := make([][]byte, ranks)
			for i := range send {
				send[i] = []byte{byte(r.ID), byte(i), byte(s)}
			}
			if _, err := r.AllToAll(send, false, "a2a"); err != nil {
				t.Errorf("rank %d a2a: %v", r.ID, err)
				return
			}
			x := []float32{float32(r.ID), 1}
			if err := r.AllReduceSum(x, "allreduce"); err != nil {
				t.Errorf("rank %d allreduce: %v", r.ID, err)
			}
		})
	}
	return c.SimTimes()
}

func TestFaultPlanScalesSimTime(t *testing.T) {
	base := runA2ASteps(t, 4, 3, nil)
	slow := runA2ASteps(t, 4, 3, &FaultPlan{Slow: []SlowRank{{Rank: 2, Factor: 10}}})
	for _, label := range []string{"a2a", "allreduce"} {
		if base[label] <= 0 {
			t.Fatalf("baseline bucket %q is empty", label)
		}
		if got, want := slow[label], 10*base[label]; got != want {
			t.Errorf("bucket %q with a 10x straggler = %v, want exactly 10x the baseline %v", label, got, base[label])
		}
	}
}

func TestFaultJitterDeterministicAndSeeded(t *testing.T) {
	plan := &FaultPlan{Seed: 42, Jitter: 0.5}
	a := runA2ASteps(t, 4, 4, plan)
	b := runA2ASteps(t, 4, 4, plan)
	for label, d := range a {
		if b[label] != d {
			t.Errorf("bucket %q not reproducible: %v vs %v", label, d, b[label])
		}
	}
	base := runA2ASteps(t, 4, 4, nil)
	if a["a2a"] <= base["a2a"] {
		t.Errorf("jitter did not inflate a2a: %v vs healthy %v", a["a2a"], base["a2a"])
	}
	if a["a2a"] > 2*base["a2a"] {
		t.Errorf("0.5 jitter inflated a2a by more than its bound: %v vs healthy %v", a["a2a"], base["a2a"])
	}
	other := runA2ASteps(t, 4, 4, &FaultPlan{Seed: 43, Jitter: 0.5})
	if other["a2a"] == a["a2a"] {
		t.Errorf("different seeds drew an identical jitter stream (a2a = %v)", a["a2a"])
	}
}

func TestFaultPlanDoesNotChangePayloads(t *testing.T) {
	// The injector scales the clock only; the reduced values must be
	// bit-identical with and without a plan.
	run := func(plan *FaultPlan) []float32 {
		c := New(4, nil)
		defer c.Close()
		if err := c.SetFaultPlan(plan); err != nil {
			t.Fatalf("SetFaultPlan: %v", err)
		}
		out := make([]float32, 4)
		c.Run(func(r *Rank) {
			x := []float32{0.1 * float32(r.ID+1), -1.5, 2.25, float32(r.ID)}
			if err := r.AllReduceSum(x, "allreduce"); err != nil {
				t.Errorf("rank %d: %v", r.ID, err)
				return
			}
			if r.ID == 0 {
				copy(out, x)
			}
		})
		return out
	}
	healthy := run(nil)
	faulted := run(&FaultPlan{Seed: 9, Jitter: 2, Slow: []SlowRank{{Rank: 1, Factor: 100}}})
	for i := range healthy {
		if healthy[i] != faulted[i] {
			t.Fatalf("element %d differs under faults: %v vs %v", i, healthy[i], faulted[i])
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string // substring of the error; "" = valid
	}{
		{"healthy", FaultPlan{}, ""},
		{"full", FaultPlan{
			Seed:   7,
			Jitter: 0.2,
			Slow:   []SlowRank{{Rank: 1, Factor: 10}},
			Events: []FaultEvent{{Step: 2, Kind: EventDrop, Rank: 1}, {Step: 3, Kind: EventRejoin, Rank: 1}},
		}, ""},
		{"negative jitter", FaultPlan{Jitter: -0.1}, "jitter"},
		{"huge jitter", FaultPlan{Jitter: 1e9}, "jitter"},
		{"slow rank out of range", FaultPlan{Slow: []SlowRank{{Rank: 4, Factor: 2}}}, "outside world"},
		{"slow factor below one", FaultPlan{Slow: []SlowRank{{Rank: 0, Factor: 0.5}}}, "factor"},
		{"slow rank twice", FaultPlan{Slow: []SlowRank{{Rank: 0, Factor: 2}, {Rank: 0, Factor: 3}}}, "twice"},
		{"event rank out of range", FaultPlan{Events: []FaultEvent{{Step: 1, Kind: EventDrop, Rank: 9}}}, "outside world"},
		{"event step zero", FaultPlan{Events: []FaultEvent{{Step: 0, Kind: EventDrop, Rank: 1}}}, "earliest is 1"},
		{"event past horizon", FaultPlan{Events: []FaultEvent{{Step: 10, Kind: EventDrop, Rank: 1}}}, "past the run"},
		{"events out of order", FaultPlan{Events: []FaultEvent{
			{Step: 3, Kind: EventDrop, Rank: 1}, {Step: 2, Kind: EventDrop, Rank: 2}}}, "out of order"},
		{"double drop", FaultPlan{Events: []FaultEvent{
			{Step: 1, Kind: EventDrop, Rank: 1}, {Step: 2, Kind: EventDrop, Rank: 1}}}, "already down"},
		{"rejoin live rank", FaultPlan{Events: []FaultEvent{{Step: 1, Kind: EventRejoin, Rank: 1}}}, "still up"},
		{"unknown kind", FaultPlan{Events: []FaultEvent{{Step: 1, Kind: "explode", Rank: 1}}}, "kind"},
		{"world empties", FaultPlan{Events: []FaultEvent{
			{Step: 1, Kind: EventDrop, Rank: 0}, {Step: 1, Kind: EventDrop, Rank: 1},
			{Step: 1, Kind: EventDrop, Rank: 2}, {Step: 1, Kind: EventDrop, Rank: 3}}}, "no live ranks"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4, 5)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFaultPlanForLive(t *testing.T) {
	plan := &FaultPlan{
		Seed:   3,
		Jitter: 0.1,
		Slow:   []SlowRank{{Rank: 5, Factor: 10}, {Rank: 1, Factor: 2}},
		Events: []FaultEvent{{Step: 2, Kind: EventDrop, Rank: 5}},
	}
	// Rank 5 dropped: survivors 0..4,6,7 renumber to 0..6; original rank 6
	// becomes 5, original 1 keeps its id, the straggler entry disappears.
	seg := plan.ForLive([]int{0, 1, 2, 3, 4, 6, 7})
	if seg == nil {
		t.Fatal("segment plan vanished while jitter is still active")
	}
	if seg.Seed != 3 || seg.Jitter != 0.1 {
		t.Errorf("seed/jitter not carried: %+v", seg)
	}
	if len(seg.Slow) != 1 || seg.Slow[0] != (SlowRank{Rank: 1, Factor: 2}) {
		t.Errorf("remapped slow set = %+v, want only original rank 1 at factor 2", seg.Slow)
	}
	if len(seg.Events) != 0 {
		t.Errorf("events leaked into the segment plan: %+v", seg.Events)
	}

	// A plan whose only activity was the dropped straggler projects to nil.
	only := &FaultPlan{Slow: []SlowRank{{Rank: 5, Factor: 10}}}
	if got := only.ForLive([]int{0, 1, 2, 3, 4, 6, 7}); got != nil {
		t.Errorf("inactive projection = %+v, want nil", got)
	}
	if (*FaultPlan)(nil).ForLive([]int{0}) != nil {
		t.Error("nil plan did not project to nil")
	}
}

func TestSetFaultPlanRejectsInvalid(t *testing.T) {
	c := New(2, nil)
	defer c.Close()
	if err := c.SetFaultPlan(&FaultPlan{Slow: []SlowRank{{Rank: 7, Factor: 2}}}); err == nil {
		t.Fatal("out-of-world slow rank accepted")
	}
	if err := c.SetFaultPlan(&FaultPlan{Jitter: 0.5}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := c.SetFaultPlan(nil); err != nil {
		t.Fatalf("disarming rejected: %v", err)
	}
}

func TestFaultScaleConformsAcrossAlgos(t *testing.T) {
	// The straggler multiplier applies identically to the direct and
	// two-phase paths: each faulted bucket is exactly factor x its healthy
	// counterpart on a hierarchical topology.
	hier := netmodel.PaperHierarchical(2)
	run := func(plan *FaultPlan, algo A2AAlgo) map[string]time.Duration {
		c := New(4, hier)
		defer c.Close()
		if err := c.SetFaultPlan(plan); err != nil {
			t.Fatalf("SetFaultPlan: %v", err)
		}
		c.Run(func(r *Rank) {
			send := make([][]byte, 4)
			for i := range send {
				send[i] = make([]byte, 64)
			}
			if _, err := r.AllToAllV(send, true, "a2a", algo); err != nil {
				t.Errorf("rank %d: %v", r.ID, err)
			}
		})
		return c.SimTimes()
	}
	plan := &FaultPlan{Slow: []SlowRank{{Rank: 3, Factor: 4}}}
	for _, algo := range []A2AAlgo{A2ADirect, A2ATwoPhase} {
		base := run(nil, algo)
		faulted := run(plan, algo)
		if len(base) == 0 {
			t.Fatalf("algo %v charged nothing", algo)
		}
		for label, d := range base {
			if got, want := faulted[label], 4*d; got != want {
				t.Errorf("algo %v bucket %q = %v, want exactly 4x healthy %v", algo, label, got, d)
			}
		}
	}
}
