package cluster

import (
	"fmt"
	"time"

	"dlrmcomp/internal/netmodel"
)

// This file implements deterministic fault injection for the simulated
// cluster. A FaultPlan declares how an unhealthy machine misbehaves —
// per-collective latency jitter, per-rank slow multipliers, and scheduled
// rank drop/rejoin events — and SetFaultPlan arms a cluster with it.
//
// The injector scales simulated cost only, never payloads: a collective's
// math is untouched, so losses under any fault plan are bit-identical to
// the healthy run (the resume-parity tests lean on this). Scaling happens
// at the single point where cost is known — rank 0's cost computation in
// IAllToAllV / IAllReduceSum — so both transports, both all-to-all
// algorithms, and the synchronous and nonblocking paths all pick it up,
// and the inflated time lands in the existing accounting buckets.
//
// Jitter is deterministic: the multiplier of the k-th cost-bearing
// collective is a pure function of (Seed, k), with the sequence counter
// advanced only on rank 0's cost path. Identical runs therefore charge
// identical sim time, which keeps the transport-conformance invariant
// (bit-identical rank-0 buckets across inproc and tcp) intact under
// faults.
//
// Drop/rejoin events are not consumed here — the collectives are
// fleet-wide and the rank set of a live Cluster is fixed. The scenario
// layer's elastic runner consumes Events as segment boundaries
// (checkpoint → rebuild at the new world size → restore → reshard) and
// arms each segment's cluster with the plan projected onto the surviving
// ranks via ForLive.

// Bounds on the fault knobs. They are far beyond any physically plausible
// setting; their purpose is to keep scaled durations inside the int64
// nanosecond range so a fuzzed plan cannot overflow the simulated clock.
const (
	// MaxJitter bounds FaultPlan.Jitter.
	MaxJitter = 1e3
	// MaxSlowFactor bounds SlowRank.Factor.
	MaxSlowFactor = 1e6
)

// FaultPlan declares deterministic failure injection for a training run.
// The zero value (and nil) is a healthy cluster. Plans are JSON-shaped so
// scenario specs can carry them verbatim.
type FaultPlan struct {
	// Seed keys the jitter stream. Two runs with equal seeds draw
	// identical multipliers; the zero seed is as valid as any other.
	Seed uint64 `json:"seed,omitempty"`
	// Jitter is the maximum fractional cost inflation per collective:
	// each cost-bearing collective is scaled by 1 + Jitter·u with u drawn
	// uniformly from [0,1) by a hash of (Seed, sequence number). Zero
	// disables jitter. Must be in [0, MaxJitter].
	Jitter float64 `json:"jitter,omitempty"`
	// Slow lists persistently slow ranks. A collective completes when its
	// slowest participant does, so the effective multiplier of every
	// collective is the maximum factor among live ranks.
	Slow []SlowRank `json:"slow,omitempty"`
	// Events schedules rank departures and returns, in non-decreasing
	// step order and original rank ids. The cluster ignores them (its
	// rank set is fixed); the scenario layer's elastic runner turns each
	// into a checkpoint/reshard boundary.
	Events []FaultEvent `json:"events,omitempty"`
}

// SlowRank marks one rank as a persistent straggler.
type SlowRank struct {
	// Rank is the straggler's id, in the original (pre-event) numbering.
	Rank int `json:"rank"`
	// Factor multiplies the cost of every collective the rank joins.
	// Must be in [1, MaxSlowFactor].
	Factor float64 `json:"factor"`
}

// FaultEvent is one scheduled change to the rank set.
type FaultEvent struct {
	// Step is the global training step before which the event fires.
	Step int `json:"step"`
	// Kind is "drop" (the rank leaves) or "rejoin" (a dropped rank
	// returns).
	Kind string `json:"kind"`
	// Rank is the affected rank in the original numbering.
	Rank int `json:"rank"`
}

// Event kinds.
const (
	EventDrop   = "drop"
	EventRejoin = "rejoin"
)

// Active reports whether the plan inflates any collective cost (jitter or
// slow ranks); events alone do not make a plan active at the cluster
// level.
func (p *FaultPlan) Active() bool {
	return p != nil && (p.Jitter > 0 || len(p.Slow) > 0)
}

// Validate checks the plan against a world of the given size. steps > 0
// additionally bounds event steps to (0, steps); pass 0 when the step
// horizon is unknown. The event sequence is simulated: drops must name
// live ranks, rejoins previously dropped ones, and the world must never
// empty.
func (p *FaultPlan) Validate(ranks, steps int) error {
	if p == nil {
		return nil
	}
	if ranks <= 0 {
		return fmt.Errorf("cluster: fault plan validated against %d ranks", ranks)
	}
	if p.Jitter < 0 || p.Jitter > MaxJitter {
		return fmt.Errorf("cluster: fault jitter %g outside [0, %g]", p.Jitter, float64(MaxJitter))
	}
	seen := make(map[int]bool, len(p.Slow))
	for _, s := range p.Slow {
		if s.Rank < 0 || s.Rank >= ranks {
			return fmt.Errorf("cluster: slow rank %d outside world of %d", s.Rank, ranks)
		}
		if seen[s.Rank] {
			return fmt.Errorf("cluster: slow rank %d listed twice", s.Rank)
		}
		seen[s.Rank] = true
		if s.Factor < 1 || s.Factor > MaxSlowFactor {
			return fmt.Errorf("cluster: slow factor %g for rank %d outside [1, %g]", s.Factor, s.Rank, float64(MaxSlowFactor))
		}
	}
	live := make([]bool, ranks)
	for i := range live {
		live[i] = true
	}
	alive := ranks
	prev := 0
	for i, ev := range p.Events {
		if ev.Rank < 0 || ev.Rank >= ranks {
			return fmt.Errorf("cluster: fault event %d names rank %d outside world of %d", i, ev.Rank, ranks)
		}
		if ev.Step < 1 {
			return fmt.Errorf("cluster: fault event %d fires at step %d; events fire before a step, so the earliest is 1", i, ev.Step)
		}
		if steps > 0 && ev.Step >= steps {
			return fmt.Errorf("cluster: fault event %d fires at step %d, at or past the run's %d steps", i, ev.Step, steps)
		}
		if ev.Step < prev {
			return fmt.Errorf("cluster: fault events out of order: step %d after step %d", ev.Step, prev)
		}
		prev = ev.Step
		switch ev.Kind {
		case EventDrop:
			if !live[ev.Rank] {
				return fmt.Errorf("cluster: fault event %d drops rank %d, which is already down", i, ev.Rank)
			}
			live[ev.Rank] = false
			if alive--; alive < 1 {
				return fmt.Errorf("cluster: fault event %d leaves no live ranks", i)
			}
		case EventRejoin:
			if live[ev.Rank] {
				return fmt.Errorf("cluster: fault event %d rejoins rank %d, which is still up", i, ev.Rank)
			}
			live[ev.Rank] = true
			alive++
		default:
			return fmt.Errorf("cluster: fault event %d has kind %q (want %q or %q)", i, ev.Kind, EventDrop, EventRejoin)
		}
	}
	return nil
}

// ForLive projects the plan onto a surviving rank set: live lists the
// original rank ids still present, in the order that assigns their new
// contiguous ids (live[i] runs as rank i). Slow entries for absent ranks
// vanish; events are dropped — the elastic driver consumes them. Returns
// nil when nothing in the plan touches the surviving set, so callers can
// hand the result straight to SetFaultPlan.
func (p *FaultPlan) ForLive(live []int) *FaultPlan {
	if p == nil {
		return nil
	}
	out := &FaultPlan{Seed: p.Seed, Jitter: p.Jitter}
	for newID, orig := range live {
		for _, s := range p.Slow {
			if s.Rank == orig {
				out.Slow = append(out.Slow, SlowRank{Rank: newID, Factor: s.Factor})
			}
		}
	}
	if !out.Active() {
		return nil
	}
	return out
}

// faultInjector is a cluster's armed fault state: the plan's knobs folded
// into the per-collective multiplier stream. The sequence counter advances
// only on rank 0's cost path, so the stream is identical across transports.
type faultInjector struct {
	seed    uint64
	jitter  float64
	slowMax float64 // max slow factor across present ranks, ≥ 1
	seq     uint64  // guarded by Cluster.mu
}

// SetFaultPlan arms the cluster with a fault plan, replacing any previous
// one and restarting the jitter sequence; nil disarms. The plan is
// validated against the cluster's world size (events, if any, are
// validated for shape but ignored — see FaultPlan.Events).
func (c *Cluster) SetFaultPlan(p *FaultPlan) error {
	if err := p.Validate(c.N, 0); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !p.Active() {
		c.faults = nil
		return nil
	}
	fi := &faultInjector{seed: p.Seed, jitter: p.Jitter, slowMax: 1}
	for _, s := range p.Slow {
		if s.Factor > fi.slowMax {
			fi.slowMax = s.Factor
		}
	}
	c.faults = fi
	return nil
}

// faultScale returns the multiplier for the next cost-bearing collective,
// or 1 when no plan is armed. Called only on rank 0's cost path.
func (c *Cluster) faultScale() float64 {
	c.mu.Lock()
	fi := c.faults
	var seq uint64
	if fi != nil {
		seq = fi.seq
		fi.seq++
	}
	c.mu.Unlock()
	if fi == nil {
		return 1
	}
	m := fi.slowMax
	if fi.jitter > 0 {
		m *= 1 + fi.jitter*unitFloat(fi.seed, seq)
	}
	return m
}

// scaleDuration multiplies a duration by f (identity fast path for the
// healthy f == 1 case, so unfaulted runs charge bit-identical costs).
func scaleDuration(d time.Duration, f float64) time.Duration {
	if f == 1 {
		return d
	}
	return time.Duration(float64(d) * f)
}

// scaleLinkCost multiplies a link cost by f with the same identity fast
// path as scaleDuration.
func scaleLinkCost(c netmodel.LinkCost, f float64) netmodel.LinkCost {
	if f == 1 {
		return c
	}
	return c.Scale(f)
}

// unitFloat hashes (seed, seq) to a uniform float64 in [0, 1) with a
// splitmix64 finalizer — stateless, so the k-th draw is reproducible from
// the plan alone.
func unitFloat(seed, seq uint64) float64 {
	x := seed + (seq+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
