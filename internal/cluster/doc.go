// Package cluster provides the multi-GPU runtime that stands in for the
// paper's NCCL process group: N ranks exchange real data through
// collectives built on a pluggable point-to-point Transport, and every
// collective charges simulated wall time to a labelled accounting bucket
// via a pluggable netmodel.Topology. Training math executed on top of
// this runtime is real — only the clock is modelled — so accuracy
// experiments and timing experiments share one code path.
//
// Layer: between internal/netmodel (which prices traffic) and
// internal/dist (which runs hybrid-parallel training on top of the
// collectives).
//
// Key types:
//
//   - Transport — the point-to-point substrate a Cluster's collectives
//     run over: per-rank endpoints with FIFO Send/Recv per directed pair
//     plus a group Barrier. NewInprocFabric returns the reference
//     implementation (all ranks in one process, goroutines and channels,
//     zero-copy delivery); internal/cluster/tcptransport provides a real
//     multi-process backend over loopback/network sockets. Collectives,
//     costs, and results are bit-identical across transports — the
//     conformance suite in this package and internal/dist enforces it.
//   - Cluster — the process group: rank/node layout, the endpoints this
//     process hosts, the sim-time bucket table
//     (SimTime/SimTimes/AddSimTime/ResetSimTime). New builds a fully
//     in-process group; NewOverTransport wraps one external endpoint so
//     each OS process hosts a single rank.
//   - Rank — one simulated device's handle, passed to the function given
//     to Cluster.Run. Collectives hang off it.
//   - A2AAlgo — per-collective all-to-all algorithm choice: A2ADirect
//     posts every payload straight to its destination; A2ATwoPhase stages
//     cross-node payloads through node leaders (same-node pairs over the
//     fast link, leader-to-leader bundles over the NIC — see twophase.go);
//     A2AAuto picks two-phase whenever the topology spans multiple nodes.
//     The two algorithms deliver bit-identical payloads and differ only in
//     route, and therefore in cost attribution.
//   - PendingAllToAll / PendingAllReduce — awaitable handles returned by
//     the nonblocking collectives IAllToAllV and IAllReduceSum. Data
//     movement is eager (payloads are delivered before the handle
//     returns); what Await defers is the simulated clock: the collective's
//     cost is captured at issue and charged to its bucket only when
//     awaited, which is what lets an overlap scheduler hide wire time
//     under modelled compute. Await order is free — collectives may be
//     issued back to back and awaited out of order.
//
// Determinism: the allreduce reduces rank contributions in rank order
// (not arrival order), so training on this runtime is bitwise
// reproducible regardless of goroutine scheduling or transport — the
// property the synchronous-vs-pipelined parity tests in internal/dist
// and the transport conformance suite rely on.
//
// Failure semantics: collectives return errors, not panics. A transport
// that loses a peer (connection close, process exit) poisons in-flight
// and subsequent Send/Recv/Barrier calls with a descriptive error, which
// the collectives propagate to their callers — a dying peer surfaces as
// a prompt error on every surviving rank, never a deadlock.
//
// Sim-time buckets: each collective charges the label passed by its
// caller (the trainer uses "fwd-a2a", "bwd-a2a", "allreduce"). Under a
// topology spanning multiple nodes, all-to-all time splits into
// "<label>-intra" / "<label>-inter" per link class; flat and single-node
// clusters keep the single "<label>" bucket. Sim time is modelled cost,
// independent of wall-clock transport speed: a TCP-backed run charges
// exactly the buckets the in-process run charges.
package cluster
