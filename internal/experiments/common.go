package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Options tunes experiment cost. Quick mode shrinks workloads so the whole
// suite runs in CI; full mode uses paper-scale batches where feasible.
type Options struct {
	Quick bool
}

// Result is a completed experiment.
type Result struct {
	ID    string
	Title string
	Text  string
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// Entry is one registry row: the experiment's ID and the table/figure it
// reproduces. The registry is the single source of truth for the
// experiment index — cmd/experiments prints it and DESIGN.md's index is
// generated from it (a drift test pins the two together).
type Entry struct {
	ID    string
	Title string
}

// registry maps experiment IDs to runners, with insertion order retained
// in entries.
var (
	registry = map[string]Runner{}
	entries  []Entry
)

func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
	entries = append(entries, Entry{ID: id, Title: title})
}

// Run executes the experiment with the given ID. The result's ID and Title
// come from the registry, so runners only produce the body text.
func Run(id string, opts Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := r(opts)
	if err != nil {
		return nil, err
	}
	res.ID = id
	for _, e := range entries {
		if e.ID == id {
			res.Title = e.Title
			break
		}
	}
	return res, nil
}

// IDs lists all registered experiments in index order.
func IDs() []string {
	idx := Index()
	out := make([]string, len(idx))
	for i, e := range idx {
		out[i] = e.ID
	}
	return out
}

// Index returns the registry rows in presentation order: figures by
// number, then tables by number, then the named sweeps alphabetically.
// Registration order is file-name order (package init), which is not a
// meaningful order to show users or pin DESIGN.md to.
func Index() []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	sort.SliceStable(out, func(i, j int) bool {
		ci, ni := splitID(out[i].ID)
		cj, nj := splitID(out[j].ID)
		if ci != cj {
			return ci < cj
		}
		if ni != nj {
			return ni < nj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// splitID maps an experiment ID onto its sort key: class 0 for figN,
// class 1 for tableN (with their numbers), class 2 for everything else.
func splitID(id string) (class, num int) {
	for c, prefix := range []string{"fig", "table"} {
		if !strings.HasPrefix(id, prefix) {
			continue
		}
		if n, err := strconv.ParseUint(id[len(prefix):], 10, 32); err == nil {
			return c, int(n)
		}
	}
	return 2, 0
}

// IndexMarkdown renders the registry as the markdown table embedded in
// DESIGN.md's experiment index. DESIGN.md must carry this table verbatim
// between its index markers; TestDesignExperimentIndexInSync enforces it,
// and `go run ./cmd/experiments -design` prints it for regeneration.
func IndexMarkdown() string {
	var sb strings.Builder
	sb.WriteString("| ID | Reproduces |\n|---|---|\n")
	for _, e := range Index() {
		fmt.Fprintf(&sb, "| %s | %s |\n", e.ID, e.Title)
	}
	return sb.String()
}

// RunAll executes every experiment in order.
func RunAll(opts Options) ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		res, err := Run(id, opts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// --- shared formatting and statistics ----------------------------------------

// concat flattens per-table lookups into one stream (epoch-style sampling).
func concat(samples [][]float32) []float32 {
	var total int
	for _, s := range samples {
		total += len(s)
	}
	out := make([]float32, 0, total)
	for _, s := range samples {
		out = append(out, s...)
	}
	return out
}

// moments returns mean, std, and excess kurtosis of a sample.
func moments(x []float32) (mean, std, kurtosis float64) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0, 0
	}
	for _, v := range x {
		mean += float64(v)
	}
	mean /= n
	var m2, m4 float64
	for _, v := range x {
		d := float64(v) - mean
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return mean, 0, 0
	}
	return mean, math.Sqrt(m2), m4/(m2*m2) - 3
}

// table renders rows as an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// sortedCopy returns indices 0..n-1 ordered by less.
func sortedCopy(n int, less func(i, j int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	return idx
}
