package experiments

import (
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/buffopt"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// modelConfigFor builds the standard experiment model for a scaled spec.
func modelConfigFor(spec criteo.Spec, dim int) model.Config {
	return model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{64, 32},
		TopMLP:            []int{64, 32},
		Seed:              spec.Seed + 100,
	}
}

func newModel(cfg model.Config) (*model.DLRM, error) { return model.New(cfg) }

// trainPhase advances an env's model by additional single-process steps.
func trainPhase(e *env, steps int) {
	opt := &nn.SGD{LR: 0.05}
	for i := 0; i < steps; i++ {
		b := e.Gen.NextBatch(128)
		e.Model.TrainStep(b.Dense, b.Indices, b.Labels, opt, 0.3)
	}
}

func defaultLaunchModel() buffopt.LaunchModel { return buffopt.DefaultLaunchModel() }

// analyzeHomo is adapt.AnalyzeTable re-exported for the experiment drivers.
func analyzeHomo(tableID int, sample []float32, dim int, eb float32) (adapt.PatternStats, error) {
	return adapt.AnalyzeTable(tableID, sample, dim, eb)
}

// liveBatchedSpeedup measures the real Go implementation of the buffer
// optimization: 16 chunks compressed serially vs through CompressBatch's
// goroutine fan-out.
func liveBatchedSpeedup(opts Options) (float64, error) {
	rng := tensor.NewRNG(99)
	rows := 2048
	if opts.Quick {
		rows = 512
	}
	dim := 32
	chunks := make([]buffopt.Chunk, 16)
	for i := range chunks {
		vals := make([]float32, rows*dim)
		rng.FillNormal(vals, 0, 0.2)
		chunks[i] = buffopt.Chunk{Vals: vals, Dim: dim}
	}
	c := hybrid.New(0.01, hybrid.Auto)

	// Warm once, then take the best of three trials per path to tame
	// scheduler noise.
	if _, err := buffopt.CompressBatch(c, chunks); err != nil {
		return 0, err
	}
	best := func(f func() error) (time.Duration, error) {
		var b time.Duration = 1 << 62
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b, nil
	}
	serial, err := best(func() error {
		for _, ch := range chunks {
			if _, err := c.Compress(ch.Vals, ch.Dim); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	batched, err := best(func() error {
		_, err := buffopt.CompressBatch(c, chunks)
		return err
	})
	if err != nil {
		return 0, err
	}
	if batched <= 0 {
		return 1, nil
	}
	return float64(serial) / float64(batched), nil
}
