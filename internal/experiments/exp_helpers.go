package experiments

import (
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/buffopt"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/scenario"
	"dlrmcomp/internal/tensor"
)

// expSpec is the standard experiment scenario over a dataset: the
// quick/full dataset scale, a dim-wide model with the repo-default MLPs,
// the suite's model-seed offset, and the standard warm length for probe
// environments. Experiments layer their cluster shape, codec, and step
// budget on top.
func expSpec(base criteo.Spec, dim int, opts Options) scenario.Spec {
	return scenario.Spec{
		Dataset:   base.Name,
		Scale:     scenario.DefaultScale(opts.Quick),
		Dim:       dim,
		ModelSeed: base.Seed + 100,
		WarmSteps: scenario.DefaultWarmSteps(opts.Quick),
	}
}

// timingSpec is the paper-scale timing scenario (sparse feature size 64,
// the reference-arch MLPs, the calibrated sustained device rate, and the
// "other compute" share that makes breakdown shares match Fig. 1); quick
// mode shrinks the model so CI stays fast.
func timingSpec(base criteo.Spec, opts Options) scenario.Spec {
	sp := scenario.Spec{
		Dataset:            base.Name,
		Scale:              scenario.DefaultScale(opts.Quick),
		Dim:                64,
		BottomMLP:          []int{512, 256},
		TopMLP:             []int{512, 256},
		Device:             "paper",
		OtherComputeFactor: 0.8,
		ModelSeed:          base.Seed + 7,
	}
	if opts.Quick {
		sp.Dim = 16
		sp.BottomMLP = []int{128, 64}
		sp.TopMLP = []int{128, 64}
	}
	return sp
}

func defaultLaunchModel() buffopt.LaunchModel { return buffopt.DefaultLaunchModel() }

// analyzeHomo is adapt.AnalyzeTable re-exported for the experiment drivers.
func analyzeHomo(tableID int, sample []float32, dim int, eb float32) (adapt.PatternStats, error) {
	return adapt.AnalyzeTable(tableID, sample, dim, eb)
}

// liveBatchedSpeedup measures the real Go implementation of the buffer
// optimization: 16 chunks compressed serially vs through CompressBatch's
// goroutine fan-out.
func liveBatchedSpeedup(opts Options) (float64, error) {
	rng := tensor.NewRNG(99)
	rows := 2048
	if opts.Quick {
		rows = 512
	}
	dim := 32
	chunks := make([]buffopt.Chunk, 16)
	for i := range chunks {
		vals := make([]float32, rows*dim)
		rng.FillNormal(vals, 0, 0.2)
		chunks[i] = buffopt.Chunk{Vals: vals, Dim: dim}
	}
	c := hybrid.New(0.01, hybrid.Auto)

	// Warm once, then take the best of three trials per path to tame
	// scheduler noise.
	if _, err := buffopt.CompressBatch(c, chunks); err != nil {
		return 0, err
	}
	best := func(f func() error) (time.Duration, error) {
		var b time.Duration = 1 << 62
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b, nil
	}
	serial, err := best(func() error {
		for _, ch := range chunks {
			if _, err := c.Compress(ch.Vals, ch.Dim); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	batched, err := best(func() error {
		_, err := buffopt.CompressBatch(c, chunks)
		return err
	})
	if err != nil {
		return 0, err
	}
	if batched <= 0 {
		return 1, nil
	}
	return float64(serial) / float64(batched), nil
}
