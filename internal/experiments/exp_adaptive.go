package experiments

import (
	"fmt"
	"strings"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/scenario"
)

func init() {
	register("fig5", "Decay-function comparison", runFig5)
	register("fig6", "EMB table sizes of both datasets", runFig6)
	register("fig9", "Table-wise error-bound configuration", runFig9)
	register("fig10", "Decay vs abrupt drop", runFig10)
	register("table2", "Classification of EMB tables (L/M/S)", runTable2)
	register("table3", "Ranked Homo Index on Kaggle", runTable3)
	register("table4", "Ranked Homo Index on Terabyte", runTable4)
}

// runFig6 reproduces Fig. 6: the (unscaled) embedding-table cardinalities of
// both datasets, spanning single digits to tens of millions.
func runFig6(_ Options) (*Result, error) {
	var rows [][]string
	k, tb := criteo.KaggleCardinalities, criteo.TerabyteCardinalities
	for t := 0; t < len(k); t++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d", k[t]),
			fmt.Sprintf("%d", tb[t]),
		})
	}
	var minK, maxK = k[0], k[0]
	for _, v := range k {
		if v < minK {
			minK = v
		}
		if v > maxK {
			maxK = v
		}
	}
	text := table([]string{"table", "kaggle rows", "terabyte rows"}, rows) +
		fmt.Sprintf("\nKaggle spans %d to %d rows — the size diversity driving table-wise EBs.\n", minK, maxK)
	return &Result{Text: text}, nil
}

// homoAnalysis runs the offline analysis for one dataset over the standard
// warmed probe environment.
func homoAnalysis(base criteo.Spec, opts Options, batch int, eb float32) (*scenario.Env, *adapt.OfflineResult, error) {
	e, err := expSpec(base, 16, opts).BuildEnv()
	if err != nil {
		return nil, nil, err
	}
	samples, _ := e.SampleLookups(batch)
	res, err := adapt.OfflineAnalysis(samples, e.Dim, adapt.OfflineOptions{SampleEB: eb})
	if err != nil {
		return nil, nil, err
	}
	return e, res, nil
}

// runTable2 reproduces Table II: the L/M/S classification of all 26 tables
// on both datasets.
func runTable2(opts Options) (*Result, error) {
	var sb strings.Builder
	for _, spec := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		batch := spec.DefaultBatch
		if opts.Quick {
			batch = 128
		}
		_, res, err := homoAnalysis(spec, opts, batch, probeEB(spec))
		if err != nil {
			return nil, err
		}
		header := []string{"EMB ID"}
		row := []string{spec.Name}
		for t, cl := range res.Classes {
			header = append(header, fmt.Sprintf("%d", t))
			row = append(row, cl.String())
		}
		sb.WriteString(table(header, [][]string{row}))
		l, m, s := res.ClassCounts()
		fmt.Fprintf(&sb, "counts: L=%d M=%d S=%d\n\n", l, m, s)
	}
	return &Result{Text: sb.String()}, nil
}

func homoRankTable(spec criteo.Spec, opts Options, batch int, eb float32) (string, error) {
	_, res, err := homoAnalysis(spec, opts, batch, eb)
	if err != nil {
		return "", err
	}
	ranked := res.RankedByHomoIndex()
	limit := 9 // the paper lists representative tables only
	if limit > len(ranked) {
		limit = len(ranked)
	}
	var rows [][]string
	for _, st := range ranked[:limit] {
		rows = append(rows, []string{
			fmt.Sprintf("%d", st.TableID),
			fmt.Sprintf("%.3g", eb),
			fmt.Sprintf("%d", st.OrigUnique),
			fmt.Sprintf("%d", st.QuantUnique),
			fmt.Sprintf("%d", st.Batch),
			fmt.Sprintf("%.6f", st.PatternRatio),
			fmt.Sprintf("%.4f", st.HomoIndex),
			res.Classes[st.TableID].String(),
		})
	}
	return table([]string{"TAB. ID", "EB", "#Ori.Patterns", "#Quant.Patterns", "Batch", "ratio (paper col.)", "homo idx (Eq.1)", "class"}, rows), nil
}

// runTable3 reproduces Table III: ranked homogenization on Kaggle
// (batch 128, eb 0.01).
func runTable3(opts Options) (*Result, error) {
	text, err := homoRankTable(criteo.KaggleSpec(), opts, 128, 0.01)
	if err != nil {
		return nil, err
	}
	return &Result{Text: text}, nil
}

// runTable4 reproduces Table IV: ranked homogenization on Terabyte
// (batch 2048, eb 0.005).
func runTable4(opts Options) (*Result, error) {
	batch := 2048
	if opts.Quick {
		batch = 512
	}
	text, err := homoRankTable(criteo.TerabyteSpec(), opts, batch, 0.005)
	if err != nil {
		return nil, err
	}
	return &Result{Text: text}, nil
}

// adaptiveSpec is the shared scenario of the decay experiments: the 4-rank
// training cluster with the hybrid codec under an adaptive controller with
// uniform ClassMedium tables (the decay function under test is the
// variable).
func adaptiveSpec(base criteo.Spec, opts Options, schedule string, phase int, factor float64) scenario.Spec {
	sp := expSpec(base, 16, opts)
	sp.Ranks, sp.Batch = 4, 128
	sp.Steps = 300
	if opts.Quick {
		sp.Steps = 50
	}
	sp.Eval = 4000
	if opts.Quick {
		sp.Eval = 1000
	}
	sp.Codec, sp.ErrorBound = "hybrid", 0.03
	sp.Adaptive = true
	sp.Classes = "uniform"
	sp.Schedule = schedule
	sp.DecayPhase = phase
	sp.DecayFactor = factor
	return sp
}

// runFig5 reproduces Fig. 5: accuracy and compression ratio under different
// decay functions (stepwise wins on CR while preserving convergence).
func runFig5(opts Options) (*Result, error) {
	schedules := []adapt.Schedule{adapt.ScheduleNone, adapt.ScheduleLinear, adapt.ScheduleLogarithmic, adapt.ScheduleStepwise}
	phase := 150
	if opts.Quick {
		phase = 25
	}
	specs := make([]scenario.Spec, len(schedules))
	for i, sched := range schedules {
		specs[i] = adaptiveSpec(criteo.KaggleSpec(), opts, sched.String(), phase, 2)
	}
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, sched := range schedules {
		rows = append(rows, []string{sched.String(),
			fmt.Sprintf("%.4f", results[i].Accuracy),
			fmt.Sprintf("%.2f", results[i].CompressionRatio)})
	}
	text := table([]string{"decay func", "accuracy", "CR"}, rows) +
		"\nDecaying schedules start at 2x the base EB, so they out-compress the fixed\nbound while converging — stepwise gives the best CR/accuracy trade (Fig. 5).\n"
	return &Result{Text: text}, nil
}

// runFig9 reproduces Fig. 9: table-wise EB configuration vs a fixed global
// EB — same accuracy, higher compression ratio (paper: up to 1.21x).
func runFig9(opts Options) (*Result, error) {
	var sb strings.Builder
	for _, spec := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		batch := spec.DefaultBatch
		if opts.Quick {
			batch = 128
		}
		// Fixed global EB = medium for all tables.
		global := adaptiveSpec(spec, opts, "none", 0, 1)
		// Table-wise EBs from the offline classification (run inside Build
		// over the standard warmed probe env).
		tableWise := adaptiveSpec(spec, opts, "none", 0, 1)
		tableWise.Classes = "offline"
		tableWise.OfflineBatch = batch
		tableWise.OfflineEB = float64(probeEB(spec))
		results, err := scenario.Sweep([]scenario.Spec{global, tableWise}, scenario.SweepOptions{})
		if err != nil {
			return nil, err
		}
		accG, crG := results[0].Accuracy, results[0].CompressionRatio
		accT, crT := results[1].Accuracy, results[1].CompressionRatio
		rows := [][]string{
			{"fixed-global-0.03", fmt.Sprintf("%.4f", accG), fmt.Sprintf("%.2f", crG), "-"},
			{"table-wise-L/M/S", fmt.Sprintf("%.4f", accT), fmt.Sprintf("%.2f", crT),
				fmt.Sprintf("%.2fx", crT/crG)},
		}
		fmt.Fprintf(&sb, "dataset %s\n%s\n", spec.Name, table([]string{"config", "accuracy", "CR", "CR gain"}, rows))
	}
	sb.WriteString("Paper: table-wise EBs keep accuracy intact and raise CR up to 1.21x on Kaggle.\n")
	return &Result{Text: sb.String()}, nil
}

// runFig10 reproduces Fig. 10: gradual stepwise decay from 2x/3x the base
// bound vs an abrupt drop — decay converges better and compresses more.
func runFig10(opts Options) (*Result, error) {
	phase := 150
	if opts.Quick {
		phase = 25
	}
	cases := []struct {
		name     string
		schedule string
		factor   float64
	}{
		{"decay_2x", "stepwise", 2},
		{"drop_2x", "drop", 2},
		{"decay_3x", "stepwise", 3},
		{"drop_3x", "drop", 3},
	}
	specs := make([]scenario.Spec, len(cases))
	for i, cse := range cases {
		specs[i] = adaptiveSpec(criteo.KaggleSpec(), opts, cse.schedule, phase, cse.factor)
	}
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, cse := range cases {
		rows = append(rows, []string{cse.name,
			fmt.Sprintf("%.4f", results[i].Accuracy),
			fmt.Sprintf("%.2f", results[i].CompressionRatio)})
	}
	text := table([]string{"strategy", "accuracy", "CR"}, rows) +
		"\nGradual decay tolerates a larger starting bound than an abrupt drop,\nyielding a further 1.09x/1.03x CR in the paper (1.32x/1.06x over fixed).\n"
	return &Result{Text: text}, nil
}
