package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestQuickSuiteParity pins the trainer-driving experiments to the
// quick-mode outputs they produced before the scenario-engine refactor
// (testdata/parity/<id>.txt, captured from the hand-rolled construction
// paths). Every one of these experiments now enumerates scenario.Specs
// through scenario.Sweep, and this test is the proof that the engine
// reproduces their numbers bit-for-bit. If an intentional model or
// calibration change shifts the numbers, regenerate the goldens by writing
// the new Run output over the files.
func TestQuickSuiteParity(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments")
	}
	ids := []string{"fig1", "fig5", "fig8", "fig9", "fig10", "fig12", "scaling", "overlap"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", "parity", id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Text != string(want) {
				t.Errorf("%s quick output drifted from the pre-scenario golden.\n--- got ---\n%s\n--- want ---\n%s", id, res.Text, want)
			}
		})
	}
}
