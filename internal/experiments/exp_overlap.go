package experiments

import (
	"fmt"
	"strings"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/scenario"
)

func init() {
	register("overlap", "Comm/compute overlap: pipelined vs synchronous schedule", runOverlap)
}

// runOverlap measures what the overlap engine recovers: it drives the
// trainer through dist.RunPipelined — identical math to a Step loop — and
// compares the serial schedule cost against the pipelined makespan, across
// overlapped-vs-not × flat/hierarchical topology × codec none/hybrid. The
// "recovered a2a" column reports the saving as a fraction of the embedding
// all-to-all time, the bucket the paper's Fig. 1 shows dominating: it is
// the share of the communication bottleneck the schedule hides under
// compute. The hybrid codec shrinks the wire time toward the latency
// floor, so its absolute win is smaller but the recovered fraction stays
// high; the hierarchical topology splits traffic across two links the
// timeline can keep busy simultaneously.
func runOverlap(opts Options) (*Result, error) {
	rankSweep := []int{8, 32, 64}
	steps, batch := 3, 2048
	if opts.Quick {
		rankSweep = []int{8, 32}
		steps, batch = 2, 256
	}
	const ranksPerNode = 4
	base := criteo.TerabyteSpec()
	eb := probeEB(base)

	mk := func(ranks int, hier, compressed bool) scenario.Spec {
		sp := timingSpec(base, opts)
		sp.Ranks, sp.Batch, sp.Steps = ranks, batch, steps
		sp.Overlap = true
		if hier {
			sp.Topology, sp.RanksPerNode = "hier", ranksPerNode
		}
		if compressed {
			sp.Codec, sp.ErrorBound = "hybrid", float64(eb)
		}
		return sp
	}
	// Cell order: ranks ▸ topology ▸ codec, matching the row loop below.
	var specs []scenario.Spec
	for _, ranks := range rankSweep {
		for _, hier := range []bool{false, true} {
			for _, compressed := range []bool{false, true} {
				specs = append(specs, mk(ranks, hier, compressed))
			}
		}
	}
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}

	var rows [][]string
	type verdict struct {
		ranks   int
		codec   string
		speedup float64
	}
	var checks []verdict
	idx := 0
	for _, ranks := range rankSweep {
		for _, hier := range []bool{false, true} {
			for _, compressed := range []bool{false, true} {
				res := results[idx]
				idx++
				a2a := a2aTime(res.SimTime)
				speedup := float64(res.SerialSimTime) / float64(res.OverlappedSimTime)
				recovered := 0.0
				if a2a > 0 {
					recovered = float64(res.SerialSimTime-res.OverlappedSimTime) / float64(a2a)
				}
				topo, codecName, crCell := "flat", "none", "-"
				if hier {
					topo = "hier"
				}
				if compressed {
					codecName = "hybrid"
					crCell = fmt.Sprintf("%.1f", res.CompressionRatio)
				}
				if hier {
					checks = append(checks, verdict{ranks, codecName, speedup})
				}
				rows = append(rows, []string{
					fmt.Sprintf("%d", ranks),
					topo,
					codecName,
					crCell,
					res.SerialSimTime.Round(time.Microsecond).String(),
					res.OverlappedSimTime.Round(time.Microsecond).String(),
					fmt.Sprintf("%.2fx", speedup),
					fmt.Sprintf("%.1f%%", 100*float64(a2a)/float64(res.SerialSimTime)),
					fmt.Sprintf("%.1f%%", 100*recovered),
				})
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "comm/compute overlap sweep, global batch %d, %d steps/run, %d ranks/node (hier), eb %v\n",
		batch, steps, ranksPerNode, eb)
	sb.WriteString("sync = every component serial; overlap = fwd a2a of batch k+1 pipelined behind MLP of batch k\n")
	sb.WriteString("recovered-a2a = (sync - overlap) / a2a: the share of all-to-all time hidden under compute\n\n")
	sb.WriteString(table(
		[]string{"ranks", "topo", "codec", "CR", "sync-e2e", "overlap-e2e", "speedup", "a2a-share", "recovered-a2a"},
		rows))
	// The acceptance gate: the overlapped schedule is strictly faster on
	// the hierarchical topology, with and without the codec (every swept
	// rank count is >= 8).
	ok := true
	for _, c := range checks {
		if c.speedup <= 1.0 {
			ok = false
			fmt.Fprintf(&sb, "\nviolation: %s at %d ranks (hier): overlap not faster (%.3fx)", c.codec, c.ranks, c.speedup)
		}
	}
	if ok {
		sb.WriteString("\ncheck: overlapped e2e strictly below synchronous at 8+ ranks on hier (codec none and hybrid): PASS\n")
	} else {
		sb.WriteString("\ncheck: overlapped e2e strictly below synchronous at 8+ ranks on hier (codec none and hybrid): FAIL\n")
	}
	return &Result{Text: sb.String()}, nil
}
