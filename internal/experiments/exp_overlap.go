package experiments

import (
	"fmt"
	"strings"
	"time"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

func init() {
	register("overlap", "Comm/compute overlap: pipelined vs synchronous schedule", runOverlap)
}

// overlapRun is one cell of the sweep: the same trained steps costed under
// the serial schedule and the pipelined (double-buffered) schedule.
type overlapRun struct {
	serial     time.Duration
	overlapped time.Duration
	a2a        time.Duration
	cr         float64
}

// runOverlap measures what the overlap engine recovers: it drives the
// trainer through dist.RunPipelined — identical math to a Step loop — and
// compares the serial schedule cost against the pipelined makespan, across
// overlapped-vs-not × flat/hierarchical topology × codec none/hybrid. The
// "recovered a2a" column reports the saving as a fraction of the embedding
// all-to-all time, the bucket the paper's Fig. 1 shows dominating: it is
// the share of the communication bottleneck the schedule hides under
// compute. The hybrid codec shrinks the wire time toward the latency
// floor, so its absolute win is smaller but the recovered fraction stays
// high; the hierarchical topology splits traffic across two links the
// timeline can keep busy simultaneously.
func runOverlap(opts Options) (*Result, error) {
	rankSweep := []int{8, 32, 64}
	steps, batch := 3, 2048
	if opts.Quick {
		rankSweep = []int{8, 32}
		steps, batch = 2, 256
	}
	const ranksPerNode = 4
	base := criteo.TerabyteSpec()
	spec := criteo.ScaledSpec(base, datasetScale(opts.Quick))
	eb := probeEB(base)

	run := func(ranks int, hier, compressed bool) (overlapRun, error) {
		gen := criteo.NewGenerator(spec)
		o := dist.Options{
			Ranks:              ranks,
			Model:              timingModelConfig(spec, opts.Quick),
			Device:             paperDevice(),
			OtherComputeFactor: 0.8,
		}
		if hier {
			o.Net = netmodel.PaperHierarchical(ranksPerNode)
		} else {
			o.Net = paperNetwork()
		}
		if compressed {
			o.CodecFor = func(int) codec.Codec { return hybrid.New(eb, hybrid.Auto) }
		}
		tr, err := dist.NewTrainer(o)
		if err != nil {
			return overlapRun{}, err
		}
		if _, err := tr.RunPipelined(steps, func(int) *criteo.Batch { return gen.NextBatch(batch) }); err != nil {
			return overlapRun{}, err
		}
		bd := profileutil.Breakdown(tr.Cluster().SimTimes())
		return overlapRun{
			serial:     tr.SerialSimTime(),
			overlapped: tr.OverlappedSimTime(),
			a2a:        a2aTime(bd),
			cr:         tr.CompressionRatio(),
		}, nil
	}

	var rows [][]string
	type verdict struct {
		ranks   int
		codec   string
		speedup float64
	}
	var checks []verdict
	for _, ranks := range rankSweep {
		for _, hier := range []bool{false, true} {
			for _, compressed := range []bool{false, true} {
				res, err := run(ranks, hier, compressed)
				if err != nil {
					return nil, fmt.Errorf("ranks %d hier=%v compressed=%v: %w", ranks, hier, compressed, err)
				}
				speedup := float64(res.serial) / float64(res.overlapped)
				recovered := 0.0
				if res.a2a > 0 {
					recovered = float64(res.serial-res.overlapped) / float64(res.a2a)
				}
				topo, codecName, crCell := "flat", "none", "-"
				if hier {
					topo = "hier"
				}
				if compressed {
					codecName = "hybrid"
					crCell = fmt.Sprintf("%.1f", res.cr)
				}
				if hier {
					checks = append(checks, verdict{ranks, codecName, speedup})
				}
				rows = append(rows, []string{
					fmt.Sprintf("%d", ranks),
					topo,
					codecName,
					crCell,
					res.serial.Round(time.Microsecond).String(),
					res.overlapped.Round(time.Microsecond).String(),
					fmt.Sprintf("%.2fx", speedup),
					fmt.Sprintf("%.1f%%", 100*float64(res.a2a)/float64(res.serial)),
					fmt.Sprintf("%.1f%%", 100*recovered),
				})
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "comm/compute overlap sweep, global batch %d, %d steps/run, %d ranks/node (hier), eb %v\n",
		batch, steps, ranksPerNode, eb)
	sb.WriteString("sync = every component serial; overlap = fwd a2a of batch k+1 pipelined behind MLP of batch k\n")
	sb.WriteString("recovered-a2a = (sync - overlap) / a2a: the share of all-to-all time hidden under compute\n\n")
	sb.WriteString(table(
		[]string{"ranks", "topo", "codec", "CR", "sync-e2e", "overlap-e2e", "speedup", "a2a-share", "recovered-a2a"},
		rows))
	// The acceptance gate: the overlapped schedule is strictly faster on
	// the hierarchical topology, with and without the codec (every swept
	// rank count is >= 8).
	ok := true
	for _, c := range checks {
		if c.speedup <= 1.0 {
			ok = false
			fmt.Fprintf(&sb, "\nviolation: %s at %d ranks (hier): overlap not faster (%.3fx)", c.codec, c.ranks, c.speedup)
		}
	}
	if ok {
		sb.WriteString("\ncheck: overlapped e2e strictly below synchronous at 8+ ranks on hier (codec none and hybrid): PASS\n")
	} else {
		sb.WriteString("\ncheck: overlapped e2e strictly below synchronous at 8+ ranks on hier (codec none and hybrid): FAIL\n")
	}
	return &Result{Text: sb.String()}, nil
}
