package experiments

import (
	"strings"
	"testing"
)

// The training-loop experiments are heavier; they run in quick mode and are
// skipped under -short.

func TestFig8AccuracyMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "fig8")
	for _, m := range []string{"fp32-baseline", "fp16", "fp8-e4m3", "ours-eb0.02"} {
		if !strings.Contains(res.Text, m) {
			t.Fatalf("fig8 missing %s:\n%s", m, res.Text)
		}
	}
}

func TestFig5DecayFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "fig5")
	for _, s := range []string{"none", "linear", "logarithmic", "stepwise"} {
		if !strings.Contains(res.Text, s) {
			t.Fatalf("fig5 missing %s:\n%s", s, res.Text)
		}
	}
}

func TestFig9TableWise(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "fig9")
	if !strings.Contains(res.Text, "table-wise-L/M/S") {
		t.Fatalf("fig9 text:\n%s", res.Text)
	}
}

func TestFig10DecayVsDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "fig10")
	for _, s := range []string{"decay_2x", "drop_2x", "decay_3x", "drop_3x"} {
		if !strings.Contains(res.Text, s) {
			t.Fatalf("fig10 missing %s:\n%s", s, res.Text)
		}
	}
}

func TestFig12EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "fig12")
	if !strings.Contains(res.Text, "end-to-end speedup") {
		t.Fatalf("fig12 text:\n%s", res.Text)
	}
}

// TestScalingSweep guards the scale claim of the topology refactor: the
// hierarchical two-phase all-to-all must be at least as fast as the flat
// model end-to-end at 32+ ranks once the hybrid codec shrinks payloads, and
// the sweep must cover the full 4→128 range.
func TestScalingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "scaling")
	for _, tok := range []string{"ranks", "hier-intra-share", "4", "128"} {
		if !strings.Contains(res.Text, tok) {
			t.Fatalf("scaling missing %q:\n%s", tok, res.Text)
		}
	}
	if !strings.Contains(res.Text, "hybrid codec: PASS") {
		t.Fatalf("hierarchical-vs-flat guarantee violated:\n%s", res.Text)
	}
}

// TestOverlapSweep guards the overlap engine's acceptance claim: the
// pipelined schedule must finish strictly below the synchronous one at 8+
// ranks on the hierarchical topology with and without the hybrid codec
// (the experiment embeds the verdict in its check line).
func TestOverlapSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := runOK(t, "overlap")
	for _, tok := range []string{"recovered-a2a", "hier", "hybrid", "8"} {
		if !strings.Contains(res.Text, tok) {
			t.Fatalf("overlap missing %q:\n%s", tok, res.Text)
		}
	}
	if !strings.Contains(res.Text, "codec none and hybrid): PASS") {
		t.Fatalf("overlap-vs-synchronous guarantee violated:\n%s", res.Text)
	}
}
