package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/scenario"
	"dlrmcomp/internal/serve"
)

func init() {
	register("loadtest", "Serving load: Zipf hot-row cache over compressed cold tiers", runLoadtest)
}

// runLoadtest exercises the train→serve handoff end to end: train a small
// scenario, export the DLCK checkpoint, load it into the sharded serving
// layer under each cold-tier codec, and drive a closed-loop Zipf workload
// through the micro-batching Score path. The table reports, per codec, the
// steady-state hot-cache hit rate, throughput, latency percentiles, the
// cold tier's capacity multiplier, and the maximum score deviation from an
// uncompressed uncached reference server — zero for the lossless codecs
// (serving is bit-identical under compression and caching), bounded by the
// quantization error for "quant", which is the mode that actually shrinks
// resident memory (lossless codecs cannot compress trained float32 rows).
func runLoadtest(opts Options) (*Result, error) {
	steps, requests, clients := 60, 20000, 8
	if opts.Quick {
		steps, requests, clients = 10, 2000, 4
	}

	sp := scenario.Spec{
		Name: "loadtest", Dataset: "kaggle", Scale: 400, Dim: 16,
		Ranks: 4, Steps: steps,
	}
	built, err := sp.Build()
	if err != nil {
		return nil, err
	}
	if _, err := built.Run(); err != nil {
		return nil, err
	}
	var ckpt bytes.Buffer
	stats, err := built.Trainer.SaveCheckpoint(&ckpt, dist.CheckpointOptions{})
	if err != nil {
		return nil, err
	}
	rs, err := sp.Resolved()
	if err != nil {
		return nil, err
	}

	// The request stream replays the generator's Zipf-skewed traffic.
	gen := criteo.NewGenerator(rs.Data())
	type request struct {
		dense []float32
		idx   []int32
	}
	reqs := make([]request, requests)
	for i := range reqs {
		b := gen.NextBatch(1)
		idx := make([]int32, len(b.Indices))
		for t := range b.Indices {
			idx[t] = b.Indices[t][0]
		}
		reqs[i] = request{dense: b.Dense.Row(0), idx: idx}
	}

	// Reference scores: uncompressed cold tier, no cache, synchronous.
	ref, err := serve.New(rs.ModelConfig(), bytes.NewReader(ckpt.Bytes()), serve.Options{HotBytes: -1})
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	want := make([]float32, len(reqs))
	for i, r := range reqs {
		if want[i], err = ref.Score(r.dense, r.idx); err != nil {
			return nil, err
		}
	}

	cases := []struct {
		label string
		opts  serve.Options
	}{
		{"raw", serve.Options{Shards: 2}},
		{"lzss", serve.Options{Shards: 2, ColdCodec: "lzss"}},
		{"deflate", serve.Options{Shards: 2, ColdCodec: "deflate"}},
		{"quant eb=0.02", serve.Options{Shards: 2, ColdCodec: "quant", QuantEB: 0.02}},
	}
	var rows [][]string
	var b strings.Builder
	for _, tc := range cases {
		srv, err := serve.New(rs.ModelConfig(), bytes.NewReader(ckpt.Bytes()), tc.opts)
		if err != nil {
			return nil, err
		}
		warmN := min(len(reqs), 1024)
		for _, r := range reqs[:warmN] {
			if _, err := srv.Score(r.dense, r.idx); err != nil {
				srv.Close()
				return nil, err
			}
		}
		warm := srv.Stats()

		lats := make([]int64, len(reqs))
		var next atomic.Int64
		var maxDeltaBits atomic.Uint64
		errc := make(chan error, clients)
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(reqs)) {
						return
					}
					t0 := time.Now()
					score, err := srv.Score(reqs[i].dense, reqs[i].idx)
					if err != nil {
						errc <- err
						return
					}
					lats[i] = int64(time.Since(t0))
					d := math.Abs(float64(score - want[i]))
					for {
						cur := maxDeltaBits.Load()
						if d <= math.Float64frombits(cur) || maxDeltaBits.CompareAndSwap(cur, math.Float64bits(d)) {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errc)
		for err := range errc {
			srv.Close()
			return nil, err
		}

		st := srv.Stats()
		srv.Close()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			return time.Duration(lats[int(p*float64(len(lats)-1))]).Round(time.Microsecond)
		}
		hits, misses := st.Hits-warm.Hits, st.Misses-warm.Misses
		hitRate := float64(hits) / float64(hits+misses)
		rows = append(rows, []string{
			tc.label,
			fmt.Sprintf("%.4f", hitRate),
			fmt.Sprintf("%.0f", float64(len(reqs))/elapsed.Seconds()),
			pct(0.50).String(),
			pct(0.99).String(),
			fmt.Sprintf("%.2fx", st.ColdRatio()),
			fmt.Sprintf("%d", st.HotBytes+st.ColdBytes),
			fmt.Sprintf("%.2e", math.Float64frombits(maxDeltaBits.Load())),
		})
	}

	fmt.Fprintf(&b, "checkpoint: %d -> %d bytes (%.2fx, codec %s); %d requests, %d clients per codec\n\n",
		stats.RawBytes, stats.WireBytes, stats.Ratio(), dist.DefaultCheckpointCodec, requests, clients)
	b.WriteString(table(
		[]string{"cold codec", "hit rate", "qps", "p50", "p99", "cold tier", "resident B", "max |Δscore|"},
		rows,
	))
	b.WriteString("\nlossless codecs serve bit-identical scores (Δ = 0); quant trades a bounded\n" +
		"score deviation for the only cold tier that actually compresses trained rows.\n")
	return &Result{Text: b.String()}, nil
}
