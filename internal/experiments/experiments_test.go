package experiments

import (
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true} }

func runOK(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || res.Text == "" {
		t.Fatalf("%s: empty result", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15",
		"table1", "table2", "table3", "table4", "table5", "table6",
		"overlap", "scaling"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestFig6(t *testing.T) {
	res := runOK(t, "fig6")
	if !strings.Contains(res.Text, "10131227") {
		t.Fatal("fig6 missing the largest Kaggle table")
	}
}

func TestFig4(t *testing.T) {
	res := runOK(t, "fig4")
	if !strings.Contains(res.Text, "false prediction") {
		t.Fatalf("fig4 text:\n%s", res.Text)
	}
}

func TestTable3RanksAscending(t *testing.T) {
	res := runOK(t, "table3")
	if !strings.Contains(res.Text, "TAB. ID") {
		t.Fatalf("table3 text:\n%s", res.Text)
	}
}

func TestTable2HasAllTables(t *testing.T) {
	res := runOK(t, "table2")
	for _, tok := range []string{"kaggle", "terabyte", "counts:"} {
		if !strings.Contains(res.Text, tok) {
			t.Fatalf("table2 missing %q:\n%s", tok, res.Text)
		}
	}
}

func TestTable6WindowSweep(t *testing.T) {
	res := runOK(t, "table6")
	if !strings.Contains(res.Text, "w=255") {
		t.Fatalf("table6 text:\n%s", res.Text)
	}
	// Window 32 column is the 1.00x baseline.
	if !strings.Contains(res.Text, "1.00x") {
		t.Fatalf("missing normalized baseline:\n%s", res.Text)
	}
}

func TestFig15(t *testing.T) {
	res := runOK(t, "fig15")
	if !strings.Contains(res.Text, "16 chunks") {
		t.Fatalf("fig15 text:\n%s", res.Text)
	}
}

func TestFig11ComparesCompressors(t *testing.T) {
	res := runOK(t, "fig11")
	for _, name := range []string{"ours-hybrid", "cusz-like", "fz-gpu-like", "lz4-like", "deflate"} {
		if !strings.Contains(res.Text, name) {
			t.Fatalf("fig11 missing %s:\n%s", name, res.Text)
		}
	}
}

func TestFig1BreakdownDominatedByA2A(t *testing.T) {
	res := runOK(t, "fig1")
	if !strings.Contains(res.Text, "all-to-all share") {
		t.Fatalf("fig1 text:\n%s", res.Text)
	}
}

func TestFig13(t *testing.T) {
	res := runOK(t, "fig13")
	if !strings.Contains(res.Text, "CR vlz") {
		t.Fatalf("fig13 text:\n%s", res.Text)
	}
}

func TestFig14(t *testing.T) {
	res := runOK(t, "fig14")
	if !strings.Contains(res.Text, "phase") {
		t.Fatalf("fig14 text:\n%s", res.Text)
	}
}

func TestTable1(t *testing.T) {
	res := runOK(t, "table1")
	if !strings.Contains(res.Text, "false-pred") {
		t.Fatalf("table1 text:\n%s", res.Text)
	}
}
