package experiments

import (
	"fmt"
	"strings"
	"time"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

func init() {
	register("scaling", "Topology scaling: flat vs hierarchical all-to-all, 4→128 ranks", runScaling)
}

// a2aTime sums a breakdown's embedding all-to-all buckets across both the
// flat label and the per-link split a hierarchical topology produces.
func a2aTime(bd profileutil.Breakdown) time.Duration {
	var t time.Duration
	for _, label := range []string{
		"fwd-a2a", "fwd-a2a-intra", "fwd-a2a-inter",
		"bwd-a2a", "bwd-a2a-intra", "bwd-a2a-inter",
	} {
		t += bd[label]
	}
	return t
}

// scalingRun is one cell of the sweep.
type scalingRun struct {
	total time.Duration
	a2a   time.Duration
	intra time.Duration
	cr    float64
}

// runScaling asks the scale questions the flat model cannot: it sweeps the
// rank count 4→128 at a fixed global batch (strong scaling) and compares
// the flat single-link topology against the hierarchical two-level model
// (4 ranks/node, two-phase all-to-all), with and without the hybrid codec.
// The hierarchical model routes intra-node traffic over the NVLink-class
// link and aggregates cross-node traffic per NIC, so its advantage grows as
// compression shrinks payloads toward the latency floor; the intra share
// column shows intra-node traffic ceasing to matter as the node count
// grows.
func runScaling(opts Options) (*Result, error) {
	rankSweep := []int{4, 8, 16, 32, 64, 128}
	steps, batch := 3, 2048
	if opts.Quick {
		rankSweep = []int{4, 8, 32, 64, 128}
		steps, batch = 2, 256
	}
	const ranksPerNode = 4
	base := criteo.TerabyteSpec()
	spec := criteo.ScaledSpec(base, datasetScale(opts.Quick))
	eb := probeEB(base)

	run := func(ranks int, hier, compressed bool) (scalingRun, error) {
		gen := criteo.NewGenerator(spec)
		o := dist.Options{
			Ranks:              ranks,
			Model:              timingModelConfig(spec, opts.Quick),
			Device:             paperDevice(),
			OtherComputeFactor: 0.8,
		}
		if hier {
			o.Net = netmodel.PaperHierarchical(ranksPerNode)
		} else {
			o.Net = paperNetwork()
		}
		if compressed {
			o.CodecFor = func(int) codec.Codec { return hybrid.New(eb, hybrid.Auto) }
		}
		tr, err := dist.NewTrainer(o)
		if err != nil {
			return scalingRun{}, err
		}
		bd, err := runTimed(tr, gen, steps, batch)
		if err != nil {
			return scalingRun{}, err
		}
		return scalingRun{
			total: bd.Total(),
			a2a:   a2aTime(bd),
			intra: bd["fwd-a2a-intra"] + bd["bwd-a2a-intra"],
			cr:    tr.CompressionRatio(),
		}, nil
	}

	var rows [][]string
	type verdict struct {
		ranks   int
		speedup float64
	}
	var checks []verdict
	for _, ranks := range rankSweep {
		for _, compressed := range []bool{false, true} {
			flat, err := run(ranks, false, compressed)
			if err != nil {
				return nil, fmt.Errorf("ranks %d flat: %w", ranks, err)
			}
			hier, err := run(ranks, true, compressed)
			if err != nil {
				return nil, fmt.Errorf("ranks %d hierarchical: %w", ranks, err)
			}
			e2e := float64(flat.total) / float64(hier.total)
			comm := float64(flat.a2a) / float64(hier.a2a)
			intraShare := 0.0
			if hier.a2a > 0 {
				intraShare = float64(hier.intra) / float64(hier.a2a)
			}
			name := "none"
			crCell := "-"
			if compressed {
				name = "hybrid"
				crCell = fmt.Sprintf("%.1f", hier.cr)
				checks = append(checks, verdict{ranks, e2e})
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", ranks),
				fmt.Sprintf("%d", (ranks+ranksPerNode-1)/ranksPerNode),
				name,
				crCell,
				flat.total.Round(time.Microsecond).String(),
				hier.total.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", e2e),
				fmt.Sprintf("%.2fx", comm),
				fmt.Sprintf("%.1f%%", 100*intraShare),
			})
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "strong scaling sweep, global batch %d, %d steps/run, %d ranks/node, eb %v\n",
		batch, steps, ranksPerNode, eb)
	sb.WriteString("flat = single α-β link, direct all-to-all; hier = two-level topology, two-phase all-to-all\n\n")
	sb.WriteString(table(
		[]string{"ranks", "nodes", "codec", "CR", "flat-e2e", "hier-e2e", "e2e-speedup", "a2a-speedup", "hier-intra-share"},
		rows))
	// The paper-shape claim this sweep guards: once compression shrinks
	// payloads toward the latency floor, staging through node leaders pays
	// off at scale.
	ok := true
	for _, c := range checks {
		if c.ranks >= 32 && c.speedup < 0.999 {
			ok = false
			fmt.Fprintf(&sb, "\nviolation: hybrid at %d ranks: hierarchical slower than flat (%.3fx)", c.ranks, c.speedup)
		}
	}
	if ok {
		sb.WriteString("\ncheck: hierarchical >= flat end-to-end at 32+ ranks with the hybrid codec: PASS\n")
	} else {
		sb.WriteString("\ncheck: hierarchical >= flat end-to-end at 32+ ranks with the hybrid codec: FAIL\n")
	}
	return &Result{Text: sb.String()}, nil
}
