package experiments

import (
	"fmt"
	"strings"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/profileutil"
	"dlrmcomp/internal/scenario"
)

func init() {
	register("scaling", "Topology scaling: flat vs hierarchical all-to-all, 4→128 ranks", runScaling)
}

// a2aTime sums a breakdown's embedding all-to-all buckets across both the
// flat label and the per-link split a hierarchical topology produces.
func a2aTime(bd profileutil.Breakdown) time.Duration {
	var t time.Duration
	for _, label := range []string{
		"fwd-a2a", "fwd-a2a-intra", "fwd-a2a-inter",
		"bwd-a2a", "bwd-a2a-intra", "bwd-a2a-inter",
	} {
		t += bd[label]
	}
	return t
}

// runScaling asks the scale questions the flat model cannot: it sweeps the
// rank count 4→128 at a fixed global batch (strong scaling) and compares
// the flat single-link topology against the hierarchical two-level model
// (4 ranks/node, two-phase all-to-all), with and without the hybrid codec.
// The hierarchical model routes intra-node traffic over the NVLink-class
// link and aggregates cross-node traffic per NIC, so its advantage grows as
// compression shrinks payloads toward the latency floor; the intra share
// column shows intra-node traffic ceasing to matter as the node count
// grows.
func runScaling(opts Options) (*Result, error) {
	rankSweep := []int{4, 8, 16, 32, 64, 128}
	steps, batch := 3, 2048
	if opts.Quick {
		rankSweep = []int{4, 8, 32, 64, 128}
		steps, batch = 2, 256
	}
	const ranksPerNode = 4
	base := criteo.TerabyteSpec()
	eb := probeEB(base)

	mk := func(ranks int, hier, compressed bool) scenario.Spec {
		sp := timingSpec(base, opts)
		sp.Ranks, sp.Batch, sp.Steps = ranks, batch, steps
		if hier {
			sp.Topology, sp.RanksPerNode = "hier", ranksPerNode
		}
		if compressed {
			sp.Codec, sp.ErrorBound = "hybrid", float64(eb)
		}
		return sp
	}
	// Cell order: ranks ▸ codec ▸ {flat, hier} — the pairing the row
	// construction below indexes into.
	var specs []scenario.Spec
	for _, ranks := range rankSweep {
		for _, compressed := range []bool{false, true} {
			specs = append(specs, mk(ranks, false, compressed), mk(ranks, true, compressed))
		}
	}
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}

	var rows [][]string
	type verdict struct {
		ranks   int
		speedup float64
	}
	var checks []verdict
	idx := 0
	for _, ranks := range rankSweep {
		for _, compressed := range []bool{false, true} {
			flat, hier := results[idx], results[idx+1]
			idx += 2
			flatTotal := flat.SimTime.Total()
			hierTotal := hier.SimTime.Total()
			hierA2A := a2aTime(hier.SimTime)
			e2e := float64(flatTotal) / float64(hierTotal)
			comm := float64(a2aTime(flat.SimTime)) / float64(hierA2A)
			intraShare := 0.0
			if hierA2A > 0 {
				intra := hier.SimTime["fwd-a2a-intra"] + hier.SimTime["bwd-a2a-intra"]
				intraShare = float64(intra) / float64(hierA2A)
			}
			name := "none"
			crCell := "-"
			if compressed {
				name = "hybrid"
				crCell = fmt.Sprintf("%.1f", hier.CompressionRatio)
				checks = append(checks, verdict{ranks, e2e})
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", ranks),
				fmt.Sprintf("%d", (ranks+ranksPerNode-1)/ranksPerNode),
				name,
				crCell,
				flatTotal.Round(time.Microsecond).String(),
				hierTotal.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", e2e),
				fmt.Sprintf("%.2fx", comm),
				fmt.Sprintf("%.1f%%", 100*intraShare),
			})
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "strong scaling sweep, global batch %d, %d steps/run, %d ranks/node, eb %v\n",
		batch, steps, ranksPerNode, eb)
	sb.WriteString("flat = single α-β link, direct all-to-all; hier = two-level topology, two-phase all-to-all\n\n")
	sb.WriteString(table(
		[]string{"ranks", "nodes", "codec", "CR", "flat-e2e", "hier-e2e", "e2e-speedup", "a2a-speedup", "hier-intra-share"},
		rows))
	// The paper-shape claim this sweep guards: once compression shrinks
	// payloads toward the latency floor, staging through node leaders pays
	// off at scale.
	ok := true
	for _, c := range checks {
		if c.ranks >= 32 && c.speedup < 0.999 {
			ok = false
			fmt.Fprintf(&sb, "\nviolation: hybrid at %d ranks: hierarchical slower than flat (%.3fx)", c.ranks, c.speedup)
		}
	}
	if ok {
		sb.WriteString("\ncheck: hierarchical >= flat end-to-end at 32+ ranks with the hybrid codec: PASS\n")
	} else {
		sb.WriteString("\ncheck: hierarchical >= flat end-to-end at 32+ ranks with the hybrid codec: FAIL\n")
	}
	return &Result{Text: sb.String()}, nil
}
