package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/fzgpulike"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/scenario"
	"dlrmcomp/internal/vlz"
)

func init() {
	register("fig11", "Compression ratio, throughput, and communication speedup", runFig11)
	register("table5", "Per-table compression ratio of all compressors", runTable5)
	register("table6", "Vector-LZ window-size sweep", runTable6)
	register("fig13", "Data features of two representative EMB tables", runFig13)
	register("fig14", "Lookup distribution across training phases", runFig14)
	register("fig15", "Buffer optimization speedup", runFig15)
	register("fig4", "Vector homogenization and false prediction", runFig4)
	register("table1", "Characteristics of representative EMB tables", runTable1)
}

// codecSet returns the comparison set of Fig. 11 / Table V with the paper's
// per-dataset probe error bound.
func codecSet(eb float32) []codec.Codec {
	return []codec.Codec{
		cuszlike.New(eb, cuszlike.Lorenzo1D),
		fzgpulike.New(eb),
		hybrid.New(eb, hybrid.VectorLZ),
		hybrid.New(eb, hybrid.Entropy),
		lz4like.LZSSCodec{},
		lz4like.DeflateCodec{},
		hybrid.New(eb, hybrid.Auto),
	}
}

func probeEB(spec criteo.Spec) float32 {
	if spec.DefaultBatch >= 2048 || strings.HasPrefix(spec.Name, "terabyte") {
		return 0.005
	}
	return 0.01
}

// runFig11 reproduces Fig. 11: average compression ratio, measured Go
// throughput, paper-calibrated throughput, and the Eq. (2) all-to-all
// speedup at 4 GB/s for every compressor on both datasets.
func runFig11(opts Options) (*Result, error) {
	var sb strings.Builder
	rates := netmodel.PaperCodecRates()
	for _, spec := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		e, err := expSpec(spec, 16, opts).BuildEnv()
		if err != nil {
			return nil, err
		}
		batch := spec.DefaultBatch
		if opts.Quick {
			batch = 256
		}
		eb := probeEB(spec)

		var rows [][]string
		for _, c := range codecSet(eb) {
			// Per-table compression, aggregated over the dataset (the
			// pipeline compresses each table's block separately).
			var rawBytes, wireBytes int64
			var compDur, decompDur time.Duration
			samples, _ := e.SampleLookups(batch)
			for _, sample := range samples {
				start := time.Now()
				frame, err := c.Compress(sample, e.Dim)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", c.Name(), err)
				}
				compDur += time.Since(start)
				start = time.Now()
				if _, _, err := c.Decompress(frame); err != nil {
					return nil, fmt.Errorf("%s: %w", c.Name(), err)
				}
				decompDur += time.Since(start)
				rawBytes += int64(len(sample) * 4)
				wireBytes += int64(len(frame))
			}
			cr := float64(rawBytes) / float64(wireBytes)
			goTc := float64(rawBytes) / compDur.Seconds()
			goTd := float64(rawBytes) / decompDur.Seconds()
			calib := rates[c.Name()]
			sp := hybrid.Speedup(cr, 4e9, hybrid.Throughput{Compress: calib.Compress, Decompress: calib.Decompress})
			rows = append(rows, []string{
				c.Name(),
				fmt.Sprintf("%.2f", cr),
				fmt.Sprintf("%.2f/%.2f", goTc/1e9, goTd/1e9),
				fmt.Sprintf("%.1f/%.1f", calib.Compress/1e9, calib.Decompress/1e9),
				fmt.Sprintf("%.2fx", sp),
			})
		}
		fmt.Fprintf(&sb, "dataset %s (batch %d, eb %.3g)\n", spec.Name, batch, eb)
		sb.WriteString(table([]string{"compressor", "CR", "Go GB/s c/d", "calib GB/s c/d", "a2a speedup@4GB/s"}, rows))
		sb.WriteByte('\n')
	}
	return &Result{Text: sb.String()}, nil
}

// runTable5 reproduces Table V: per-table compression ratios per compressor
// on both datasets, with the hybrid column taking the per-table best.
func runTable5(opts Options) (*Result, error) {
	var sb strings.Builder
	for _, spec := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		e, err := expSpec(spec, 16, opts).BuildEnv()
		if err != nil {
			return nil, err
		}
		batch := spec.DefaultBatch
		if opts.Quick {
			batch = 128
		}
		eb := probeEB(spec)
		codecs := []codec.Codec{
			cuszlike.New(eb, cuszlike.Lorenzo1D),
			fzgpulike.New(eb),
			hybrid.New(eb, hybrid.VectorLZ),
			hybrid.New(eb, hybrid.Entropy),
			lz4like.LZSSCodec{},
			lz4like.DeflateCodec{},
			hybrid.New(eb, hybrid.Auto),
		}
		samples, _ := e.SampleLookups(batch)
		var rows [][]string
		sums := make([]float64, len(codecs))
		for t, sample := range samples {
			row := []string{fmt.Sprintf("%d", t)}
			best := 0.0
			bestCol := -1
			crs := make([]float64, len(codecs))
			for ci, c := range codecs {
				frame, err := c.Compress(sample, e.Dim)
				if err != nil {
					return nil, err
				}
				crs[ci] = codec.Ratio(len(sample), frame)
				sums[ci] += crs[ci]
				if crs[ci] > best {
					best, bestCol = crs[ci], ci
				}
			}
			for ci, cr := range crs {
				cell := fmt.Sprintf("%.2f", cr)
				if ci == bestCol {
					cell += "*"
				}
				row = append(row, cell)
			}
			rows = append(rows, row)
		}
		avg := []string{"avg"}
		for _, s := range sums {
			avg = append(avg, fmt.Sprintf("%.2f", s/float64(len(samples))))
		}
		rows = append(rows, avg)
		header := []string{"tab"}
		for _, c := range codecs {
			header = append(header, c.Name())
		}
		fmt.Fprintf(&sb, "dataset %s (batch %d, eb %.3g; * = best)\n", spec.Name, batch, eb)
		sb.WriteString(table(header, rows))
		sb.WriteByte('\n')
	}
	return &Result{Text: sb.String()}, nil
}

// runTable6 reproduces Table VI: vector-LZ compression-ratio improvement as
// the window grows 32 → 255, normalized to window 32.
func runTable6(opts Options) (*Result, error) {
	var sb strings.Builder
	windows := []int{32, 64, 128, 255}
	for _, spec := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		e, err := expSpec(spec, 16, opts).BuildEnv()
		if err != nil {
			return nil, err
		}
		batch := spec.DefaultBatch
		if opts.Quick {
			batch = 512
		}
		// Probe with a tight bound so distinct vectors stay distinct and
		// the window size (not homogenization) is what limits matching —
		// the regime of the paper's Table VI.
		eb := probeEB(spec) / 20
		samples, _ := e.SampleLookups(batch)

		base := 0.0
		row := []string{spec.Name}
		for _, w := range windows {
			var rawBytes, wireBytes int64
			for _, sample := range samples {
				codes := make([]int32, len(sample))
				quant.New(eb).Quantize(codes, sample)
				frame, err := vlz.New(w).Encode(codes, e.Dim)
				if err != nil {
					return nil, err
				}
				rawBytes += int64(len(sample) * 4)
				wireBytes += int64(len(frame))
			}
			cr := float64(rawBytes) / float64(wireBytes)
			if base == 0 {
				base = cr
			}
			row = append(row, fmt.Sprintf("%.2fx", cr/base))
		}
		sb.WriteString(table([]string{"dataset", "w=32", "w=64", "w=128", "w=255"}, [][]string{row}))
		sb.WriteByte('\n')
	}
	return &Result{Text: sb.String()}, nil
}

// runFig13 reproduces Fig. 13: matched-pattern counts and value-distribution
// shape for two representative Terabyte tables — one entropy-friendly
// (concentrated Gaussian) and one LZ-friendly (few unique vectors).
func runFig13(opts Options) (*Result, error) {
	e, err := expSpec(criteo.TerabyteSpec(), 16, opts).BuildEnv()
	if err != nil {
		return nil, err
	}
	batch := 2048
	if opts.Quick {
		batch = 512
	}
	eb := probeEB(criteo.TerabyteSpec())
	samples, _ := e.SampleLookups(batch)

	var rows [][]string
	for _, t := range pickRepresentativeTables(e, samples, eb) {
		sample := samples[t]
		codes := make([]int32, len(sample))
		quant.New(eb).Quantize(codes, sample)
		_, st, err := vlz.New(vlz.DefaultWindow).EncodeStats(codes, e.Dim)
		if err != nil {
			return nil, err
		}
		_, std, kurt := moments(sample)
		huffFrame := hybrid.New(eb, hybrid.Entropy)
		hf, err := huffFrame.Compress(sample, e.Dim)
		if err != nil {
			return nil, err
		}
		vf, err := hybrid.New(eb, hybrid.VectorLZ).Compress(sample, e.Dim)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d/%d", st.Matched, st.Rows),
			fmt.Sprintf("%d", st.UniqueRows),
			fmt.Sprintf("%.4f", std),
			fmt.Sprintf("%.2f", kurt),
			fmt.Sprintf("%.2f", codec.Ratio(len(sample), vf)),
			fmt.Sprintf("%.2f", codec.Ratio(len(sample), hf)),
		})
	}
	text := table([]string{"tab", "matched", "unique", "std", "kurtosis", "CR vlz", "CR huffman"}, rows) +
		"\nHigh matched/unique disparity favors vector-LZ; concentrated (high-kurtosis)\nvalues favor the entropy coder — the contrast of Fig. 13.\n"
	return &Result{Text: text}, nil
}

// pickRepresentativeTables selects the most LZ-friendly and the most
// entropy-friendly tables of the sampled batch.
func pickRepresentativeTables(e *scenario.Env, samples [][]float32, eb float32) []int {
	bestLZ, bestH := 0, 0
	var bestLZScore, bestHScore float64
	for t, sample := range samples {
		codes := make([]int32, len(sample))
		quant.New(eb).Quantize(codes, sample)
		_, st, err := vlz.New(vlz.DefaultWindow).EncodeStats(codes, e.Dim)
		if err != nil {
			continue
		}
		lzScore := float64(st.Matched) / float64(st.Rows+1)
		if lzScore > bestLZScore {
			bestLZScore, bestLZ = lzScore, t
		}
		_, _, kurt := moments(sample)
		if kurt > bestHScore {
			bestHScore, bestH = kurt, t
		}
	}
	if bestLZ == bestH {
		bestH = (bestLZ + 1) % len(samples)
	}
	return []int{bestH, bestLZ}
}

// runFig14 reproduces Fig. 14: the lookup value distribution is stable
// across training phases, which keeps the compression ratio steady.
func runFig14(opts Options) (*Result, error) {
	sp := expSpec(criteo.TerabyteSpec(), 16, opts)
	sp.WarmSteps = 0 // sample from initialization; the phases below train
	e, err := sp.BuildEnv()
	if err != nil {
		return nil, err
	}

	phases := 4
	stepsPerPhase := scenario.DefaultWarmSteps(opts.Quick) / phases
	if stepsPerPhase == 0 {
		stepsPerPhase = 1
	}
	batch := 512
	if opts.Quick {
		batch = 256
	}
	eb := probeEB(criteo.TerabyteSpec())
	hybridC := hybrid.New(eb, hybrid.Auto)

	var rows [][]string
	for phase := 0; phase <= phases; phase++ {
		samples, _ := e.SampleLookups(batch)
		stream := concat(samples)
		mean, std, kurt := moments(stream)
		var rawBytes, wireBytes int64
		for _, s := range samples {
			frame, err := hybridC.Compress(s, e.Dim)
			if err != nil {
				return nil, err
			}
			rawBytes += int64(len(s) * 4)
			wireBytes += int64(len(frame))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", phase*100/phases),
			fmt.Sprintf("%.4f", mean),
			fmt.Sprintf("%.4f", std),
			fmt.Sprintf("%.2f", kurt),
			fmt.Sprintf("%.2f", float64(rawBytes)/float64(wireBytes)),
		})
		e.Warm(stepsPerPhase)
	}
	text := table([]string{"phase", "mean", "std", "kurtosis", "CR"}, rows) +
		"\nDistribution moments and CR stay nearly constant across training (Fig. 14).\n"
	return &Result{Text: text}, nil
}

// runFig15 reproduces Fig. 15: buffer-optimization speedup across chunk
// counts and chunk sizes, plus a live measurement of the batched Go path.
func runFig15(opts Options) (*Result, error) {
	// Analytic sweep (the figure).
	var rows [][]string
	m := defaultLaunchModel()
	for _, sizeMB := range []int64{8, 16, 32, 64} {
		row := []string{fmt.Sprintf("%dMB", sizeMB)}
		for _, k := range []int{2, 4, 8, 16} {
			row = append(row, fmt.Sprintf("%.2fx", m.Speedup(sizeMB<<20, k)))
		}
		rows = append(rows, row)
	}
	text := "single-launch speedup over per-chunk launches (analytic, Fig. 15)\n" +
		table([]string{"total", "2 chunks", "4 chunks", "8 chunks", "16 chunks"}, rows)

	// Live check: batched compression of many chunks through goroutines.
	live, err := liveBatchedSpeedup(opts)
	if err != nil {
		return nil, err
	}
	text += fmt.Sprintf("\nlive Go batched-vs-serial compression speedup (16 chunks, %d hardware threads): %.2fx\n",
		runtime.GOMAXPROCS(0), live)
	text += "(the live figure scales with available cores; the analytic sweep above models the GPU)\n"
	return &Result{Text: text}, nil
}

// runFig4 illustrates false prediction and vector homogenization on a tiny
// hand-built batch, mirroring Fig. 4's walk-through.
func runFig4(_ Options) (*Result, error) {
	// Rows: A, A', B, A — where A' is A plus sub-error-bound noise.
	a := []float32{0.50, -0.30, 0.20, 0.70}
	aPrime := []float32{0.506, -0.296, 0.204, 0.694}
	b := []float32{-0.90, 0.10, 0.40, -0.20}
	batch := append(append(append(append([]float32{}, a...), aPrime...), b...), a...)
	dim := 4
	eb := float32(0.01)

	codes := make([]int32, len(batch))
	quant.New(eb).Quantize(codes, batch)
	var sb strings.Builder
	sb.WriteString("quantized rows (eb 0.01):\n")
	for r := 0; r < 4; r++ {
		fmt.Fprintf(&sb, "  row %d: %v\n", r, codes[r*dim:(r+1)*dim])
	}
	sb.WriteString("rows 0 and 1 homogenize to identical codes; row 3 repeats row 0.\n\n")

	c := cuszlike.New(eb, cuszlike.Lorenzo2D)
	rawBits, residBits, err := c.ResidualEntropy(batch, dim)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "2x2 Lorenzo prediction: raw-code entropy %.3f bits -> residual entropy %.3f bits\n", rawBits, residBits)
	sb.WriteString("prediction RAISES entropy on embedding batches (false prediction), because\nidentical vectors sit next to different neighbors.\n")
	return &Result{Text: sb.String()}, nil
}

// runTable1 reproduces Table I: characteristics of representative Kaggle
// tables — false prediction, violent vector homogenization, and Gaussian
// value distribution.
func runTable1(opts Options) (*Result, error) {
	e, err := expSpec(criteo.KaggleSpec(), 16, opts).BuildEnv()
	if err != nil {
		return nil, err
	}
	batch := 128
	eb := float32(0.01)
	samples, _ := e.SampleLookups(batch)

	var rows [][]string
	for _, t := range []int{1, 3, 4} {
		sample := samples[t]
		c := cuszlike.New(eb, cuszlike.Lorenzo2D)
		rawBits, residBits, err := c.ResidualEntropy(sample, e.Dim)
		if err != nil {
			return nil, err
		}
		falsePred := residBits > rawBits
		stats, err := analyzeHomo(t, sample, e.Dim, eb)
		if err != nil {
			return nil, err
		}
		violent := stats.HomoIndex > 0.3
		_, _, kurt := moments(sample)
		gaussian := kurt > -0.5 // uniform ≈ -1.2, Gaussian ≈ 0
		rows = append(rows, []string{
			fmt.Sprintf("%d", t),
			check(falsePred), check(violent), check(gaussian),
			fmt.Sprintf("%.2f", stats.HomoIndex),
			fmt.Sprintf("%.2f", kurt),
		})
	}
	text := table([]string{"EMB table", "false-pred", "violent-homog", "gaussian", "homo-idx", "kurtosis"}, rows)
	return &Result{Text: text}, nil
}

func check(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
