package experiments

import (
	"fmt"
	"strings"
	"time"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lowprec"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

func init() {
	register("fig1", "Training time breakdown without compression", runFig1)
	register("fig12", "End-to-end training breakdown with compression", runFig12)
	register("fig8", "Accuracy under different compression methods", runFig8)
}

// clusterScale returns the rank count and global batch of the timing
// experiments (the paper uses 32 GPUs, batch 2048 on Terabyte).
func clusterScale(quick bool) (ranks, batch int) {
	if quick {
		return 8, 256
	}
	return 32, 2048
}

// paperNetwork reflects the paper's cluster: 4 GB/s effective all-to-all,
// NVLink-assisted allreduce.
func paperNetwork() netmodel.Network {
	return netmodel.Network{
		AllToAllBandwidth:  4e9,
		AllReduceBandwidth: 60e9,
		Latency:            2 * time.Microsecond,
	}
}

// paperDevice uses a sustained MLP rate representative of DLRM-sized layers
// on A100s (small per-GPU batches never reach peak tensor throughput).
func paperDevice() netmodel.Device {
	return netmodel.Device{FLOPS: 3e12, MemBandwidth: 1.3e12}
}

// timingModelConfig is the paper-scale DLRM (sparse feature size 64, the
// reference arch MLPs).
func timingModelConfig(spec criteo.Spec, quick bool) model.Config {
	cfg := model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      64,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{512, 256},
		TopMLP:            []int{512, 256},
		Seed:              spec.Seed + 7,
	}
	if quick {
		cfg.EmbeddingDim = 16
		cfg.BottomMLP = []int{128, 64}
		cfg.TopMLP = []int{128, 64}
	}
	return cfg
}

// runTimed executes steps of the trainer and returns the sim-time breakdown.
func runTimed(tr *dist.Trainer, gen *criteo.Generator, steps, batch int) (profileutil.Breakdown, error) {
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(gen.NextBatch(batch)); err != nil {
			return nil, err
		}
	}
	return profileutil.Breakdown(tr.Cluster().SimTimes()), nil
}

// runFig1 reproduces Fig. 1: the time breakdown of uncompressed DLRM
// training at cluster scale, showing all-to-all dominating (> 60%).
func runFig1(opts Options) (*Result, error) {
	ranks, batch := clusterScale(opts.Quick)
	spec := criteo.ScaledSpec(criteo.TerabyteSpec(), datasetScale(opts.Quick))
	gen := criteo.NewGenerator(spec)
	tr, err := dist.NewTrainer(dist.Options{
		Ranks:              ranks,
		Model:              timingModelConfig(spec, opts.Quick),
		Net:                paperNetwork(),
		Device:             paperDevice(),
		OtherComputeFactor: 0.8,
	})
	if err != nil {
		return nil, err
	}
	steps := 3
	if opts.Quick {
		steps = 2
	}
	bd, err := runTimed(tr, gen, steps, batch)
	if err != nil {
		return nil, err
	}
	a2aShare := bd.Share("fwd-a2a") + bd.Share("bwd-a2a")
	text := fmt.Sprintf("uncompressed DLRM training, %d ranks, global batch %d, %d steps\n\n%s\nall-to-all share: %.1f%% (paper: >60%%)\n",
		ranks, batch, steps, bd.String(), 100*a2aShare)
	return &Result{Text: text}, nil
}

// runFig12 reproduces Fig. 12: end-to-end breakdown with the hybrid
// compressor on the forward all-to-all, and the resulting communication and
// end-to-end speedups on both datasets.
func runFig12(opts Options) (*Result, error) {
	ranks, batch := clusterScale(opts.Quick)
	steps := 3
	if opts.Quick {
		steps = 2
	}
	var sb strings.Builder
	for _, base := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		spec := criteo.ScaledSpec(base, datasetScale(opts.Quick))
		eb := probeEB(base)

		run := func(compressed bool) (profileutil.Breakdown, float64, error) {
			gen := criteo.NewGenerator(spec)
			o := dist.Options{
				Ranks:              ranks,
				Model:              timingModelConfig(spec, opts.Quick),
				Net:                paperNetwork(),
				Device:             paperDevice(),
				OtherComputeFactor: 0.8,
			}
			if compressed {
				o.CodecFor = func(int) codec.Codec { return hybrid.New(eb, hybrid.Auto) }
			}
			tr, err := dist.NewTrainer(o)
			if err != nil {
				return nil, 0, err
			}
			bd, err := runTimed(tr, gen, steps, batch)
			if err != nil {
				return nil, 0, err
			}
			return bd, tr.CompressionRatio(), nil
		}

		baseBD, _, err := run(false)
		if err != nil {
			return nil, err
		}
		compBD, cr, err := run(true)
		if err != nil {
			return nil, err
		}
		commBase := baseBD["fwd-a2a"]
		commComp := compBD["fwd-a2a"] + compBD["compress"] + compBD["decompress"]
		commSpeedup := float64(commBase) / float64(commComp)
		e2eSpeedup := float64(baseBD.Total()) / float64(compBD.Total())
		fmt.Fprintf(&sb, "dataset %s (CR %.1f)\n-- baseline --\n%s\n-- with hybrid compression --\n%s\n", spec.Name, cr, baseBD.String(), compBD.String())
		fmt.Fprintf(&sb, "fwd all-to-all speedup: %.2fx   end-to-end speedup: %.2fx\n(paper: 6.22x/1.30x on Kaggle, 8.6x/1.38x on Terabyte)\n\n",
			commSpeedup, e2eSpeedup)
	}
	return &Result{Text: sb.String()}, nil
}

// runFig8 reproduces Fig. 8: accuracy and delta-accuracy of FP32 baseline,
// FP16, FP8, and the error-bounded compressor (fixed global eb 0.02).
func runFig8(opts Options) (*Result, error) {
	spec := criteo.ScaledSpec(criteo.KaggleSpec(), datasetScale(opts.Quick))
	ranks := 4
	batch := 128
	steps := 300
	if opts.Quick {
		steps = 50
	}
	evalN := 4000
	if opts.Quick {
		evalN = 1000
	}

	configs := []struct {
		name  string
		codec func() codec.Codec
	}{
		{"fp32-baseline", nil},
		{"fp16", func() codec.Codec { return lowprec.FP16Codec{} }},
		{"fp8-e4m3", func() codec.Codec { return lowprec.FP8Codec{Format: lowprec.E4M3} }},
		{"ours-eb0.02", func() codec.Codec { return hybrid.New(0.02, hybrid.Auto) }},
	}

	var rows [][]string
	var baseAcc float64
	for _, cf := range configs {
		gen := criteo.NewGenerator(spec)
		o := dist.Options{Ranks: ranks, Model: modelConfigFor(spec, 16)}
		if cf.codec != nil {
			c := cf.codec()
			o.CodecFor = func(int) codec.Codec { return c }
		}
		tr, err := dist.NewTrainer(o)
		if err != nil {
			return nil, err
		}
		var lastLoss float32
		for i := 0; i < steps; i++ {
			lastLoss, err = tr.Step(gen.NextBatch(batch))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cf.name, err)
			}
		}
		acc, logloss := tr.Evaluate(gen.NextBatch(evalN))
		if cf.name == "fp32-baseline" {
			baseAcc = acc
		}
		cr := tr.CompressionRatio()
		crCell := "-"
		if cf.codec != nil {
			crCell = fmt.Sprintf("%.2f", cr)
		}
		rows = append(rows, []string{
			cf.name,
			fmt.Sprintf("%.4f", acc),
			fmt.Sprintf("%+.4f%%", 100*(acc-baseAcc)),
			fmt.Sprintf("%.4f", logloss),
			fmt.Sprintf("%.4f", lastLoss),
			crCell,
		})
	}
	text := table([]string{"method", "accuracy", "delta-acc", "logloss", "train-loss", "CR"}, rows) +
		"\nPaper criterion: accuracy loss within 0.02% is acceptable; the error-bounded\ncompressor stays within it while compressing far beyond FP16/FP8's fixed 2x/4x.\n"
	return &Result{Text: text}, nil
}
