package experiments

import (
	"fmt"
	"strings"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/scenario"
)

func init() {
	register("fig1", "Training time breakdown without compression", runFig1)
	register("fig12", "End-to-end training breakdown with compression", runFig12)
	register("fig8", "Accuracy under different compression methods", runFig8)
}

// clusterScale returns the rank count and global batch of the timing
// experiments (the paper uses 32 GPUs, batch 2048 on Terabyte).
func clusterScale(quick bool) (ranks, batch int) {
	if quick {
		return 8, 256
	}
	return 32, 2048
}

// timingSteps is the step budget of the timing experiments.
func timingSteps(quick bool) int {
	if quick {
		return 2
	}
	return 3
}

// runFig1 reproduces Fig. 1: the time breakdown of uncompressed DLRM
// training at cluster scale, showing all-to-all dominating (> 60%).
func runFig1(opts Options) (*Result, error) {
	ranks, batch := clusterScale(opts.Quick)
	steps := timingSteps(opts.Quick)
	sp := timingSpec(criteo.TerabyteSpec(), opts)
	sp.Ranks, sp.Batch, sp.Steps = ranks, batch, steps
	results, err := scenario.Sweep([]scenario.Spec{sp}, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}
	bd := results[0].SimTime
	a2aShare := bd.Share("fwd-a2a") + bd.Share("bwd-a2a")
	text := fmt.Sprintf("uncompressed DLRM training, %d ranks, global batch %d, %d steps\n\n%s\nall-to-all share: %.1f%% (paper: >60%%)\n",
		ranks, batch, steps, bd.String(), 100*a2aShare)
	return &Result{Text: text}, nil
}

// runFig12 reproduces Fig. 12: end-to-end breakdown with the hybrid
// compressor on the forward all-to-all, and the resulting communication and
// end-to-end speedups on both datasets.
func runFig12(opts Options) (*Result, error) {
	ranks, batch := clusterScale(opts.Quick)
	steps := timingSteps(opts.Quick)
	var sb strings.Builder
	for _, base := range []criteo.Spec{criteo.KaggleSpec(), criteo.TerabyteSpec()} {
		eb := probeEB(base)
		mk := func(codecName string) scenario.Spec {
			sp := timingSpec(base, opts)
			sp.Ranks, sp.Batch, sp.Steps = ranks, batch, steps
			sp.Codec = codecName
			if codecName != "none" {
				sp.ErrorBound = float64(eb)
			}
			return sp
		}
		results, err := scenario.Sweep([]scenario.Spec{mk("none"), mk("hybrid")}, scenario.SweepOptions{})
		if err != nil {
			return nil, err
		}
		baseBD, compBD := results[0].SimTime, results[1].SimTime
		cr := results[1].CompressionRatio
		commBase := baseBD["fwd-a2a"]
		commComp := compBD["fwd-a2a"] + compBD["compress"] + compBD["decompress"]
		commSpeedup := float64(commBase) / float64(commComp)
		e2eSpeedup := float64(baseBD.Total()) / float64(compBD.Total())
		dataName := criteo.ScaledSpec(base, scenario.DefaultScale(opts.Quick)).Name
		fmt.Fprintf(&sb, "dataset %s (CR %.1f)\n-- baseline --\n%s\n-- with hybrid compression --\n%s\n", dataName, cr, baseBD.String(), compBD.String())
		fmt.Fprintf(&sb, "fwd all-to-all speedup: %.2fx   end-to-end speedup: %.2fx\n(paper: 6.22x/1.30x on Kaggle, 8.6x/1.38x on Terabyte)\n\n",
			commSpeedup, e2eSpeedup)
	}
	return &Result{Text: sb.String()}, nil
}

// runFig8 reproduces Fig. 8: accuracy and delta-accuracy of FP32 baseline,
// FP16, FP8, and the error-bounded compressor (fixed global eb 0.02).
func runFig8(opts Options) (*Result, error) {
	steps := 300
	if opts.Quick {
		steps = 50
	}
	evalN := 4000
	if opts.Quick {
		evalN = 1000
	}

	configs := []struct {
		name  string
		codec string
		eb    float64
	}{
		{"fp32-baseline", "none", 0},
		{"fp16", "fp16", 0},
		{"fp8-e4m3", "fp8", 0},
		{"ours-eb0.02", "hybrid", 0.02},
	}
	specs := make([]scenario.Spec, len(configs))
	for i, cf := range configs {
		sp := expSpec(criteo.KaggleSpec(), 16, opts)
		sp.Ranks, sp.Batch, sp.Steps, sp.Eval = 4, 128, steps, evalN
		sp.Codec, sp.ErrorBound = cf.codec, cf.eb
		specs[i] = sp
	}
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if err != nil {
		return nil, err
	}

	var rows [][]string
	baseAcc := results[0].Accuracy
	for i, cf := range configs {
		res := results[i]
		crCell := "-"
		if cf.codec != "none" {
			crCell = fmt.Sprintf("%.2f", res.CompressionRatio)
		}
		rows = append(rows, []string{
			cf.name,
			fmt.Sprintf("%.4f", res.Accuracy),
			fmt.Sprintf("%+.4f%%", 100*(res.Accuracy-baseAcc)),
			fmt.Sprintf("%.4f", res.LogLoss),
			fmt.Sprintf("%.4f", res.Losses[len(res.Losses)-1]),
			crCell,
		})
	}
	text := table([]string{"method", "accuracy", "delta-acc", "logloss", "train-loss", "CR"}, rows) +
		"\nPaper criterion: accuracy loss within 0.02% is acceptable; the error-bounded\ncompressor stays within it while compressing far beyond FP16/FP8's fixed 2x/4x.\n"
	return &Result{Text: text}, nil
}
