// Package experiments contains one driver per table and figure of the
// paper's evaluation section (§IV), plus the repo's own scale studies
// (the "scaling" topology sweep and the "overlap" comm/compute pipeline
// sweep). Each driver builds its workload from the synthetic Criteo
// substitutes, runs the real compressors/trainer, and formats the same
// rows or series the paper reports.
//
// Layer: the top consumer of the simulation stack — drivers wire
// internal/criteo workloads into internal/dist trainers over
// internal/netmodel topologies and read the sim-time buckets back through
// internal/profileutil. cmd/experiments is the CLI front end; bench_test.go
// wraps every driver in a benchmark so CI archives each run.
//
// Key types: Options (Quick shrinks workloads for CI; full mode uses
// paper-scale batches), Result (ID, Title, preformatted text), Entry and
// the registry behind Run/RunAll/IDs/Index — the single source of truth
// for the experiment index. IndexMarkdown renders the DESIGN.md table
// (`go run ./cmd/experiments -design`), and a conformance test pins the
// committed file to it so docs and code cannot drift.
package experiments
