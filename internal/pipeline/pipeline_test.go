package pipeline

import (
	"testing"
	"time"

	"dlrmcomp/internal/buffopt"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/tensor"
)

func TestSerialAndPipelinedTimes(t *testing.T) {
	per := StageTimes{Compress: 2 * time.Millisecond, Transmit: 3 * time.Millisecond, Decompress: time.Millisecond}
	if SerialTime(per, 4) != 24*time.Millisecond {
		t.Fatalf("serial = %v", SerialTime(per, 4))
	}
	// total 6ms + 3 more chunks paced by the 3ms bottleneck = 15ms.
	if PipelinedTime(per, 4) != 15*time.Millisecond {
		t.Fatalf("pipelined = %v", PipelinedTime(per, 4))
	}
	if SerialTime(per, 0) != 0 || PipelinedTime(per, 0) != 0 {
		t.Fatal("zero chunks cost nothing")
	}
}

func TestPipelineSpeedupBounds(t *testing.T) {
	per := StageTimes{Compress: time.Millisecond, Transmit: time.Millisecond, Decompress: time.Millisecond}
	// Perfectly balanced 3-stage pipeline approaches 3x for many chunks.
	s := Speedup(per, 1000)
	if s < 2.9 || s > 3.0 {
		t.Fatalf("balanced speedup = %v, want ≈ 3", s)
	}
	if Speedup(per, 1) != 1 {
		t.Fatalf("single chunk cannot pipeline: %v", Speedup(per, 1))
	}
}

func TestPipelineBottleneckDominates(t *testing.T) {
	per := StageTimes{Compress: time.Microsecond, Transmit: 10 * time.Millisecond, Decompress: time.Microsecond}
	// One giant stage: speedup tends to total/max ≈ 1.
	if s := Speedup(per, 100); s > 1.01 {
		t.Fatalf("wire-bound pipeline cannot speed up: %v", s)
	}
}

func TestOptimalChunksTradeoff(t *testing.T) {
	total := StageTimes{Compress: 10 * time.Millisecond, Transmit: 10 * time.Millisecond, Decompress: 10 * time.Millisecond}
	// With no overhead, more chunks is always better.
	if k := OptimalChunks(total, 0, 64); k != 64 {
		t.Fatalf("no-overhead optimum = %d, want 64", k)
	}
	// With heavy per-chunk overhead, chunking stops paying early.
	if k := OptimalChunks(total, 5*time.Millisecond, 64); k >= 16 {
		t.Fatalf("heavy-overhead optimum = %d, want small", k)
	}
}

func makeChunks(seed uint64, n, rows, dim int) []buffopt.Chunk {
	rng := tensor.NewRNG(seed)
	chunks := make([]buffopt.Chunk, n)
	for i := range chunks {
		vals := make([]float32, rows*dim)
		rng.FillNormal(vals, 0, 0.2)
		chunks[i] = buffopt.Chunk{Vals: vals, Dim: dim}
	}
	return chunks
}

func TestStreamExchangeCorrectness(t *testing.T) {
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(1, 8, 64, 16)
	out, stats, err := StreamExchange(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks != 8 || stats.Ratio() <= 1 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, ch := range out {
		if ch.Dim != 16 || len(ch.Vals) != len(chunks[i].Vals) {
			t.Fatalf("chunk %d shape", i)
		}
		for j := range ch.Vals {
			d := ch.Vals[j] - chunks[i].Vals[j]
			if d > 0.0101 || d < -0.0101 {
				t.Fatalf("chunk %d error bound violated", i)
			}
		}
	}
}

func TestStreamMatchesSerial(t *testing.T) {
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(2, 5, 32, 8)
	sOut, _, err := SerialExchange(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	pOut, _, err := StreamExchange(c, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sOut {
		for j := range sOut[i].Vals {
			if sOut[i].Vals[j] != pOut[i].Vals[j] {
				t.Fatalf("stream and serial disagree at chunk %d idx %d", i, j)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	c := hybrid.New(0.01, hybrid.Auto)
	out, stats, err := StreamExchange(c, nil)
	if err != nil || len(out) != 0 || stats.Chunks != 0 {
		t.Fatalf("empty exchange: %v %v", err, stats)
	}
}

func TestStreamPropagatesCompressError(t *testing.T) {
	c := hybrid.New(0.01, hybrid.Auto)
	bad := []buffopt.Chunk{{Vals: []float32{1, 2, 3}, Dim: 2}} // bad shape
	if _, _, err := StreamExchange(c, bad); err == nil {
		t.Fatal("expected error for bad chunk shape")
	}
	if _, _, err := SerialExchange(c, bad); err == nil {
		t.Fatal("expected serial error for bad chunk shape")
	}
}

func BenchmarkStreamVsSerial(b *testing.B) {
	c := hybrid.New(0.01, hybrid.Auto)
	chunks := makeChunks(3, 16, 512, 32)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := SerialExchange(c, chunks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := StreamExchange(c, chunks); err != nil {
				b.Fatal(err)
			}
		}
	})
}
