// Package pipeline implements the compression/communication overlap the
// paper lists as future work (§VI, citing Ramesh et al.'s pipelined
// communication schemes): instead of compress-everything → send-everything →
// decompress-everything, the payload is split into chunks that stream
// through a three-stage pipeline (compress | transmit | decompress), so the
// codec and the wire work concurrently.
//
// The package provides both the analytic pipeline model (for the cost
// studies) and a real streaming implementation over any codec, with the
// stages running in separate goroutines connected by channels.
//
// Layer: a single-transfer optimization study over internal/codec,
// exported through the facade (dlrmcomp.StreamExchange). It is the
// intra-transfer complement of the step-level scheduler in
// internal/dist.RunPipelined: this package overlaps the stages of one
// payload's journey; the trainer's overlap engine hides whole transfers
// under the compute of the previous batch on the netmodel.Timeline.
//
// Key types: StageTimes/Speedup (the analytic k-chunk three-stage model),
// Stats, and StreamExchange (the live goroutine pipeline).
package pipeline
