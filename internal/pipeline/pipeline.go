package pipeline

import (
	"fmt"
	"time"

	"dlrmcomp/internal/buffopt"
	"dlrmcomp/internal/codec"
)

// --- analytic model ----------------------------------------------------------

// StageTimes are the per-chunk costs of the three stages.
type StageTimes struct {
	Compress   time.Duration
	Transmit   time.Duration
	Decompress time.Duration
}

func (s StageTimes) total() time.Duration { return s.Compress + s.Transmit + s.Decompress }

func (s StageTimes) max() time.Duration {
	m := s.Compress
	if s.Transmit > m {
		m = s.Transmit
	}
	if s.Decompress > m {
		m = s.Decompress
	}
	return m
}

// SerialTime is the unpipelined cost of k chunks: every stage processes the
// whole payload before the next starts.
func SerialTime(per StageTimes, k int) time.Duration {
	if k <= 0 {
		return 0
	}
	return time.Duration(k) * per.total()
}

// PipelinedTime is the classic k-chunk, 3-stage pipeline makespan:
// fill the pipe once, then the bottleneck stage paces the remaining chunks.
func PipelinedTime(per StageTimes, k int) time.Duration {
	if k <= 0 {
		return 0
	}
	return per.total() + time.Duration(k-1)*per.max()
}

// Speedup is SerialTime / PipelinedTime.
func Speedup(per StageTimes, k int) float64 {
	p := PipelinedTime(per, k)
	if p == 0 {
		return 1
	}
	return float64(SerialTime(per, k)) / float64(p)
}

// OptimalChunks returns the chunk count in [1, maxChunks] minimizing the
// modelled makespan when chunking adds perChunkOverhead to every stage
// (smaller chunks pipeline better but pay more launch/header overhead).
func OptimalChunks(total StageTimes, perChunkOverhead time.Duration, maxChunks int) int {
	best, bestT := 1, time.Duration(1<<62)
	for k := 1; k <= maxChunks; k++ {
		per := StageTimes{
			Compress:   total.Compress/time.Duration(k) + perChunkOverhead,
			Transmit:   total.Transmit/time.Duration(k) + perChunkOverhead,
			Decompress: total.Decompress/time.Duration(k) + perChunkOverhead,
		}
		if t := PipelinedTime(per, k); t < bestT {
			best, bestT = k, t
		}
	}
	return best
}

// --- real streaming implementation -------------------------------------------

// Stats reports what a streaming exchange did.
type Stats struct {
	Chunks    int
	RawBytes  int64
	WireBytes int64
	Wall      time.Duration
}

// Ratio returns the achieved compression ratio.
func (s Stats) Ratio() float64 {
	if s.WireBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.WireBytes)
}

// StreamExchange pushes every chunk through compress → channel (the wire) →
// decompress, with the producer and consumer running concurrently. The
// returned chunks are in order.
func StreamExchange(c codec.Codec, chunks []buffopt.Chunk) ([]buffopt.Chunk, Stats, error) {
	start := time.Now()
	type frame struct {
		idx  int
		data []byte
	}
	wire := make(chan frame, 1) // depth-1: transmit buffer
	errc := make(chan error, 1)

	var rawBytes, wireBytes int64
	go func() {
		defer close(wire)
		for i, ch := range chunks {
			f, err := c.Compress(ch.Vals, ch.Dim)
			if err != nil {
				errc <- fmt.Errorf("pipeline: chunk %d: %w", i, err)
				return
			}
			rawBytes += int64(len(ch.Vals) * 4)
			wireBytes += int64(len(f))
			wire <- frame{idx: i, data: f}
		}
		errc <- nil
	}()

	out := make([]buffopt.Chunk, len(chunks))
	for f := range wire {
		vals, dim, err := c.Decompress(f.data)
		if err != nil {
			<-errc // drain producer status
			return nil, Stats{}, fmt.Errorf("pipeline: decode chunk %d: %w", f.idx, err)
		}
		out[f.idx] = buffopt.Chunk{Vals: vals, Dim: dim}
	}
	if err := <-errc; err != nil {
		return nil, Stats{}, err
	}
	return out, Stats{
		Chunks:    len(chunks),
		RawBytes:  rawBytes,
		WireBytes: wireBytes,
		Wall:      time.Since(start),
	}, nil
}

// SerialExchange is the unpipelined reference: compress all, then decompress
// all.
func SerialExchange(c codec.Codec, chunks []buffopt.Chunk) ([]buffopt.Chunk, Stats, error) {
	start := time.Now()
	frames := make([][]byte, len(chunks))
	var rawBytes, wireBytes int64
	for i, ch := range chunks {
		f, err := c.Compress(ch.Vals, ch.Dim)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("pipeline: chunk %d: %w", i, err)
		}
		frames[i] = f
		rawBytes += int64(len(ch.Vals) * 4)
		wireBytes += int64(len(f))
	}
	out := make([]buffopt.Chunk, len(chunks))
	for i, f := range frames {
		vals, dim, err := c.Decompress(f)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("pipeline: decode chunk %d: %w", i, err)
		}
		out[i] = buffopt.Chunk{Vals: vals, Dim: dim}
	}
	return out, Stats{
		Chunks:    len(chunks),
		RawBytes:  rawBytes,
		WireBytes: wireBytes,
		Wall:      time.Since(start),
	}, nil
}
