// Package hybrid implements the paper's hybrid error-bounded lossy
// compressor for embedding batches (§III-D): an error-bounded quantization
// encoder (internal/quant) feeding one of two lossless encoders — the
// vector-based LZ encoder (internal/vlz) or the optimized Huffman encoder
// (internal/huffman) — with the per-table choice made offline by the
// Eq. (2) speed-up model or online by smallest-output selection.
//
// Layer: the headline codec of the reproduction, implementing
// internal/codec.ErrorBounded. The distributed trainer compresses its
// forward all-to-all with it; netmodel.PaperCodecRates prices it in
// end-to-end projections under "ours-hybrid" (and "ours-vector" /
// "ours-huffman" when a mode is forced).
//
// Key types: Codec (New(eb, mode)), Mode (Auto / VectorLZ / Entropy),
// SelectEncoder (Algorithm 2's offline per-table choice, timed best-of-3
// through the buffered path so the decision is noise-stable), and
// Speedup/Throughput, the Eq. (2) communication speed-up model used by
// both the offline phase and the fig11 experiment.
//
// Codec also implements codec.BufferedCodec: CompressAppend/DecompressInto
// produce byte-identical frames and value-identical reconstructions to
// Compress/Decompress while drawing every scratch buffer from a pooled
// workspace, so the trainer's steady-state codec work performs no heap
// allocation and one shared instance stays goroutine-safe.
package hybrid
