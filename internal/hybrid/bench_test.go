package hybrid

import (
	"testing"

	"dlrmcomp/internal/tensor"
)

// benchSample builds a lookup-like batch: rows drawn from a small pool of
// centers so the vector-LZ stage sees realistic reuse.
func benchSample(rows, dim int) []float32 {
	rng := tensor.NewRNG(11)
	centers := make([][]float32, 64)
	for v := range centers {
		centers[v] = make([]float32, dim)
		rng.FillNormal(centers[v], 0, 0.2)
	}
	out := make([]float32, 0, rows*dim)
	for r := 0; r < rows; r++ {
		out = append(out, centers[rng.Intn(len(centers))]...)
	}
	return out
}

func benchRoundTrip(b *testing.B, mode Mode) {
	b.Helper()
	src := benchSample(2048, 64)
	c := New(0.01, mode)
	frame, err := c.Compress(src, 64)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.Decompress(frame); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := c.Compress(src, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Decompress(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTrip_Auto(b *testing.B)     { benchRoundTrip(b, Auto) }
func BenchmarkRoundTrip_VectorLZ(b *testing.B) { benchRoundTrip(b, VectorLZ) }
func BenchmarkRoundTrip_Entropy(b *testing.B)  { benchRoundTrip(b, Entropy) }

// benchRoundTripBuffered measures the same round trip through the buffered
// (workspace-reusing) API — the trainer's steady-state path. The frames are
// byte-identical to the allocating path; only B/op and allocs/op differ.
func benchRoundTripBuffered(b *testing.B, mode Mode) {
	b.Helper()
	src := benchSample(2048, 64)
	c := New(0.01, mode)
	var frame []byte
	dst := make([]float32, len(src))
	var err error
	if frame, err = c.CompressAppend(frame[:0], src, 64); err != nil {
		b.Fatal(err)
	}
	if _, err := c.DecompressInto(dst, frame); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if frame, err = c.CompressAppend(frame[:0], src, 64); err != nil {
			b.Fatal(err)
		}
		if _, err := c.DecompressInto(dst, frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundTripBuffered_Auto(b *testing.B)     { benchRoundTripBuffered(b, Auto) }
func BenchmarkRoundTripBuffered_VectorLZ(b *testing.B) { benchRoundTripBuffered(b, VectorLZ) }
func BenchmarkRoundTripBuffered_Entropy(b *testing.B)  { benchRoundTripBuffered(b, Entropy) }
