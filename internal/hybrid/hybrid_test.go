package hybrid

import (
	"math"
	"testing"
	"testing/quick"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/tensor"
)

// hotKeyBatch builds a batch like embedding lookups under Zipf queries:
// many repeats of a small vocabulary of rows.
func hotKeyBatch(rng *tensor.RNG, rows, dim, vocabSize int, std float32) []float32 {
	vocab := make([][]float32, vocabSize)
	for v := range vocab {
		vocab[v] = make([]float32, dim)
		rng.FillNormal(vocab[v], 0, std)
	}
	var src []float32
	for r := 0; r < rows; r++ {
		v := rng.Intn(vocabSize)
		if rng.Float64() < 0.6 {
			v = rng.Intn(max(1, vocabSize/8)) // hot head
		}
		src = append(src, vocab[v]...)
	}
	return src
}

func TestRoundTripAllModes(t *testing.T) {
	rng := tensor.NewRNG(1)
	src := hotKeyBatch(rng, 256, 16, 32, 0.5)
	for _, mode := range []Mode{Auto, VectorLZ, Entropy} {
		c := New(0.01, mode)
		recon, ratio, err := codec.RoundTrip(c, src, 16)
		if err != nil {
			t.Fatal(err)
		}
		if e := quant.MaxError(src, recon); e > 0.01+1e-5 {
			t.Fatalf("mode %v: error bound violated: %v", mode, e)
		}
		if ratio < 1 {
			t.Fatalf("mode %v: ratio %.2f < 1", mode, ratio)
		}
	}
}

func TestAutoPicksSmallerFrame(t *testing.T) {
	rng := tensor.NewRNG(2)
	src := hotKeyBatch(rng, 512, 32, 16, 0.5)
	fv, err := New(0.01, VectorLZ).Compress(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := New(0.01, Entropy).Compress(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := New(0.01, Auto).Compress(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != min(len(fv), len(fh)) {
		t.Fatalf("auto frame %d, vlz %d, huffman %d", len(fa), len(fv), len(fh))
	}
}

func TestVLZWinsOnRepeatedRows(t *testing.T) {
	rng := tensor.NewRNG(3)
	// Tiny vocabulary -> massive row reuse -> vector LZ territory.
	src := hotKeyBatch(rng, 1024, 32, 8, 1.0)
	fa, err := New(0.01, Auto).Compress(src, 32)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SubEncoderOf(fa)
	if err != nil {
		t.Fatal(err)
	}
	if sub != "vlz" {
		t.Fatalf("expected vlz to win on repeated rows, got %s", sub)
	}
}

func TestHuffmanWinsOnConcentratedUniqueRows(t *testing.T) {
	rng := tensor.NewRNG(4)
	// Every row unique but values concentrated near 0 (Gaussian):
	// no row repeats for LZ, low entropy for Huffman.
	n := 512 * 16
	src := make([]float32, n)
	rng.FillNormal(src, 0, 0.02)
	fa, err := New(0.01, Auto).Compress(src, 16)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SubEncoderOf(fa)
	if err != nil {
		t.Fatal(err)
	}
	if sub != "huffman" {
		t.Fatalf("expected huffman to win on unique concentrated rows, got %s", sub)
	}
}

func TestLargerEBHigherRatio(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := hotKeyBatch(rng, 512, 16, 200, 0.5)
	ratioAt := func(eb float32) float64 {
		frame, err := New(eb, Auto).Compress(src, 16)
		if err != nil {
			t.Fatal(err)
		}
		return codec.Ratio(len(src), frame)
	}
	if ratioAt(0.05) <= ratioAt(0.005) {
		t.Fatal("larger error bound should raise compression ratio")
	}
}

func TestErrorBoundHonoredProperty(t *testing.T) {
	f := func(seed uint16, ebSel, modeSel uint8) bool {
		rng := tensor.NewRNG(uint64(seed) + 1)
		eb := []float32{0.001, 0.01, 0.03, 0.1}[int(ebSel)%4]
		mode := []Mode{Auto, VectorLZ, Entropy}[int(modeSel)%3]
		dim := 1 + rng.Intn(32)
		rows := 1 + rng.Intn(64)
		src := make([]float32, rows*dim)
		rng.FillNormal(src, 0, 1)
		c := New(eb, mode)
		recon, _, err := codec.RoundTrip(c, src, dim)
		if err != nil {
			return false
		}
		return quant.MaxError(src, recon) <= eb+1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressValidation(t *testing.T) {
	if _, err := New(0.01, Auto).Compress([]float32{1, 2, 3}, 2); err == nil {
		t.Fatal("bad shape should error")
	}
	if _, err := New(0, Auto).Compress([]float32{1, 2}, 2); err == nil {
		t.Fatal("zero eb should error")
	}
	if _, _, err := New(0.01, Auto).Decompress([]byte{1}); err == nil {
		t.Fatal("short frame should error")
	}
}

func TestSpeedupModel(t *testing.T) {
	// Infinite codec throughput: speedup -> CR.
	tp := Throughput{Compress: 1e18, Decompress: 1e18}
	if s := Speedup(10, 4e9, tp); math.Abs(s-10) > 1e-6 {
		t.Fatalf("speedup = %v, want 10", s)
	}
	// Very slow codec: speedup < 1 even with great CR.
	slow := Throughput{Compress: 1e6, Decompress: 1e6}
	if s := Speedup(100, 4e9, slow); s >= 1 {
		t.Fatalf("slow codec should not speed up, got %v", s)
	}
	// Degenerate inputs.
	if Speedup(0, 4e9, tp) != 0 || Speedup(10, 4e9, Throughput{}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestSpeedupMonotoneInCR(t *testing.T) {
	tp := Throughput{Compress: 40e9, Decompress: 200e9}
	prev := 0.0
	for _, cr := range []float64{1, 2, 5, 10, 20} {
		s := Speedup(cr, 4e9, tp)
		if s <= prev {
			t.Fatalf("speedup should grow with CR: %v at cr=%v", s, cr)
		}
		prev = s
	}
}

func TestSelectEncoder(t *testing.T) {
	rng := tensor.NewRNG(6)
	src := hotKeyBatch(rng, 512, 16, 8, 1.0)
	mode, cands, err := SelectEncoder(src, 16, 0.01, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	// On heavy row reuse the selected encoder should achieve the better
	// ratio by a wide margin, and selection must return one of the modes.
	if mode != VectorLZ && mode != Entropy {
		t.Fatalf("unexpected mode %v", mode)
	}
	if _, _, err := SelectEncoder(nil, 16, 0.01, 4e9); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestNames(t *testing.T) {
	if New(0.01, Auto).Name() != "ours-hybrid" ||
		New(0.01, VectorLZ).Name() != "ours-vector" ||
		New(0.01, Entropy).Name() != "ours-huffman" {
		t.Fatal("mode names wrong")
	}
}

func BenchmarkHybridCompress2048x64(b *testing.B) {
	rng := tensor.NewRNG(7)
	src := hotKeyBatch(rng, 2048, 64, 500, 0.3)
	c := New(0.01, Auto)
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridDecompress2048x64(b *testing.B) {
	rng := tensor.NewRNG(8)
	src := hotKeyBatch(rng, 2048, 64, 500, 0.3)
	c := New(0.01, Auto)
	frame, err := c.Compress(src, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decompress(frame); err != nil {
			b.Fatal(err)
		}
	}
}
