package hybrid

import (
	"bytes"
	"fmt"
	"testing"

	"dlrmcomp/internal/tensor"
)

// TestFusedEncodeFrameParity pins the fused quantize+zigzag+entropy encoder
// against the two-pass reference over the full conformance matrix: every
// mode, error bound, shape (including single-row and ragged widths), and
// data distribution (hot-key lookup batches, pure noise, constant blocks,
// zero blocks, sign-alternating values that stress the zigzag mapping). The
// frames must be byte-identical — the fusion changes traversal, not output.
func TestFusedEncodeFrameParity(t *testing.T) {
	rng := tensor.NewRNG(42)
	noise := func(n int, std float32) []float32 {
		v := make([]float32, n)
		rng.FillNormal(v, 0, std)
		return v
	}
	constant := func(n int, val float32) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = val
		}
		return v
	}
	alternating := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(1-2*(i%2)) * float32(i%7) * 0.05
		}
		return v
	}
	cases := []struct {
		name string
		src  []float32
		dim  int
	}{
		{"hotkeys256x16", hotKeyBatch(rng, 256, 16, 32, 0.5), 16},
		{"hotkeys33x7", hotKeyBatch(rng, 33, 7, 8, 0.3), 7},
		{"noise128x16", noise(128*16, 1), 16},
		{"noise-wide", noise(64*16, 25), 16}, // wide alphabet, raw-fallback territory
		{"single-row", noise(16, 0.5), 16},
		{"constant", constant(64*8, 0.42), 8},
		{"zeros", constant(64*8, 0), 8},
		{"alternating", alternating(96 * 12), 12},
		{"empty", nil, 4},
	}
	for _, mode := range []Mode{Auto, VectorLZ, Entropy} {
		for _, eb := range []float32{0.001, 0.01, 0.1} {
			for _, tc := range cases {
				label := fmt.Sprintf("%v/eb=%v/%s", mode, eb, tc.name)
				c := New(eb, mode)
				ref, errRef := c.compressAppendTwoPass(nil, tc.src, tc.dim)
				got, errGot := c.CompressAppend(nil, tc.src, tc.dim)
				if (errRef == nil) != (errGot == nil) {
					t.Fatalf("%s: error mismatch: two-pass %v, fused %v", label, errRef, errGot)
				}
				if errRef != nil {
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("%s: fused frame differs from two-pass (%d vs %d bytes)", label, len(got), len(ref))
				}
			}
		}
	}
}

func benchHybridEncode(b *testing.B, fn func(c *Codec, dst []byte, src []float32, dim int) ([]byte, error)) {
	b.Helper()
	c := New(0.01, Auto)
	src := benchSample(2048, 64)
	var frame []byte
	var err error
	if frame, err = fn(c, frame[:0], src, 64); err != nil { // warm pooled workspaces
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if frame, err = fn(c, frame[:0], src, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridEncode_TwoPass(b *testing.B) {
	benchHybridEncode(b, (*Codec).compressAppendTwoPass)
}

func BenchmarkHybridEncode_Fused(b *testing.B) {
	benchHybridEncode(b, (*Codec).CompressAppend)
}
