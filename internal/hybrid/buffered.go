package hybrid

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/huffman"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/vlz"
)

// This file implements codec.BufferedCodec for the hybrid compressor: the
// same frames as Compress/Decompress (byte-identical, pinned by tests), but
// with every scratch buffer — the quantize-code array, the zigzag symbol
// array, the sub-encoder workspaces, and the Auto-mode candidate frame —
// drawn from a pool and reused, so steady-state operation performs no heap
// allocation. Pooling (rather than per-Codec fields) keeps one codec
// instance safe for concurrent use, which the trainer relies on: a table's
// codec is shared by every rank goroutine and by the intra-rank codec
// workers.

// workspace bundles the reusable state of one in-flight compress or
// decompress call.
type workspace struct {
	codes []int32
	syms  []uint32
	alt   []byte // Auto-mode second-candidate payload
	venc  *vlz.Encoder
	vdec  *vlz.Decoder
	henc  *huffman.Encoder
	hdec  *huffman.Decoder
}

var wsPool = sync.Pool{New: func() any {
	return &workspace{
		venc: vlz.New(0),
		vdec: vlz.NewDecoder(),
		henc: huffman.NewEncoder(),
		hdec: huffman.NewDecoder(),
	}
}}

func (ws *workspace) sizedCodes(n int) []int32 {
	if cap(ws.codes) < n {
		ws.codes = make([]int32, n)
	}
	ws.codes = ws.codes[:n]
	return ws.codes
}

func (ws *workspace) sizedSyms(n int) []uint32 {
	if cap(ws.syms) < n {
		ws.syms = make([]uint32, n)
	}
	ws.syms = ws.syms[:n]
	return ws.syms
}

// CompressAppend implements codec.BufferedCodec: it appends exactly the
// frame Compress would return. Quantization is fused with the mode's symbol
// transform — one traversal of src produces the bin codes, the zigzag
// symbols, and the alphabet bound the entropy coder wants, instead of the
// quantize-then-zigzag double pass (compressAppendTwoPass keeps the
// reference shape; parity tests pin the frames byte-for-byte). In Auto mode
// both sub-encoders still run — the choice needs both sizes — but the loser
// lives only in a reused candidate buffer instead of a fresh allocation. On
// error the appended bytes are undefined; callers must discard dst.
func (c *Codec) CompressAppend(dst []byte, src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%dim != 0 {
		return nil, fmt.Errorf("hybrid: bad shape len=%d dim=%d", len(src), dim)
	}
	if c.EB <= 0 {
		return nil, fmt.Errorf("hybrid: error bound %v must be positive", c.EB)
	}
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	q := quant.New(c.EB)
	codes := ws.sizedCodes(len(src))

	base := len(dst)
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], math.Float32bits(c.EB))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(src)))
	dst = append(dst, hdr[:]...)
	payloadStart := len(dst)

	sub := byte(subVLZ)
	switch c.Mode {
	case VectorLZ:
		// Vector-LZ consumes raw bin codes; no symbol pass to fuse with.
		q.Quantize(codes, src)
		ws.venc.Window = c.Window
		var err error
		dst, err = ws.venc.AppendEncode(dst, codes, dim)
		if err != nil {
			return nil, err
		}
	case Entropy:
		syms := ws.sizedSyms(len(src))
		maxSym := q.QuantizeZigZag(codes, syms, src)
		dst = ws.henc.AppendEncodeMax(dst, syms, maxSym)
		sub = subEntropy
	default: // Auto: pick the smaller frame, ties to vector-LZ as Compress does
		syms := ws.sizedSyms(len(src))
		maxSym := q.QuantizeZigZag(codes, syms, src)
		ws.venc.Window = c.Window
		var err error
		dst, err = ws.venc.AppendEncode(dst, codes, dim)
		if err != nil {
			return nil, err
		}
		ws.alt = ws.henc.AppendEncodeMax(ws.alt[:0], syms, maxSym)
		if len(ws.alt) < len(dst)-payloadStart {
			dst = append(dst[:payloadStart], ws.alt...)
			sub = subEntropy
		}
	}
	dst[base+12] = sub
	return dst, nil
}

// compressAppendTwoPass is the pre-fusion shape of CompressAppend — quantize
// everything first, then zigzag for the entropy coder — kept unexported as
// the executable reference for the fused path's parity test and benchmark.
func (c *Codec) compressAppendTwoPass(dst []byte, src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%dim != 0 {
		return nil, fmt.Errorf("hybrid: bad shape len=%d dim=%d", len(src), dim)
	}
	if c.EB <= 0 {
		return nil, fmt.Errorf("hybrid: error bound %v must be positive", c.EB)
	}
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	codes := ws.sizedCodes(len(src))
	quant.New(c.EB).Quantize(codes, src)

	base := len(dst)
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:], math.Float32bits(c.EB))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(src)))
	dst = append(dst, hdr[:]...)
	payloadStart := len(dst)

	sub := byte(subVLZ)
	switch c.Mode {
	case VectorLZ:
		ws.venc.Window = c.Window
		var err error
		dst, err = ws.venc.AppendEncode(dst, codes, dim)
		if err != nil {
			return nil, err
		}
	case Entropy:
		syms := ws.sizedSyms(len(codes))
		quant.ZigZagInto(syms, codes)
		dst = ws.henc.AppendEncode(dst, syms)
		sub = subEntropy
	default:
		ws.venc.Window = c.Window
		var err error
		dst, err = ws.venc.AppendEncode(dst, codes, dim)
		if err != nil {
			return nil, err
		}
		syms := ws.sizedSyms(len(codes))
		quant.ZigZagInto(syms, codes)
		ws.alt = ws.henc.AppendEncode(ws.alt[:0], syms)
		if len(ws.alt) < len(dst)-payloadStart {
			dst = append(dst[:payloadStart], ws.alt...)
			sub = subEntropy
		}
	}
	dst[base+12] = sub
	return dst, nil
}

// DecompressInto implements codec.BufferedCodec: dst must hold exactly the
// frame's value count; the reconstruction is identical to Decompress.
func (c *Codec) DecompressInto(dst []float32, frame []byte) (int, error) {
	if len(frame) < 13 {
		return 0, errCorrupt
	}
	eb := math.Float32frombits(binary.LittleEndian.Uint32(frame[0:]))
	dim := int(binary.LittleEndian.Uint32(frame[4:]))
	n := int(binary.LittleEndian.Uint32(frame[8:]))
	sub := frame[12]
	if eb <= 0 || dim <= 0 || n < 0 || n%max(dim, 1) != 0 {
		return 0, errCorrupt
	}
	if n != len(dst) {
		return 0, fmt.Errorf("hybrid: frame holds %d values, destination holds %d", n, len(dst))
	}
	ws := wsPool.Get().(*workspace)
	defer wsPool.Put(ws)
	codes := ws.sizedCodes(n)
	switch sub {
	case subVLZ:
		gotDim, err := ws.vdec.DecodeInto(codes, frame[13:])
		if err != nil {
			return 0, err
		}
		if gotDim != dim {
			return 0, errCorrupt
		}
	case subEntropy:
		syms := ws.sizedSyms(n)
		if _, err := ws.hdec.DecodeInto(syms, frame[13:]); err != nil {
			return 0, err
		}
		quant.UnZigZagInto(codes, syms)
	default:
		return 0, errCorrupt
	}
	quant.New(eb).Dequantize(dst, codes)
	return dim, nil
}

var _ codec.BufferedCodec = (*Codec)(nil)
