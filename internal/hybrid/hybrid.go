package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"dlrmcomp/internal/huffman"
	"dlrmcomp/internal/quant"
	"dlrmcomp/internal/vlz"
)

var errCorrupt = errors.New("hybrid: corrupt frame")

// Mode selects the lossless stage.
type Mode int

const (
	// Auto compresses with both encoders and keeps the smaller frame
	// (the per-table "hybrid" column of Table V).
	Auto Mode = iota
	// VectorLZ forces the vector-based LZ encoder ("Ours-Vector").
	VectorLZ
	// Entropy forces the optimized Huffman encoder ("Ours-Huffman").
	Entropy
)

func (m Mode) String() string {
	switch m {
	case VectorLZ:
		return "ours-vector"
	case Entropy:
		return "ours-huffman"
	default:
		return "ours-hybrid"
	}
}

// Codec is the paper's compressor.
type Codec struct {
	EB     float32
	Mode   Mode
	Window int // vector-LZ window (rows); 0 = vlz.DefaultWindow
}

// New returns the hybrid codec with the given error bound and mode.
func New(eb float32, mode Mode) *Codec { return &Codec{EB: eb, Mode: mode} }

// Name implements codec.Codec.
func (c *Codec) Name() string { return c.Mode.String() }

// Lossy implements codec.Codec.
func (c *Codec) Lossy() bool { return true }

// SetErrorBound implements codec.ErrorBounded.
func (c *Codec) SetErrorBound(eb float32) { c.EB = eb }

// ErrorBound implements codec.ErrorBounded.
func (c *Codec) ErrorBound() float32 { return c.EB }

// Sub-encoder tags in the frame header.
const (
	subVLZ     = 0
	subEntropy = 1
)

// Compress implements codec.Codec.
func (c *Codec) Compress(src []float32, dim int) ([]byte, error) {
	if dim <= 0 || len(src)%dim != 0 {
		return nil, fmt.Errorf("hybrid: bad shape len=%d dim=%d", len(src), dim)
	}
	if c.EB <= 0 {
		return nil, fmt.Errorf("hybrid: error bound %v must be positive", c.EB)
	}
	codes := make([]int32, len(src))
	quant.New(c.EB).Quantize(codes, src)

	var payload []byte
	var sub byte
	switch c.Mode {
	case VectorLZ:
		p, err := vlz.New(c.Window).Encode(codes, dim)
		if err != nil {
			return nil, err
		}
		payload, sub = p, subVLZ
	case Entropy:
		payload, sub = huffman.Encode(quant.ZigZagSlice(codes)), subEntropy
	default: // Auto: pick the smaller frame
		pv, err := vlz.New(c.Window).Encode(codes, dim)
		if err != nil {
			return nil, err
		}
		ph := huffman.Encode(quant.ZigZagSlice(codes))
		if len(pv) <= len(ph) {
			payload, sub = pv, subVLZ
		} else {
			payload, sub = ph, subEntropy
		}
	}

	out := make([]byte, 13, 13+len(payload))
	binary.LittleEndian.PutUint32(out[0:], math.Float32bits(c.EB))
	binary.LittleEndian.PutUint32(out[4:], uint32(dim))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(src)))
	out[12] = sub
	return append(out, payload...), nil
}

// Decompress implements codec.Codec.
func (c *Codec) Decompress(frame []byte) ([]float32, int, error) {
	if len(frame) < 13 {
		return nil, 0, errCorrupt
	}
	eb := math.Float32frombits(binary.LittleEndian.Uint32(frame[0:]))
	dim := int(binary.LittleEndian.Uint32(frame[4:]))
	n := int(binary.LittleEndian.Uint32(frame[8:]))
	sub := frame[12]
	if eb <= 0 || dim <= 0 || n < 0 || n%max(dim, 1) != 0 {
		return nil, 0, errCorrupt
	}
	var codes []int32
	switch sub {
	case subVLZ:
		decoded, gotDim, err := vlz.Decode(frame[13:])
		if err != nil {
			return nil, 0, err
		}
		if gotDim != dim || len(decoded) != n {
			return nil, 0, errCorrupt
		}
		codes = decoded
	case subEntropy:
		syms, err := huffman.Decode(frame[13:])
		if err != nil {
			return nil, 0, err
		}
		if len(syms) != n {
			return nil, 0, errCorrupt
		}
		codes = quant.UnZigZagSlice(syms)
	default:
		return nil, 0, errCorrupt
	}
	out := make([]float32, n)
	quant.New(eb).Dequantize(out, codes)
	return out, dim, nil
}

// SubEncoderOf reports which lossless stage produced the frame ("vlz" or
// "huffman"), for experiment reporting.
func SubEncoderOf(frame []byte) (string, error) {
	if len(frame) < 13 {
		return "", errCorrupt
	}
	switch frame[12] {
	case subVLZ:
		return "vlz", nil
	case subEntropy:
		return "huffman", nil
	}
	return "", errCorrupt
}

// --- Eq. (2) speed-up model and compressor selection (Algorithm 2) --------

// Throughput describes a compressor's measured or calibrated speeds in
// bytes per second.
type Throughput struct {
	Compress   float64
	Decompress float64
}

// Speedup evaluates Eq. (2) of the paper:
//
//	speedup = 1 / (1/CR + B·(1/Tc + 1/Td))
//
// where CR is the compression ratio, B the network bandwidth, and Tc/Td the
// compression/decompression throughputs (all in consistent byte/s units).
func Speedup(cr, netBandwidth float64, tp Throughput) float64 {
	if cr <= 0 || tp.Compress <= 0 || tp.Decompress <= 0 {
		return 0
	}
	return 1.0 / (1.0/cr + netBandwidth*(1.0/tp.Compress+1.0/tp.Decompress))
}

// Candidate couples a mode with its measured stats on sampled data.
type Candidate struct {
	Mode       Mode
	Ratio      float64
	Throughput Throughput
	Speedup    float64
}

// selectReps is how many timed round trips SelectEncoder runs per encoder.
// A single time.Now sample on a batch-sized input is dominated by scheduler
// and cache noise; taking the best of several reps makes Algorithm 2's mode
// choice stable run to run (pinned by a determinism test).
const selectReps = 3

// SelectEncoder implements Algorithm 2 for one table: it round-trips the
// sampled batch through both encoders, measures ratio and throughput, and
// returns the mode with the best Eq. (2) speed-up under the given network
// bandwidth (bytes/s). Timings run selectReps times through the buffered
// (steady-state) codec path and keep the best rep, so the decision reflects
// kernel speed rather than one-shot allocation and scheduling noise. The
// returned candidates are sorted by evaluation order (VectorLZ, Entropy)
// for reporting.
func SelectEncoder(sample []float32, dim int, eb float32, netBandwidth float64) (Mode, []Candidate, error) {
	if len(sample) == 0 {
		return Entropy, nil, fmt.Errorf("hybrid: empty sample")
	}
	var cands []Candidate
	var frame []byte
	recon := make([]float32, len(sample))
	for _, mode := range []Mode{VectorLZ, Entropy} {
		c := New(eb, mode)
		var ct, dt time.Duration
		for rep := 0; rep < selectReps; rep++ {
			start := time.Now()
			f, err := c.CompressAppend(frame[:0], sample, dim)
			if err != nil {
				return 0, nil, err
			}
			if d := time.Since(start); rep == 0 || d < ct {
				ct = d
			}
			frame = f
			start = time.Now()
			if _, err := c.DecompressInto(recon, frame); err != nil {
				return 0, nil, err
			}
			if d := time.Since(start); rep == 0 || d < dt {
				dt = d
			}
		}
		bytesIn := float64(len(sample) * 4)
		tp := Throughput{
			Compress:   bytesIn / secondsAtLeast(ct),
			Decompress: bytesIn / secondsAtLeast(dt),
		}
		cr := bytesIn / float64(len(frame))
		cands = append(cands, Candidate{
			Mode:       mode,
			Ratio:      cr,
			Throughput: tp,
			Speedup:    Speedup(cr, netBandwidth, tp),
		})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Speedup > best.Speedup {
			best = c
		}
	}
	return best.Mode, cands, nil
}

func secondsAtLeast(d time.Duration) float64 {
	s := d.Seconds()
	if s < 1e-9 {
		return 1e-9
	}
	return s
}
