package hybrid

import (
	"bytes"
	"testing"

	"dlrmcomp/internal/testutil"

	"dlrmcomp/internal/codec"
)

// TestBufferedCompressParity pins the acceptance criterion that the
// buffered path emits byte-identical frames to Compress in every mode,
// including the Auto tie-break, and that DecompressInto reconstructs
// value-identically.
func TestBufferedCompressParity(t *testing.T) {
	samples := map[string][]float32{
		"reuse":  benchSample(256, 16),
		"single": benchSample(1, 16),
	}
	for name, src := range samples {
		for _, mode := range []Mode{Auto, VectorLZ, Entropy} {
			c := New(0.01, mode)
			ref, err := c.Compress(src, 16)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.CompressAppend(nil, src, 16)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s/%v: CompressAppend differs from Compress (%d vs %d bytes)",
					name, mode, len(got), len(ref))
			}
			sub, err := SubEncoderOf(got)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s/%v -> %s, %d bytes", name, mode, sub, len(got))

			refVals, refDim, err := c.Decompress(ref)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]float32, len(src))
			dim, err := c.DecompressInto(dst, got)
			if err != nil {
				t.Fatal(err)
			}
			if dim != refDim {
				t.Fatalf("%s/%v: dim %d != %d", name, mode, dim, refDim)
			}
			for i := range dst {
				if dst[i] != refVals[i] {
					t.Fatalf("%s/%v: value %d is %v, want %v", name, mode, i, dst[i], refVals[i])
				}
			}
		}
	}
}

// TestBufferedHelperFallback checks the codec-package helpers route through
// the buffered interface for hybrid and still work for plain codecs.
func TestBufferedHelperFallback(t *testing.T) {
	src := benchSample(64, 8)
	c := New(0.01, Auto)
	if _, ok := any(c).(codec.BufferedCodec); !ok {
		t.Fatal("hybrid.Codec must implement codec.BufferedCodec")
	}
	frame, err := codec.CompressAppend(c, []byte{1, 2}, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Compress(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame[2:], direct) {
		t.Fatal("helper CompressAppend differs from Compress")
	}
	dst := make([]float32, len(src))
	if _, err := codec.DecompressInto(c, dst, direct); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressIntoWrongSize(t *testing.T) {
	c := New(0.01, Auto)
	src := benchSample(16, 8)
	frame, err := c.Compress(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecompressInto(make([]float32, len(src)-1), frame); err == nil {
		t.Fatal("expected error for undersized destination")
	}
}

// TestBufferedRoundTripAllocs pins the tentpole's codec half: a steady-state
// round trip through the buffered API must not allocate, in any mode (Auto
// runs both sub-encoders, so this also covers the reused candidate buffer).
func TestBufferedRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	src := benchSample(256, 16)
	for _, mode := range []Mode{Auto, VectorLZ, Entropy} {
		c := New(0.01, mode)
		var frame []byte
		dst := make([]float32, len(src))
		roundTrip := func() {
			var err error
			frame, err = c.CompressAppend(frame[:0], src, 16)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.DecompressInto(dst, frame); err != nil {
				t.Fatal(err)
			}
		}
		roundTrip() // warm the pooled workspace and frame buffer
		if allocs := testing.AllocsPerRun(100, roundTrip); allocs > 0 {
			t.Errorf("mode %v: steady-state round trip allocates %.1f times per op, want 0", mode, allocs)
		}
	}
}

// TestSelectEncoderDeterministic pins the satellite fix for Algorithm 2's
// noise sensitivity: with multi-rep best-of timings and a bandwidth low
// enough that the 1/CR term dominates Eq. (2), the selected mode for a fixed
// sample must be identical across repeated calls.
func TestSelectEncoderDeterministic(t *testing.T) {
	src := benchSample(512, 16)
	first, _, err := SelectEncoder(src, 16, 0.01, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mode, cands, err := SelectEncoder(src, 16, 0.01, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if mode != first {
			t.Fatalf("call %d selected %v, first call selected %v (cands %+v)", i, mode, first, cands)
		}
	}
}
