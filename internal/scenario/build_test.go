package scenario

import (
	"reflect"
	"testing"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

// tinySpec is a scenario small enough for unit tests.
func tinySpec() Spec {
	return Spec{
		Dataset: "kaggle", Scale: 8000, Dim: 8, Ranks: 4, Batch: 64, Steps: 3,
		BottomMLP: []int{16, 8}, TopMLP: []int{16, 8},
	}
}

// TestBuildMatchesHandConstruction is the refactor's keystone: a Spec run
// through Build must reproduce, bit for bit, what the call sites used to
// assemble by hand (generator, model config, topology, codec wiring).
func TestBuildMatchesHandConstruction(t *testing.T) {
	sp := tinySpec()
	sp.Codec, sp.ErrorBound = "hybrid", 0.02

	// The hand-rolled construction path, as cmd/dlrmtrain wrote it.
	data := criteo.ScaledSpec(criteo.KaggleSpec(), 8000)
	gen := criteo.NewGenerator(data)
	tr, err := dist.NewTrainer(dist.Options{
		Ranks: 4,
		Model: model.Config{
			DenseFeatures:     data.DenseFeatures,
			EmbeddingDim:      8,
			TableSizes:        data.Cardinalities,
			InitCardinalities: data.FullCardinalities,
			BottomMLP:         []int{16, 8},
			TopMLP:            []int{16, 8},
			Seed:              data.Seed,
		},
		Net:      netmodel.Slingshot10(),
		CodecFor: func(int) codec.Codec { return hybrid.New(0.02, hybrid.Auto) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantLosses []float32
	for i := 0; i < 3; i++ {
		loss, err := tr.Step(gen.NextBatch(64))
		if err != nil {
			t.Fatal(err)
		}
		wantLosses = append(wantLosses, loss)
	}

	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Losses, wantLosses) {
		t.Fatalf("scenario losses diverge from hand construction:\ngot  %v\nwant %v", res.Losses, wantLosses)
	}
	if got, want := res.CompressionRatio, tr.CompressionRatio(); got != want {
		t.Fatalf("CR %v != hand-built %v", got, want)
	}
	if want := profileutil.Breakdown(tr.Cluster().SimTimes()); !reflect.DeepEqual(res.SimTime, want) {
		t.Fatalf("sim-time buckets diverge:\ngot  %v\nwant %v", res.SimTime, want)
	}
}

func TestBuildHierTopologyAndAlgo(t *testing.T) {
	sp := tinySpec()
	sp.Ranks, sp.Batch = 8, 64
	sp.Topology, sp.RanksPerNode, sp.A2A = "hier", 4, "twophase"
	b, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Net.Name() != "hierarchical" || b.Net.Nodes(8) != 2 {
		t.Fatalf("topology %s across %d nodes, want hierarchical across 2", b.Net.Name(), b.Net.Nodes(8))
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 3 {
		t.Fatalf("got %d losses, want 3", len(res.Losses))
	}
	if res.SimTime["fwd-a2a-intra"] == 0 || res.SimTime["fwd-a2a-inter"] == 0 {
		t.Fatalf("hier run should charge split a2a buckets, got %v", res.SimTime)
	}
}

func TestBuildAdaptiveOffline(t *testing.T) {
	sp := tinySpec()
	sp.Codec = "hybrid"
	sp.Adaptive = true
	sp.Eval = 128
	b, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Offline == nil {
		t.Fatal("offline classification did not run")
	}
	res, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Offline == nil {
		t.Fatal("result lacks offline counts")
	}
	if n := res.Offline.L + res.Offline.M + res.Offline.S; n != len(criteo.KaggleCardinalities) {
		t.Fatalf("class counts sum to %d, want %d", n, len(criteo.KaggleCardinalities))
	}
	if res.CompressionRatio <= 1 {
		t.Fatalf("adaptive hybrid run should compress, CR %v", res.CompressionRatio)
	}
}

// TestBuildEnvDeterministic: the probe env is a pure function of the Spec.
func TestBuildEnvDeterministic(t *testing.T) {
	sp := tinySpec()
	sp.WarmSteps = 5
	e1, err := sp.BuildEnv()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sp.BuildEnv()
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := e1.SampleLookups(32)
	s2, _ := e2.SampleLookups(32)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("warmed probe envs diverge for the same spec")
	}
}

func TestBuildRejectsInvalidSpec(t *testing.T) {
	sp := tinySpec()
	sp.Ranks, sp.Nodes, sp.Topology = 8, 8, "hier" // 8 != 8×4
	if _, err := sp.Build(); err == nil {
		t.Fatal("inconsistent cluster shape must not build")
	}
}
