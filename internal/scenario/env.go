package scenario

import (
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
)

// warmBatch is the single-process mini-batch size of the standard warm
// recipe (the offline-analysis experiments all warm with it).
const warmBatch = 128

// Env is a warmed single-process probe environment: the model and
// generator the offline analysis (and the compression experiments) sample
// lookup batches from. It is the single-process counterpart of Built.
type Env struct {
	// Spec is the resolved scenario the env was built from.
	Spec Spec
	// Data is the scaled criteo dataset spec.
	Data criteo.Spec
	// Gen is the env's own batch stream (independent of any trainer's).
	Gen *criteo.Generator
	// Model is the probe DLRM, warmed Spec.WarmSteps steps at construction.
	Model *model.DLRM
	// Dim is the embedding dimension (Spec.Dim, mirrored for convenience).
	Dim int
}

// BuildEnv resolves the spec and builds its probe environment: a fresh
// generator and model over the scaled dataset, warmed Spec.WarmSteps
// single-process steps (trained tables are what the paper compresses).
func (s Spec) BuildEnv() (*Env, error) {
	rs, err := s.Resolved()
	if err != nil {
		return nil, err
	}
	return buildEnvResolved(rs, scaledData(rs))
}

// buildEnvResolved is BuildEnv after resolution, shared with the adaptive
// offline flow so both sample from an identically-constructed env.
func buildEnvResolved(rs Spec, data criteo.Spec) (*Env, error) {
	m, err := model.New(modelConfig(rs, data))
	if err != nil {
		return nil, err
	}
	e := &Env{Spec: rs, Data: data, Gen: criteo.NewGenerator(data), Model: m, Dim: rs.Dim}
	e.Warm(rs.WarmSteps)
	return e, nil
}

// Warm advances the env's model by additional single-process training steps
// using the standard recipe (batch 128, the default dense and embedding
// learning rates).
func (e *Env) Warm(steps int) {
	opt := &nn.SGD{LR: dist.DefaultDenseLR}
	for i := 0; i < steps; i++ {
		b := e.Gen.NextBatch(warmBatch)
		e.Model.TrainStep(b.Dense, b.Indices, b.Labels, opt, dist.DefaultEmbLR)
	}
}

// SampleLookups gathers one lookup batch per table — the data that flows
// through the forward all-to-all — plus the batch it came from.
func (e *Env) SampleLookups(batch int) ([][]float32, *criteo.Batch) {
	b := e.Gen.NextBatch(batch)
	out := make([][]float32, len(e.Model.Emb.Tables))
	for t, tab := range e.Model.Emb.Tables {
		out[t] = tab.Lookup(b.Indices[t]).Data
	}
	return out, b
}

// DefaultScale is the dataset cardinality scale-down the experiment suite
// uses: aggressive in quick (CI) mode, the paper-feasible 400x otherwise.
func DefaultScale(quick bool) int {
	if quick {
		return 4000
	}
	return 400
}

// DefaultWarmSteps is the experiment suite's warm length before sampling
// (trained tables are what the paper compresses).
func DefaultWarmSteps(quick bool) int {
	if quick {
		return 40
	}
	return 300
}
