// Package scenario is the declarative configuration layer of the
// reproduction: one Spec type describes a complete training scenario —
// dataset and scale, model shape, cluster shape and topology, all-to-all
// algorithm, codec and error bound, adaptive error-bound schedule,
// comm/compute overlap — as plain data that round-trips through JSON.
//
// The layer replaces the three hand-rolled construction paths that grew
// around the trainer (cmd/dlrmtrain's flags, each experiment's private
// env/trainer loops, and the examples):
//
//   - Spec.Validate reports every configuration error at once (including
//     the classic silent ones: -ranks inconsistent with
//     -nodes × -ranks-per-node, a hierarchical topology pinned to one
//     node);
//   - Spec.Build assembles the netmodel.Topology, the dist.Trainer, the
//     criteo.Generator, and — for adaptive runs — the offline
//     classification and adapt.Controller, exactly as every call site used
//     to do by hand;
//   - Spec.BuildEnv assembles the warmed single-process probe environment
//     the offline-analysis experiments sample lookups from;
//   - Run executes one scenario and returns a structured Result (loss
//     curve, sim-time buckets, compression ratio, eval metrics,
//     wall-clock);
//   - Axes expands per-axis value lists into the cross product of Specs,
//     and Sweep runs a Spec list on a bounded worker pool. Every scenario
//     seeds its own generator and model from the Spec alone, so sweep
//     results are bit-identical at any worker count.
//
// Sim-time buckets are charged by the layers below (internal/cluster,
// internal/dist); this package only aggregates them into Result.SimTime.
package scenario
