package scenario

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/profileutil"
)

// Result is one completed scenario.
type Result struct {
	// Spec is the resolved scenario that produced the result.
	Spec Spec `json:"spec"`
	// Losses is the per-step training loss curve.
	Losses []float32 `json:"losses,omitempty"`
	// Accuracy and LogLoss are the post-training eval metrics (Spec.Eval > 0).
	Accuracy float64 `json:"accuracy,omitempty"`
	LogLoss  float64 `json:"logloss,omitempty"`
	// CompressionRatio is raw/wire bytes of all codec'd forward all-to-all
	// traffic (1 when uncompressed).
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
	// SimTime is the simulated time breakdown by bucket.
	SimTime profileutil.Breakdown `json:"sim_time,omitempty"`
	// SerialSimTime / OverlappedSimTime report both clocks of an overlapped
	// run (zero unless Spec.Overlap).
	SerialSimTime     time.Duration `json:"serial_sim_time,omitempty"`
	OverlappedSimTime time.Duration `json:"overlapped_sim_time,omitempty"`
	// Offline reports the L/M/S table counts when the offline
	// classification ran.
	Offline *OfflineCounts `json:"offline,omitempty"`
	// Reshards reports the elastic rank-set changes an event-bearing fault
	// plan caused, in event order.
	Reshards []ReshardReport `json:"reshards,omitempty"`
	// Checkpoints reports the checkpoint activity (periodic saves plus the
	// segment-boundary saves of an elastic run).
	Checkpoints *CheckpointReport `json:"checkpoints,omitempty"`
	// WallClock is how long the scenario took for real. It is the one
	// nondeterministic field: determinism comparisons must ignore it.
	WallClock time.Duration `json:"wall_clock,omitempty"`
}

// ReshardReport is one elastic world-size change.
type ReshardReport struct {
	// Step is the training step before which the rank set changed.
	Step int `json:"step"`
	// FromRanks and ToRanks are the world sizes on each side.
	FromRanks int `json:"from_ranks"`
	ToRanks   int `json:"to_ranks"`
	// MovedTables and MovedBytes size the round-robin redistribution the
	// change caused (charged to the "reshard" sim-time bucket).
	MovedTables int   `json:"moved_tables"`
	MovedBytes  int64 `json:"moved_bytes"`
}

// CheckpointReport sums a run's checkpoint traffic.
type CheckpointReport struct {
	// Count is how many checkpoints were saved.
	Count int `json:"count"`
	// RawBytes and WireBytes sum the uncompressed and encoded weight
	// payloads across all saves.
	RawBytes  int64 `json:"raw_bytes"`
	WireBytes int64 `json:"wire_bytes"`
	// Ratio is RawBytes/WireBytes (1 when nothing was saved).
	Ratio float64 `json:"ratio"`
}

// OfflineCounts are the table counts per error-bound class.
type OfflineCounts struct {
	L int `json:"l"`
	M int `json:"m"`
	S int `json:"s"`
}

// Run executes the built scenario: Steps training steps (pipelined when
// Spec.Overlap, segmented when the fault plan schedules drop/rejoin
// events), the optional evaluation, and the metric harvest.
func (b *Built) Run() (*Result, error) {
	start := time.Now()
	rs := b.Spec
	if rs.Faults != nil && len(rs.Faults.Events) > 0 {
		return b.runElastic(start)
	}
	res := &Result{Spec: rs}
	ck := newCheckpointer(rs.Checkpoint)
	if rs.Overlap {
		losses, err := b.Trainer.RunPipelined(rs.Steps, func(int) *criteo.Batch { return b.Gen.NextBatch(rs.Batch) })
		if err != nil {
			return nil, err
		}
		res.Losses = losses
		res.SerialSimTime = b.Trainer.SerialSimTime()
		res.OverlappedSimTime = b.Trainer.OverlappedSimTime()
	} else {
		res.Losses = make([]float32, 0, rs.Steps)
		for i := 0; i < rs.Steps; i++ {
			loss, err := b.Trainer.Step(b.Gen.NextBatch(rs.Batch))
			if err != nil {
				return nil, err
			}
			res.Losses = append(res.Losses, loss)
			if err := ck.maybe(b.Trainer); err != nil {
				return nil, err
			}
		}
	}
	if rs.Eval > 0 {
		res.Accuracy, res.LogLoss = b.Trainer.Evaluate(b.Gen.NextBatch(rs.Eval))
	}
	res.CompressionRatio = b.Trainer.CompressionRatio()
	res.SimTime = profileutil.Breakdown(b.Trainer.Cluster().SimTimes())
	res.Checkpoints = ck.report()
	if b.Offline != nil {
		l, m, s := b.Offline.ClassCounts()
		res.Offline = &OfflineCounts{L: l, M: m, S: s}
	}
	res.WallClock = time.Since(start)
	return res, nil
}

// Run builds and executes one scenario.
func Run(s Spec) (*Result, error) {
	b, err := s.Build()
	if err != nil {
		return nil, err
	}
	return b.Run()
}

// SweepOptions tunes the sweep runner.
type SweepOptions struct {
	// Workers bounds the worker pool (<= 0 = GOMAXPROCS). Results are
	// bit-identical at any worker count: every scenario seeds its own
	// generator and model from its Spec alone.
	Workers int `json:"workers,omitempty"`

	// SpecWorkers sets the intra-rank width (both ComputeWorkers and
	// CodecWorkers) of every swept spec that left both at 0 (auto); specs
	// that pin either knob are never overridden. 0 defers to the
	// DLRMCOMP_WORKERS environment variable (unset or unparsable = no
	// override); negative disables the override, ignoring the environment.
	// Like Workers, the setting cannot change results — the intra-rank
	// parallel paths are bit-identical at every width — only wall-clock.
	SpecWorkers int `json:"spec_workers,omitempty"`
}

// resolveSpecWorkers turns the SpecWorkers knob plus the DLRMCOMP_WORKERS
// environment variable into the effective per-spec width (0 = no override).
func resolveSpecWorkers(v int) int {
	if v > 0 {
		return v
	}
	if v < 0 {
		return 0
	}
	if env := os.Getenv("DLRMCOMP_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// applySpecWorkers returns the spec with the sweep-level worker width
// applied, leaving specs that pin their own width untouched.
func applySpecWorkers(s Spec, w int) Spec {
	if w > 0 && s.ComputeWorkers == 0 && s.CodecWorkers == 0 {
		s.ComputeWorkers = w
		s.CodecWorkers = w
	}
	return s
}

// Sweep runs every spec on a bounded worker pool and returns the results
// in spec order. A failed scenario leaves a nil slot in the results and
// contributes one error to the joined return error, so one bad cell does
// not discard the rest of the grid.
func Sweep(specs []Spec, opts SweepOptions) ([]*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	specWorkers := resolveSpecWorkers(opts.SpecWorkers)
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := Run(applySpecWorkers(specs[i], specWorkers))
				if err != nil {
					name := specs[i].Name
					if name == "" {
						name = fmt.Sprintf("#%d", i)
					}
					errs[i] = fmt.Errorf("scenario %s: %w", name, err)
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errors.Join(errs...)
}

// Axes expands per-axis value lists into the cross product of Specs: every
// listed axis replaces the corresponding Base field; an empty axis keeps
// Base's value. Expansion order is fixed and documented — Datasets
// outermost, then Ranks, Topologies, Codecs, ErrorBounds, Schedules,
// Overlaps innermost — so sweep output rows land in a predictable order.
type Axes struct {
	Base        Spec      `json:"base"`
	Datasets    []string  `json:"datasets,omitempty"`
	Ranks       []int     `json:"ranks,omitempty"`
	Topologies  []string  `json:"topologies,omitempty"`
	Codecs      []string  `json:"codecs,omitempty"`
	ErrorBounds []float64 `json:"ebs,omitempty"`
	Schedules   []string  `json:"schedules,omitempty"`
	Overlaps    []bool    `json:"overlaps,omitempty"`
}

// expandAxis crosses the current spec list with one axis.
func expandAxis[T any](in []Spec, vals []T, set func(*Spec, T)) []Spec {
	if len(vals) == 0 {
		return in
	}
	out := make([]Spec, 0, len(in)*len(vals))
	for _, s := range in {
		for _, v := range vals {
			c := s
			set(&c, v)
			out = append(out, c)
		}
	}
	return out
}

// Expand returns the cross product of the axes over Base.
func (a Axes) Expand() []Spec {
	out := []Spec{a.Base}
	out = expandAxis(out, a.Datasets, func(s *Spec, v string) { s.Dataset = v })
	out = expandAxis(out, a.Ranks, func(s *Spec, v int) { s.Ranks = v })
	out = expandAxis(out, a.Topologies, func(s *Spec, v string) { s.Topology = v })
	out = expandAxis(out, a.Codecs, func(s *Spec, v string) { s.Codec = v })
	out = expandAxis(out, a.ErrorBounds, func(s *Spec, v float64) { s.ErrorBound = v })
	out = expandAxis(out, a.Schedules, func(s *Spec, v string) { s.Schedule = v })
	out = expandAxis(out, a.Overlaps, func(s *Spec, v bool) { s.Overlap = v })
	return out
}
