package scenario

import (
	"fmt"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/fzgpulike"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lowprec"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
)

// Built is a scenario turned into live objects: the resolved Spec, the
// scaled dataset and its generator, the interconnect model, and the trainer
// wired with codec, controller, and device exactly as the Spec declares.
type Built struct {
	// Spec is the resolved (defaults-filled) scenario.
	Spec Spec
	// Data is the scaled criteo dataset spec the generator draws from.
	Data criteo.Spec
	// Gen is the training batch stream. The offline classification of an
	// adaptive scenario with WarmSteps == 0 samples its first batch from
	// this generator (the CLI's offline flow), so training resumes from the
	// post-probe stream state.
	Gen *criteo.Generator
	// Net is the interconnect topology the trainer charges sim-time against.
	Net netmodel.Topology
	// Trainer is the hybrid-parallel trainer, ready to Step.
	Trainer *dist.Trainer
	// Offline holds the offline classification when the adaptive flow ran
	// with Classes == "offline" (nil otherwise).
	Offline *adapt.OfflineResult
}

// codecFactory maps a resolved codec name onto a constructor returning a
// fresh instance per call (per-table instances keep the adaptive
// controller's per-table bounds independent). "none" returns nil.
func codecFactory(name string, eb float32) func() codec.Codec {
	switch name {
	case "hybrid":
		return func() codec.Codec { return hybrid.New(eb, hybrid.Auto) }
	case "vector":
		return func() codec.Codec { return hybrid.New(eb, hybrid.VectorLZ) }
	case "huffman":
		return func() codec.Codec { return hybrid.New(eb, hybrid.Entropy) }
	case "fp16":
		return func() codec.Codec { return lowprec.FP16Codec{} }
	case "fp8":
		return func() codec.Codec { return lowprec.FP8Codec{Format: lowprec.E4M3} }
	case "cusz":
		return func() codec.Codec { return cuszlike.New(eb, cuszlike.Lorenzo1D) }
	case "fzgpu":
		return func() codec.Codec { return fzgpulike.New(eb) }
	case "lz4":
		return func() codec.Codec { return lz4like.LZSSCodec{} }
	case "deflate":
		return func() codec.Codec { return lz4like.DeflateCodec{} }
	}
	return nil
}

// scaledData returns the (possibly seed-overridden) scaled dataset spec of
// a resolved scenario.
func scaledData(rs Spec) criteo.Spec {
	data := baseSpec(rs.Dataset)
	if rs.Seed != 0 {
		data.Seed = rs.Seed
	}
	return criteo.ScaledSpec(data, rs.Scale)
}

// modelConfig returns the DLRM config a resolved scenario declares over its
// scaled dataset.
func modelConfig(rs Spec, data criteo.Spec) model.Config {
	seed := rs.ModelSeed
	if seed == 0 {
		seed = data.Seed
	}
	return model.Config{
		DenseFeatures:     data.DenseFeatures,
		EmbeddingDim:      rs.Dim,
		TableSizes:        data.Cardinalities,
		InitCardinalities: data.FullCardinalities,
		BottomMLP:         rs.BottomMLP,
		TopMLP:            rs.TopMLP,
		Seed:              seed,
	}
}

// Build resolves the spec and assembles the scenario: topology, dataset
// generator, model config, per-table codecs, the adaptive controller (with
// its offline classification when requested), and the trainer. Specs
// declaring the tcp transport cannot build in one process — launch one
// cmd/dlrmworker per rank, which calls BuildWorker.
func (s Spec) Build() (*Built, error) {
	rs, err := s.Resolved()
	if err != nil {
		return nil, err
	}
	if rs.Transport == "tcp" {
		return nil, fmt.Errorf("scenario: transport %q runs one process per rank; launch cmd/dlrmworker (which uses BuildWorker) instead of Build", rs.Transport)
	}
	return build(rs, nil)
}

// BuildWorker assembles one rank's share of a multi-process run: the same
// scenario Build would assemble, with the trainer's collectives running
// over the given transport endpoint. Every worker process must call it
// with an identical spec; each then drives its own Built through the same
// lockstep Run, and the per-step losses every process reports are
// bit-identical to each other and to the in-process Build of the same
// spec (rank 0's process also reproduces the sim-time buckets).
func (s Spec) BuildWorker(tr cluster.Transport) (*Built, error) {
	rs, err := s.Resolved()
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("scenario: BuildWorker needs a transport endpoint")
	}
	if tr.World() != rs.Ranks {
		return nil, fmt.Errorf("scenario: transport world %d does not match the spec's %d ranks", tr.World(), rs.Ranks)
	}
	if rs.Overlap {
		return nil, fmt.Errorf("scenario: overlap needs every rank in one process; BuildWorker cannot run it")
	}
	if rs.Eval > 0 {
		return nil, fmt.Errorf("scenario: eval needs the whole trained model in one process; BuildWorker cannot run it")
	}
	return build(rs, tr)
}

// trainerOptions assembles the dist.Options a resolved scenario declares,
// minus the adaptive controller (build adds the real one, the elastic
// runner's segment rebuilds a placeholder the restore overwrites). The
// fault plan rides along as-is — the dist layer consumes its jitter and
// slow multipliers and ignores its events, which only the elastic runner
// acts on.
func trainerOptions(rs Spec, cfg model.Config, net netmodel.Topology, tr cluster.Transport) (dist.Options, error) {
	algo, err := cluster.ParseA2AAlgo(rs.A2A)
	if err != nil {
		return dist.Options{}, err
	}
	opts := dist.Options{
		Ranks:              rs.Ranks,
		Transport:          tr,
		Model:              cfg,
		Net:                net,
		Algo:               algo,
		OtherComputeFactor: rs.OtherComputeFactor,
		CodecWorkers:       rs.CodecWorkers,
		ComputeWorkers:     rs.ComputeWorkers,
		Faults:             rs.Faults,
	}
	if rs.Device == "paper" {
		opts.Device = netmodel.PaperDevice()
	}
	makeCodec := codecFactory(rs.Codec, float32(rs.ErrorBound))
	if makeCodec != nil {
		opts.CodecFor = func(int) codec.Codec { return makeCodec() }
	} else if rs.Codec != "none" {
		// Validation accepted the name but the factory has no case for it:
		// a drift between codecNames and codecFactory. Running uncompressed
		// silently is exactly the failure mode this layer removes.
		return dist.Options{}, fmt.Errorf("scenario: codec %q validated but has no factory; codecNames and codecFactory have drifted", rs.Codec)
	}
	return opts, nil
}

// build assembles a resolved scenario, over the in-process fabric when tr
// is nil or the given endpoint otherwise.
func build(rs Spec, tr cluster.Transport) (*Built, error) {
	data := scaledData(rs)
	gen := criteo.NewGenerator(data)
	net, err := netmodel.ByName(rs.Topology, rs.RanksPerNode)
	if err != nil {
		return nil, err
	}
	cfg := modelConfig(rs, data)
	opts, err := trainerOptions(rs, cfg, net, tr)
	if err != nil {
		return nil, err
	}

	b := &Built{Spec: rs, Data: data, Gen: gen, Net: net}
	if rs.Adaptive {
		ctrl, offline, err := buildController(rs, data, cfg, gen)
		if err != nil {
			return nil, err
		}
		opts.Controller = ctrl
		b.Offline = offline
	}
	trainer, err := dist.NewTrainer(opts)
	if err != nil {
		return nil, err
	}
	b.Trainer = trainer
	return b, nil
}

// buildController assembles the adaptive controller a resolved scenario
// declares: either a uniform ClassMedium configuration or the paper's
// offline classification — sampled from a probe model warmed WarmSteps
// single-process steps (its own generator), or, when WarmSteps is 0, from
// the freshly-initialized model on the training generator's first batch.
func buildController(rs Spec, data criteo.Spec, cfg model.Config, gen *criteo.Generator) (*adapt.Controller, *adapt.OfflineResult, error) {
	var classes []adapt.Class
	var offline *adapt.OfflineResult
	switch rs.Classes {
	case "uniform":
		classes = make([]adapt.Class, len(cfg.TableSizes))
		for i := range classes {
			classes[i] = adapt.ClassMedium
		}
	case "offline":
		var samples [][]float32
		if rs.WarmSteps > 0 {
			env, err := buildEnvResolved(rs, data)
			if err != nil {
				return nil, nil, err
			}
			samples, _ = env.SampleLookups(rs.OfflineBatch)
		} else {
			probe, err := model.New(cfg)
			if err != nil {
				return nil, nil, err
			}
			bt := gen.NextBatch(rs.OfflineBatch)
			samples = make([][]float32, len(probe.Emb.Tables))
			for t, tab := range probe.Emb.Tables {
				samples[t] = tab.Lookup(bt.Indices[t]).Data
			}
		}
		res, err := adapt.OfflineAnalysis(samples, rs.Dim, adapt.OfflineOptions{SampleEB: float32(rs.OfflineEB)})
		if err != nil {
			return nil, nil, err
		}
		classes, offline = res.Classes, res
	default:
		return nil, nil, fmt.Errorf("scenario: unknown classes %q", rs.Classes)
	}
	sched, err := adapt.ParseSchedule(rs.Schedule)
	if err != nil {
		return nil, nil, err
	}
	ctrl, err := adapt.NewController(classes, adapt.PaperEBConfig(), sched, rs.DecayPhase, rs.DecayFactor)
	if err != nil {
		return nil, nil, err
	}
	return ctrl, offline, nil
}
