package scenario

import (
	"io"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/serve"
)

// Data returns the scaled (and possibly seed-overridden) criteo dataset
// spec of a resolved scenario — the stream both training and the serving
// load drivers draw from. Call it on Resolved output; on an unresolved
// spec the unfilled defaults (dataset, scale) flow through literally.
func (s Spec) Data() criteo.Spec { return scaledData(s) }

// ModelConfig returns the DLRM config a resolved scenario declares — what
// serve.New needs to rebuild the architecture around a checkpoint's
// weights. Same resolution caveat as Data.
func (s Spec) ModelConfig() model.Config { return modelConfig(s, scaledData(s)) }

// ServeOptions translates a resolved scenario's Serve block into
// serve.Options. A nil Serve block means "all defaults" — every scenario
// can be served.
func (s Spec) ServeOptions() serve.Options {
	sv := s.Serve
	if sv == nil {
		return serve.Options{}
	}
	return serve.Options{
		Shards:     sv.Shards,
		ColdCodec:  sv.Codec,
		QuantEB:    float32(sv.QuantEB),
		BlockRows:  sv.BlockRows,
		HotBytes:   sv.HotBytes,
		MaxBatch:   sv.MaxBatch,
		Linger:     time.Duration(sv.LingerUS) * time.Microsecond,
		QueueDepth: sv.QueueDepth,
		Workers:    sv.Workers,
	}
}

// BuildServer loads a serving layer for this scenario from a DLCK
// checkpoint stream (cmd/dlrmtrain -save writes one). The model
// architecture comes from the scenario — the checkpoint carries shapes and
// weights only — so the spec must be the one the checkpoint was trained
// under.
func (s Spec) BuildServer(r io.Reader) (*serve.Server, error) {
	rs, err := s.Resolved()
	if err != nil {
		return nil, err
	}
	return serve.New(rs.ModelConfig(), r, rs.ServeOptions())
}
