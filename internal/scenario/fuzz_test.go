package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dlrmcomp/internal/cluster"
)

// The fuzz layer polices two scenario-engine contracts:
//
//   - FuzzSpecRoundTrip: any JSON the loader accepts survives
//     marshal→load→marshal unchanged, and a Validate-clean spec resolves
//     to a spec that is itself Validate-clean and a Resolved fixed point.
//     This is the drift detector for the declarative surface — a field
//     rename, a default that Resolved fills inconsistently, or a
//     validation rule Resolved can violate all land here.
//
//   - FuzzSpecBuild: any Validate-clean spec (clamped to a tiny budget)
//     must actually build and train two steps without an error or a
//     panic, producing finite losses — Validate's documented contract
//     ("nil means Build will accept the spec") checked by brute force,
//     elastic/checkpoint paths included.
//
// Corpus policy (see CONTRIBUTING.md): seeds live in code (f.Add) and in
// the committed example scenarios; crashers that CI finds are uploaded as
// artifacts and, once fixed, their inputs are added as f.Add seeds so the
// regression stays pinned.

// addScenarioSeeds feeds every committed example scenario into the corpus.
func addScenarioSeeds(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no committed scenarios to seed from (err %v)", err)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
}

func FuzzSpecRoundTrip(f *testing.F) {
	addScenarioSeeds(f)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"steps": 10, "faults": {"jitter": 0.5, "slow": [{"rank": 0, "factor": 2}]}}`))
	f.Add([]byte(`{"checkpoint": {"every": 3, "codec": "deflate", "verify": true}}`))
	f.Add([]byte(`{"serve": {"shards": 2, "codec": "quant", "quant_eb": 0.02, "hot_bytes": -1}}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var s Spec
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if dec.Decode(&s) != nil {
			t.Skip("not a spec")
		}
		m1, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		var s2 Spec
		dec = json.NewDecoder(bytes.NewReader(m1))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s2); err != nil {
			t.Fatalf("own marshal does not load back: %v\n%s", err, m1)
		}
		m2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("marshal→load→marshal changed the spec:\nfirst  %s\nsecond %s", m1, m2)
		}

		if s.Validate() != nil {
			return
		}
		rs, err := s.Resolved()
		if err != nil {
			t.Fatalf("Validate passed but Resolved failed: %v\nspec %s", err, m1)
		}
		if err := rs.Validate(); err != nil {
			t.Fatalf("resolved spec fails its own validation: %v\nspec %s", err, m1)
		}
		rs2, err := rs.Resolved()
		if err != nil {
			t.Fatalf("resolved spec does not re-resolve: %v", err)
		}
		r1, _ := json.Marshal(rs)
		r2, _ := json.Marshal(rs2)
		if !bytes.Equal(r1, r2) {
			t.Fatalf("Resolved is not a fixed point:\nonce  %s\ntwice %s", r1, r2)
		}
	})
}

// fuzzSpec clamps raw fuzz inputs into a budget-bounded Spec: tiny tables
// (scale ≥ 4000), at most 8 ranks, 2 steps, small batches. The clamps
// steer toward Validate-clean specs without hiding any resolve/build
// logic — combinations the clamps cannot reconcile are skipped by the
// Validate gate in FuzzSpecBuild.
func fuzzSpec(terabyte bool, scale uint16, dim, ranks, batch uint8, codecIdx uint8, eb float64,
	adaptive, uniform, hier, overlap bool, schedIdx uint8, jitter float64, slowRank uint8, slowFactor float64,
	withEvents bool, every uint8, ckCodecIdx uint8, verify bool) Spec {

	codecs := []string{"", "none", "hybrid", "vector", "fp16", "lz4"}
	scheds := []string{"", "none", "stepwise", "linear"}
	ckCodecs := []string{"", "raw", "lzss", "deflate"}

	s := Spec{
		Dataset:   "kaggle",
		Scale:     4000 + int(scale)%4000,
		Dim:       int(dim) % 17, // 0 = default 16
		Ranks:     1 + int(ranks)%8,
		Steps:     2,
		BottomMLP: []int{16, 8},
		TopMLP:    []int{16, 8},
		Codec:     codecs[int(codecIdx)%len(codecs)],
		Adaptive:  adaptive,
		Overlap:   overlap,
	}
	if terabyte {
		s.Dataset = "terabyte"
	}
	s.Batch = s.Ranks + int(batch)%64
	if hier {
		s.Topology = "hier"
	}
	if s.Adaptive {
		s.Codec = "hybrid" // adaptive needs an error-bounded codec
		s.Schedule = scheds[int(schedIdx)%len(scheds)]
		s.OfflineBatch = 16
		if uniform {
			s.Classes = "uniform"
		}
	}
	if errorBoundedCodecs[s.Codec] {
		s.ErrorBound = 0.001 + math.Abs(math.Mod(eb, 0.1))
	}

	var fp cluster.FaultPlan
	if j := math.Abs(math.Mod(jitter, 2)); j > 0 {
		fp.Jitter = j
	}
	if slowFactor != 0 {
		fp.Slow = []cluster.SlowRank{{
			Rank:   int(slowRank) % s.Ranks,
			Factor: 1 + math.Abs(math.Mod(slowFactor, 100)),
		}}
	}
	if withEvents && s.Ranks >= 2 && !s.Overlap {
		// Steps is 2, so the only legal event step is 1.
		fp.Events = []cluster.FaultEvent{{Step: 1, Kind: "drop", Rank: int(slowRank+1) % s.Ranks}}
	}
	if fp.Active() || len(fp.Events) > 0 {
		s.Faults = &fp
	}
	if every%3 != 0 && !s.Overlap {
		s.Checkpoint = &CheckpointSpec{
			Every:  int(every) % 3,
			Codec:  ckCodecs[int(ckCodecIdx)%len(ckCodecs)],
			Verify: verify,
		}
	}
	return s
}

func FuzzSpecBuild(f *testing.F) {
	// One seed per committed scenario shape, translated into the clamped
	// argument tuple, plus hand seeds covering the elastic and checkpoint
	// paths.
	f.Add(false, uint16(0), uint8(0), uint8(4), uint8(32), uint8(1), 0.0,
		false, false, false, false, uint8(0), 0.0, uint8(0), 0.0, false, uint8(0), uint8(0), false)
	f.Add(false, uint16(100), uint8(8), uint8(8), uint8(60), uint8(2), 0.02,
		true, false, true, false, uint8(2), 0.2, uint8(5), 10.0, true, uint8(1), uint8(2), true)
	f.Add(true, uint16(999), uint8(16), uint8(2), uint8(16), uint8(4), 0.0,
		false, false, false, true, uint8(0), 0.0, uint8(0), 0.0, false, uint8(0), uint8(0), false)
	f.Add(false, uint16(7), uint8(4), uint8(3), uint8(9), uint8(5), 0.0,
		false, true, false, false, uint8(1), 1.5, uint8(1), 3.0, true, uint8(2), uint8(1), false)

	f.Fuzz(func(t *testing.T, terabyte bool, scale uint16, dim, ranks, batch uint8, codecIdx uint8, eb float64,
		adaptive, uniform, hier, overlap bool, schedIdx uint8, jitter float64, slowRank uint8, slowFactor float64,
		withEvents bool, every uint8, ckCodecIdx uint8, verify bool) {

		s := fuzzSpec(terabyte, scale, dim, ranks, batch, codecIdx, eb,
			adaptive, uniform, hier, overlap, schedIdx, jitter, slowRank, slowFactor,
			withEvents, every, ckCodecIdx, verify)
		if s.Validate() != nil {
			t.Skip("clamps could not reconcile this combination")
		}
		res, err := Run(s)
		if err != nil {
			m, _ := json.Marshal(s)
			t.Fatalf("Validate-clean spec failed to run: %v\nspec %s", err, m)
		}
		if len(res.Losses) != s.Steps {
			t.Fatalf("got %d losses, want %d", len(res.Losses), s.Steps)
		}
		for i, l := range res.Losses {
			if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
				m, _ := json.Marshal(s)
				t.Fatalf("loss[%d] = %v\nspec %s", i, l, m)
			}
		}
	})
}
