package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dlrmcomp/internal/cluster"
)

// fullSpec exercises every field once, for the JSON golden.
func fullSpec() Spec {
	return Spec{
		Name:               "golden",
		Dataset:            "terabyte",
		Scale:              4000,
		Dim:                32,
		Batch:              512,
		Steps:              10,
		Eval:               1000,
		Ranks:              8,
		Nodes:              2,
		RanksPerNode:       4,
		Topology:           "hier",
		A2A:                "twophase",
		Transport:          "inproc", // Overlap below; a tcp spec cannot overlap
		Codec:              "hybrid",
		ErrorBound:         0.02,
		CodecWorkers:       2,
		ComputeWorkers:     4,
		Adaptive:           true,
		Classes:            "offline",
		Schedule:           "stepwise",
		DecayPhase:         5,
		DecayFactor:        2,
		OfflineBatch:       256,
		OfflineEB:          0.005,
		Overlap:            true,
		BottomMLP:          []int{64, 32},
		TopMLP:             []int{64, 32},
		Device:             "paper",
		OtherComputeFactor: 0.8,
		Seed:               7,
		ModelSeed:          9,
		WarmSteps:          4,
		// Overlap above conflicts with events and checkpoints, so fullSpec
		// is marshal-complete but not Validate-clean; tests that resolve it
		// clear Overlap first.
		Faults: &cluster.FaultPlan{
			Seed:   11,
			Jitter: 0.25,
			Slow:   []cluster.SlowRank{{Rank: 5, Factor: 10}},
			Events: []cluster.FaultEvent{
				{Step: 4, Kind: "drop", Rank: 5},
				{Step: 8, Kind: "rejoin", Rank: 5},
			},
		},
		Checkpoint: &CheckpointSpec{Every: 5, Codec: "lzss", Verify: true},
		Serve: &ServeSpec{
			Shards: 2, Codec: "quant", QuantEB: 0.02, BlockRows: 32,
			HotBytes: 1 << 20, MaxBatch: 32, LingerUS: 100,
			QueueDepth: 256, Workers: 2, Requests: 5000, Clients: 8,
		},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want []string // substrings of the joined error; empty = valid
	}{
		{"zero value is valid", Spec{}, nil},
		{"plain flat run", Spec{Dataset: "kaggle", Ranks: 8, Steps: 10, Codec: "hybrid", ErrorBound: 0.02}, nil},
		{"hier with nodes", Spec{Topology: "hier", Nodes: 2, RanksPerNode: 4}, nil},
		{"consistent ranks and nodes", Spec{Topology: "hier", Ranks: 8, Nodes: 2, RanksPerNode: 4}, nil},
		{"unknown dataset", Spec{Dataset: "movielens"}, []string{"unknown dataset"}},
		{"unknown codec", Spec{Codec: "zstd"}, []string{"unknown codec"}},
		{"tcp transport", Spec{Transport: "tcp", Ranks: 4, Steps: 5}, nil},
		{"unknown transport", Spec{Transport: "mpi"}, []string{"unknown transport"}},
		{"tcp cannot overlap", Spec{Transport: "tcp", Overlap: true}, []string{"transport tcp cannot overlap"}},
		{"tcp cannot eval", Spec{Transport: "tcp", Eval: 100}, []string{"transport tcp cannot eval"}},
		{"unknown topology", Spec{Topology: "torus"}, []string{"unknown topology"}},
		{"unknown a2a", Spec{A2A: "ring"}, []string{"all-to-all algorithm"}},
		{"unknown schedule", Spec{Schedule: "cosine"}, []string{"decay schedule"}},
		{"unknown device", Spec{Device: "h100"}, []string{"unknown device"}},
		{"unknown classes", Spec{Classes: "manual"}, []string{"unknown classes"}},
		{"negative steps", Spec{Steps: -1}, []string{"steps must be >= 0"}},
		{"negative eb", Spec{ErrorBound: -0.1}, []string{"eb must be >= 0"}},
		{"negative compute workers", Spec{ComputeWorkers: -1}, []string{"compute_workers must be >= 0"}},
		{"pinned compute workers", Spec{ComputeWorkers: 8}, nil},
		{"fractional decay factor", Spec{DecayFactor: 0.5}, []string{"decay_factor"}},
		{
			"ranks inconsistent with nodes (the old silent override)",
			Spec{Topology: "hier", Ranks: 8, Nodes: 8, RanksPerNode: 4},
			[]string{"ranks 8 is inconsistent with nodes 8 × ranks_per_node 4"},
		},
		{
			"hier pinned to one node",
			Spec{Topology: "hier", Nodes: 1},
			[]string{"nodes=1"},
		},
		{
			// The degenerate intra-only baseline the scaling sweep uses.
			"hier that merely fits in one node stays legal",
			Spec{Topology: "hier", Ranks: 4, RanksPerNode: 4},
			nil,
		},
		{"nodes on flat topology", Spec{Nodes: 2}, []string{"requires topology=hier"}},
		{"batch below ranks", Spec{Ranks: 64, Batch: 32}, []string{"smaller than the 64 ranks"}},
		{
			// Validate must mean what it says: nil == Build will accept.
			"default batch below ranks",
			Spec{Dataset: "kaggle", Ranks: 256},
			[]string{"default batch 128", "set batch explicitly"},
		},
		{"error-bounded codec without eb", Spec{Codec: "hybrid"}, []string{"set eb > 0"}},
		{"adaptive without codec", Spec{Adaptive: true}, []string{"adaptive error bounds need a codec"}},
		{"adaptive with fixed-rate codec", Spec{Adaptive: true, Codec: "fp16"}, []string{"error-bounded codec"}},
		{"adaptive hybrid needs no eb", Spec{Adaptive: true, Codec: "hybrid"}, nil},
		{
			"faults with straggler and events",
			Spec{Ranks: 8, Steps: 40, Faults: &cluster.FaultPlan{
				Jitter: 0.2,
				Slow:   []cluster.SlowRank{{Rank: 5, Factor: 10}},
				Events: []cluster.FaultEvent{{Step: 20, Kind: "drop", Rank: 5}, {Step: 30, Kind: "rejoin", Rank: 5}},
			}},
			nil,
		},
		{
			"slow rank outside the world",
			Spec{Ranks: 4, Faults: &cluster.FaultPlan{Slow: []cluster.SlowRank{{Rank: 7, Factor: 2}}}},
			[]string{"slow rank 7 outside world of 4"},
		},
		{
			"fault event at or past the run's steps",
			Spec{Ranks: 4, Steps: 10, Faults: &cluster.FaultPlan{Events: []cluster.FaultEvent{{Step: 10, Kind: "drop", Rank: 1}}}},
			[]string{"at or past the run's 10 steps"},
		},
		{
			"fault events over tcp",
			Spec{Transport: "tcp", Ranks: 4, Steps: 10, Faults: &cluster.FaultPlan{Events: []cluster.FaultEvent{{Step: 5, Kind: "drop", Rank: 1}}}},
			[]string{"fault events need the in-process transport"},
		},
		{
			"fault events under overlap",
			Spec{Overlap: true, Ranks: 4, Steps: 10, Faults: &cluster.FaultPlan{Events: []cluster.FaultEvent{{Step: 5, Kind: "drop", Rank: 1}}}},
			[]string{"fault events cannot overlap"},
		},
		{
			"jitter and stragglers alone are fine under tcp and overlap",
			Spec{Transport: "tcp", Ranks: 4, Steps: 10, Faults: &cluster.FaultPlan{Jitter: 0.1, Slow: []cluster.SlowRank{{Rank: 2, Factor: 3}}}},
			nil,
		},
		{"checkpointed run", Spec{Steps: 10, Checkpoint: &CheckpointSpec{Every: 5, Verify: true}}, nil},
		{
			"checkpoint codec must be lossless",
			Spec{Checkpoint: &CheckpointSpec{Codec: "hybrid"}},
			[]string{"unknown checkpoint codec"},
		},
		{
			"negative checkpoint cadence",
			Spec{Checkpoint: &CheckpointSpec{Every: -1}},
			[]string{"checkpoint every must be >= 0"},
		},
		{
			"checkpoints over tcp",
			Spec{Transport: "tcp", Checkpoint: &CheckpointSpec{Every: 5}},
			[]string{"checkpoints need the in-process transport"},
		},
		{
			"checkpoints under overlap",
			Spec{Overlap: true, Checkpoint: &CheckpointSpec{Every: 5}},
			[]string{"checkpoints cannot overlap"},
		},
		{"served run", Spec{Steps: 10, Serve: &ServeSpec{Codec: "lzss", Shards: 4}}, nil},
		{"served run with quant", Spec{Serve: &ServeSpec{Codec: "quant", QuantEB: 0.01}}, nil},
		{"served run with disabled cache", Spec{Serve: &ServeSpec{HotBytes: -1}}, nil},
		{
			"unknown serve codec",
			Spec{Serve: &ServeSpec{Codec: "zstd"}},
			[]string{"unknown serve codec"},
		},
		{
			"serve quant without eb",
			Spec{Serve: &ServeSpec{Codec: "quant"}},
			[]string{"set quant_eb > 0"},
		},
		{
			"serve eb without quant",
			Spec{Serve: &ServeSpec{Codec: "lzss", QuantEB: 0.01}},
			[]string{"does not quantize"},
		},
		{
			"negative serve knobs",
			Spec{Serve: &ServeSpec{Shards: -1, Workers: -2}},
			[]string{"serve shards must be >= 0", "serve workers must be >= 0"},
		},
		{
			"multiple errors reported together",
			Spec{Dataset: "movielens", Codec: "zstd", Steps: -3, Ranks: 8, Nodes: 4, RanksPerNode: 8, Topology: "hier"},
			[]string{"unknown dataset", "unknown codec", "steps must be >= 0", "inconsistent"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("want valid, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error missing %q:\n%v", sub, err)
				}
			}
		})
	}
}

func TestResolvedDefaults(t *testing.T) {
	rs, err := Spec{Steps: 10}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Dataset: "kaggle", Dim: 16, Steps: 10, Ranks: 8, RanksPerNode: 4,
		Topology: "flat", A2A: "auto", Transport: "inproc", Codec: "none", Device: "a100",
		Batch:     128, // kaggle default, already a multiple of 8
		BottomMLP: []int{64, 32}, TopMLP: []int{64, 32},
	}
	if !reflect.DeepEqual(rs, want) {
		t.Fatalf("defaults:\ngot  %+v\nwant %+v", rs, want)
	}
}

func TestResolvedNodesProductAndRounding(t *testing.T) {
	rs, err := Spec{Topology: "hier", Nodes: 3, RanksPerNode: 4, Batch: 130, Steps: 1}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ranks != 12 {
		t.Fatalf("ranks = %d, want 12 (nodes×ranks_per_node)", rs.Ranks)
	}
	if rs.Batch != 120 {
		t.Fatalf("batch = %d, want 120 (rounded down to a multiple of 12)", rs.Batch)
	}
}

func TestResolvedAdaptiveDefaults(t *testing.T) {
	rs, err := Spec{Adaptive: true, Codec: "hybrid", Steps: 100}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Classes != "offline" || rs.Schedule != "stepwise" || rs.DecayFactor != 2 || rs.DecayPhase != 50 {
		t.Fatalf("adaptive defaults: %+v", rs)
	}
	if rs.OfflineBatch != 128 {
		t.Fatalf("offline_batch = %d, want the dataset default 128", rs.OfflineBatch)
	}
	// A non-decaying schedule defaults to factor 1 and no phase.
	rs2, err := Spec{Adaptive: true, Codec: "hybrid", Schedule: "none", Steps: 100}.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if rs2.DecayFactor != 1 || rs2.DecayPhase != 0 {
		t.Fatalf("schedule=none defaults: factor %v phase %d", rs2.DecayFactor, rs2.DecayPhase)
	}
}

func TestResolvedCheckpointCodecDefault(t *testing.T) {
	orig := Spec{Steps: 10, Checkpoint: &CheckpointSpec{Every: 5}}
	rs, err := orig.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Checkpoint.Codec != "lzss" {
		t.Fatalf("checkpoint codec = %q, want the lzss default", rs.Checkpoint.Codec)
	}
	if orig.Checkpoint.Codec != "" {
		t.Fatal("Resolved mutated the caller's Checkpoint through the shared pointer")
	}
}

func TestResolvedServeCodecDefault(t *testing.T) {
	orig := Spec{Steps: 10, Serve: &ServeSpec{Shards: 2}}
	rs, err := orig.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Serve.Codec != "raw" {
		t.Fatalf("serve codec = %q, want the raw default", rs.Serve.Codec)
	}
	if orig.Serve.Codec != "" {
		t.Fatal("Resolved mutated the caller's Serve through the shared pointer")
	}
	opts := rs.ServeOptions()
	if opts.Shards != 2 || opts.ColdCodec != "raw" {
		t.Fatalf("ServeOptions = %+v, want shards 2 with the raw codec", opts)
	}
}

func TestResolvedIdempotent(t *testing.T) {
	// fullSpec combines overlap with fault events and checkpoints, which
	// Validate rejects (it exists for the JSON golden); resolve the
	// un-overlapped variant.
	s := fullSpec()
	s.Overlap = false
	rs, err := s.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := rs.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rs2) {
		t.Fatalf("Resolved not idempotent:\nonce  %+v\ntwice %+v", rs, rs2)
	}
}

// TestSpecJSONGolden pins the wire format: the full Spec marshals to the
// committed golden and the golden unmarshals back to the same Spec, so a
// field rename cannot silently orphan every committed scenario file.
func TestSpecJSONGolden(t *testing.T) {
	got, err := json.MarshalIndent(fullSpec(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "spec.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got)+"\n" != string(want) {
		t.Fatalf("Spec JSON drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
	var back Spec
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, fullSpec()) {
		t.Fatalf("round trip changed the spec:\ngot  %+v\nwant %+v", back, fullSpec())
	}
}

func TestLoadFileRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"dataset": "kaggle", "eror_bound": 0.02}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typoed field must fail loudly, got: %v", err)
	}
}

// TestCommittedScenarioFiles keeps every example scenario loadable and
// valid, and pins hier8_hybrid.json to the flag invocation it documents
// (`dlrmtrain -topology hier -nodes 2 -ranks-per-node 4 -steps 40 -codec
// hybrid -eb 0.02`): equal Specs build equal trainers, so the JSON and the
// flags reproduce each other bit-for-bit.
func TestCommittedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no committed scenarios under %s (err %v)", dir, err)
	}
	for _, f := range files {
		s, err := LoadFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", f, err)
		}
	}

	s, err := LoadFile(filepath.Join(dir, "hier8_hybrid.json"))
	if err != nil {
		t.Fatal(err)
	}
	flags := Spec{
		Name: "hier8-hybrid", Dataset: "kaggle", Scale: 400, Dim: 16,
		Steps: 40, Eval: 4000, Nodes: 2, RanksPerNode: 4, Topology: "hier",
		Codec: "hybrid", ErrorBound: 0.02,
	}
	if !reflect.DeepEqual(s, flags) {
		t.Fatalf("hier8_hybrid.json no longer matches its documented flag invocation:\nfile  %+v\nflags %+v", s, flags)
	}
}
