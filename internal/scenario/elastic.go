package scenario

import (
	"bytes"
	"fmt"
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/profileutil"
)

// This file runs the elastic (event-bearing) scenarios and the in-run
// checkpointing both run modes share. A fault plan's drop/rejoin events
// slice the run into segments: before the step an event names, the runner
// checkpoints the trainer to memory, tears it down, rebuilds it at the
// surviving world size (which reshards the tables round-robin, since
// ownership is positional), restores the checkpoint, and charges the
// modelled redistribution traffic to the "reshard" sim-time bucket. The
// batch stream and the loss curve run straight through the boundaries;
// sim-time buckets accumulate across segments.

// checkpointer owns a run's in-memory checkpoint buffer and traffic
// accounting. The zero spec (nil) checkpointer only serves the elastic
// boundary saves; a CheckpointSpec adds the periodic saves and verify.
type checkpointer struct {
	spec *CheckpointSpec
	rep  CheckpointReport
	buf  bytes.Buffer
}

func newCheckpointer(spec *CheckpointSpec) *checkpointer {
	return &checkpointer{spec: spec}
}

// save checkpoints tr into the (reused) buffer and accounts the traffic.
func (c *checkpointer) save(tr *dist.Trainer) error {
	c.buf.Reset()
	var codecName string
	if c.spec != nil {
		codecName = c.spec.Codec
	}
	stats, err := tr.SaveCheckpoint(&c.buf, dist.CheckpointOptions{Codec: codecName})
	if err != nil {
		return fmt.Errorf("scenario: checkpoint at step %d: %w", tr.Iter(), err)
	}
	c.rep.Count++
	c.rep.RawBytes += stats.RawBytes
	c.rep.WireBytes += stats.WireBytes
	return nil
}

// maybe saves a periodic checkpoint when the trainer's completed-step
// count lands on the Every boundary, and — when Verify is set — restores
// it straight back. The restore overwrites live state with its own
// round-trip, so a divergence between a verified and an unverified run is
// a save/restore fidelity bug, which is exactly what the parity tests
// use it to detect.
func (c *checkpointer) maybe(tr *dist.Trainer) error {
	if c.spec == nil || c.spec.Every <= 0 || tr.Iter()%c.spec.Every != 0 {
		return nil
	}
	if err := c.save(tr); err != nil {
		return err
	}
	if c.spec.Verify {
		if err := tr.RestoreCheckpoint(bytes.NewReader(c.buf.Bytes())); err != nil {
			return fmt.Errorf("scenario: verify checkpoint at step %d: %w", tr.Iter(), err)
		}
	}
	return nil
}

// report returns the accumulated accounting, or nil when nothing saved.
func (c *checkpointer) report() *CheckpointReport {
	if c.rep.Count == 0 {
		return nil
	}
	r := c.rep
	r.Ratio = 1
	if r.WireBytes > 0 {
		r.Ratio = float64(r.RawBytes) / float64(r.WireBytes)
	}
	return &r
}

// applyEvent returns the live set (sorted original rank ids) after one
// drop or rejoin. Validation already simulated the sequence, so the event
// is known to be consistent with the set.
func applyEvent(live []int, ev cluster.FaultEvent) []int {
	out := make([]int, 0, len(live)+1)
	switch ev.Kind {
	case cluster.EventDrop:
		for _, r := range live {
			if r != ev.Rank {
				out = append(out, r)
			}
		}
	case cluster.EventRejoin:
		inserted := false
		for _, r := range live {
			if !inserted && ev.Rank < r {
				out = append(out, ev.Rank)
				inserted = true
			}
			out = append(out, r)
		}
		if !inserted {
			out = append(out, ev.Rank)
		}
	}
	return out
}

// rebuildAt builds the segment trainer for the surviving rank set: the
// same scenario at world len(live), armed with the fault plan projected
// onto the survivors, and — when adaptive — a uniform placeholder
// controller whose state the checkpoint restore overwrites (re-running
// the offline classification would consume generator state and redo work
// the checkpoint already carries).
func (b *Built) rebuildAt(live []int, step int) (*dist.Trainer, error) {
	rs := b.Spec
	seg := rs
	seg.Ranks = len(live)
	proj := rs.Faults.ForLive(live)
	if proj != nil {
		// Offset the jitter stream by the boundary step so each segment
		// draws fresh — still fully deterministic — multipliers instead of
		// replaying the first segment's.
		proj.Seed += uint64(step)
	}
	seg.Faults = proj
	cfg := modelConfig(rs, b.Data)
	opts, err := trainerOptions(seg, cfg, b.Net, nil)
	if err != nil {
		return nil, err
	}
	if rs.Adaptive {
		classes := make([]adapt.Class, len(cfg.TableSizes))
		for i := range classes {
			classes[i] = adapt.ClassMedium
		}
		sched, err := adapt.ParseSchedule(rs.Schedule)
		if err != nil {
			return nil, err
		}
		ctrl, err := adapt.NewController(classes, adapt.PaperEBConfig(), sched, rs.DecayPhase, rs.DecayFactor)
		if err != nil {
			return nil, err
		}
		opts.Controller = ctrl
	}
	return dist.NewTrainer(opts)
}

// runElastic executes an event-bearing scenario as a sequence of
// fixed-world segments. Validation guarantees the spec is in-process and
// un-overlapped, every event step is inside (0, Steps), and the simulated
// event sequence never empties the world.
func (b *Built) runElastic(start time.Time) (*Result, error) {
	rs := b.Spec
	res := &Result{Spec: rs}
	ck := newCheckpointer(rs.Checkpoint)
	events := rs.Faults.Events

	live := make([]int, rs.Ranks)
	for i := range live {
		live[i] = i
	}
	tr := b.Trainer
	simTime := profileutil.Breakdown{}
	harvest := func() {
		for k, v := range tr.Cluster().SimTimes() {
			simTime[k] += v
		}
	}

	res.Losses = make([]float32, 0, rs.Steps)
	next := 0
	for step := 0; step < rs.Steps; step++ {
		if next < len(events) && events[next].Step <= step {
			oldWorld := len(live)
			for next < len(events) && events[next].Step <= step {
				live = applyEvent(live, events[next])
				next++
			}
			if err := ck.save(tr); err != nil {
				return nil, err
			}
			harvest()
			if err := tr.Close(); err != nil {
				return nil, fmt.Errorf("scenario: close at elastic boundary (step %d): %w", step, err)
			}
			nt, err := b.rebuildAt(live, step)
			if err != nil {
				return nil, fmt.Errorf("scenario: rebuild at elastic boundary (step %d): %w", step, err)
			}
			tr = nt
			b.Trainer = tr
			if err := tr.RestoreCheckpoint(bytes.NewReader(ck.buf.Bytes())); err != nil {
				return nil, fmt.Errorf("scenario: restore at elastic boundary (step %d): %w", step, err)
			}
			rp, err := dist.PlanReshard(b.Data.Cardinalities, rs.Dim, oldWorld, len(live))
			if err != nil {
				return nil, err
			}
			tr.ChargeReshard(rp)
			res.Reshards = append(res.Reshards, ReshardReport{
				Step: step, FromRanks: oldWorld, ToRanks: len(live),
				MovedTables: len(rp.Moves), MovedBytes: rp.MovedBytes,
			})
		}
		loss, err := tr.Step(b.Gen.NextBatch(rs.Batch))
		if err != nil {
			return nil, err
		}
		res.Losses = append(res.Losses, loss)
		if err := ck.maybe(tr); err != nil {
			return nil, err
		}
	}
	harvest()
	if rs.Eval > 0 {
		res.Accuracy, res.LogLoss = tr.Evaluate(b.Gen.NextBatch(rs.Eval))
	}
	// The compression counters ride through every checkpoint restore, so
	// the final trainer's ratio covers the whole run.
	res.CompressionRatio = tr.CompressionRatio()
	res.SimTime = simTime
	res.Checkpoints = ck.report()
	if b.Offline != nil {
		l, m, s := b.Offline.ClassCounts()
		res.Offline = &OfflineCounts{L: l, M: m, S: s}
	}
	res.WallClock = time.Since(start)
	return res, nil
}
