package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestAxesExpand(t *testing.T) {
	a := Axes{
		Base:       Spec{Steps: 2, ErrorBound: 0.02},
		Datasets:   []string{"kaggle", "terabyte"},
		Ranks:      []int{4, 8},
		Topologies: []string{"flat", "hier"},
		Codecs:     []string{"none", "hybrid", "fp16"},
	}
	specs := a.Expand()
	if len(specs) != 2*2*2*3 {
		t.Fatalf("expanded %d specs, want %d", len(specs), 2*2*2*3)
	}
	// Fixed nesting: Datasets outermost … Codecs innermost.
	if specs[0].Dataset != "kaggle" || specs[0].Ranks != 4 || specs[0].Topology != "flat" || specs[0].Codec != "none" {
		t.Fatalf("first cell %+v", specs[0])
	}
	if specs[1].Codec != "hybrid" {
		t.Fatalf("codec must vary innermost, got %+v", specs[1])
	}
	if last := specs[len(specs)-1]; last.Dataset != "terabyte" || last.Ranks != 8 || last.Topology != "hier" || last.Codec != "fp16" {
		t.Fatalf("last cell %+v", last)
	}
	for i, s := range specs {
		if s.Steps != 2 || s.ErrorBound != 0.02 {
			t.Fatalf("cell %d lost base fields: %+v", i, s)
		}
	}
	// An empty axis keeps the base value.
	if got := (Axes{Base: Spec{Dataset: "terabyte"}}).Expand(); len(got) != 1 || got[0].Dataset != "terabyte" {
		t.Fatalf("no-axis expansion: %+v", got)
	}
}

// sweepSpecs is a small topology×codec grid for the runner tests.
func sweepSpecs() []Spec {
	base := tinySpec()
	base.Steps = 2
	base.ErrorBound = 0.02
	base.Ranks = 8
	return Axes{
		Base:       base,
		Topologies: []string{"flat", "hier"},
		Codecs:     []string{"none", "hybrid"},
	}.Expand()
}

// TestSweepDeterministicAcrossWorkers is the parallel-runner contract:
// every scenario seeds its own generator and model from its Spec alone, so
// the Results — losses, sim-time buckets, compression ratios, eval metrics
// — are bit-identical at any worker count. WallClock is the documented
// exception and is zeroed before comparing.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := sweepSpecs()
	var baseline []*Result
	for _, workers := range []int{1, 2, 4} {
		results, err := Sweep(specs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range results {
			if r == nil {
				t.Fatalf("workers=%d: missing result", workers)
			}
			r.WallClock = 0
		}
		if baseline == nil {
			baseline = results
			continue
		}
		if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("workers=%d produced different results than workers=1", workers)
		}
	}
}

// TestSpecWorkersOverride pins the sweep-level width plumbing: the knob (or
// the DLRMCOMP_WORKERS environment) reaches only specs that left both
// intra-rank widths at auto, and the override cannot change results — the
// overridden sweep must reproduce the serial sweep bit for bit.
func TestSpecWorkersOverride(t *testing.T) {
	pinned := tinySpec()
	pinned.CodecWorkers = -1
	if got := applySpecWorkers(pinned, 4); got.ComputeWorkers != 0 || got.CodecWorkers != -1 {
		t.Fatalf("pinned spec must not be overridden: %+v", got)
	}
	if got := applySpecWorkers(tinySpec(), 4); got.ComputeWorkers != 4 || got.CodecWorkers != 4 {
		t.Fatalf("auto spec must take the override: %+v", got)
	}
	if got := applySpecWorkers(tinySpec(), 0); got.ComputeWorkers != 0 {
		t.Fatalf("zero width must leave the spec alone: %+v", got)
	}

	t.Setenv("DLRMCOMP_WORKERS", "3")
	if got := resolveSpecWorkers(0); got != 3 {
		t.Fatalf("env fallback = %d, want 3", got)
	}
	if got := resolveSpecWorkers(5); got != 5 {
		t.Fatalf("explicit width must beat the env, got %d", got)
	}
	if got := resolveSpecWorkers(-1); got != 0 {
		t.Fatalf("negative must disable the override even with the env set, got %d", got)
	}
	t.Setenv("DLRMCOMP_WORKERS", "not-a-number")
	if got := resolveSpecWorkers(0); got != 0 {
		t.Fatalf("unparsable env must mean no override, got %d", got)
	}

	// End to end: the widened sweep reproduces the serial one bit for bit,
	// modulo WallClock and the Spec fields the override wrote.
	specs := sweepSpecs()[:2]
	serial, err := Sweep(specs, SweepOptions{Workers: 1, SpecWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("DLRMCOMP_WORKERS", "2")
	wide, err := Sweep(specs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wide {
		if wide[i].Spec.ComputeWorkers != 2 || wide[i].Spec.CodecWorkers != 2 {
			t.Fatalf("cell %d: env override not recorded in the result spec: %+v", i, wide[i].Spec)
		}
		wide[i].Spec.ComputeWorkers, wide[i].Spec.CodecWorkers = 0, 0
		wide[i].WallClock, serial[i].WallClock = 0, 0
		if !reflect.DeepEqual(wide[i], serial[i]) {
			t.Fatalf("cell %d: widened sweep diverged from the serial sweep", i)
		}
	}
}

func TestSweepKeepsGoodCellsOnError(t *testing.T) {
	bad := tinySpec()
	bad.Codec = "zstd"
	bad.Name = "bad-cell"
	specs := []Spec{sweepSpecs()[0], bad, sweepSpecs()[1]}
	results, err := Sweep(specs, SweepOptions{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "bad-cell") {
		t.Fatalf("want an error naming the bad cell, got %v", err)
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("good cells must survive a bad one")
	}
	if results[1] != nil {
		t.Fatal("bad cell must leave a nil slot")
	}
}

func TestRunOverlapReportsBothClocks(t *testing.T) {
	sp := tinySpec()
	sp.Ranks, sp.Batch = 8, 64
	sp.Topology = "hier"
	sp.Overlap = true
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.SerialSimTime <= 0 || res.OverlappedSimTime <= 0 {
		t.Fatalf("overlap clocks missing: serial %v overlapped %v", res.SerialSimTime, res.OverlappedSimTime)
	}
	if res.OverlappedSimTime > res.SerialSimTime {
		t.Fatalf("overlapped %v exceeds serial %v", res.OverlappedSimTime, res.SerialSimTime)
	}
}
