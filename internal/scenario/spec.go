package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/serve"
)

// Spec declares one training scenario. The zero value of every field means
// "use the documented default", so a JSON file (or a struct literal) only
// names the knobs it cares about. Specs are pure data: Build turns one into
// a live trainer, Validate reports every inconsistency at once.
type Spec struct {
	// Name labels the scenario in sweep output and JSON files.
	Name string `json:"name,omitempty"`

	// Dataset is "kaggle" (default) or "terabyte".
	Dataset string `json:"dataset,omitempty"`
	// Scale divides every table cardinality (criteo.ScaledSpec); <= 1 keeps
	// the full-size dataset.
	Scale int `json:"scale,omitempty"`
	// Dim is the embedding dimension (0 = 16).
	Dim int `json:"dim,omitempty"`
	// Batch is the global batch size (0 = the dataset's default batch). It
	// is rounded down to a multiple of the rank count, as the trainer
	// shards batches evenly.
	Batch int `json:"batch,omitempty"`
	// Steps is the number of training steps to run.
	Steps int `json:"steps,omitempty"`
	// Eval is the evaluation sample count after training (0 = skip eval).
	Eval int `json:"eval,omitempty"`

	// Ranks is the simulated GPU count (0 = 8, or Nodes×RanksPerNode when
	// Nodes is set). Setting both Ranks and Nodes to inconsistent values is
	// a validation error, not a silent override.
	Ranks int `json:"ranks,omitempty"`
	// Nodes is the node count; when > 0 the rank count is Nodes×RanksPerNode.
	Nodes int `json:"nodes,omitempty"`
	// RanksPerNode is the node width for the hierarchical topology (0 = 4).
	RanksPerNode int `json:"ranks_per_node,omitempty"`
	// Topology is "flat" (default; single α-β link) or "hier" (two-level,
	// per-link sim-time attribution).
	Topology string `json:"topology,omitempty"`
	// A2A selects the all-to-all algorithm: "auto" (default), "direct", or
	// "twophase".
	A2A string `json:"a2a,omitempty"`
	// Transport selects the collective fabric: "inproc" (default; every
	// rank a goroutine in one process) or "tcp" (one OS process per rank
	// over cluster/tcptransport; launch with cmd/dlrmworker). The two
	// transports produce bit-identical losses and sim-time buckets — the
	// conformance suite enforces it. A "tcp" spec cannot Overlap (the
	// pipelined clock needs every rank's costs in one process) and cannot
	// Eval (no single process holds the whole trained model).
	Transport string `json:"transport,omitempty"`

	// Codec names the forward all-to-all compressor: "none" (default),
	// "hybrid", "vector", "huffman", "fp16", "fp8", "cusz", "fzgpu", "lz4",
	// or "deflate".
	Codec string `json:"codec,omitempty"`
	// ErrorBound is the absolute error bound for error-bounded codecs.
	// Required (> 0) when Codec is error-bounded and Adaptive is off.
	ErrorBound float64 `json:"eb,omitempty"`
	// CodecWorkers bounds the intra-rank codec worker pool
	// (dist.Options.CodecWorkers); 0 = auto, negative = sequential.
	CodecWorkers int `json:"codec_workers,omitempty"`
	// ComputeWorkers bounds the intra-rank compute width
	// (dist.Options.ComputeWorkers): goroutines splitting each rank's
	// embedding lookups, MLP matmuls, and optimizer update between
	// collective barriers. 0 = auto, 1 = single-threaded; the training
	// math is bit-identical at every width. Negative values are a
	// validation error (use 1 for single-threaded).
	ComputeWorkers int `json:"compute_workers,omitempty"`

	// Adaptive enables the dual-level adaptive error-bound controller.
	Adaptive bool `json:"adaptive,omitempty"`
	// Classes selects the table classification: "offline" (default; run the
	// paper's offline analysis) or "uniform" (every table ClassMedium).
	Classes string `json:"classes,omitempty"`
	// Schedule is the iteration-wise decay function: "none", "stepwise"
	// (default when Adaptive), "logarithmic", "linear", "exponential", or
	// "drop".
	Schedule string `json:"schedule,omitempty"`
	// DecayPhase is the decay phase length in steps (0 = Steps/2 for
	// decaying schedules).
	DecayPhase int `json:"decay_phase,omitempty"`
	// DecayFactor is the starting error-bound multiplier (0 = 2 for
	// decaying schedules, 1 for "none").
	DecayFactor float64 `json:"decay_factor,omitempty"`
	// OfflineBatch is the sample batch for the offline classification
	// (0 = the dataset's default batch).
	OfflineBatch int `json:"offline_batch,omitempty"`
	// OfflineEB is the probe error bound of the offline analysis
	// (0 = ErrorBound).
	OfflineEB float64 `json:"offline_eb,omitempty"`

	// Overlap pipelines the forward all-to-all of batch k+1 behind the MLP
	// of batch k (dist.Trainer.RunPipelined; same math, overlapped clock).
	Overlap bool `json:"overlap,omitempty"`

	// BottomMLP / TopMLP are the dense MLP layer widths (nil = [64, 32]).
	BottomMLP []int `json:"bottom_mlp,omitempty"`
	TopMLP    []int `json:"top_mlp,omitempty"`
	// Device is "a100" (default; netmodel.A100) or "paper" (the sustained
	// DLRM-layer rate the timing experiments calibrate against).
	Device string `json:"device,omitempty"`
	// OtherComputeFactor charges an "other" bucket of this fraction of the
	// MLP time per step (dist.Options.OtherComputeFactor).
	OtherComputeFactor float64 `json:"other_compute_factor,omitempty"`

	// Seed overrides the dataset seed (0 = the dataset's own seed), making
	// per-scenario streams independent inside a sweep.
	Seed uint64 `json:"seed,omitempty"`
	// ModelSeed overrides the model-init seed (0 = the dataset seed).
	ModelSeed uint64 `json:"model_seed,omitempty"`
	// WarmSteps warms BuildEnv's probe model (and the offline
	// classification's, when Adaptive) by this many single-process steps
	// before sampling. 0 samples from initialization, consuming the
	// training generator — the CLI's offline flow.
	WarmSteps int `json:"warm_steps,omitempty"`

	// Faults, when non-nil, injects deterministic failures: latency jitter
	// and per-rank slow multipliers inflate collective sim-time (losses stay
	// bit-identical to the healthy run), and drop/rejoin events make the run
	// elastic — each event is a segment boundary where the run checkpoints,
	// rebuilds the trainer at the surviving world size (resharding the
	// tables round-robin and charging the redistribution to the "reshard"
	// bucket), restores, and trains on. Events need the in-process
	// transport and no overlap; jitter and slow ranks work everywhere.
	Faults *cluster.FaultPlan `json:"faults,omitempty"`
	// Checkpoint, when non-nil, checkpoints the trainer during the run.
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`
	// Serve, when non-nil, configures the inference serving layer built
	// from this scenario's trained model (cmd/dlrmserve, the loadtest
	// experiment). Training ignores it.
	Serve *ServeSpec `json:"serve,omitempty"`
}

// ServeSpec configures internal/serve for a scenario's model: how the
// embedding tables shard, how the cold tier compresses, how large the hot
// cache runs, and how the micro-batching service admits load. The zero
// value of every field means the serve package's documented default.
type ServeSpec struct {
	// Shards is the embedding-server count (0 = 1).
	Shards int `json:"shards,omitempty"`
	// Codec is the cold-tier frame codec: "raw" (default), "lzss",
	// "deflate" (lossless — serving scores are bit-identical to
	// uncompressed tables), or "quant" (lossy, bounded by QuantEB).
	Codec string `json:"codec,omitempty"`
	// QuantEB is the absolute error bound of the "quant" codec. Required
	// (> 0) with codec "quant", rejected otherwise.
	QuantEB float64 `json:"quant_eb,omitempty"`
	// BlockRows is the cold-frame granularity in rows (0 = 64).
	BlockRows int `json:"block_rows,omitempty"`
	// HotBytes budgets the decoded-row hot cache (0 = a quarter of the
	// uncompressed footprint; negative = no cache).
	HotBytes int64 `json:"hot_bytes,omitempty"`
	// MaxBatch and LingerUS close a micro-batch on size (0 = 64) or
	// microseconds since its first request (0 = 200).
	MaxBatch int `json:"max_batch,omitempty"`
	LingerUS int `json:"linger_us,omitempty"`
	// QueueDepth bounds the intake queue (0 = 4×MaxBatch); Workers is the
	// batcher count (0 = 1).
	QueueDepth int `json:"queue_depth,omitempty"`
	Workers    int `json:"workers,omitempty"`
	// Requests and Clients size the closed-loop load drivers
	// (cmd/dlrmserve, the loadtest experiment): total requests issued
	// (0 = driver default) by this many concurrent clients (0 = 8).
	Requests int `json:"requests,omitempty"`
	Clients  int `json:"clients,omitempty"`
}

// CheckpointSpec configures in-run checkpointing. Checkpoints serialize to
// memory — the scenario layer measures and verifies them; persisting to
// disk is the driver's business. Requires the in-process transport (a
// worker process holds only its own rank's fresh state) and no overlap
// (checkpoints capture between-steps state).
type CheckpointSpec struct {
	// Every saves a checkpoint after every Every-th step (0 = only the
	// segment-boundary checkpoints an elastic run takes anyway).
	Every int `json:"every,omitempty"`
	// Codec is the lossless frame codec ("raw", "lzss", or "deflate";
	// "" = lzss). Lossy codecs are not on the menu: a checkpoint must
	// restore bit-exactly or the resume-parity guarantee dies.
	Codec string `json:"codec,omitempty"`
	// Verify restores every saved checkpoint straight back into the live
	// trainer. Restoring round-tripped state is a no-op exactly when
	// save/restore is bit-faithful, so a verified run's losses are
	// bit-identical to the same run without checkpointing — the parity
	// tests pin that.
	Verify bool `json:"verify,omitempty"`
}

// datasets, devices, and classes the Spec accepts ("" = default).
var (
	datasetNames   = map[string]bool{"": true, "kaggle": true, "terabyte": true}
	deviceNames    = map[string]bool{"": true, "a100": true, "paper": true}
	classNames     = map[string]bool{"": true, "offline": true, "uniform": true}
	transportNames = map[string]bool{"": true, "inproc": true, "tcp": true}
)

// errorBoundedCodecs are the codec names whose frames honor ErrorBound (and
// which the adaptive controller can drive).
var errorBoundedCodecs = map[string]bool{
	"hybrid": true, "vector": true, "huffman": true, "cusz": true, "fzgpu": true,
}

// codecNames is every accepted Codec value ("" = "none").
var codecNames = map[string]bool{
	"": true, "none": true, "hybrid": true, "vector": true, "huffman": true,
	"fp16": true, "fp8": true, "cusz": true, "fzgpu": true, "lz4": true, "deflate": true,
}

// checkpointCodecNames is every accepted CheckpointSpec.Codec value, taken
// from the dist layer's menu so the two cannot drift ("" = the default).
var checkpointCodecNames = func() map[string]bool {
	m := map[string]bool{"": true}
	for _, n := range dist.CheckpointCodecs() {
		m[n] = true
	}
	return m
}()

// serveCodecNames is every accepted ServeSpec.Codec value, taken from the
// serve layer's menu so the two cannot drift ("" = the default).
var serveCodecNames = func() map[string]bool {
	m := map[string]bool{"": true}
	for _, n := range serve.ColdCodecs() {
		m[n] = true
	}
	return m
}()

// baseSpec returns the criteo dataset spec a Dataset name denotes.
func baseSpec(name string) criteo.Spec {
	if name == "terabyte" {
		return criteo.TerabyteSpec()
	}
	return criteo.KaggleSpec()
}

// resolvedRanks computes the rank count the spec denotes, applying the
// Nodes×RanksPerNode product and the defaults.
func (s Spec) resolvedRanks() int {
	rpn := s.RanksPerNode
	if rpn <= 0 {
		rpn = 4
	}
	if s.Nodes > 0 {
		return s.Nodes * rpn
	}
	if s.Ranks > 0 {
		return s.Ranks
	}
	return 8
}

// Validate checks the spec and returns every problem it finds, joined into
// one error (errors.Join) so a driver can print the complete list instead
// of the first complaint. A nil return means Build will accept the spec.
func (s Spec) Validate() error {
	var errs []error
	add := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	if !datasetNames[s.Dataset] {
		add("unknown dataset %q (want kaggle or terabyte)", s.Dataset)
	}
	if !deviceNames[s.Device] {
		add("unknown device %q (want a100 or paper)", s.Device)
	}
	if !classNames[s.Classes] {
		add("unknown classes %q (want offline or uniform)", s.Classes)
	}
	if !codecNames[s.Codec] {
		add("unknown codec %q (want none, hybrid, vector, huffman, fp16, fp8, cusz, fzgpu, lz4, or deflate)", s.Codec)
	}
	if !transportNames[s.Transport] {
		add("unknown transport %q (want inproc or tcp)", s.Transport)
	}
	if s.Transport == "tcp" && s.Overlap {
		add("transport tcp cannot overlap: the pipelined driver needs every rank's collective costs in one process")
	}
	if s.Transport == "tcp" && s.Eval > 0 {
		add("transport tcp cannot eval: no worker process holds the whole trained model; evaluate with an in-process scenario")
	}
	if _, err := netmodel.ByName(s.Topology, s.RanksPerNode); err != nil {
		errs = append(errs, err)
	}
	if _, err := cluster.ParseA2AAlgo(s.A2A); err != nil {
		errs = append(errs, err)
	}
	if _, err := adapt.ParseSchedule(s.Schedule); err != nil {
		errs = append(errs, err)
	}

	for _, f := range []struct {
		name string
		v    int
	}{
		{"scale", s.Scale}, {"dim", s.Dim}, {"batch", s.Batch}, {"steps", s.Steps},
		{"eval", s.Eval}, {"ranks", s.Ranks}, {"nodes", s.Nodes},
		{"ranks_per_node", s.RanksPerNode}, {"decay_phase", s.DecayPhase},
		{"offline_batch", s.OfflineBatch}, {"warm_steps", s.WarmSteps},
	} {
		if f.v < 0 {
			add("%s must be >= 0, got %d", f.name, f.v)
		}
	}
	if s.ComputeWorkers < 0 {
		add("compute_workers must be >= 0 (0 = auto, 1 = single-threaded), got %d", s.ComputeWorkers)
	}
	if s.ErrorBound < 0 {
		add("eb must be >= 0, got %v", s.ErrorBound)
	}
	if s.OfflineEB < 0 {
		add("offline_eb must be >= 0, got %v", s.OfflineEB)
	}
	if s.DecayFactor != 0 && s.DecayFactor < 1 {
		add("decay_factor must be >= 1 (or 0 for the default), got %v", s.DecayFactor)
	}

	// Cluster-shape consistency: the old driver silently let
	// -nodes/-ranks-per-node override -ranks; here the mismatch is an error.
	rpn := s.RanksPerNode
	if rpn == 0 {
		rpn = 4
	}
	if s.Ranks > 0 && s.Nodes > 0 && rpn > 0 && s.Ranks != s.Nodes*rpn {
		add("ranks %d is inconsistent with nodes %d × ranks_per_node %d = %d; drop ranks or fix the product",
			s.Ranks, s.Nodes, rpn, s.Nodes*rpn)
	}
	// An explicit nodes=1 with the hierarchical topology can only be a
	// mistake — the requested node structure never exercises the
	// inter-node link. (A rank count that merely fits in one node, with
	// Nodes unset, stays legal: it is the degenerate intra-only baseline
	// the small end of the scaling sweep compares against.)
	hier := s.Topology == "hier" || s.Topology == "hierarchical"
	if hier && s.Nodes == 1 {
		add("hierarchical topology with an explicit nodes=1 never exercises the inter-node link; use topology=flat, nodes >= 2, or omit nodes")
	}
	if !hier && s.Nodes > 1 {
		add("nodes=%d requires topology=hier (the flat topology has no node structure)", s.Nodes)
	}
	// Shardability of the batch the run would actually use, so a nil
	// Validate really does mean Build will accept the spec: an unset batch
	// means the dataset default.
	if datasetNames[s.Dataset] {
		batch, ranks := s.Batch, s.resolvedRanks()
		if batch == 0 {
			batch = baseSpec(s.Dataset).DefaultBatch
		}
		if batch < ranks {
			if s.Batch == 0 {
				add("default batch %d (dataset %s) is smaller than the %d ranks it must shard across; set batch explicitly", batch, baseSpec(s.Dataset).Name, ranks)
			} else {
				add("batch %d is smaller than the %d ranks it must shard across", batch, ranks)
			}
		}
	}

	// Faults and checkpointing.
	if err := s.Faults.Validate(s.resolvedRanks(), s.Steps); err != nil {
		errs = append(errs, err)
	}
	if s.Faults != nil && len(s.Faults.Events) > 0 {
		if s.Transport == "tcp" {
			add("fault events need the in-process transport: the elastic runner checkpoints and rebuilds the whole world in one process")
		}
		if s.Overlap {
			add("fault events cannot overlap: segment boundaries checkpoint between steps, and the pipelined driver keeps steps in flight")
		}
	}
	if c := s.Checkpoint; c != nil {
		if c.Every < 0 {
			add("checkpoint every must be >= 0, got %d", c.Every)
		}
		if !checkpointCodecNames[c.Codec] {
			add("unknown checkpoint codec %q (want raw, lzss, or deflate)", c.Codec)
		}
		if s.Transport == "tcp" {
			add("checkpoints need the in-process transport: a worker process holds fresh state only for its own rank")
		}
		if s.Overlap {
			add("checkpoints cannot overlap: they capture between-steps state, and the pipelined driver keeps steps in flight")
		}
	}

	// Serving.
	if sv := s.Serve; sv != nil {
		if !serveCodecNames[sv.Codec] {
			add("unknown serve codec %q (want raw, lzss, deflate, or quant)", sv.Codec)
		}
		for _, f := range []struct {
			name string
			v    int
		}{
			{"serve shards", sv.Shards}, {"serve block_rows", sv.BlockRows},
			{"serve max_batch", sv.MaxBatch}, {"serve linger_us", sv.LingerUS},
			{"serve queue_depth", sv.QueueDepth}, {"serve workers", sv.Workers},
			{"serve requests", sv.Requests}, {"serve clients", sv.Clients},
		} {
			if f.v < 0 {
				add("%s must be >= 0, got %d", f.name, f.v)
			}
		}
		// HotBytes stays unchecked: negative is the documented
		// "no hot cache" setting.
		if sv.QuantEB < 0 {
			add("serve quant_eb must be >= 0, got %v", sv.QuantEB)
		}
		if sv.Codec == "quant" && sv.QuantEB == 0 {
			add("serve codec %q is lossy; set quant_eb > 0", sv.Codec)
		}
		if sv.Codec != "quant" && sv.QuantEB > 0 {
			add("serve quant_eb is the \"quant\" codec's knob; codec %q does not quantize", sv.Codec)
		}
	}

	// Codec / adaptive consistency.
	codecName := s.Codec
	if codecName == "" {
		codecName = "none"
	}
	if codecNames[s.Codec] {
		switch {
		case s.Adaptive && codecName == "none":
			add("adaptive error bounds need a codec; set codec (e.g. hybrid)")
		case s.Adaptive && !errorBoundedCodecs[codecName]:
			add("adaptive error bounds need an error-bounded codec, not %q", codecName)
		case !s.Adaptive && errorBoundedCodecs[codecName] && s.ErrorBound == 0:
			add("codec %q is error-bounded; set eb > 0", codecName)
		}
	}
	return errors.Join(errs...)
}

// Resolved validates the spec and returns a copy with every default filled
// in: the canonical form Build runs and Result reports. Resolving an
// already-resolved spec is the identity.
func (s Spec) Resolved() (Spec, error) {
	if err := s.Validate(); err != nil {
		return s, err
	}
	if s.Dataset == "" {
		s.Dataset = "kaggle"
	}
	if s.Dim == 0 {
		s.Dim = 16
	}
	switch s.Topology {
	case "":
		s.Topology = "flat"
	case "hierarchical":
		s.Topology = "hier"
	}
	if s.RanksPerNode == 0 {
		s.RanksPerNode = 4
	}
	s.Ranks = s.resolvedRanks()
	if s.A2A == "" {
		s.A2A = "auto"
	}
	if s.Transport == "" {
		s.Transport = "inproc"
	}
	if s.Codec == "" {
		s.Codec = "none"
	}
	if s.Device == "" {
		s.Device = "a100"
	}
	if s.BottomMLP == nil {
		s.BottomMLP = []int{64, 32}
	}
	if s.TopMLP == nil {
		s.TopMLP = []int{64, 32}
	}
	base := baseSpec(s.Dataset)
	if s.Batch == 0 {
		s.Batch = base.DefaultBatch
	}
	s.Batch = s.Batch / s.Ranks * s.Ranks
	if s.Batch == 0 {
		return s, fmt.Errorf("scenario: default batch %d cannot shard across %d ranks; set batch explicitly", base.DefaultBatch, s.Ranks)
	}
	if s.Adaptive {
		if s.Classes == "" {
			s.Classes = "offline"
		}
		if s.Schedule == "" {
			s.Schedule = "stepwise"
		}
		decaying := s.Schedule != "none"
		if s.DecayFactor == 0 {
			if decaying {
				s.DecayFactor = 2
			} else {
				s.DecayFactor = 1
			}
		}
		if s.DecayPhase == 0 && decaying {
			s.DecayPhase = s.Steps / 2
		}
		if s.OfflineBatch == 0 {
			s.OfflineBatch = base.DefaultBatch
		}
		if s.OfflineEB == 0 {
			s.OfflineEB = s.ErrorBound
		}
	}
	if s.Checkpoint != nil && s.Checkpoint.Codec == "" {
		// Clone before filling the default: Resolved returns a copy, and
		// writing through the shared pointer would mutate the caller's spec.
		c := *s.Checkpoint
		c.Codec = dist.DefaultCheckpointCodec
		s.Checkpoint = &c
	}
	if s.Serve != nil && s.Serve.Codec == "" {
		// Same pointer-clone discipline as Checkpoint above.
		sv := *s.Serve
		sv.Codec = serve.DefaultColdCodec
		s.Serve = &sv
	}
	return s, nil
}

// LoadFile reads a Spec from a JSON file. Unknown fields are an error —
// scenario files are declarative configuration, and a typoed knob silently
// running the default workload is exactly the failure mode this layer
// removes.
func LoadFile(path string) (Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario %s: %w", path, err)
	}
	return s, nil
}
