package scenario

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"dlrmcomp/internal/cluster"
)

// elasticSpec is a small event-bearing scenario: 4 ranks, rank 1 drops
// before step 2 and rejoins before step 4.
func elasticSpec() Spec {
	sp := tinySpec()
	sp.Steps = 6
	sp.Codec, sp.ErrorBound = "hybrid", 0.02
	sp.Faults = &cluster.FaultPlan{
		Seed:   3,
		Jitter: 0.1,
		Slow:   []cluster.SlowRank{{Rank: 1, Factor: 4}},
		Events: []cluster.FaultEvent{
			{Step: 2, Kind: "drop", Rank: 1},
			{Step: 4, Kind: "rejoin", Rank: 1},
		},
	}
	return sp
}

// TestElasticRunSegments drives a drop/rejoin scenario end to end: the
// loss curve runs straight through both boundaries, each boundary reports
// its reshard (4→3→4), the redistribution lands in the "reshard" sim-time
// bucket, and the whole thing is deterministic.
func TestElasticRunSegments(t *testing.T) {
	res, err := Run(elasticSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 6 {
		t.Fatalf("got %d losses, want 6", len(res.Losses))
	}
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss[%d] = %v", i, l)
		}
	}
	want := []struct{ step, from, to int }{{2, 4, 3}, {4, 3, 4}}
	if len(res.Reshards) != len(want) {
		t.Fatalf("got %d reshards, want %d: %+v", len(res.Reshards), len(want), res.Reshards)
	}
	for i, w := range want {
		r := res.Reshards[i]
		if r.Step != w.step || r.FromRanks != w.from || r.ToRanks != w.to {
			t.Errorf("reshard %d = %+v, want step %d %d→%d", i, r, w.step, w.from, w.to)
		}
		if r.MovedTables <= 0 || r.MovedBytes <= 0 {
			t.Errorf("reshard %d moved nothing: %+v", i, r)
		}
	}
	if res.SimTime["reshard"] <= 0 {
		t.Fatalf("no reshard sim-time charged: %v", res.SimTime)
	}
	if res.SimTime["fwd-a2a-intra"]+res.SimTime["fwd-a2a"] <= 0 {
		t.Fatalf("training sim-time missing: %v", res.SimTime)
	}
	// Two boundary checkpoints, no periodic ones (Checkpoint is unset).
	if res.Checkpoints == nil || res.Checkpoints.Count != 2 {
		t.Fatalf("checkpoint report = %+v, want 2 boundary saves", res.Checkpoints)
	}
	if res.Checkpoints.RawBytes <= 0 || res.Checkpoints.WireBytes <= 0 {
		t.Fatalf("checkpoint accounting empty: %+v", res.Checkpoints)
	}

	// Determinism: an identical elastic run reproduces everything bitwise.
	again, err := Run(elasticSpec())
	if err != nil {
		t.Fatal(err)
	}
	res.WallClock, again.WallClock = 0, 0
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("elastic run is not deterministic:\nfirst  %+v\nsecond %+v", res, again)
	}
}

// TestCheckpointVerifyParity is the scenario-level resume-parity pin: a
// run that checkpoints every 2 steps and restores each checkpoint
// straight back (Verify) must produce bit-identical losses and sim-time
// to the same run without any checkpointing — save/restore is a no-op
// exactly when it is bit-faithful.
func TestCheckpointVerifyParity(t *testing.T) {
	plain := tinySpec()
	plain.Steps = 6
	plain.Codec, plain.ErrorBound = "hybrid", 0.02

	verified := plain
	verified.Checkpoint = &CheckpointSpec{Every: 2, Verify: true}

	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Run(verified)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp.Losses, rv.Losses) {
		t.Fatalf("verified run diverged:\nplain    %v\nverified %v", rp.Losses, rv.Losses)
	}
	if !reflect.DeepEqual(rp.SimTime, rv.SimTime) {
		t.Fatalf("verified run charged different sim-time:\nplain    %v\nverified %v", rp.SimTime, rv.SimTime)
	}
	if rv.Checkpoints == nil || rv.Checkpoints.Count != 3 {
		t.Fatalf("checkpoint report = %+v, want 3 periodic saves", rv.Checkpoints)
	}
	// Trained float weights are near-incompressible for a lossless LZSS,
	// so pin only that the accounting is sane, not a ratio win.
	if rv.Checkpoints.Ratio <= 0 || rv.Checkpoints.WireBytes <= 0 {
		t.Fatalf("checkpoint accounting broken: %+v", rv.Checkpoints)
	}
}

// TestChaos8Converges runs the committed chaos scenario — 8 ranks, a 10x
// straggler, a drop and a rejoin, adaptive error bounds, periodic
// verified checkpoints — and requires it to actually train: finite
// losses end to end, a falling loss curve, and better-than-chance eval.
func TestChaos8Converges(t *testing.T) {
	sp, err := LoadFile(filepath.Join("..", "..", "examples", "scenarios", "chaos8.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != sp.Steps {
		t.Fatalf("got %d losses, want %d", len(res.Losses), sp.Steps)
	}
	head, tail := 0.0, 0.0
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss[%d] = %v", i, l)
		}
		if i < 10 {
			head += float64(l)
		}
		if i >= len(res.Losses)-10 {
			tail += float64(l)
		}
	}
	if tail >= head {
		t.Fatalf("chaos run is not converging: first-10 loss sum %v, last-10 %v", head, tail)
	}
	if res.Accuracy <= 0.5 {
		t.Fatalf("eval accuracy %v is no better than chance", res.Accuracy)
	}
	if len(res.Reshards) != 2 || res.Reshards[0].FromRanks != 8 || res.Reshards[0].ToRanks != 7 ||
		res.Reshards[1].FromRanks != 7 || res.Reshards[1].ToRanks != 8 {
		t.Fatalf("reshards = %+v, want 8→7 then 7→8", res.Reshards)
	}
	// Six periodic saves (every 10 of 60 steps) plus two boundary saves.
	if res.Checkpoints == nil || res.Checkpoints.Count != 8 {
		t.Fatalf("checkpoint report = %+v, want 8 saves", res.Checkpoints)
	}
	if res.Offline == nil {
		t.Fatal("adaptive chaos run must report its offline classification")
	}
	// The hierarchical topology splits the bucket per link.
	if res.SimTime["reshard-intra"]+res.SimTime["reshard-inter"] <= 0 {
		t.Fatalf("no reshard cost charged: %v", res.SimTime)
	}
}
