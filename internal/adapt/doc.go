// Package adapt implements the paper's dual-level adaptive error-bound
// strategy (§III-C, Algorithm 1):
//
//   - Table-wise: each embedding table is classified by its Homogenization
//     Index (Eq. 1) into Large / Medium / Small error-bound classes, so that
//     tables whose vectors collapse heavily under quantization get tighter
//     bounds and insensitive tables get looser ones.
//   - Iteration-wise: during the initial training phase the error bound
//     starts at a multiple of its base value and decays to the base via a
//     configurable decay function (stepwise by default, per Fig. 5), then
//     stays constant for the rest of training.
//
// The offline analysis driver also runs Algorithm 2 (compressor selection by
// the Eq. 2 speed-up model) per table.
//
// Layer: policy above the codecs. internal/dist consumes a Controller to
// re-tune every error-bounded codec at the start of each iteration;
// cmd/offline and the experiment drivers run the offline phase standalone.
// The package charges no sim-time buckets — the offline phase is free by
// the paper's accounting (it runs once, before training).
//
// Key types: PatternStats (per-table homogenization statistics, Eq. 1),
// Class/Thresholds/EBConfig (the L/M/S classification and its bounds),
// OfflineResult/OfflineOptions (Algorithms 1 & 2 output), Controller
// (EBAt(table, iter), the iteration-wise decay), Schedule (decay function
// family), and the AutoTune helpers for global error-bound search.
package adapt
