package adapt

import (
	"fmt"
	"math"
)

// Schedule selects the iteration-wise decay function (Fig. 5 compares
// these; the paper picks Stepwise as default).
type Schedule int

// Decay schedules. All decay a multiplier from StartFactor down to 1 across
// the initial phase, then hold at 1 (the "later phase" of §III-C).
const (
	// ScheduleNone keeps the base error bound for the whole run.
	ScheduleNone Schedule = iota
	// ScheduleStepwise is the staircase descent the paper selects.
	ScheduleStepwise
	// ScheduleLogarithmic decays fast early, slowly later.
	ScheduleLogarithmic
	// ScheduleLinear decays at a constant rate.
	ScheduleLinear
	// ScheduleExponential decays geometrically.
	ScheduleExponential
	// ScheduleDrop holds StartFactor for the whole initial phase and then
	// drops abruptly to 1 — the paper's "Drop_2x/3x" comparator (Fig. 10).
	ScheduleDrop
)

func (s Schedule) String() string {
	switch s {
	case ScheduleStepwise:
		return "stepwise"
	case ScheduleLogarithmic:
		return "logarithmic"
	case ScheduleLinear:
		return "linear"
	case ScheduleExponential:
		return "exponential"
	case ScheduleDrop:
		return "drop"
	default:
		return "none"
	}
}

// ParseSchedule maps a configuration string onto a Schedule (the inverse
// of Schedule.String). The empty string selects ScheduleNone.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "none":
		return ScheduleNone, nil
	case "stepwise":
		return ScheduleStepwise, nil
	case "logarithmic", "log":
		return ScheduleLogarithmic, nil
	case "linear":
		return ScheduleLinear, nil
	case "exponential", "exp":
		return ScheduleExponential, nil
	case "drop":
		return ScheduleDrop, nil
	}
	return ScheduleNone, fmt.Errorf("adapt: unknown decay schedule %q (want none, stepwise, logarithmic, linear, exponential, or drop)", s)
}

// StepwiseSteps is the number of staircase levels of ScheduleStepwise.
const StepwiseSteps = 4

// DecayFactor returns the error-bound multiplier (>= 1) at iteration iter
// for a decay phase of phaseLen iterations starting at startFactor.
// Outside the phase (iter >= phaseLen) the factor is exactly 1.
func DecayFactor(s Schedule, iter, phaseLen int, startFactor float64) float64 {
	if s == ScheduleNone || startFactor <= 1 || phaseLen <= 0 || iter >= phaseLen {
		return 1
	}
	if iter < 0 {
		iter = 0
	}
	t := float64(iter) / float64(phaseLen) // progress in [0, 1)
	switch s {
	case ScheduleStepwise:
		// K equal steps: startFactor at t=0, stepping down to the last
		// step just above 1; reaches 1 when the phase ends.
		step := math.Floor(t * StepwiseSteps)
		return startFactor - (startFactor-1)*step/StepwiseSteps
	case ScheduleLogarithmic:
		// Fast early decay: log(1+9t) sweeps 0 → log(10) as t goes 0 → 1.
		return 1 + (startFactor-1)*(1-math.Log1p(9*t)/math.Log(10))
	case ScheduleLinear:
		return startFactor - (startFactor-1)*t
	case ScheduleExponential:
		return math.Pow(startFactor, 1-t)
	case ScheduleDrop:
		return startFactor
	}
	return 1
}

// Controller drives per-table, per-iteration error bounds: the table-wise
// base bound from classification, scaled by the iteration-wise decay factor.
type Controller struct {
	// BaseEB is the per-table base error bound (the class bound).
	BaseEB []float32
	// Schedule is the decay function of the initial phase.
	Schedule Schedule
	// PhaseLen is the length of the initial (decay) phase in iterations.
	PhaseLen int
	// StartFactor is the initial multiplier (the paper evaluates 2× and 3×).
	StartFactor float64
}

// NewController builds a controller from a classification result.
func NewController(classes []Class, cfg EBConfig, sched Schedule, phaseLen int, startFactor float64) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if startFactor < 1 {
		return nil, fmt.Errorf("adapt: start factor %v must be >= 1", startFactor)
	}
	base := make([]float32, len(classes))
	for i, cl := range classes {
		base[i] = cfg.For(cl)
	}
	return &Controller{BaseEB: base, Schedule: sched, PhaseLen: phaseLen, StartFactor: startFactor}, nil
}

// EBAt returns the error bound for table at iteration iter (Algorithm 1's
// OnlineDecay applied to the table-wise configuration).
func (c *Controller) EBAt(table, iter int) float32 {
	f := DecayFactor(c.Schedule, iter, c.PhaseLen, c.StartFactor)
	return c.BaseEB[table] * float32(f)
}

// NumTables returns the number of tables the controller covers.
func (c *Controller) NumTables() int { return len(c.BaseEB) }
