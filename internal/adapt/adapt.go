package adapt

import (
	"fmt"
	"math"

	"dlrmcomp/internal/quant"
)

// Class is an error-bound class for a table.
type Class int

// Error-bound classes: a Large class means a larger (looser) error bound.
const (
	ClassMedium Class = iota
	ClassLarge
	ClassSmall
)

func (c Class) String() string {
	switch c {
	case ClassLarge:
		return "L"
	case ClassSmall:
		return "S"
	default:
		return "M"
	}
}

// PatternStats describes one sampled batch of a table (the columns of the
// paper's Tables III/IV).
type PatternStats struct {
	TableID     int
	Batch       int     // rows sampled
	OrigUnique  int     // distinct embedding vectors before quantization
	QuantUnique int     // distinct vectors after quantization
	HomoIndex   float64 // Eq. (1): (OrigUnique − QuantUnique) / OrigUnique
	// PatternRatio is QuantUnique/OrigUnique — the value the paper's
	// Tables III/IV actually tabulate in their "Homo Index" column.
	PatternRatio float64
}

// hashRow gives a collision-resistant fingerprint for uniqueness counting.
func hashRowF(row []float32) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range row {
		u := math.Float32bits(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= 1099511628211
		}
	}
	return h
}

func hashRowI(row []int32) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range row {
		u := uint32(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(u >> s))
			h *= 1099511628211
		}
	}
	return h
}

// AnalyzeTable computes the homogenization statistics for a sampled lookup
// batch (row-major, row length dim) under error bound eb.
func AnalyzeTable(tableID int, sample []float32, dim int, eb float32) (PatternStats, error) {
	if dim <= 0 || len(sample)%dim != 0 || len(sample) == 0 {
		return PatternStats{}, fmt.Errorf("adapt: bad sample shape len=%d dim=%d", len(sample), dim)
	}
	rows := len(sample) / dim
	codes := make([]int32, len(sample))
	quant.New(eb).Quantize(codes, sample)

	orig := make(map[uint64]bool)
	quantSet := make(map[uint64]bool)
	for r := 0; r < rows; r++ {
		orig[hashRowF(sample[r*dim:(r+1)*dim])] = true
		quantSet[hashRowI(codes[r*dim:(r+1)*dim])] = true
	}
	st := PatternStats{
		TableID:     tableID,
		Batch:       rows,
		OrigUnique:  len(orig),
		QuantUnique: len(quantSet),
	}
	st.HomoIndex = float64(st.OrigUnique-st.QuantUnique) / float64(st.OrigUnique)
	st.PatternRatio = float64(st.QuantUnique) / float64(st.OrigUnique)
	return st, nil
}

// Thresholds are the classification cut points on the Homogenization Index
// (Algorithm 1's L_EMB_hindex and S_EMB_hindex).
type Thresholds struct {
	// LHindex: tables with HomoIndex below it get the Large error bound.
	LHindex float64
	// SHindex: tables with HomoIndex above it get the Small error bound.
	SHindex float64
}

// DefaultThresholds returns cut points that reproduce the paper's Table II
// pattern on both datasets: tiny tables barely homogenize (Large EB), huge
// tables collapse heavily (Small EB).
func DefaultThresholds() Thresholds { return Thresholds{LHindex: 0.05, SHindex: 0.35} }

// Validate checks ordering.
func (t Thresholds) Validate() error {
	if !(t.LHindex < t.SHindex) {
		return fmt.Errorf("adapt: thresholds must satisfy LHindex < SHindex, got %v >= %v", t.LHindex, t.SHindex)
	}
	return nil
}

// Classify implements Algorithm 1's EMBClassification.
func Classify(homoIndex float64, th Thresholds) Class {
	switch {
	case homoIndex > th.SHindex:
		return ClassSmall
	case homoIndex < th.LHindex:
		return ClassLarge
	default:
		return ClassMedium
	}
}

// EBConfig maps classes to error bounds. The paper's final configuration is
// Large 0.05, Medium 0.03, Small 0.01 (§IV-B).
type EBConfig struct {
	Large, Medium, Small float32
}

// PaperEBConfig returns the configuration the paper selects.
func PaperEBConfig() EBConfig { return EBConfig{Large: 0.05, Medium: 0.03, Small: 0.01} }

// FromGlobal derives the config as Algorithm 1 does: Large = global·alpha,
// Small = global/beta, Medium = global.
func FromGlobal(global, alpha, beta float32) EBConfig {
	return EBConfig{Large: global * alpha, Medium: global, Small: global / beta}
}

// For returns the bound for a class.
func (c EBConfig) For(class Class) float32 {
	switch class {
	case ClassLarge:
		return c.Large
	case ClassSmall:
		return c.Small
	default:
		return c.Medium
	}
}

// Validate checks ordering and positivity.
func (c EBConfig) Validate() error {
	if c.Small <= 0 || c.Medium < c.Small || c.Large < c.Medium {
		return fmt.Errorf("adapt: EBConfig must satisfy 0 < Small <= Medium <= Large, got %+v", c)
	}
	return nil
}
