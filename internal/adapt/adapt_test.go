package adapt

import (
	"math"
	"testing"

	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/tensor"
)

// batchOf builds a row-major batch from a vocabulary with given repeats.
func batchOf(rng *tensor.RNG, rows, dim, vocabSize int, std float32) []float32 {
	vocab := make([][]float32, vocabSize)
	for v := range vocab {
		vocab[v] = make([]float32, dim)
		rng.FillNormal(vocab[v], 0, std)
	}
	var src []float32
	for r := 0; r < rows; r++ {
		src = append(src, vocab[rng.Intn(vocabSize)]...)
	}
	return src
}

func TestAnalyzeTableCounts(t *testing.T) {
	// 4 distinct rows, two of which quantize to the same bins.
	dim := 2
	sample := []float32{
		1.0, 2.0,
		1.004, 2.004, // within eb 0.01 bin of row 0
		5.0, 6.0,
		9.0, 10.0,
	}
	st, err := AnalyzeTable(0, sample, dim, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrigUnique != 4 {
		t.Fatalf("orig unique = %d", st.OrigUnique)
	}
	if st.QuantUnique != 3 {
		t.Fatalf("quant unique = %d", st.QuantUnique)
	}
	if math.Abs(st.HomoIndex-0.25) > 1e-9 {
		t.Fatalf("homo index = %v, want 0.25", st.HomoIndex)
	}
	if math.Abs(st.PatternRatio-0.75) > 1e-9 {
		t.Fatalf("pattern ratio = %v, want 0.75", st.PatternRatio)
	}
}

func TestAnalyzeTableNoHomogenization(t *testing.T) {
	// Well-separated rows: quantization preserves all patterns (the
	// paper's tables with tabulated index 1).
	sample := []float32{0, 0, 10, 10, 20, 20, 30, 30}
	st, err := AnalyzeTable(1, sample, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if st.HomoIndex != 0 || st.PatternRatio != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnalyzeTableErrors(t *testing.T) {
	if _, err := AnalyzeTable(0, nil, 4, 0.01); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := AnalyzeTable(0, []float32{1, 2, 3}, 2, 0.01); err == nil {
		t.Fatal("bad shape should error")
	}
}

func TestClassify(t *testing.T) {
	th := DefaultThresholds()
	if Classify(0.0, th) != ClassLarge {
		t.Fatal("zero homogenization -> large EB")
	}
	if Classify(0.9, th) != ClassSmall {
		t.Fatal("heavy homogenization -> small EB")
	}
	if Classify(0.2, th) != ClassMedium {
		t.Fatal("middle -> medium EB")
	}
}

func TestThresholdsValidate(t *testing.T) {
	if (Thresholds{LHindex: 0.5, SHindex: 0.2}).Validate() == nil {
		t.Fatal("inverted thresholds should fail")
	}
	if DefaultThresholds().Validate() != nil {
		t.Fatal("defaults must validate")
	}
}

func TestEBConfig(t *testing.T) {
	cfg := PaperEBConfig()
	if cfg.For(ClassLarge) != 0.05 || cfg.For(ClassMedium) != 0.03 || cfg.For(ClassSmall) != 0.01 {
		t.Fatalf("paper config wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	g := FromGlobal(0.03, 2, 3)
	if g.Large != 0.06 || g.Medium != 0.03 || g.Small != 0.01 {
		t.Fatalf("FromGlobal wrong: %+v", g)
	}
	bad := EBConfig{Large: 0.01, Medium: 0.03, Small: 0.05}
	if bad.Validate() == nil {
		t.Fatal("inverted config should fail")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassLarge.String() != "L" || ClassMedium.String() != "M" || ClassSmall.String() != "S" {
		t.Fatal("class strings wrong")
	}
}

func TestDecayFactorBounds(t *testing.T) {
	for _, s := range []Schedule{ScheduleStepwise, ScheduleLogarithmic, ScheduleLinear, ScheduleExponential, ScheduleDrop} {
		for iter := 0; iter < 200; iter++ {
			f := DecayFactor(s, iter, 100, 2)
			if f < 1 || f > 2+1e-9 {
				t.Fatalf("%v iter %d: factor %v out of [1,2]", s, iter, f)
			}
			if iter >= 100 && f != 1 {
				t.Fatalf("%v: factor must be 1 after the phase, got %v", s, f)
			}
		}
	}
}

func TestDecayFactorStartsHigh(t *testing.T) {
	for _, s := range []Schedule{ScheduleStepwise, ScheduleLogarithmic, ScheduleLinear, ScheduleExponential, ScheduleDrop} {
		if f := DecayFactor(s, 0, 100, 3); math.Abs(f-3) > 1e-9 {
			t.Fatalf("%v: factor at iter 0 = %v, want 3", s, f)
		}
	}
}

func TestDecayMonotone(t *testing.T) {
	for _, s := range []Schedule{ScheduleStepwise, ScheduleLogarithmic, ScheduleLinear, ScheduleExponential} {
		prev := math.Inf(1)
		for iter := 0; iter <= 100; iter++ {
			f := DecayFactor(s, iter, 100, 2)
			if f > prev+1e-9 {
				t.Fatalf("%v: factor increased at iter %d", s, iter)
			}
			prev = f
		}
	}
}

func TestDropHoldsThenDrops(t *testing.T) {
	if DecayFactor(ScheduleDrop, 99, 100, 2) != 2 {
		t.Fatal("drop must hold start factor during the phase")
	}
	if DecayFactor(ScheduleDrop, 100, 100, 2) != 1 {
		t.Fatal("drop must reach 1 after the phase")
	}
}

func TestStepwiseIsStaircase(t *testing.T) {
	// Distinct plateau values: exactly StepwiseSteps levels during phase.
	seen := make(map[float64]bool)
	for iter := 0; iter < 100; iter++ {
		seen[DecayFactor(ScheduleStepwise, iter, 100, 2)] = true
	}
	if len(seen) != StepwiseSteps {
		t.Fatalf("stepwise has %d levels, want %d", len(seen), StepwiseSteps)
	}
}

func TestScheduleNone(t *testing.T) {
	if DecayFactor(ScheduleNone, 0, 100, 5) != 1 {
		t.Fatal("none must always be 1")
	}
}

func TestScheduleStrings(t *testing.T) {
	names := map[Schedule]string{
		ScheduleNone: "none", ScheduleStepwise: "stepwise",
		ScheduleLogarithmic: "logarithmic", ScheduleLinear: "linear",
		ScheduleExponential: "exponential", ScheduleDrop: "drop",
	}
	for s, w := range names {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestController(t *testing.T) {
	classes := []Class{ClassLarge, ClassMedium, ClassSmall}
	ctrl, err := NewController(classes, PaperEBConfig(), ScheduleStepwise, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.NumTables() != 3 {
		t.Fatal("table count")
	}
	// At iteration 0 every bound is doubled.
	if eb := ctrl.EBAt(0, 0); math.Abs(float64(eb)-0.10) > 1e-6 {
		t.Fatalf("table 0 iter 0 eb = %v", eb)
	}
	// After the phase bounds equal the class values.
	if eb := ctrl.EBAt(2, 500); eb != 0.01 {
		t.Fatalf("table 2 late eb = %v", eb)
	}
	if _, err := NewController(classes, PaperEBConfig(), ScheduleStepwise, 100, 0.5); err == nil {
		t.Fatal("start factor < 1 should error")
	}
}

func TestOfflineAnalysisClassifiesBySkew(t *testing.T) {
	rng := tensor.NewRNG(1)
	dim := 8
	// Table 0: huge-cardinality-style — values so tightly packed that
	// quantization collapses most patterns -> small EB.
	dense := batchOf(rng, 128, dim, 100, 0.004)
	// Table 1: tiny-cardinality-style — few rows, widely separated ->
	// no homogenization -> large EB.
	sparse := batchOf(rng, 128, dim, 4, 2.0)
	res, err := OfflineAnalysis([][]float32{dense, sparse}, dim, OfflineOptions{SampleEB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes[0] != ClassSmall {
		t.Fatalf("packed table classified %v (homo %v), want S",
			res.Classes[0], res.Stats[0].HomoIndex)
	}
	if res.Classes[1] != ClassLarge {
		t.Fatalf("separated table classified %v (homo %v), want L",
			res.Classes[1], res.Stats[1].HomoIndex)
	}
	if res.EBs[0] != 0.01 || res.EBs[1] != 0.05 {
		t.Fatalf("EBs = %v", res.EBs)
	}
	l, m, s := res.ClassCounts()
	if l != 1 || s != 1 || m != 0 {
		t.Fatalf("counts = %d/%d/%d", l, m, s)
	}
}

func TestOfflineAnalysisEncoderSelection(t *testing.T) {
	rng := tensor.NewRNG(2)
	dim := 16
	samples := [][]float32{
		batchOf(rng, 256, dim, 8, 1.0),    // repeats -> vlz-friendly
		batchOf(rng, 256, dim, 256, 0.02), // unique, concentrated -> huffman
	}
	res, err := OfflineAnalysis(samples, dim, OfflineOptions{
		SampleEB:       0.01,
		SelectEncoders: true,
		NetBandwidth:   4e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range samples {
		if len(res.Candidates[ti]) != 2 {
			t.Fatalf("table %d: %d candidates", ti, len(res.Candidates[ti]))
		}
		if res.Modes[ti] != hybrid.VectorLZ && res.Modes[ti] != hybrid.Entropy {
			t.Fatalf("table %d: mode %v", ti, res.Modes[ti])
		}
	}
}

func TestRankedByHomoIndex(t *testing.T) {
	res := &OfflineResult{Stats: []PatternStats{
		{TableID: 0, PatternRatio: 1.0},
		{TableID: 1, PatternRatio: 0.6},
		{TableID: 2, PatternRatio: 0.8},
	}}
	ranked := res.RankedByHomoIndex()
	if ranked[0].TableID != 1 || ranked[1].TableID != 2 || ranked[2].TableID != 0 {
		t.Fatalf("ranking wrong: %+v", ranked)
	}
}
