package adapt

import (
	"errors"
	"math"
	"testing"
)

// syntheticLoss models a monotone accuracy-loss curve: loss grows with eb.
func syntheticLoss(eb float32) (float64, error) {
	return float64(eb) * float64(eb) * 100, nil // 0.01 -> 0.01, 0.05 -> 0.25
}

func TestAutoTunePicksLargestAcceptable(t *testing.T) {
	res, err := AutoTuneGlobalEB([]float32{0.001, 0.01, 0.02, 0.05, 0.1}, 0.05, syntheticLoss)
	if err != nil {
		t.Fatal(err)
	}
	// loss(0.02) = 0.04 <= 0.05; loss(0.05) = 0.25 > 0.05.
	if res.BestEB != 0.02 {
		t.Fatalf("BestEB = %v, want 0.02", res.BestEB)
	}
	// Largest-first probing: 0.1, 0.05, 0.02 -> 3 trials.
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(res.Trials))
	}
}

func TestAutoTuneNoCandidateQualifies(t *testing.T) {
	if _, err := AutoTuneGlobalEB([]float32{0.5, 1}, 1e-9, syntheticLoss); err == nil {
		t.Fatal("expected failure when nothing qualifies")
	}
}

func TestAutoTuneValidation(t *testing.T) {
	if _, err := AutoTuneGlobalEB(nil, 0.1, syntheticLoss); err == nil {
		t.Fatal("empty candidates should error")
	}
	if _, err := AutoTuneGlobalEB([]float32{0.1}, -1, syntheticLoss); err == nil {
		t.Fatal("negative tolerance should error")
	}
	if _, err := AutoTuneGlobalEB([]float32{0}, 0.1, syntheticLoss); err == nil {
		t.Fatal("zero candidate should error")
	}
}

func TestAutoTunePropagatesTrialError(t *testing.T) {
	boom := errors.New("boom")
	_, err := AutoTuneGlobalEB([]float32{0.1}, 0.1, func(float32) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefineConvergesToThreshold(t *testing.T) {
	// loss = 100*eb^2 <= 0.05 iff eb <= sqrt(0.0005) ≈ 0.02236.
	res, err := RefineGlobalEB(0.01, 0.08, 0.05, 20, syntheticLoss)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.0005)
	if math.Abs(float64(res.BestEB)-want) > 1e-4 {
		t.Fatalf("BestEB = %v, want ≈ %v", res.BestEB, want)
	}
	if len(res.Trials) != 20 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
}

func TestRefineValidation(t *testing.T) {
	if _, err := RefineGlobalEB(0.05, 0.01, 0.1, 5, syntheticLoss); err == nil {
		t.Fatal("bad > good required")
	}
	if _, err := RefineGlobalEB(0, 0.01, 0.1, 5, syntheticLoss); err == nil {
		t.Fatal("good must be positive")
	}
}

func TestRefineKeepsGoodWhenAllMidsFail(t *testing.T) {
	res, err := RefineGlobalEB(0.001, 1, 1e-12, 4, syntheticLoss)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEB != 0.001 {
		t.Fatalf("BestEB = %v, want the initial good bound", res.BestEB)
	}
}
