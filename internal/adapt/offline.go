package adapt

import (
	"fmt"
	"sort"

	"dlrmcomp/internal/hybrid"
)

// OfflineResult is the output of the offline analysis phase (§III-A): one
// classification, error bound, and encoder choice per embedding table.
type OfflineResult struct {
	Stats      []PatternStats
	Classes    []Class
	EBs        []float32
	Modes      []hybrid.Mode
	Candidates [][]hybrid.Candidate
}

// OfflineOptions configures OfflineAnalysis.
type OfflineOptions struct {
	// SampleEB is the probe error bound used for homogenization analysis
	// (the paper samples with 0.01 on Kaggle and 0.005 on Terabyte).
	SampleEB float32
	// Thresholds classify tables; zero value uses DefaultThresholds.
	Thresholds Thresholds
	// EBConfig maps classes to bounds; zero value uses PaperEBConfig.
	EBConfig EBConfig
	// NetBandwidth (bytes/s) drives Eq. (2) compressor selection.
	NetBandwidth float64
	// SelectEncoders disables Algorithm 2 when false (all tables use Auto).
	SelectEncoders bool
}

// OfflineAnalysis runs Algorithm 1 (classification) and optionally
// Algorithm 2 (encoder selection) on per-table sampled lookup batches.
// samples[t] is a row-major batch for table t with row length dim.
func OfflineAnalysis(samples [][]float32, dim int, opts OfflineOptions) (*OfflineResult, error) {
	if opts.SampleEB <= 0 {
		opts.SampleEB = 0.01
	}
	if opts.Thresholds == (Thresholds{}) {
		opts.Thresholds = DefaultThresholds()
	}
	if opts.EBConfig == (EBConfig{}) {
		opts.EBConfig = PaperEBConfig()
	}
	if opts.NetBandwidth <= 0 {
		opts.NetBandwidth = 4e9 // the paper's 4 GB/s all-to-all
	}
	if err := opts.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if err := opts.EBConfig.Validate(); err != nil {
		return nil, err
	}

	res := &OfflineResult{
		Stats:      make([]PatternStats, len(samples)),
		Classes:    make([]Class, len(samples)),
		EBs:        make([]float32, len(samples)),
		Modes:      make([]hybrid.Mode, len(samples)),
		Candidates: make([][]hybrid.Candidate, len(samples)),
	}
	for t, sample := range samples {
		st, err := AnalyzeTable(t, sample, dim, opts.SampleEB)
		if err != nil {
			return nil, fmt.Errorf("table %d: %w", t, err)
		}
		res.Stats[t] = st
		res.Classes[t] = Classify(st.HomoIndex, opts.Thresholds)
		res.EBs[t] = opts.EBConfig.For(res.Classes[t])
		if opts.SelectEncoders {
			mode, cands, err := hybrid.SelectEncoder(sample, dim, res.EBs[t], opts.NetBandwidth)
			if err != nil {
				return nil, fmt.Errorf("table %d: %w", t, err)
			}
			res.Modes[t] = mode
			res.Candidates[t] = cands
		} else {
			res.Modes[t] = hybrid.Auto
		}
	}
	return res, nil
}

// RankedByHomoIndex returns the table stats sorted ascending by the paper's
// tabulated pattern ratio (Tables III/IV ordering).
func (r *OfflineResult) RankedByHomoIndex() []PatternStats {
	out := make([]PatternStats, len(r.Stats))
	copy(out, r.Stats)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PatternRatio != out[j].PatternRatio {
			return out[i].PatternRatio < out[j].PatternRatio
		}
		return out[i].TableID < out[j].TableID
	})
	return out
}

// ClassCounts returns how many tables landed in each class.
func (r *OfflineResult) ClassCounts() (large, medium, small int) {
	for _, c := range r.Classes {
		switch c {
		case ClassLarge:
			large++
		case ClassSmall:
			small++
		default:
			medium++
		}
	}
	return
}
