package adapt

import (
	"fmt"
	"sort"
)

// The paper's future work (§VI) calls for "a more advanced and automated
// approach for offline selection of a fixed global error-bound". AutoTune
// implements that: it probes candidate bounds with a caller-supplied trial
// function (typically a short compressed training run returning the
// validation-accuracy delta versus the uncompressed baseline) and returns
// the largest bound whose degradation stays within tolerance.

// TrialFunc evaluates one candidate error bound and returns the accuracy
// degradation versus the uncompressed baseline (positive = worse) — e.g.
// baselineAcc - compressedAcc.
type TrialFunc func(eb float32) (accLoss float64, err error)

// AutoTuneResult records the search trace.
type AutoTuneResult struct {
	BestEB float32
	// Trials holds every (eb, accLoss) probed, in probe order.
	Trials []AutoTuneTrial
}

// AutoTuneTrial is one probe of the search.
type AutoTuneTrial struct {
	EB      float32
	AccLoss float64
}

// AutoTuneGlobalEB finds the largest error bound in candidates whose
// accuracy loss is at most tolerance (the paper's production criterion is
// 0.0002, i.e. 0.02%). Candidates are probed from largest to smallest and
// the search stops at the first acceptable bound, so a monotone loss curve
// costs few trials. Returns an error if no candidate qualifies.
func AutoTuneGlobalEB(candidates []float32, tolerance float64, trial TrialFunc) (*AutoTuneResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("adapt: no candidate error bounds")
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("adapt: negative tolerance %v", tolerance)
	}
	sorted := append([]float32(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	for _, eb := range sorted {
		if eb <= 0 {
			return nil, fmt.Errorf("adapt: non-positive candidate bound %v", eb)
		}
	}

	res := &AutoTuneResult{}
	for _, eb := range sorted {
		loss, err := trial(eb)
		if err != nil {
			return nil, fmt.Errorf("adapt: trial at eb %v: %w", eb, err)
		}
		res.Trials = append(res.Trials, AutoTuneTrial{EB: eb, AccLoss: loss})
		if loss <= tolerance {
			res.BestEB = eb
			return res, nil
		}
	}
	return nil, fmt.Errorf("adapt: no candidate bound meets tolerance %v (tightest loss %v)",
		tolerance, res.Trials[len(res.Trials)-1].AccLoss)
}

// RefineGlobalEB bisects between a known-good bound and a known-bad bound
// for rounds iterations, returning the largest bound observed to stay within
// tolerance. It extends AutoTuneGlobalEB when the candidate grid is coarse.
func RefineGlobalEB(good, bad float32, tolerance float64, rounds int, trial TrialFunc) (*AutoTuneResult, error) {
	if good <= 0 || bad <= good {
		return nil, fmt.Errorf("adapt: need 0 < good < bad, got %v, %v", good, bad)
	}
	res := &AutoTuneResult{BestEB: good}
	for i := 0; i < rounds; i++ {
		mid := (good + bad) / 2
		loss, err := trial(mid)
		if err != nil {
			return nil, fmt.Errorf("adapt: trial at eb %v: %w", mid, err)
		}
		res.Trials = append(res.Trials, AutoTuneTrial{EB: mid, AccLoss: loss})
		if loss <= tolerance {
			good = mid
			res.BestEB = mid
		} else {
			bad = mid
		}
	}
	return res, nil
}
