package serve

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is returned by Score when the intake queue is full: the
// request is shed at admission instead of queueing without bound, so an
// overloaded server degrades by dropping load, not by growing latency and
// memory until everything times out at once.
var ErrOverloaded = errors.New("serve: intake queue full; request shed")

// ErrClosed is returned by Score after Close.
var ErrClosed = errors.New("serve: server closed")

// pending is one in-flight Score request, pooled so the steady-state
// request path allocates nothing.
type pending struct {
	dense []float32
	idx   []int32
	score float32
	err   error
	done  chan struct{}
}

// Score runs one request through admission control and micro-batching:
// enqueue (or shed with ErrOverloaded), coalesce with concurrent requests
// until the batch closes on MaxBatch or Linger, score, reply. dense holds
// the DenseFeatures inputs; indices one row id per table. Blocks until the
// score is ready; safe for concurrent use — concurrency is what fills
// batches.
func (s *Server) Score(dense []float32, indices []int32) (float32, error) {
	if len(dense) != s.cfg.DenseFeatures {
		return 0, fmt.Errorf("serve: request has %d dense features, the model wants %d", len(dense), s.cfg.DenseFeatures)
	}
	if len(indices) != len(s.cfg.TableSizes) {
		return 0, fmt.Errorf("serve: request has %d indices, the model has %d tables", len(indices), len(s.cfg.TableSizes))
	}
	p, _ := s.pool.Get().(*pending)
	if p == nil {
		p = &pending{done: make(chan struct{}, 1)}
	}
	p.dense = append(p.dense[:0], dense...)
	p.idx = append(p.idx[:0], indices...)
	p.err = nil

	// The read lock pins the closing flag across the enqueue, so a
	// request can never land in the queue after Close's poison pills
	// (which would strand the caller on p.done).
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		s.pool.Put(p)
		return 0, ErrClosed
	}
	select {
	case s.intake <- p:
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.shed.Add(1)
		s.pool.Put(p)
		return 0, ErrOverloaded
	}
	<-p.done
	score, err := p.score, p.err
	s.pool.Put(p)
	return score, err
}

// Close stops the batcher workers (flushing any batch in flight) and
// fails subsequent Score calls with ErrClosed. Idempotent. ScoreBatch
// stays usable — it holds no service state.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	// One poison pill per worker. The intake channel is FIFO, so every
	// request admitted before the flag flipped is received — and
	// answered — before a worker sees its pill.
	for i := 0; i < s.opts.Workers; i++ {
		s.intake <- nil
	}
	for i := 0; i < s.opts.Workers; i++ {
		<-s.workers
	}
}

// worker is one batcher goroutine: take the first request (blocking),
// linger for more until the batch closes on size or timeout, score the
// batch on a private scorer, reply to every caller.
func (s *Server) worker() {
	defer func() { s.workers <- struct{}{} }()
	sc := <-s.scorers
	defer func() { s.scorers <- sc }()
	batch := make([]*pending, 0, s.opts.MaxBatch)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		p := <-s.intake
		if p == nil {
			return
		}
		batch = append(batch[:0], p)
		poisoned := false
		if s.opts.MaxBatch > 1 {
			timer.Reset(s.opts.Linger)
			full := true
		collect:
			for len(batch) < s.opts.MaxBatch {
				select {
				case q := <-s.intake:
					if q == nil {
						poisoned = true
						break collect
					}
					batch = append(batch, q)
				case <-timer.C:
					full = false
					break collect
				}
			}
			if full {
				timer.Stop()
			}
		}
		s.runBatch(sc, batch)
		if poisoned {
			return
		}
	}
}

// runBatch assembles the coalesced requests into sc's batch workspaces,
// scores them, and replies.
func (s *Server) runBatch(sc *scorer, batch []*pending) {
	n := len(batch)
	sc.dense = sc.dense.Resize(n, s.cfg.DenseFeatures)
	for t := range sc.cols {
		if cap(sc.cols[t]) < n {
			sc.cols[t] = make([]int32, n)
		}
		sc.cols[t] = sc.cols[t][:n]
	}
	if cap(sc.out) < n {
		sc.out = make([]float32, n)
	}
	sc.out = sc.out[:n]
	for i, p := range batch {
		copy(sc.dense.Row(i), p.dense)
		for t := range sc.cols {
			sc.cols[t][i] = p.idx[t]
		}
	}
	err := s.scoreInto(sc, sc.dense, sc.cols, sc.out)
	for i, p := range batch {
		p.score, p.err = sc.out[i], err
		p.done <- struct{}{}
	}
}
