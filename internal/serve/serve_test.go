package serve

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

func testSpec() criteo.Spec { return criteo.ScaledSpec(criteo.KaggleSpec(), 100000) }

func testConfig(spec criteo.Spec, dim int) model.Config {
	return model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{16},
		TopMLP:            []int{16},
		Seed:              spec.Seed,
	}
}

// trainedCheckpoint trains a small 2-rank model for a few steps and returns
// its config plus the serialized DLCK checkpoint — the artifact the serving
// layer loads.
func trainedCheckpoint(t testing.TB, ckptCodec string) (model.Config, []byte) {
	t.Helper()
	spec := testSpec()
	cfg := testConfig(spec, 8)
	tr, err := dist.NewTrainer(dist.Options{Ranks: 2, Model: cfg})
	if err != nil {
		t.Fatalf("NewTrainer: %v", err)
	}
	defer tr.Close()
	gen := criteo.NewGenerator(spec)
	for i := 0; i < 4; i++ {
		if _, err := tr.Step(gen.NextBatch(32)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	var buf bytes.Buffer
	if _, err := tr.SaveCheckpoint(&buf, dist.CheckpointOptions{Codec: ckptCodec}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	return cfg, buf.Bytes()
}

// referenceModel reconstructs a plain in-memory DLRM from a checkpoint, the
// same way newServer does, so tests can score against uncompressed,
// uncached, unsharded ground truth.
func referenceModel(t testing.TB, cfg model.Config, ckpt []byte) *model.DLRM {
	t.Helper()
	ck, err := dist.ReadCheckpoint(bytes.NewReader(ckpt))
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	m, err := model.New(cfg)
	if err != nil {
		t.Fatalf("model.New: %v", err)
	}
	for i, p := range m.DenseParams() {
		if len(ck.Dense[i]) != len(p.Value) {
			t.Fatalf("dense tensor %d: %d values vs %d", i, len(ck.Dense[i]), len(p.Value))
		}
		copy(p.Value, ck.Dense[i])
	}
	for tb, tab := range m.Emb.Tables {
		if len(ck.Tables[tb]) != len(tab.Weights.Data) {
			t.Fatalf("table %d: %d values vs %d", tb, len(ck.Tables[tb]), len(tab.Weights.Data))
		}
		copy(tab.Weights.Data, ck.Tables[tb])
	}
	m.SetComputeWorkers(1)
	return m
}

// requestStream pre-generates n Zipf-skewed requests from the dataset
// generator (which draws indices per-table with the spec's skew).
func requestStream(spec criteo.Spec, n int) []*criteo.Batch {
	gen := criteo.NewGenerator(spec)
	reqs := make([]*criteo.Batch, n)
	for i := range reqs {
		reqs[i] = gen.NextBatch(1)
	}
	return reqs
}

// refScores runs requests through the reference model and returns sigmoid
// scores.
func refScores(m *model.DLRM, reqs []*criteo.Batch) []float32 {
	out := make([]float32, len(reqs))
	for i, r := range reqs {
		logits := m.Forward(r.Dense, r.Indices)
		out[i] = nn.Sigmoid(logits.At(0, 0))
	}
	return out
}

// TestServeParity is the headline serving guarantee: for every lossless
// cold codec, with and without the hot cache, across shard counts, the
// served score of every request is bit-identical to the reference model
// rebuilt from the same checkpoint — compression and caching never change
// a score. The quant codec is checked for bounded divergence instead.
func TestServeParity(t *testing.T) {
	spec := testSpec()
	cfg, ckpt := trainedCheckpoint(t, "lzss")
	ref := referenceModel(t, cfg, ckpt)
	reqs := requestStream(spec, 200)
	want := refScores(ref, reqs)

	cases := []struct {
		name string
		opts Options
	}{
		{"raw_uncached", Options{ColdCodec: "raw", HotBytes: -1}},
		{"raw_cached", Options{ColdCodec: "raw"}},
		{"lzss_cached", Options{ColdCodec: "lzss"}},
		{"deflate_cached", Options{ColdCodec: "deflate", Shards: 3}},
		{"lzss_tiny_cache_4shards", Options{ColdCodec: "lzss", Shards: 4, HotBytes: 4096, BlockRows: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := New(cfg, bytes.NewReader(ckpt), tc.opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer srv.Close()
			out := make([]float32, 1)
			for i, r := range reqs {
				if err := srv.ScoreBatch(r.Dense, r.Indices, out); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if math.Float32bits(out[0]) != math.Float32bits(want[i]) {
					t.Fatalf("request %d: served %v != reference %v — not bit-identical", i, out[0], want[i])
				}
			}
		})
	}

	t.Run("quant_bounded", func(t *testing.T) {
		const eb = 0.01
		srv, err := New(cfg, bytes.NewReader(ckpt), Options{ColdCodec: "quant", QuantEB: eb})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer srv.Close()
		out := make([]float32, 1)
		var maxDelta float64
		for i, r := range reqs {
			if err := srv.ScoreBatch(r.Dense, r.Indices, out); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if d := math.Abs(float64(out[0] - want[i])); d > maxDelta {
				maxDelta = d
			}
		}
		// Sigmoid output deltas stay small for a 0.01 embedding error
		// bound on this model; 0.05 is generous headroom, and the real
		// assertion is "close but allowed to differ".
		if maxDelta > 0.05 {
			t.Fatalf("quant scores drifted %.4f from reference, want <= 0.05", maxDelta)
		}
		if st := srv.Stats(); st.ColdRatio() < 3 {
			t.Fatalf("quant cold tier compresses %.2fx, want >= 3x", st.ColdRatio())
		}
	})
}

// TestServeCachedMatchesUncachedQuant pins the hit≡miss invariant for the
// lossy codec too: because the cache stores decoded rows, a cached quant
// server and an uncached quant server serve bit-identical scores.
func TestServeCachedMatchesUncachedQuant(t *testing.T) {
	spec := testSpec()
	cfg, ckpt := trainedCheckpoint(t, "raw")
	reqs := requestStream(spec, 200)

	mk := func(hotBytes int64) []float32 {
		srv, err := New(cfg, bytes.NewReader(ckpt), Options{ColdCodec: "quant", QuantEB: 0.02, HotBytes: hotBytes})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer srv.Close()
		out := make([]float32, 1)
		scores := make([]float32, len(reqs))
		for i, r := range reqs {
			if err := srv.ScoreBatch(r.Dense, r.Indices, out); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			scores[i] = out[0]
		}
		return scores
	}
	cached, uncached := mk(0), mk(-1)
	for i := range cached {
		if math.Float32bits(cached[i]) != math.Float32bits(uncached[i]) {
			t.Fatalf("request %d: cached %v != uncached %v", i, cached[i], uncached[i])
		}
	}
}

// TestServeHitRate drives the default-sized cache with the generator's
// Zipf-skewed traffic and checks the skew does its job: after warmup the
// hot tier absorbs at least 90% of row lookups.
func TestServeHitRate(t *testing.T) {
	spec := testSpec()
	cfg, ckpt := trainedCheckpoint(t, "lzss")
	srv, err := New(cfg, bytes.NewReader(ckpt), Options{ColdCodec: "lzss"})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	gen := criteo.NewGenerator(spec)
	out := make([]float32, 32)
	// Warm the cache, then measure steady state.
	for i := 0; i < 40; i++ {
		b := gen.NextBatch(32)
		if err := srv.ScoreBatch(b.Dense, b.Indices, out); err != nil {
			t.Fatalf("warm batch %d: %v", i, err)
		}
	}
	before := srv.Stats()
	for i := 0; i < 60; i++ {
		b := gen.NextBatch(32)
		if err := srv.ScoreBatch(b.Dense, b.Indices, out); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	after := srv.Stats()
	steady := Stats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
	if hr := steady.HitRate(); hr < 0.90 {
		t.Fatalf("steady-state hit rate %.3f, want >= 0.90 (hits=%d misses=%d)", hr, steady.Hits, steady.Misses)
	}
	if after.HotBytes > cfgRawBytes(cfg)/4 {
		t.Fatalf("hot cache resident %d bytes exceeds the %d budget", after.HotBytes, cfgRawBytes(cfg)/4)
	}
}

func cfgRawBytes(cfg model.Config) int64 {
	var n int64
	for _, rows := range cfg.TableSizes {
		n += int64(rows) * int64(cfg.EmbeddingDim) * 4
	}
	return n
}

// TestServeLRUExact pins exact-LRU eviction with a two-entry cache on a
// hand-built single-table model: the least recently *used* (not least
// recently admitted) row is the one evicted.
func TestServeLRUExact(t *testing.T) {
	cfg := model.Config{
		DenseFeatures: 2, EmbeddingDim: 4,
		TableSizes: []int{8},
		BottomMLP:  []int{4}, TopMLP: []int{4},
		Seed: 7,
	}
	m, err := model.New(cfg)
	if err != nil {
		t.Fatalf("model.New: %v", err)
	}
	// Two-entry cache: 2 rows × dim 4 × 4 bytes. BlockRows 1 so a miss
	// decodes exactly the missed row's block.
	srv, err := NewFromModel(m, Options{HotBytes: 2 * 4 * 4, BlockRows: 1})
	if err != nil {
		t.Fatalf("NewFromModel: %v", err)
	}
	defer srv.Close()

	dense := tensor.NewMatrix(1, 2)
	out := make([]float32, 1)
	lookup := func(row int32) (hit bool) {
		before := srv.Stats()
		if err := srv.ScoreBatch(dense, [][]int32{{row}}, out); err != nil {
			t.Fatalf("lookup %d: %v", row, err)
		}
		after := srv.Stats()
		switch {
		case after.Hits == before.Hits+1:
			return true
		case after.Misses == before.Misses+1:
			return false
		}
		t.Fatalf("lookup %d: stats moved oddly: %+v -> %+v", row, before, after)
		return false
	}

	if lookup(0) {
		t.Fatal("first touch of row 0 should miss")
	}
	if lookup(1) {
		t.Fatal("first touch of row 1 should miss")
	}
	if !lookup(0) {
		t.Fatal("row 0 should be cached")
	}
	// Cache is {0, 1} with 1 the LRU entry. Row 2 must evict 1, not 0.
	if lookup(2) {
		t.Fatal("first touch of row 2 should miss")
	}
	if !lookup(0) {
		t.Fatal("row 0 was recently used; row 2's admission must not evict it")
	}
	if lookup(1) {
		t.Fatal("row 1 was the LRU entry; it should have been evicted")
	}
}

// TestServiceMatchesScoreBatch runs the admission-controlled micro-batching
// path concurrently and checks every score matches the synchronous path
// bit-for-bit — coalescing requests into shared batches must not change
// the arithmetic of any single request.
func TestServiceMatchesScoreBatch(t *testing.T) {
	spec := testSpec()
	cfg, ckpt := trainedCheckpoint(t, "raw")
	ref := referenceModel(t, cfg, ckpt)
	reqs := requestStream(spec, 300)
	want := refScores(ref, reqs)

	srv, err := New(cfg, bytes.NewReader(ckpt), Options{
		ColdCodec: "lzss", Workers: 3, MaxBatch: 8, Linger: 100 * time.Microsecond,
		QueueDepth: 1024,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	got := make([]float32, len(reqs))
	var wg sync.WaitGroup
	errs := make(chan error, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r *criteo.Batch) {
			defer wg.Done()
			idx := make([]int32, len(r.Indices))
			for t := range r.Indices {
				idx[t] = r.Indices[t][0]
			}
			score, err := srv.Score(r.Dense.Row(0), idx)
			if err != nil {
				errs <- err
				return
			}
			got[i] = score
		}(i, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Score: %v", err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("request %d: service scored %v, reference %v", i, got[i], want[i])
		}
	}
	if st := srv.Stats(); st.Requests < int64(len(reqs)) {
		t.Fatalf("stats count %d requests, served %d", st.Requests, len(reqs))
	}
}

// TestServeOverload floods a one-deep intake queue and checks admission
// control sheds with ErrOverloaded instead of queueing without bound, that
// shed counts land in Stats, and that every admitted request still gets a
// correct answer.
func TestServeOverload(t *testing.T) {
	cfg, ckpt := trainedCheckpoint(t, "raw")
	srv, err := New(cfg, bytes.NewReader(ckpt), Options{
		QueueDepth: 1, MaxBatch: 1, Workers: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	dense := make([]float32, cfg.DenseFeatures)
	idx := make([]int32, len(cfg.TableSizes))
	var wg sync.WaitGroup
	var scored, shed, other int64
	var mu sync.Mutex
	for i := 0; i < 512; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Score(dense, idx)
			mu.Lock()
			defer mu.Unlock()
			switch err {
			case nil:
				scored++
			case ErrOverloaded:
				shed++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d requests failed with unexpected errors", other)
	}
	if scored == 0 {
		t.Fatal("no request was served")
	}
	if shed == 0 {
		t.Fatal("flooding a 1-deep queue shed nothing; admission control is not bounding intake")
	}
	st := srv.Stats()
	if st.Shed != shed {
		t.Fatalf("stats report %d shed, callers saw %d", st.Shed, shed)
	}
	if st.Requests != scored {
		t.Fatalf("stats report %d scored, callers saw %d", st.Requests, scored)
	}
}

// TestServeClose pins the shutdown contract: Close is idempotent, Score
// after Close returns ErrClosed, in-flight requests complete, and
// ScoreBatch keeps working.
func TestServeClose(t *testing.T) {
	cfg, ckpt := trainedCheckpoint(t, "raw")
	srv, err := New(cfg, bytes.NewReader(ckpt), Options{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dense := make([]float32, cfg.DenseFeatures)
	idx := make([]int32, len(cfg.TableSizes))

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Score(dense, idx); err != nil && err != ErrOverloaded && err != ErrClosed {
				t.Errorf("in-flight Score: %v", err)
			}
		}()
	}
	srv.Close()
	srv.Close() // idempotent
	wg.Wait()

	if _, err := srv.Score(dense, idx); err != ErrClosed {
		t.Fatalf("Score after Close: err = %v, want ErrClosed", err)
	}
	b := criteo.NewGenerator(testSpec()).NextBatch(4)
	out := make([]float32, 4)
	if err := srv.ScoreBatch(b.Dense, b.Indices, out); err != nil {
		t.Fatalf("ScoreBatch after Close: %v", err)
	}
}

// TestServeOptionErrors pins construction-time validation.
func TestServeOptionErrors(t *testing.T) {
	cfg, ckpt := trainedCheckpoint(t, "raw")
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"unknown_codec", Options{ColdCodec: "zstd"}, "unknown cold codec"},
		{"quant_without_eb", Options{ColdCodec: "quant"}, "QuantEB"},
		{"eb_without_quant", Options{ColdCodec: "lzss", QuantEB: 0.01}, "does not quantize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(cfg, bytes.NewReader(ckpt), tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	t.Run("config_mismatch", func(t *testing.T) {
		bad := cfg
		bad.EmbeddingDim = 16
		if _, err := New(bad, bytes.NewReader(ckpt), Options{}); err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Fatalf("err = %v, want shape mismatch", err)
		}
	})

	t.Run("bad_indices", func(t *testing.T) {
		srv, err := New(cfg, bytes.NewReader(ckpt), Options{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer srv.Close()
		dense := tensor.NewMatrix(1, cfg.DenseFeatures)
		idx := make([][]int32, len(cfg.TableSizes))
		for i := range idx {
			idx[i] = []int32{0}
		}
		idx[0][0] = int32(cfg.TableSizes[0])
		out := make([]float32, 1)
		if err := srv.ScoreBatch(dense, idx, out); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("err = %v, want out-of-range", err)
		}
	})
}
