package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/interaction"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
	"dlrmcomp/internal/tensor"
)

// Options configures a Server. The zero value of every field means "use
// the documented default".
type Options struct {
	// Shards is the embedding-server count; table t lives on shard
	// t % Shards, the same round-robin placement internal/dist uses for
	// ranks. 0 = 1.
	Shards int
	// ColdCodec names the cold-tier frame codec: "raw" (default),
	// "lzss", "deflate" (lossless — serving scores are bit-identical to
	// uncompressed tables), or "quant" (lossy: rows quantized through
	// the hybrid codec within QuantEB; verified against the source
	// weights at load time).
	ColdCodec string
	// QuantEB is the absolute error bound of the "quant" cold codec.
	// Required (> 0) with ColdCodec "quant", rejected otherwise.
	QuantEB float32
	// BlockRows is the cold-frame granularity in rows (0 = 64). A miss
	// decodes one block; smaller blocks cut miss latency, larger ones
	// compress better.
	BlockRows int
	// HotBytes budgets the hot cache of decoded rows, in bytes across
	// all shards. 0 = a quarter of the uncompressed table footprint;
	// negative = no hot cache (every lookup decodes its block — the
	// uncached reference path the parity tests compare against).
	HotBytes int64
	// MaxBatch closes a micro-batch when this many requests have
	// coalesced (0 = 64).
	MaxBatch int
	// Linger closes a non-full micro-batch this long after its first
	// request (0 = 200µs). The knob trades p50 latency against batching
	// efficiency.
	Linger time.Duration
	// QueueDepth bounds the intake queue; a Score arriving with the
	// queue full is shed with ErrOverloaded instead of queueing without
	// bound. 0 = 4×MaxBatch.
	QueueDepth int
	// Workers is the batcher-goroutine count, each with its own scorer
	// workspace (0 = 1).
	Workers int
	// ComputeWorkers is the intra-op parallel width of each scorer's
	// matmuls (0 = 1). Serving scales by request concurrency (Workers,
	// Shards), so single-threaded kernels — which also keep the request
	// path allocation-free — are the right default; raise this only for
	// very large micro-batches.
	ComputeWorkers int
}

// resolved fills the documented defaults; rawBytes is the uncompressed
// table footprint HotBytes defaults against.
func (o Options) resolved(rawBytes int64) Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ColdCodec == "" {
		o.ColdCodec = DefaultColdCodec
	}
	if o.BlockRows <= 0 {
		o.BlockRows = 64
	}
	if o.HotBytes == 0 {
		o.HotBytes = rawBytes / 4
	}
	if o.HotBytes < 0 {
		o.HotBytes = 0
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.Linger <= 0 {
		o.Linger = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.MaxBatch
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.ComputeWorkers <= 0 {
		o.ComputeWorkers = 1
	}
	return o
}

// Server scores requests against a checkpointed DLRM: sharded two-tier
// embedding stores plus per-worker MLP/interaction workspaces. ScoreBatch
// is the synchronous path (caller-assembled batches); Score is the
// admission-controlled micro-batching path. Both are safe for concurrent
// use.
type Server struct {
	cfg  model.Config
	opts Options

	shards  []*shard
	byTable []*shard // table id -> owning shard
	scorers chan *scorer

	intake  chan *pending
	pool    sync.Pool
	workers chan struct{} // exited-worker tokens for Close to join
	closeMu sync.RWMutex
	closed  bool

	requests atomic.Int64
	shed     atomic.Int64
}

// scorer is one worker's private forward-pass workspace: MLP clones and a
// DotInteraction (their scratch matrices are layer-owned and not
// goroutine-safe), plus reused gather/batch buffers.
type scorer struct {
	bottom, top *nn.MLP
	di          *interaction.DotInteraction
	lookups     []*tensor.Matrix
	dense       *tensor.Matrix
	cols        [][]int32
	out         []float32
}

// New loads a Server from a DLCK checkpoint stream. cfg must describe the
// model the checkpoint was saved from (dim, table sizes, MLP widths) —
// the checkpoint carries shapes and weights, not architecture — and is
// verified against the decoded shapes.
func New(cfg model.Config, r io.Reader, opts Options) (*Server, error) {
	ck, err := dist.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if ck.Dim != cfg.EmbeddingDim || len(ck.TableRows) != len(cfg.TableSizes) {
		return nil, fmt.Errorf("serve: checkpoint shape dim=%d tables=%d does not match the config's dim=%d tables=%d",
			ck.Dim, len(ck.TableRows), cfg.EmbeddingDim, len(cfg.TableSizes))
	}
	for t, rows := range ck.TableRows {
		if rows != cfg.TableSizes[t] {
			return nil, fmt.Errorf("serve: checkpoint table %d has %d rows, the config has %d", t, rows, cfg.TableSizes[t])
		}
	}
	return newServer(cfg, ck.Dense, ck.Tables, opts)
}

// NewFromModel builds a Server directly from a trained in-memory model —
// the same assembly as New without the checkpoint round trip. The model's
// weights are copied; the server holds no reference to m afterwards.
func NewFromModel(m *model.DLRM, opts Options) (*Server, error) {
	params := m.DenseParams()
	dense := make([][]float32, len(params))
	for i, p := range params {
		dense[i] = p.Value
	}
	tables := make([][]float32, len(m.Emb.Tables))
	for t, tab := range m.Emb.Tables {
		tables[t] = tab.Weights.Data
	}
	return newServer(m.Cfg, dense, tables, opts)
}

func newServer(cfg model.Config, dense [][]float32, tables [][]float32, opts Options) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var rawBytes int64
	for _, rows := range cfg.TableSizes {
		rawBytes += int64(rows) * int64(cfg.EmbeddingDim) * 4
	}
	opts = opts.resolved(rawBytes)
	if opts.ColdCodec != "quant" && opts.QuantEB != 0 {
		return nil, fmt.Errorf("serve: QuantEB is the %q codec's knob; cold codec %q does not quantize", "quant", opts.ColdCodec)
	}
	cc, err := coldCodecByName(opts.ColdCodec, opts.QuantEB)
	if err != nil {
		return nil, err
	}

	s := &Server{cfg: cfg, opts: opts}

	// The MLP stack: build a throwaway model for its layer shapes (with
	// 1-row tables, so no real embedding storage), then overwrite every
	// dense parameter from the checkpoint. Init values never survive, so
	// the RNG stream does not need to match training's.
	shapeCfg := cfg
	shapeCfg.TableSizes = make([]int, len(cfg.TableSizes))
	for i := range shapeCfg.TableSizes {
		shapeCfg.TableSizes[i] = 1
	}
	shapeCfg.InitCardinalities = nil
	tmpl, err := model.New(shapeCfg)
	if err != nil {
		return nil, err
	}
	params := tmpl.DenseParams()
	if len(dense) != len(params) {
		return nil, fmt.Errorf("serve: checkpoint carries %d dense tensors, the config's MLPs have %d", len(dense), len(params))
	}
	for i, p := range params {
		if len(dense[i]) != len(p.Value) {
			return nil, fmt.Errorf("serve: checkpoint dense tensor %d has %d values, the config's MLPs have %d", i, len(dense[i]), len(p.Value))
		}
		copy(p.Value, dense[i])
	}

	// Shards and stores. The hot-cache byte budget splits evenly across
	// shards (each shard's cache is private to its mutex domain).
	numTables := len(cfg.TableSizes)
	dim := cfg.EmbeddingDim
	perShard := opts.HotBytes / int64(opts.Shards)
	s.shards = make([]*shard, opts.Shards)
	s.byTable = make([]*shard, numTables)
	for i := range s.shards {
		s.shards[i] = &shard{
			tables: make([]*tableStore, numTables),
			cc:     cc,
			hot:    newHotCache(int(perShard/(int64(dim)*4)), dim),
			block:  make([]float32, opts.BlockRows*dim),
		}
	}
	for t, rows := range cfg.TableSizes {
		if len(tables[t]) != rows*dim {
			return nil, fmt.Errorf("serve: table %d carries %d values, want %d", t, len(tables[t]), rows*dim)
		}
		sh := s.shards[t%opts.Shards]
		ts, err := newTableStore(t, tables[t], rows, dim, opts.BlockRows, cc)
		if err != nil {
			return nil, err
		}
		sh.tables[t] = ts
		s.byTable[t] = sh
		if cc.name == "quant" {
			if err := verifyQuantBlock(ts, tables[t], cc, opts.QuantEB); err != nil {
				return nil, err
			}
		}
	}

	// Scorer pool: one per worker plus a spare for synchronous
	// ScoreBatch callers.
	s.scorers = make(chan *scorer, opts.Workers+1)
	for i := 0; i < opts.Workers+1; i++ {
		sc := &scorer{
			bottom:  tmpl.Bottom.Clone(),
			top:     tmpl.Top.Clone(),
			di:      interaction.NewDotInteraction(numTables, dim),
			lookups: make([]*tensor.Matrix, numTables),
			cols:    make([][]int32, numTables),
		}
		sc.bottom.SetWorkers(opts.ComputeWorkers)
		sc.top.SetWorkers(opts.ComputeWorkers)
		sc.di.Workers = opts.ComputeWorkers
		s.scorers <- sc
	}

	// Micro-batching service.
	s.intake = make(chan *pending, opts.QueueDepth)
	s.workers = make(chan struct{}, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// verifyQuantBlock is the lossy mode's load-time accuracy check: the first
// block of every table is decoded and compared against the source weights
// under the configured error bound, so a quantization bug (or an EB the
// weights cannot honor) fails construction instead of silently serving
// wrong scores.
func verifyQuantBlock(ts *tableStore, weights []float32, cc *coldCodec, eb float32) error {
	n := ts.blockLen(0) * ts.dim
	got := make([]float32, n)
	if err := cc.decodeInto(got, ts.frames[0]); err != nil {
		return fmt.Errorf("serve: table %d quant verify: %w", ts.id, err)
	}
	// A hair of slack over the bound for float rounding in the codec's
	// reconstruction arithmetic.
	tol := eb * (1 + 1e-4)
	for i, v := range got {
		d := v - weights[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return fmt.Errorf("serve: table %d row %d: quantized value %v is %v from %v, beyond the %v bound",
				ts.id, i/ts.dim, v, d, weights[i], eb)
		}
	}
	return nil
}

// ScoreBatch scores a caller-assembled batch synchronously: dense is
// [n, DenseFeatures], indices holds one index per table per sample, out
// receives the n sigmoid scores. Steady-state calls perform no heap
// allocation. Safe for concurrent use (each call borrows a pooled scorer).
func (s *Server) ScoreBatch(dense *tensor.Matrix, indices [][]int32, out []float32) error {
	sc := <-s.scorers
	err := s.scoreInto(sc, dense, indices, out)
	s.scorers <- sc
	return err
}

// scoreInto runs the forward pass on sc's workspaces: sharded gather →
// bottom MLP → dot interaction → top MLP → sigmoid.
func (s *Server) scoreInto(sc *scorer, dense *tensor.Matrix, indices [][]int32, out []float32) error {
	n := dense.Rows
	if dense.Cols != s.cfg.DenseFeatures {
		return fmt.Errorf("serve: batch has %d dense features, the model wants %d", dense.Cols, s.cfg.DenseFeatures)
	}
	if len(indices) != len(s.cfg.TableSizes) {
		return fmt.Errorf("serve: batch has %d index columns, the model has %d tables", len(indices), len(s.cfg.TableSizes))
	}
	if len(out) != n {
		return fmt.Errorf("serve: out holds %d scores for a %d-sample batch", len(out), n)
	}
	for t := range indices {
		if len(indices[t]) != n {
			return fmt.Errorf("serve: table %d has %d indices for a %d-sample batch", t, len(indices[t]), n)
		}
		sc.lookups[t] = sc.lookups[t].Resize(n, s.cfg.EmbeddingDim)
		if err := s.byTable[t].gatherInto(sc.lookups[t], t, indices[t]); err != nil {
			return err
		}
	}
	bot := sc.bottom.Forward(dense)
	z := sc.di.Forward(bot, sc.lookups)
	logits := sc.top.Forward(z)
	for i := 0; i < n; i++ {
		out[i] = nn.Sigmoid(logits.At(i, 0))
	}
	s.requests.Add(int64(n))
	return nil
}

// Stats is a point-in-time serving counter snapshot.
type Stats struct {
	// Requests counts scored samples; Shed counts requests dropped by
	// admission control.
	Requests, Shed int64
	// Hits and Misses count hot-cache row lookups.
	Hits, Misses int64
	// HotBytes is the resident decoded-row cache footprint; ColdBytes
	// the resident compressed-frame footprint; RawBytes what the tables
	// would occupy uncompressed.
	HotBytes, ColdBytes, RawBytes int64
}

// HitRate returns Hits/(Hits+Misses), 0 before any lookup.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// ColdRatio returns RawBytes/ColdBytes — the capacity multiplier of the
// compressed cold tier.
func (st Stats) ColdRatio() float64 {
	if st.ColdBytes == 0 {
		return 0
	}
	return float64(st.RawBytes) / float64(st.ColdBytes)
}

// Stats sums the per-shard counters.
func (s *Server) Stats() Stats {
	st := Stats{Requests: s.requests.Load(), Shed: s.shed.Load()}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.HotBytes += sh.hot.usedBytes()
		for _, ts := range sh.tables {
			if ts != nil {
				st.ColdBytes += ts.coldBytes
				st.RawBytes += ts.rawBytes()
			}
		}
		sh.mu.Unlock()
	}
	return st
}
