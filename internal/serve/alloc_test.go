package serve

import (
	"testing"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/testutil"
)

// TestScoreBatchAllocsSteadyState is the allocs/op regression gate for the
// serving hot path (it runs in the quick suite; CI fails if workspace or
// cache-slab reuse regresses). The bound is zero: with single-threaded
// kernels every matrix, gather buffer, and LRU structure is preallocated,
// and both the hit path (slab copy) and the miss path (buffered block
// decode) stay off the heap.
func TestScoreBatchAllocsSteadyState(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc pins are meaningless under the race detector (instrumented allocations, dropped pools)")
	}
	spec := testSpec()
	cfg := testConfig(spec, 8)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		max  float64
	}{
		// Hit-dominated: default cache, raw frames.
		{"raw_cached", Options{ColdCodec: "raw"}, 0},
		// Miss-every-row: no cache, every lookup decodes a quant block
		// through the hybrid codec's buffered path. sync.Pool can drop a
		// workspace across a GC mid-run, so a small non-zero bound.
		{"quant_uncached", Options{ColdCodec: "quant", QuantEB: 0.02, HotBytes: -1}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewFromModel(m, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			gen := criteo.NewGenerator(spec)
			// A batch small enough that every matmul stays under any
			// parallel threshold; ComputeWorkers defaults to 1 anyway.
			b := gen.NextBatch(16)
			out := make([]float32, 16)
			for i := 0; i < 3; i++ { // warm the lazily-grown workspaces
				if err := srv.ScoreBatch(b.Dense, b.Indices, out); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := srv.ScoreBatch(b.Dense, b.Indices, out); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > tc.max {
				t.Fatalf("ScoreBatch allocates %.1f objects per call in steady state, want <= %v", allocs, tc.max)
			}
		})
	}
}
