package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/model"
)

// The BenchmarkServe_ScoreBatch* benchmarks are the perf-trend-gated
// serving hot path: single goroutine, ComputeWorkers 1, so ns/op,
// B/op, and allocs/op are machine-independent and CI diffs them against
// BENCH_baseline.json (same contract as BenchmarkStep_). The
// BenchmarkServeLoad_* closed-loop benchmarks report throughput and tail
// latency (qps, p50-ns, p99-ns, hit-rate) — scheduler-dependent numbers
// that inform but are deliberately outside the gate's diff pattern.

const benchServeBatch = 64

func benchServer(b *testing.B, opts Options) (*Server, *criteo.Generator) {
	b.Helper()
	spec := testSpec()
	m, err := model.New(testConfig(spec, 16))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewFromModel(m, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv, criteo.NewGenerator(spec)
}

func benchScoreBatch(b *testing.B, opts Options) {
	srv, gen := benchServer(b, opts)
	batch := gen.NextBatch(benchServeBatch)
	out := make([]float32, benchServeBatch)
	for i := 0; i < 3; i++ { // warm caches and lazily-grown workspaces
		if err := srv.ScoreBatch(batch.Dense, batch.Indices, out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(benchServeBatch) * int64(len(srv.cfg.TableSizes)) * int64(srv.cfg.EmbeddingDim) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.ScoreBatch(batch.Dense, batch.Indices, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServe_ScoreBatchHot(b *testing.B) {
	benchScoreBatch(b, Options{ColdCodec: "raw"})
}

func BenchmarkServe_ScoreBatchHotQuant(b *testing.B) {
	benchScoreBatch(b, Options{ColdCodec: "quant", QuantEB: 0.02})
}

// Every lookup misses and decodes its quant block — the cold-tier decode
// cost the hot cache exists to amortize.
func BenchmarkServe_ScoreBatchColdQuant(b *testing.B) {
	benchScoreBatch(b, Options{ColdCodec: "quant", QuantEB: 0.02, HotBytes: -1})
}

// benchZipfLoad is the closed-loop load benchmark: `clients` goroutines
// each keep one request in flight against the micro-batching Score path,
// cycling through a pre-generated Zipf-skewed request stream. One
// benchmark op is one request; per-request latencies feed the p50/p99
// metrics and wall-clock feeds qps.
func benchZipfLoad(b *testing.B, opts Options, clients int) {
	srv, gen := benchServer(b, opts)
	const nreq = 1024
	dense := make([][]float32, nreq)
	idx := make([][]int32, nreq)
	for i := range dense {
		r := gen.NextBatch(1)
		dense[i] = r.Dense.Row(0)
		cols := make([]int32, len(r.Indices))
		for t := range r.Indices {
			cols[t] = r.Indices[t][0]
		}
		idx[i] = cols
	}
	// Warm the cache and the pending pool.
	for i := 0; i < 256; i++ {
		if _, err := srv.Score(dense[i%nreq], idx[i%nreq]); err != nil {
			b.Fatal(err)
		}
	}
	warm := srv.Stats()

	lats := make([]int64, b.N)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				r := int(i) % nreq
				t0 := time.Now()
				if _, err := srv.Score(dense[r], idx[r]); err != nil {
					b.Error(err)
					return
				}
				lats[i] = int64(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		k := int(p * float64(len(lats)-1))
		return float64(lats[k])
	}
	st := srv.Stats()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
	lookups := (st.Hits + st.Misses) - (warm.Hits + warm.Misses)
	if lookups > 0 {
		b.ReportMetric(float64(st.Hits-warm.Hits)/float64(lookups), "hit-rate")
	}
	b.ReportMetric(float64(st.HotBytes+st.ColdBytes), "resident-B")
}

func benchLoadOpts(codec string, eb float32, clients int) Options {
	return Options{
		ColdCodec: codec, QuantEB: eb,
		MaxBatch: clients, Linger: 50 * time.Microsecond,
		Workers: 2, QueueDepth: 4 * clients,
	}
}

func BenchmarkServeLoad_Zipf(b *testing.B) {
	for _, clients := range []int{1, 8} {
		b.Run(fmt.Sprintf("raw_clients%d", clients), func(b *testing.B) {
			benchZipfLoad(b, benchLoadOpts("raw", 0, clients), clients)
		})
		b.Run(fmt.Sprintf("quant_clients%d", clients), func(b *testing.B) {
			benchZipfLoad(b, benchLoadOpts("quant", 0.02, clients), clients)
		})
	}
}
