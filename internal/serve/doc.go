// Package serve is the inference side of the train→serve artifact: sharded
// embedding-table servers loaded straight from a DLCK checkpoint
// (dist.SaveCheckpoint's output, decoded by dist.ReadCheckpoint), scoring
// requests through the same nn/interaction layers training uses.
//
// The layer turns the paper's communication codecs into a memory-capacity
// lever. Each shard (table t lives on shard t % Shards, the round-robin
// placement internal/dist uses for ranks) keeps its rows in a two-tier
// store: cold rows as per-block compressed frames (lossless codecs for
// bit-parity with the checkpoint; a lossy quantized mode behind
// Options.QuantEB with a build-time accuracy check), under a byte-budgeted
// exact-LRU hot cache of decoded rows. The Zipf-skewed access pattern the
// dataset generator models makes a small hot cache absorb most lookups, so
// the decode cost lands only on the cold tail.
//
// The request path — dense features → sharded gather → DotInteraction →
// top MLP → sigmoid — runs on preallocated per-scorer workspaces and the
// buffered codec paths, so steady-state scoring performs no heap
// allocation (pinned by an AllocsPerRun gate). Server.Score adds admission
// control: a bounded intake queue sheds with ErrOverloaded when full, and
// batcher workers coalesce concurrent requests into micro-batches that
// close on size or a short linger. Because the hot cache stores exactly
// the decoded rows, a cache hit and a cache miss reconstruct identical
// bits — caching never changes a score, for any cold codec.
package serve
