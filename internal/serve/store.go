package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/tensor"
)

// ColdCodecs lists the accepted Options.ColdCodec names. The lossless
// entries ("raw", "lzss", "deflate") reconstruct the checkpoint bits
// exactly, so serving scores match an uncompressed in-memory table
// bit-for-bit; "quant" trades that for capacity — rows are quantized
// through the hybrid codec within Options.QuantEB of the original.
func ColdCodecs() []string { return []string{"raw", "lzss", "deflate", "quant"} }

// DefaultColdCodec is the codec used when Options.ColdCodec is empty.
const DefaultColdCodec = "raw"

// coldCodec encodes/decodes one block of rows. A nil inner codec is the
// raw (uncompressed bytes) path; the others go through the codec stack's
// buffered helpers, so codecs implementing codec.BufferedCodec (hybrid)
// decode without allocating.
type coldCodec struct {
	name string
	c    codec.Codec
}

func coldCodecByName(name string, quantEB float32) (*coldCodec, error) {
	switch name {
	case "", DefaultColdCodec:
		return &coldCodec{name: "raw"}, nil
	case "lzss":
		return &coldCodec{name: name, c: lz4like.LZSSCodec{}}, nil
	case "deflate":
		return &coldCodec{name: name, c: lz4like.DeflateCodec{}}, nil
	case "quant":
		if quantEB <= 0 {
			return nil, fmt.Errorf("serve: cold codec \"quant\" needs QuantEB > 0, got %v", quantEB)
		}
		return &coldCodec{name: name, c: hybrid.New(quantEB, hybrid.Auto)}, nil
	}
	return nil, fmt.Errorf("serve: unknown cold codec %q (want one of %v)", name, ColdCodecs())
}

func (cc *coldCodec) lossless() bool { return cc.c == nil || !cc.c.Lossy() }

func (cc *coldCodec) encodeAppend(dst []byte, src []float32, dim int) ([]byte, error) {
	if cc.c == nil {
		for _, v := range src {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
		}
		return dst, nil
	}
	return codec.CompressAppend(cc.c, dst, src, dim)
}

func (cc *coldCodec) decodeInto(dst []float32, frame []byte) error {
	if cc.c == nil {
		if len(frame) != 4*len(dst) {
			return fmt.Errorf("serve: raw frame is %d bytes, want %d", len(frame), 4*len(dst))
		}
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(frame[i*4:]))
		}
		return nil
	}
	_, err := codec.DecompressInto(cc.c, dst, frame)
	return err
}

// tableStore is one table's cold tier: rows grouped into blocks of
// blockRows, each block one self-contained codec frame built at load time.
// slots is the hot-cache directory — slots[row] is the cache entry holding
// the decoded row, or -1 when the row is cold. A positional array instead
// of a hash map keeps the miss path allocation-free and O(1) exact.
type tableStore struct {
	id        int
	rows, dim int
	blockRows int
	frames    [][]byte
	slots     []int32
	coldBytes int64
}

func newTableStore(id int, weights []float32, rows, dim int, blockRows int, cc *coldCodec) (*tableStore, error) {
	ts := &tableStore{id: id, rows: rows, dim: dim, blockRows: blockRows}
	ts.slots = make([]int32, rows)
	for i := range ts.slots {
		ts.slots[i] = -1
	}
	for lo := 0; lo < rows; lo += blockRows {
		hi := min(lo+blockRows, rows)
		frame, err := cc.encodeAppend(nil, weights[lo*dim:hi*dim], dim)
		if err != nil {
			return nil, fmt.Errorf("serve: table %d block at row %d: %w", id, lo, err)
		}
		ts.frames = append(ts.frames, frame)
		ts.coldBytes += int64(len(frame))
	}
	return ts, nil
}

// rawBytes is the uncompressed footprint the cold tier replaces.
func (ts *tableStore) rawBytes() int64 { return int64(ts.rows) * int64(ts.dim) * 4 }

// blockOf returns the block index and the row's offset within it.
func (ts *tableStore) blockOf(row int) (blk, off int) {
	return row / ts.blockRows, row % ts.blockRows
}

// blockLen returns the row count of block blk (the last block is short
// when blockRows does not divide the table).
func (ts *tableStore) blockLen(blk int) int {
	return min(ts.blockRows, ts.rows-blk*ts.blockRows)
}

// shard owns the tables assigned to it (table t lives on shard
// t % Shards) plus one hot cache and one block-decode scratch buffer
// shared by those tables. All access runs under mu; the gather loop takes
// it once per (table, batch), not per row.
type shard struct {
	mu     sync.Mutex
	tables []*tableStore // indexed by global table id; nil = not ours
	cc     *coldCodec
	hot    hotCache
	block  []float32 // decode scratch, blockRows × dim
	hits   int64
	misses int64
}

// gatherInto fills dst (a [len(indices), dim] matrix) with the rows of
// table t named by indices, hot cache first, decoding cold blocks on miss.
func (sh *shard) gatherInto(dst *tensor.Matrix, t int, indices []int32) error {
	ts := sh.tables[t]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, idx := range indices {
		if idx < 0 || int(idx) >= ts.rows {
			return fmt.Errorf("serve: index %d out of range [0,%d) in table %d", idx, ts.rows, ts.id)
		}
		if err := sh.rowInto(dst.Row(i), ts, int(idx)); err != nil {
			return err
		}
	}
	return nil
}

// rowInto copies one row into dst. Callers hold sh.mu.
func (sh *shard) rowInto(dst []float32, ts *tableStore, row int) error {
	if slot := ts.slots[row]; slot >= 0 {
		sh.hits++
		copy(dst, sh.hot.row(slot))
		sh.hot.touch(slot)
		return nil
	}
	sh.misses++
	blk, off := ts.blockOf(row)
	buf := sh.block[:ts.blockLen(blk)*ts.dim]
	if err := sh.cc.decodeInto(buf, ts.frames[blk]); err != nil {
		return fmt.Errorf("serve: table %d block %d: %w", ts.id, blk, err)
	}
	copy(dst, buf[off*ts.dim:(off+1)*ts.dim])
	sh.admit(ts, row, dst)
	return nil
}

// admit inserts a freshly decoded row into the hot cache, evicting the
// exact-LRU entry when the byte budget is full. Callers hold sh.mu.
func (sh *shard) admit(ts *tableStore, row int, vals []float32) {
	h := &sh.hot
	if h.capEntries == 0 {
		return
	}
	var e int32
	if h.size < h.capEntries {
		e = int32(h.size)
		h.size++
	} else {
		e = h.tail
		// Unhook the victim from its owner's directory before reusing
		// the entry.
		sh.tables[h.keyTab[e]].slots[h.keyRow[e]] = -1
		h.unlink(e)
	}
	h.keyTab[e], h.keyRow[e] = int32(ts.id), int32(row)
	copy(h.row(e), vals)
	ts.slots[row] = e
	h.pushFront(e)
}

// hotCache is the decoded-row tier: a preallocated slab of capEntries
// rows threaded onto an intrusive doubly-linked LRU list. No maps, no
// per-entry allocations — the directory lives in each tableStore's slots
// array — so admissions and evictions are allocation-free.
type hotCache struct {
	dim        int
	capEntries int
	slab       []float32
	keyTab     []int32 // owning table id per entry
	keyRow     []int32 // row within the owning table per entry
	prev, next []int32
	head, tail int32
	size       int
}

func newHotCache(capEntries, dim int) hotCache {
	h := hotCache{dim: dim, capEntries: capEntries, head: -1, tail: -1}
	if capEntries > 0 {
		h.slab = make([]float32, capEntries*dim)
		h.keyTab = make([]int32, capEntries)
		h.keyRow = make([]int32, capEntries)
		h.prev = make([]int32, capEntries)
		h.next = make([]int32, capEntries)
	}
	return h
}

func (h *hotCache) row(e int32) []float32 {
	return h.slab[int(e)*h.dim : (int(e)+1)*h.dim]
}

func (h *hotCache) unlink(e int32) {
	p, n := h.prev[e], h.next[e]
	if p >= 0 {
		h.next[p] = n
	} else {
		h.head = n
	}
	if n >= 0 {
		h.prev[n] = p
	} else {
		h.tail = p
	}
}

func (h *hotCache) pushFront(e int32) {
	h.prev[e], h.next[e] = -1, h.head
	if h.head >= 0 {
		h.prev[h.head] = e
	}
	h.head = e
	if h.tail < 0 {
		h.tail = e
	}
}

func (h *hotCache) touch(e int32) {
	if h.head == e {
		return
	}
	h.unlink(e)
	h.pushFront(e)
}

// usedBytes is the resident footprint of the cached rows.
func (h *hotCache) usedBytes() int64 { return int64(h.size) * int64(h.dim) * 4 }
