// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                     # print the experiment table
//	experiments -list               # IDs only
//	experiments -design             # markdown index block for DESIGN.md
//	experiments -run fig11          # one experiment
//	experiments scaling             # positional form of -run
//	experiments -run all            # everything, in order
//	experiments -run fig12 -full    # paper-scale workloads (slower)
//
// The experiment table printed with no arguments and the index embedded in
// DESIGN.md both come from the same registry (internal/experiments), so
// they cannot drift; a test pins DESIGN.md to `experiments -design` output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlrmcomp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	design := flag.Bool("design", false, "print the DESIGN.md experiment-index markdown and exit")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	full := flag.Bool("full", false, "use paper-scale workloads instead of quick mode")
	flag.Parse()

	if *run == "" && flag.NArg() > 0 {
		// `experiments scaling [-full]` == `experiments -run scaling [-full]`:
		// flag.Parse stops at the first non-flag argument, so re-parse the
		// tail for flags that follow the positional id.
		*run = flag.Arg(0)
		flag.CommandLine.Parse(flag.Args()[1:]) // ExitOnError: exits on bad flags
	}
	// Mode flags are honored wherever they appear, including after a
	// positional id (`experiments scaling -list` lists, it doesn't run).
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *design {
		fmt.Print(experiments.IndexMarkdown())
		return
	}
	if *run == "" {
		printIndex()
		return
	}
	opts := experiments.Options{Quick: !*full}

	emit := func(res *experiments.Result) {
		fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Text)
	}
	if strings.EqualFold(*run, "all") {
		results, err := experiments.RunAll(opts)
		for _, res := range results {
			emit(res)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	res, err := experiments.Run(*run, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	emit(res)
}

// printIndex renders the registry as an aligned table, the no-argument
// default so the tool is self-describing.
func printIndex() {
	idx := experiments.Index()
	width := len("ID")
	for _, e := range idx {
		if len(e.ID) > width {
			width = len(e.ID)
		}
	}
	fmt.Printf("%-*s  %s\n", width, "ID", "Reproduces")
	for _, e := range idx {
		fmt.Printf("%-*s  %s\n", width, e.ID, e.Title)
	}
	fmt.Printf("\nrun one with: experiments <id> (add -full for paper-scale workloads), or -run all\n")
}
