// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                     # print the experiment table
//	experiments -list               # IDs only
//	experiments -design             # markdown index block for DESIGN.md
//	experiments -run fig11          # one experiment
//	experiments scaling             # positional form of -run
//	experiments -run all            # everything, in order
//	experiments -run fig12 -full    # paper-scale workloads (slower)
//	experiments -run fig12 -json    # structured {id,title,text} output
//	experiments -smoke              # tiny scenario sweep, one cell per
//	                                # topology×codec corner (CI gate)
//	experiments -smoke -json        # the sweep's scenario.Results as JSON
//
// The experiment table printed with no arguments and the index embedded in
// DESIGN.md both come from the same registry (internal/experiments), so
// they cannot drift; a test pins DESIGN.md to `experiments -design` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dlrmcomp/internal/experiments"
	"dlrmcomp/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	design := flag.Bool("design", false, "print the DESIGN.md experiment-index markdown and exit")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	full := flag.Bool("full", false, "use paper-scale workloads instead of quick mode")
	smoke := flag.Bool("smoke", false, "run the scenario smoke sweep (one tiny Spec per topology×codec corner) and exit")
	jsonOut := flag.Bool("json", false, "emit structured JSON instead of text (experiment results or, with -smoke, scenario.Results)")
	workers := flag.Int("workers", 0, "intra-rank worker width for swept scenarios that don't pin their own (sets DLRMCOMP_WORKERS; 0 = leave the environment alone; results are bit-identical at any width)")
	flag.Parse()

	if *run == "" && flag.NArg() > 0 {
		// `experiments scaling [-full]` == `experiments -run scaling [-full]`:
		// flag.Parse stops at the first non-flag argument, so re-parse the
		// tail for flags that follow the positional id.
		*run = flag.Arg(0)
		flag.CommandLine.Parse(flag.Args()[1:]) // ExitOnError: exits on bad flags
	}
	if *workers > 0 {
		// Every sweep below — the smoke grid here and the sweeps inside the
		// experiment registry — reads DLRMCOMP_WORKERS through
		// scenario.Sweep, so the environment is the one knob that reaches
		// them all.
		os.Setenv("DLRMCOMP_WORKERS", strconv.Itoa(*workers))
	}
	// Mode flags are honored wherever they appear, including after a
	// positional id (`experiments scaling -list` lists, it doesn't run).
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *design {
		fmt.Print(experiments.IndexMarkdown())
		return
	}
	if *smoke {
		if *run != "" || *full {
			// The smoke sweep is its own mode; silently dropping a
			// requested experiment would let a CI script look green while
			// the experiment never ran.
			fmt.Fprintln(os.Stderr, "error: -smoke cannot be combined with -run/-full or a positional experiment id")
			os.Exit(2)
		}
		runSmoke(*jsonOut)
		return
	}
	if *run == "" {
		printIndex()
		return
	}
	opts := experiments.Options{Quick: !*full}

	var collected []*experiments.Result
	emit := func(res *experiments.Result) {
		if *jsonOut {
			collected = append(collected, res)
			return
		}
		fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Text)
	}
	flush := func() {
		if *jsonOut {
			emitJSON(collected)
		}
	}
	if strings.EqualFold(*run, "all") {
		results, err := experiments.RunAll(opts)
		for _, res := range results {
			emit(res)
		}
		flush()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	res, err := experiments.Run(*run, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	emit(res)
	flush()
}

// smokeSpecs is the CI smoke grid: a tiny two-node workload crossed over
// every topology×codec corner, so a wiring regression in any corner of the
// scenario engine (flat/hier × uncompressed/hybrid, plus the overlap
// schedule) fails the quick gate in seconds.
func smokeSpecs() []scenario.Spec {
	base := scenario.Spec{
		Name: "smoke", Dataset: "kaggle", Scale: 8000, Dim: 8,
		Ranks: 8, Batch: 64, Steps: 2, Eval: 128,
		BottomMLP: []int{16, 8}, TopMLP: []int{16, 8},
		ErrorBound: 0.02,
	}
	specs := scenario.Axes{
		Base:       base,
		Topologies: []string{"flat", "hier"},
		Codecs:     []string{"none", "hybrid"},
		Overlaps:   []bool{false, true},
	}.Expand()
	for i := range specs {
		specs[i].Name = fmt.Sprintf("smoke-%s-%s-overlap=%v", specs[i].Topology, specs[i].Codec, specs[i].Overlap)
	}
	return specs
}

// runSmoke executes the smoke grid and prints one verdict line per cell
// (or the full scenario.Results as JSON).
func runSmoke(jsonOut bool) {
	specs := smokeSpecs()
	results, err := scenario.Sweep(specs, scenario.SweepOptions{})
	if jsonOut {
		emitJSON(results)
	} else {
		for _, res := range results {
			if res == nil {
				continue
			}
			total := res.SimTime.Total()
			if res.Spec.Overlap {
				total = res.OverlappedSimTime
			}
			fmt.Printf("%-32s loss %.4f  acc %.3f  CR %5.1fx  sim %9v  wall %v\n",
				res.Spec.Name, res.Losses[len(res.Losses)-1], res.Accuracy,
				res.CompressionRatio, total.Round(time.Microsecond), res.WallClock.Round(time.Millisecond))
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Printf("smoke sweep: %d scenarios OK\n", len(results))
	}
}

// emitJSON writes any result set as indented JSON on stdout (the
// bench-artifact flow ingests this).
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// printIndex renders the registry as an aligned table, the no-argument
// default so the tool is self-describing.
func printIndex() {
	idx := experiments.Index()
	width := len("ID")
	for _, e := range idx {
		if len(e.ID) > width {
			width = len(e.ID)
		}
	}
	fmt.Printf("%-*s  %s\n", width, "ID", "Reproduces")
	for _, e := range idx {
		fmt.Printf("%-*s  %s\n", width, e.ID, e.Title)
	}
	fmt.Printf("\nrun one with: experiments <id> (add -full for paper-scale workloads), or -run all\n")
}
