// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11          # one experiment
//	experiments scaling             # positional form of -run
//	experiments -run all            # everything, in order
//	experiments -run fig12 -full    # paper-scale workloads (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlrmcomp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	full := flag.Bool("full", false, "use paper-scale workloads instead of quick mode")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" && flag.NArg() > 0 {
		// `experiments scaling [-full]` == `experiments -run scaling [-full]`:
		// flag.Parse stops at the first non-flag argument, so re-parse the
		// tail for flags that follow the positional id.
		*run = flag.Arg(0)
		flag.CommandLine.Parse(flag.Args()[1:]) // ExitOnError: exits on bad flags
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments [-run] <id>|all [-full] | -list")
		os.Exit(2)
	}
	opts := experiments.Options{Quick: !*full}

	emit := func(res *experiments.Result) {
		fmt.Printf("=== %s — %s ===\n%s\n", res.ID, res.Title, res.Text)
	}
	if strings.EqualFold(*run, "all") {
		results, err := experiments.RunAll(opts)
		for _, res := range results {
			emit(res)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	res, err := experiments.Run(*run, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	emit(res)
}
