// Command dlrmtrain runs end-to-end hybrid-parallel DLRM training on the
// simulated cluster, with or without communication compression, and prints
// the loss curve, evaluation metrics, compression ratio, and the simulated
// time breakdown (Fig. 1 / Fig. 12 style).
//
// The flags assemble a scenario.Spec; -scenario loads the same Spec from a
// JSON file instead (see examples/scenarios/), so a committed file and a
// flag invocation describing the same workload produce bit-identical runs.
//
// Usage:
//
//	dlrmtrain -dataset kaggle -ranks 8 -steps 200 -codec hybrid -eb 0.02
//	dlrmtrain -dataset terabyte -ranks 32 -codec none          # baseline
//	dlrmtrain -codec hybrid -adaptive                          # dual-level adaptive
//	dlrmtrain -topology hier -nodes 8 -ranks-per-node 4        # paper testbed shape
//	dlrmtrain -topology hier -nodes 8 -overlap                 # comm/compute overlap
//	dlrmtrain -scenario examples/scenarios/hier8_hybrid.json   # declarative form
//	dlrmtrain -steps 100 -save model.ckpt                      # export for dlrmserve
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/scenario"
)

func main() {
	scenarioFile := flag.String("scenario", "", "JSON scenario.Spec file; replaces the workload flags below")
	dataset := flag.String("dataset", "kaggle", "kaggle or terabyte")
	ranks := flag.Int("ranks", 8, "simulated GPU count")
	topology := flag.String("topology", "flat", "interconnect model: flat (single α-β link) or hier (two-level, two-phase all-to-all)")
	nodes := flag.Int("nodes", 0, "node count; with -topology hier the rank count is nodes*ranks-per-node (inconsistent -ranks is an error)")
	ranksPerNode := flag.Int("ranks-per-node", 4, "GPUs per node for -topology hier and -nodes")
	a2a := flag.String("a2a", "auto", "all-to-all algorithm: auto, direct, or twophase")
	steps := flag.Int("steps", 200, "training steps")
	batch := flag.Int("batch", 0, "global batch size (0 = dataset default)")
	scale := flag.Int("scale", 400, "cardinality scale-down factor")
	dim := flag.Int("dim", 16, "embedding dimension")
	codecName := flag.String("codec", "hybrid", "none|hybrid|vector|huffman|fp16|fp8|cusz|fzgpu|lz4|deflate")
	overlap := flag.Bool("overlap", false, "pipeline the forward all-to-all of batch k+1 behind the MLP compute of batch k (same math, overlapped clock)")
	eb := flag.Float64("eb", 0.02, "error bound for lossy codecs")
	adaptive := flag.Bool("adaptive", false, "enable dual-level adaptive error bounds")
	phase := flag.Int("phase", 0, "decay phase length (0 = steps/2)")
	evalN := flag.Int("eval", 4000, "evaluation sample count")
	codecWorkers := flag.Int("codec-workers", 0, "intra-rank codec worker pool (0 = auto, negative = sequential)")
	computeWorkers := flag.Int("compute-workers", 0, "intra-rank compute width: goroutines per rank for lookups, MLP matmuls, and the optimizer (0 = auto, 1 = single-threaded; bit-identical at any width)")
	savePath := flag.String("save", "", "write the trained model as a DLCK checkpoint to this file (servable with dlrmserve)")
	flag.Parse()

	// Which flags did the user actually pass? Used both to reject workload
	// flags alongside -scenario (the file is the whole spec; dropping a
	// flag silently is the failure mode this layer removes) and to tell an
	// explicit -ranks apart from its default.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var spec scenario.Spec
	if *scenarioFile != "" {
		var conflicts []string
		for name := range set {
			// -save names an output artifact, not a workload knob, so it
			// composes with -scenario.
			if name != "scenario" && name != "save" {
				conflicts = append(conflicts, "-"+name)
			}
		}
		if len(conflicts) > 0 {
			sort.Strings(conflicts)
			fmt.Fprintf(os.Stderr, "invalid scenario:\n  -scenario replaces the workload flags; drop %s or fold them into %s\n",
				strings.Join(conflicts, ", "), *scenarioFile)
			os.Exit(2)
		}
		var err error
		spec, err = scenario.LoadFile(*scenarioFile)
		if err != nil {
			fatal(err)
		}
	} else {
		spec = scenario.Spec{
			Dataset:        *dataset,
			Scale:          *scale,
			Dim:            *dim,
			Batch:          *batch,
			Steps:          *steps,
			Eval:           *evalN,
			Topology:       *topology,
			A2A:            *a2a,
			Codec:          *codecName,
			ErrorBound:     *eb,
			Overlap:        *overlap,
			CodecWorkers:   *codecWorkers,
			ComputeWorkers: *computeWorkers,
			RanksPerNode:   *ranksPerNode,
			Nodes:          *nodes,
		}
		if *adaptive {
			spec.Adaptive = true
			spec.DecayPhase = *phase
		}
		// Only pin the rank count when the user asked for one (or gave no
		// node count at all): Spec.Validate rejects an inconsistent
		// -ranks/-nodes/-ranks-per-node combination instead of silently
		// letting one flag override another.
		if set["ranks"] || *nodes == 0 {
			spec.Ranks = *ranks
		}
	}

	built, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid scenario:\n  %s\n", strings.ReplaceAll(err.Error(), "\n", "\n  "))
		os.Exit(2)
	}
	sp := built.Spec
	if built.Offline != nil {
		// The offline phase classified tables from a sampled batch.
		l, m, s := built.Offline.ClassCounts()
		fmt.Printf("offline classification: L=%d M=%d S=%d, %s %gx decay over %d steps\n",
			l, m, s, sp.Schedule, sp.DecayFactor, sp.DecayPhase)
	}
	fmt.Printf("topology %s: %d ranks across %d node(s)\n", built.Net.Name(), sp.Ranks, built.Net.Nodes(sp.Ranks))
	if fp := sp.Faults; fp != nil {
		fmt.Printf("fault plan: jitter %g, %d slow rank(s), %d drop/rejoin event(s)\n",
			fp.Jitter, len(fp.Slow), len(fp.Events))
	}

	res, err := built.Run()
	if err != nil {
		fatal(err)
	}
	for i, loss := range res.Losses {
		if i%10 == 0 || i == len(res.Losses)-1 {
			fmt.Printf("step %4d  loss %.4f\n", i, loss)
		}
	}
	for _, r := range res.Reshards {
		fmt.Printf("reshard before step %d: %d -> %d ranks, %d table(s) moved (%d bytes)\n",
			r.Step, r.FromRanks, r.ToRanks, r.MovedTables, r.MovedBytes)
	}
	if ck := res.Checkpoints; ck != nil {
		fmt.Printf("checkpoints: %d saved, %d -> %d bytes (%.2fx)\n",
			ck.Count, ck.RawBytes, ck.WireBytes, ck.Ratio)
	}
	if sp.Eval > 0 {
		fmt.Printf("\neval: accuracy %.4f  logloss %.4f\n", res.Accuracy, res.LogLoss)
	}
	if sp.Codec != "none" {
		fmt.Printf("forward all-to-all compression ratio: %.2fx\n", res.CompressionRatio)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		stats, err := built.Trainer.SaveCheckpoint(f, dist.CheckpointOptions{})
		if err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved checkpoint %s: %d -> %d bytes (%.2fx, codec %s)\n",
			*savePath, stats.RawBytes, stats.WireBytes, stats.Ratio(), dist.DefaultCheckpointCodec)
	}
	fmt.Printf("\nsimulated time breakdown:\n%s", res.SimTime.String())
	if sp.Overlap {
		serial, over := res.SerialSimTime, res.OverlappedSimTime
		fmt.Printf("\ncomm/compute overlap: synchronous %v -> overlapped %v (%.2fx, %.1f%% of e2e recovered)\n",
			serial.Round(time.Microsecond), over.Round(time.Microsecond),
			float64(serial)/float64(over), 100*float64(serial-over)/float64(serial))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
