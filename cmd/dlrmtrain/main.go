// Command dlrmtrain runs end-to-end hybrid-parallel DLRM training on the
// simulated cluster, with or without communication compression, and prints
// the loss curve, evaluation metrics, compression ratio, and the simulated
// time breakdown (Fig. 1 / Fig. 12 style).
//
// Usage:
//
//	dlrmtrain -dataset kaggle -ranks 8 -steps 200 -codec hybrid -eb 0.02
//	dlrmtrain -dataset terabyte -ranks 32 -codec none          # baseline
//	dlrmtrain -codec hybrid -adaptive                          # dual-level adaptive
//	dlrmtrain -topology hier -nodes 8 -ranks-per-node 4        # paper testbed shape
//	dlrmtrain -topology hier -nodes 8 -overlap                 # comm/compute overlap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/codec"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/cuszlike"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/fzgpulike"
	"dlrmcomp/internal/hybrid"
	"dlrmcomp/internal/lowprec"
	"dlrmcomp/internal/lz4like"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

func main() {
	dataset := flag.String("dataset", "kaggle", "kaggle or terabyte")
	ranks := flag.Int("ranks", 8, "simulated GPU count")
	topology := flag.String("topology", "flat", "interconnect model: flat (single α-β link) or hier (two-level, two-phase all-to-all)")
	nodes := flag.Int("nodes", 0, "node count; when > 0, overrides -ranks with nodes*ranks-per-node")
	ranksPerNode := flag.Int("ranks-per-node", 4, "GPUs per node for -topology hier and -nodes")
	steps := flag.Int("steps", 200, "training steps")
	batch := flag.Int("batch", 0, "global batch size (0 = dataset default)")
	scale := flag.Int("scale", 400, "cardinality scale-down factor")
	dim := flag.Int("dim", 16, "embedding dimension")
	codecName := flag.String("codec", "hybrid", "none|hybrid|vector|huffman|fp16|fp8|cusz|fzgpu|lz4|deflate")
	overlap := flag.Bool("overlap", false, "pipeline the forward all-to-all of batch k+1 behind the MLP compute of batch k (same math, overlapped clock)")
	eb := flag.Float64("eb", 0.02, "error bound for lossy codecs")
	adaptive := flag.Bool("adaptive", false, "enable dual-level adaptive error bounds")
	phase := flag.Int("phase", 0, "decay phase length (0 = steps/2)")
	evalN := flag.Int("eval", 4000, "evaluation sample count")
	flag.Parse()

	var spec criteo.Spec
	switch *dataset {
	case "kaggle":
		spec = criteo.KaggleSpec()
	case "terabyte":
		spec = criteo.TerabyteSpec()
	default:
		fmt.Fprintln(os.Stderr, "unknown dataset:", *dataset)
		os.Exit(2)
	}
	if *ranksPerNode <= 0 {
		fmt.Fprintln(os.Stderr, "-ranks-per-node must be positive")
		os.Exit(2)
	}
	if *nodes > 0 {
		*ranks = *nodes * *ranksPerNode
	}
	var net netmodel.Topology
	switch *topology {
	case "flat":
		net = netmodel.Slingshot10()
	case "hier", "hierarchical":
		net = netmodel.PaperHierarchical(*ranksPerNode)
	default:
		fmt.Fprintln(os.Stderr, "unknown topology:", *topology)
		os.Exit(2)
	}

	spec = criteo.ScaledSpec(spec, *scale)
	if *batch == 0 {
		*batch = spec.DefaultBatch
	}
	if *batch%*ranks != 0 {
		*batch = (*batch / *ranks) * *ranks
	}

	cfg := model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      *dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{64, 32},
		TopMLP:            []int{64, 32},
		Seed:              spec.Seed,
	}

	makeCodec := codecFactory(*codecName, float32(*eb))
	opts := dist.Options{Ranks: *ranks, Model: cfg, Net: net}
	if makeCodec != nil {
		opts.CodecFor = func(int) codec.Codec { return makeCodec() }
	}

	gen := criteo.NewGenerator(spec)
	if *adaptive && makeCodec != nil {
		// Offline phase: classify tables from a sampled batch.
		m, err := model.New(cfg)
		if err != nil {
			fatal(err)
		}
		b := gen.NextBatch(spec.DefaultBatch)
		samples := make([][]float32, len(m.Emb.Tables))
		for t, tab := range m.Emb.Tables {
			samples[t] = tab.Lookup(b.Indices[t]).Data
		}
		res, err := adapt.OfflineAnalysis(samples, *dim, adapt.OfflineOptions{SampleEB: float32(*eb)})
		if err != nil {
			fatal(err)
		}
		if *phase == 0 {
			*phase = *steps / 2
		}
		ctrl, err := adapt.NewController(res.Classes, adapt.PaperEBConfig(), adapt.ScheduleStepwise, *phase, 2)
		if err != nil {
			fatal(err)
		}
		opts.Controller = ctrl
		l, md, s := res.ClassCounts()
		fmt.Printf("offline classification: L=%d M=%d S=%d, stepwise 2x decay over %d steps\n", l, md, s, *phase)
	}

	tr, err := dist.NewTrainer(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("topology %s: %d ranks across %d node(s)\n", net.Name(), *ranks, net.Nodes(*ranks))
	emitLoss := func(i int, loss float32) {
		if i%10 == 0 || i == *steps-1 {
			fmt.Printf("step %4d  loss %.4f\n", i, loss)
		}
	}
	if *overlap {
		losses, err := tr.RunPipelined(*steps, func(int) *criteo.Batch { return gen.NextBatch(*batch) })
		if err != nil {
			fatal(err)
		}
		for i, loss := range losses {
			emitLoss(i, loss)
		}
	} else {
		for i := 0; i < *steps; i++ {
			loss, err := tr.Step(gen.NextBatch(*batch))
			if err != nil {
				fatal(err)
			}
			emitLoss(i, loss)
		}
	}
	acc, logloss := tr.Evaluate(gen.NextBatch(*evalN))
	fmt.Printf("\neval: accuracy %.4f  logloss %.4f\n", acc, logloss)
	if makeCodec != nil {
		fmt.Printf("forward all-to-all compression ratio: %.2fx\n", tr.CompressionRatio())
	}
	fmt.Printf("\nsimulated time breakdown:\n%s", profileutil.Breakdown(tr.Cluster().SimTimes()).String())
	if *overlap {
		serial, over := tr.SerialSimTime(), tr.OverlappedSimTime()
		fmt.Printf("\ncomm/compute overlap: synchronous %v -> overlapped %v (%.2fx, %.1f%% of e2e recovered)\n",
			serial.Round(time.Microsecond), over.Round(time.Microsecond),
			float64(serial)/float64(over), 100*float64(serial-over)/float64(serial))
	}
}

func codecFactory(name string, eb float32) func() codec.Codec {
	switch name {
	case "none":
		return nil
	case "hybrid":
		return func() codec.Codec { return hybrid.New(eb, hybrid.Auto) }
	case "vector":
		return func() codec.Codec { return hybrid.New(eb, hybrid.VectorLZ) }
	case "huffman":
		return func() codec.Codec { return hybrid.New(eb, hybrid.Entropy) }
	case "fp16":
		return func() codec.Codec { return lowprec.FP16Codec{} }
	case "fp8":
		return func() codec.Codec { return lowprec.FP8Codec{Format: lowprec.E4M3} }
	case "cusz":
		return func() codec.Codec { return cuszlike.New(eb, cuszlike.Lorenzo1D) }
	case "fzgpu":
		return func() codec.Codec { return fzgpulike.New(eb) }
	case "lz4":
		return func() codec.Codec { return lz4like.LZSSCodec{} }
	case "deflate":
		return func() codec.Codec { return lz4like.DeflateCodec{} }
	default:
		fmt.Fprintln(os.Stderr, "unknown codec:", name)
		os.Exit(2)
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
