// Command benchjson converts `go test -bench` text output into the JSON
// report CI archives as a workflow artifact, and diffs two such reports as
// the perf-trend gate:
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' ./... | benchjson -o BENCH_ci.json
//	benchjson -diff BENCH_baseline.json BENCH_ci.json -threshold-ns 400 -threshold-allocs 0
//
// Convert mode reads stdin and writes stdout unless -o is given. Run the
// benchmarks with -benchmem: the parsed B/op and allocs/op columns land in
// the JSON alongside ns/op, so the archived trajectory tracks allocation
// regressions as well as time. -summary additionally prints a fixed-width
// name/ns/B/allocs table to stderr for skimming the CI log. Parsing is
// strict for benchmark lines (a garbled line fails the conversion rather
// than silently dropping a metric), lenient for everything else.
//
// Diff mode compares every benchmark present in both reports over ns/op,
// allocs/op, and B/op, prints the comparison table, and exits nonzero when
// any metric grew beyond its -threshold-* tolerance (percent growth; a
// negative tolerance disables that metric). This is what lets CI fail a PR
// that regresses the step hot path against the committed baseline.
// Baseline benchmarks missing from the new report are listed as MISSING
// rows — a renamed benchmark or a drifted run pattern is visible, not a
// silent pass — and -require-all turns any missing entry into a failure,
// which is how the CI gate proves it still runs everything it claims to.
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmcomp/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	summary := flag.Bool("summary", false, "also print a ns/B/allocs table to stderr")
	diff := flag.Bool("diff", false, "diff mode: compare two JSON reports (old new) instead of converting")
	thNs := flag.Float64("threshold-ns", benchfmt.DefaultThresholds.NsPct,
		"diff: tolerated ns/op growth in percent (negative disables)")
	thAllocs := flag.Float64("threshold-allocs", benchfmt.DefaultThresholds.AllocsPct,
		"diff: tolerated allocs/op growth in percent (negative disables)")
	thBytes := flag.Float64("threshold-bytes", benchfmt.DefaultThresholds.BytesPct,
		"diff: tolerated B/op growth in percent (negative disables)")
	requireAll := flag.Bool("require-all", false,
		"diff: fail when any baseline benchmark is missing from the new report")
	flag.Parse()

	if *diff {
		os.Exit(runDiff(flag.Args(), benchfmt.Thresholds{
			NsPct:     *thNs,
			AllocsPct: *thAllocs,
			BytesPct:  *thBytes,
		}, *requireAll))
	}

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *summary {
		if err := rep.WriteSummary(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(rep.Results))
}

func runDiff(paths []string, th benchfmt.Thresholds, requireAll bool) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: old.json new.json")
		return 2
	}
	reports := make([]*benchfmt.Report, 2)
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 2
		}
		reports[i], err = benchfmt.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return 2
		}
	}
	deltas := benchfmt.Diff(reports[0], reports[1], th)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks in common between", paths[0], "and", paths[1])
		return 2
	}
	if err := benchfmt.WriteDeltas(os.Stdout, deltas); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	code := 0
	if regs := benchfmt.Regressions(deltas); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond tolerance\n", len(regs))
		code = 1
	}
	if missing := benchfmt.MissingDeltas(deltas); len(missing) > 0 {
		verdict := "(informational; -require-all makes this fatal)"
		if requireAll {
			verdict = "(-require-all)"
			code = 1
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d baseline benchmark(s) missing from the new report %s\n", len(missing), verdict)
	}
	if code == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d metrics within tolerance\n", len(deltas))
	}
	return code
}
