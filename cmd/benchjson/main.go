// Command benchjson converts `go test -bench` text output into the JSON
// report CI archives as a workflow artifact:
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' ./... | benchjson -o BENCH_ci.json
//
// Run the benchmarks with -benchmem: the parsed B/op and allocs/op columns
// land in the JSON alongside ns/op, so the archived trajectory tracks
// allocation regressions as well as time. -summary additionally prints a
// fixed-width name/ns/B/allocs table to stderr for skimming the CI log.
//
// Reads stdin, writes stdout unless -o is given. Parsing is strict for
// benchmark lines (a garbled line fails the conversion rather than silently
// dropping a metric), lenient for everything else.
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmcomp/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	summary := flag.Bool("summary", false, "also print a ns/B/allocs table to stderr")
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *summary {
		if err := rep.WriteSummary(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(rep.Results))
}
