// Command dlrmserve loads a DLCK checkpoint (cmd/dlrmtrain -save) into the
// sharded serving layer and drives it with a closed-loop Zipf-skewed load,
// reporting throughput, latency percentiles, hot-cache hit rate, and the
// resident-memory split between the decoded hot tier and the compressed
// cold tier.
//
// The scenario file must be the one the checkpoint was trained under — the
// checkpoint carries shapes and weights, the scenario carries the model
// architecture and the serve block (shards, cold codec, cache budget,
// micro-batching knobs).
//
// Usage:
//
//	dlrmtrain -scenario examples/scenarios/serve_smoke.json -save model.ckpt
//	dlrmserve -scenario examples/scenarios/serve_smoke.json -checkpoint model.ckpt
//	dlrmserve -scenario ... -checkpoint ... -requests 100000 -clients 16
//
// CI smoke flags: -min-hit-rate fails the run when the steady-state hit
// rate lands below the floor, and -parity re-scores every request through
// an uncached raw server and fails on any score mismatch (bit-exact for
// lossless cold codecs; within the quantization bound for "quant").
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/scenario"
	"dlrmcomp/internal/serve"
)

func main() {
	scenarioFile := flag.String("scenario", "", "JSON scenario.Spec file the checkpoint was trained under (required)")
	ckptPath := flag.String("checkpoint", "", "DLCK checkpoint file written by dlrmtrain -save (required)")
	requests := flag.Int("requests", 0, "total requests to issue (0 = the scenario's serve.requests, else 20000)")
	clients := flag.Int("clients", 0, "closed-loop client goroutines (0 = the scenario's serve.clients, else 8)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail when the steady-state hot-cache hit rate is below this floor (0 = report only)")
	parity := flag.Bool("parity", false, "re-score every request through an uncached raw server and fail on any mismatch")
	flag.Parse()
	if *scenarioFile == "" || *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dlrmserve -scenario <spec.json> -checkpoint <model.ckpt> [flags]")
		os.Exit(2)
	}

	spec, err := scenario.LoadFile(*scenarioFile)
	if err != nil {
		fatal(err)
	}
	rs, err := spec.Resolved()
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid scenario:\n  %v\n", err)
		os.Exit(2)
	}
	if *requests == 0 {
		if rs.Serve != nil && rs.Serve.Requests > 0 {
			*requests = rs.Serve.Requests
		} else {
			*requests = 20000
		}
	}
	if *clients == 0 {
		if rs.Serve != nil && rs.Serve.Clients > 0 {
			*clients = rs.Serve.Clients
		} else {
			*clients = 8
		}
	}

	srv := load(rs, *ckptPath, rs.ServeOptions())
	defer srv.Close()
	opts := rs.ServeOptions()
	fmt.Printf("serving %s: %d shard(s), cold codec %s, %d requests from %d client(s)\n",
		rs.Name, max(opts.Shards, 1), coldCodecName(rs), *requests, *clients)

	// The request stream replays the dataset generator's Zipf-skewed
	// traffic — the same skew training saw, which is what makes the hot
	// cache earn its budget.
	reqs := genRequests(rs, *requests)

	// Warm: one pass over a slice of the stream fills caches and pools
	// before the measured window.
	warmN := min(len(reqs), 2048)
	for _, r := range reqs[:warmN] {
		if _, err := srv.Score(r.dense, r.idx); err != nil {
			fatal(err)
		}
	}
	warm := srv.Stats()

	lats := make([]int64, len(reqs))
	var next atomic.Int64
	var shed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(reqs)) {
					return
				}
				r := reqs[i]
				t0 := time.Now()
				score, err := srv.Score(r.dense, r.idx)
				switch err {
				case nil:
					reqs[i].score, reqs[i].scored = score, true
					lats[i] = int64(time.Since(t0))
				case serve.ErrOverloaded:
					shed.Add(1)
					lats[i] = -1
				default:
					fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	served := int64(len(reqs)) - shed.Load()
	ok := make([]int64, 0, served)
	for _, l := range lats {
		if l >= 0 {
			ok = append(ok, l)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(p float64) time.Duration {
		if len(ok) == 0 {
			return 0
		}
		return time.Duration(ok[int(p*float64(len(ok)-1))])
	}
	hits := st.Hits - warm.Hits
	misses := st.Misses - warm.Misses
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	fmt.Printf("\nserved %d requests in %v (%d shed)\n", served, elapsed.Round(time.Millisecond), shed.Load())
	fmt.Printf("qps        %.0f\n", float64(served)/elapsed.Seconds())
	fmt.Printf("latency    p50 %v  p99 %v\n", pct(0.50), pct(0.99))
	fmt.Printf("hit rate   %.4f (steady state; %d hits / %d misses)\n", hitRate, hits, misses)
	fmt.Printf("memory     hot %d B + cold %d B = %d B resident vs %d B uncompressed (cold tier %.2fx)\n",
		st.HotBytes, st.ColdBytes, st.HotBytes+st.ColdBytes, st.RawBytes, st.ColdRatio())

	if *minHitRate > 0 && hitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "FAIL: steady-state hit rate %.4f below the -min-hit-rate floor %.4f\n", hitRate, *minHitRate)
		os.Exit(1)
	}
	if *parity {
		checkParity(rs, *ckptPath, reqs)
	}
}

type request struct {
	dense  []float32
	idx    []int32
	score  float32
	scored bool
}

// genRequests replays n single-sample batches from the scenario's dataset
// generator.
func genRequests(rs scenario.Spec, n int) []request {
	data := rs.Data()
	gen := criteo.NewGenerator(data)
	reqs := make([]request, n)
	for i := range reqs {
		b := gen.NextBatch(1)
		idx := make([]int32, len(b.Indices))
		for t := range b.Indices {
			idx[t] = b.Indices[t][0]
		}
		reqs[i] = request{dense: b.Dense.Row(0), idx: idx}
	}
	return reqs
}

// load builds a server from the checkpoint file with the given options.
func load(rs scenario.Spec, path string, opts serve.Options) *serve.Server {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	srv, err := serve.New(rs.ModelConfig(), f, opts)
	if err != nil {
		fatal(err)
	}
	return srv
}

// checkParity re-scores every request synchronously through an uncached raw
// server — the reference path — and compares. Lossless cold codecs must
// match bit-for-bit; "quant" gets a small tolerance on the sigmoid output.
func checkParity(rs scenario.Spec, path string, reqs []request) {
	ref := load(rs, path, serve.Options{ColdCodec: "raw", HotBytes: -1})
	defer ref.Close()
	lossless := coldCodecName(rs) != "quant"
	var maxDelta float64
	checked := 0
	for i := range reqs {
		if !reqs[i].scored { // shed by admission control
			continue
		}
		checked++
		want, err := ref.Score(reqs[i].dense, reqs[i].idx)
		if err != nil {
			fatal(err)
		}
		got := reqs[i].score
		if lossless {
			if math.Float32bits(got) != math.Float32bits(want) {
				fmt.Fprintf(os.Stderr, "FAIL: request %d scored %v, the uncompressed reference %v — lossless serving must be bit-identical\n", i, got, want)
				os.Exit(1)
			}
		} else if d := math.Abs(float64(got - want)); d > maxDelta {
			maxDelta = d
		}
	}
	if lossless {
		fmt.Printf("parity     PASS: all %d scores bit-identical to the uncompressed reference\n", checked)
	} else {
		const tol = 0.05
		if maxDelta > tol {
			fmt.Fprintf(os.Stderr, "FAIL: quant scores drifted %.4f from the uncompressed reference (tolerance %.2f)\n", maxDelta, tol)
			os.Exit(1)
		}
		fmt.Printf("parity     PASS: quant scores within %.4f of the uncompressed reference (tolerance %.2f)\n", maxDelta, tol)
	}
}

func coldCodecName(rs scenario.Spec) string {
	if rs.Serve != nil && rs.Serve.Codec != "" {
		return rs.Serve.Codec
	}
	return serve.DefaultColdCodec
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
