// Command offline runs the paper's offline analysis phase (§III-A) on a
// synthetic dataset: it samples lookup batches per embedding table, computes
// the Homogenization Index, classifies every table into L/M/S error-bound
// classes (Algorithm 1), and selects the best encoder per table by the
// Eq. (2) speed-up model (Algorithm 2).
//
// Usage:
//
//	offline -dataset kaggle -batch 128 -eb 0.01 -scale 400
package main

import (
	"flag"
	"fmt"
	"os"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/criteo"
	"dlrmcomp/internal/model"
	"dlrmcomp/internal/nn"
)

func main() {
	dataset := flag.String("dataset", "kaggle", "kaggle or terabyte")
	batch := flag.Int("batch", 0, "sample batch size (0 = dataset default)")
	eb := flag.Float64("eb", 0, "probe error bound (0 = paper default for the dataset)")
	scale := flag.Int("scale", 400, "cardinality scale-down factor")
	dim := flag.Int("dim", 16, "embedding dimension")
	warm := flag.Int("warm", 200, "warm-up training steps before sampling")
	bandwidth := flag.Float64("bw", 4e9, "network bandwidth for Eq. 2 selection (bytes/s)")
	flag.Parse()

	var spec criteo.Spec
	switch *dataset {
	case "kaggle":
		spec = criteo.KaggleSpec()
		if *eb == 0 {
			*eb = 0.01
		}
	case "terabyte":
		spec = criteo.TerabyteSpec()
		if *eb == 0 {
			*eb = 0.005
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown dataset:", *dataset)
		os.Exit(2)
	}
	if *batch == 0 {
		*batch = spec.DefaultBatch
	}
	spec = criteo.ScaledSpec(spec, *scale)

	gen := criteo.NewGenerator(spec)
	m, err := model.New(model.Config{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      *dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{64, 32},
		TopMLP:            []int{64, 32},
		Seed:              spec.Seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "model:", err)
		os.Exit(1)
	}
	opt := &nn.SGD{LR: 0.05}
	for i := 0; i < *warm; i++ {
		b := gen.NextBatch(128)
		m.TrainStep(b.Dense, b.Indices, b.Labels, opt, 0.3)
	}

	b := gen.NextBatch(*batch)
	samples := make([][]float32, len(m.Emb.Tables))
	for t, tab := range m.Emb.Tables {
		samples[t] = tab.Lookup(b.Indices[t]).Data
	}
	res, err := adapt.OfflineAnalysis(samples, *dim, adapt.OfflineOptions{
		SampleEB:       float32(*eb),
		SelectEncoders: true,
		NetBandwidth:   *bandwidth,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "analysis:", err)
		os.Exit(1)
	}

	fmt.Printf("offline analysis: dataset=%s batch=%d eb=%g scale=1/%d\n\n", spec.Name, *batch, *eb, *scale)
	fmt.Printf("%-5s %-6s %-10s %-12s %-12s %-10s %-12s\n",
		"table", "class", "EB", "#orig", "#quant", "homoIdx", "encoder")
	for t, st := range res.Stats {
		fmt.Printf("%-5d %-6s %-10.3g %-12d %-12d %-10.4f %-12s\n",
			t, res.Classes[t].String(), res.EBs[t], st.OrigUnique, st.QuantUnique,
			st.HomoIndex, res.Modes[t].String())
	}
	l, md, s := res.ClassCounts()
	fmt.Printf("\nclass counts: L=%d M=%d S=%d\n", l, md, s)
}
