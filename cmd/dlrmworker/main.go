// Command dlrmworker is one rank of a multi-process training run: N
// processes, each dialing the rendezvous address with its own -rank,
// together execute the same scenario one in-process run executes with
// goroutine ranks — and report bit-identical losses. Rank 0 listens at
// -addr; every other rank dials it, so start order is free.
//
// A 4-rank run on loopback:
//
//	for r in 0 1 2 3; do
//	  dlrmworker -scenario examples/scenarios/tcp4.json -rank $r -addr 127.0.0.1:29400 &
//	done; wait
//
// Every worker prints a RESULT line with the final global loss (exact
// bits and decimal); rank 0's SIMTIME line carries the sim-time buckets.
// The -inproc flag instead runs the whole scenario in this one process
// over the in-process fabric — the baseline the CI smoke test compares
// worker output against, byte for byte.
//
// A scenario's fault plan (jitter and slow ranks) rides along: every
// worker loads the same spec, so rank 0 — where collective cost is
// computed — always has the plan, and the faulted run's RESULT and
// SIMTIME lines still match the in-process baseline bit for bit.
// Drop/rejoin events and checkpoints need the in-process elastic runner
// and are rejected for tcp specs at validation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"dlrmcomp/internal/cluster"
	"dlrmcomp/internal/cluster/tcptransport"
	"dlrmcomp/internal/scenario"
)

func main() {
	scenarioFile := flag.String("scenario", "", "JSON scenario.Spec file (required)")
	rank := flag.Int("rank", 0, "this worker's rank in [0, world)")
	world := flag.Int("world", 0, "world size (0 = the spec's resolved rank count; an explicit mismatch is an error)")
	addr := flag.String("addr", "127.0.0.1:29400", "rank 0's rendezvous address; rank 0 listens on it, the rest dial")
	inproc := flag.Bool("inproc", false, "run the whole scenario in this process over the in-process fabric (the conformance baseline); -rank/-world/-addr are ignored")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the rendezvous dial while rank 0 comes up")
	flag.Parse()

	if *scenarioFile == "" {
		fmt.Fprintln(os.Stderr, "dlrmworker: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	s, err := scenario.LoadFile(*scenarioFile)
	if err != nil {
		fail(2, err)
	}

	if *inproc {
		// Same workload, in-process fabric: transport cannot change the
		// math, so this run is the byte-for-byte baseline.
		s.Transport = "inproc"
		res, err := scenario.Run(s)
		if err != nil {
			fail(1, err)
		}
		report("inproc", res)
		return
	}

	rs, err := s.Resolved()
	if err != nil {
		fail(2, err)
	}
	w := *world
	if w == 0 {
		w = rs.Ranks
	}
	if w != rs.Ranks {
		fail(2, fmt.Errorf("-world %d does not match the spec's %d ranks", w, rs.Ranks))
	}
	if *rank < 0 || *rank >= w {
		fail(2, fmt.Errorf("-rank %d outside world of %d", *rank, w))
	}

	ep, err := tcptransport.Dial(tcptransport.Options{
		Rank:        *rank,
		World:       w,
		Addr:        *addr,
		DialTimeout: *dialTimeout,
	})
	if err != nil {
		fail(1, err)
	}
	b, err := s.BuildWorker(ep)
	if err != nil {
		ep.Close()
		fail(2, err)
	}
	res, err := b.Run()
	if err != nil {
		b.Trainer.Close()
		fail(1, err)
	}
	// Sync the whole group before teardown so no worker's close-notify
	// races a slower worker's final collective.
	b.Trainer.Cluster().Run(func(r *cluster.Rank) { _ = r.Barrier() })
	if err := b.Trainer.Close(); err != nil {
		fail(1, err)
	}
	report(fmt.Sprintf("%d", *rank), res)
	reportTransport(*rank, ep)
}

// reportTransport prints one TRANSPORT line per peer when the transport
// keeps per-peer accounting (the TCP endpoint does; the interface keeps
// this command decoupled from the concrete type). Bytes include frame
// headers; micros are wall-clock on the socket — sends time the write
// calls, receives time only the payload reads, so barrier idle waits
// don't inflate them.
func reportTransport(rank int, ep any) {
	ins, ok := ep.(tcptransport.Instrumented)
	if !ok {
		return
	}
	for _, ps := range ins.TransportStats() {
		fmt.Printf("TRANSPORT rank=%d peer=%d sent_bytes=%d recv_bytes=%d sent_frames=%d recv_frames=%d send_micros=%d recv_micros=%d\n",
			rank, ps.Peer, ps.SentBytes, ps.RecvBytes, ps.SentFrames, ps.RecvFrames, ps.SendMicros, ps.RecvMicros)
	}
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "dlrmworker:", err)
	os.Exit(code)
}

// report prints the machine-checkable outcome: the final global loss as
// exact float bits (the conformance currency) plus decimal, and the
// sim-time buckets in sorted order (meaningful on rank 0 and the
// in-process baseline; other ranks print an empty set).
func report(tag string, res *scenario.Result) {
	last := float32(math.NaN())
	if n := len(res.Losses); n > 0 {
		last = res.Losses[n-1]
	}
	fmt.Printf("RESULT name=%s rank=%s steps=%d final_loss_bits=0x%08x final_loss=%g cr=%.6f\n",
		res.Spec.Name, tag, len(res.Losses), math.Float32bits(last), last, res.CompressionRatio)
	keys := make([]string, 0, len(res.SimTime))
	for k := range res.SimTime {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%dns", k, res.SimTime[k].Nanoseconds()))
	}
	fmt.Printf("SIMTIME rank=%s %s\n", tag, strings.Join(parts, ";"))
}
