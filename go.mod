module dlrmcomp

go 1.24
