// Documentation conformance tests: CI runs these (the "docs" step of the
// quick gate) so the package-doc surface and the generated pieces of
// DESIGN.md cannot silently rot.
package dlrmcomp_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlrmcomp/internal/experiments"
)

// TestDesignExperimentIndexInSync pins the experiment-index table embedded
// in DESIGN.md to the registry (`go run ./cmd/experiments -design`
// regenerates it), so the docs and the code cannot name different
// experiment sets.
func TestDesignExperimentIndexInSync(t *testing.T) {
	const begin, end = "<!-- experiment-index:begin -->", "<!-- experiment-index:end -->"
	raw, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("DESIGN.md lacks the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(text[i+len(begin) : j])
	want := strings.TrimSpace(experiments.IndexMarkdown())
	if got != want {
		t.Fatalf("DESIGN.md experiment index is out of sync with the registry.\n"+
			"Regenerate with: go run ./cmd/experiments -design\n--- DESIGN.md ---\n%s\n--- registry ---\n%s", got, want)
	}
}

// TestEveryInternalPackageHasDoc enforces the godoc floor: every
// internal/* package must carry a package comment that names the package
// and says enough to place it in the layer stack. New packages fail here
// until they ship a doc.go (or equivalent package comment).
func TestEveryInternalPackageHasDoc(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found (run from the repo root)")
	}
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		docText, err := packageDoc(dir)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		name := filepath.Base(dir)
		switch {
		case docText == "":
			t.Errorf("package %s has no package comment; add a doc.go describing its layer, key types, and any sim-time buckets it charges", dir)
		case !strings.HasPrefix(docText, "Package "+name):
			t.Errorf("package %s: package comment must start with %q (godoc convention), got %q",
				dir, "Package "+name, firstLine(docText))
		case len(docText) < 120:
			t.Errorf("package %s: package comment is %d chars; describe the package's layer and key types (>= 120 chars)",
				dir, len(docText))
		}
	}
}

// packageDoc returns the package comment of the (non-test) package in dir.
func packageDoc(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil {
				return strings.TrimSpace(f.Doc.Text()), nil
			}
		}
	}
	return "", nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestFacadeExamplesExist keeps the runnable godoc examples from being
// deleted without notice: the facade's example file must cover the core
// entry points (they double as tests under `go test ./...`).
func TestFacadeExamplesExist(t *testing.T) {
	raw, err := os.ReadFile("example_test.go")
	if err != nil {
		t.Fatalf("example_test.go missing: %v", err)
	}
	for _, want := range []string{
		"func ExampleCodec", "func ExampleTrainer_Step", "func ExampleHierarchical",
		"func ExampleTrainer_RunPipelined", "func ExampleRunScenario",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("example_test.go lacks %s", want)
		}
	}
}
