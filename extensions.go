package dlrmcomp

import (
	"time"

	"dlrmcomp/internal/adapt"
	"dlrmcomp/internal/buffopt"
	"dlrmcomp/internal/pipeline"
)

// This file exports the paper's §VI future-work extensions implemented in
// this repository: automated global error-bound selection, the batched
// single-launch buffer optimization, and compression/communication
// pipelining.

// --- automated error-bound selection ----------------------------------------

// TrialFunc evaluates one candidate error bound, returning the accuracy
// degradation versus the uncompressed baseline.
type TrialFunc = adapt.TrialFunc

// AutoTuneResult records an error-bound search.
type AutoTuneResult = adapt.AutoTuneResult

// AutoTuneGlobalEB finds the largest candidate bound whose accuracy loss is
// within tolerance (the paper's production criterion is 0.0002 = 0.02%).
func AutoTuneGlobalEB(candidates []float32, tolerance float64, trial TrialFunc) (*AutoTuneResult, error) {
	return adapt.AutoTuneGlobalEB(candidates, tolerance, trial)
}

// RefineGlobalEB bisects between a known-good and known-bad bound.
func RefineGlobalEB(good, bad float32, tolerance float64, rounds int, trial TrialFunc) (*AutoTuneResult, error) {
	return adapt.RefineGlobalEB(good, bad, tolerance, rounds, trial)
}

// --- buffer optimization ------------------------------------------------------

// Chunk is one tensor in a batched compression call.
type Chunk = buffopt.Chunk

// BatchResult is a contiguous compressed send buffer plus chunk directory.
type BatchResult = buffopt.BatchResult

// CompressBatch compresses all chunks concurrently into one contiguous
// buffer (the paper's single-kernel buffer optimization, Fig. 7).
func CompressBatch(c Codec, chunks []Chunk) (*BatchResult, error) {
	return buffopt.CompressBatch(c, chunks)
}

// DecompressBatch decodes every chunk of a batch concurrently.
func DecompressBatch(c Codec, r *BatchResult) ([]Chunk, error) {
	return buffopt.DecompressBatch(c, r)
}

// --- compression/communication pipelining ------------------------------------

// PipelineStats reports a streaming exchange.
type PipelineStats = pipeline.Stats

// StreamExchange overlaps per-chunk compression with transmission and
// decompression (the pipelined scheme of §VI / Ramesh et al.).
func StreamExchange(c Codec, chunks []Chunk) ([]Chunk, PipelineStats, error) {
	return pipeline.StreamExchange(c, chunks)
}

// PipelineSpeedup evaluates the analytic 3-stage pipeline model for k chunks
// with the given per-chunk stage times.
func PipelineSpeedup(compress, transmit, decompress time.Duration, k int) float64 {
	return pipeline.Speedup(pipeline.StageTimes{
		Compress: compress, Transmit: transmit, Decompress: decompress,
	}, k)
}
