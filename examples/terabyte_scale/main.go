// terabyte_scale: a 32-rank communication study on the Terabyte-like
// dataset, reproducing the headline result — the hybrid compressor
// accelerates the forward all-to-all by several times and end-to-end
// training by ~1.3-1.4x — using the paper-calibrated network/device model.
package main

import (
	"fmt"
	"log"
	"time"

	"dlrmcomp"
	"dlrmcomp/internal/dist"
	"dlrmcomp/internal/netmodel"
	"dlrmcomp/internal/profileutil"
)

const (
	ranks = 32
	batch = 2048
	steps = 3
	dim   = 64
)

func run(spec dlrmcomp.DatasetSpec, compressed bool) (profileutil.Breakdown, float64) {
	gen := dlrmcomp.NewGenerator(spec)
	opts := dist.Options{
		Ranks: ranks,
		Model: dlrmcomp.ModelConfig{
			DenseFeatures:     spec.DenseFeatures,
			EmbeddingDim:      dim,
			TableSizes:        spec.Cardinalities,
			InitCardinalities: spec.FullCardinalities,
			BottomMLP:         []int{512, 256},
			TopMLP:            []int{512, 256},
			Seed:              spec.Seed,
		},
		Net: netmodel.Network{
			AllToAllBandwidth:  4e9, // the paper's effective all-to-all rate
			AllReduceBandwidth: 60e9,
			Latency:            2 * time.Microsecond,
		},
		Device:             netmodel.Device{FLOPS: 3e12, MemBandwidth: 1.3e12},
		OtherComputeFactor: 0.8,
	}
	if compressed {
		opts.CodecFor = func(int) dlrmcomp.Codec { return dlrmcomp.NewCompressor(0.005, dlrmcomp.ModeAuto) }
	}
	tr, err := dist.NewTrainer(opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(gen.NextBatch(batch)); err != nil {
			log.Fatal(err)
		}
	}
	return profileutil.Breakdown(tr.Cluster().SimTimes()), tr.CompressionRatio()
}

func main() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.TerabyteSpec(), 4000)

	fmt.Printf("terabyte-like config: %d ranks, global batch %d, dim %d, %d steps\n\n", ranks, batch, dim, steps)
	base, _ := run(spec, false)
	fmt.Printf("--- uncompressed baseline ---\n%s\n", base.String())

	comp, cr := run(spec, true)
	fmt.Printf("--- hybrid compression (eb 0.005) ---\n%s\n", comp.String())

	commBase := base["fwd-a2a"]
	commComp := comp["fwd-a2a"] + comp["compress"] + comp["decompress"]
	fmt.Printf("compression ratio:        %.1fx\n", cr)
	fmt.Printf("fwd all-to-all speedup:   %.2fx (paper: 8.6x)\n", float64(commBase)/float64(commComp))
	fmt.Printf("end-to-end speedup:       %.2fx (paper: 1.38x)\n", float64(base.Total())/float64(comp.Total()))
}
