// terabyte_scale: a 32-rank communication study on the Terabyte-like
// dataset, reproducing the headline result — the hybrid compressor
// accelerates the forward all-to-all by several times and end-to-end
// training by ~1.3-1.4x — using the paper-calibrated network/device model.
//
// The whole workload is one declarative dlrmcomp.Scenario; the compressed
// and uncompressed runs differ only in the codec fields.
package main

import (
	"fmt"
	"log"

	"dlrmcomp"
)

// baseScenario is the paper's 32-GPU Terabyte testbed shape.
func baseScenario() dlrmcomp.Scenario {
	return dlrmcomp.Scenario{
		Dataset:            "terabyte",
		Scale:              4000,
		Ranks:              32,
		Batch:              2048,
		Steps:              3,
		Dim:                64,
		BottomMLP:          []int{512, 256},
		TopMLP:             []int{512, 256},
		Device:             "paper",
		OtherComputeFactor: 0.8,
	}
}

func run(compressed bool) (dlrmcomp.Breakdown, float64) {
	sp := baseScenario()
	if compressed {
		sp.Codec, sp.ErrorBound = "hybrid", 0.005
	}
	res, err := dlrmcomp.RunScenario(sp)
	if err != nil {
		log.Fatal(err)
	}
	return res.SimTime, res.CompressionRatio
}

func main() {
	sp := baseScenario()
	fmt.Printf("terabyte-like config: %d ranks, global batch %d, dim %d, %d steps\n\n", sp.Ranks, sp.Batch, sp.Dim, sp.Steps)
	base, _ := run(false)
	fmt.Printf("--- uncompressed baseline ---\n%s\n", base.String())

	comp, cr := run(true)
	fmt.Printf("--- hybrid compression (eb 0.005) ---\n%s\n", comp.String())

	commBase := base["fwd-a2a"]
	commComp := comp["fwd-a2a"] + comp["compress"] + comp["decompress"]
	fmt.Printf("compression ratio:        %.1fx\n", cr)
	fmt.Printf("fwd all-to-all speedup:   %.2fx (paper: 8.6x)\n", float64(commBase)/float64(commComp))
	fmt.Printf("end-to-end speedup:       %.2fx (paper: 1.38x)\n", float64(base.Total())/float64(comp.Total()))
}
