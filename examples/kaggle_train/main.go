// kaggle_train: end-to-end hybrid-parallel DLRM training on the synthetic
// Criteo-Kaggle-like dataset with the full dual-level adaptive strategy —
// offline table classification, per-table error bounds, and stepwise
// iteration-wise decay — compared against an uncompressed baseline.
package main

import (
	"fmt"
	"log"

	"dlrmcomp"
)

const (
	ranks = 4
	batch = 128
	steps = 150
	dim   = 16
)

func buildTrainer(spec dlrmcomp.DatasetSpec, withCompression bool) (*dlrmcomp.Trainer, *dlrmcomp.Generator, error) {
	gen := dlrmcomp.NewGenerator(spec)
	cfg := dlrmcomp.ModelConfig{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{64, 32},
		TopMLP:            []int{64, 32},
		Seed:              spec.Seed,
	}
	opts := dlrmcomp.TrainerOptions{Ranks: ranks, Model: cfg}

	if withCompression {
		// Offline phase: sample lookups from a fresh model, classify tables,
		// and build the decay controller (Algorithm 1).
		probe, err := dlrmcomp.NewModel(cfg)
		if err != nil {
			return nil, nil, err
		}
		b := gen.NextBatch(batch)
		samples := make([][]float32, len(probe.Emb.Tables))
		for t, tab := range probe.Emb.Tables {
			samples[t] = tab.Lookup(b.Indices[t]).Data
		}
		offline, err := dlrmcomp.OfflineAnalysis(samples, dim, dlrmcomp.OfflineOptions{SampleEB: 0.01})
		if err != nil {
			return nil, nil, err
		}
		l, m, s := offline.ClassCounts()
		fmt.Printf("offline classification: L=%d M=%d S=%d tables\n", l, m, s)

		ctrl, err := dlrmcomp.NewController(offline.Classes, dlrmcomp.PaperEBConfig(),
			dlrmcomp.ScheduleStepwise, steps/2, 2)
		if err != nil {
			return nil, nil, err
		}
		opts.Controller = ctrl
		opts.CodecFor = func(t int) dlrmcomp.Codec {
			return dlrmcomp.NewCompressor(offline.EBs[t], dlrmcomp.ModeAuto)
		}
	}
	tr, err := dlrmcomp.NewTrainer(opts)
	return tr, gen, err
}

func main() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 2000)

	for _, compressed := range []bool{false, true} {
		name := "baseline (uncompressed)"
		if compressed {
			name = "dual-level adaptive compression"
		}
		fmt.Printf("\n=== %s ===\n", name)
		tr, gen, err := buildTrainer(spec, compressed)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			loss, err := tr.Step(gen.NextBatch(batch))
			if err != nil {
				log.Fatal(err)
			}
			if i%30 == 0 || i == steps-1 {
				fmt.Printf("step %4d  loss %.4f\n", i, loss)
			}
		}
		acc, logloss := tr.Evaluate(gen.NextBatch(4000))
		fmt.Printf("eval accuracy %.4f, logloss %.4f\n", acc, logloss)
		if compressed {
			fmt.Printf("forward all-to-all compression ratio: %.2fx\n", tr.CompressionRatio())
		}
		times := tr.Cluster().SimTimes()
		fmt.Printf("simulated fwd-a2a time: %v\n", times["fwd-a2a"])
	}
}
