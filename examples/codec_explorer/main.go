// codec_explorer: sweep error bounds and encoders over the embedding tables
// of the Kaggle-like dataset, printing per-table compression ratios and the
// encoder each table prefers — a hands-on version of Table V and the
// offline compressor-selection pass.
package main

import (
	"fmt"
	"log"

	"dlrmcomp"
)

const dim = 16

func main() {
	spec := dlrmcomp.ScaledSpec(dlrmcomp.KaggleSpec(), 2000)
	gen := dlrmcomp.NewGenerator(spec)
	m, err := dlrmcomp.NewModel(dlrmcomp.ModelConfig{
		DenseFeatures:     spec.DenseFeatures,
		EmbeddingDim:      dim,
		TableSizes:        spec.Cardinalities,
		InitCardinalities: spec.FullCardinalities,
		BottomMLP:         []int{32},
		TopMLP:            []int{32},
		Seed:              spec.Seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	batch := gen.NextBatch(256)

	fmt.Println("per-table CR across error bounds (hybrid/auto encoder):")
	fmt.Printf("%-6s %-10s %-10s %-10s %-10s\n", "table", "eb=0.005", "eb=0.01", "eb=0.03", "eb=0.05")
	for t, tab := range m.Emb.Tables {
		lookups := tab.Lookup(batch.Indices[t]).Data
		raw := float64(len(lookups) * 4)
		fmt.Printf("%-6d", t)
		for _, eb := range []float32{0.005, 0.01, 0.03, 0.05} {
			c := dlrmcomp.NewCompressor(eb, dlrmcomp.ModeAuto)
			frame, err := c.Compress(lookups, dim)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-10.2f", raw/float64(len(frame)))
		}
		fmt.Println()
	}

	// Which encoder would the offline pass pick per table at eb 0.01?
	samples := make([][]float32, len(m.Emb.Tables))
	for t, tab := range m.Emb.Tables {
		samples[t] = tab.Lookup(batch.Indices[t]).Data
	}
	res, err := dlrmcomp.OfflineAnalysis(samples, dim, dlrmcomp.OfflineOptions{
		SampleEB:       0.01,
		SelectEncoders: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noffline selection (Algorithm 1 + 2):")
	fmt.Printf("%-6s %-6s %-8s %-12s %-12s\n", "table", "class", "EB", "encoder", "homoIdx")
	for t := range samples {
		fmt.Printf("%-6d %-6s %-8.3g %-12s %-12.4f\n",
			t, res.Classes[t].String(), res.EBs[t], res.Modes[t].String(), res.Stats[t].HomoIndex)
	}
}
